file(REMOVE_RECURSE
  "CMakeFiles/automotive_perception.dir/automotive_perception.cpp.o"
  "CMakeFiles/automotive_perception.dir/automotive_perception.cpp.o.d"
  "automotive_perception"
  "automotive_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
