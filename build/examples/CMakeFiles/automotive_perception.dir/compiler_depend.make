# Empty compiler generated dependencies file for automotive_perception.
# This may be replaced when dependencies are built.
