file(REMOVE_RECURSE
  "CMakeFiles/railway_obstacle.dir/railway_obstacle.cpp.o"
  "CMakeFiles/railway_obstacle.dir/railway_obstacle.cpp.o.d"
  "railway_obstacle"
  "railway_obstacle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/railway_obstacle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
