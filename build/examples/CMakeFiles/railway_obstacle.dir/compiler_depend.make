# Empty compiler generated dependencies file for railway_obstacle.
# This may be replaced when dependencies are built.
