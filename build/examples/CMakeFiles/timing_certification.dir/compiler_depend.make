# Empty compiler generated dependencies file for timing_certification.
# This may be replaced when dependencies are built.
