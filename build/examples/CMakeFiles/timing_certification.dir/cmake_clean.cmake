file(REMOVE_RECURSE
  "CMakeFiles/timing_certification.dir/timing_certification.cpp.o"
  "CMakeFiles/timing_certification.dir/timing_certification.cpp.o.d"
  "timing_certification"
  "timing_certification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_certification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
