# Empty compiler generated dependencies file for space_telemetry.
# This may be replaced when dependencies are built.
