file(REMOVE_RECURSE
  "CMakeFiles/space_telemetry.dir/space_telemetry.cpp.o"
  "CMakeFiles/space_telemetry.dir/space_telemetry.cpp.o.d"
  "space_telemetry"
  "space_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
