
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/supervise/advanced.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/advanced.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/advanced.cpp.o.d"
  "/root/repo/src/supervise/calibration.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/calibration.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/calibration.cpp.o.d"
  "/root/repo/src/supervise/conformal.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/conformal.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/conformal.cpp.o.d"
  "/root/repo/src/supervise/drift.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/drift.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/drift.cpp.o.d"
  "/root/repo/src/supervise/metrics.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/metrics.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/metrics.cpp.o.d"
  "/root/repo/src/supervise/supervisor.cpp" "src/supervise/CMakeFiles/sx_supervise.dir/supervisor.cpp.o" "gcc" "src/supervise/CMakeFiles/sx_supervise.dir/supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
