file(REMOVE_RECURSE
  "CMakeFiles/sx_supervise.dir/advanced.cpp.o"
  "CMakeFiles/sx_supervise.dir/advanced.cpp.o.d"
  "CMakeFiles/sx_supervise.dir/calibration.cpp.o"
  "CMakeFiles/sx_supervise.dir/calibration.cpp.o.d"
  "CMakeFiles/sx_supervise.dir/conformal.cpp.o"
  "CMakeFiles/sx_supervise.dir/conformal.cpp.o.d"
  "CMakeFiles/sx_supervise.dir/drift.cpp.o"
  "CMakeFiles/sx_supervise.dir/drift.cpp.o.d"
  "CMakeFiles/sx_supervise.dir/metrics.cpp.o"
  "CMakeFiles/sx_supervise.dir/metrics.cpp.o.d"
  "CMakeFiles/sx_supervise.dir/supervisor.cpp.o"
  "CMakeFiles/sx_supervise.dir/supervisor.cpp.o.d"
  "libsx_supervise.a"
  "libsx_supervise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_supervise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
