file(REMOVE_RECURSE
  "libsx_supervise.a"
)
