# Empty compiler generated dependencies file for sx_supervise.
# This may be replaced when dependencies are built.
