file(REMOVE_RECURSE
  "CMakeFiles/sx_util.dir/hash.cpp.o"
  "CMakeFiles/sx_util.dir/hash.cpp.o.d"
  "CMakeFiles/sx_util.dir/linalg.cpp.o"
  "CMakeFiles/sx_util.dir/linalg.cpp.o.d"
  "CMakeFiles/sx_util.dir/stats.cpp.o"
  "CMakeFiles/sx_util.dir/stats.cpp.o.d"
  "CMakeFiles/sx_util.dir/table.cpp.o"
  "CMakeFiles/sx_util.dir/table.cpp.o.d"
  "libsx_util.a"
  "libsx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
