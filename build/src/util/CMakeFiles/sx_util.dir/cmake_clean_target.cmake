file(REMOVE_RECURSE
  "libsx_util.a"
)
