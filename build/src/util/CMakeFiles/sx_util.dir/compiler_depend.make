# Empty compiler generated dependencies file for sx_util.
# This may be replaced when dependencies are built.
