file(REMOVE_RECURSE
  "CMakeFiles/sx_core.dir/criticality.cpp.o"
  "CMakeFiles/sx_core.dir/criticality.cpp.o.d"
  "CMakeFiles/sx_core.dir/pipeline.cpp.o"
  "CMakeFiles/sx_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/sx_core.dir/report.cpp.o"
  "CMakeFiles/sx_core.dir/report.cpp.o.d"
  "libsx_core.a"
  "libsx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
