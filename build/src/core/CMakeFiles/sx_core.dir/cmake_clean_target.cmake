file(REMOVE_RECURSE
  "libsx_core.a"
)
