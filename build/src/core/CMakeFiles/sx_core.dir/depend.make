# Empty dependencies file for sx_core.
# This may be replaced when dependencies are built.
