file(REMOVE_RECURSE
  "libsx_timing.a"
)
