# Empty compiler generated dependencies file for sx_timing.
# This may be replaced when dependencies are built.
