
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/evt.cpp" "src/timing/CMakeFiles/sx_timing.dir/evt.cpp.o" "gcc" "src/timing/CMakeFiles/sx_timing.dir/evt.cpp.o.d"
  "/root/repo/src/timing/iid.cpp" "src/timing/CMakeFiles/sx_timing.dir/iid.cpp.o" "gcc" "src/timing/CMakeFiles/sx_timing.dir/iid.cpp.o.d"
  "/root/repo/src/timing/mbpta.cpp" "src/timing/CMakeFiles/sx_timing.dir/mbpta.cpp.o" "gcc" "src/timing/CMakeFiles/sx_timing.dir/mbpta.cpp.o.d"
  "/root/repo/src/timing/pot.cpp" "src/timing/CMakeFiles/sx_timing.dir/pot.cpp.o" "gcc" "src/timing/CMakeFiles/sx_timing.dir/pot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
