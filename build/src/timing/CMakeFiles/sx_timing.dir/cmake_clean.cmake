file(REMOVE_RECURSE
  "CMakeFiles/sx_timing.dir/evt.cpp.o"
  "CMakeFiles/sx_timing.dir/evt.cpp.o.d"
  "CMakeFiles/sx_timing.dir/iid.cpp.o"
  "CMakeFiles/sx_timing.dir/iid.cpp.o.d"
  "CMakeFiles/sx_timing.dir/mbpta.cpp.o"
  "CMakeFiles/sx_timing.dir/mbpta.cpp.o.d"
  "CMakeFiles/sx_timing.dir/pot.cpp.o"
  "CMakeFiles/sx_timing.dir/pot.cpp.o.d"
  "libsx_timing.a"
  "libsx_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
