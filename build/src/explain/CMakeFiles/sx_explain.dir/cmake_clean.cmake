file(REMOVE_RECURSE
  "CMakeFiles/sx_explain.dir/advanced.cpp.o"
  "CMakeFiles/sx_explain.dir/advanced.cpp.o.d"
  "CMakeFiles/sx_explain.dir/explainer.cpp.o"
  "CMakeFiles/sx_explain.dir/explainer.cpp.o.d"
  "CMakeFiles/sx_explain.dir/metrics.cpp.o"
  "CMakeFiles/sx_explain.dir/metrics.cpp.o.d"
  "libsx_explain.a"
  "libsx_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
