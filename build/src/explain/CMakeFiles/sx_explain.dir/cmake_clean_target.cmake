file(REMOVE_RECURSE
  "libsx_explain.a"
)
