# Empty dependencies file for sx_explain.
# This may be replaced when dependencies are built.
