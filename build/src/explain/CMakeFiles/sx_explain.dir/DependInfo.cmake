
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explain/advanced.cpp" "src/explain/CMakeFiles/sx_explain.dir/advanced.cpp.o" "gcc" "src/explain/CMakeFiles/sx_explain.dir/advanced.cpp.o.d"
  "/root/repo/src/explain/explainer.cpp" "src/explain/CMakeFiles/sx_explain.dir/explainer.cpp.o" "gcc" "src/explain/CMakeFiles/sx_explain.dir/explainer.cpp.o.d"
  "/root/repo/src/explain/metrics.cpp" "src/explain/CMakeFiles/sx_explain.dir/metrics.cpp.o" "gcc" "src/explain/CMakeFiles/sx_explain.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
