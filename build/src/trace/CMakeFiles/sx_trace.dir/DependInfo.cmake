
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/audit.cpp" "src/trace/CMakeFiles/sx_trace.dir/audit.cpp.o" "gcc" "src/trace/CMakeFiles/sx_trace.dir/audit.cpp.o.d"
  "/root/repo/src/trace/odd.cpp" "src/trace/CMakeFiles/sx_trace.dir/odd.cpp.o" "gcc" "src/trace/CMakeFiles/sx_trace.dir/odd.cpp.o.d"
  "/root/repo/src/trace/provenance.cpp" "src/trace/CMakeFiles/sx_trace.dir/provenance.cpp.o" "gcc" "src/trace/CMakeFiles/sx_trace.dir/provenance.cpp.o.d"
  "/root/repo/src/trace/requirements.cpp" "src/trace/CMakeFiles/sx_trace.dir/requirements.cpp.o" "gcc" "src/trace/CMakeFiles/sx_trace.dir/requirements.cpp.o.d"
  "/root/repo/src/trace/safety_case.cpp" "src/trace/CMakeFiles/sx_trace.dir/safety_case.cpp.o" "gcc" "src/trace/CMakeFiles/sx_trace.dir/safety_case.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
