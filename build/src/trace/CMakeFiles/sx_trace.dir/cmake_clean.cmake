file(REMOVE_RECURSE
  "CMakeFiles/sx_trace.dir/audit.cpp.o"
  "CMakeFiles/sx_trace.dir/audit.cpp.o.d"
  "CMakeFiles/sx_trace.dir/odd.cpp.o"
  "CMakeFiles/sx_trace.dir/odd.cpp.o.d"
  "CMakeFiles/sx_trace.dir/provenance.cpp.o"
  "CMakeFiles/sx_trace.dir/provenance.cpp.o.d"
  "CMakeFiles/sx_trace.dir/requirements.cpp.o"
  "CMakeFiles/sx_trace.dir/requirements.cpp.o.d"
  "CMakeFiles/sx_trace.dir/safety_case.cpp.o"
  "CMakeFiles/sx_trace.dir/safety_case.cpp.o.d"
  "libsx_trace.a"
  "libsx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
