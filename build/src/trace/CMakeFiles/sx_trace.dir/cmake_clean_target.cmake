file(REMOVE_RECURSE
  "libsx_trace.a"
)
