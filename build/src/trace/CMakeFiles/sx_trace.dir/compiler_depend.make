# Empty compiler generated dependencies file for sx_trace.
# This may be replaced when dependencies are built.
