file(REMOVE_RECURSE
  "CMakeFiles/sx_platform.dir/cache.cpp.o"
  "CMakeFiles/sx_platform.dir/cache.cpp.o.d"
  "CMakeFiles/sx_platform.dir/multicore.cpp.o"
  "CMakeFiles/sx_platform.dir/multicore.cpp.o.d"
  "CMakeFiles/sx_platform.dir/sim.cpp.o"
  "CMakeFiles/sx_platform.dir/sim.cpp.o.d"
  "libsx_platform.a"
  "libsx_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
