# Empty dependencies file for sx_platform.
# This may be replaced when dependencies are built.
