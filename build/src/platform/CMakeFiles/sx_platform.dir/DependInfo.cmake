
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/cache.cpp" "src/platform/CMakeFiles/sx_platform.dir/cache.cpp.o" "gcc" "src/platform/CMakeFiles/sx_platform.dir/cache.cpp.o.d"
  "/root/repo/src/platform/multicore.cpp" "src/platform/CMakeFiles/sx_platform.dir/multicore.cpp.o" "gcc" "src/platform/CMakeFiles/sx_platform.dir/multicore.cpp.o.d"
  "/root/repo/src/platform/sim.cpp" "src/platform/CMakeFiles/sx_platform.dir/sim.cpp.o" "gcc" "src/platform/CMakeFiles/sx_platform.dir/sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
