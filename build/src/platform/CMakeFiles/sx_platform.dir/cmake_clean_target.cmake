file(REMOVE_RECURSE
  "libsx_platform.a"
)
