file(REMOVE_RECURSE
  "libsx_rt.a"
)
