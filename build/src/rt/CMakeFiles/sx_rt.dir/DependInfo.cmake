
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/edf.cpp" "src/rt/CMakeFiles/sx_rt.dir/edf.cpp.o" "gcc" "src/rt/CMakeFiles/sx_rt.dir/edf.cpp.o.d"
  "/root/repo/src/rt/mixed_criticality.cpp" "src/rt/CMakeFiles/sx_rt.dir/mixed_criticality.cpp.o" "gcc" "src/rt/CMakeFiles/sx_rt.dir/mixed_criticality.cpp.o.d"
  "/root/repo/src/rt/rta.cpp" "src/rt/CMakeFiles/sx_rt.dir/rta.cpp.o" "gcc" "src/rt/CMakeFiles/sx_rt.dir/rta.cpp.o.d"
  "/root/repo/src/rt/scheduler.cpp" "src/rt/CMakeFiles/sx_rt.dir/scheduler.cpp.o" "gcc" "src/rt/CMakeFiles/sx_rt.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
