# Empty dependencies file for sx_rt.
# This may be replaced when dependencies are built.
