file(REMOVE_RECURSE
  "CMakeFiles/sx_rt.dir/edf.cpp.o"
  "CMakeFiles/sx_rt.dir/edf.cpp.o.d"
  "CMakeFiles/sx_rt.dir/mixed_criticality.cpp.o"
  "CMakeFiles/sx_rt.dir/mixed_criticality.cpp.o.d"
  "CMakeFiles/sx_rt.dir/rta.cpp.o"
  "CMakeFiles/sx_rt.dir/rta.cpp.o.d"
  "CMakeFiles/sx_rt.dir/scheduler.cpp.o"
  "CMakeFiles/sx_rt.dir/scheduler.cpp.o.d"
  "libsx_rt.a"
  "libsx_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
