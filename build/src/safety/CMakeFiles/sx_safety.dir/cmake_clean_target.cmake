file(REMOVE_RECURSE
  "libsx_safety.a"
)
