# Empty compiler generated dependencies file for sx_safety.
# This may be replaced when dependencies are built.
