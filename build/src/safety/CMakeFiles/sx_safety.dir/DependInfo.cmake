
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/safety/campaign.cpp" "src/safety/CMakeFiles/sx_safety.dir/campaign.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/campaign.cpp.o.d"
  "/root/repo/src/safety/channel.cpp" "src/safety/CMakeFiles/sx_safety.dir/channel.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/channel.cpp.o.d"
  "/root/repo/src/safety/deep_monitor.cpp" "src/safety/CMakeFiles/sx_safety.dir/deep_monitor.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/deep_monitor.cpp.o.d"
  "/root/repo/src/safety/fault.cpp" "src/safety/CMakeFiles/sx_safety.dir/fault.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/fault.cpp.o.d"
  "/root/repo/src/safety/integrity.cpp" "src/safety/CMakeFiles/sx_safety.dir/integrity.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/integrity.cpp.o.d"
  "/root/repo/src/safety/monitor.cpp" "src/safety/CMakeFiles/sx_safety.dir/monitor.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/monitor.cpp.o.d"
  "/root/repo/src/safety/recovery.cpp" "src/safety/CMakeFiles/sx_safety.dir/recovery.cpp.o" "gcc" "src/safety/CMakeFiles/sx_safety.dir/recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/supervise/CMakeFiles/sx_supervise.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
