file(REMOVE_RECURSE
  "CMakeFiles/sx_safety.dir/campaign.cpp.o"
  "CMakeFiles/sx_safety.dir/campaign.cpp.o.d"
  "CMakeFiles/sx_safety.dir/channel.cpp.o"
  "CMakeFiles/sx_safety.dir/channel.cpp.o.d"
  "CMakeFiles/sx_safety.dir/deep_monitor.cpp.o"
  "CMakeFiles/sx_safety.dir/deep_monitor.cpp.o.d"
  "CMakeFiles/sx_safety.dir/fault.cpp.o"
  "CMakeFiles/sx_safety.dir/fault.cpp.o.d"
  "CMakeFiles/sx_safety.dir/integrity.cpp.o"
  "CMakeFiles/sx_safety.dir/integrity.cpp.o.d"
  "CMakeFiles/sx_safety.dir/monitor.cpp.o"
  "CMakeFiles/sx_safety.dir/monitor.cpp.o.d"
  "CMakeFiles/sx_safety.dir/recovery.cpp.o"
  "CMakeFiles/sx_safety.dir/recovery.cpp.o.d"
  "libsx_safety.a"
  "libsx_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
