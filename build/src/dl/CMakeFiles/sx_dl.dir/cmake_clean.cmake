file(REMOVE_RECURSE
  "CMakeFiles/sx_dl.dir/dataset.cpp.o"
  "CMakeFiles/sx_dl.dir/dataset.cpp.o.d"
  "CMakeFiles/sx_dl.dir/engine.cpp.o"
  "CMakeFiles/sx_dl.dir/engine.cpp.o.d"
  "CMakeFiles/sx_dl.dir/layers.cpp.o"
  "CMakeFiles/sx_dl.dir/layers.cpp.o.d"
  "CMakeFiles/sx_dl.dir/model.cpp.o"
  "CMakeFiles/sx_dl.dir/model.cpp.o.d"
  "CMakeFiles/sx_dl.dir/prune.cpp.o"
  "CMakeFiles/sx_dl.dir/prune.cpp.o.d"
  "CMakeFiles/sx_dl.dir/quant.cpp.o"
  "CMakeFiles/sx_dl.dir/quant.cpp.o.d"
  "CMakeFiles/sx_dl.dir/train.cpp.o"
  "CMakeFiles/sx_dl.dir/train.cpp.o.d"
  "libsx_dl.a"
  "libsx_dl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_dl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
