# Empty compiler generated dependencies file for sx_dl.
# This may be replaced when dependencies are built.
