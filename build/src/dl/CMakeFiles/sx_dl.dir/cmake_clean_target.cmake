file(REMOVE_RECURSE
  "libsx_dl.a"
)
