
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dl/dataset.cpp" "src/dl/CMakeFiles/sx_dl.dir/dataset.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/dataset.cpp.o.d"
  "/root/repo/src/dl/engine.cpp" "src/dl/CMakeFiles/sx_dl.dir/engine.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/engine.cpp.o.d"
  "/root/repo/src/dl/layers.cpp" "src/dl/CMakeFiles/sx_dl.dir/layers.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/layers.cpp.o.d"
  "/root/repo/src/dl/model.cpp" "src/dl/CMakeFiles/sx_dl.dir/model.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/model.cpp.o.d"
  "/root/repo/src/dl/prune.cpp" "src/dl/CMakeFiles/sx_dl.dir/prune.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/prune.cpp.o.d"
  "/root/repo/src/dl/quant.cpp" "src/dl/CMakeFiles/sx_dl.dir/quant.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/quant.cpp.o.d"
  "/root/repo/src/dl/train.cpp" "src/dl/CMakeFiles/sx_dl.dir/train.cpp.o" "gcc" "src/dl/CMakeFiles/sx_dl.dir/train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
