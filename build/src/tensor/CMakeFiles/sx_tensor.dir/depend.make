# Empty dependencies file for sx_tensor.
# This may be replaced when dependencies are built.
