file(REMOVE_RECURSE
  "CMakeFiles/sx_tensor.dir/ops.cpp.o"
  "CMakeFiles/sx_tensor.dir/ops.cpp.o.d"
  "libsx_tensor.a"
  "libsx_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
