file(REMOVE_RECURSE
  "libsx_tensor.a"
)
