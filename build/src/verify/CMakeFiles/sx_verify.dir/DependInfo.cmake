
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/attack.cpp" "src/verify/CMakeFiles/sx_verify.dir/attack.cpp.o" "gcc" "src/verify/CMakeFiles/sx_verify.dir/attack.cpp.o.d"
  "/root/repo/src/verify/ibp.cpp" "src/verify/CMakeFiles/sx_verify.dir/ibp.cpp.o" "gcc" "src/verify/CMakeFiles/sx_verify.dir/ibp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
