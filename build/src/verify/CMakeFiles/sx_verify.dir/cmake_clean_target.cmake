file(REMOVE_RECURSE
  "libsx_verify.a"
)
