# Empty dependencies file for sx_verify.
# This may be replaced when dependencies are built.
