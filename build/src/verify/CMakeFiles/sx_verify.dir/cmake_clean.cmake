file(REMOVE_RECURSE
  "CMakeFiles/sx_verify.dir/attack.cpp.o"
  "CMakeFiles/sx_verify.dir/attack.cpp.o.d"
  "CMakeFiles/sx_verify.dir/ibp.cpp.o"
  "CMakeFiles/sx_verify.dir/ibp.cpp.o.d"
  "libsx_verify.a"
  "libsx_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sx_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
