# Empty dependencies file for explain_advanced_test.
# This may be replaced when dependencies are built.
