file(REMOVE_RECURSE
  "CMakeFiles/explain_advanced_test.dir/explain_advanced_test.cpp.o"
  "CMakeFiles/explain_advanced_test.dir/explain_advanced_test.cpp.o.d"
  "explain_advanced_test"
  "explain_advanced_test.pdb"
  "explain_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
