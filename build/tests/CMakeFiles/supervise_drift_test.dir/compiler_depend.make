# Empty compiler generated dependencies file for supervise_drift_test.
# This may be replaced when dependencies are built.
