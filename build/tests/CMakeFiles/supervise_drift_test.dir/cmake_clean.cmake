file(REMOVE_RECURSE
  "CMakeFiles/supervise_drift_test.dir/supervise_drift_test.cpp.o"
  "CMakeFiles/supervise_drift_test.dir/supervise_drift_test.cpp.o.d"
  "supervise_drift_test"
  "supervise_drift_test.pdb"
  "supervise_drift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervise_drift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
