# Empty compiler generated dependencies file for dl_prune_test.
# This may be replaced when dependencies are built.
