file(REMOVE_RECURSE
  "CMakeFiles/dl_prune_test.dir/dl_prune_test.cpp.o"
  "CMakeFiles/dl_prune_test.dir/dl_prune_test.cpp.o.d"
  "dl_prune_test"
  "dl_prune_test.pdb"
  "dl_prune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_prune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
