file(REMOVE_RECURSE
  "CMakeFiles/dl_engine_test.dir/dl_engine_test.cpp.o"
  "CMakeFiles/dl_engine_test.dir/dl_engine_test.cpp.o.d"
  "dl_engine_test"
  "dl_engine_test.pdb"
  "dl_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
