# Empty dependencies file for dl_engine_test.
# This may be replaced when dependencies are built.
