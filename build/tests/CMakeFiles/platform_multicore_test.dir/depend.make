# Empty dependencies file for platform_multicore_test.
# This may be replaced when dependencies are built.
