file(REMOVE_RECURSE
  "CMakeFiles/platform_multicore_test.dir/platform_multicore_test.cpp.o"
  "CMakeFiles/platform_multicore_test.dir/platform_multicore_test.cpp.o.d"
  "platform_multicore_test"
  "platform_multicore_test.pdb"
  "platform_multicore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_multicore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
