file(REMOVE_RECURSE
  "CMakeFiles/dl_quant_test.dir/dl_quant_test.cpp.o"
  "CMakeFiles/dl_quant_test.dir/dl_quant_test.cpp.o.d"
  "dl_quant_test"
  "dl_quant_test.pdb"
  "dl_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
