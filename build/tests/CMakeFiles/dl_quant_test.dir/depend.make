# Empty dependencies file for dl_quant_test.
# This may be replaced when dependencies are built.
