# Empty dependencies file for rt_mc_test.
# This may be replaced when dependencies are built.
