file(REMOVE_RECURSE
  "CMakeFiles/rt_mc_test.dir/rt_mc_test.cpp.o"
  "CMakeFiles/rt_mc_test.dir/rt_mc_test.cpp.o.d"
  "rt_mc_test"
  "rt_mc_test.pdb"
  "rt_mc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_mc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
