file(REMOVE_RECURSE
  "CMakeFiles/dl_dataset_test.dir/dl_dataset_test.cpp.o"
  "CMakeFiles/dl_dataset_test.dir/dl_dataset_test.cpp.o.d"
  "dl_dataset_test"
  "dl_dataset_test.pdb"
  "dl_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
