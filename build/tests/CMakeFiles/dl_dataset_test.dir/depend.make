# Empty dependencies file for dl_dataset_test.
# This may be replaced when dependencies are built.
