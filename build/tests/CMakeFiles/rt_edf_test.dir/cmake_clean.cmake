file(REMOVE_RECURSE
  "CMakeFiles/rt_edf_test.dir/rt_edf_test.cpp.o"
  "CMakeFiles/rt_edf_test.dir/rt_edf_test.cpp.o.d"
  "rt_edf_test"
  "rt_edf_test.pdb"
  "rt_edf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_edf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
