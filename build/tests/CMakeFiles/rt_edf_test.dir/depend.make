# Empty dependencies file for rt_edf_test.
# This may be replaced when dependencies are built.
