file(REMOVE_RECURSE
  "CMakeFiles/supervise_advanced_test.dir/supervise_advanced_test.cpp.o"
  "CMakeFiles/supervise_advanced_test.dir/supervise_advanced_test.cpp.o.d"
  "supervise_advanced_test"
  "supervise_advanced_test.pdb"
  "supervise_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervise_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
