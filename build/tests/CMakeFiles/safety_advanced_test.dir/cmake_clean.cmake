file(REMOVE_RECURSE
  "CMakeFiles/safety_advanced_test.dir/safety_advanced_test.cpp.o"
  "CMakeFiles/safety_advanced_test.dir/safety_advanced_test.cpp.o.d"
  "safety_advanced_test"
  "safety_advanced_test.pdb"
  "safety_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
