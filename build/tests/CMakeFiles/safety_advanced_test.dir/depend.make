# Empty dependencies file for safety_advanced_test.
# This may be replaced when dependencies are built.
