file(REMOVE_RECURSE
  "CMakeFiles/dl_train_ext_test.dir/dl_train_ext_test.cpp.o"
  "CMakeFiles/dl_train_ext_test.dir/dl_train_ext_test.cpp.o.d"
  "dl_train_ext_test"
  "dl_train_ext_test.pdb"
  "dl_train_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_train_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
