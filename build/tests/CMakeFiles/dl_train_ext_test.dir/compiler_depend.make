# Empty compiler generated dependencies file for dl_train_ext_test.
# This may be replaced when dependencies are built.
