file(REMOVE_RECURSE
  "CMakeFiles/supervise_test.dir/supervise_test.cpp.o"
  "CMakeFiles/supervise_test.dir/supervise_test.cpp.o.d"
  "supervise_test"
  "supervise_test.pdb"
  "supervise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supervise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
