# Empty dependencies file for supervise_test.
# This may be replaced when dependencies are built.
