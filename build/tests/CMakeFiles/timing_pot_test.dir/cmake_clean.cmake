file(REMOVE_RECURSE
  "CMakeFiles/timing_pot_test.dir/timing_pot_test.cpp.o"
  "CMakeFiles/timing_pot_test.dir/timing_pot_test.cpp.o.d"
  "timing_pot_test"
  "timing_pot_test.pdb"
  "timing_pot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_pot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
