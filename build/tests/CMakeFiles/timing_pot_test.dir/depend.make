# Empty dependencies file for timing_pot_test.
# This may be replaced when dependencies are built.
