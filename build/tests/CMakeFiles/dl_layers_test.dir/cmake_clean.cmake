file(REMOVE_RECURSE
  "CMakeFiles/dl_layers_test.dir/dl_layers_test.cpp.o"
  "CMakeFiles/dl_layers_test.dir/dl_layers_test.cpp.o.d"
  "dl_layers_test"
  "dl_layers_test.pdb"
  "dl_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
