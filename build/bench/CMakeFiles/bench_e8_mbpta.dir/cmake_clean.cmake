file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_mbpta.dir/bench_e8_mbpta.cpp.o"
  "CMakeFiles/bench_e8_mbpta.dir/bench_e8_mbpta.cpp.o.d"
  "bench_e8_mbpta"
  "bench_e8_mbpta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_mbpta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
