# Empty dependencies file for bench_e8_mbpta.
# This may be replaced when dependencies are built.
