
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a8_drift.cpp" "bench/CMakeFiles/bench_a8_drift.dir/bench_a8_drift.cpp.o" "gcc" "bench/CMakeFiles/bench_a8_drift.dir/bench_a8_drift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dl/CMakeFiles/sx_dl.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/sx_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/supervise/CMakeFiles/sx_supervise.dir/DependInfo.cmake"
  "/root/repo/build/src/safety/CMakeFiles/sx_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/sx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/sx_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/sx_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/sx_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/sx_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sx_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
