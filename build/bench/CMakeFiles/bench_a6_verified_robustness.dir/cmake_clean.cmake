file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_verified_robustness.dir/bench_a6_verified_robustness.cpp.o"
  "CMakeFiles/bench_a6_verified_robustness.dir/bench_a6_verified_robustness.cpp.o.d"
  "bench_a6_verified_robustness"
  "bench_a6_verified_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_verified_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
