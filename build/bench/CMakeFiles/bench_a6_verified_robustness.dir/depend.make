# Empty dependencies file for bench_a6_verified_robustness.
# This may be replaced when dependencies are built.
