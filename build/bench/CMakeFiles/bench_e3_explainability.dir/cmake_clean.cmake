file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_explainability.dir/bench_e3_explainability.cpp.o"
  "CMakeFiles/bench_e3_explainability.dir/bench_e3_explainability.cpp.o.d"
  "bench_e3_explainability"
  "bench_e3_explainability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_explainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
