# Empty dependencies file for bench_e3_explainability.
# This may be replaced when dependencies are built.
