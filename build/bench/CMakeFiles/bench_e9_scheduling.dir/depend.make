# Empty dependencies file for bench_e9_scheduling.
# This may be replaced when dependencies are built.
