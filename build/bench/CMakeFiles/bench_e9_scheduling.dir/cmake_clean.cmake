file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_scheduling.dir/bench_e9_scheduling.cpp.o"
  "CMakeFiles/bench_e9_scheduling.dir/bench_e9_scheduling.cpp.o.d"
  "bench_e9_scheduling"
  "bench_e9_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
