file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_evt_methods.dir/bench_a2_evt_methods.cpp.o"
  "CMakeFiles/bench_a2_evt_methods.dir/bench_a2_evt_methods.cpp.o.d"
  "bench_a2_evt_methods"
  "bench_a2_evt_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_evt_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
