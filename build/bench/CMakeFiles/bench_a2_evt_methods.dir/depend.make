# Empty dependencies file for bench_a2_evt_methods.
# This may be replaced when dependencies are built.
