file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_advanced_patterns.dir/bench_a4_advanced_patterns.cpp.o"
  "CMakeFiles/bench_a4_advanced_patterns.dir/bench_a4_advanced_patterns.cpp.o.d"
  "bench_a4_advanced_patterns"
  "bench_a4_advanced_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_advanced_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
