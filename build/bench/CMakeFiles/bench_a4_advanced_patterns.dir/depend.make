# Empty dependencies file for bench_a4_advanced_patterns.
# This may be replaced when dependencies are built.
