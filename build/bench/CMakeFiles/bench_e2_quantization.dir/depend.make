# Empty dependencies file for bench_e2_quantization.
# This may be replaced when dependencies are built.
