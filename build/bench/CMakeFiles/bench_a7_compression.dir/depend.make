# Empty dependencies file for bench_a7_compression.
# This may be replaced when dependencies are built.
