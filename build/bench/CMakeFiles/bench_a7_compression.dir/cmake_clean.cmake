file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_compression.dir/bench_a7_compression.cpp.o"
  "CMakeFiles/bench_a7_compression.dir/bench_a7_compression.cpp.o.d"
  "bench_a7_compression"
  "bench_a7_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
