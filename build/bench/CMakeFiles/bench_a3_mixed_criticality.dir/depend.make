# Empty dependencies file for bench_a3_mixed_criticality.
# This may be replaced when dependencies are built.
