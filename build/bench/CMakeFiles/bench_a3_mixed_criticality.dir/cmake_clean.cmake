file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_mixed_criticality.dir/bench_a3_mixed_criticality.cpp.o"
  "CMakeFiles/bench_a3_mixed_criticality.dir/bench_a3_mixed_criticality.cpp.o.d"
  "bench_a3_mixed_criticality"
  "bench_a3_mixed_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_mixed_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
