# Empty dependencies file for bench_e4_supervisors.
# This may be replaced when dependencies are built.
