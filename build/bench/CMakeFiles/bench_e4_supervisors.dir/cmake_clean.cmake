file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_supervisors.dir/bench_e4_supervisors.cpp.o"
  "CMakeFiles/bench_e4_supervisors.dir/bench_e4_supervisors.cpp.o.d"
  "bench_e4_supervisors"
  "bench_e4_supervisors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_supervisors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
