file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_criticality.dir/bench_e6_criticality.cpp.o"
  "CMakeFiles/bench_e6_criticality.dir/bench_e6_criticality.cpp.o.d"
  "bench_e6_criticality"
  "bench_e6_criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
