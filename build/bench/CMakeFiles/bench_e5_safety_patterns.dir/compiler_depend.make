# Empty compiler generated dependencies file for bench_e5_safety_patterns.
# This may be replaced when dependencies are built.
