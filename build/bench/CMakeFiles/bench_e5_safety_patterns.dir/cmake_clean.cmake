file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_safety_patterns.dir/bench_e5_safety_patterns.cpp.o"
  "CMakeFiles/bench_e5_safety_patterns.dir/bench_e5_safety_patterns.cpp.o.d"
  "bench_e5_safety_patterns"
  "bench_e5_safety_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_safety_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
