# Empty compiler generated dependencies file for bench_e1_fusa_library.
# This may be replaced when dependencies are built.
