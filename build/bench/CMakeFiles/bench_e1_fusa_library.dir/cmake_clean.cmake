file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_fusa_library.dir/bench_e1_fusa_library.cpp.o"
  "CMakeFiles/bench_e1_fusa_library.dir/bench_e1_fusa_library.cpp.o.d"
  "bench_e1_fusa_library"
  "bench_e1_fusa_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_fusa_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
