file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_platform_determinism.dir/bench_e7_platform_determinism.cpp.o"
  "CMakeFiles/bench_e7_platform_determinism.dir/bench_e7_platform_determinism.cpp.o.d"
  "bench_e7_platform_determinism"
  "bench_e7_platform_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_platform_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
