# Empty dependencies file for bench_e7_platform_determinism.
# This may be replaced when dependencies are built.
