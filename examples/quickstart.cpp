// Quickstart: train a small model, deploy it in a certifiable pipeline,
// run a few decisions and inspect the evidence trail.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "dl/dataset.hpp"
#include "dl/train.hpp"

int main() {
  using namespace sx;

  // 1. A synthetic perception dataset (abstracting a camera feed).
  const dl::Dataset data = dl::make_road_scene(400, /*seed=*/11);

  // 2. Build and train a small classifier — offline, non-critical code.
  dl::ModelBuilder builder{data.input_shape};
  builder.flatten().dense(32).relu().dense(16).relu().dense(
      dl::kRoadSceneClasses);
  dl::Model model = builder.build(/*seed=*/5);

  dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.02,
                                      .epochs = 30,
                                      .batch_size = 16,
                                      .shuffle_seed = 3}};
  const auto history = trainer.fit(model, data);
  std::cout << "trained: accuracy " << history.back().accuracy * 100
            << "% after " << history.size() << " epochs\n";
  std::cout << model.summary() << "\n";

  // 3. Deploy at SIL2: the framework adds the monitored channel, a trust
  //    supervisor, an ODD guard and explanation support — and refuses any
  //    configuration that would not be admissible at this level.
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  cfg.batch_workers = 2;  // enable the deterministic batch path
  core::CertifiablePipeline pipeline{model, data, cfg};
  std::cout << "deployed model " << pipeline.model_card().model_hash.substr(0, 16)
            << "... at "
            << trace::to_string(pipeline.criticality()) << "\n\n";

  // 4. Decide.
  for (std::size_t i = 0; i < 5; ++i) {
    const core::Decision d = pipeline.infer(data.samples[i].input, i);
    std::cout << "input " << i << ": class " << d.predicted_class
              << " (label " << data.samples[i].label << "), confidence "
              << d.confidence << ", status " << to_string(d.status) << "\n";
  }

  // 5. Batch decisions: a frame burst fanned out over the static worker
  //    pool. The round-robin partition is static, so classes, counters and
  //    the audit trail are identical for every worker count.
  std::vector<tensor::Tensor> burst;
  for (std::size_t i = 5; i < 13; ++i)
    burst.push_back(data.samples[i].input);
  const auto batch = pipeline.infer_batch(burst, /*logical_time=*/10);
  std::cout << "\nbatch of " << batch.size() << " over "
            << pipeline.batch_runner()->workers() << " workers:";
  for (const auto& d : batch) std::cout << " " << d.predicted_class;
  std::cout << " (" << pipeline.batch_runner()->numeric_fault_count()
            << " numeric faults)\n\n";

  // 6. An out-of-domain input is rejected before it reaches the network.
  tensor::Tensor garbage{data.input_shape};
  garbage.fill(42.0f);
  const core::Decision d = pipeline.infer(garbage, 99);
  std::cout << "garbage input: status " << to_string(d.status)
            << " (degraded=" << d.degraded << ")\n\n";

  // 7. Every decision left a tamper-evident audit record.
  std::cout << "audit entries: " << pipeline.audit().size()
            << ", chain verifies: "
            << (ok(pipeline.audit().verify()) ? "yes" : "no") << "\n";
  std::cout << "\nsafety case:\n" << pipeline.build_safety_case().to_text();
  return 0;
}
