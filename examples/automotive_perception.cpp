// Automotive perception with per-decision explanations.
//
// Trains a small CNN on the RoadScene workload, deploys it at SIL1 and
// renders, for a few decisions, an ASCII saliency map next to the input —
// the "explain whether predictions can be trusted" loop of pillar 1.
//
//   $ ./examples/automotive_perception
#include <algorithm>
#include <iostream>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dl/batch.hpp"
#include "dl/train.hpp"
#include "explain/explainer.hpp"
#include "explain/metrics.hpp"
#include "util/table.hpp"

namespace {

const char* kClassNames[] = {"clear-road", "vehicle", "pedestrian",
                             "obstacle"};

/// Renders a 16x16 single-channel image as ASCII shades.
void render(const sx::tensor::Tensor& img, const sx::tensor::Tensor* overlay,
            std::ostream& os) {
  static const char* shades = " .:-=+*#%@";
  const std::size_t h = img.shape()[1], w = img.shape()[2];
  float omax = 1e-9f;
  if (overlay != nullptr)
    for (std::size_t i = 0; i < overlay->size(); ++i)
      omax = std::max(omax, std::abs(overlay->at(i)));
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const float v = overlay
                          ? std::abs(overlay->at(0, y, x)) / omax
                          : img.at(0, y, x);
      const int idx = std::min(9, static_cast<int>(v * 9.99f));
      os << shades[idx] << shades[idx];
    }
    os << '\n';
  }
}

}  // namespace

int main() {
  using namespace sx;

  const dl::Dataset data = dl::make_road_scene(400, 11);
  dl::ModelBuilder builder{data.input_shape};
  builder.conv2d(4, 3, 1, 1).relu().maxpool(2).flatten().dense(24).relu()
      .dense(dl::kRoadSceneClasses);
  dl::Model model = builder.build(17);
  dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.02,
                                      .epochs = 12,
                                      .batch_size = 16,
                                      .shuffle_seed = 23}};
  trainer.fit(model, data);
  std::cout << "camera perception CNN trained: "
            << dl::Trainer::evaluate_accuracy(model, data) * 100
            << "% accuracy\n\n";

  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil1;
  core::CertifiablePipeline pipeline{model, data, cfg};

  std::size_t shown = 0;
  for (const auto& s : data.samples) {
    if (!s.signal.has_value()) continue;
    const core::Decision d = pipeline.infer(s.input, shown);
    if (!ok(d.status) || d.predicted_class != s.label) continue;

    const tensor::Tensor attribution =
        pipeline.explain(s.input, d.predicted_class);
    const double gain = explain::localization_gain(attribution, *s.signal);

    std::cout << "decision: " << kClassNames[d.predicted_class]
              << " (confidence " << d.confidence << ")\n";
    std::cout << "input:\n";
    render(s.input, nullptr, std::cout);
    std::cout << "why (gradient saliency, localization gain "
              << sx::util::fmt(gain, 1) << "x over uniform):\n";
    render(s.input, &attribution, std::cout);
    std::cout << "\n";
    if (++shown >= 3) break;
  }

  std::cout << "audit chain verifies: "
            << (ok(pipeline.audit().verify()) ? "yes" : "no") << "\n";

  // Camera bursts arrive as batches: fan a 32-frame burst over the
  // deterministic batch executor and attach its per-worker counters to the
  // certification evidence. The static partition makes the outputs
  // bit-identical to running the frames one by one.
  dl::BatchRunner runner{model, dl::BatchRunnerConfig{.workers = 4}};
  std::vector<float> frames(32 * runner.input_size());
  std::vector<float> logits(32 * runner.output_size());
  std::vector<Status> statuses(32, Status::kOk);
  for (std::size_t i = 0; i < 32; ++i) {
    const auto src = data.samples[i].input.data();
    std::copy(src.begin(), src.end(), frames.begin() + i * runner.input_size());
  }
  if (!ok(runner.run(frames, logits, statuses))) return 1;
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    std::size_t cls = 0;
    for (std::size_t k = 1; k < runner.output_size(); ++k)
      if (logits[i * runner.output_size() + k] >
          logits[i * runner.output_size() + cls])
        cls = k;
    agree += cls == data.samples[i].label;
  }
  std::cout << "\n32-frame burst over " << runner.workers() << " workers: "
            << agree << "/32 frames match labels\n"
            << core::make_batch_runner_evidence(runner).body;
  return 0;
}
