// Timing certification walk-through (pillar 4): compare platform
// configurations, run MBPTA on the randomized one, derive a pWCET budget
// and show it schedules alongside the rest of the software stack.
//
//   $ ./examples/timing_certification
#include <iostream>

#include "dl/train.hpp"
#include "platform/sim.hpp"
#include "rt/rta.hpp"
#include "rt/scheduler.hpp"
#include "timing/mbpta.hpp"
#include "util/stats.hpp"

int main() {
  using namespace sx;

  // The DL task whose timing we certify.
  const dl::Dataset data = dl::make_road_scene(200, 11);
  dl::ModelBuilder builder{data.input_shape};
  builder.conv2d(4, 3, 1, 1).relu().maxpool(2).flatten().dense(24).relu()
      .dense(dl::kRoadSceneClasses);
  const dl::Model model = builder.build(17);
  const platform::AccessTrace trace = platform::inference_trace(model);
  std::cout << "DL inference trace: " << trace.size() << " memory ops, "
            << model.param_count() << " parameters\n\n";

  // Deterministic platform: one number, no distribution.
  const platform::CacheConfig det{.line_bytes = 64,
                                  .sets = 64,
                                  .ways = 4,
                                  .placement = platform::Placement::kModulo,
                                  .replacement = platform::Replacement::kLru};
  const auto det_times = platform::collect_execution_times(
      det, platform::TimingModel{}, trace, 20, 1);
  std::cout << "deterministic platform: " << det_times[0]
            << " cycles, every run (variance "
            << util::variance(det_times) << ")\n";

  // Time-randomized platform: a distribution MBPTA can work with.
  platform::CacheConfig rnd = det;
  rnd.placement = platform::Placement::kRandom;
  rnd.replacement = platform::Replacement::kRandom;
  const auto times = platform::collect_execution_times(
      rnd, platform::TimingModel{}, trace, 1000, 77);
  std::cout << "randomized platform: mean " << util::mean(times) << ", HWM "
            << util::max_of(times) << " cycles over 1000 boots\n\n";

  const auto report = timing::analyze(times);
  std::cout << report.to_text() << "\n";
  if (!report.admissible) return 1;

  // Use pWCET@1e-9 as the task budget and check the stack schedules.
  const auto budget =
      static_cast<std::uint64_t>(timing::pwcet(report.fit, 1e-9));
  rt::TaskSet ts;
  ts.add(rt::Task{.name = "dl-inference", .period = 3 * budget,
                  .wcet = budget});
  ts.add(rt::Task{.name = "fusion", .period = 6 * budget,
                  .wcet = budget});
  ts.add(rt::Task{.name = "logging", .period = 20 * budget,
                  .wcet = budget / 2});
  ts.assign_deadline_monotonic();

  const auto rta = rt::response_time_analysis(ts);
  std::cout << "task set utilization " << ts.utilization() << ", RTA: "
            << (rta.schedulable ? "schedulable" : "NOT schedulable") << "\n";
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    std::cout << "  " << ts.tasks[i].name << ": R="
              << (rta.response_times[i] ? std::to_string(
                                              *rta.response_times[i])
                                        : std::string("diverged"))
              << " D=" << ts.tasks[i].deadline << "\n";

  // Simulate with actual (measured) execution times under the budget.
  std::size_t cursor = 0;
  const rt::ExecTimeFn sampler = [&](const rt::Task& task,
                                     util::Xoshiro256&) -> std::uint64_t {
    if (task.name != "dl-inference") return task.wcet;
    return static_cast<std::uint64_t>(
        std::min(times[cursor++ % times.size()], static_cast<double>(budget)));
  };
  const auto sim =
      rt::simulate(ts, rt::SimConfig{.duration = budget * 300}, sampler);
  std::cout << "simulation: " << sim.total_jobs << " jobs, "
            << sim.total_misses << " deadline misses\n";
  return sim.total_misses == 0 ? 0 : 1;
}
