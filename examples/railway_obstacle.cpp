// High-criticality railway obstacle detection (SIL3) with a conservative
// fallback channel: when anything is doubtful — out-of-ODD input, channel
// divergence, supervisor rejection, deadline miss — the pipeline reports
// "obstacle" and the train brakes.
//
//   $ ./examples/railway_obstacle
#include <iostream>

#include "core/pipeline.hpp"
#include "dl/train.hpp"

int main() {
  using namespace sx;

  const dl::Dataset train_data = dl::make_railway_obstacle(400, 2);
  const dl::Dataset mission = dl::make_railway_obstacle(60, 3);

  dl::ModelBuilder builder{train_data.input_shape};
  builder.flatten().dense(24).relu().dense(2);
  dl::Model model = builder.build(4);
  dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.05,
                                      .epochs = 10,
                                      .batch_size = 16,
                                      .shuffle_seed = 6}};
  trainer.fit(model, train_data);
  std::cout << "railway obstacle detector accuracy: "
            << dl::Trainer::evaluate_accuracy(model, mission) * 100 << "%\n\n";

  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.timing_budget = 1'000'000;  // cycles, from the timing analysis
  cfg.fallback_class = 1;         // class 1 = "obstacle present" (safe side)
  core::CertifiablePipeline pipeline{model, train_data, cfg};

  std::cout << "mission segment 1: nominal camera feed\n";
  std::size_t braked = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto d = pipeline.infer(mission.samples[i].input, i, 1000);
    const bool brake = d.predicted_class == 1;
    braked += brake ? 1 : 0;
    std::cout << "  frame " << i << ": " << (brake ? "BRAKE " : "clear ")
              << "(label " << mission.samples[i].label << ", status "
              << to_string(d.status) << (d.degraded ? ", degraded" : "")
              << ")\n";
  }

  std::cout << "\nmission segment 2: camera failure (sensor noise burst)\n";
  const dl::Dataset noisy =
      dl::corrupt(mission, dl::Corruption::kUniformRandom, 9);
  std::size_t degraded = 0, braked_on_noise = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto d = pipeline.infer(noisy.samples[i].input, 100 + i, 1000);
    degraded += (d.degraded || !ok(d.status)) ? 1 : 0;
    braked_on_noise += d.predicted_class == 1 ? 1 : 0;
  }
  std::cout << "  degraded/rejected: " << degraded << "/20"
            << ", conservative (brake) decisions: " << braked_on_noise
            << "/20\n";

  std::cout << "\nmission segment 3: deadline overrun\n";
  const auto late = pipeline.infer(mission.samples[0].input, 200,
                                   /*elapsed=*/5'000'000);
  std::cout << "  status " << to_string(late.status) << " -> decision "
            << (late.predicted_class == 1 ? "BRAKE" : "clear")
            << " (fallback engaged)\n";

  std::cout << "\nevidence: audit entries " << pipeline.audit().size()
            << ", chain verifies "
            << (ok(pipeline.audit().verify()) ? "yes" : "no")
            << ", safety case "
            << (pipeline.build_safety_case().complete() ? "complete"
                                                        : "INCOMPLETE")
            << "\n";
  return 0;
}
