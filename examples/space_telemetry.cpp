// Space telemetry anomaly monitoring — the satellite use case.
//
// An autoencoder learns nominal telemetry; reconstruction error flags
// anomalies (spikes, stuck sensor banks, drift). The monitor runs as the
// high-criticality task of a mixed-criticality schedule next to
// best-effort payload software: when the anomaly check overruns its
// optimistic budget, AMC mode switching sheds the payload tasks and the
// monitor still meets every deadline.
//
//   $ ./examples/space_telemetry
#include <iostream>

#include "dl/dataset.hpp"
#include "rt/mixed_criticality.hpp"
#include "supervise/metrics.hpp"
#include "supervise/supervisor.hpp"
#include "util/table.hpp"

int main() {
  using namespace sx;

  // 1. Nominal telemetry for training; a mixed stream for the mission.
  const dl::Dataset nominal = dl::make_satellite_telemetry(300, 5, 0.0);
  const dl::Dataset mission = dl::make_satellite_telemetry(200, 6, 0.3);

  // 2. The anomaly monitor: an autoencoder supervisor on raw telemetry.
  supervise::AutoencoderSupervisor monitor{16, 25, 0.05, 9};
  // The supervisor API carries a task model for feature-based methods; the
  // autoencoder ignores it, so a trivial placeholder model suffices.
  dl::ModelBuilder b{nominal.input_shape};
  b.dense(2);
  const dl::Model placeholder = b.build(1);
  monitor.fit(placeholder, nominal);
  monitor.calibrate_threshold(
      supervise::collect_scores(monitor, placeholder, nominal), 0.99);

  // 3. Detection quality on the mission stream.
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  for (const auto& s : mission.samples) {
    const bool flagged = !monitor.accept(placeholder, s.input);
    if (s.label == 1 && flagged) ++tp;
    if (s.label == 1 && !flagged) ++fn;
    if (s.label == 0 && flagged) ++fp;
    if (s.label == 0 && !flagged) ++tn;
  }
  util::Table det({"", "flagged", "passed"});
  det.add_row({"anomalous", std::to_string(tp), std::to_string(fn)});
  det.add_row({"nominal", std::to_string(fp), std::to_string(tn)});
  det.print(std::cout);
  const double recall = static_cast<double>(tp) / static_cast<double>(tp + fn);
  std::cout << "anomaly recall " << util::fmt_pct(recall) << ", false-alarm "
            << util::fmt_pct(static_cast<double>(fp) /
                             static_cast<double>(fp + tn))
            << "\n\n";

  // 4. Host the monitor as the HI task of a mixed-criticality schedule.
  rt::McTaskSet ts;
  ts.add(rt::McTask{.name = "anomaly-monitor", .period = 100, .deadline = 0,
                    .priority = 0, .high_criticality = true, .wcet_lo = 20,
                    .wcet_hi = 45});
  ts.add(rt::McTask{.name = "payload-compress", .period = 250, .deadline = 0,
                    .priority = 0, .high_criticality = false, .wcet_lo = 80});
  ts.add(rt::McTask{.name = "beacon", .period = 1000, .deadline = 0,
                    .priority = 0, .high_criticality = false, .wcet_lo = 150});
  ts.assign_deadline_monotonic();

  const auto rta = rt::amc_rtb(ts);
  std::cout << "AMC analysis: "
            << (rta.schedulable ? "schedulable" : "NOT schedulable") << "\n";

  // Monitor overruns (deep scan) on 15% of its activations.
  const rt::McExecFn exec = [](const rt::McTask& t, rt::Mode,
                               util::Xoshiro256& rng) -> std::uint64_t {
    if (t.high_criticality && rng.uniform() < 0.15) return t.wcet_hi;
    return t.wcet_lo;
  };
  const auto sim = rt::simulate_mc(
      ts, rt::McSimConfig{.duration = 1'000'000, .seed = 11}, exec);
  std::cout << "mission schedule: " << sim.hi_jobs << " monitor jobs, "
            << sim.hi_misses << " missed deadlines, " << sim.mode_switches
            << " mode switches, payload jobs served "
            << (sim.lo_jobs - sim.lo_dropped) << "/" << sim.lo_jobs << "\n";

  return (recall > 0.8 && rta.schedulable && sim.hi_misses == 0) ? 0 : 1;
}
