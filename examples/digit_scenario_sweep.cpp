// Scenario-sweep walkthrough: train the digit workload, cross ODD
// perturbations x fault campaigns x OOD probes x execution configs into a
// cell grid over the deployed pipeline, and attach the machine-checkable
// evidence matrix to a certification report.
//
//   $ ./examples/digit_scenario_sweep
#include <iostream>

#include "core/report.hpp"
#include "scenario/scenario.hpp"
#include "scenario/workload.hpp"

int main() {
  using namespace sx;

  // 1. The trained end-to-end workload: generate, train, quantize, gate.
  const scenario::DigitWorkload w = scenario::make_digit_workload();
  std::cout << "digit workload: train acc " << w.train_accuracy * 100
            << "%, test acc " << w.test_accuracy * 100 << "%, int8 acc "
            << w.int8_accuracy * 100 << "%\n\n";

  // 2. Sweep the default grid: 3 perturbations x 3 campaigns x OOD off/on
  //    x (all concrete kernel modes x 2 backends x 2 worker counts).
  scenario::ScenarioConfig cfg;
  cfg.max_probes = 96;
  scenario::ScenarioSweeper sweeper{w.model, w.train, w.test, cfg};
  const scenario::ScenarioReport report = sweeper.run();
  std::cout << report.summary() << "\n";

  // 3. Determinism: a second sweep over the same inputs must export the
  //    same bytes — the acceptance contract of the evidence matrix.
  const scenario::ScenarioReport again =
      scenario::ScenarioSweeper{w.model, w.train, w.test, cfg}.run();
  std::cout << "re-run export byte-identical: "
            << (report.to_json() == again.to_json() ? "yes" : "NO") << "\n";

  // 4. The SDC contrast the report must expose: an injected cell vs its
  //    clean twin (same coordinates, campaign=none).
  for (const auto& cell : report.cells) {
    if (!cell.campaign_injected || cell.outcome.sdc == 0) continue;
    std::string clean_id = cell.id;
    const std::size_t at = clean_id.find("/camp=");
    clean_id.replace(at, clean_id.find("/ood=") - at, "/camp=none");
    const auto* clean = report.find(clean_id);
    std::cout << "SDC cell " << cell.id << ": sdc=" << cell.outcome.sdc
              << " of " << cell.outcome.total() << " trials (clean twin "
              << clean_id << ": sdc="
              << (clean != nullptr ? clean->outcome.sdc : 0) << ")\n";
    break;
  }

  // 5. Attach to the assessor-facing certification report.
  core::PipelineConfig pc;
  pc.criticality = cfg.criticality;
  pc.spec = sweeper.config().spec;
  core::CertifiablePipeline pipeline{w.model, w.train, pc};
  const auto cert = core::make_certification_report(
      pipeline, nullptr,
      {core::make_scenario_evidence(report.summary(), report.to_json()),
       core::make_ir_evidence(pipeline),
       core::make_kernel_backend_evidence(pipeline)});
  std::cout << "\ncertification report: " << cert.text.size()
            << " bytes (scenario JSON between SX_SCENARIO_JSON markers, "
               "plan-IR pass evidence between SX_IR_PASSES markers, "
               "resolved kernel backend between SX_KERNEL_BACKEND markers; "
               "recover with tools/sxmetrics --scenario / --ir / --kernel)\n";
  return 0;
}
