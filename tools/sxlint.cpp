// sxlint — FUSA-conformance checker for the SAFEXPLAIN tree.
//
// A self-contained lexical analyzer (no external dependencies) that enforces
// the coding rules the runtime library claims to follow, so "we follow
// safety rules" becomes a checked, CI-enforced property instead of a
// convention:
//
//   banned-call        malloc/calloc/realloc/free/alloca/rand/srand/system/
//                      setjmp/longjmp anywhere under src/ — the library
//                      owns all memory via arenas and all randomness via
//                      seeded Xoshiro256.
//   banned-include     <iostream>/<cstdio>/<stdio.h> in runtime directories
//                      (dl/, safety/, rt/, core/, obs/, scenario/, ir/,
//                      fleet/, serve/):
//                      global stream objects drag in static-init order
//                      hazards and buffered IO.
//   console-io         std::cout/std::cerr/printf/... in runtime dirs.
//   heap-expr          raw `new` / `delete` expressions in runtime dirs;
//                      configuration-time ownership goes through
//                      make_unique, the inference path through arenas.
//   throw-in-noexcept  a `throw` inside a function declared noexcept: the
//                      runtime entry points (Layer::forward, engine run())
//                      are noexcept by contract, so this is exactly "an
//                      exception on the operational path" (it would
//                      std::terminate).
//   recursion          direct self-recursion without an explicit
//                      `// sxlint: allow(recursion)` bound marker —
//                      unbounded stack demand is unverifiable.
//   hot-path-alloc     dynamic allocation in the hot-kernel files
//                      (src/tensor/** and src/dl/plan.*): container
//                      growth calls (push_back/resize/reserve/...),
//                      make_unique/make_shared, and raw `new`. The kernel
//                      plan's contract is that every byte is owned at
//                      deploy time; the few legitimate configuration-time
//                      allocations (the arena's backing store, the plan's
//                      tables/panels) carry reviewed inline waivers.
//   recursion-cycle    whole-file call-graph cycles (mutual recursion,
//                      f -> g -> f). Each participant looks bounded in
//                      isolation — only the assembled per-file call graph
//                      exposes the unbounded combined stack demand, so
//                      this is the one rule that reasons across whole-file
//                      structure instead of a single definition.
//   weight-mutation    an element write into a deployed weight store
//                      (a params()/mutable_weights() span, or a local
//                      alias of one) outside the sanctioned
//                      inject_fault/undo_fault/repack entry points, in
//                      safety/ and the dl kernel files. The verified
//                      weight image is certification input; every other
//                      write site is either a reviewed repair/injection
//                      helper (inline waiver) or a defect.
//
// Waivers: an inline `// sxlint: allow(<rule>)` on the offending line, or a
// per-directory entry in kAllowlist below. Both are part of the reviewed
// tree, so every waiver is itself evidence.
//
// Exit status: 0 when the scanned tree is clean, 1 when findings remain,
// 2 on usage/IO errors. `--fix-dry-run` appends a remediation hint per
// finding (no file is ever modified).
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string fix;
};

struct AllowEntry {
  const char* dir;   // path component or suffix the waiver applies to
  const char* rule;  // rule id, or "*" for all rules
  const char* why;
};

// Per-directory allowlist. Deliberately empty: the shipped tree passes all
// rules without waivers. Add entries only with a written justification —
// they show up in the certification argument.
constexpr AllowEntry kAllowlist[] = {
    {"", "", ""},  // sentinel so the table compiles when empty
};

const std::set<std::string> kRuntimeDirs = {"dl",  "safety", "rt",   "core",
                                            "obs", "ir",     "scenario",
                                            "fleet", "serve"};

const std::set<std::string> kBannedCalls = {
    "malloc", "calloc", "realloc", "free",   "alloca",
    "rand",   "srand",  "system",  "setjmp", "longjmp"};

const std::set<std::string> kConsoleCalls = {"printf", "fprintf", "sprintf",
                                             "puts",   "putchar", "scanf",
                                             "fscanf"};

const std::set<std::string> kBannedIncludes = {"iostream", "cstdio",
                                               "stdio.h"};

// Container growth / ownership-taking calls that mean dynamic allocation
// when they appear in a hot-kernel file.
const std::set<std::string> kHotAllocCalls = {
    "push_back", "emplace_back", "resize",      "reserve",
    "insert",    "emplace",      "assign",      "shrink_to_fit",
    "make_unique", "make_shared"};

// Statement/declaration keywords that the function-definition scanner must
// never mistake for a function name (`if (...) {` parses like a definition).
const std::set<std::string> kStmtKeywords = {
    "if",     "for",    "while",  "switch", "return", "sizeof", "catch",
    "case",   "do",     "else",   "new",    "delete", "static", "const",
    "struct", "class",  "enum",   "using",  "public", "private"};

// Deployed weight stores: spans handed out by Model/QuantizedModel. The
// names double as the conventional local-alias names
// (`auto params = model.layer(l).params();`), so both the direct call form
// and the alias form are caught.
const std::set<std::string> kWeightStores = {"params", "weights",
                                             "mutable_weights"};

// The only entry points allowed to write a deployed weight store: fault
// injection/undo (safety::InferenceChannel contract) and panel repack
// after a weight change.
const std::set<std::string> kWeightWriters = {"inject_fault", "undo_fault",
                                              "repack"};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comments and string/char literals with spaces (newlines kept)
/// so the rule matchers never fire inside text. Lines carrying an
/// `sxlint: allow(<rule>)` marker are recorded before stripping.
struct StrippedSource {
  std::string text;
  std::map<std::size_t, std::set<std::string>> waivers;  // line -> rules
};

StrippedSource strip(const std::string& src) {
  StrippedSource out;
  out.text.assign(src.size(), ' ');
  std::size_t line = 1;
  enum class Mode { kCode, kLineComment, kBlockComment, kString, kChar };
  Mode mode = Mode::kCode;
  std::string comment;  // accumulates the current comment for waiver scan
  auto flush_comment = [&](std::size_t at_line) {
    const std::string tag = "sxlint: allow(";
    std::size_t pos = 0;
    while ((pos = comment.find(tag, pos)) != std::string::npos) {
      pos += tag.size();
      const std::size_t end = comment.find(')', pos);
      if (end == std::string::npos) break;
      out.waivers[at_line].insert(comment.substr(pos, end - pos));
      pos = end;
    }
    comment.clear();
  };
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : '\0';
    if (c == '\n') {
      if (mode == Mode::kLineComment) {
        flush_comment(line);
        mode = Mode::kCode;
      }
      out.text[i] = '\n';
      ++line;
      continue;
    }
    switch (mode) {
      case Mode::kCode:
        if (c == '/' && n == '/') {
          mode = Mode::kLineComment;
        } else if (c == '/' && n == '*') {
          mode = Mode::kBlockComment;
          ++i;
        } else if (c == '"') {
          mode = Mode::kString;
          out.text[i] = '"';
        } else if (c == '\'') {
          mode = Mode::kChar;
        } else {
          out.text[i] = c;
        }
        break;
      case Mode::kLineComment:
        comment += c;
        break;
      case Mode::kBlockComment:
        comment += c;
        if (c == '*' && n == '/') {
          flush_comment(line);
          mode = Mode::kCode;
          ++i;
        }
        break;
      case Mode::kString:
        if (c == '\\') {
          ++i;
          if (i < src.size() && src[i] == '\n') ++line;
        } else if (c == '"') {
          out.text[i] = '"';
          mode = Mode::kCode;
        }
        break;
      case Mode::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          mode = Mode::kCode;
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return static_cast<std::size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(pos),
                        '\n')) +
         1;
}

bool is_runtime_path(const fs::path& p) {
  for (const auto& part : p)
    if (kRuntimeDirs.count(part.string()) != 0) return true;
  return false;
}

/// Hot-kernel files under the zero-allocation contract: everything in a
/// tensor/ directory, plus the kernel plans (dl/plan.*, dl/qplan.*) and the
/// quantized runtime (dl/quant.*) — its run()/apply_layer() hot path shares
/// the same "every byte owned at deploy time" contract.
bool is_hot_path(const fs::path& p) {
  bool in_dl = false;
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "tensor") return true;
    if (s == "dl") in_dl = true;
  }
  if (!in_dl) return false;
  const std::string stem = p.stem().string();
  return stem == "plan" || stem == "qplan" || stem == "quant";
}

/// Files that own or repair the deployed weight image: all of safety/
/// (fault injection, integrity scrub, channels) plus the dl kernel files
/// whose packed panels snapshot the weights.
bool is_weight_store_path(const fs::path& p) {
  bool in_dl = false;
  for (const auto& part : p) {
    const std::string s = part.string();
    if (s == "safety") return true;
    if (s == "dl") in_dl = true;
  }
  if (!in_dl) return false;
  const std::string stem = p.stem().string();
  return stem == "plan" || stem == "qplan" || stem == "engine" ||
         stem == "quant";
}

bool allowlisted(const std::string& file, const std::string& rule) {
  for (const auto& a : kAllowlist) {
    if (a.dir[0] == '\0') continue;  // sentinel
    if (file.find(a.dir) == std::string::npos) continue;
    if (std::string(a.rule) == "*" || rule == a.rule) return true;
  }
  return false;
}

/// Next identifier token starting at or after `pos`; returns npos when none.
std::size_t next_ident(const std::string& t, std::size_t pos,
                       std::string* ident) {
  while (pos < t.size() && !ident_char(t[pos])) ++pos;
  if (pos >= t.size()) return std::string::npos;
  if (std::isdigit(static_cast<unsigned char>(t[pos]))) {
    while (pos < t.size() && ident_char(t[pos])) ++pos;
    return next_ident(t, pos, ident);
  }
  std::size_t end = pos;
  while (end < t.size() && ident_char(t[end])) ++end;
  *ident = t.substr(pos, end - pos);
  return pos;
}

std::size_t skip_ws(const std::string& t, std::size_t pos) {
  while (pos < t.size() &&
         std::isspace(static_cast<unsigned char>(t[pos])))
    ++pos;
  return pos;
}

/// Number of top-level arguments in the parenthesized list opening at
/// `open` (position of '('): 0 for an empty list, commas+1 otherwise.
std::size_t count_args(const std::string& t, std::size_t open) {
  int depth = 0;
  bool content = false;
  std::size_t commas = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    const char c = t[i];
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) break;
    }
    if (c == '>' && depth > 1) --depth;  // crude template-angle balance
    if (depth == 1 && c == ',') ++commas;
    if (depth >= 1 && i > open &&
        !std::isspace(static_cast<unsigned char>(c)) && c != ')')
      content = true;
  }
  return content ? commas + 1 : 0;
}

/// Position one past the brace that matches the '{' at `open`.
std::size_t match_brace(const std::string& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == '{') ++depth;
    if (t[i] == '}') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return t.size();
}

/// True when the body [open,close) is exactly `{ [return] name(...); }` —
/// an overload delegating to a same-named sibling.
bool is_delegation_body(const std::string& t, std::size_t open,
                        std::size_t close, const std::string& name) {
  std::size_t cur = skip_ws(t, open + 1);
  std::string word;
  std::size_t wpos = next_ident(t, cur, &word);
  if (wpos == std::string::npos || wpos != cur) return false;
  if (word == "return") cur = skip_ws(t, cur + word.size());
  wpos = next_ident(t, cur, &word);
  if (wpos != cur || word != name) return false;
  cur = skip_ws(t, cur + word.size());
  if (cur >= t.size() || t[cur] != '(') return false;
  int depth = 0;
  for (; cur < t.size(); ++cur) {
    if (t[cur] == '(') ++depth;
    if (t[cur] == ')') {
      --depth;
      if (depth == 0) {
        ++cur;
        break;
      }
    }
  }
  cur = skip_ws(t, cur);
  if (cur >= t.size() || t[cur] != ';') return false;
  cur = skip_ws(t, cur + 1);
  return cur + 1 == close && t[cur] == '}';
}

class Linter {
 public:
  explicit Linter(bool fix_dry_run) : fix_(fix_dry_run) {}

  void scan_file(const fs::path& path) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "sxlint: cannot read " << path << "\n";
      io_error_ = true;
      return;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();
    const StrippedSource s = strip(raw);
    const std::string file = path.generic_string();
    const bool runtime = is_runtime_path(path);
    const bool hot = is_hot_path(path);
    ++files_;

    check_includes(file, raw, s, runtime);
    check_identifiers(file, s, runtime);
    check_heap_exprs(file, s, runtime);
    check_noexcept_throw(file, s);
    check_recursion(file, s);
    check_call_graph(file, s);
    if (hot) check_hot_allocs(file, s);
    if (is_weight_store_path(path)) check_weight_mutation(file, s);
  }

  void report(std::ostream& os) const {
    for (const auto& f : findings_) {
      os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
         << "\n";
      if (fix_ && !f.fix.empty()) os << "    fix: " << f.fix << "\n";
    }
    os << "sxlint: " << findings_.size() << " finding(s), " << waived_
       << " waived, " << files_ << " file(s) scanned\n";
  }

  int exit_code() const {
    if (io_error_) return 2;
    return findings_.empty() ? 0 : 1;
  }

 private:
  void add(const std::string& file, const StrippedSource& s, std::size_t pos,
           const std::string& rule, std::string message, std::string fix) {
    const std::size_t line = line_of(s.text, pos);
    const auto it = s.waivers.find(line);
    if (it != s.waivers.end() && it->second.count(rule) != 0) {
      ++waived_;
      return;
    }
    if (allowlisted(file, rule)) {
      ++waived_;
      return;
    }
    findings_.push_back(
        {file, line, rule, std::move(message), std::move(fix)});
  }

  void check_includes(const std::string& file, const std::string& raw,
                      const StrippedSource& s, bool runtime) {
    if (!runtime) return;
    std::size_t pos = 0;
    while ((pos = raw.find("#include", pos)) != std::string::npos) {
      const std::size_t open = raw.find_first_of("<\"\n", pos + 8);
      if (open != std::string::npos && raw[open] != '\n') {
        const char close_ch = raw[open] == '<' ? '>' : '"';
        const std::size_t close = raw.find(close_ch, open + 1);
        if (close != std::string::npos) {
          const std::string header = raw.substr(open + 1, close - open - 1);
          if (kBannedIncludes.count(header) != 0)
            add(file, s, pos, "banned-include",
                "<" + header + "> included in a runtime directory",
                "report through sx::Status / core/report instead of "
                "stream IO");
        }
      }
      pos += 8;
    }
  }

  void check_identifiers(const std::string& file, const StrippedSource& s,
                         bool runtime) {
    const std::string& t = s.text;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      const std::size_t after = skip_ws(t, end);
      const bool called = after < t.size() && t[after] == '(';
      if (called && kBannedCalls.count(ident) != 0) {
        add(file, s, pos, "banned-call",
            "call to banned function '" + ident + "'",
            ident == "rand" || ident == "srand"
                ? "use the seeded util::Xoshiro256 generator"
                : "use tensor::Arena / std:: containers planned at "
                  "configuration time");
      } else if (called && runtime && kConsoleCalls.count(ident) != 0) {
        add(file, s, pos, "console-io",
            "console IO '" + ident + "' in a runtime directory",
            "emit evidence through core/report or trace::AuditLog");
      }
      if (runtime && (ident == "cout" || ident == "cerr" || ident == "clog") &&
          pos >= 2 && t[pos - 1] == ':' && t[pos - 2] == ':') {
        add(file, s, pos, "console-io",
            "std::" + ident + " in a runtime directory",
            "emit evidence through core/report or trace::AuditLog");
      }
      pos = end;
    }
  }

  void check_heap_exprs(const std::string& file, const StrippedSource& s,
                        bool runtime) {
    if (!runtime) return;
    const std::string& t = s.text;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      if (ident == "new") {
        const std::size_t after = skip_ws(t, end);
        if (after < t.size() && (ident_char(t[after]) || t[after] == '('))
          add(file, s, pos, "heap-expr",
              "raw `new` expression in a runtime directory",
              "own configuration-time memory via std::make_unique; "
              "inference-path memory via tensor::Arena");
      } else if (ident == "delete") {
        // `= delete;` (deleted special member) is a declaration, not a
        // heap operation.
        std::size_t before = pos;
        while (before > 0 &&
               std::isspace(static_cast<unsigned char>(t[before - 1])))
          --before;
        if (before == 0 || t[before - 1] != '=')
          add(file, s, pos, "heap-expr",
              "raw `delete` expression in a runtime directory",
              "let std::unique_ptr / tensor::Arena own the lifetime");
      }
      pos = end;
    }
  }

  void check_hot_allocs(const std::string& file, const StrippedSource& s) {
    const std::string& t = s.text;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      const std::size_t after = skip_ws(t, end);
      // make_unique<T>(...) / container.resize(...): a call (possibly
      // through a template argument list) means allocation may happen.
      const bool called =
          after < t.size() && (t[after] == '(' || t[after] == '<');
      if (called && kHotAllocCalls.count(ident) != 0) {
        add(file, s, pos, "hot-path-alloc",
            "dynamic allocation ('" + ident + "') in a hot-kernel file",
            "size it at deploy time into plan-owned storage or the engine "
            "arena; waive genuine configuration-time allocations inline");
      } else if (ident == "new" && after < t.size() &&
                 (ident_char(t[after]) || t[after] == '(')) {
        add(file, s, pos, "hot-path-alloc",
            "raw `new` expression in a hot-kernel file",
            "own deploy-time memory via a waived make_unique; "
            "inference-path memory via tensor::Arena");
      }
      pos = end;
    }
  }

  void check_noexcept_throw(const std::string& file,
                            const StrippedSource& s) {
    const std::string& t = s.text;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      std::size_t end = pos + ident.size();
      if (ident != "noexcept") {
        pos = end;
        continue;
      }
      // Skip a conditional noexcept(...) argument list.
      std::size_t cur = skip_ws(t, end);
      if (cur < t.size() && t[cur] == '(') {
        int depth = 0;
        for (; cur < t.size(); ++cur) {
          if (t[cur] == '(') ++depth;
          if (t[cur] == ')') {
            --depth;
            if (depth == 0) {
              ++cur;
              break;
            }
          }
        }
      }
      // A function *definition* follows when the next structural token is
      // '{' (qualifiers like `override`/`final` may intervene); `;` or `=`
      // mean declaration / deleted-or-defaulted member — nothing to scan.
      std::size_t body = cur;
      while (body < t.size() && t[body] != '{' && t[body] != ';' &&
             t[body] != '=' && t[body] != '}')
        ++body;
      if (body < t.size() && t[body] == '{') {
        const std::size_t close = match_brace(t, body);
        std::string word;
        std::size_t wpos = body;
        while ((wpos = next_ident(t, wpos, &word)) != std::string::npos &&
               wpos < close) {
          if (word == "throw")
            add(file, s, wpos, "throw-in-noexcept",
                "`throw` inside a noexcept function (std::terminate on the "
                "operational path)",
                "return an sx::Status error code instead");
          wpos += word.size();
        }
        pos = close;
        continue;
      }
      pos = end;
    }
  }

  void check_recursion(const std::string& file, const StrippedSource& s) {
    const std::string& t = s.text;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      if (kStmtKeywords.count(ident) != 0) {
        pos = end;
        continue;
      }
      std::size_t cur = skip_ws(t, end);
      if (cur >= t.size() || t[cur] != '(') {
        pos = end;
        continue;
      }
      // Parameter list, then an optional run of qualifier tokens, then '{'
      // makes this a plausible function definition named `ident`.
      const std::size_t params = count_args(t, cur);
      int depth = 0;
      for (; cur < t.size(); ++cur) {
        if (t[cur] == '(') ++depth;
        if (t[cur] == ')') {
          --depth;
          if (depth == 0) {
            ++cur;
            break;
          }
        }
      }
      std::size_t body = cur;
      while (body < t.size() && t[body] != '{' && t[body] != ';' &&
             t[body] != '(' && t[body] != '}' && t[body] != ',' &&
             t[body] != ')' && t[body] != '=')
        ++body;
      if (body >= t.size() || t[body] != '{') {
        pos = end;
        continue;
      }
      const std::size_t close = match_brace(t, body);
      if (is_delegation_body(t, body, close, ident)) {
        // `{ [return] name(...); }` is an overload forwarding to a
        // sibling, not recursion (the recursive form would never return).
        pos = close;
        continue;
      }
      std::string word;
      std::size_t wpos = body;
      while ((wpos = next_ident(t, wpos, &word)) != std::string::npos &&
             wpos < close) {
        const std::size_t wend = wpos + word.size();
        if (word == ident) {
          // A self-call: not member access on another object, not a
          // `std::`/other-namespace-qualified name, and passing the same
          // number of arguments (a differing count targets an overload).
          const std::size_t after = skip_ws(t, wend);
          const bool qualified =
              wpos >= 1 && (t[wpos - 1] == '.' || t[wpos - 1] == ':' ||
                            (wpos >= 2 && t[wpos - 2] == '-' &&
                             t[wpos - 1] == '>'));
          if (!qualified && after < t.size() && t[after] == '(' &&
              count_args(t, after) == params)
            add(file, s, wpos, "recursion",
                "direct self-recursion in '" + ident +
                    "' without a bound marker",
                "rewrite iteratively, or document the depth bound with "
                "`// sxlint: allow(recursion)`");
        }
        wpos = wend;
      }
      pos = end;
    }
  }

  /// One function definition discovered by the whole-file scan: the name
  /// token position (where findings anchor), the body range, and the
  /// parameter count (used to match calls to overloads).
  struct FnDef {
    std::string name;
    std::size_t pos = 0;
    std::size_t body = 0;
    std::size_t close = 0;
    std::size_t params = 0;
  };

  /// Collects every plausible function definition in the stripped source,
  /// using the same lexical recognizer as check_recursion: identifier,
  /// balanced parameter list, optional qualifier tokens, then a braced
  /// body. Names in `only` restrict the collection when non-empty.
  static std::vector<FnDef> collect_defs(const std::string& t,
                                         const std::set<std::string>& only) {
    std::vector<FnDef> defs;
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      if (kStmtKeywords.count(ident) != 0 ||
          (!only.empty() && only.count(ident) == 0)) {
        pos = end;
        continue;
      }
      std::size_t cur = skip_ws(t, end);
      if (cur >= t.size() || t[cur] != '(') {
        pos = end;
        continue;
      }
      const std::size_t params = count_args(t, cur);
      int depth = 0;
      for (; cur < t.size(); ++cur) {
        if (t[cur] == '(') ++depth;
        if (t[cur] == ')') {
          --depth;
          if (depth == 0) {
            ++cur;
            break;
          }
        }
      }
      std::size_t body = cur;
      while (body < t.size() && t[body] != '{' && t[body] != ';' &&
             t[body] != '(' && t[body] != '}' && t[body] != ',' &&
             t[body] != ')' && t[body] != '=')
        ++body;
      if (body >= t.size() || t[body] != '{') {
        pos = end;
        continue;
      }
      defs.push_back({ident, pos, body, match_brace(t, body), params});
      pos = end;
    }
    return defs;
  }

  /// Whole-file call-graph cycle detection (rule `recursion-cycle`):
  /// mutual recursion f -> g -> f that the per-definition `recursion` rule
  /// cannot see. Edges connect same-file definitions through unqualified
  /// calls whose argument count matches a definition of the callee name;
  /// direct self-calls stay under the `recursion` rule. One finding per
  /// cycle, anchored at the lexically-first participant so the standard
  /// inline-waiver flow applies.
  void check_call_graph(const std::string& file, const StrippedSource& s) {
    const std::string& t = s.text;
    const std::vector<FnDef> defs = collect_defs(t, {});
    if (defs.size() < 2) return;
    std::map<std::string, std::vector<const FnDef*>> by_name;
    for (const auto& d : defs) by_name[d.name].push_back(&d);

    std::map<std::string, std::set<std::string>> edges;
    for (const auto& d : defs) {
      std::string word;
      std::size_t wpos = d.body;
      while ((wpos = next_ident(t, wpos, &word)) != std::string::npos &&
             wpos < d.close) {
        const std::size_t wend = wpos + word.size();
        if (word != d.name && by_name.count(word) != 0) {
          const std::size_t after = skip_ws(t, wend);
          const bool qualified =
              wpos >= 1 && (t[wpos - 1] == '.' || t[wpos - 1] == ':' ||
                            (wpos >= 2 && t[wpos - 2] == '-' &&
                             t[wpos - 1] == '>'));
          if (!qualified && after < t.size() && t[after] == '(') {
            const std::size_t nargs = count_args(t, after);
            for (const FnDef* callee : by_name[word]) {
              if (callee->params == nargs) {
                edges[d.name].insert(word);
                break;
              }
            }
          }
        }
        wpos = wend;
      }
    }

    auto reaches = [&edges](const std::string& from, const std::string& to) {
      std::set<std::string> seen;
      std::vector<std::string> stack{from};
      while (!stack.empty()) {
        const std::string cur = stack.back();
        stack.pop_back();
        const auto it = edges.find(cur);
        if (it == edges.end()) continue;
        for (const auto& nxt : it->second) {
          if (nxt == to) return true;
          if (seen.insert(nxt).second) stack.push_back(nxt);
        }
      }
      return false;
    };

    // Self-edges were excluded above, so reaching yourself means a cycle
    // through at least one other function. Group mutually-reachable
    // participants so each cycle reports exactly once.
    std::vector<std::string> cyclic;
    for (const auto& e : edges)
      if (reaches(e.first, e.first)) cyclic.push_back(e.first);
    std::set<std::string> grouped;
    for (const auto& a : cyclic) {
      if (grouped.count(a) != 0) continue;
      std::vector<std::string> members{a};
      grouped.insert(a);
      for (const auto& b : cyclic) {
        if (grouped.count(b) != 0) continue;
        if (reaches(a, b) && reaches(b, a)) {
          members.push_back(b);
          grouped.insert(b);
        }
      }
      if (members.size() < 2) continue;
      const FnDef* anchor = nullptr;
      for (const auto& n : members)
        for (const FnDef* d : by_name[n])
          if (anchor == nullptr || d->pos < anchor->pos) anchor = d;
      std::sort(members.begin(), members.end(),
                [&by_name](const std::string& x, const std::string& y) {
                  return by_name[x].front()->pos < by_name[y].front()->pos;
                });
      std::string chain;
      for (const auto& n : members) {
        if (!chain.empty()) chain += " -> ";
        chain += "'" + n + "'";
      }
      add(file, s, anchor->pos, "recursion-cycle",
          "mutual recursion cycle " + chain +
              " (unbounded combined stack demand)",
          "break the cycle with an explicit worklist, or document the "
          "joint depth bound with `// sxlint: allow(recursion-cycle)` at "
          "the first participant");
    }
  }

  /// Weight-store mutation audit (rule `weight-mutation`): an element
  /// write through params()/mutable_weights() — or a local span alias
  /// named like one — outside the bodies of the sanctioned
  /// inject_fault/undo_fault/repack entry points. Reads (`params[i]` on a
  /// right-hand side), whole-handle rebinds (`auto params = ...`), and
  /// struct-field assignments (`s.weights = ptr`) stay silent: only an
  /// indexed store mutates the deployed image.
  void check_weight_mutation(const std::string& file,
                             const StrippedSource& s) {
    const std::string& t = s.text;
    const std::vector<FnDef> sanctioned = collect_defs(t, kWeightWriters);
    auto inside_sanctioned = [&sanctioned](std::size_t p) {
      for (const auto& d : sanctioned)
        if (p >= d.body && p < d.close) return true;
      return false;
    };
    std::string ident;
    std::size_t pos = 0;
    while ((pos = next_ident(t, pos, &ident)) != std::string::npos) {
      const std::size_t end = pos + ident.size();
      if (kWeightStores.count(ident) == 0) {
        pos = end;
        continue;
      }
      // Accessor-call form first (`params()` / `mutable_weights(i)`), then
      // the mandatory element index, then an assignment operator.
      std::size_t cur = skip_ws(t, end);
      if (cur < t.size() && t[cur] == '(') {
        int depth = 0;
        for (; cur < t.size(); ++cur) {
          if (t[cur] == '(') ++depth;
          if (t[cur] == ')') {
            --depth;
            if (depth == 0) {
              ++cur;
              break;
            }
          }
        }
        cur = skip_ws(t, cur);
      }
      if (cur >= t.size() || t[cur] != '[') {
        pos = end;
        continue;
      }
      int depth = 0;
      for (; cur < t.size(); ++cur) {
        if (t[cur] == '[') ++depth;
        if (t[cur] == ']') {
          --depth;
          if (depth == 0) {
            ++cur;
            break;
          }
        }
      }
      cur = skip_ws(t, cur);
      const bool plain = cur < t.size() && t[cur] == '=' &&
                         (cur + 1 >= t.size() || t[cur + 1] != '=');
      const bool compound =
          cur + 1 < t.size() && t[cur + 1] == '=' &&
          (t[cur] == '+' || t[cur] == '-' || t[cur] == '*' ||
           t[cur] == '/' || t[cur] == '%' || t[cur] == '&' ||
           t[cur] == '|' || t[cur] == '^');
      if ((plain || compound) && !inside_sanctioned(pos))
        add(file, s, pos, "weight-mutation",
            "write into weight store '" + ident +
                "' outside inject_fault/undo_fault/repack",
            "route the write through the sanctioned fault/repair entry "
            "points, or waive the reviewed repair site inline with "
            "`// sxlint: allow(weight-mutation)`");
      pos = end;
    }
  }

  bool fix_;
  bool io_error_ = false;
  std::size_t files_ = 0;
  std::size_t waived_ = 0;
  std::vector<Finding> findings_;
};

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

}  // namespace

int main(int argc, char** argv) {
  bool fix_dry_run = false;
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fix-dry-run") {
      fix_dry_run = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sxlint [--fix-dry-run] <path>...\n"
                << "Scans C++ sources for FUSA-conformance violations; see "
                   "the header of tools/sxlint.cpp for the rule set.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "sxlint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "sxlint: no paths given (try: sxlint src)\n";
    return 2;
  }

  Linter linter(fix_dry_run);
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry :
           fs::recursive_directory_iterator(root, ec))
        if (entry.is_regular_file() && source_file(entry.path()))
          files.push_back(entry.path());
      std::sort(files.begin(), files.end());
      for (const auto& f : files) linter.scan_file(f);
    } else if (fs::is_regular_file(root, ec)) {
      linter.scan_file(root);
    } else {
      std::cerr << "sxlint: no such path " << root << "\n";
      return 2;
    }
  }
  linter.report(std::cout);
  return linter.exit_code();
}
