// sxmetrics — offline telemetry-snapshot extractor.
//
// A deployed CertifiablePipeline embeds its metrics exposition and
// flight-recorder stage trail in the certification report between marker
// pairs (see core::make_observability_evidence):
//
//   # BEGIN SX_METRICS ... # END SX_METRICS          Prometheus text format
//   # BEGIN SX_FLIGHT_TRAIL ... # END SX_FLIGHT_TRAIL  stage-span trail
//
// sxmetrics recovers either block from a serialized report file (or stdin)
// so a scrape pipeline, diff tool or assessor can consume the snapshot
// without parsing the surrounding prose:
//
//   sxmetrics report.txt              # print the metrics exposition
//   sxmetrics --flight report.txt    # print the flight-recorder trail
//   sxmetrics --summary report.txt   # one line per metric family
//
// Exit status: 0 on success, 1 when the requested block is missing,
// 2 on usage/IO errors. Host tool: iostream/filesystem are fine here.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Returns the text between the marker lines, or an empty string (and
/// found=false) when the pair is absent or malformed.
std::string extract_block(const std::string& text, const std::string& begin,
                          const std::string& end, bool& found) {
  found = false;
  const std::size_t b = text.find(begin);
  if (b == std::string::npos) return {};
  const std::size_t body = text.find('\n', b);
  if (body == std::string::npos) return {};
  const std::size_t e = text.find(end, body + 1);
  if (e == std::string::npos) return {};
  found = true;
  return text.substr(body + 1, e - body - 1);
}

/// One line per metric family: `<type> <name> = <value|count>` — counters
/// and gauges show their value, histograms their _count.
std::string summarize(const std::string& exposition) {
  std::ostringstream out;
  std::istringstream in(exposition);
  std::string line;
  std::string pending_type;  // from the preceding # TYPE line
  std::string pending_name;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      fields >> pending_name >> pending_type;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (pending_type == "histogram") {
      if (series == pending_name + "_count")
        out << "histogram " << pending_name << " count=" << value << "\n";
      continue;
    }
    if (series == pending_name)
      out << pending_type << " " << pending_name << " = " << value << "\n";
  }
  return out.str();
}

int usage() {
  std::cerr << "usage: sxmetrics [--flight|--summary] [report-file|-]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool flight = false;
  bool summary = false;
  std::string path = "-";
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--flight") {
      flight = true;
    } else if (a == "--summary") {
      summary = true;
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      return usage();
    } else {
      path = a;
    }
  }
  if (flight && summary) return usage();

  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "sxmetrics: cannot open " << path << "\n";
      return 2;
    }
    buf << f.rdbuf();
  }

  const std::string begin =
      flight ? "# BEGIN SX_FLIGHT_TRAIL" : "# BEGIN SX_METRICS";
  const std::string end = flight ? "# END SX_FLIGHT_TRAIL" : "# END SX_METRICS";
  bool found = false;
  const std::string block = extract_block(buf.str(), begin, end, found);
  if (!found) {
    std::cerr << "sxmetrics: no " << begin.substr(8)
              << " block in input (telemetry disabled, or not a "
                 "certification report)\n";
    return 1;
  }
  std::cout << (summary ? summarize(block) : block);
  return 0;
}
