// sxmetrics — offline telemetry-snapshot extractor.
//
// A deployed CertifiablePipeline embeds its metrics exposition and
// flight-recorder stage trail in the certification report between marker
// pairs (see core::make_observability_evidence), and a scenario sweep adds
// its machine-checkable evidence matrix (see core::make_scenario_evidence):
//
//   # BEGIN SX_METRICS ... # END SX_METRICS          Prometheus text format
//   # BEGIN SX_FLIGHT_TRAIL ... # END SX_FLIGHT_TRAIL  stage-span trail
//   # BEGIN SX_SCENARIO_JSON ... # END SX_SCENARIO_JSON  scenario matrix
//   # BEGIN SX_IR_PASSES ... # END SX_IR_PASSES      IR pass-pipeline audit
//                                                    (see make_ir_evidence)
//   # BEGIN SX_FLEET_EVIDENCE ... # END SX_FLEET_EVIDENCE  merged fleet
//                                                    campaign bounds/roots
//                                                    (see make_fleet_evidence)
//   # BEGIN SX_KERNEL_BACKEND ... # END SX_KERNEL_BACKEND  resolved kernel
//                                                    mode + CPU-probe ISA
//                                                    selection (see
//                                                    make_kernel_backend_evidence)
//   # BEGIN SX_SERVING_EVIDENCE ... # END SX_SERVING_EVIDENCE  serving
//                                                    admission/traffic
//                                                    verdict + decision
//                                                    digest (see
//                                                    make_serving_evidence)
//
// sxmetrics recovers any block from a serialized report file (or stdin)
// so a scrape pipeline, diff tool or assessor can consume the snapshot
// without parsing the surrounding prose:
//
//   sxmetrics report.txt              # print the metrics exposition
//   sxmetrics --flight report.txt    # print the flight-recorder trail
//   sxmetrics --summary report.txt   # one line per metric family
//   sxmetrics --json report.txt      # metrics exposition as JSON, so the
//                                    # counters can be diffed mechanically
//                                    # against a ScenarioReport's per-cell
//                                    # obs snapshots
//   sxmetrics --scenario report.txt  # the scenario evidence-matrix JSON
//   sxmetrics --ir report.txt        # the IR pass-pipeline audit lines
//                                    # (per-pass facts + arena totals per
//                                    # kernel plan), one record per line
//   sxmetrics --fleet report.txt     # the merged fleet-campaign evidence
//                                    # (outcome counts, Clopper-Pearson /
//                                    # Bayesian SDC bounds, audit roots)
//   sxmetrics --kernel report.txt    # the resolved kernel backend record
//                                    # (requested vs deployed mode, CPU
//                                    # probe + SX_KERNEL_ISA decision)
//   sxmetrics --serving report.txt   # the serving front-end evidence
//                                    # (AMC-rtb admission bounds, traffic /
//                                    # shed / deadline counters, decision
//                                    # digest and audit head)
//
// Exit status: 0 on success, 1 when the requested block is missing,
// 2 on usage/IO errors. Host tool: iostream/filesystem are fine here.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Returns the text between the marker lines, or an empty string (and
/// found=false) when the pair is absent or malformed.
std::string extract_block(const std::string& text, const std::string& begin,
                          const std::string& end, bool& found) {
  found = false;
  const std::size_t b = text.find(begin);
  if (b == std::string::npos) return {};
  const std::size_t body = text.find('\n', b);
  if (body == std::string::npos) return {};
  const std::size_t e = text.find(end, body + 1);
  if (e == std::string::npos) return {};
  found = true;
  return text.substr(body + 1, e - body - 1);
}

/// One line per metric family: `<type> <name> = <value|count>` — counters
/// and gauges show their value, histograms their _count.
std::string summarize(const std::string& exposition) {
  std::ostringstream out;
  std::istringstream in(exposition);
  std::string line;
  std::string pending_type;  // from the preceding # TYPE line
  std::string pending_name;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      fields >> pending_name >> pending_type;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (pending_type == "histogram") {
      if (series == pending_name + "_count")
        out << "histogram " << pending_name << " count=" << value << "\n";
      continue;
    }
    if (series == pending_name)
      out << pending_type << " " << pending_name << " = " << value << "\n";
  }
  return out.str();
}

/// True when `v` can be emitted as a bare JSON number (Prometheus values
/// are numeric, but +Inf/NaN and exotic spellings must be quoted).
bool plain_json_number(const std::string& v) {
  if (v.empty()) return false;
  std::size_t i = v[0] == '-' ? 1 : 0;
  if (i == v.size()) return false;
  bool digit = false, dot = false, exp = false;
  for (; i < v.size(); ++i) {
    const char c = v[i];
    if (c >= '0' && c <= '9') {
      digit = true;
    } else if (c == '.' && !dot && !exp) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit && !exp) {
      exp = true;
      if (i + 1 < v.size() && (v[i + 1] == '+' || v[i + 1] == '-')) ++i;
    } else {
      return false;
    }
  }
  return digit;
}

void json_value(std::ostringstream& out, const std::string& v) {
  if (plain_json_number(v)) {
    out << v;
  } else {
    out << '"' << v << '"';
  }
}

/// Metrics exposition as one JSON object grouped by family type:
///   {"counter":{name:value,...},"gauge":{...},
///    "histogram":{name:{"count":n,"sum":s},...}}
/// Mirrors summarize()'s view of the exposition (labelled series such as
/// histogram buckets are folded into their family), so the counter map can
/// be compared field-by-field against a ScenarioReport cell's obs
/// snapshot. Metric names are [a-zA-Z0-9_:] per the exposition format, so
/// they need no escaping.
std::string to_json(const std::string& exposition) {
  std::ostringstream counters, gauges, hists;
  std::istringstream in(exposition);
  std::string line;
  std::string pending_type;
  std::string pending_name;
  std::string hist_count, hist_sum;  // collected for the open histogram
  bool hist_open = false;
  auto close_hist = [&] {
    if (!hist_open) return;
    hists << (hists.tellp() > 0 ? "," : "") << '"' << pending_name
          << "\":{\"count\":";
    json_value(hists, hist_count.empty() ? "0" : hist_count);
    hists << ",\"sum\":";
    json_value(hists, hist_sum.empty() ? "0" : hist_sum);
    hists << '}';
    hist_open = false;
  };
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      close_hist();
      std::istringstream fields(line.substr(7));
      fields >> pending_name >> pending_type;
      if (pending_type == "histogram") {
        hist_open = true;
        hist_count.clear();
        hist_sum.clear();
      }
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    const std::string series = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    if (pending_type == "histogram") {
      if (series == pending_name + "_count") hist_count = value;
      if (series == pending_name + "_sum") hist_sum = value;
      continue;
    }
    if (series != pending_name) continue;
    std::ostringstream& out = pending_type == "counter" ? counters : gauges;
    out << (out.tellp() > 0 ? "," : "") << '"' << series << "\":";
    json_value(out, value);
  }
  close_hist();
  std::ostringstream out;
  out << "{\"counter\":{" << counters.str() << "},\"gauge\":{" << gauges.str()
      << "},\"histogram\":{" << hists.str() << "}}\n";
  return out.str();
}

int usage() {
  std::cerr << "usage: sxmetrics "
               "[--flight|--summary|--json|--scenario|--ir|--fleet|--kernel|"
               "--serving] [report-file|-]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool flight = false;
  bool summary = false;
  bool json = false;
  bool scenario = false;
  bool ir = false;
  bool fleet = false;
  bool kernel = false;
  bool serving = false;
  std::string path = "-";
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const auto& a : args) {
    if (a == "--flight") {
      flight = true;
    } else if (a == "--summary") {
      summary = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--scenario") {
      scenario = true;
    } else if (a == "--ir") {
      ir = true;
    } else if (a == "--fleet") {
      fleet = true;
    } else if (a == "--kernel") {
      kernel = true;
    } else if (a == "--serving") {
      serving = true;
    } else if (!a.empty() && a[0] == '-' && a != "-") {
      return usage();
    } else {
      path = a;
    }
  }
  if (flight + summary + json + scenario + ir + fleet + kernel + serving > 1)
    return usage();

  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream f(path);
    if (!f) {
      std::cerr << "sxmetrics: cannot open " << path << "\n";
      return 2;
    }
    buf << f.rdbuf();
  }

  std::string begin = "# BEGIN SX_METRICS";
  std::string end = "# END SX_METRICS";
  if (flight) {
    begin = "# BEGIN SX_FLIGHT_TRAIL";
    end = "# END SX_FLIGHT_TRAIL";
  } else if (scenario) {
    begin = "# BEGIN SX_SCENARIO_JSON";
    end = "# END SX_SCENARIO_JSON";
  } else if (ir) {
    begin = "# BEGIN SX_IR_PASSES";
    end = "# END SX_IR_PASSES";
  } else if (fleet) {
    begin = "# BEGIN SX_FLEET_EVIDENCE";
    end = "# END SX_FLEET_EVIDENCE";
  } else if (kernel) {
    begin = "# BEGIN SX_KERNEL_BACKEND";
    end = "# END SX_KERNEL_BACKEND";
  } else if (serving) {
    begin = "# BEGIN SX_SERVING_EVIDENCE";
    end = "# END SX_SERVING_EVIDENCE";
  }
  bool found = false;
  const std::string block = extract_block(buf.str(), begin, end, found);
  if (!found) {
    std::cerr << "sxmetrics: no " << begin.substr(8)
              << " block in input (telemetry disabled, or not a "
                 "certification report)\n";
    return 1;
  }
  if (json) {
    std::cout << to_json(block);
  } else {
    std::cout << (summary ? summarize(block) : block);
  }
  return 0;
}
