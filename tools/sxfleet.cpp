// sxfleet — sharded fault-campaign driver and evidence merger.
//
// Exercises the fleet evidence plane (src/fleet) from the command line so
// that N *independent processes* can each execute one shard of a fault
// campaign and a final merge step can fold their evidence files into the
// merged outcome, the merged registry snapshot, the quantified SDC bounds
// and the partition-independent fleet audit root:
//
//   sxfleet run --shards 4 --shard 2 --out shard2.txt [--trials N] [--seed S]
//       runs shard 2 of a 4-shard campaign over the built-in deterministic
//       workload (trained road-scene MLP + SingleChannel) and writes the
//       shard evidence file (schema sx-fleet-shard/1)
//
//   sxfleet merge shard0.txt shard1.txt ... [--confidence C]
//       verifies every shard's hash chain, cross-checks each claimed
//       outcome against its own audit trail, merges, and prints the
//       summary + machine-readable evidence block. Exit 1 with an explicit
//       refusal when any shard fails verification.
//
//   sxfleet --selftest
//       in-process acceptance gates: shard counts {1,2,4,8} produce
//       byte-identical merged evidence; serialize -> parse -> merge round
//       trips; a tampered shard file is refused; bound values are sane.
//
// Exit status: 0 on success, 1 on refused merge / failed selftest,
// 2 on usage/IO errors. Host tool: iostream/filesystem are fine here.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "dl/train.hpp"
#include "fleet/evidence.hpp"
#include "fleet/fleet.hpp"
#include "util/stats.hpp"

namespace {

using sx::fleet::FleetConfig;
using sx::fleet::FleetEvidence;
using sx::fleet::ShardEvidence;

/// Deterministic built-in workload: every process that trains it obtains
/// bit-identical weights, so shard evidence produced by independent
/// processes merges exactly like the in-process run.
const sx::dl::Dataset& workload_data() {
  static const sx::dl::Dataset ds = sx::dl::make_road_scene(160, /*seed=*/11);
  return ds;
}

const sx::dl::Model& workload_model() {
  static const sx::dl::Model model = [] {
    sx::dl::ModelBuilder b{workload_data().input_shape};
    b.flatten().dense(16).relu().dense(sx::dl::kRoadSceneClasses);
    sx::dl::Model m = b.build(5);
    sx::dl::Trainer trainer{sx::dl::TrainConfig{.learning_rate = 0.02,
                                                .momentum = 0.9,
                                                .epochs = 8,
                                                .batch_size = 16,
                                                .shuffle_seed = 3}};
    trainer.fit(m, workload_data());
    return m;
  }();
  return model;
}

std::unique_ptr<sx::safety::InferenceChannel> make_channel() {
  // Numeric-fault checking on: injected faults can fail-stop (detected)
  // instead of every corruption being silent or masked.
  return std::make_unique<sx::safety::SingleChannel>(
      workload_model(),
      sx::dl::StaticEngineConfig{.check_numeric_faults = true});
}

FleetConfig make_config(std::size_t shards, std::size_t trials,
                        std::uint64_t seed, double confidence) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.campaign.n_faults = trials;
  cfg.campaign.probes_per_fault = 4;
  cfg.campaign.seed = seed;
  cfg.confidence = confidence;
  return cfg;
}

int usage() {
  std::cerr << "usage: sxfleet run --shards N --shard I --out FILE"
               " [--trials T] [--seed S]\n"
               "       sxfleet merge FILE... [--confidence C]\n"
               "       sxfleet --selftest\n";
  return 2;
}

bool outcomes_equal(const sx::safety::CampaignOutcome& a,
                    const sx::safety::CampaignOutcome& b) {
  return a.correct == b.correct && a.detected == b.detected &&
         a.fallback == b.fallback && a.sdc == b.sdc;
}

int cmd_run(const std::vector<std::string>& args) {
  std::size_t shards = 1, shard = 0, trials = 24;
  std::uint64_t seed = 1234;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= args.size()) {
        std::cerr << "sxfleet: " << what << " needs a value\n";
        return {};
      }
      return args[++i];
    };
    if (a == "--shards") {
      shards = std::stoul(next("--shards"));
    } else if (a == "--shard") {
      shard = std::stoul(next("--shard"));
    } else if (a == "--trials") {
      trials = std::stoul(next("--trials"));
    } else if (a == "--seed") {
      seed = std::stoull(next("--seed"));
    } else if (a == "--out") {
      out_path = next("--out");
    } else {
      return usage();
    }
  }
  if (out_path.empty() || shards == 0 || shard >= shards) return usage();

  const FleetConfig cfg = make_config(shards, trials, seed, 0.99);
  auto channel = make_channel();
  const ShardEvidence ev = sx::fleet::run_shard(
      *channel, workload_data(), cfg, static_cast<std::uint32_t>(shard));

  std::ofstream f(out_path);
  if (!f) {
    std::cerr << "sxfleet: cannot write " << out_path << "\n";
    return 2;
  }
  f << sx::fleet::serialize_shard(ev);
  std::cout << "shard " << shard << "/" << shards << ": trials ["
            << ev.first_trial << ", " << ev.first_trial + ev.trial_count
            << ") -> " << ev.outcome.total() << " demands, sdc "
            << ev.outcome.sdc << "; wrote " << out_path << "\n";
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  double confidence = 0.99;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--confidence") {
      if (i + 1 >= args.size()) return usage();
      confidence = std::stod(args[++i]);
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.empty()) return usage();

  std::vector<ShardEvidence> shards;
  for (const std::string& p : paths) {
    std::ifstream f(p);
    if (!f) {
      std::cerr << "sxfleet: cannot open " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    ShardEvidence ev;
    if (!sx::fleet::parse_shard(buf.str(), ev)) {
      std::cerr << "sxfleet: " << p << " is not a valid shard evidence file\n";
      return 2;
    }
    shards.push_back(std::move(ev));
  }

  const FleetEvidence merged =
      sx::fleet::merge_shards(shards, confidence, 1.0, 1.0);
  std::cout << sx::fleet::summary(merged) << "\n"
            << sx::fleet::render_fleet_block(merged);
  if (!sx::ok(merged.status)) {
    std::cerr << "sxfleet: merge REFUSED: " << merged.refusal << " (shard "
              << merged.offending_shard << ")\n";
    return 1;
  }
  return 0;
}

int fail(const char* what) {
  std::cerr << "sxfleet selftest FAILED: " << what << "\n";
  return 1;
}

int cmd_selftest() {
  const std::size_t trials = 24;
  const std::uint64_t seed = 1234;

  // Gate 1: shard-count invariance. The merged outcome, the merged
  // snapshot serialization and the canonical fleet root must be
  // byte-identical for every shard count.
  const FleetEvidence base = sx::fleet::run_sharded_campaign(
      make_channel, workload_data(), make_config(1, trials, seed, 0.99));
  if (!sx::ok(base.status)) return fail("single-shard run refused");
  if (!base.merged.measured()) return fail("single-shard run measured nothing");
  const std::string base_snapshot = base.merged_snapshot.serialize();

  FleetEvidence four;  // kept for the round-trip gate
  for (const std::size_t n : {2u, 4u, 8u}) {
    const FleetEvidence ev = sx::fleet::run_sharded_campaign(
        make_channel, workload_data(), make_config(n, trials, seed, 0.99));
    if (!sx::ok(ev.status)) return fail("sharded run refused");
    if (!outcomes_equal(ev.merged, base.merged))
      return fail("merged outcome differs from single-shard run");
    if (ev.merged_snapshot.serialize() != base_snapshot)
      return fail("merged snapshot bytes differ from single-shard run");
    if (ev.fleet_root != base.fleet_root)
      return fail("fleet root differs from single-shard run");
    if (n == 4) four = ev;
  }

  // Gate 2: serialize -> parse -> merge round trip reproduces the
  // in-process merge exactly.
  std::vector<std::string> files;
  for (const ShardEvidence& s : four.shard_evidence)
    files.push_back(sx::fleet::serialize_shard(s));
  std::vector<ShardEvidence> reloaded(files.size());
  for (std::size_t i = 0; i < files.size(); ++i)
    if (!sx::fleet::parse_shard(files[i], reloaded[i]))
      return fail("shard file round trip does not parse");
  const FleetEvidence remerged =
      sx::fleet::merge_shards(reloaded, 0.99, 1.0, 1.0);
  if (!sx::ok(remerged.status)) return fail("round-trip merge refused");
  if (!outcomes_equal(remerged.merged, base.merged) ||
      remerged.merged_snapshot.serialize() != base_snapshot ||
      remerged.fleet_root != base.fleet_root ||
      remerged.anchor != four.anchor)
    return fail("round-trip merge differs from in-process merge");

  // Gate 3: a tampered shard file must be refused with the shard named.
  // Flip one hex digit inside the payload token of a trial entry line.
  std::string tampered = files[1];
  const std::size_t entry_at = tampered.find("\nentry ");
  if (entry_at == std::string::npos) return fail("no entry line to tamper");
  std::size_t tok_start = entry_at + 1;
  for (int tok = 0; tok < 5; ++tok)
    tok_start = tampered.find(' ', tok_start) + 1;
  tampered[tok_start] = tampered[tok_start] == '0' ? '1' : '0';
  ShardEvidence bad;
  if (!sx::fleet::parse_shard(tampered, bad))
    return fail("tampered file should still parse (tamper is semantic)");
  std::vector<ShardEvidence> with_bad = reloaded;
  with_bad[1] = bad;
  const FleetEvidence refused =
      sx::fleet::merge_shards(with_bad, 0.99, 1.0, 1.0);
  if (sx::ok(refused.status)) return fail("tampered shard was merged");
  if (refused.status != sx::Status::kIntegrityFault)
    return fail("tamper refusal is not an integrity fault");
  if (refused.offending_shard != with_bad[1].shard_id)
    return fail("tamper refusal names the wrong shard");

  // A falsified claimed outcome (file edit of the `outcome` line, chain
  // intact) must be caught by the outcome-vs-audit-trail cross-check.
  std::string inflated = files[2];
  const std::size_t out_at = inflated.find("\noutcome ");
  if (out_at == std::string::npos) return fail("no outcome line to tamper");
  ShardEvidence liar;
  if (!sx::fleet::parse_shard(inflated, liar)) return fail("parse failed");
  liar.outcome.correct += 1;
  std::vector<ShardEvidence> with_liar = reloaded;
  with_liar[2] = liar;
  const FleetEvidence refused2 =
      sx::fleet::merge_shards(with_liar, 0.99, 1.0, 1.0);
  if (sx::ok(refused2.status) ||
      refused2.status != sx::Status::kIntegrityFault)
    return fail("falsified outcome was merged");

  // Gate 4: bound sanity. Zero failures in 100 demands at one-sided 0.99
  // gives the textbook CP bound 1 - 0.01^(1/100) ~= 0.045; the reported
  // bounds must bracket the observed rate from above.
  const double cp = sx::util::clopper_pearson_upper(0, 100, 0.99);
  if (std::abs(cp - 0.045007) > 5e-4) return fail("CP bound off textbook value");
  if (base.bounds.cp_upper_sdc_rate < base.merged.sdc_rate())
    return fail("CP bound below the observed rate");
  if (base.bounds.bayes_upper_sdc_rate < base.merged.sdc_rate())
    return fail("Bayes bound below the observed rate");

  std::cout << "sxfleet selftest OK: " << base.bounds.demands
            << " demands, sdc " << base.merged.sdc << ", CP upper "
            << base.bounds.cp_upper_sdc_rate << ", Bayes upper "
            << base.bounds.bayes_upper_sdc_rate << ", fleet root "
            << sx::util::to_hex(base.fleet_root).substr(0, 16) << "...\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  args.erase(args.begin());
  if (cmd == "--selftest") return cmd_selftest();
  if (cmd == "run") return cmd_run(args);
  if (cmd == "merge") return cmd_merge(args);
  return usage();
}
