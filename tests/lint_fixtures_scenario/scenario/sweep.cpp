// Seeded FUSA-violation fixture for sxlint coverage of src/scenario/.
// NEVER compiled or linked — only scanned by the `sxlint_scenario_fixture`
// CTest entry (WILL_FAIL). The `scenario/` directory component makes this
// file count as runtime code, the same contract src/scenario/*.cpp are
// held to: no console I/O, no banned headers, no raw heap expressions.
#include <cstdio>
#include <iostream>
#include <memory>

namespace fixture {

// console-io: progress chatter from inside the sweep loop.
void report_cell(unsigned idx) {
  std::cout << "cell " << idx << " done\n";
  printf("cell %u done\n", idx);
}

// heap-expr: raw new/delete for the cell-evidence array instead of a
// container sized at configuration time.
double* allocate_rates(unsigned cells) { return new double[cells]; }
void free_rates(double* rates) { delete[] rates; }

// throw-in-noexcept: a verdict accessor that can actually throw.
int verdict_at(const std::unique_ptr<int[]>& v, unsigned i) noexcept {
  if (v == nullptr) throw i;
  return v[i];
}

// A waived finding: the marker must suppress this one.
std::unique_ptr<int> config_time_slot() {
  return std::make_unique<int>(0);  // sxlint: allow(hot-path-alloc)
}

// Not findings: identifiers and string literals mentioning banned calls.
void printf_like_name() {}
const char* kDoc = "never printf from a scenario cell";

}  // namespace fixture
