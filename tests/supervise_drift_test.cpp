#include <gtest/gtest.h>

#include "supervise/drift.hpp"
#include "util/rng.hpp"

namespace sx::supervise {
namespace {

std::vector<double> gaussian_scores(std::size_t n, double mean, double std,
                                    std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> out(n);
  for (auto& v : out) v = rng.gaussian(mean, std);
  return out;
}

// ------------------------------------------------------------------- CUSUM

TEST(Cusum, QuietOnInDistributionStream) {
  const auto calib = gaussian_scores(200, 1.0, 0.2, 1);
  CusumDetector det = CusumDetector::fit(calib);
  util::Xoshiro256 rng{2};
  for (int i = 0; i < 2000; ++i)
    det.update(rng.gaussian(1.0, 0.2));
  EXPECT_FALSE(det.alarmed()) << "statistic " << det.statistic();
}

TEST(Cusum, AlarmsQuicklyOnMeanShift) {
  const auto calib = gaussian_scores(200, 1.0, 0.2, 3);
  CusumDetector det = CusumDetector::fit(calib);
  util::Xoshiro256 rng{4};
  int steps = 0;
  // Shift by +3 sigma: should alarm within a few dozen observations.
  while (!det.alarmed() && steps < 200) {
    det.update(rng.gaussian(1.6, 0.2));
    ++steps;
  }
  EXPECT_TRUE(det.alarmed());
  EXPECT_LT(steps, 50);
}

TEST(Cusum, SlowDriftEventuallyCaught) {
  const auto calib = gaussian_scores(200, 1.0, 0.2, 5);
  CusumDetector det = CusumDetector::fit(calib);
  util::Xoshiro256 rng{6};
  double mean = 1.0;
  int steps = 0;
  while (!det.alarmed() && steps < 5000) {
    mean += 0.0005;  // creeping drift
    det.update(rng.gaussian(mean, 0.2));
    ++steps;
  }
  EXPECT_TRUE(det.alarmed());
}

TEST(Cusum, ResetClearsAlarm) {
  CusumDetector det{0.0, 1.0, 0.5, 2.0};
  for (int i = 0; i < 50; ++i) det.update(5.0);
  ASSERT_TRUE(det.alarmed());
  det.reset();
  EXPECT_FALSE(det.alarmed());
  EXPECT_EQ(det.statistic(), 0.0);
}

TEST(Cusum, ValidatesInputs) {
  EXPECT_THROW(CusumDetector(0.0, 1.0, -1.0, 8.0), std::invalid_argument);
  EXPECT_THROW(CusumDetector(0.0, 1.0, 0.5, 0.0), std::invalid_argument);
  const std::vector<double> tiny{1.0, 2.0};
  EXPECT_THROW(CusumDetector::fit(tiny), std::invalid_argument);
}

// ---------------------------------------------------------------- KS window

TEST(KsWindow, QuietOnInDistributionStream) {
  WindowedKsDetector det{gaussian_scores(300, 1.0, 0.2, 7), 50};
  util::Xoshiro256 rng{8};
  for (int i = 0; i < 1000; ++i) det.update(rng.gaussian(1.0, 0.2));
  EXPECT_FALSE(det.alarmed()) << "ks " << det.last_statistic();
}

TEST(KsWindow, AlarmsOnDistributionChange) {
  WindowedKsDetector det{gaussian_scores(300, 1.0, 0.2, 9), 50};
  util::Xoshiro256 rng{10};
  int steps = 0;
  while (!det.alarmed() && steps < 500) {
    det.update(rng.gaussian(2.0, 0.2));
    ++steps;
  }
  EXPECT_TRUE(det.alarmed());
  EXPECT_LE(steps, 100) << "should alarm within ~2 windows";
}

TEST(KsWindow, CatchesVarianceChangeWithSameMean) {
  WindowedKsDetector det{gaussian_scores(400, 1.0, 0.1, 11), 60};
  util::Xoshiro256 rng{12};
  int steps = 0;
  while (!det.alarmed() && steps < 1000) {
    det.update(rng.gaussian(1.0, 0.6));  // same mean, inflated spread
    ++steps;
  }
  EXPECT_TRUE(det.alarmed())
      << "a mean-based detector would miss this; KS must not";
}

TEST(KsWindow, NeedsFullWindowBeforeTesting) {
  WindowedKsDetector det{gaussian_scores(300, 1.0, 0.2, 13), 50};
  for (int i = 0; i < 49; ++i) det.update(100.0);  // extreme, but < window
  EXPECT_FALSE(det.alarmed());
  det.update(100.0);  // 50th observation completes the window
  EXPECT_TRUE(det.alarmed());
}

TEST(KsWindow, ValidatesInputs) {
  EXPECT_THROW(WindowedKsDetector({1.0, 2.0}, 50), std::invalid_argument);
  EXPECT_THROW(WindowedKsDetector(gaussian_scores(100, 0, 1, 1), 5),
               std::invalid_argument);
}

}  // namespace
}  // namespace sx::supervise
