#include <gtest/gtest.h>

#include <cmath>

#include "timing/evt.hpp"
#include "timing/pot.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sx::timing {
namespace {

/// Exponential-tailed sample (GPD shape xi = 0).
std::vector<double> exponential_sample(std::size_t n, double base,
                                       double scale, std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    x = base - scale * std::log(u);
  }
  return xs;
}

/// Heavy-tailed Pareto sample (GPD shape xi = 1/alpha > 0).
std::vector<double> pareto_sample(std::size_t n, double xm, double alpha,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    x = xm / std::pow(u, 1.0 / alpha);
  }
  return xs;
}

TEST(Gpd, FitsExponentialTailWithSmallShape) {
  const auto xs = exponential_sample(20000, 100.0, 10.0, 1);
  const GpdFit fit = fit_gpd(xs, 0.9);
  EXPECT_NEAR(fit.shape, 0.0, 0.1);
  EXPECT_NEAR(fit.scale, 10.0, 1.5);
  EXPECT_FALSE(fit.heavy_tail());
  EXPECT_NEAR(fit.exceedance_rate, 0.1, 0.01);
}

TEST(Gpd, DetectsHeavyTail) {
  const auto xs = pareto_sample(20000, 100.0, 2.0, 2);
  const GpdFit fit = fit_gpd(xs, 0.9);
  EXPECT_GT(fit.shape, 0.3);
  EXPECT_TRUE(fit.heavy_tail());
}

TEST(Gpd, TailProbabilityDecreases) {
  const auto xs = exponential_sample(5000, 100.0, 10.0, 3);
  const GpdFit fit = fit_gpd(xs, 0.9);
  double prev = 1.0;
  for (double x = fit.threshold; x < fit.threshold + 100.0; x += 10.0) {
    const double p = fit.tail_probability(x);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(Gpd, QuantileInvertsTailProbability) {
  const auto xs = exponential_sample(5000, 100.0, 10.0, 4);
  const GpdFit fit = fit_gpd(xs, 0.9);
  for (double p : {1e-3, 1e-6, 1e-9}) {
    const double x = fit.quantile_at_exceedance(p);
    EXPECT_NEAR(fit.tail_probability(x), p, p * 0.05);
  }
}

TEST(Gpd, PwcetMonotoneInExceedance) {
  const auto xs = exponential_sample(5000, 1000.0, 25.0, 5);
  const GpdFit fit = fit_gpd(xs, 0.9);
  double prev = 0.0;
  for (double p : {1e-3, 1e-6, 1e-9, 1e-12}) {
    const double b = pwcet_pot(fit, p);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(Gpd, PwcetBoundsFreshHwmOnLightTail) {
  const auto train = exponential_sample(5000, 1000.0, 25.0, 6);
  const GpdFit fit = fit_gpd(train, 0.9);
  const auto fresh = exponential_sample(1000, 1000.0, 25.0, 7);
  EXPECT_GT(pwcet_pot(fit, 1e-6), util::max_of(fresh) * 0.97);
}

TEST(Gpd, AgreesWithGumbelOnLightTails) {
  // Both EVT routes should give bounds within ~15% of each other at 1e-9
  // on exponential-tailed data.
  const auto xs = exponential_sample(10000, 1000.0, 25.0, 8);
  const GpdFit pot = fit_gpd(xs, 0.9);
  const GumbelFit bm = fit_gumbel(xs, 20);
  const double b_pot = pwcet_pot(pot, 1e-9);
  const double b_bm = pwcet(bm, 1e-9);
  EXPECT_NEAR(b_pot / b_bm, 1.0, 0.15);
}

TEST(Gpd, ValidatesInputs) {
  const auto xs = exponential_sample(1000, 0.0, 1.0, 9);
  EXPECT_THROW(fit_gpd(xs, 0.0), std::invalid_argument);
  EXPECT_THROW(fit_gpd(xs, 1.0), std::invalid_argument);
  const auto tiny = exponential_sample(50, 0.0, 1.0, 10);
  EXPECT_THROW(fit_gpd(tiny, 0.9), std::invalid_argument);
  const GpdFit fit = fit_gpd(xs, 0.9);
  EXPECT_THROW(pwcet_pot(fit, 0.0), std::invalid_argument);
}

TEST(Gpd, DegenerateExceedancesHandled) {
  std::vector<double> xs(1000, 5.0);
  for (std::size_t i = 0; i < 100; ++i) xs[i] = 6.0;  // constant exceedances
  const GpdFit fit = fit_gpd(xs, 0.85);
  EXPECT_GT(fit.scale, 0.0);
  EXPECT_FALSE(fit.heavy_tail());
}

// Property sweep: quantile_at_exceedance is monotone decreasing in p for
// both light and moderately heavy tails.
class PotMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PotMonotone, QuantileMonotone) {
  const auto xs = pareto_sample(8000, 100.0, GetParam(), 11);
  const GpdFit fit = fit_gpd(xs, 0.9);
  double prev = std::numeric_limits<double>::infinity();
  for (double p : {1e-2, 1e-4, 1e-6, 1e-8}) {
    const double q = fit.quantile_at_exceedance(p);
    EXPECT_LE(q, prev * (1 + 1e-12) + 1e-9);
    // lower p = rarer = larger quantile; so iterate p descending:
    prev = std::numeric_limits<double>::infinity();
    break;  // replaced by explicit ordered check below
  }
  const double q2 = fit.quantile_at_exceedance(1e-2);
  const double q4 = fit.quantile_at_exceedance(1e-4);
  const double q6 = fit.quantile_at_exceedance(1e-6);
  EXPECT_LT(q2, q4);
  EXPECT_LT(q4, q6);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PotMonotone,
                         ::testing::Values(1.5, 2.5, 4.0, 8.0));

}  // namespace
}  // namespace sx::timing
