#include <gtest/gtest.h>

#include "rt/rta.hpp"
#include "rt/scheduler.hpp"

namespace sx::rt {
namespace {

TaskSet classic_set() {
  // Classic textbook example (Buttazzo-style): schedulable under RM.
  TaskSet ts;
  ts.add(Task{.name = "t1", .period = 50, .wcet = 10});
  ts.add(Task{.name = "t2", .period = 100, .wcet = 20});
  ts.add(Task{.name = "t3", .period = 200, .wcet = 40});
  ts.assign_deadline_monotonic();
  return ts;
}

// ---------------------------------------------------------------- task set

TEST(TaskSet, UtilizationSums) {
  const TaskSet ts = classic_set();
  EXPECT_NEAR(ts.utilization(), 10.0 / 50 + 20.0 / 100 + 40.0 / 200, 1e-12);
}

TEST(TaskSet, DefaultsDeadlineToPeriod) {
  TaskSet ts;
  ts.add(Task{.name = "x", .period = 10, .wcet = 2});
  EXPECT_EQ(ts.tasks[0].deadline, 10u);
}

TEST(TaskSet, RejectsZeroParameters) {
  TaskSet ts;
  EXPECT_THROW(ts.add(Task{.name = "x", .period = 0, .wcet = 1}),
               std::invalid_argument);
  EXPECT_THROW(ts.add(Task{.name = "x", .period = 5, .wcet = 0}),
               std::invalid_argument);
}

TEST(TaskSet, DeadlineMonotonicOrder) {
  TaskSet ts = classic_set();
  EXPECT_GT(ts.tasks[0].priority, ts.tasks[1].priority);
  EXPECT_GT(ts.tasks[1].priority, ts.tasks[2].priority);
}

// --------------------------------------------------------------------- RTA

TEST(Rta, ClassicExampleResponseTimes) {
  const TaskSet ts = classic_set();
  const RtaResult r = response_time_analysis(ts);
  ASSERT_TRUE(r.schedulable);
  // Hand-computed: R1 = 10; R2 = 20 + ceil(30/50)*10 = 30;
  // R3 = 40 + ceil(R3/50)*10 + ceil(R3/100)*20 -> fixed point at 80.
  EXPECT_EQ(r.response_times[0].value(), 10u);
  EXPECT_EQ(r.response_times[1].value(), 30u);
  EXPECT_EQ(r.response_times[2].value(), 80u);
}

TEST(Rta, OverloadedSetUnschedulable) {
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 10, .wcet = 6});
  ts.add(Task{.name = "b", .period = 10, .wcet = 6});
  ts.assign_deadline_monotonic();
  const RtaResult r = response_time_analysis(ts);
  EXPECT_FALSE(r.schedulable);
  // The lower-priority task must be the failing one.
  EXPECT_TRUE(r.response_times[0].has_value() ||
              r.response_times[1].has_value());
}

TEST(Rta, EqualPriorityInterferenceRefusesOverload) {
  // Regression: user-set equal priorities are legal, and under FP
  // scheduling a tie may be broken either way — each task must charge the
  // other's full job per release. The old analysis skipped equal-priority
  // interference and optimistically certified both tasks at R = 6.
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 10, .wcet = 6, .deadline = 10,
              .priority = 1});
  ts.add(Task{.name = "b", .period = 10, .wcet = 6, .deadline = 10,
              .priority = 1});
  const RtaResult r = response_time_analysis(ts);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.response_times[0].has_value());
  EXPECT_FALSE(r.response_times[1].has_value());
}

TEST(Rta, EqualPriorityStillSchedulableWhenFeasible) {
  // Equal priorities that genuinely fit: a charges b (and vice versa),
  // and both still meet their deadlines.
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 10, .wcet = 2, .deadline = 10,
              .priority = 1});
  ts.add(Task{.name = "b", .period = 10, .wcet = 3, .deadline = 10,
              .priority = 1});
  const RtaResult r = response_time_analysis(ts);
  ASSERT_TRUE(r.schedulable);
  EXPECT_EQ(r.response_times[0].value(), 5u);
  EXPECT_EQ(r.response_times[1].value(), 5u);
}

TEST(Rta, NearMaxParametersRefusedNotWrapped) {
  // Regression: the fixed-point iteration computed
  // ((r + period - 1) / period) * wcet with wrapping uint64 arithmetic.
  // With the interferer below, the victim's first iterate was
  // 2^32 + 2^32 * 2^32 == 2^32 (mod 2^64): fabricated convergence well
  // below the deadline, certifying an unschedulable task. The saturating
  // analysis refuses it.
  TaskSet ts;
  const std::uint64_t big = std::uint64_t{1} << 32;
  ts.add(Task{.name = "hp", .period = 1, .wcet = big, .deadline = 1,
              .priority = 2});
  ts.add(Task{.name = "victim", .period = big << 8, .wcet = big,
              .deadline = big << 8, .priority = 1});
  const RtaResult r = response_time_analysis(ts);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.response_times[1].has_value())
      << "wrapped interference must not certify the victim";
}

TEST(Rta, LiuLaylandBound) {
  EXPECT_NEAR(rm_utilization_bound(1), 1.0, 1e-12);
  EXPECT_NEAR(rm_utilization_bound(2), 0.8284, 1e-3);
  EXPECT_GT(rm_utilization_bound(10), 0.69);
  EXPECT_LT(rm_utilization_bound(10), 0.72);
}

// --------------------------------------------------------------- scheduler

TEST(Scheduler, NoMissesWhenRtaSaysSchedulable) {
  const TaskSet ts = classic_set();
  ASSERT_TRUE(response_time_analysis(ts).schedulable);
  const SimResult r = simulate(ts, SimConfig{.duration = 200 * 50});
  EXPECT_EQ(r.total_misses, 0u);
  EXPECT_GT(r.total_jobs, 0u);
}

TEST(Scheduler, SimulatedMaxResponseMatchesRtaAtCriticalInstant) {
  // With synchronous release at t=0, the simulation should realize exactly
  // the RTA worst case for every task.
  const TaskSet ts = classic_set();
  const RtaResult rta = response_time_analysis(ts);
  const SimResult sim = simulate(ts, SimConfig{.duration = 200 * 20});
  for (std::size_t i = 0; i < ts.tasks.size(); ++i)
    EXPECT_EQ(sim.per_task[i].max_response, rta.response_times[i].value())
        << ts.tasks[i].name;
}

TEST(Scheduler, OverloadProducesMisses) {
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 10, .wcet = 6});
  ts.add(Task{.name = "b", .period = 10, .wcet = 6});
  ts.assign_deadline_monotonic();
  const SimResult r = simulate(ts, SimConfig{.duration = 10000});
  EXPECT_GT(r.total_misses, 0u);
}

TEST(Scheduler, AbortPolicyCapsLateJobs) {
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 10, .wcet = 6});
  ts.add(Task{.name = "b", .period = 10, .wcet = 6});
  ts.assign_deadline_monotonic();
  const SimResult r = simulate(
      ts, SimConfig{.duration = 10000, .miss_policy = MissPolicy::kAbort});
  EXPECT_GT(r.total_misses, 0u);
  // With aborts, the higher-priority task is protected completely.
  EXPECT_EQ(r.per_task[0].deadline_misses + r.per_task[0].aborted, 0u);
}

TEST(Scheduler, HigherPriorityPreempts) {
  TaskSet ts;
  ts.add(Task{.name = "hi", .period = 10, .wcet = 2, .deadline = 0,
              .priority = 2});
  ts.add(Task{.name = "lo", .period = 100, .wcet = 50, .deadline = 0,
              .priority = 1});
  // Note: deadline 0 becomes period via add().
  const SimResult r = simulate(ts, SimConfig{.duration = 1000});
  // hi runs every 10 and must never miss despite lo's long jobs.
  EXPECT_EQ(r.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(r.per_task[0].max_response, 2u);
}

TEST(Scheduler, StochasticExecutionTimesBelowWcetStaySafe) {
  const TaskSet ts = classic_set();
  const ExecTimeFn sampler = [](const Task& t, util::Xoshiro256& rng) {
    return 1 + rng.below(t.wcet);  // in [1, wcet]
  };
  const SimResult r =
      simulate(ts, SimConfig{.duration = 100000, .seed = 9}, sampler);
  EXPECT_EQ(r.total_misses, 0u);
}

TEST(Scheduler, MissRateGrowsWithUtilization) {
  double prev_rate = -1.0;
  for (const std::uint64_t wcet : {20, 35, 48}) {
    TaskSet ts;
    ts.add(Task{.name = "a", .period = 50, .wcet = wcet});
    ts.add(Task{.name = "b", .period = 100, .wcet = 50});
    ts.assign_deadline_monotonic();
    const SimResult r = simulate(ts, SimConfig{.duration = 100000});
    EXPECT_GE(r.miss_rate(), prev_rate);
    prev_rate = r.miss_rate();
  }
  EXPECT_GT(prev_rate, 0.0);
}

TEST(Scheduler, RejectsEmptyTaskSet) {
  TaskSet empty;
  EXPECT_THROW(simulate(empty, SimConfig{}), std::invalid_argument);
}

// Property sweep: for random schedulable task sets (utilization below the
// Liu-Layland bound), the simulation never misses a deadline.
class ScheduledSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduledSweep, LlBoundImpliesNoSimMisses) {
  util::Xoshiro256 rng{GetParam()};
  TaskSet ts;
  const std::size_t n = 3;
  const double budget = rm_utilization_bound(n) * 0.95;
  double used = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t period = 20 + rng.below(200);
    const double share = (budget - used) / static_cast<double>(n - i);
    const auto wcet = static_cast<std::uint64_t>(
        std::max(1.0, share * static_cast<double>(period)));
    used += static_cast<double>(wcet) / static_cast<double>(period);
    ts.add(Task{.name = "t" + std::to_string(i), .period = period,
                .wcet = wcet});
  }
  ts.assign_deadline_monotonic();
  const SimResult r = simulate(ts, SimConfig{.duration = 200000});
  EXPECT_EQ(r.total_misses, 0u) << "utilization=" << ts.utilization();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduledSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace sx::rt
