#include <gtest/gtest.h>

#include "platform/cache.hpp"
#include "platform/sim.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace sx::platform {
namespace {

CacheConfig deterministic_cfg() {
  return CacheConfig{.line_bytes = 64,
                     .sets = 64,
                     .ways = 4,
                     .placement = Placement::kModulo,
                     .replacement = Replacement::kLru};
}

CacheConfig random_cfg() {
  return CacheConfig{.line_bytes = 64,
                     .sets = 64,
                     .ways = 4,
                     .placement = Placement::kRandom,
                     .replacement = Replacement::kRandom};
}

// ------------------------------------------------------------------- cache

TEST(Cache, ColdMissThenHit) {
  Cache c{deterministic_cfg(), 1};
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1001));  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, DistinctLinesMissSeparately) {
  Cache c{deterministic_cfg(), 1};
  EXPECT_FALSE(c.access(0x0));
  EXPECT_FALSE(c.access(0x40));
  EXPECT_TRUE(c.access(0x0));
}

TEST(Cache, LruEvictsOldest) {
  // 1 set, 2 ways: A, B, C -> C evicts A.
  CacheConfig cfg{.line_bytes = 64,
                  .sets = 1,
                  .ways = 2,
                  .placement = Placement::kModulo,
                  .replacement = Replacement::kLru};
  Cache c{cfg, 1};
  c.access(0x000);  // A miss
  c.access(0x040);  // B miss
  c.access(0x080);  // C miss, evict A
  EXPECT_FALSE(c.access(0x000));  // A gone
  EXPECT_TRUE(c.access(0x080));   // C resident
}

TEST(Cache, LruTouchRefreshes) {
  CacheConfig cfg{.line_bytes = 64,
                  .sets = 1,
                  .ways = 2,
                  .placement = Placement::kModulo,
                  .replacement = Replacement::kLru};
  Cache c{cfg, 1};
  c.access(0x000);  // A
  c.access(0x040);  // B
  c.access(0x000);  // touch A -> B is LRU
  c.access(0x080);  // C evicts B
  EXPECT_TRUE(c.access(0x000));
  EXPECT_FALSE(c.access(0x040));
}

TEST(Cache, FlushInvalidates) {
  Cache c{deterministic_cfg(), 1};
  c.access(0x100);
  c.flush();
  EXPECT_FALSE(c.access(0x100));
}

TEST(Cache, RejectsNonPowerOfTwoSets) {
  CacheConfig cfg = deterministic_cfg();
  cfg.sets = 48;
  EXPECT_THROW(Cache(cfg, 1), std::invalid_argument);
}

TEST(Cache, RandomPlacementDependsOnBootSeed) {
  // The same conflict-heavy access pattern should produce different miss
  // counts under different boot seeds (different placement functions).
  std::vector<std::uint64_t> misses;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Cache c{random_cfg(), seed};
    // 128 lines striding by set count: pathological for modulo placement.
    for (int rep = 0; rep < 4; ++rep)
      for (std::uint64_t i = 0; i < 128; ++i)
        c.access(i * 64 * 64);  // all map to set 0 under modulo
    misses.push_back(c.misses());
  }
  // Not all seeds agree.
  bool varies = false;
  for (auto m : misses) varies |= (m != misses[0]);
  EXPECT_TRUE(varies);
}

TEST(Cache, ModuloPlacementPathologicalConflicts) {
  // Under modulo placement the strided pattern thrashes one set;
  // random placement spreads it and must hit strictly more often.
  auto run = [](const CacheConfig& cfg) {
    Cache c{cfg, 7};
    for (int rep = 0; rep < 4; ++rep)
      for (std::uint64_t i = 0; i < 32; ++i) c.access(i * 64 * 64);
    return c.hits();
  };
  const auto modulo_hits = run(deterministic_cfg());
  const auto random_hits = run(random_cfg());
  EXPECT_EQ(modulo_hits, 0u) << "strided pattern should thrash set 0";
  EXPECT_GT(random_hits, 0u);
}

// --------------------------------------------------------------------- sim

TEST(PlatformSim, CyclesAccountedExactly) {
  // 2 ops, both missing: cycles = compute + 2 * miss.
  TimingModel t{.hit_cycles = 1, .miss_cycles = 40,
                .interference_per_miss = 0, .contending_cores = 0};
  PlatformSim sim{deterministic_cfg(), t, 1};
  const AccessTrace trace{{0x0, 3}, {0x40, 2}};
  const RunResult r = sim.execute(trace);
  EXPECT_EQ(r.misses, 2u);
  EXPECT_EQ(r.cycles, 3u + 2u + 2u * 40u);
}

TEST(PlatformSim, HitsAreCheaper) {
  TimingModel t{};
  PlatformSim sim{deterministic_cfg(), t, 1};
  const AccessTrace cold{{0x0, 1}};
  const AccessTrace warm{{0x0, 1}, {0x0, 1}};
  const auto r = sim.execute(warm);
  EXPECT_EQ(r.hits, 1u);
  EXPECT_EQ(r.misses, 1u);
}

TEST(PlatformSim, InterferenceAddsWorstCaseCycles) {
  TimingModel base{.hit_cycles = 1, .miss_cycles = 40,
                   .interference_per_miss = 10, .contending_cores = 0};
  TimingModel contended = base;
  contended.contending_cores = 3;
  const AccessTrace trace{{0x0, 1}, {0x40, 1}, {0x80, 1}};
  PlatformSim solo{deterministic_cfg(), base, 1};
  PlatformSim busy{deterministic_cfg(), contended, 1};
  const auto r0 = solo.execute(trace);
  const auto r1 = busy.execute(trace);
  EXPECT_EQ(r1.cycles, r0.cycles + 3u * 30u);
}

TEST(PlatformSim, DeterministicConfigZeroVariance) {
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace trace = inference_trace(m);
  const auto times = collect_execution_times(
      deterministic_cfg(), TimingModel{}, trace, 50, 99);
  EXPECT_EQ(util::min_of(times), util::max_of(times))
      << "deterministic platform must be cycle-identical across boots";
}

TEST(PlatformSim, RandomConfigProducesDispersion) {
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace trace = inference_trace(m);
  const auto times =
      collect_execution_times(random_cfg(), TimingModel{}, trace, 100, 99);
  EXPECT_GT(util::stddev(times), 0.0);
  EXPECT_GT(util::coeff_of_variation(times), 1e-6);
}

TEST(PlatformSim, RandomSlowerOnAverageIsBounded) {
  // Random placement trades the pathological worst case for a distribution;
  // its mean should be within a small factor of the deterministic time for
  // the streaming DL trace.
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace trace = inference_trace(m);
  const auto det = collect_execution_times(deterministic_cfg(), TimingModel{},
                                           trace, 10, 1);
  const auto rnd =
      collect_execution_times(random_cfg(), TimingModel{}, trace, 50, 1);
  EXPECT_LT(util::mean(rnd), 1.5 * util::mean(det));
  EXPECT_GT(util::mean(rnd), 0.7 * util::mean(det));
}

// ------------------------------------------------------------------- trace

TEST(InferenceTrace, NonEmptyAndOrdered) {
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace trace = inference_trace(m);
  EXPECT_GT(trace.size(), 100u);
  for (const auto& op : trace) EXPECT_GE(op.compute_cycles, 1u);
}

TEST(InferenceTrace, LargerModelLongerTrace) {
  const auto& mlp = sx::testing::trained_mlp();
  const auto& cnn = sx::testing::trained_cnn();
  EXPECT_NE(inference_trace(mlp).size(), inference_trace(cnn).size());
}

TEST(InferenceTrace, DeterministicForSameModel) {
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace a = inference_trace(m);
  const AccessTrace b = inference_trace(m);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].compute_cycles, b[i].compute_cycles);
  }
}

// Property sweep: across cache geometries, the deterministic platform stays
// cycle-identical across boots.
class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DeterminismSweep, ZeroVarianceAcrossBoots) {
  CacheConfig cfg = deterministic_cfg();
  cfg.sets = std::get<0>(GetParam());
  cfg.ways = std::get<1>(GetParam());
  const auto& m = sx::testing::trained_mlp();
  const AccessTrace trace = inference_trace(m);
  const auto times =
      collect_execution_times(cfg, TimingModel{}, trace, 10, 2024);
  EXPECT_EQ(util::min_of(times), util::max_of(times));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DeterminismSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64, 256),
                       ::testing::Values<std::size_t>(1, 2, 8)));

}  // namespace
}  // namespace sx::platform
