// Tests for the trainer extensions (Adam, augmentation, adversarial
// training) and the Sigmoid/Tanh layers.
#include <gtest/gtest.h>

#include <sstream>

#include "dl/layers.hpp"
#include "dl/model.hpp"
#include "dl/train.hpp"
#include "test_helpers.hpp"
#include "verify/attack.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

Dataset toy_dataset(std::size_t n, std::uint64_t seed) {
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(4);
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{Shape::vec(4)};
    s.input.init_uniform(rng, 0.0f, 1.0f);
    s.label = (s.input.at(std::size_t{0}) + s.input.at(std::size_t{1}) >
               s.input.at(std::size_t{2}) + s.input.at(std::size_t{3}))
                  ? 0
                  : 1;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

// ----------------------------------------------------------- sigmoid/tanh

TEST(Sigmoid, ForwardValues) {
  Sigmoid s;
  Tensor in{Shape::vec(3), {0.0f, 100.0f, -100.0f}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(s.forward(in.view(), out.view()), Status::kOk);
  EXPECT_NEAR(out.at(std::size_t{0}), 0.5f, 1e-6f);
  EXPECT_NEAR(out.at(std::size_t{1}), 1.0f, 1e-6f);
  EXPECT_NEAR(out.at(std::size_t{2}), 0.0f, 1e-6f);
}

TEST(Tanh, ForwardValues) {
  Tanh t;
  Tensor in{Shape::vec(2), {0.0f, 10.0f}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(t.forward(in.view(), out.view()), Status::kOk);
  EXPECT_NEAR(out.at(std::size_t{0}), 0.0f, 1e-6f);
  EXPECT_NEAR(out.at(std::size_t{1}), 1.0f, 1e-4f);
}

TEST(SigmoidTanh, GradientFiniteDifference) {
  for (const bool use_tanh : {false, true}) {
    std::unique_ptr<Layer> layer;
    if (use_tanh) layer = std::make_unique<Tanh>();
    else layer = std::make_unique<Sigmoid>();
    util::Xoshiro256 rng{7};
    Tensor in{Shape::vec(6)};
    in.init_uniform(rng, -2.0f, 2.0f);
    Tensor go{Shape::vec(6)};
    go.init_uniform(rng, -1.0f, 1.0f);
    Tensor gi{Shape::vec(6)};
    ASSERT_EQ(layer->backward(in.view(), go.view(), gi.view()), Status::kOk);
    const double eps = 1e-3;
    for (std::size_t i = 0; i < in.size(); ++i) {
      Tensor out{Shape::vec(6)};
      const float saved = in.at(i);
      in.at(i) = static_cast<float>(static_cast<double>(saved) + eps);
      (void)layer->forward(in.view(), out.view());
      double lp = 0.0;
      for (std::size_t k = 0; k < 6; ++k)
        lp += static_cast<double>(go.at(k)) * static_cast<double>(out.at(k));
      in.at(i) = static_cast<float>(static_cast<double>(saved) - eps);
      (void)layer->forward(in.view(), out.view());
      double lm = 0.0;
      for (std::size_t k = 0; k < 6; ++k)
        lm += static_cast<double>(go.at(k)) * static_cast<double>(out.at(k));
      in.at(i) = saved;
      EXPECT_NEAR(gi.at(i), (lp - lm) / (2 * eps), 1e-2);
    }
  }
}

TEST(SigmoidTanh, SerializationRoundTrip) {
  ModelBuilder b{Shape::vec(4)};
  b.dense(5).sigmoid().dense(5).tanh_().dense(2);
  Model m = b.build(3);
  std::stringstream ss;
  m.save(ss);
  Model loaded = Model::load(ss);
  EXPECT_EQ(loaded.provenance_hash(), m.provenance_hash());
}

TEST(SigmoidTanh, TrainableInNetwork) {
  const Dataset ds = toy_dataset(200, 1);
  ModelBuilder b{Shape::vec(4)};
  b.dense(8).tanh_().dense(2);
  Model m = b.build(2);
  Trainer t{TrainConfig{.learning_rate = 0.1, .epochs = 25,
                        .batch_size = 8, .shuffle_seed = 3}};
  const auto hist = t.fit(m, ds);
  EXPECT_GT(hist.back().accuracy, 0.9);
}

// -------------------------------------------------------------------- Adam

TEST(Adam, ConvergesOnToyTask) {
  const Dataset ds = toy_dataset(200, 5);
  ModelBuilder b{Shape::vec(4)};
  b.dense(8).relu().dense(2);
  Model m = b.build(6);
  Trainer t{TrainConfig{.learning_rate = 0.01, .epochs = 20,
                        .batch_size = 8, .shuffle_seed = 7,
                        .optimizer = Optimizer::kAdam}};
  const auto hist = t.fit(m, ds);
  EXPECT_GT(hist.back().accuracy, 0.9);
  EXPECT_LT(hist.back().loss, hist.front().loss);
}

TEST(Adam, DeterministicGivenSeeds) {
  auto run = [] {
    const Dataset ds = toy_dataset(100, 5);
    ModelBuilder b{Shape::vec(4)};
    b.dense(6).relu().dense(2);
    Model m = b.build(6);
    Trainer t{TrainConfig{.learning_rate = 0.01, .epochs = 5,
                          .shuffle_seed = 7,
                          .optimizer = Optimizer::kAdam}};
    t.fit(m, ds);
    return m.provenance_hash();
  };
  EXPECT_EQ(run(), run());
}

// ------------------------------------------------------------ augmentation

TEST(Augment, PreservesShapeAndRange) {
  util::Xoshiro256 rng{1};
  const auto& img = sx::testing::road_data().samples[1].input;
  for (int i = 0; i < 10; ++i) {
    const Tensor aug = augment_image(img, rng);
    EXPECT_EQ(aug.shape(), img.shape());
    for (std::size_t k = 0; k < aug.size(); ++k) {
      EXPECT_GE(aug.at(k), 0.0f);
      EXPECT_LE(aug.at(k), 1.0f);
    }
  }
}

TEST(Augment, PassthroughForVectors) {
  util::Xoshiro256 rng{1};
  Tensor v{Shape::vec(8)};
  v.init_uniform(rng, 0.0f, 1.0f);
  const Tensor aug = augment_image(v, rng);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(aug.at(i), v.at(i));
}

TEST(Augment, TrainingStillConverges) {
  const auto& ds = sx::testing::road_data();
  ModelBuilder b{ds.input_shape};
  b.flatten().dense(32).relu().dense(kRoadSceneClasses);
  Model m = b.build(5);
  Trainer t{TrainConfig{.learning_rate = 0.02, .epochs = 30,
                        .batch_size = 16, .shuffle_seed = 3,
                        .augment = true}};
  t.fit(m, ds);
  // Augmentation makes the training task harder for this small MLP; it
  // must still reach clearly-above-chance accuracy on the clean data.
  EXPECT_GT(Trainer::evaluate_accuracy(m, ds), 0.65);
}

// ---------------------------------------------------- adversarial training

TEST(AdversarialTraining, ImprovesRobustAccuracy) {
  const auto& ds = sx::testing::road_data();
  auto train_model = [&](float adv_eps) {
    ModelBuilder b{ds.input_shape};
    b.flatten().dense(32).relu().dense(16).relu().dense(kRoadSceneClasses);
    Model m = b.build(5);
    Trainer t{TrainConfig{.learning_rate = 0.02, .epochs = 20,
                          .batch_size = 16, .shuffle_seed = 3,
                          .adversarial_eps = adv_eps}};
    t.fit(m, ds);
    return m;
  };
  Model plain = train_model(0.0f);
  Model robust = train_model(0.05f);
  const float eps = 0.05f;
  const double acc_plain = verify::robust_accuracy_fgsm(plain, ds, eps, 80);
  const double acc_robust = verify::robust_accuracy_fgsm(robust, ds, eps, 80);
  EXPECT_GT(acc_robust, acc_plain)
      << "adversarial training should improve FGSM robustness";
}

}  // namespace
}  // namespace sx::dl
