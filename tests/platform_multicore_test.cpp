#include <gtest/gtest.h>

#include "platform/multicore.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace sx::platform {
namespace {

CacheConfig det_cache() {
  return CacheConfig{.line_bytes = 64,
                     .sets = 64,
                     .ways = 4,
                     .placement = Placement::kModulo,
                     .replacement = Replacement::kLru};
}

// ------------------------------------------------------ masked cache access

TEST(PartitionedCache, HitWorksAcrossPartitions) {
  Cache c{det_cache(), 1};
  // Allocate in way set {0,1}; lookup with a different mask still hits.
  EXPECT_FALSE(c.access(0x1000, 0b0011));
  EXPECT_TRUE(c.access(0x1000, 0b1100));
}

TEST(PartitionedCache, AllocationRespectsMask) {
  // 1 set, 4 ways. Partition: we own ways {0,1}; rival owns {2,3}.
  CacheConfig cfg = det_cache();
  cfg.sets = 1;
  Cache c{cfg, 1};
  // Fill our two ways.
  c.access(0x000, 0b0011);
  c.access(0x040, 0b0011);
  // Rival floods its partition with many lines.
  for (std::uint64_t i = 0; i < 32; ++i)
    c.access(0x10000 + i * 64, 0b1100);
  // Our lines survived the flood.
  EXPECT_TRUE(c.access(0x000, 0b0011));
  EXPECT_TRUE(c.access(0x040, 0b0011));
}

TEST(PartitionedCache, UnpartitionedFloodEvicts) {
  CacheConfig cfg = det_cache();
  cfg.sets = 1;
  Cache c{cfg, 1};
  c.access(0x000);
  for (std::uint64_t i = 0; i < 32; ++i) c.access(0x10000 + i * 64);
  EXPECT_FALSE(c.access(0x000));
}

TEST(PartitionedCache, ZeroMaskTreatedAsAllWays) {
  Cache c{det_cache(), 1};
  EXPECT_FALSE(c.access(0x2000, 0));
  EXPECT_TRUE(c.access(0x2000, 0));
}

// -------------------------------------------------------------- contention

TEST(Multicore, ContentionSlowsTheTask) {
  const auto trace = inference_trace(sx::testing::trained_mlp());
  MulticoreConfig quiet{.cache = det_cache(), .co_runners = 0};
  MulticoreConfig busy{.cache = det_cache(), .co_runners = 3};
  const auto t_quiet = execute_with_contention(quiet, trace, 1);
  const auto t_busy = execute_with_contention(busy, trace, 1);
  EXPECT_GT(t_busy.cycles, t_quiet.cycles);
  EXPECT_GE(t_busy.misses, t_quiet.misses);
}

TEST(Multicore, UnpartitionedTimesVaryAcrossBoots) {
  const auto trace = inference_trace(sx::testing::trained_mlp());
  MulticoreConfig cfg{.cache = det_cache(), .co_runners = 3};
  const auto times = collect_contended_times(cfg, trace, 30, 99);
  EXPECT_GT(util::stddev(times), 0.0)
      << "co-runner evictions must induce run-to-run variation";
}

TEST(Multicore, WayPartitioningRestoresDeterminism) {
  const auto trace = inference_trace(sx::testing::trained_mlp());
  MulticoreConfig cfg{.cache = det_cache(), .co_runners = 3, .task_ways = 2};
  const auto times = collect_contended_times(cfg, trace, 30, 99);
  EXPECT_EQ(util::min_of(times), util::max_of(times))
      << "partitioned task must be isolated from co-runner evictions";
}

TEST(Multicore, PartitioningCostsCapacity) {
  // With only part of the cache, the task may miss more than with all of
  // it (capacity cost of isolation) — but never more than under a hostile
  // co-runner flood.
  const auto trace = inference_trace(sx::testing::trained_cnn());
  MulticoreConfig alone{.cache = det_cache(), .co_runners = 0};
  MulticoreConfig part{.cache = det_cache(), .co_runners = 3, .task_ways = 2};
  const auto t_alone = execute_with_contention(alone, trace, 5);
  const auto t_part = execute_with_contention(part, trace, 5);
  EXPECT_GE(t_part.misses, t_alone.misses);
}

TEST(Multicore, PartitionedStillSeesBusInterference) {
  const auto trace = inference_trace(sx::testing::trained_mlp());
  MulticoreConfig solo{.cache = det_cache(), .co_runners = 0, .task_ways = 2};
  MulticoreConfig part{.cache = det_cache(), .co_runners = 3, .task_ways = 2};
  const auto t_solo = execute_with_contention(solo, trace, 7);
  const auto t_part = execute_with_contention(part, trace, 7);
  // Same cache behaviour, but misses pay the bus-interference premium.
  EXPECT_GT(t_part.cycles, t_solo.cycles);
}

// Property sweep: partitioned determinism holds across partition sizes.
class PartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionSweep, DeterministicForAnyTaskWays) {
  const auto trace = inference_trace(sx::testing::trained_mlp());
  MulticoreConfig cfg{.cache = det_cache(), .co_runners = 2,
                      .task_ways = GetParam()};
  const auto times = collect_contended_times(cfg, trace, 10, 5);
  EXPECT_EQ(util::min_of(times), util::max_of(times));
}

INSTANTIATE_TEST_SUITE_P(Ways, PartitionSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace sx::platform
