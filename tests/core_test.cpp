#include <gtest/gtest.h>

#include "core/criticality.hpp"
#include "core/pipeline.hpp"
#include "test_helpers.hpp"

namespace sx::core {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

// -------------------------------------------------------------- criticality

TEST(Criticality, QmAcceptsAnything) {
  PipelineSpec bare;
  EXPECT_TRUE(check_admissible(bare, Criticality::kQM).admissible);
}

TEST(Criticality, HigherLevelsRejectBareChannel) {
  PipelineSpec bare;
  for (const Criticality c : {Criticality::kSil1, Criticality::kSil2,
                              Criticality::kSil3, Criticality::kSil4}) {
    const auto v = check_admissible(bare, c);
    EXPECT_FALSE(v.admissible) << trace::to_string(c);
    EXPECT_FALSE(v.missing.empty());
  }
}

TEST(Criticality, RecommendedSpecIsAdmissibleAtItsLevel) {
  for (const Criticality c : {Criticality::kQM, Criticality::kSil1,
                              Criticality::kSil2, Criticality::kSil3,
                              Criticality::kSil4}) {
    EXPECT_TRUE(check_admissible(recommended_spec(c), c).admissible)
        << trace::to_string(c);
  }
}

TEST(Criticality, RecommendedSpecNotAdmissibleOneLevelUp) {
  EXPECT_FALSE(check_admissible(recommended_spec(Criticality::kSil1),
                                Criticality::kSil2)
                   .admissible);
  EXPECT_FALSE(check_admissible(recommended_spec(Criticality::kSil3),
                                Criticality::kSil4)
                   .admissible);
}

TEST(Criticality, PatternStrengthStrictlyIncreases) {
  EXPECT_LT(pattern_strength(PatternKind::kSingle),
            pattern_strength(PatternKind::kMonitored));
  EXPECT_LT(pattern_strength(PatternKind::kMonitored),
            pattern_strength(PatternKind::kDmr));
  EXPECT_LT(pattern_strength(PatternKind::kDmr),
            pattern_strength(PatternKind::kTmr));
  EXPECT_LT(pattern_strength(PatternKind::kTmr),
            pattern_strength(PatternKind::kDiverseTmr));
}

TEST(Criticality, ObligationsAccumulate) {
  // Each level's obligations are a superset of the previous level's.
  auto leq = [](const Obligations& a, const Obligations& b) {
    return pattern_strength(a.min_pattern) <= pattern_strength(b.min_pattern) &&
           a.supervisor <= b.supervisor && a.odd_guard <= b.odd_guard &&
           a.safety_bag <= b.safety_bag &&
           a.timing_budget <= b.timing_budget &&
           a.explanations <= b.explanations;
  };
  EXPECT_TRUE(leq(obligations_for(Criticality::kQM),
                  obligations_for(Criticality::kSil1)));
  EXPECT_TRUE(leq(obligations_for(Criticality::kSil1),
                  obligations_for(Criticality::kSil2)));
  EXPECT_TRUE(leq(obligations_for(Criticality::kSil2),
                  obligations_for(Criticality::kSil3)));
  EXPECT_TRUE(leq(obligations_for(Criticality::kSil3),
                  obligations_for(Criticality::kSil4)));
}

// ----------------------------------------------------------------- pipeline

TEST(Pipeline, RejectsInadmissibleSpec) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.spec = PipelineSpec{};  // bare
  EXPECT_THROW(CertifiablePipeline(model(), data(), cfg),
               std::invalid_argument);
}

TEST(Pipeline, QmDecidesNormally) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;
  CertifiablePipeline p{model(), data(), cfg};
  const auto d = p.infer(data().samples[0].input);
  EXPECT_EQ(d.status, Status::kOk);
  EXPECT_LT(d.predicted_class, dl::kRoadSceneClasses);
  EXPECT_GT(d.confidence, 0.0f);
}

TEST(Pipeline, Sil2RejectsOutOfOddInput) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{model(), data(), cfg};
  tensor::Tensor extreme{data().input_shape};
  extreme.fill(30.0f);
  const auto d = p.infer(extreme);
  EXPECT_EQ(d.status, Status::kOddViolation);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(p.rejections(), 1u);
}

TEST(Pipeline, Sil3DeadlineMissTriggersFallback) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 1000;
  cfg.fallback_class = 3;
  CertifiablePipeline p{model(), data(), cfg};
  const auto d =
      p.infer(data().samples[0].input, /*logical_time=*/0, /*elapsed=*/5000);
  EXPECT_EQ(d.status, Status::kDeadlineMiss);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.predicted_class, 3u);
}

TEST(Pipeline, Sil3WithinBudgetDecides) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 1000;
  CertifiablePipeline p{model(), data(), cfg};
  const auto d =
      p.infer(data().samples[0].input, /*logical_time=*/0, /*elapsed=*/500);
  EXPECT_EQ(d.status, Status::kOk);
}

TEST(Pipeline, Sil3RequiresBudgetValue) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 0;
  EXPECT_THROW(CertifiablePipeline(model(), data(), cfg),
               std::invalid_argument);
}

TEST(Pipeline, AuditTrailGrowsAndVerifies) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{model(), data(), cfg};
  for (std::size_t i = 0; i < 10; ++i)
    (void)p.infer(data().samples[i].input, i);
  // deploy + kernel-plan + 3 ir-pass (dce, fusion, liveness) +
  // kernel-backend + 10 decisions
  EXPECT_EQ(p.audit().size(), 16u);
  EXPECT_EQ(p.audit().verify(), Status::kOk);
}

TEST(Pipeline, IntegrityGatePasses) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil1;
  CertifiablePipeline p{model(), data(), cfg};
  EXPECT_EQ(p.verify_integrity(), Status::kOk);
}

TEST(Pipeline, ExplainProducesAttribution) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil1;
  CertifiablePipeline p{model(), data(), cfg};
  const auto att = p.explain(data().samples[1].input, 1);
  EXPECT_EQ(att.shape(), data().input_shape);
}

TEST(Pipeline, QmHasNoExplainSupport) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;
  CertifiablePipeline p{model(), data(), cfg};
  EXPECT_THROW(p.explain(data().samples[0].input, 0), std::logic_error);
}

TEST(Pipeline, SafetyCaseCompleteAtEveryLevel) {
  for (const Criticality c : {Criticality::kQM, Criticality::kSil1,
                              Criticality::kSil2, Criticality::kSil3,
                              Criticality::kSil4}) {
    PipelineConfig cfg;
    cfg.criticality = c;
    cfg.timing_budget = 10000;
    CertifiablePipeline p{model(), data(), cfg};
    const auto sc = p.build_safety_case();
    EXPECT_TRUE(sc.complete()) << trace::to_string(c);
    EXPECT_GT(sc.size(), 5u);
  }
}

TEST(Pipeline, Sil4UsesDiverseRedundancy) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil4;
  cfg.timing_budget = 10000;
  CertifiablePipeline p{model(), data(), cfg};
  EXPECT_EQ(p.spec().pattern, PatternKind::kDiverseTmr);
  const auto d = p.infer(data().samples[0].input);
  EXPECT_EQ(d.status, Status::kOk);
}

TEST(Pipeline, OodInputFallsBackAtSil3) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 10000;
  cfg.fallback_class = 3;
  CertifiablePipeline p{model(), data(), cfg};
  const auto ood = dl::corrupt(data(), dl::Corruption::kUniformRandom, 8);
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto d = p.infer(ood.samples[i].input, i);
    degraded += d.degraded ? 1 : 0;
  }
  // ODD guard and/or supervisor should push nearly all to the fallback.
  EXPECT_GT(degraded, 15u);
}

TEST(Pipeline, CountsDecisions) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;
  CertifiablePipeline p{model(), data(), cfg};
  for (std::size_t i = 0; i < 7; ++i) (void)p.infer(data().samples[i].input);
  EXPECT_EQ(p.decisions(), 7u);
}

// Property sweep: at every criticality level, in-distribution inputs flow
// through the pipeline with OK status and high accuracy.
class PipelineLevels : public ::testing::TestWithParam<Criticality> {};

TEST_P(PipelineLevels, InDistributionFlowsThrough) {
  PipelineConfig cfg;
  cfg.criticality = GetParam();
  cfg.timing_budget = 10000;
  cfg.supervisor_tpr = 0.99;
  CertifiablePipeline p{model(), data(), cfg};
  std::size_t ok_count = 0, correct = 0;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    const auto d = p.infer(data().samples[i].input, i, 100);
    if (d.status == Status::kOk && !d.degraded) {
      ++ok_count;
      correct += (d.predicted_class == data().samples[i].label) ? 1 : 0;
    }
  }
  EXPECT_GT(ok_count, n * 8 / 10);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ok_count),
            0.75);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, PipelineLevels,
                         ::testing::Values(Criticality::kQM,
                                           Criticality::kSil1,
                                           Criticality::kSil2,
                                           Criticality::kSil3,
                                           Criticality::kSil4));

// ------------------------------------------------------------ int8 backend

TEST(PipelineInt8, Sil2EndToEndDecides) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.backend = BackendKind::kInt8;
  CertifiablePipeline p{model(), data(), cfg};

  EXPECT_EQ(p.backend(), BackendKind::kInt8);
  EXPECT_STREQ(to_string(p.backend()), "int8");
  ASSERT_NE(p.quantized_model(), nullptr);
  ASSERT_NE(p.quant_channel(), nullptr);
  // SIL2's recommended pattern is kMonitored: the int8 channel must carry
  // its own runtime monitor to stay admissible.
  EXPECT_EQ(p.quant_channel()->pattern_name(), "int8-monitored");

  std::size_t ok_count = 0, correct = 0;
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i) {
    const auto d = p.infer(data().samples[i].input, i);
    if (d.status == Status::kOk && !d.degraded) {
      ++ok_count;
      correct += (d.predicted_class == data().samples[i].label) ? 1 : 0;
    }
  }
  EXPECT_GT(ok_count, n * 7 / 10);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(ok_count),
            0.7);
  EXPECT_EQ(ok(p.audit().verify()), true);

  // Deployment evidence: the audit trail records the backend and the
  // quantized kernel plan.
  bool saw_backend = false, saw_plan = false;
  for (const auto& e : p.audit().entries()) {
    if (e.action == "deploy" && e.payload.find("backend=int8") !=
                                    std::string::npos)
      saw_backend = true;
    if (e.actor == "quant-plan") saw_plan = true;
  }
  EXPECT_TRUE(saw_backend);
  EXPECT_TRUE(saw_plan);
}

TEST(PipelineInt8, RejectsCriticalityAboveMonitoredRung) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;  // demands DMR: float replicas
  cfg.backend = BackendKind::kInt8;
  cfg.timing_budget = 1000;
  EXPECT_THROW(CertifiablePipeline(model(), data(), cfg),
               std::invalid_argument);
}

TEST(PipelineInt8, FloatBackendHasNoQuantState) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{model(), data(), cfg};
  EXPECT_EQ(p.backend(), BackendKind::kFloat32);
  EXPECT_EQ(p.quantized_model(), nullptr);
  EXPECT_EQ(p.quant_channel(), nullptr);
  EXPECT_EQ(p.quant_saturation_total(), 0u);
  EXPECT_THROW(p.quant_saturation_cross_check(), std::logic_error);
}

TEST(PipelineInt8, BatchPathIsQuantizedAndDecides) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.backend = BackendKind::kInt8;
  cfg.batch_workers = 4;
  CertifiablePipeline p{model(), data(), cfg};
  ASSERT_NE(p.batch_runner(), nullptr);
  EXPECT_TRUE(p.batch_runner()->quantized());

  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 9; ++i)
    inputs.push_back(data().samples[i].input);
  const auto decisions = p.infer_batch(inputs);
  ASSERT_EQ(decisions.size(), inputs.size());
  std::size_t ok_count = 0;
  for (const auto& d : decisions)
    if (d.status == Status::kOk && !d.degraded) ++ok_count;
  EXPECT_GT(ok_count, 5u);

  // Single-item decisions must match the batch path bit for bit: both run
  // the same planned int8 engine stack.
  PipelineConfig scfg = cfg;
  scfg.batch_workers = 0;
  CertifiablePipeline serial{model(), data(), scfg};
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto d = serial.infer(inputs[i], i);
    EXPECT_EQ(d.status, decisions[i].status) << "item " << i;
    EXPECT_EQ(d.predicted_class, decisions[i].predicted_class) << "item " << i;
    EXPECT_EQ(d.confidence, decisions[i].confidence) << "item " << i;
  }
}

TEST(PipelineInt8, StaticVerificationCrossChecksSaturation) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.backend = BackendKind::kInt8;
  PipelineSpec spec = recommended_spec(Criticality::kSil2);
  spec.has_static_verification = true;  // stricter than SIL2 demands
  cfg.spec = spec;
  CertifiablePipeline p{model(), data(), cfg};

  const auto* sv = p.static_verification();
  ASSERT_NE(sv, nullptr);
  EXPECT_TRUE(sv->quant_checked);
  EXPECT_FALSE(sv->quant.empty());
  EXPECT_TRUE(sv->quant_arena.consistent)
      << "independent byte-arena demand diverges from the engine plan";
  EXPECT_FALSE(p.verification_refused());
  EXPECT_NE(sv->to_text().find("int8 arena plan"), std::string::npos);

  for (std::size_t i = 0; i < 30; ++i) (void)p.infer(data().samples[i].input, i);
  const verify::SaturationCrossCheck xc = p.quant_saturation_cross_check();
  EXPECT_EQ(xc.layers_checked, p.quantized_model()->layer_count());
  EXPECT_TRUE(xc.consistent)
      << "a statically-safe layer clipped at runtime: " << xc.violations
      << " violations";
  EXPECT_EQ(xc.measured_total, p.quant_saturation_total());
}

TEST(PipelineInt8, TelemetryExposesQuantMetrics) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.backend = BackendKind::kInt8;
  CertifiablePipeline p{model(), data(), cfg};
  ASSERT_NE(p.telemetry(), nullptr);
  for (std::size_t i = 0; i < 10; ++i) (void)p.infer(data().samples[i].input, i);
  const std::string metrics = obs::expose_text(*p.telemetry());
  EXPECT_NE(metrics.find("sx_quant_saturations_total"), std::string::npos);
  EXPECT_NE(metrics.find("sx_quant_weight_bytes"), std::string::npos);
  EXPECT_NE(metrics.find("sx_stage_quant_inference_cycles"), std::string::npos);
}

}  // namespace
}  // namespace sx::core
