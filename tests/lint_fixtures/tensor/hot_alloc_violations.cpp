// Seeded FUSA-violation fixture for sxlint's hot-path-alloc rule. NEVER
// compiled or linked — only scanned by the `sxlint_seeded_fixture` CTest
// entry. The `tensor/` directory component makes every file here count as a
// kernel hot path, where dynamic allocation and container growth are
// forbidden outside the deploy-time plan.
#include <memory>
#include <vector>

namespace fixture {

// hot-path-alloc: container growth on the kernel path.
void accumulate(std::vector<float>& out, float v) {
  out.push_back(v);
  out.emplace_back(v * 2.0f);
}

// hot-path-alloc: resizing scratch per call instead of using the arena.
void make_scratch(std::vector<float>& scratch, unsigned n) {
  scratch.resize(n);
  scratch.reserve(n * 2);
}

// hot-path-alloc: smart-pointer factories allocate on the heap.
std::unique_ptr<float[]> grab(unsigned n) {
  return std::make_unique<float[]>(n);
}
std::shared_ptr<int> grab_shared() { return std::make_shared<int>(0); }

// hot-path-alloc (and heap-expr): raw new on the kernel path.
float* raw_grab(unsigned n) { return new float[n]; }

// A waived finding: the marker must suppress this one (it contributes to
// the "waived" counter, not the findings list).
std::unique_ptr<int> deploy_time_slot() {
  return std::make_unique<int>(0);  // sxlint: allow(hot-path-alloc)
}

// Not findings: identifiers that merely contain a banned name, and string
// literals mentioning growth calls, must stay silent.
void resize_noop() {}
const char* kDoc = "never call resize() or push_back() here";

}  // namespace fixture
