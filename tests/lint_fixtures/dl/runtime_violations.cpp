// Seeded FUSA-violation fixture for sxlint. NEVER compiled or linked —
// only scanned by the `sxlint_seeded_fixture` CTest entry, which expects
// the linter to exit non-zero on this file. The `dl/` directory component
// makes it count as a runtime path.
//
// Each violation below exercises one rule; keep them in sync with the rule
// table in tools/sxlint.cpp.
#include <cstring>
#include <iostream>  // banned-include: stream IO in a runtime directory

namespace fixture {

// banned-call: heap via libc instead of tensor::Arena.
float* grab_buffer(unsigned n) {
  float* p = static_cast<float*>(malloc(n * sizeof(float)));
  return p;
}

// banned-call: unseeded libc randomness.
int noisy_threshold() { return rand() % 7; }

// console-io: operational logging through global streams.
void log_decision(int cls) { std::cout << "decided " << cls << "\n"; }

// heap-expr: raw new/delete ownership on the runtime path.
int* make_counter() { return new int(0); }
void drop_counter(int* c) { delete c; }

// throw-in-noexcept: would std::terminate on the operational path.
int checked_index(int i) noexcept {
  if (i < 0) throw i;
  return i;
}

// recursion: direct self-recursion with no bound marker.
unsigned long fact(unsigned long n) { return n < 2 ? 1 : n * fact(n - 1); }

// A waived finding: the marker must suppress this one (it contributes to
// the "waived" counter, not the findings list).
unsigned depth_bounded(unsigned n) {
  if (n == 0) return 0;
  return 1 + depth_bounded(n / 2);  // sxlint: allow(recursion)
}

// Not findings: deleted special members and comments that merely mention
// new/delete/malloc must stay silent.
struct NoCopy {
  NoCopy() = default;
  NoCopy(const NoCopy&) = delete;             // not a heap-expr
  NoCopy& operator=(const NoCopy&) = delete;  // not a heap-expr
};
const char* kDoc = "call malloc(3) and rand() here";  // string literal only

}  // namespace fixture
