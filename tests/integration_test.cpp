// End-to-end integration: the full SAFEXPLAIN lifecycle on the railway
// workload (experiment E10's shape), crossing every subsystem boundary.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "dl/engine.hpp"
#include "dl/train.hpp"
#include "explain/metrics.hpp"
#include "platform/sim.hpp"
#include "rt/rta.hpp"
#include "rt/scheduler.hpp"
#include "safety/campaign.hpp"
#include "supervise/conformal.hpp"
#include "timing/mbpta.hpp"
#include "trace/requirements.hpp"

namespace sx {
namespace {

struct RailwayFixture : public ::testing::Test {
  static dl::Dataset& train_data() {
    static dl::Dataset ds = dl::make_railway_obstacle(300, 2);
    return ds;
  }
  static dl::Dataset& test_data() {
    static dl::Dataset ds = dl::make_railway_obstacle(100, 3);
    return ds;
  }
  static dl::Model& model() {
    static dl::Model m = [] {
      dl::ModelBuilder b{train_data().input_shape};
      b.flatten().dense(24).relu().dense(2);
      dl::Model model = b.build(4);
      dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.05,
                                          .epochs = 10,
                                          .batch_size = 16,
                                          .shuffle_seed = 6}};
      trainer.fit(model, train_data());
      return model;
    }();
    return m;
  }
};

TEST_F(RailwayFixture, ModelLearnsTheTask) {
  EXPECT_GT(dl::Trainer::evaluate_accuracy(model(), test_data()), 0.85);
}

TEST_F(RailwayFixture, FullLifecycleProducesCompleteEvidence) {
  // 1. Deploy a SIL3 pipeline with obstacle-assumed fallback (class 1).
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.timing_budget = 100000;
  cfg.fallback_class = 1;
  core::CertifiablePipeline pipeline{model(), train_data(), cfg};

  // 2. Run a mission: nominal inputs must flow, corrupted inputs degrade.
  std::size_t correct = 0, seen = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto d = pipeline.infer(test_data().samples[i].input, i, 100);
    if (d.status == Status::kOk && !d.degraded) {
      ++seen;
      correct += d.predicted_class == test_data().samples[i].label ? 1 : 0;
    }
  }
  ASSERT_GT(seen, 30u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(seen), 0.8);

  const auto fog = dl::corrupt(test_data(), dl::Corruption::kUniformRandom, 9);
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto d = pipeline.infer(fog.samples[i].input, 100 + i, 100);
    degraded += (d.degraded || !ok(d.status)) ? 1 : 0;
  }
  EXPECT_GT(degraded, 15u);

  // 3. Evidence: audit chain verifies; safety case complete; provenance ok.
  EXPECT_EQ(pipeline.audit().verify(), Status::kOk);
  EXPECT_TRUE(pipeline.build_safety_case().complete());
  EXPECT_EQ(pipeline.verify_integrity(), Status::kOk);
}

TEST_F(RailwayFixture, MissionCriticalNeverMissesObstacleUnderFallback) {
  // The safety argument for the railway case: whenever the pipeline is
  // unsure (degraded), it must claim "obstacle" (the conservative class).
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.timing_budget = 100000;
  cfg.fallback_class = 1;
  core::CertifiablePipeline pipeline{model(), train_data(), cfg};

  const auto noisy =
      dl::corrupt(test_data(), dl::Corruption::kGaussianNoise, 10, 2.0f);
  std::size_t missed_obstacles = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto d = pipeline.infer(noisy.samples[i].input, i, 100);
    if (noisy.samples[i].label == 1 && d.predicted_class == 0 && !d.degraded &&
        ok(d.status)) {
      // A confidently wrong "all clear" on an obstacle — only acceptable if
      // rare; count them.
      ++missed_obstacles;
    }
  }
  EXPECT_LT(missed_obstacles, 8u);
}

TEST_F(RailwayFixture, TimingPipelineFeedsSchedulableBudget) {
  // Platform measurement -> MBPTA -> pWCET -> RT task budget -> RTA + sim.
  const platform::AccessTrace trace = platform::inference_trace(model());
  const platform::CacheConfig cache{.line_bytes = 64,
                                    .sets = 64,
                                    .ways = 4,
                                    .placement = platform::Placement::kRandom,
                                    .replacement =
                                        platform::Replacement::kRandom};
  const auto times = platform::collect_execution_times(
      cache, platform::TimingModel{}, trace, 600, 77);
  const auto report = timing::analyze(times);
  ASSERT_TRUE(report.admissible) << report.to_text();
  const double budget = timing::pwcet(report.fit, 1e-9);
  EXPECT_GT(budget, report.observed_hwm);

  // Build a task set where the DL task gets the pWCET as its budget.
  rt::TaskSet ts;
  const auto wcet = static_cast<std::uint64_t>(budget);
  ts.add(rt::Task{.name = "dl-inference", .period = wcet * 3, .wcet = wcet});
  ts.add(rt::Task{.name = "housekeeping", .period = wcet * 10,
                  .wcet = wcet / 2});
  ts.assign_deadline_monotonic();
  ASSERT_TRUE(rt::response_time_analysis(ts).schedulable);

  // Actual execution times are the measured distribution, always <= pWCET.
  std::size_t cursor = 0;
  const rt::ExecTimeFn sampler = [&](const rt::Task& task,
                                     util::Xoshiro256&) -> std::uint64_t {
    if (task.name != "dl-inference") return task.wcet;
    const double t = times[cursor++ % times.size()];
    return static_cast<std::uint64_t>(std::min(t, budget));
  };
  const rt::SimResult sim =
      rt::simulate(ts, rt::SimConfig{.duration = wcet * 200}, sampler);
  EXPECT_EQ(sim.total_misses, 0u);
}

TEST_F(RailwayFixture, FaultCampaignFeedsRequirementEvidence) {
  // Run a small campaign and attach the result as analysis evidence.
  safety::TmrChannel channel{model()};
  dl::Dataset probes;
  probes.num_classes = 2;
  probes.input_shape = test_data().input_shape;
  for (std::size_t i = 0; i < 8; ++i)
    probes.samples.push_back(test_data().samples[i]);
  const auto outcome = safety::run_campaign(
      channel, probes,
      safety::CampaignConfig{.n_faults = 40, .probes_per_fault = 4});
  EXPECT_LT(outcome.sdc_rate(), 0.02);

  trace::RequirementRegistry reg;
  reg.add(trace::Requirement{"REQ-SAF-001",
                             "Single weight-memory upsets shall not cause "
                             "undetected wrong decisions",
                             trace::Criticality::kSil3});
  reg.link("REQ-SAF-001", trace::ArtifactKind::kAnalysis,
           "fault-campaign-tmr", "verifies");
  reg.link("REQ-SAF-001", trace::ArtifactKind::kComponent, "tmr-channel",
           "implements");
  EXPECT_DOUBLE_EQ(reg.coverage("verifies"), 1.0);
  EXPECT_TRUE(reg.uncovered("verifies").empty());
}

TEST_F(RailwayFixture, ConformalGuaranteeOnRailway) {
  dl::Dataset calib, test;
  dl::split(test_data(), 0.5, calib, test);
  const supervise::ConformalClassifier cc{model(), calib, 0.1};
  const auto rep = cc.evaluate(model(), test);
  EXPECT_GE(rep.empirical_coverage, 0.84);
}

TEST_F(RailwayFixture, ExplanationsFocusOnObstacle) {
  explain::GradientSaliency saliency;
  double gain = 0.0;
  std::size_t n = 0;
  for (const auto& s : test_data().samples) {
    if (!s.signal || s.label != 1) continue;
    const auto logits = model().forward(s.input);
    if (tensor::argmax(logits.view()) != 1) continue;
    const auto att = saliency.attribute(model(), s.input, 1);
    gain += explain::localization_gain(att, *s.signal);
    if (++n >= 10) break;
  }
  ASSERT_GT(n, 3u);
  EXPECT_GT(gain / static_cast<double>(n), 1.3);
}

}  // namespace
}  // namespace sx
