#include <gtest/gtest.h>

#include <cmath>

#include "dl/layers.hpp"
#include "util/rng.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Finite-difference check of layer->backward against layer->forward.
/// Verifies both dL/dinput and dL/dparams for the scalar loss
/// L = sum(weights_r * out) with random r.
void gradient_check(Layer& layer, const Shape& in_shape, std::uint64_t seed,
                    double tol = 2e-2) {
  util::Xoshiro256 rng{seed};
  Tensor input{in_shape};
  input.init_uniform(rng, -1.0f, 1.0f);
  const Shape out_shape = layer.output_shape(in_shape);
  Tensor r{out_shape};
  r.init_uniform(rng, -1.0f, 1.0f);

  auto loss = [&](const Tensor& x) {
    Tensor out{out_shape};
    EXPECT_EQ(layer.forward(x.view(), out.view()), Status::kOk);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      acc += static_cast<double>(r.at(i)) * static_cast<double>(out.at(i));
    return acc;
  };

  // Analytic gradients.
  layer.zero_grads();
  Tensor grad_in{in_shape};
  ASSERT_EQ(layer.backward(input.view(), r.view(), grad_in.view()),
            Status::kOk);

  const double eps = 1e-3;
  // Input gradient check (subsample for large tensors).
  const std::size_t stride_in = std::max<std::size_t>(1, input.size() / 24);
  for (std::size_t i = 0; i < input.size(); i += stride_in) {
    const float saved = input.at(i);
    input.at(i) = static_cast<float>(static_cast<double>(saved) + eps);
    const double lp = loss(input);
    input.at(i) = static_cast<float>(static_cast<double>(saved) - eps);
    const double lm = loss(input);
    input.at(i) = saved;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grad_in.at(i), numeric, tol)
        << "input grad mismatch at " << i;
  }

  // Parameter gradient check.
  auto params = layer.params();
  auto grads = layer.param_grads();
  const std::size_t stride_p = std::max<std::size_t>(1, params.size() / 24);
  for (std::size_t i = 0; i < params.size(); i += stride_p) {
    const float saved = params[i];
    params[i] = static_cast<float>(static_cast<double>(saved) + eps);
    const double lp = loss(input);
    params[i] = static_cast<float>(static_cast<double>(saved) - eps);
    const double lm = loss(input);
    params[i] = saved;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(grads[i], numeric, tol) << "param grad mismatch at " << i;
  }
}

// ------------------------------------------------------------------- Dense

TEST(Dense, ForwardKnownValues) {
  Dense d{2, 2};
  auto p = d.params();
  // W = [[1,2],[3,4]], b = [0.5, -0.5]
  p[0] = 1;
  p[1] = 2;
  p[2] = 3;
  p[3] = 4;
  p[4] = 0.5f;
  p[5] = -0.5f;
  Tensor in{Shape::vec(2), {1, 1}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(d.forward(in.view(), out.view()), Status::kOk);
  EXPECT_FLOAT_EQ(out.at(std::size_t{0}), 3.5f);
  EXPECT_FLOAT_EQ(out.at(std::size_t{1}), 6.5f);
}

TEST(Dense, OutputShapeValidatesInput) {
  Dense d{4, 2};
  EXPECT_EQ(d.output_shape(Shape::vec(4)), Shape::vec(2));
  EXPECT_EQ(d.output_shape(Shape::mat(2, 2)), Shape::vec(2));  // size matches
  EXPECT_THROW(d.output_shape(Shape::vec(3)), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  Dense d{5, 4};
  util::Xoshiro256 rng{3};
  d.init(rng);
  gradient_check(d, Shape::vec(5), 101);
}

TEST(Dense, CloneIsDeep) {
  Dense d{2, 2};
  util::Xoshiro256 rng{4};
  d.init(rng);
  auto c = d.clone();
  d.params()[0] += 1.0f;
  EXPECT_NE(d.params()[0], c->params()[0]);
}

TEST(Dense, RejectsZeroDims) {
  EXPECT_THROW(Dense(0, 3), std::invalid_argument);
}

// -------------------------------------------------------------------- Relu

TEST(Relu, GradientCheck) {
  Relu r;
  gradient_check(r, Shape::vec(10), 7);
}

TEST(Relu, GradientBlocksNegatives) {
  Relu r;
  Tensor in{Shape::vec(2), {-1.0f, 1.0f}};
  Tensor go{Shape::vec(2), {1.0f, 1.0f}};
  Tensor gi{Shape::vec(2)};
  ASSERT_EQ(r.backward(in.view(), go.view(), gi.view()), Status::kOk);
  EXPECT_EQ(gi.at(std::size_t{0}), 0.0f);
  EXPECT_EQ(gi.at(std::size_t{1}), 1.0f);
}

// ------------------------------------------------------------------ Conv2d

TEST(Conv2d, OutputShapeArithmetic) {
  Conv2d c{1, 4, 3, 1, 1};
  EXPECT_EQ(c.output_shape(Shape::chw(1, 8, 8)), Shape::chw(4, 8, 8));
  Conv2d s{1, 2, 3, 2, 0};
  EXPECT_EQ(s.output_shape(Shape::chw(1, 7, 7)), Shape::chw(2, 3, 3));
  EXPECT_THROW(c.output_shape(Shape::chw(2, 8, 8)), std::invalid_argument);
  EXPECT_THROW(c.output_shape(Shape::vec(64)), std::invalid_argument);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1, bias 0: output == input.
  Conv2d c{1, 1, 1};
  c.params()[0] = 1.0f;
  c.params()[1] = 0.0f;
  Tensor in{Shape::chw(1, 3, 3)};
  util::Xoshiro256 rng{5};
  in.init_uniform(rng, -1, 1);
  Tensor out{Shape::chw(1, 3, 3)};
  ASSERT_EQ(c.forward(in.view(), out.view()), Status::kOk);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_FLOAT_EQ(out.at(i), in.at(i));
}

TEST(Conv2d, AveragingKernelKnownValue) {
  // 3x3 kernel of 1/9 over a constant image = the constant.
  Conv2d c{1, 1, 3, 1, 0};
  for (int i = 0; i < 9; ++i) c.params()[static_cast<std::size_t>(i)] = 1.0f / 9.0f;
  c.params()[9] = 0.0f;
  Tensor in{Shape::chw(1, 5, 5)};
  in.fill(2.0f);
  Tensor out{Shape::chw(1, 3, 3)};
  ASSERT_EQ(c.forward(in.view(), out.view()), Status::kOk);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.at(i), 2.0f, 1e-6f);
}

TEST(Conv2d, PaddingContributesZeros) {
  // Sum kernel with padding: corner output sees only 4 of 9 inputs.
  Conv2d c{1, 1, 3, 1, 1};
  for (int i = 0; i < 9; ++i) c.params()[static_cast<std::size_t>(i)] = 1.0f;
  c.params()[9] = 0.0f;
  Tensor in{Shape::chw(1, 3, 3)};
  in.fill(1.0f);
  Tensor out{Shape::chw(1, 3, 3)};
  ASSERT_EQ(c.forward(in.view(), out.view()), Status::kOk);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);  // corner
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);  // center
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f);  // edge
}

TEST(Conv2d, GradientCheck) {
  Conv2d c{2, 3, 3, 1, 1};
  util::Xoshiro256 rng{9};
  c.init(rng);
  gradient_check(c, Shape::chw(2, 5, 5), 202);
}

TEST(Conv2d, GradientCheckStride2) {
  Conv2d c{1, 2, 3, 2, 0};
  util::Xoshiro256 rng{10};
  c.init(rng);
  gradient_check(c, Shape::chw(1, 7, 7), 203);
}

// ----------------------------------------------------------------- pooling

TEST(MaxPool2d, SelectsWindowMaximum) {
  MaxPool2d p{2};
  Tensor in{Shape::chw(1, 2, 2), {1, 5, 3, 2}};
  Tensor out{Shape::chw(1, 1, 1)};
  ASSERT_EQ(p.forward(in.view(), out.view()), Status::kOk);
  EXPECT_FLOAT_EQ(out.at(std::size_t{0}), 5.0f);
}

TEST(MaxPool2d, ShapeRequiresDivisibility) {
  MaxPool2d p{2};
  EXPECT_THROW(p.output_shape(Shape::chw(1, 5, 4)), std::invalid_argument);
  EXPECT_EQ(p.output_shape(Shape::chw(3, 4, 6)), Shape::chw(3, 2, 3));
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d p{2};
  Tensor in{Shape::chw(1, 2, 2), {1, 5, 3, 2}};
  Tensor go{Shape::chw(1, 1, 1), {2.0f}};
  Tensor gi{Shape::chw(1, 2, 2)};
  ASSERT_EQ(p.backward(in.view(), go.view(), gi.view()), Status::kOk);
  EXPECT_FLOAT_EQ(gi.at(std::size_t{1}), 2.0f);
  EXPECT_FLOAT_EQ(gi.at(std::size_t{0}), 0.0f);
}

TEST(AvgPool2d, AveragesWindow) {
  AvgPool2d p{2};
  Tensor in{Shape::chw(1, 2, 2), {1, 5, 3, 3}};
  Tensor out{Shape::chw(1, 1, 1)};
  ASSERT_EQ(p.forward(in.view(), out.view()), Status::kOk);
  EXPECT_FLOAT_EQ(out.at(std::size_t{0}), 3.0f);
}

TEST(AvgPool2d, GradientCheck) {
  AvgPool2d p{2};
  gradient_check(p, Shape::chw(2, 4, 4), 303);
}

// ----------------------------------------------------------------- Flatten

TEST(Flatten, PreservesDataAndSize) {
  Flatten f;
  Tensor in{Shape::chw(2, 2, 2), {1, 2, 3, 4, 5, 6, 7, 8}};
  Tensor out{Shape::vec(8)};
  ASSERT_EQ(f.forward(in.view(), out.view()), Status::kOk);
  EXPECT_FLOAT_EQ(out.at(std::size_t{5}), 6.0f);
}

// ----------------------------------------------------------------- Softmax

TEST(Softmax, GradientCheck) {
  Softmax s;
  gradient_check(s, Shape::vec(6), 404, 1e-2);
}

TEST(Softmax, RequiresRank1) {
  Softmax s;
  EXPECT_THROW(s.output_shape(Shape::mat(2, 3)), std::invalid_argument);
}

// --------------------------------------------------------------- BatchNorm

TEST(BatchNorm, IdentityWithDefaultStats) {
  BatchNorm bn{2};
  Tensor in{Shape::chw(2, 1, 2), {1, 2, 3, 4}};
  Tensor out{Shape::chw(2, 1, 2)};
  ASSERT_EQ(bn.forward(in.view(), out.view()), Status::kOk);
  // gamma=1, beta=0, mean=0, var=1 -> approximately identity.
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_NEAR(out.at(i), in.at(i), 1e-4f);
}

TEST(BatchNorm, NormalizesWithStatistics) {
  BatchNorm bn{1};
  const std::vector<float> mean{2.0f};
  const std::vector<float> var{4.0f};
  bn.set_statistics(mean, var);
  Tensor in{Shape::vec(2), {2.0f, 4.0f}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(bn.forward(in.view(), out.view()), Status::kOk);
  EXPECT_NEAR(out.at(std::size_t{0}), 0.0f, 1e-4f);
  EXPECT_NEAR(out.at(std::size_t{1}), 1.0f, 1e-3f);
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm bn{3};
  const std::vector<float> mean{0.1f, -0.2f, 0.3f};
  const std::vector<float> var{1.5f, 0.5f, 2.0f};
  bn.set_statistics(mean, var);
  gradient_check(bn, Shape::chw(3, 2, 2), 505);
}

TEST(BatchNorm, RejectsWrongChannelCount) {
  BatchNorm bn{2};
  EXPECT_THROW(bn.output_shape(Shape::chw(3, 2, 2)), std::invalid_argument);
  const std::vector<float> one{0.0f};
  EXPECT_THROW(bn.set_statistics(one, one), std::invalid_argument);
}

// Property sweep: every parametric layer's gradient check passes for
// multiple random seeds.
class DenseGradProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DenseGradProperty, Passes) {
  Dense d{6, 3};
  util::Xoshiro256 rng{GetParam()};
  d.init(rng);
  gradient_check(d, Shape::vec(6), GetParam() * 31 + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseGradProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

class ConvGradProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvGradProperty, Passes) {
  Conv2d c{1, 2, 3, 1, 1};
  util::Xoshiro256 rng{GetParam()};
  c.init(rng);
  gradient_check(c, Shape::chw(1, 4, 4), GetParam() * 17 + 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvGradProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sx::dl
