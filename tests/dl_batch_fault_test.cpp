// Fault containment under parallel batch execution: bit-flips injected via
// safety/fault and NaN-poisoned inputs must be counted exactly once each
// and attributed to the correct batch index, under every worker count.
#include <gtest/gtest.h>

#include <algorithm>

#include <cmath>
#include <limits>
#include <vector>

#include "dl/batch.hpp"
#include "safety/fault.hpp"
#include "test_helpers.hpp"

namespace sx::dl {
namespace {

using tensor::Tensor;

constexpr std::size_t kBatch = 17;  // deliberately not a power of two

std::vector<float> stage_inputs(std::size_t count) {
  const auto& ds = sx::testing::road_data();
  const std::size_t in_size = ds.input_shape.size();
  std::vector<float> flat(count * in_size);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = ds.samples[i].input.data();
    std::copy(src.begin(), src.end(), flat.begin() + i * in_size);
  }
  return flat;
}

/// Finds a (param, bit) whose flip makes the serial engine fault on sample
/// 0, injects it, and returns the record. The search is deterministic.
safety::FaultRecord inject_poisoning_flip(Model& model) {
  const std::size_t layer = 1;  // first dense layer of the MLP fixture
  const std::size_t params = model.layer(layer).params().size();
  safety::FaultInjector injector{/*seed=*/99};
  std::vector<float> out(model.output_shape().size());
  for (std::size_t p = 0; p < params; ++p) {
    // Bit 30 is the exponent MSB: flipping it on a normal float of modest
    // magnitude catapults it to ~1e38, which overflows the activations.
    const safety::FaultRecord rec = injector.inject_at(
        model, safety::FaultType::kBitFlip, layer, p, /*bit=*/30);
    StaticEngine probe{model};
    const Status st =
        probe.run(sx::testing::road_data().samples[0].input.view(), out);
    if (st == Status::kNumericFault) return rec;
    safety::FaultInjector::restore(model, rec);
  }
  ADD_FAILURE() << "no single bit-flip produced a numeric fault";
  return {};
}

TEST(BatchFaultInjection, WeightBitFlipFaultsEveryItemExactlyOnce) {
  Model model = sx::testing::trained_mlp();  // private corrupted copy
  const safety::FaultRecord rec = inject_poisoning_flip(model);
  // The SEU really fired: the flipped weight is non-finite (exponent went
  // all-ones) or catapulted far outside the trained range.
  ASSERT_TRUE(!std::isfinite(rec.after) || std::abs(rec.after) > 1e30f)
      << rec.after;

  const auto flat = stage_inputs(kBatch);
  std::vector<float> out(kBatch * model.output_shape().size());

  for (const std::size_t workers : {1u, 2u, 4u}) {
    BatchRunner runner{model, BatchRunnerConfig{.workers = workers}};
    std::vector<Status> st(kBatch, Status::kOk);
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);

    // Every item faults, is counted exactly once, and the fault log lists
    // each batch index exactly once, in ascending order.
    for (std::size_t i = 0; i < kBatch; ++i)
      EXPECT_EQ(st[i], Status::kNumericFault) << "item " << i;
    EXPECT_EQ(runner.numeric_fault_count(), kBatch);
    EXPECT_EQ(runner.run_count(), 0u);
    const auto log = runner.fault_log();
    ASSERT_EQ(log.size(), kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      EXPECT_EQ(log[i].batch_index, i);
      EXPECT_EQ(log[i].status, Status::kNumericFault);
    }
    // Per-worker fault counts follow the static partition alone.
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const BatchWorkerStats s = runner.worker_stats(w);
      const std::uint64_t owned = (kBatch - w + workers - 1) / workers;
      EXPECT_EQ(s.faults, owned) << "worker " << w;
      total += s.faults;
    }
    EXPECT_EQ(total, kBatch);
  }

  // Undo the SEU: the restored model runs clean again.
  safety::FaultInjector::restore(model, rec);
  BatchRunner clean{model, BatchRunnerConfig{.workers = 2}};
  std::vector<Status> st(kBatch, Status::kNumericFault);
  ASSERT_EQ(clean.run(flat, out, st), Status::kOk);
  for (std::size_t i = 0; i < kBatch; ++i) EXPECT_EQ(st[i], Status::kOk);
  EXPECT_EQ(clean.numeric_fault_count(), 0u);
  EXPECT_TRUE(clean.fault_log().empty());
}

TEST(BatchFaultInjection, NaNInputsAttributedToExactIndices) {
  const Model& model = sx::testing::trained_mlp();
  const std::size_t in_size = model.input_shape().size();
  const std::vector<std::size_t> poisoned{3, 7, 12};

  auto flat = stage_inputs(kBatch);
  for (const std::size_t i : poisoned)
    flat[i * in_size + 5] = std::numeric_limits<float>::quiet_NaN();

  std::vector<float> out(kBatch * model.output_shape().size());
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    BatchRunner runner{model, BatchRunnerConfig{.workers = workers}};
    std::vector<Status> st(kBatch, Status::kOk);
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);

    for (std::size_t i = 0; i < kBatch; ++i) {
      const bool bad =
          std::find(poisoned.begin(), poisoned.end(), i) != poisoned.end();
      EXPECT_EQ(st[i], bad ? Status::kNumericFault : Status::kOk)
          << "item " << i << " at " << workers << " workers";
    }
    EXPECT_EQ(runner.numeric_fault_count(), poisoned.size());
    EXPECT_EQ(runner.run_count(), kBatch - poisoned.size());
    const auto log = runner.fault_log();
    ASSERT_EQ(log.size(), poisoned.size());
    for (std::size_t k = 0; k < poisoned.size(); ++k)
      EXPECT_EQ(log[k].batch_index, poisoned[k]);
  }
}

TEST(BatchFaultInjection, CountersAccumulateOnceAcrossRepeatedBatches) {
  // Re-running the same poisoned batch N times counts each injected fault
  // once per run — never more (no double counting across the barrier).
  const Model& model = sx::testing::trained_mlp();
  const std::size_t in_size = model.input_shape().size();
  auto flat = stage_inputs(kBatch);
  flat[0 * in_size] = std::numeric_limits<float>::infinity();

  BatchRunner runner{model, BatchRunnerConfig{.workers = 4}};
  std::vector<float> out(kBatch * model.output_shape().size());
  std::vector<Status> st(kBatch);
  for (int rep = 1; rep <= 3; ++rep) {
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
    EXPECT_EQ(runner.numeric_fault_count(),
              static_cast<std::uint64_t>(rep));
    ASSERT_EQ(runner.fault_log().size(), 1u);  // log covers the last batch
    EXPECT_EQ(runner.fault_log()[0].batch_index, 0u);
  }
}

}  // namespace
}  // namespace sx::dl
