// Seeded FUSA-violation fixture for sxlint coverage of src/fleet/.
// NEVER compiled or linked — only scanned by the `sxlint_fleet_fixture`
// CTest entry (WILL_FAIL). The `fleet/` directory component makes this
// file count as runtime code, the same contract src/fleet/*.cpp are held
// to: no console I/O, no banned headers, no raw heap expressions, no
// unbounded recursion.
#include <cstdio>
#include <iostream>
#include <memory>

namespace fixture {

// console-io: merge progress chatter from inside the shard fold.
void report_shard(unsigned shard) {
  std::cout << "shard " << shard << " merged\n";
  printf("shard %u merged\n", shard);
}

// heap-expr: raw new/delete for the shard-evidence array instead of a
// container sized at configuration time.
unsigned* allocate_counts(unsigned shards) { return new unsigned[shards]; }
void free_counts(unsigned* counts) { delete[] counts; }

// banned-call: ad-hoc randomness in a trial partition (all campaign
// randomness goes through the seeded injector).
unsigned jitter_partition(unsigned n) { return n + rand() % 7; }

// recursion: unbounded chain walk without an explicit bound waiver.
unsigned chain_depth(const unsigned* next, unsigned at) {
  if (next[at] == at) return 0;
  return 1 + chain_depth(next, next[at]);
}

// throw-in-noexcept: a verification accessor that can actually throw.
unsigned head_at(const std::unique_ptr<unsigned[]>& heads,
                 unsigned i) noexcept {
  if (heads == nullptr) throw i;
  return heads[i];
}

// A waived finding: the marker must suppress this one.
std::unique_ptr<unsigned> config_time_slot() {
  return std::make_unique<unsigned>(0);  // sxlint: allow(hot-path-alloc)
}

// Not findings: identifiers and string literals mentioning banned calls.
void printf_like_name() {}
const char* kDoc = "never printf from a merge fold";

}  // namespace fixture
