// Differential sweeps for the widened int8 (kWide) dot-product
// microkernels and the planned int8 engine running on top of them.
//
// Contract under test: the 32-row Dense and 16-channel Conv2d wide
// microkernels preserve the per-output int32 accumulation chain of the
// audited reference loops in dl/quant.cpp — so the scalar twin, AVX2 and
// AVX-512 variants must be bitwise identical to qmatvec_blocked /
// qconv2d_im2col in outputs AND saturation counts, across ragged tails
// off the 32/16-lane groups, and the kWide QuantEngine must match the
// reference QuantizedModel::run bit for bit (logits and per-layer
// counters), including under the SX_KERNEL_ISA override. SIMD variants
// run only where the CPU probe reports the ISA.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dl/qplan.hpp"
#include "dl/quant.hpp"
#include "platform/cpu_probe.hpp"
#include "tensor/qkernels.hpp"
#include "util/rng.hpp"

namespace sx::dl {
namespace {

namespace qk = tensor::qkernels;
using tensor::Shape;
using tensor::Tensor;

std::vector<std::int8_t> random_i8(std::size_t n, util::Xoshiro256& rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int8_t>(static_cast<int>(rng.uniform(-127.0, 128.0)));
  return v;
}

std::vector<std::pair<const char*, qk::QDenseKernelFn>> qdense_variants() {
  const platform::CpuProbe p = platform::probe_cpu();
  std::vector<std::pair<const char*, qk::QDenseKernelFn>> v;
  v.emplace_back("scalar", &qk::qmatvec_wide_scalar);
  if (p.avx2) v.emplace_back("avx2", &qk::qmatvec_wide_avx2);
  if (p.avx512f) v.emplace_back("avx512", &qk::qmatvec_wide_avx512);
  return v;
}

std::vector<std::pair<const char*, qk::QConvKernelFn>> qconv_variants() {
  const platform::CpuProbe p = platform::probe_cpu();
  std::vector<std::pair<const char*, qk::QConvKernelFn>> v;
  v.emplace_back("scalar", &qk::qconv2d_im2col_wide_scalar);
  if (p.avx2) v.emplace_back("avx2", &qk::qconv2d_im2col_wide_avx2);
  if (p.avx512f) v.emplace_back("avx512", &qk::qconv2d_im2col_wide_avx512);
  return v;
}

TEST(WideQMatvec, BitwiseEqualsBlockedWithSaturationParity) {
  util::Xoshiro256 rng{404};
  // Below / at / above the 32-row group, primes for ragged tails, and an
  // exact multi-group control.
  const std::size_t sizes[] = {1, 3, 7, 8, 16, 31, 32, 33, 47, 64, 96, 101};
  std::vector<float> wsc, bias;
  for (std::size_t rows : sizes) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{5}, std::size_t{32},
                             std::size_t{53}}) {
      const auto w = random_i8(rows * cols, rng);
      const auto x = random_i8(cols, rng);
      wsc.assign(rows, 0.0f);
      bias.assign(rows, 0.0f);
      for (auto& s : wsc) s = static_cast<float>(rng.uniform(0.001, 0.02));
      for (auto& b : bias) b = static_cast<float>(rng.uniform(-0.5, 0.5));
      for (const bool per_channel : {true, false}) {
        for (const bool relu : {false, true}) {
          // Small out_scale so some outputs clip: saturation-count parity
          // must be non-vacuous.
          const qk::Requant rq{wsc.data(), per_channel, bias.data(),
                               /*in_scale=*/0.04f, /*out_scale=*/0.02f,
                               relu};
          std::vector<std::int8_t> ref(rows, -7);
          std::uint64_t ref_sat = 0;
          qk::qmatvec_blocked(w.data(), rows, cols, x.data(), rq, ref.data(),
                              &ref_sat);

          std::vector<std::int8_t> panel(
              qk::qwide_dense_panel_bytes(rows, cols), -1);
          qk::pack_qwide_dense_panel(w.data(), rows, cols, panel.data());
          for (const auto& [name, fn] : qdense_variants()) {
            std::vector<std::int8_t> out(rows, -7);
            std::uint64_t sat = 0;
            fn(panel.data(), rows, cols, x.data(), rq, out.data(), &sat);
            EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), rows))
                << rows << "x" << cols << " qwide/" << name;
            EXPECT_EQ(sat, ref_sat) << rows << "x" << cols << " qwide/"
                                    << name;
          }
        }
      }
    }
  }
}

TEST(WideQConv, BitwiseEqualsUnpackedAcrossGeometriesAndIsas) {
  namespace k = tensor::kernels;
  util::Xoshiro256 rng{405};
  for (std::size_t in_c : {1u, 3u}) {
    for (std::size_t kk : {1u, 3u}) {
      for (std::size_t pad : {0u, 1u}) {
        // 16 = one full wide lane group; 32 = two; 21 = one group + 5 tail
        // channels (8-wide sub-sweep + switch); 11 = tail-only.
        for (std::size_t out_c : {11u, 16u, 21u, 32u}) {
          const std::size_t in_h = 6, in_w = 5, stride = 1;
          if (in_h + 2 * pad < kk) continue;
          const k::Conv2dGeom g{.in_c = in_c, .in_h = in_h, .in_w = in_w,
                                .out_c = out_c, .k = kk, .stride = stride,
                                .pad = pad};
          const std::size_t entries = k::im2col_entries(g);
          std::vector<std::uint32_t> pix_off(g.opix() + 1), in_idx(entries),
              w_ofs(entries);
          k::build_im2col_tables(g, pix_off.data(), in_idx.data(),
                                 w_ofs.data());
          const auto wt = random_i8(out_c * g.patch(), rng);
          const auto img = random_i8(in_c * in_h * in_w, rng);
          std::vector<std::int8_t> col(entries);
          qk::im2col_gather_i8(img.data(), in_idx.data(), entries,
                               col.data());
          std::vector<float> wsc(out_c), bias(out_c);
          for (auto& s : wsc)
            s = static_cast<float>(rng.uniform(0.001, 0.02));
          for (auto& b : bias)
            b = static_cast<float>(rng.uniform(-0.5, 0.5));
          const qk::Requant rq{wsc.data(), true, bias.data(), 0.04f, 0.02f,
                               true};
          const k::ConvTables t{.out_c = out_c, .patch = g.patch(),
                                .opix = g.opix(), .pix_off = pix_off.data(),
                                .in_idx = in_idx.data(),
                                .w_ofs = w_ofs.data()};
          const std::size_t n = out_c * g.opix();
          std::vector<std::int8_t> ref(n, -7);
          std::uint64_t ref_sat = 0;
          qk::qconv2d_im2col(wt.data(), t, col.data(), rq, ref.data(),
                             &ref_sat);

          std::vector<std::int8_t> panel(
              qk::qwide_conv_panel_bytes(out_c, g.patch()), -1);
          qk::pack_qwide_conv_panel(wt.data(), out_c, g.patch(),
                                    panel.data());
          for (const auto& [name, fn] : qconv_variants()) {
            std::vector<std::int8_t> out(n, -7);
            std::uint64_t sat = 0;
            fn(panel.empty() ? nullptr : panel.data(), wt.data(), t,
               col.data(), rq, out.data(), &sat);
            EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), n))
                << "qwide/" << name << " in_c=" << in_c << " k=" << kk
                << " pad=" << pad << " out_c=" << out_c;
            EXPECT_EQ(sat, ref_sat) << "qwide/" << name;
          }
        }
      }
    }
  }
}

TEST(WideQDispatch, SelectorsReturnIsaSpecificEntryPoints) {
  using tensor::kernels::WideIsa;
  EXPECT_EQ(qk::wide_qdense_kernel(WideIsa::kScalar),
            &qk::qmatvec_wide_scalar);
  EXPECT_EQ(qk::wide_qdense_kernel(WideIsa::kAvx2), &qk::qmatvec_wide_avx2);
  EXPECT_EQ(qk::wide_qdense_kernel(WideIsa::kAvx512),
            &qk::qmatvec_wide_avx512);
  EXPECT_EQ(qk::wide_qconv_kernel(WideIsa::kScalar),
            &qk::qconv2d_im2col_wide_scalar);
  EXPECT_EQ(qk::wide_qconv_kernel(WideIsa::kAvx2),
            &qk::qconv2d_im2col_wide_avx2);
  EXPECT_EQ(qk::wide_qconv_kernel(WideIsa::kAvx512),
            &qk::qconv2d_im2col_wide_avx512);
}

// ------------------------------------------------- engine-level identity

Dataset toy_dataset(const Shape& input_shape, std::size_t n,
                    std::uint64_t seed) {
  Dataset ds;
  ds.num_classes = 3;
  ds.input_shape = input_shape;
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{input_shape};
    s.input.init_uniform(rng, -2.0f, 2.0f);
    s.label = i % 3;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

bool bits_equal(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

/// kWide QuantEngine vs reference QuantizedModel::run, for every ISA the
/// SX_KERNEL_ISA override can legitimately request on this host.
TEST(WideQuantEngine, BitwiseIdenticalToReferenceUnderIsaOverrides) {
  ModelBuilder b{Shape::chw(2, 9, 9)};
  b.conv2d(16, 3, /*stride=*/1, /*padding=*/1)
      .relu()
      .maxpool(3)
      .flatten()
      .dense(37)
      .relu()
      .dense(5);
  const Model m = b.build(321);
  const Dataset cal = toy_dataset(Shape::chw(2, 9, 9), 12, 99);
  const QuantizedModel qm = QuantizedModel::quantize(m, cal);

  const platform::CpuProbe probe = platform::probe_cpu();
  std::vector<const char*> isas = {"scalar"};
  if (probe.avx2) isas.push_back("avx2");
  if (probe.avx512f) isas.push_back("avx512");

  const std::size_t n_out = qm.output_shape().size();
  for (const char* isa : isas) {
    ASSERT_EQ(setenv("SX_KERNEL_ISA", isa, 1), 0);
    QuantizedModel ref = qm;  // counters accumulate in the copy
    QuantEngine eng{qm, QuantEngineConfig{.kernels = KernelMode::kWide}};
    ASSERT_NE(eng.plan(), nullptr);
    EXPECT_EQ(eng.plan()->mode(), KernelMode::kWide);
    EXPECT_FALSE(eng.plan()->isa_selection().refused) << isa;
    EXPECT_STREQ(
        tensor::kernels::wide_isa_name(eng.plan()->isa_selection().isa),
        isa);

    std::vector<float> r(n_out), p(n_out);
    util::Xoshiro256 rng{77};
    for (int it = 0; it < 8; ++it) {
      Tensor in{Shape::chw(2, 9, 9)};
      in.init_uniform(rng, -2.5f, 2.5f);
      ASSERT_EQ(ref.run(in.view(), r), Status::kOk);
      ASSERT_EQ(eng.run(in.view(), p), Status::kOk);
      for (std::size_t i = 0; i < n_out; ++i)
        ASSERT_TRUE(bits_equal(r[i], p[i]))
            << "isa=" << isa << " logit " << i;
    }
    const auto rc = ref.saturation_counts();
    const auto pc = eng.saturation_counts();
    ASSERT_EQ(rc.size(), pc.size());
    for (std::size_t i = 0; i < rc.size(); ++i)
      EXPECT_EQ(rc[i], pc[i]) << "isa=" << isa << " layer " << i;
  }
  ASSERT_EQ(unsetenv("SX_KERNEL_ISA"), 0);
}

TEST(WideQuantPlan, RepackResyncsAfterWeightMutation) {
  ModelBuilder b{Shape::vec(24)};
  b.dense(40).relu().dense(3);
  const Model m = b.build(55);
  const Dataset cal = toy_dataset(Shape::vec(24), 10, 7);
  QuantizedModel qm = QuantizedModel::quantize(m, cal);
  QuantizedModel ref = qm;

  QuantKernelPlan plan{qm, KernelMode::kWide};
  QuantEngine eng{qm, plan};
  Tensor in{Shape::vec(24)};
  util::Xoshiro256 rng{8};
  in.init_uniform(rng, -2.0f, 2.0f);
  const std::size_t n_out = qm.output_shape().size();
  std::vector<float> r(n_out), p(n_out);
  ASSERT_EQ(ref.run(in.view(), r), Status::kOk);
  ASSERT_EQ(eng.run(in.view(), p), Status::kOk);
  for (std::size_t i = 0; i < n_out; ++i) ASSERT_TRUE(bits_equal(r[i], p[i]));

  // SEU-campaign shape: mutate a quantized weight behind the wide panel
  // snapshot. The panel is stale until repack() resynchronizes it.
  qm.mutable_weights(0)[3] ^= 0x40;
  ref = qm;
  ASSERT_EQ(ref.run(in.view(), r), Status::kOk);
  plan.repack();
  ASSERT_EQ(eng.run(in.view(), p), Status::kOk);
  for (std::size_t i = 0; i < n_out; ++i)
    EXPECT_TRUE(bits_equal(r[i], p[i])) << "post-repack logit " << i;
}

}  // namespace
}  // namespace sx::dl
