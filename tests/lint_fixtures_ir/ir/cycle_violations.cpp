// Seeded FUSA-violation fixture for the whole-file call-graph rules. NEVER
// compiled or linked — only scanned by the `sxlint_ir_fixture` CTest entry,
// which expects the linter to exit non-zero on this directory. The `ir/`
// directory component makes it count as a runtime path, proving the
// runtime-directory scope extends to the plan-IR subsystem.
#include <iostream>  // banned-include: stream IO in a runtime directory (ir/)

namespace fixture {

// recursion-cycle: mutual recursion — each function passes the
// per-definition `recursion` rule (no direct self-call), so only the
// assembled call graph can reject the pair.
bool is_odd(unsigned n);
bool is_even(unsigned n) { return n == 0 ? true : is_odd(n - 1); }
bool is_odd(unsigned n) { return n == 0 ? false : is_even(n - 1); }

// A three-node cycle reports once, anchored at the lexically-first
// participant (`walk_op` below).
int walk_value(int v);
int walk_slot(int s);
int walk_op(int o) { return o <= 0 ? 0 : walk_value(o - 1); }
int walk_value(int v) { return v <= 0 ? 0 : walk_slot(v - 1); }
int walk_slot(int s) { return s <= 0 ? 0 : walk_op(s - 1); }

// A waived cycle: the marker at the lexically-first participant
// *definition* must suppress the finding (it feeds the "waived" counter,
// not the findings list).
int ping(int n);
int pong(int n) { return n <= 0 ? 0 : ping(n - 1); }  // sxlint: allow(recursion-cycle)
int ping(int n) { return n <= 0 ? 1 : pong(n / 2); }

// Not findings: qualified calls never form edges, and a forward
// declaration without a body is not a participant.
struct Walker {
  int descend(int n);
};
int descend_free(int n) {
  Walker w;
  return n <= 0 ? 0 : w.descend(n - 1);  // member call, not a graph edge
}

}  // namespace fixture
