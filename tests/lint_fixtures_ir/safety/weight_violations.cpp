// Seeded weight-mutation fixture. NEVER compiled or linked — only scanned
// by the `sxlint_ir_fixture` CTest entry. The `safety/` directory component
// puts it in weight-store scope, so every unsanctioned element write below
// must be reported.
namespace fixture {

struct Span {
  float* data;
  unsigned long size;
  float& operator[](unsigned long i) { return data[i]; }
};

struct Model {
  Span params() { return {}; }
  Span mutable_weights(unsigned long) { return {}; }
};

// weight-mutation: direct accessor-call write outside any sanctioned entry
// point — the deployed image changes behind the verifier's back.
void tweak_in_place(Model& m, unsigned long i) { m.params()[i] = 0.0f; }

// weight-mutation: the conventional local-alias form.
void zero_layer(Model& m, unsigned long layer) {
  auto weights = m.mutable_weights(layer);
  for (unsigned long j = 0; j < weights.size; ++j) weights[j] = 0.0f;
}

// weight-mutation: compound assignment mutates too.
void scale_params(Model& m, unsigned long i, float g) { m.params()[i] *= g; }

// Not a finding: writes inside a sanctioned entry point are the mechanism
// that entry point exists for.
void repack(Model& m, unsigned long layer) {
  auto weights = m.mutable_weights(layer);
  for (unsigned long j = 0; j < weights.size; ++j) weights[j] = weights[j];
}

// Not a finding: a read on the right-hand side is not a mutation.
float peek(Model& m, unsigned long i) {
  const float v = m.params()[i];
  return v;
}

// A waived finding: a reviewed repair site carries the inline marker and
// feeds the "waived" counter instead of the findings list.
void reviewed_repair(Model& m, unsigned long i, float golden) {
  m.params()[i] = golden;  // sxlint: allow(weight-mutation)
}

}  // namespace fixture
