// Static verification subsystem: golden interval values per layer kind,
// differential soundness against the concrete engine over a population of
// random models, arena-plan re-verification, quantization saturation
// margins, and the CertifiablePipeline pre-flight gate (an ill-posed model
// must be refused before any inference runs, with the verdict in the audit
// chain).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dl/engine.hpp"
#include "dl/layers.hpp"
#include "dl/model.hpp"
#include "dl/quant.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "verify/range.hpp"

namespace sx::verify {
namespace {

using tensor::Shape;
using tensor::Tensor;

const dl::Model& mlp() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

trace::OddSpec box(float lo, float hi) {
  trace::OddSpec odd;
  odd.value_min = lo;
  odd.value_max = hi;
  return odd;
}

/// First layer with trainable parameters (skips Flatten/ReLU/...).
dl::Layer& first_param_layer(dl::Model& m) {
  for (std::size_t i = 0; i < m.layer_count(); ++i)
    if (!m.layer(i).params().empty()) return m.layer(i);
  throw std::logic_error("model has no parametric layer");
}

// ------------------------------------------------------- golden intervals

TEST(Range, DenseNegativeWeightsGolden) {
  dl::ModelBuilder b{Shape::vec(2)};
  b.dense(2);
  dl::Model m = b.build(0);
  auto& dense = dynamic_cast<dl::Dense&>(m.layer(0));
  // Row-major W (out x in), then bias.
  const float w[] = {1.0f, -2.0f, -1.0f, 3.0f};
  const float bias[] = {0.5f, -1.0f};
  std::copy(std::begin(w), std::end(w), dense.weights().begin());
  std::copy(std::begin(bias), std::end(bias), dense.bias().begin());

  const auto ranges =
      analyze_ranges(m, odd_input_interval(m.input_shape(), box(0.0f, 1.0f)));
  ASSERT_EQ(ranges.size(), 2u);
  // Hand-derived: lo picks hi for negative weights, lo for positive.
  EXPECT_NEAR(ranges[1].lo.at(0), -1.5f, 1e-6f);  // 1*0 + (-2)*1 + 0.5
  EXPECT_NEAR(ranges[1].hi.at(0), 1.5f, 1e-6f);   // 1*1 + (-2)*0 + 0.5
  EXPECT_NEAR(ranges[1].lo.at(1), -2.0f, 1e-6f);  // -1*1 + 3*0 - 1
  EXPECT_NEAR(ranges[1].hi.at(1), 2.0f, 1e-6f);   // -1*0 + 3*1 - 1

  // An affine map attains its interval bounds at box corners: the golden
  // numbers above must equal the min/max of the four concrete corners.
  float lo0 = std::numeric_limits<float>::max(), hi0 = -lo0;
  float lo1 = lo0, hi1 = -lo0;
  for (const float x0 : {0.0f, 1.0f})
    for (const float x1 : {0.0f, 1.0f}) {
      const Tensor out = m.forward(Tensor{Shape::vec(2), {x0, x1}});
      lo0 = std::min(lo0, out.at(0));
      hi0 = std::max(hi0, out.at(0));
      lo1 = std::min(lo1, out.at(1));
      hi1 = std::max(hi1, out.at(1));
    }
  EXPECT_NEAR(ranges[1].lo.at(0), lo0, 1e-6f);
  EXPECT_NEAR(ranges[1].hi.at(0), hi0, 1e-6f);
  EXPECT_NEAR(ranges[1].lo.at(1), lo1, 1e-6f);
  EXPECT_NEAR(ranges[1].hi.at(1), hi1, 1e-6f);
}

TEST(Range, MonotoneActivationGoldens) {
  const auto single = [](auto&& add_layer) {
    dl::ModelBuilder b{Shape::vec(3)};
    add_layer(b);
    return b.build(0);
  };
  const IntervalTensor in =
      odd_input_interval(Shape::vec(3), box(-2.0f, 2.0f));

  dl::Model relu = single([](dl::ModelBuilder& b) { b.relu(); });
  auto r = analyze_ranges(relu, in);
  EXPECT_NEAR(r[1].lo.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(r[1].hi.at(0), 2.0f, 1e-6f);

  dl::Model sigmoid = single([](dl::ModelBuilder& b) { b.sigmoid(); });
  r = analyze_ranges(sigmoid, in);
  EXPECT_NEAR(r[1].lo.at(0), 1.0f / (1.0f + std::exp(2.0f)), 1e-5f);
  EXPECT_NEAR(r[1].hi.at(0), 1.0f / (1.0f + std::exp(-2.0f)), 1e-5f);

  dl::Model tanh = single([](dl::ModelBuilder& b) { b.tanh_(); });
  r = analyze_ranges(tanh, in);
  EXPECT_NEAR(r[1].lo.at(0), std::tanh(-2.0f), 1e-5f);
  EXPECT_NEAR(r[1].hi.at(0), std::tanh(2.0f), 1e-5f);
}

TEST(Range, PoolingAndFlattenPreserveEnvelope) {
  dl::ModelBuilder b{Shape::chw(1, 4, 4)};
  b.maxpool(2).avgpool(2).flatten();
  dl::Model m = b.build(0);
  const auto ranges = analyze_ranges(
      m, odd_input_interval(m.input_shape(), box(-1.5f, 0.5f)));
  for (std::size_t step = 1; step < ranges.size(); ++step)
    for (std::size_t i = 0; i < ranges[step].lo.size(); ++i) {
      EXPECT_NEAR(ranges[step].lo.at(i), -1.5f, 1e-6f) << "step " << step;
      EXPECT_NEAR(ranges[step].hi.at(i), 0.5f, 1e-6f) << "step " << step;
    }
}

TEST(Range, SoftmaxBoundsLieInUnitIntervalAndAreSound) {
  dl::ModelBuilder b{Shape::vec(3)};
  b.softmax();
  dl::Model m = b.build(0);
  const auto ranges = analyze_ranges(
      m, odd_input_interval(m.input_shape(), box(-1.0f, 2.0f)));
  const IntervalTensor& out = ranges.back();
  ASSERT_TRUE(out.well_formed());
  for (std::size_t i = 0; i < out.lo.size(); ++i) {
    EXPECT_GT(out.lo.at(i), 0.0f);
    EXPECT_LT(out.hi.at(i), 1.0f);
    EXPECT_LE(out.lo.at(i), out.hi.at(i));
  }
  // Soundness against concrete probability vectors from the box.
  util::Xoshiro256 rng{7};
  for (int t = 0; t < 100; ++t) {
    Tensor in{Shape::vec(3)};
    for (std::size_t i = 0; i < 3; ++i)
      in.at(i) = static_cast<float>(rng.uniform(-1.0, 2.0));
    const Tensor p = m.forward(in);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_GE(p.at(i), out.lo.at(i) - 1e-5f) << "trial " << t;
      EXPECT_LE(p.at(i), out.hi.at(i) + 1e-5f) << "trial " << t;
    }
  }
}

TEST(Range, BatchNormZeroVarianceStaysFiniteThroughEpsilon) {
  dl::ModelBuilder b{Shape::vec(4)};
  b.batchnorm();
  dl::Model m = b.build(0);
  auto& bn = dynamic_cast<dl::BatchNorm&>(m.layer(0));
  // A vector input normalizes as one channel.
  const std::vector<float> zeros(bn.channels(), 0.0f);
  bn.set_statistics(zeros, zeros);  // degenerate: variance exactly 0

  const auto ranges =
      analyze_ranges(m, odd_input_interval(m.input_shape(), box(0.0f, 1.0f)));
  const float g = 1.0f / std::sqrt(bn.epsilon());  // gamma=1, beta=0
  EXPECT_NEAR(ranges[1].lo.at(0), 0.0f, 1e-3f);
  EXPECT_NEAR(ranges[1].hi.at(0), g, g * 1e-4f);

  const VerificationEvidence ev = verify_model(m, box(0.0f, 1.0f));
  EXPECT_TRUE(ev.verdict.nan_free) << "epsilon must keep the divisor > 0";
  EXPECT_TRUE(ev.verdict.output_bounded);
  EXPECT_TRUE(ev.verdict.passed()) << ev.verdict_line();
}

// ------------------------------------------------- differential soundness

// Same architecture population as the engine differential harness.
dl::Model random_model(util::Xoshiro256& rng) {
  const bool image_input = rng.below(2) == 0;
  Shape input = image_input
                    ? Shape::chw(1, 4 + rng.below(5), 4 + rng.below(5))
                    : Shape::vec(4 + rng.below(21));
  dl::ModelBuilder b{input};
  if (image_input) {
    if (rng.below(2) == 0) {
      b.conv2d(1 + rng.below(3), 3, /*stride=*/1, /*padding=*/1);
      b.relu();
    }
    b.flatten();
  }
  const std::size_t blocks = 1 + rng.below(3);
  for (std::size_t l = 0; l < blocks; ++l) {
    b.dense(3 + rng.below(18));
    switch (rng.below(4)) {
      case 0: b.relu(); break;
      case 1: b.sigmoid(); break;
      case 2: b.tanh_(); break;
      default: break;  // linear
    }
  }
  b.dense(2 + rng.below(5));
  if (rng.below(2) == 0) b.softmax();
  return b.build(/*seed=*/rng());
}

TEST(RangeDifferential, ConcreteOutputsLieInsideStaticIntervals) {
  constexpr std::size_t kModels = 24;
  constexpr std::size_t kInputsPerModel = 6;
  const trace::OddSpec odd = box(-2.0f, 2.0f);
  util::Xoshiro256 rng{0xD1FFu};
  for (std::size_t mi = 0; mi < kModels; ++mi) {
    SCOPED_TRACE("model " + std::to_string(mi));
    const dl::Model model = random_model(rng);

    const VerificationEvidence ev = verify_model(model, odd);
    EXPECT_TRUE(ev.verdict.passed()) << ev.verdict_line();

    const auto ranges = analyze_ranges(
        model, odd_input_interval(model.input_shape(), odd));
    const IntervalTensor& out_iv = ranges.back();

    dl::StaticEngine engine{model};
    std::vector<float> out(model.output_shape().size());
    for (std::size_t t = 0; t < kInputsPerModel; ++t) {
      Tensor in{model.input_shape()};
      for (std::size_t i = 0; i < in.size(); ++i)
        in.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
      ASSERT_EQ(engine.run(in.view(), out), Status::kOk);
      for (std::size_t k = 0; k < out.size(); ++k) {
        const float tol =
            1e-4f + 1e-5f * std::max(std::fabs(out_iv.lo.at(k)),
                                     std::fabs(out_iv.hi.at(k)));
        EXPECT_GE(out[k], out_iv.lo.at(k) - tol)
            << "input " << t << " element " << k;
        EXPECT_LE(out[k], out_iv.hi.at(k) + tol)
            << "input " << t << " element " << k;
      }
    }
  }
}

// --------------------------------------------------- arena re-verification

TEST(Arena, ShapeDerivedDemandMatchesEnginePlan) {
  for (const dl::Model* m : {&mlp(), &sx::testing::trained_cnn()}) {
    const dl::StaticEngine probe{*m};
    EXPECT_EQ(static_arena_demand(*m), probe.arena_capacity());
  }
  // Slack must be carried through the re-derivation identically.
  const dl::StaticEngineConfig slack{.arena_slack = 64};
  const dl::StaticEngine padded{mlp(), slack};
  EXPECT_EQ(static_arena_demand(mlp(), slack), padded.arena_capacity());
}

TEST(Arena, UndersizedPlanFailsVerification) {
  const std::size_t demand = static_arena_demand(mlp());
  const trace::OddSpec odd = box(0.0f, 1.0f);
  EXPECT_TRUE(verify_model(mlp(), odd, demand).verdict.arena_consistent);
  const VerificationEvidence bad = verify_model(mlp(), odd, demand - 1);
  EXPECT_FALSE(bad.verdict.arena_consistent);
  EXPECT_FALSE(bad.verdict.passed())
      << "an ill-posed arena plan must fail the whole verdict";
  EXPECT_EQ(bad.arena.required_floats, demand);
  EXPECT_EQ(bad.arena.planned_floats, demand - 1);
}

// ------------------------------------------------------ NaN/Inf reachability

TEST(NanReachability, PoisonedWeightFailsNanFree) {
  dl::Model m = mlp();
  first_param_layer(m).params()[0] = std::numeric_limits<float>::quiet_NaN();
  const VerificationEvidence ev = verify_model(m, box(0.0f, 1.0f));
  EXPECT_FALSE(ev.verdict.nan_free);
  EXPECT_FALSE(ev.verdict.passed());
}

TEST(NanReachability, InfiniteWeightFailsVerdict) {
  dl::Model m = mlp();
  first_param_layer(m).params()[0] = std::numeric_limits<float>::infinity();
  const VerificationEvidence ev = verify_model(m, box(0.0f, 1.0f));
  EXPECT_FALSE(ev.verdict.passed()) << ev.verdict_line();
}

TEST(NanReachability, HealthyTrainedModelsPass) {
  for (const dl::Model* m : {&mlp(), &sx::testing::trained_cnn()}) {
    const VerificationEvidence ev = verify_model(*m, box(0.0f, 1.0f));
    EXPECT_TRUE(ev.verdict.passed()) << ev.verdict_line();
    EXPECT_EQ(ev.layers.size(), m->layer_count());
    for (const auto& l : ev.layers) EXPECT_TRUE(l.finite);
    EXPECT_LE(ev.output_lo, ev.output_hi);
    // The report renderer mentions the arena re-check.
    EXPECT_NE(ev.to_text().find("arena plan"), std::string::npos);
  }
}

// ----------------------------------------------------- quant saturation

TEST(QuantSaturation, MarginsAlignWithCalibratedScales) {
  const dl::QuantizedModel qm =
      dl::QuantizedModel::quantize(mlp(), data());
  const auto checks = check_quant_saturation(mlp(), qm, box(0.0f, 1.0f));
  ASSERT_EQ(checks.size(), mlp().layer_count());
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(checks[i].layer, i);
    EXPECT_NEAR(checks[i].representable_absmax,
                qm.activation_scale(i) * 127.0f,
                1e-4f * qm.activation_scale(i) * 127.0f);
    EXPECT_GE(checks[i].static_absmax, 0.0f);
    EXPECT_EQ(checks[i].saturation_possible,
              checks[i].static_absmax > checks[i].representable_absmax);
  }
}

TEST(QuantSaturation, RejectsMismatchedModelPair) {
  const dl::QuantizedModel qm =
      dl::QuantizedModel::quantize(mlp(), data());
  EXPECT_THROW(
      check_quant_saturation(sx::testing::trained_cnn(), qm, box(0.0f, 1.0f)),
      std::invalid_argument);
}

// ----------------------------------------------- pipeline pre-flight gate

core::PipelineConfig sil4_config() {
  core::PipelineConfig cfg;
  cfg.criticality = core::Criticality::kSil4;
  cfg.timing_budget = 1000;
  cfg.fallback_class = 3;
  return cfg;
}

TEST(PreflightGate, RefusesNanReachableModelBeforeAnyInference) {
  dl::Model poisoned = mlp();
  first_param_layer(poisoned).params()[0] =
      std::numeric_limits<float>::quiet_NaN();

  core::CertifiablePipeline p{poisoned, data(), sil4_config()};
  EXPECT_TRUE(p.verification_refused());
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_FALSE(p.static_verification()->verdict.passed());
  EXPECT_FALSE(p.static_verification()->verdict.nan_free);

  // The refusal verdict is already in the audit chain at deploy time.
  bool refused_logged = false;
  for (const auto& e : p.audit().entries())
    if (e.actor == "static-verify" && e.action == "refuse-model")
      refused_logged = true;
  EXPECT_TRUE(refused_logged);

  // Every inference is refused with the dedicated status; the fallback
  // class is reported and the DL component never runs.
  const core::Decision d = p.infer(data().samples[0].input, 0, 1);
  EXPECT_EQ(d.status, Status::kVerificationFailed);
  EXPECT_TRUE(d.degraded);
  EXPECT_EQ(d.predicted_class, 3u);
  EXPECT_EQ(p.rejections(), 1u);
  EXPECT_TRUE(ok(p.audit().verify()));

  // Explanations of a refused model are a contract violation.
  EXPECT_THROW(p.explain(data().samples[0].input, 0), std::logic_error);
}

TEST(PreflightGate, RefusedBatchPathRefusesEveryItem) {
  dl::Model poisoned = mlp();
  first_param_layer(poisoned).params()[0] =
      std::numeric_limits<float>::quiet_NaN();
  core::PipelineConfig cfg = sil4_config();
  cfg.batch_workers = 2;
  core::CertifiablePipeline p{poisoned, data(), cfg};
  const std::vector<tensor::Tensor> inputs{data().samples[0].input,
                                           data().samples[1].input,
                                           data().samples[2].input};
  const auto decisions = p.infer_batch(inputs);
  ASSERT_EQ(decisions.size(), 3u);
  for (const auto& d : decisions) {
    EXPECT_EQ(d.status, Status::kVerificationFailed);
    EXPECT_TRUE(d.degraded);
  }
  EXPECT_EQ(p.rejections(), 3u);
  EXPECT_TRUE(ok(p.audit().verify()));
}

TEST(PreflightGate, HealthyModelPassesAndRunsAtSil4) {
  core::CertifiablePipeline p{mlp(), data(), sil4_config()};
  EXPECT_FALSE(p.verification_refused());
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_TRUE(p.static_verification()->verdict.passed());

  bool pass_logged = false;
  for (const auto& e : p.audit().entries())
    if (e.actor == "static-verify" && e.action == "pass") pass_logged = true;
  EXPECT_TRUE(pass_logged);

  const core::Decision d = p.infer(data().samples[0].input, 0, 500);
  EXPECT_EQ(d.status, Status::kOk);
  EXPECT_FALSE(d.degraded);
}

TEST(PreflightGate, NotRequiredBelowSil3) {
  core::PipelineConfig cfg;
  cfg.criticality = core::Criticality::kQM;
  core::CertifiablePipeline p{mlp(), data(), cfg};
  EXPECT_EQ(p.static_verification(), nullptr);
  EXPECT_FALSE(p.verification_refused());
}

TEST(PreflightGate, ReportCarriesVerdictAndEvidence) {
  dl::Model poisoned = mlp();
  first_param_layer(poisoned).params()[0] =
      std::numeric_limits<float>::quiet_NaN();
  core::CertifiablePipeline p{poisoned, data(), sil4_config()};
  const auto report = core::make_certification_report(
      p, nullptr,
      {core::make_static_verification_evidence(*p.static_verification())});
  EXPECT_NE(report.text.find("static verification: FAIL"), std::string::npos);
  EXPECT_NE(report.text.find("Static verification (abstract interpretation)"),
            std::string::npos);

  core::CertifiablePipeline healthy{mlp(), data(), sil4_config()};
  const auto ok_report = core::make_certification_report(healthy, nullptr, {});
  EXPECT_NE(ok_report.text.find("static verification: PASS"),
            std::string::npos);
}

}  // namespace
}  // namespace sx::verify
