#include <gtest/gtest.h>

#include "core/report.hpp"
#include "test_helpers.hpp"

namespace sx::core {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

CertifiablePipeline make_pipeline(Criticality c) {
  PipelineConfig cfg;
  cfg.criticality = c;
  cfg.timing_budget = 10'000;
  return CertifiablePipeline{model(), data(), cfg};
}

TEST(Report, CompleteForWellFormedDeployment) {
  CertifiablePipeline p = make_pipeline(Criticality::kSil2);
  for (std::size_t i = 0; i < 5; ++i) (void)p.infer(data().samples[i].input, i);

  trace::RequirementRegistry reg;
  reg.add({"REQ-1", "classify road scenes", trace::Criticality::kSil2});
  reg.link("REQ-1", trace::ArtifactKind::kModel,
           p.model_card().model_hash, "implements");
  reg.link("REQ-1", trace::ArtifactKind::kTest, "accuracy-suite", "verifies");

  const auto report = make_certification_report(
      p, &reg, {EvidenceItem{"fault campaign", "SDC rate: 0.0%"}});
  EXPECT_TRUE(report.complete);
  EXPECT_NE(report.text.find("EVIDENCE COMPLETE"), std::string::npos);
  EXPECT_NE(report.text.find("SAFETY CASE"), std::string::npos);
  EXPECT_NE(report.text.find("fault campaign"), std::string::npos);
  EXPECT_NE(report.text.find("SIL2"), std::string::npos);
}

TEST(Report, FlagsUncoveredRequirements) {
  CertifiablePipeline p = make_pipeline(Criticality::kSil1);
  trace::RequirementRegistry reg;
  reg.add({"REQ-1", "x", trace::Criticality::kSil1});  // no links at all
  const auto report = make_certification_report(p, &reg, {});
  EXPECT_FALSE(report.complete);
  EXPECT_NE(report.text.find("EVIDENCE GAPS REMAIN"), std::string::npos);
}

TEST(Report, WorksWithoutRequirements) {
  CertifiablePipeline p = make_pipeline(Criticality::kQM);
  const auto report = make_certification_report(p, nullptr, {});
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.text.find("REQUIREMENT TRACEABILITY"), std::string::npos);
}

TEST(Report, ContainsOperationalCounters) {
  CertifiablePipeline p = make_pipeline(Criticality::kQM);
  for (std::size_t i = 0; i < 7; ++i) (void)p.infer(data().samples[i].input, i);
  const auto report = make_certification_report(p, nullptr, {});
  EXPECT_NE(report.text.find("decisions: 7"), std::string::npos);
  EXPECT_NE(report.text.find("audit chain: VERIFIES"), std::string::npos);
}

TEST(Report, QuantBackendEvidenceRenders) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.backend = BackendKind::kInt8;
  PipelineSpec spec = recommended_spec(Criticality::kSil2);
  spec.has_static_verification = true;
  cfg.spec = spec;
  cfg.batch_workers = 2;
  CertifiablePipeline p{model(), data(), cfg};
  for (std::size_t i = 0; i < 6; ++i) (void)p.infer(data().samples[i].input, i);

  const EvidenceItem ev = make_quant_backend_evidence(p);
  EXPECT_NE(ev.body.find("backend: int8"), std::string::npos);
  EXPECT_NE(ev.body.find("per-channel weight scales"), std::string::npos);
  EXPECT_NE(ev.body.find("mode="), std::string::npos);
  EXPECT_NE(ev.body.find("byte-arena re-check"), std::string::npos);
  EXPECT_NE(ev.body.find("CONSISTENT"), std::string::npos);
  EXPECT_NE(ev.body.find("saturation cross-check"), std::string::npos);

  const auto batch_ev = make_batch_runner_evidence(*p.batch_runner());
  EXPECT_NE(batch_ev.body.find("int8 kernel plan"), std::string::npos);

  const auto report = make_certification_report(p, nullptr, {ev, batch_ev});
  EXPECT_TRUE(report.complete);
  EXPECT_NE(report.text.find("backend=int8"), std::string::npos);
}

TEST(Report, QuantBackendEvidenceRejectsFloatPipeline) {
  CertifiablePipeline p = make_pipeline(Criticality::kQM);
  EXPECT_THROW(make_quant_backend_evidence(p), std::logic_error);
}

TEST(Report, EveryCriticalityLevelRenders) {
  for (const Criticality c : {Criticality::kQM, Criticality::kSil1,
                              Criticality::kSil2, Criticality::kSil3,
                              Criticality::kSil4}) {
    CertifiablePipeline p = make_pipeline(c);
    const auto report = make_certification_report(p, nullptr, {});
    EXPECT_TRUE(report.complete) << trace::to_string(c);
    EXPECT_NE(report.text.find(trace::to_string(c)), std::string::npos);
  }
}

}  // namespace
}  // namespace sx::core
