#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dl/quant.hpp"
#include "dl/train.hpp"
#include "test_helpers.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(QuantizeValue, RoundsAndClamps) {
  EXPECT_EQ(quantize_value(0.0f, 0.1f), 0);
  EXPECT_EQ(quantize_value(0.25f, 0.1f), 3);   // 2.5 rounds away from zero
  EXPECT_EQ(quantize_value(-0.25f, 0.1f), -3);
  EXPECT_EQ(quantize_value(100.0f, 0.1f), 127);
  EXPECT_EQ(quantize_value(-100.0f, 0.1f), -127);
}

TEST(QuantizedModel, RequiresCalibrationData) {
  const Model& m = sx::testing::trained_mlp();
  Dataset empty;
  EXPECT_THROW(QuantizedModel::quantize(m, empty), std::invalid_argument);
}

TEST(QuantizedModel, RejectsUnfoldedBatchNorm) {
  ModelBuilder b{Shape::vec(4)};
  b.dense(4).batchnorm().relu().dense(2);
  Model m = b.build(1);
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(4);
  Sample s;
  s.input = Tensor{Shape::vec(4), {0.1f, 0.2f, 0.3f, 0.4f}};
  ds.samples.push_back(std::move(s));
  EXPECT_THROW(QuantizedModel::quantize(m, ds), std::invalid_argument);
}

TEST(QuantizedModel, MlpAccuracyCloseToFloat) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  const double facc = Trainer::evaluate_accuracy(m, ds);
  const double qacc = qm.evaluate_accuracy(ds);
  EXPECT_GT(qacc, facc - 0.05) << "int8 lost more than 5% accuracy";
}

TEST(QuantizedModel, CnnAccuracyCloseToFloat) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  const double facc = Trainer::evaluate_accuracy(m, ds);
  const double qacc = qm.evaluate_accuracy(ds);
  EXPECT_GT(qacc, facc - 0.05);
}

TEST(QuantizedModel, PerChannelAtLeastAsAccurateAsPerTensor) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  QuantizedModel per_channel = QuantizedModel::quantize(
      m, ds, QuantConfig{WeightGranularity::kPerChannel});
  QuantizedModel per_tensor = QuantizedModel::quantize(
      m, ds, QuantConfig{WeightGranularity::kPerTensor});
  EXPECT_GE(per_channel.evaluate_accuracy(ds),
            per_tensor.evaluate_accuracy(ds) - 0.02);
}

TEST(QuantizedModel, WeightFootprintShrinks) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  const std::size_t float_bytes = m.param_count() * sizeof(float);
  EXPECT_LT(qm.weight_bytes(), float_bytes / 2);
}

TEST(QuantizedModel, RunIsDeterministic) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  std::vector<float> a(m.output_shape().size()), b(a.size());
  ASSERT_EQ(qm.run(ds.samples[3].input.view(), a), Status::kOk);
  ASSERT_EQ(qm.run(ds.samples[3].input.view(), b), Status::kOk);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(QuantizedModel, RejectsWrongInputShape) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  Tensor bad{Shape::vec(7)};
  std::vector<float> out(m.output_shape().size());
  EXPECT_EQ(qm.run(bad.view(), out), Status::kShapeMismatch);
}

TEST(QuantizedModel, LogitsCorrelateWithFloat) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  std::vector<float> q(m.output_shape().size());
  std::size_t agree = 0;
  const std::size_t n = 100;
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor f = m.forward(ds.samples[i].input);
    ASSERT_EQ(qm.run(ds.samples[i].input.view(), q), Status::kOk);
    std::size_t fa = 0, qa = 0;
    for (std::size_t k = 1; k < q.size(); ++k) {
      if (f.at(k) > f.at(fa)) fa = k;
      if (q[k] > q[qa]) qa = k;
    }
    agree += (fa == qa) ? 1 : 0;
  }
  EXPECT_GT(agree, n * 9 / 10) << "argmax agreement below 90%";
}

TEST(QuantizedModel, GranularityIsRecorded) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(
      m, ds, QuantConfig{WeightGranularity::kPerTensor});
  EXPECT_EQ(qm.granularity(), WeightGranularity::kPerTensor);
  EXPECT_STREQ(to_string(qm.granularity()), "per-tensor");
}

TEST(QuantizedModel, AvgPoolModelWorks) {
  ModelBuilder b{Shape::chw(1, 8, 8)};
  b.conv2d(2, 3, 1, 1).relu().avgpool(2).flatten().dense(3);
  Model m = b.build(44);
  Dataset ds = make_road_scene(32, 5);
  // Reshape dataset to 8x8 is not possible — build a matching toy dataset.
  Dataset toy;
  toy.num_classes = 3;
  toy.input_shape = Shape::chw(1, 8, 8);
  util::Xoshiro256 rng{6};
  for (int i = 0; i < 16; ++i) {
    Sample s;
    s.input = Tensor{toy.input_shape};
    s.input.init_uniform(rng, 0.0f, 1.0f);
    s.label = static_cast<std::size_t>(i % 3);
    toy.samples.push_back(std::move(s));
  }
  QuantizedModel qm = QuantizedModel::quantize(m, toy);
  std::vector<float> out(3);
  EXPECT_EQ(qm.run(toy.samples[0].input.view(), out), Status::kOk);
}

TEST(QuantizedModel, RejectsWrongOutputSize) {
  // Regression for the noexcept-audit: an undersized output span used to
  // reach the dequantize loop and write past the caller's buffer.
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  std::vector<float> short_out(1);
  EXPECT_EQ(qm.run(ds.samples[0].input.view(), short_out),
            Status::kShapeMismatch);
  std::vector<float> long_out(m.output_shape().size() + 3);
  EXPECT_EQ(qm.run(ds.samples[0].input.view(), long_out),
            Status::kShapeMismatch);
}

TEST(QuantizedModel, ApplyLayerGuardsIndexAndSpans) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  std::vector<std::int8_t> in(qm.input_shape().size());
  std::vector<std::int8_t> out(qm.activation_shape(0).size());
  EXPECT_EQ(qm.apply_layer(qm.layer_count() + 5, in, out, nullptr),
            Status::kInvalidArgument);
  std::vector<std::int8_t> short_in(1);
  EXPECT_EQ(qm.apply_layer(0, short_in, out, nullptr),
            Status::kShapeMismatch);
  std::vector<std::int8_t> short_out(1);
  EXPECT_EQ(qm.apply_layer(0, in, short_out, nullptr),
            Status::kShapeMismatch);
}

TEST(QuantizeBiasI32, RoundsHalfAwayFromZero) {
  // scale = 1.0: quotient == bias.
  EXPECT_EQ(quantize_bias_i32(2.5f, 1.0f, 1.0f), 3);
  EXPECT_EQ(quantize_bias_i32(-2.5f, 1.0f, 1.0f), -3);
  EXPECT_EQ(quantize_bias_i32(0.0f, 1.0f, 1.0f), 0);
  bool sat = true;
  EXPECT_EQ(quantize_bias_i32(10.0f, 0.5f, 0.5f, &sat), 40);
  EXPECT_FALSE(sat);
}

TEST(QuantizeBiasI32, ClampsToInt32AndReportsSaturation) {
  bool sat = false;
  EXPECT_EQ(quantize_bias_i32(1e20f, 1.0f, 1.0f, &sat),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(sat);
  sat = false;
  EXPECT_EQ(quantize_bias_i32(-1e20f, 1.0f, 1.0f, &sat),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_TRUE(sat);
}

TEST(QuantizeBiasI32, TinyPerChannelScalesDoNotOverflow) {
  // w_scale * in_scale underflows *float* here; the double widening must
  // keep the quotient finite and the result a deterministic clamp, not UB.
  bool sat = false;
  const float tiny = 1e-30f;
  EXPECT_EQ(quantize_bias_i32(1.0f, tiny, tiny, &sat),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_TRUE(sat);
}

TEST(QuantizeBiasI32, DegenerateScaleAndNonFiniteBiasMapToZero) {
  bool sat = false;
  EXPECT_EQ(quantize_bias_i32(5.0f, 0.0f, 1.0f, &sat), 0);
  EXPECT_TRUE(sat);
  sat = false;
  EXPECT_EQ(quantize_bias_i32(5.0f, -1.0f, 1.0f, &sat), 0);
  EXPECT_TRUE(sat);
  sat = false;
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(quantize_bias_i32(inf, 1.0f, 1.0f, &sat), 0);
  EXPECT_TRUE(sat);
  sat = false;
  EXPECT_EQ(quantize_bias_i32(std::nanf(""), 1.0f, 1.0f, &sat), 0);
  EXPECT_TRUE(sat);
}

TEST(QuantizedModel, BiasSaturationAuditCountsUnrepresentableChannels) {
  // Tiny weights force a tiny per-channel w_scale; a large bias is then
  // unrepresentable in the int32 accumulator at scale w_scale * in_scale.
  ModelBuilder b{Shape::vec(4)};
  b.dense(2);
  Model m = b.build(7);
  auto& d = static_cast<Dense&>(m.layer(0));
  for (auto& w : d.weights()) w = 1e-6f;
  d.bias()[0] = 50.0f;  // 50 / (w_scale * in_scale) >> int32 max
  d.bias()[1] = 0.0f;   // representable: must not count

  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(4);
  Sample s;
  s.input = Tensor{Shape::vec(4), {0.5f, -0.5f, 1.0f, -1.0f}};
  ds.samples.push_back(std::move(s));

  QuantizedModel qm = QuantizedModel::quantize(m, ds);
  EXPECT_EQ(qm.bias_saturation_count(), 1u);

  const Model& sane = sx::testing::trained_mlp();
  QuantizedModel qsane = QuantizedModel::quantize(sane, sx::testing::road_data());
  EXPECT_EQ(qsane.bias_saturation_count(), 0u);
}

}  // namespace
}  // namespace sx::dl
