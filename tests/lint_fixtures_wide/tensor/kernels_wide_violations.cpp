// Seeded FUSA-violation fixture for the wide-SIMD (kWide) kernel files.
// NEVER compiled or linked — only scanned by the `sxlint_wide_fixture`
// CTest entry. The `tensor/` directory component makes every file here a
// kernel hot path, exactly like the real kernels_wide.cpp /
// qkernels_wide.cpp: dynamic allocation, container growth and console I/O
// are forbidden there, so the linter must flag the idioms below if they
// ever leak into the wide microkernels.
#include <cstdio>
#include <memory>
#include <vector>

namespace fixture {

// hot-path-alloc: allocating a lane panel per call instead of packing it
// once at deploy time into plan-owned storage.
std::vector<float> pack_panel_per_call(const float* w, unsigned n) {
  std::vector<float> panel;
  panel.resize(n);
  for (unsigned i = 0; i < n; ++i) panel[i] = w[i];
  return panel;
}

// hot-path-alloc: per-run scratch for the ragged im2col tail.
std::unique_ptr<float[]> tail_scratch(unsigned taps) {
  return std::make_unique<float[]>(taps);
}

// hot-path-alloc (and heap-expr): raw new inside a microkernel sweep.
float* widen_accumulators(unsigned lanes) { return new float[lanes]; }

// console-io: probe diagnostics belong in the audit log, not on stderr.
void report_probe(bool avx2) {
  std::fprintf(stderr, "wide probe avx2=%d\n", avx2 ? 1 : 0);
}

// A waived finding: deploy-time panel storage is allowed to allocate, and
// the marker must route this into the "waived" counter.
std::unique_ptr<float[]> deploy_time_panel(unsigned n) {
  return std::make_unique<float[]>(n);  // sxlint: allow(hot-path-alloc)
}

// Not findings: names merely containing banned tokens, and literals that
// talk about them, must stay silent.
void resize_lanes_noop() {}
const char* kDoc = "the wide kernels never push_back() or new[] per run";

}  // namespace fixture
