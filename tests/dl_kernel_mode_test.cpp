// Kernel-mode enumeration, CPU-probe ISA selection, and the audited
// deploy-time backend record for the wide-SIMD (kWide) backend.
//
// Three contracts:
//   1. Mode plumbing — resolve_kernel_mode / kernel_mode_name /
//      all_kernel_modes stay exhaustive and consistent (the scenario
//      matrix and the evidence records key on these strings).
//   2. Selection — platform::select_wide_isa honors SX_KERNEL_ISA only
//      when the probe confirms the feature, refuses unknown/unavailable
//      tokens to the scalar twin (never UB), and the audit line records
//      both what was asked and what ran.
//   3. Identity — the kWide StaticEngine and BatchRunner are bitwise
//      identical to the reference engine for every selectable ISA, and
//      the pipeline's "kernel-backend" audit entry / SX_KERNEL_BACKEND
//      report block name the *resolved* mode, including under the
//      SX_KERNEL_REFERENCE escape hatch.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dl/batch.hpp"
#include "dl/engine.hpp"
#include "dl/plan.hpp"
#include "platform/cpu_probe.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace sx::dl {
namespace {

using tensor::kernels::WideIsa;

::testing::AssertionResult BitEqual(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " != " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i]))
      return ::testing::AssertionFailure() << "element " << i;
  return ::testing::AssertionSuccess();
}

std::vector<float> run_engine(StaticEngine& e, tensor::ConstTensorView in) {
  std::vector<float> out(e.output_shape().size());
  EXPECT_EQ(e.run(in, out), Status::kOk);
  return out;
}

// --------------------------------------------------------- mode plumbing

TEST(WideKernelMode, NameMappingIsExhaustive) {
  EXPECT_STREQ(kernel_mode_name(KernelMode::kAuto), "auto");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kReference), "reference");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kBlocked), "blocked");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kPacked), "packed");
  EXPECT_STREQ(kernel_mode_name(KernelMode::kWide), "wide");
}

TEST(WideKernelMode, AllKernelModesEnumeratesEveryConcreteMode) {
  const auto modes = all_kernel_modes();
  // kReference first: the scenario matrix anchors each backend's twin on
  // the first entry of the shared enumeration.
  ASSERT_GE(modes.size(), 4u);
  EXPECT_EQ(modes[0], KernelMode::kReference);
  std::vector<KernelMode> want = {KernelMode::kReference,
                                  KernelMode::kBlocked, KernelMode::kPacked,
                                  KernelMode::kWide};
  ASSERT_EQ(modes.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(modes[i], want[i]);
  // No kAuto, no duplicates.
  for (std::size_t i = 0; i < modes.size(); ++i) {
    EXPECT_NE(modes[i], KernelMode::kAuto);
    for (std::size_t j = i + 1; j < modes.size(); ++j)
      EXPECT_NE(modes[i], modes[j]);
  }
}

TEST(WideKernelMode, ResolveNeverOverridesExplicitWide) {
  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "1", 1), 0);
  // The escape hatch applies to kAuto only — an explicitly requested mode
  // is a deliberate deployment decision.
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kWide), KernelMode::kWide);
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kAuto), KernelMode::kReference);
  ASSERT_EQ(unsetenv("SX_KERNEL_REFERENCE"), 0);
  EXPECT_EQ(resolve_kernel_mode(KernelMode::kWide), KernelMode::kWide);
}

// --------------------------------------------------------- ISA selection

TEST(WideIsaSelect, NoOverridePicksWidestProbedIsa) {
  using platform::CpuProbe;
  using platform::select_wide_isa;
  EXPECT_EQ(select_wide_isa(CpuProbe{false, false}, nullptr).isa,
            WideIsa::kScalar);
  EXPECT_EQ(select_wide_isa(CpuProbe{true, false}, nullptr).isa,
            WideIsa::kAvx2);
  EXPECT_EQ(select_wide_isa(CpuProbe{true, true}, nullptr).isa,
            WideIsa::kAvx512);
  // Empty string == unset.
  const auto s = select_wide_isa(CpuProbe{true, true}, "");
  EXPECT_EQ(s.isa, WideIsa::kAvx512);
  EXPECT_FALSE(s.env_present);
  EXPECT_FALSE(s.refused);
}

TEST(WideIsaSelect, OverrideHonoredOnlyWhenProbeConfirms) {
  using platform::CpuProbe;
  using platform::select_wide_isa;
  struct Cell {
    CpuProbe probe;
    const char* env;
    WideIsa want;
    bool refused;
  };
  const Cell cells[] = {
      // scalar is always available, on any probe.
      {{false, false}, "scalar", WideIsa::kScalar, false},
      {{true, true}, "scalar", WideIsa::kScalar, false},
      // narrowing below the widest probed ISA is a legitimate override.
      {{true, true}, "avx2", WideIsa::kAvx2, false},
      {{true, true}, "avx512", WideIsa::kAvx512, false},
      {{true, false}, "avx2", WideIsa::kAvx2, false},
      // probe-mismatch: requested feature not attested -> refused, scalar.
      {{false, false}, "avx2", WideIsa::kScalar, true},
      {{false, false}, "avx512", WideIsa::kScalar, true},
      {{true, false}, "avx512", WideIsa::kScalar, true},
      // unknown tokens are refused, never guessed.
      {{true, true}, "neon", WideIsa::kScalar, true},
      {{true, true}, "AVX2", WideIsa::kScalar, true},
  };
  for (const Cell& c : cells) {
    const auto s = select_wide_isa(c.probe, c.env);
    EXPECT_EQ(s.isa, c.want) << "env=" << c.env;
    EXPECT_EQ(s.refused, c.refused) << "env=" << c.env;
    EXPECT_TRUE(s.env_present) << "env=" << c.env;
    EXPECT_STREQ(s.requested, c.env);
  }
}

TEST(WideIsaSelect, AuditLineNamesProbeOverrideAndOutcome) {
  using platform::CpuProbe;
  const CpuProbe p{true, false};
  EXPECT_EQ(platform::wide_isa_audit(p, platform::select_wide_isa(p, nullptr)),
            "probe avx2=1 avx512f=0 env=(unset) selected=avx2 refused=0");
  EXPECT_EQ(
      platform::wide_isa_audit(p, platform::select_wide_isa(p, "avx512")),
      "probe avx2=1 avx512f=0 env=avx512 selected=scalar refused=1");
}

// ------------------------------------------------------- engine identity

TEST(WideEngine, BitwiseIdenticalToReferenceUnderIsaOverrides) {
  const auto& ds = sx::testing::road_data();
  const platform::CpuProbe probe = platform::probe_cpu();
  std::vector<const char*> isas = {"scalar"};
  if (probe.avx2) isas.push_back("avx2");
  if (probe.avx512f) isas.push_back("avx512");

  for (const Model* m : {&sx::testing::trained_mlp(),
                         &sx::testing::trained_cnn()}) {
    StaticEngine ref{*m, {.kernels = KernelMode::kReference}};
    for (const char* isa : isas) {
      ASSERT_EQ(setenv("SX_KERNEL_ISA", isa, 1), 0);
      StaticEngine wide{*m, {.kernels = KernelMode::kWide}};
      ASSERT_NE(wide.kernel_plan(), nullptr);
      EXPECT_EQ(wide.kernel_plan()->mode(), KernelMode::kWide);
      EXPECT_FALSE(wide.kernel_plan()->isa_selection().refused);
      EXPECT_STREQ(tensor::kernels::wide_isa_name(
                       wide.kernel_plan()->isa_selection().isa),
                   isa);
      for (std::size_t i = 0; i < 16; ++i) {
        const auto in = ds.samples[i].input.view();
        EXPECT_TRUE(BitEqual(run_engine(wide, in), run_engine(ref, in)))
            << "isa=" << isa << " sample " << i;
      }
    }
  }
  ASSERT_EQ(unsetenv("SX_KERNEL_ISA"), 0);
}

TEST(WideEngine, RefusedOverrideFallsBackToScalarAndStaysIdentical) {
  // An operator override naming an ISA this host cannot attest must not
  // abort deployment, must not execute unavailable instructions, and must
  // keep the output bits: the plan records the refusal and runs the
  // scalar twin.
  ASSERT_EQ(setenv("SX_KERNEL_ISA", "not-an-isa", 1), 0);
  const Model& m = sx::testing::trained_mlp();
  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  StaticEngine wide{m, {.kernels = KernelMode::kWide}};
  ASSERT_NE(wide.kernel_plan(), nullptr);
  EXPECT_TRUE(wide.kernel_plan()->isa_selection().refused);
  EXPECT_EQ(wide.kernel_plan()->isa_selection().isa, WideIsa::kScalar);
  EXPECT_NE(wide.kernel_plan()->summary().find("override refused"),
            std::string::npos);
  const auto in = sx::testing::road_data().samples[0].input.view();
  EXPECT_TRUE(BitEqual(run_engine(wide, in), run_engine(ref, in)));
  ASSERT_EQ(unsetenv("SX_KERNEL_ISA"), 0);
}

TEST(WideEngine, PanelSnapshotIsStaleUntilRepack) {
  // kWide packs weight panels at deploy time like kPacked; SEU campaigns
  // that mutate live weights must call repack() to resync the snapshot.
  Model m = sx::testing::trained_mlp();
  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  KernelPlan plan{m, KernelMode::kWide};
  StaticEngine wide{m, plan};

  const auto in = sx::testing::road_data().samples[2].input.view();
  const auto before = run_engine(ref, in);
  ASSERT_TRUE(BitEqual(run_engine(wide, in), before));

  auto& dense = static_cast<Dense&>(m.layer(1));
  dense.weights()[0] += 0.25f;
  const auto after = run_engine(ref, in);
  ASSERT_FALSE(BitEqual(after, before));

  EXPECT_TRUE(BitEqual(run_engine(wide, in), before));  // stale snapshot
  plan.repack();
  EXPECT_TRUE(BitEqual(run_engine(wide, in), after));  // resynced
}

TEST(WideBatch, WorkerCountsBitwiseIdenticalToReference) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  const std::size_t n = 16;
  const std::size_t out_size = m.output_shape().size();

  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  std::vector<float> expected(n * out_size);
  std::vector<float> flat(n * m.input_shape().size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = ds.samples[i].input.data();
    std::copy(src.begin(), src.end(),
              flat.begin() + i * m.input_shape().size());
    ASSERT_EQ(ref.run(ds.samples[i].input.view(),
                      std::span<float>(expected).subspan(i * out_size,
                                                         out_size)),
              Status::kOk);
  }

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    BatchRunner runner{m, BatchRunnerConfig{.workers = workers,
                                            .kernels = KernelMode::kWide}};
    ASSERT_NE(runner.kernel_plan(), nullptr);
    EXPECT_EQ(runner.kernel_plan()->mode(), KernelMode::kWide);
    std::vector<float> out(n * out_size, -1.0f);
    std::vector<Status> st(n, Status::kInvalidArgument);
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(st[i], Status::kOk);
    EXPECT_TRUE(BitEqual(out, expected)) << "wide x " << workers
                                         << " workers";
  }
}

// ------------------------------------------- audited backend record

const trace::AuditEntry* find_entry(const trace::AuditLog& log,
                                    const std::string& actor) {
  for (const auto& e : log.entries())
    if (e.actor == actor) return &e;
  return nullptr;
}

TEST(WideBackendRecord, AuditEntryNamesResolvedModeAndProbe) {
  core::PipelineConfig cfg;
  cfg.criticality = core::Criticality::kSil2;
  cfg.kernel_mode = KernelMode::kWide;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};

  const auto* e = find_entry(p.audit(), "kernel-backend");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->payload, p.kernel_backend());
  EXPECT_NE(e->payload.find("requested=wide resolved=wide"),
            std::string::npos)
      << e->payload;
  EXPECT_NE(e->payload.find("probe avx2="), std::string::npos) << e->payload;
  EXPECT_NE(e->payload.find("selected="), std::string::npos) << e->payload;

  const core::EvidenceItem item = core::make_kernel_backend_evidence(p);
  EXPECT_NE(item.body.find("# BEGIN SX_KERNEL_BACKEND"), std::string::npos);
  EXPECT_NE(item.body.find(p.kernel_backend()), std::string::npos);
  EXPECT_NE(item.body.find("plan=float mode=wide isa="), std::string::npos)
      << item.body;
  EXPECT_NE(item.body.find("# END SX_KERNEL_BACKEND"), std::string::npos);
}

TEST(WideBackendRecord, Int8BackendForwardsKernelModeToQuantChannel) {
  // One knob across backends: a kWide request on the int8 backend must
  // reach the quantized channel (quant_engine.kernels left at kAuto) and
  // the record must attribute the deployment to the quant plan's resolved
  // mode — not silently deploy the int8 default.
  core::PipelineConfig cfg;
  cfg.criticality = core::Criticality::kSil2;
  cfg.backend = core::BackendKind::kInt8;
  cfg.kernel_mode = KernelMode::kWide;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};

  const auto* e = find_entry(p.audit(), "kernel-backend");
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->payload.find("requested=wide resolved=wide"),
            std::string::npos)
      << e->payload;
  EXPECT_NE(e->payload.find("probe avx2="), std::string::npos) << e->payload;

  const core::EvidenceItem item = core::make_kernel_backend_evidence(p);
  EXPECT_NE(item.body.find("plan=int8 mode=wide isa="), std::string::npos)
      << item.body;
}

TEST(WideBackendRecord, EscapeHatchRecordsResolvedReferenceMode) {
  // SX_KERNEL_REFERENCE demotes kAuto to the reference loops; the audit
  // record must attribute the evidence to what actually ran, not to the
  // requested mode.
  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "1", 1), 0);
  core::PipelineConfig cfg;
  cfg.criticality = core::Criticality::kSil2;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  ASSERT_EQ(unsetenv("SX_KERNEL_REFERENCE"), 0);

  const auto* e = find_entry(p.audit(), "kernel-backend");
  ASSERT_NE(e, nullptr);
  EXPECT_NE(e->payload.find("requested=auto resolved=reference"),
            std::string::npos)
      << e->payload;
  // No wide plan deployed -> no probe clause.
  EXPECT_EQ(e->payload.find("probe"), std::string::npos) << e->payload;
}

}  // namespace
}  // namespace sx::dl
