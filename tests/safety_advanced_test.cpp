#include <gtest/gtest.h>

#include "dl/model.hpp"
#include "safety/deep_monitor.hpp"
#include "safety/fault.hpp"
#include "safety/integrity.hpp"
#include "safety/recovery.hpp"
#include "test_helpers.hpp"

namespace sx::safety {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

// ------------------------------------------------------- integrity guard

TEST(WeightIntegrity, CleanModelVerifies) {
  dl::Model deployed = model();
  WeightIntegrityGuard guard{model()};
  EXPECT_EQ(guard.verify(deployed), Status::kOk);
  EXPECT_EQ(guard.scrub(deployed), Status::kOk);
  EXPECT_EQ(guard.detections(), 0u);
}

TEST(WeightIntegrity, DetectsAndRepairsBitFlip) {
  dl::Model deployed = model();
  WeightIntegrityGuard guard{model()};
  FaultInjector injector{5};
  (void)injector.inject(deployed, FaultType::kBitFlip);
  EXPECT_EQ(guard.verify(deployed), Status::kIntegrityFault);
  EXPECT_EQ(guard.scrub(deployed), Status::kIntegrityFault);
  // Repaired: identical to golden again.
  EXPECT_EQ(guard.verify(deployed), Status::kOk);
  EXPECT_EQ(deployed.provenance_hash(), model().provenance_hash());
  EXPECT_EQ(guard.repaired_layers(), 1u);
}

TEST(WeightIntegrity, RepairsMultipleCorruptedLayers) {
  dl::Model deployed = model();
  WeightIntegrityGuard guard{model()};
  deployed.layer(1).params()[0] += 1.0f;
  deployed.layer(3).params()[0] += 1.0f;
  EXPECT_EQ(guard.scrub(deployed), Status::kIntegrityFault);
  EXPECT_EQ(guard.repaired_layers(), 2u);
  EXPECT_EQ(deployed.provenance_hash(), model().provenance_hash());
}

TEST(WeightIntegrity, MismatchedModelRejected) {
  dl::ModelBuilder b{tensor::Shape::vec(4)};
  b.dense(2);
  dl::Model other = b.build(1);
  WeightIntegrityGuard guard{model()};
  EXPECT_EQ(guard.verify(other), Status::kInvalidArgument);
}

TEST(WeightIntegrity, ScrubCountsAccumulate) {
  dl::Model deployed = model();
  WeightIntegrityGuard guard{model()};
  for (int i = 0; i < 5; ++i) (void)guard.scrub(deployed);
  EXPECT_EQ(guard.scrubs(), 5u);
}

// --------------------------------------------------------- deep monitor

TEST(DeepMonitor, AcceptsInDistribution) {
  DeepMonitoredChannel ch{model(), data(), 0.5f};
  std::vector<float> out(ch.output_size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 50; ++i)
    if (!ok(ch.infer(data().samples[i].input.view(), out))) ++rejected;
  EXPECT_EQ(rejected, 0u);
}

TEST(DeepMonitor, CatchesLargeWeightCorruption) {
  DeepMonitoredChannel ch{model(), data(), 0.5f};
  ch.replica(0).layer(1).params()[3] += 100.0f;
  std::vector<float> out(ch.output_size());
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < 20; ++i)
    if (!ok(ch.infer(data().samples[i].input.view(), out))) ++rejected;
  EXPECT_GT(rejected, 15u);
}

TEST(DeepMonitor, LocalizesTheFaultyLayer) {
  DeepMonitoredChannel ch{model(), data(), 0.5f};
  // Corrupt the *second* dense layer (model layer index 3).
  ch.replica(0).layer(3).params()[0] += 100.0f;
  std::vector<float> out(ch.output_size());
  for (std::size_t i = 0; i < 20; ++i) {
    if (!ok(ch.infer(data().samples[i].input.view(), out))) {
      // Violation must fire at or after layer 3 — never before it.
      EXPECT_GE(ch.last_violation_layer(), 3u);
      return;
    }
  }
  FAIL() << "corruption never detected";
}

TEST(DeepMonitor, CatchesNaNInput) {
  DeepMonitoredChannel ch{model(), data(), 0.5f};
  tensor::Tensor bad = data().samples[0].input;
  bad.at(std::size_t{0}) = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out(ch.output_size());
  EXPECT_EQ(ch.infer(bad.view(), out), Status::kNumericFault);
  EXPECT_GT(ch.violations(), 0u);
}

TEST(DeepMonitor, EnvelopesOrdered) {
  DeepMonitoredChannel ch{model(), data(), 0.5f};
  for (const auto& e : ch.envelopes()) EXPECT_LT(e.lo, e.hi);
}

TEST(DeepMonitor, ValidatesConstruction) {
  dl::Dataset empty;
  EXPECT_THROW(DeepMonitoredChannel(model(), empty), std::invalid_argument);
  EXPECT_THROW(DeepMonitoredChannel(model(), data(), -1.0f),
               std::invalid_argument);
}

// -------------------------------------------------------- recovery block

dl::Model alternate_model() {
  // Same architecture, different seed — a diverse alternate.
  dl::ModelBuilder b{data().input_shape};
  b.flatten().dense(32).relu().dense(16).relu().dense(dl::kRoadSceneClasses);
  dl::Model m = b.build(77);
  dl::Trainer t{dl::TrainConfig{.learning_rate = 0.02,
                                .epochs = 15,
                                .batch_size = 16,
                                .shuffle_seed = 91}};
  t.fit(m, data());
  return m;
}

TEST(RecoveryBlock, PrimaryHandlesNominalTraffic) {
  RecoveryBlockChannel ch{model(), alternate_model(), MonitorConfig{}};
  std::vector<float> out(ch.output_size());
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(ch.infer(data().samples[i].input.view(), out), Status::kOk);
  EXPECT_EQ(ch.recoveries(), 0u);
}

TEST(RecoveryBlock, AlternateTakesOverOnPrimaryFault) {
  RecoveryBlockChannel ch{model(), alternate_model(), MonitorConfig{}};
  // Poison the primary so its outputs go non-finite.
  ch.replica(0).layer(1).params()[0] =
      std::numeric_limits<float>::infinity();
  std::vector<float> out(ch.output_size());
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(ch.infer(data().samples[i].input.view(), out), Status::kOk)
        << "alternate must recover";
  EXPECT_EQ(ch.recoveries(), 10u);
  EXPECT_EQ(ch.double_failures(), 0u);
}

TEST(RecoveryBlock, DoubleFaultFailsStop) {
  RecoveryBlockChannel ch{model(), alternate_model(), MonitorConfig{}};
  ch.replica(0).layer(1).params()[0] =
      std::numeric_limits<float>::infinity();
  ch.replica(1).layer(1).params()[0] =
      std::numeric_limits<float>::infinity();
  std::vector<float> out(ch.output_size());
  EXPECT_EQ(ch.infer(data().samples[0].input.view(), out),
            Status::kRedundancyFault);
  EXPECT_EQ(ch.double_failures(), 1u);
}

TEST(RecoveryBlock, RejectsShapeMismatchedAlternate) {
  dl::ModelBuilder b{tensor::Shape::vec(8)};
  b.dense(2);
  dl::Model tiny = b.build(1);
  EXPECT_THROW(RecoveryBlockChannel(model(), tiny, MonitorConfig{}),
               std::invalid_argument);
}

TEST(RecoveryBlock, AcceptanceMarginEngagesAlternate) {
  // Tight decision-margin acceptance: ambiguous primary outputs trigger
  // the alternate at least sometimes.
  MonitorConfig acceptance;
  acceptance.min_decision_margin = 0.9f;
  RecoveryBlockChannel ch{model(), alternate_model(), acceptance};
  std::vector<float> out(ch.output_size());
  for (std::size_t i = 0; i < 100; ++i)
    (void)ch.infer(data().samples[i].input.view(), out);
  EXPECT_GT(ch.recoveries(), 0u);
}

}  // namespace
}  // namespace sx::safety
