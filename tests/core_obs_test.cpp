// Pipeline-level observability tests: telemetry counters track runtime
// events on both inference paths, the batch path keeps watchdog parity
// with the single-item path, the certification report embeds the
// telemetry snapshot, and — the central claim — counters, histograms and
// the text exposition are bitwise identical for every batch_workers
// setting under a deterministic clock.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "test_helpers.hpp"
#include "timing/mbpta.hpp"

namespace sx::core {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

/// Deterministic clock: +7 per call, one counter per thread, so a paired
/// start/stop measurement always reads 7 elapsed units on every thread
/// and every schedule.
std::uint64_t& tick_ref() noexcept {
  thread_local std::uint64_t t = 0;
  return t;
}
std::uint64_t tick_now() noexcept { return tick_ref() += 7; }

obs::RegistryConfig tick_telemetry() {
  obs::RegistryConfig cfg;
  cfg.clock = &tick_now;
  return cfg;
}

std::uint64_t counter_value(const CertifiablePipeline& p, const char* name) {
  const obs::Registry* reg = p.telemetry();
  return reg ? reg->value(reg->find_counter(name)) : 0;
}

// ------------------------------------------------------- single-item path

TEST(PipelineTelemetry, CountsDecisionsAndOddRejections) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{model(), data(), cfg};
  ASSERT_NE(p.telemetry(), nullptr);
  for (std::size_t i = 0; i < 3; ++i) (void)p.infer(data().samples[i].input);
  tensor::Tensor extreme{data().input_shape};
  extreme.fill(30.0f);
  const auto d = p.infer(extreme);
  EXPECT_EQ(d.status, Status::kOddViolation);
  EXPECT_EQ(counter_value(p, "sx_decisions_total"), 4u);
  EXPECT_EQ(counter_value(p, "sx_odd_rejections_total"), 1u);
  EXPECT_EQ(counter_value(p, "sx_watchdog_overruns_total"), 0u);
}

TEST(PipelineTelemetry, WatchdogOverrunCounted) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 1000;
  CertifiablePipeline p{model(), data(), cfg};
  (void)p.infer(data().samples[0].input, 0, /*elapsed=*/5000);
  (void)p.infer(data().samples[1].input, 1, /*elapsed=*/500);
  EXPECT_EQ(counter_value(p, "sx_watchdog_overruns_total"), 1u);
  EXPECT_EQ(counter_value(p, "sx_decisions_total"), 2u);
}

TEST(PipelineTelemetry, StageHistogramsRecordEveryDecision) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.telemetry_config = tick_telemetry();
  CertifiablePipeline p{model(), data(), cfg};
  obs::Registry* reg = p.telemetry();
  ASSERT_NE(reg, nullptr);
  const std::size_t n = 5;
  for (std::size_t i = 0; i < n; ++i) (void)p.infer(data().samples[i].input);
  EXPECT_EQ(reg->histogram_snapshot(reg->find_histogram("sx_decision_cycles"))
                .count,
            n);
  EXPECT_EQ(
      reg->histogram_snapshot(reg->find_histogram("sx_stage_inference_cycles"))
          .count,
      n);
  EXPECT_EQ(
      reg->histogram_snapshot(reg->find_histogram("sx_stage_odd_guard_cycles"))
          .count,
      n);
}

TEST(PipelineTelemetry, FlightRecorderHoldsStageTrail) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.flight_recorder_capacity = 64;
  CertifiablePipeline p{model(), data(), cfg};
  (void)p.infer(data().samples[0].input);
  const obs::FlightRecorder* fdr = p.flight_recorder();
  ASSERT_NE(fdr, nullptr);
  EXPECT_GT(fdr->size(), 0u);
  std::vector<obs::StageSpan> spans(fdr->size());
  fdr->snapshot(spans);
  bool saw_guard = false, saw_inference = false, saw_decision = false;
  for (const auto& s : spans) {
    saw_guard |= s.stage == obs::Stage::kOddGuard;
    saw_inference |= s.stage == obs::Stage::kInference;
    saw_decision |= s.stage == obs::Stage::kDecision;
    EXPECT_EQ(s.decision, 1u);
  }
  EXPECT_TRUE(saw_guard);
  EXPECT_TRUE(saw_inference);
  EXPECT_TRUE(saw_decision);
}

TEST(PipelineTelemetry, DisabledTelemetryMeansNoRegistry) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.enable_telemetry = false;
  CertifiablePipeline p{model(), data(), cfg};
  EXPECT_EQ(p.telemetry(), nullptr);
  EXPECT_EQ(p.flight_recorder(), nullptr);
  const auto d = p.infer(data().samples[0].input);
  EXPECT_EQ(d.status, Status::kOk);
  const auto rep = make_certification_report(p, nullptr, {});
  EXPECT_EQ(rep.text.find("7. OBSERVABILITY"), std::string::npos);
}

// --------------------------------------------------------- batch watchdog

TEST(PipelineTelemetry, BatchPathFeedsMeasuredTimeToWatchdog) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 3;  // deterministic clock measures 7 per item
  cfg.batch_workers = 2;
  cfg.telemetry_config = tick_telemetry();
  CertifiablePipeline p{model(), data(), cfg};
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 6; ++i) inputs.push_back(data().samples[i].input);
  tick_ref() = 0;
  const auto decisions = p.infer_batch(inputs);
  for (const auto& d : decisions) {
    EXPECT_EQ(d.status, Status::kDeadlineMiss);
    EXPECT_TRUE(d.degraded);
  }
  EXPECT_EQ(counter_value(p, "sx_watchdog_overruns_total"), 6u);
}

TEST(PipelineTelemetry, BatchPathWithinBudgetDecides) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil3;
  cfg.timing_budget = 100;  // measured 7 per item fits easily
  cfg.batch_workers = 2;
  cfg.telemetry_config = tick_telemetry();
  CertifiablePipeline p{model(), data(), cfg};
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 6; ++i) inputs.push_back(data().samples[i].input);
  tick_ref() = 0;
  const auto decisions = p.infer_batch(inputs);
  for (const auto& d : decisions) EXPECT_EQ(d.status, Status::kOk);
  EXPECT_EQ(counter_value(p, "sx_watchdog_overruns_total"), 0u);
  EXPECT_EQ(counter_value(p, "sx_decisions_total"), 6u);
}

// ------------------------------------------------------------ determinism

/// Runs the same mixed batch workload at a given worker count and returns
/// the full telemetry state (exposition + flight trail + audit head).
struct TelemetrySnapshot {
  std::string exposition;
  std::string flight_trail;
  std::uint64_t decisions = 0;
  std::uint64_t odd_rejections = 0;
  std::uint64_t batch_items = 0;
};

TelemetrySnapshot run_workload(std::size_t workers) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.batch_workers = workers;
  cfg.telemetry_config = tick_telemetry();
  CertifiablePipeline p{model(), data(), cfg};

  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 10; ++i)
    inputs.push_back(data().samples[i].input);
  tensor::Tensor extreme{data().input_shape};
  extreme.fill(30.0f);
  inputs.push_back(extreme);
  inputs.push_back(extreme);

  tick_ref() = 0;  // same serial clock stream for every worker count
  (void)p.infer_batch(inputs);
  (void)p.infer_batch(inputs);

  TelemetrySnapshot snap;
  snap.exposition = obs::expose_text(*p.telemetry());
  snap.flight_trail = p.flight_recorder()->to_text();
  snap.decisions = counter_value(p, "sx_decisions_total");
  snap.odd_rejections = counter_value(p, "sx_odd_rejections_total");
  snap.batch_items = counter_value(p, "sx_batch_items_total");
  return snap;
}

TEST(PipelineTelemetry, BitwiseIdenticalAcrossWorkerCounts) {
  const TelemetrySnapshot ref = run_workload(1);
  EXPECT_EQ(ref.decisions, 24u);
  EXPECT_EQ(ref.odd_rejections, 4u);
  EXPECT_EQ(ref.batch_items, 24u);  // guard-rejected items still execute
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const TelemetrySnapshot snap = run_workload(workers);
    EXPECT_EQ(snap.exposition, ref.exposition) << "workers=" << workers;
    EXPECT_EQ(snap.flight_trail, ref.flight_trail) << "workers=" << workers;
    EXPECT_EQ(snap.decisions, ref.decisions) << "workers=" << workers;
    EXPECT_EQ(snap.odd_rejections, ref.odd_rejections)
        << "workers=" << workers;
    EXPECT_EQ(snap.batch_items, ref.batch_items) << "workers=" << workers;
  }
}

TEST(PipelineTelemetry, BatchCountersAreShardedByWorker) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;
  cfg.batch_workers = 4;
  cfg.telemetry_config = tick_telemetry();
  CertifiablePipeline p{model(), data(), cfg};
  std::vector<tensor::Tensor> inputs;
  for (std::size_t i = 0; i < 8; ++i) inputs.push_back(data().samples[i].input);
  tick_ref() = 0;
  (void)p.infer_batch(inputs);
  const obs::Registry* reg = p.telemetry();
  const obs::CounterId c = reg->find_counter("sx_batch_items_total");
  EXPECT_EQ(reg->value(c), 8u);
  // Static round-robin: worker w owns items w, w+4 — two each.
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_EQ(reg->shard_value(c, w), 2u) << "worker " << w;
}

// ------------------------------------------------------------------ report

TEST(PipelineTelemetry, ReportEmbedsSnapshotBetweenMarkers) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{model(), data(), cfg};
  (void)p.infer(data().samples[0].input);
  const auto rep = make_certification_report(p, nullptr, {});
  EXPECT_NE(rep.text.find("7. OBSERVABILITY"), std::string::npos);
  const std::size_t b = rep.text.find("# BEGIN SX_METRICS");
  const std::size_t e = rep.text.find("# END SX_METRICS");
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(e, std::string::npos);
  EXPECT_LT(b, e);
  const std::string block = rep.text.substr(b, e - b);
  EXPECT_NE(block.find("sx_decisions_total 1"), std::string::npos);
  EXPECT_NE(rep.text.find("# BEGIN SX_FLIGHT_TRAIL"), std::string::npos);
  EXPECT_NE(rep.text.find("# END SX_FLIGHT_TRAIL"), std::string::npos);
}

// -------------------------------------------------------------- MBPTA feed

TEST(PipelineTelemetry, DrainedDecisionSamplesFeedMbpta) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;  // real steady clock: varying samples
  CertifiablePipeline p{model(), data(), cfg};
  const std::size_t n = 250;
  for (std::size_t i = 0; i < n; ++i)
    (void)p.infer(data().samples[i % data().samples.size()].input, i);
  obs::Registry* reg = p.telemetry();
  const obs::HistogramId h = reg->find_histogram("sx_decision_cycles");
  ASSERT_EQ(reg->sample_count(h), n);
  std::vector<double> times(n);
  ASSERT_EQ(reg->drain_samples(h, times), n);
  timing::MbptaConfig mc;
  mc.require_iid = false;  // live samples need not pass the full battery
  const timing::MbptaReport report = timing::analyze(times, mc);
  EXPECT_GT(report.observed_hwm, 0.0);
  EXPECT_FALSE(report.curve.empty());
  EXPECT_EQ(reg->sample_count(h), 0u);  // drained
}

}  // namespace
}  // namespace sx::core
