#include <gtest/gtest.h>

#include "supervise/advanced.hpp"
#include "supervise/metrics.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace sx::supervise {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& id_data() { return sx::testing::road_data(); }

const dl::Dataset& far_ood() {
  static const dl::Dataset ds =
      dl::corrupt(id_data(), dl::Corruption::kUniformRandom, 77);
  return ds;
}

// --------------------------------------------------------------------- ODIN

TEST(Odin, ValidatesConstruction) {
  EXPECT_THROW(OdinSupervisor(0.0), std::invalid_argument);
  EXPECT_THROW(OdinSupervisor(1.0, -0.1f), std::invalid_argument);
}

TEST(Odin, SeparatesFarOod) {
  OdinSupervisor sup;
  sup.fit(model(), id_data());
  const auto r =
      evaluate_detection(sup, model(), id_data(), far_ood(), "uniform");
  EXPECT_GT(r.auroc, 0.6);
}

TEST(Odin, BeatsOrMatchesPlainMaxSoftmax) {
  OdinSupervisor odin;
  odin.fit(model(), id_data());
  MaxSoftmaxSupervisor base;
  const double a_odin =
      evaluate_detection(odin, model(), id_data(), far_ood(), "u").auroc;
  const double a_base =
      evaluate_detection(base, model(), id_data(), far_ood(), "u").auroc;
  EXPECT_GE(a_odin, a_base - 0.05);
}

TEST(Odin, DeterministicScores) {
  OdinSupervisor sup;
  sup.fit(model(), id_data());
  const double a = sup.score(model(), id_data().samples[0].input);
  const double b = sup.score(model(), id_data().samples[0].input);
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- ensemble

TEST(Ensemble, RequiresTwoMembers) {
  EXPECT_THROW(EnsembleSupervisor(1), std::invalid_argument);
}

TEST(Ensemble, ScoreRequiresFit) {
  EnsembleSupervisor sup;
  EXPECT_THROW(sup.score(model(), id_data().samples[0].input),
               std::logic_error);
}

TEST(Ensemble, SeparatesFarOod) {
  EnsembleSupervisor sup{3, 8, 41};
  sup.fit(model(), id_data());
  EXPECT_EQ(sup.member_count(), 3u);
  const auto r =
      evaluate_detection(sup, model(), id_data(), far_ood(), "uniform");
  // Ensemble disagreement is a comparatively weak far-OOD signal for small
  // MLPs (members extrapolate similarly); it must still clearly beat chance.
  EXPECT_GT(r.auroc, 0.65) << "ensemble disagreement should flag garbage";
}

TEST(Ensemble, IdScoresLowerThanOod) {
  EnsembleSupervisor sup{3, 8, 41};
  sup.fit(model(), id_data());
  const auto id_scores = collect_scores(sup, model(), id_data());
  const auto ood_scores = collect_scores(sup, model(), far_ood());
  EXPECT_LT(util::mean(id_scores), util::mean(ood_scores));
}

// ---------------------------------------------------------------------- kNN

TEST(Knn, ValidatesConstruction) {
  EXPECT_THROW(KnnSupervisor(0), std::invalid_argument);
}

TEST(Knn, ScoreRequiresFit) {
  KnnSupervisor sup;
  EXPECT_THROW(sup.score(model(), id_data().samples[0].input),
               std::logic_error);
}

TEST(Knn, SeparatesFarOod) {
  KnnSupervisor sup{5};
  sup.fit(model(), id_data());
  const auto r =
      evaluate_detection(sup, model(), id_data(), far_ood(), "uniform");
  EXPECT_GT(r.auroc, 0.85);
}

TEST(Knn, TrainingPointsScoreNearZeroForK1) {
  KnnSupervisor sup{1};
  sup.fit(model(), id_data());
  // k=1 distance of a training point to the bank is 0 (itself).
  EXPECT_NEAR(sup.score(model(), id_data().samples[0].input), 0.0, 1e-6);
}

TEST(Knn, SeparatesStructuredShift) {
  const dl::Dataset fog = dl::corrupt(id_data(), dl::Corruption::kFog, 5);
  KnnSupervisor sup{5};
  sup.fit(model(), id_data());
  const auto r = evaluate_detection(sup, model(), id_data(), fog, "fog");
  EXPECT_GT(r.auroc, 0.8);
}

// Property sweep: every supervisor in the extended family produces finite,
// deterministic scores on arbitrary inputs.
class ExtendedFamily : public ::testing::TestWithParam<int> {};

TEST_P(ExtendedFamily, FiniteDeterministicScores) {
  std::unique_ptr<Supervisor> sup;
  switch (GetParam()) {
    case 0: sup = std::make_unique<OdinSupervisor>(); break;
    case 1: sup = std::make_unique<EnsembleSupervisor>(2, 4, 9); break;
    default: sup = std::make_unique<KnnSupervisor>(3); break;
  }
  sup->fit(model(), id_data());
  for (std::size_t i = 0; i < 5; ++i) {
    const double a = sup->score(model(), far_ood().samples[i].input);
    const double b = sup->score(model(), far_ood().samples[i].input);
    EXPECT_TRUE(std::isfinite(a));
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(All, ExtendedFamily, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace sx::supervise
