#include <gtest/gtest.h>

#include <limits>

#include "safety/campaign.hpp"
#include "safety/channel.hpp"
#include "safety/fault.hpp"
#include "safety/monitor.hpp"
#include "safety/watchdog.hpp"
#include "supervise/metrics.hpp"
#include "test_helpers.hpp"

namespace sx::safety {
namespace {

using tensor::Shape;
using tensor::Tensor;

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

// ----------------------------------------------------------------- monitor

TEST(Monitor, AcceptsNormalOutput) {
  SafetyMonitor mon{MonitorConfig{}};
  const std::vector<float> logits{1.0f, -2.0f, 0.5f, 0.1f};
  EXPECT_EQ(mon.check_output(logits), Status::kOk);
  EXPECT_EQ(mon.rejections(), 0u);
}

TEST(Monitor, RejectsNaN) {
  SafetyMonitor mon{MonitorConfig{}};
  const std::vector<float> logits{1.0f,
                                  std::numeric_limits<float>::quiet_NaN()};
  EXPECT_EQ(mon.check_output(logits), Status::kNumericFault);
  EXPECT_EQ(mon.rejections(), 1u);
}

TEST(Monitor, RejectsOutOfEnvelope) {
  SafetyMonitor mon{MonitorConfig{.output_min = -10, .output_max = 10}};
  const std::vector<float> logits{1.0f, 1e6f};
  EXPECT_EQ(mon.check_output(logits), Status::kNumericFault);
}

TEST(Monitor, DecisionMarginRejectsAmbiguity) {
  SafetyMonitor mon{MonitorConfig{.min_decision_margin = 0.2f}};
  const std::vector<float> ambiguous{1.0f, 1.0f};
  EXPECT_EQ(mon.check_output(ambiguous), Status::kSupervisorReject);
  const std::vector<float> confident{5.0f, -5.0f};
  EXPECT_EQ(mon.check_output(confident), Status::kOk);
}

TEST(Monitor, InputRangeCheck) {
  SafetyMonitor mon{MonitorConfig{
      .check_input_range = true, .input_min = 0.0f, .input_max = 1.0f}};
  Tensor in{Shape::vec(3), {0.5f, 0.7f, 1.5f}};
  EXPECT_EQ(mon.check_input(in.view()), Status::kOddViolation);
}

// ------------------------------------------------------------------ faults

TEST(FaultInjector, BitFlipIsReversible) {
  dl::Model m = model();
  const auto hash_before = m.provenance_hash();
  FaultInjector inj{9};
  const FaultRecord rec = inj.inject(m, FaultType::kBitFlip);
  EXPECT_NE(m.provenance_hash(), hash_before);
  FaultInjector::restore(m, rec);
  EXPECT_EQ(m.provenance_hash(), hash_before);
}

TEST(FaultInjector, FlipBitTwiceIsIdentity) {
  const float v = 1.2345f;
  for (int b = 0; b < 32; ++b) EXPECT_EQ(flip_bit(flip_bit(v, b), b), v);
}

TEST(FaultInjector, StuckFaultsSetExpectedValues) {
  dl::Model m = model();
  FaultInjector inj{4};
  const FaultRecord z = inj.inject(m, FaultType::kStuckZero);
  EXPECT_EQ(m.layer(z.layer).params()[z.param_index], 0.0f);
  FaultInjector::restore(m, z);
  const FaultRecord l = inj.inject(m, FaultType::kStuckLarge);
  EXPECT_EQ(std::fabs(m.layer(l.layer).params()[l.param_index]), 1e6f);
  FaultInjector::restore(m, l);
}

TEST(FaultInjector, TargetedInjection) {
  dl::Model m = model();
  FaultInjector inj{4};
  const FaultRecord rec = inj.inject_at(m, FaultType::kBitFlip, 1, 3, 30);
  EXPECT_EQ(rec.layer, 1u);
  EXPECT_EQ(rec.param_index, 3u);
  EXPECT_NE(rec.before, rec.after);
  FaultInjector::restore(m, rec);
}

// ---------------------------------------------------------------- channels

TEST(SingleChannel, MatchesModelForward) {
  SingleChannel ch{model()};
  std::vector<float> out(ch.output_size());
  ASSERT_EQ(ch.infer(data().samples[0].input.view(), out), Status::kOk);
  const Tensor ref = model().forward(data().samples[0].input);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref.at(i));
}

TEST(SingleChannel, ReplicaIsIndependentCopy) {
  SingleChannel ch{model()};
  ch.replica(0).layer(1).params()[0] += 100.0f;
  // The original shared model is untouched.
  SingleChannel fresh{model()};
  std::vector<float> a(ch.output_size()), b(ch.output_size());
  ASSERT_EQ(ch.infer(data().samples[0].input.view(), a), Status::kOk);
  ASSERT_EQ(fresh.infer(data().samples[0].input.view(), b), Status::kOk);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) differs |= (a[i] != b[i]);
  EXPECT_TRUE(differs);
}

TEST(DmrChannel, DetectsSingleReplicaCorruption) {
  DmrChannel ch{model()};
  // Large corruption in replica 0 only.
  ch.replica(0).layer(1).params()[10] += 50.0f;
  std::vector<float> out(ch.output_size());
  std::size_t detected = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (ch.infer(data().samples[i].input.view(), out) ==
        Status::kRedundancyFault)
      ++detected;
  }
  EXPECT_GT(detected, 15u) << "DMR should flag nearly every inference";
}

TEST(DmrChannel, AgreesWhenHealthy) {
  DmrChannel ch{model()};
  std::vector<float> out(ch.output_size());
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(ch.infer(data().samples[i].input.view(), out), Status::kOk);
  EXPECT_EQ(ch.divergences(), 0u);
}

TEST(TmrChannel, MasksSingleReplicaCorruption) {
  TmrChannel ch{model()};
  ch.replica(0).layer(1).params()[10] += 50.0f;
  std::vector<float> out(ch.output_size());
  SingleChannel golden{model()};
  std::vector<float> ref(golden.output_size());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_EQ(golden.infer(data().samples[i].input.view(), ref), Status::kOk);
    const Status st = ch.infer(data().samples[i].input.view(), out);
    if (st == Status::kOk) {
      std::size_t a = 0, b = 0;
      for (std::size_t k = 1; k < out.size(); ++k) {
        if (out[k] > out[a]) a = k;
        if (ref[k] > ref[b]) b = k;
      }
      correct += (a == b) ? 1 : 0;
    }
  }
  EXPECT_GT(correct, 18u) << "TMR should mask the faulty replica";
  EXPECT_GT(ch.masked_votes(), 0u);
}

TEST(TmrChannel, SurvivesNaNReplica) {
  TmrChannel ch{model()};
  ch.replica(1).layer(1).params()[0] =
      std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out(ch.output_size());
  EXPECT_EQ(ch.infer(data().samples[0].input.view(), out), Status::kOk);
}

TEST(TmrChannel, FailsWithTwoBadReplicas) {
  TmrChannel ch{model()};
  ch.replica(0).layer(1).params()[0] =
      std::numeric_limits<float>::quiet_NaN();
  ch.replica(1).layer(1).params()[0] =
      std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out(ch.output_size());
  EXPECT_EQ(ch.infer(data().samples[0].input.view(), out),
            Status::kRedundancyFault);
}

TEST(DiverseTmrChannel, HealthyMajorityAgreesWithFloat) {
  DiverseTmrChannel ch{model(), data()};
  SingleChannel golden{model()};
  std::vector<float> out(ch.output_size()), ref(ch.output_size());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    ASSERT_EQ(ch.infer(data().samples[i].input.view(), out), Status::kOk);
    ASSERT_EQ(golden.infer(data().samples[i].input.view(), ref), Status::kOk);
    std::size_t a = 0, b = 0;
    for (std::size_t k = 1; k < out.size(); ++k) {
      if (out[k] > out[a]) a = k;
      if (ref[k] > ref[b]) b = k;
    }
    agree += (a == b) ? 1 : 0;
  }
  EXPECT_GT(agree, 27u);
}

TEST(SafetyBag, FallsBackOnPrimaryFailure) {
  auto primary = std::make_unique<DmrChannel>(model());
  primary->replica(0).layer(1).params()[10] += 50.0f;  // force divergence
  std::vector<float> fallback(dl::kRoadSceneClasses, 0.0f);
  fallback[3] = 10.0f;  // conservative: "obstacle"
  SafetyBagChannel bag{std::move(primary), nullptr, nullptr, fallback};
  std::vector<float> out(bag.output_size());
  ASSERT_EQ(bag.infer(data().samples[0].input.view(), out), Status::kOk);
  EXPECT_TRUE(bag.last_degraded());
  EXPECT_EQ(bag.fallback_activations(), 1u);
  std::size_t a = 0;
  for (std::size_t k = 1; k < out.size(); ++k)
    if (out[k] > out[a]) a = k;
  EXPECT_EQ(a, 3u);
}

TEST(SafetyBag, SupervisorRejectTriggersFallback) {
  supervise::AutoencoderSupervisor sup{16, 10, 0.05, 3};
  sup.fit(model(), data());
  sup.calibrate_threshold(supervise::collect_scores(sup, model(), data()),
                          0.95);
  auto primary = std::make_unique<SingleChannel>(model());
  std::vector<float> fallback(dl::kRoadSceneClasses, 0.0f);
  fallback[3] = 10.0f;
  SafetyBagChannel bag{std::move(primary), &model(), &sup, fallback};
  // Far-OOD input should be rejected by the supervisor.
  const dl::Dataset ood =
      dl::corrupt(data(), dl::Corruption::kUniformRandom, 3);
  std::vector<float> out(bag.output_size());
  std::size_t fallbacks = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_EQ(bag.infer(ood.samples[i].input.view(), out), Status::kOk);
    fallbacks += bag.last_degraded() ? 1 : 0;
  }
  EXPECT_GT(fallbacks, 15u);
}

TEST(SafetyBag, ValidatesConstruction) {
  std::vector<float> wrong_size(2, 0.0f);
  EXPECT_THROW(SafetyBagChannel(std::make_unique<SingleChannel>(model()),
                                nullptr, nullptr, wrong_size),
               std::invalid_argument);
  supervise::MahalanobisSupervisor sup;  // unfitted, no threshold
  std::vector<float> fb(dl::kRoadSceneClasses, 0.0f);
  EXPECT_THROW(SafetyBagChannel(std::make_unique<SingleChannel>(model()),
                                &model(), &sup, fb),
               std::invalid_argument);
}

// ---------------------------------------------------------------- campaign

TEST(Campaign, LadderSafetyIsMonotone) {
  dl::Dataset probes;
  probes.num_classes = data().num_classes;
  probes.input_shape = data().input_shape;
  for (std::size_t i = 0; i < 16; ++i)
    probes.samples.push_back(data().samples[i]);

  const CampaignConfig cfg{.n_faults = 60, .probes_per_fault = 4,
                           .fault_type = FaultType::kBitFlip, .seed = 5};

  SingleChannel bare{model()};
  MonitoredChannel monitored{model(), MonitorConfig{.output_min = -50,
                                                    .output_max = 50}};
  DmrChannel dmr{model()};
  TmrChannel tmr{model()};

  const auto o_bare = run_campaign(bare, probes, cfg);
  const auto o_mon = run_campaign(monitored, probes, cfg);
  const auto o_dmr = run_campaign(dmr, probes, cfg);
  const auto o_tmr = run_campaign(tmr, probes, cfg);

  // The pattern ladder must not lose safety as sophistication grows.
  EXPECT_LE(o_mon.sdc_rate(), o_bare.sdc_rate() + 1e-9);
  EXPECT_LE(o_dmr.sdc_rate(), o_mon.sdc_rate() + 0.01);
  EXPECT_LE(o_tmr.sdc_rate(), 0.01) << "TMR should essentially remove SDC";
  // TMR keeps availability high (masking, not stopping).
  EXPECT_GT(o_tmr.availability(), o_dmr.availability());
}

TEST(Campaign, OutcomeArithmetic) {
  CampaignOutcome o;
  o.correct = 70;
  o.detected = 20;
  o.fallback = 5;
  o.sdc = 5;
  EXPECT_EQ(o.total(), 100u);
  EXPECT_TRUE(o.measured());
  EXPECT_DOUBLE_EQ(o.sdc_rate(), 0.05);
  EXPECT_DOUBLE_EQ(o.safe_rate(), 0.95);
  EXPECT_DOUBLE_EQ(o.availability(), 0.75);
}

TEST(Campaign, RejectsEmptyProbes) {
  SingleChannel ch{model()};
  dl::Dataset empty;
  EXPECT_THROW(run_campaign(ch, empty, CampaignConfig{}),
               std::invalid_argument);
}

TEST(Campaign, AlwaysRefusingChannelYieldsEmptyOutcome) {
  // Regression: a channel whose fault-free pass rejects every probe (here
  // an input-range monitor no RoadScene sample satisfies) used to throw
  // from run_campaign mid-analysis. Zero usable probes is a legitimate
  // measurement — the outcome must be the well-defined empty one.
  MonitoredChannel ch{model(),
                      MonitorConfig{.check_input_range = true,
                                    .input_min = 100.0f,
                                    .input_max = 101.0f}};
  dl::Dataset probes;
  probes.num_classes = data().num_classes;
  probes.input_shape = data().input_shape;
  for (std::size_t i = 0; i < 8; ++i)
    probes.samples.push_back(data().samples[i]);

  const auto o = run_campaign(ch, probes, CampaignConfig{.n_faults = 10});
  EXPECT_EQ(o.total(), 0u);
  EXPECT_EQ(o.correct, 0u);
  EXPECT_EQ(o.detected, 0u);
  EXPECT_EQ(o.fallback, 0u);
  EXPECT_EQ(o.sdc, 0u);
  // The rate accessors stay defined on the empty outcome — and
  // *conservative*: a campaign that measured nothing must not satisfy a
  // `safe_rate() >= x` / `sdc_rate() <= y` deployment gate vacuously.
  EXPECT_FALSE(o.measured());
  EXPECT_DOUBLE_EQ(o.sdc_rate(), 1.0);
  EXPECT_DOUBLE_EQ(o.safe_rate(), 0.0);
  EXPECT_DOUBLE_EQ(o.availability(), 0.0);
}

// Fixture bits for the int8-channel campaigns: one quantized twin of the
// shared MLP, calibrated on the shared dataset.
const dl::QuantizedModel& quantized_model() {
  static const dl::QuantizedModel qm =
      dl::QuantizedModel::quantize(model(), data());
  return qm;
}

TEST(Campaign, QuantChannelInjectionHitsDeployedWeights) {
  // Regression: campaign faults used to land in the float twin, which the
  // int8 engine never reads — every trial reproduced the golden output and
  // a campaign against the deployed int8 backend reported vacuous 100%
  // masking. Injection must perturb what the engine actually computes, and
  // undo must restore it bitwise. Packed mode exercises the repack path
  // (panel snapshots of the faulted bits), the strictest variant.
  QuantChannel ch{model(), quantized_model(),
                  dl::QuantEngineConfig{.kernels = dl::KernelMode::kPacked}};
  const auto in = data().samples[0].input.view();
  std::vector<float> golden(ch.output_size()), out(ch.output_size());
  ASSERT_EQ(ch.infer(in, golden), Status::kOk);

  FaultInjector injector{99};
  std::size_t perturbed = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const FaultRecord rec =
        ch.inject_fault(injector, 0, FaultType::kStuckLarge);
    EXPECT_TRUE(rec.quantized);
    ASSERT_EQ(ch.infer(in, out), Status::kOk);
    for (std::size_t i = 0; i < out.size(); ++i)
      if (out[i] != golden[i]) {
        ++perturbed;
        break;
      }
    ch.undo_fault(0, rec);
    ASSERT_EQ(ch.infer(in, out), Status::kOk);
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], golden[i]) << "undo_fault must restore bitwise";
  }
  EXPECT_GT(perturbed, 0u)
      << "no injected int8 fault ever reached the deployed engine";
}

TEST(Campaign, QuantChannelCampaignMeasuresRealFaults) {
  QuantChannel ch{model(), quantized_model()};
  std::vector<float> out(ch.output_size());
  const auto decide = [&](const Tensor& x) {
    EXPECT_EQ(ch.infer(x.view(), out), Status::kOk);
    std::size_t best = 0;
    for (std::size_t i = 1; i < out.size(); ++i)
      if (out[i] > out[best]) best = i;
    return best;
  };
  const auto blend = [](const Tensor& a, const Tensor& b, float t) {
    Tensor mix{a.shape()};
    for (std::size_t i = 0; i < mix.size(); ++i)
      mix.at(i) = (1.0f - t) * a.at(i) + t * b.at(i);
    return mix;
  };
  const auto first_of = [&](std::size_t lbl) -> const dl::Sample& {
    for (const auto& s : data().samples)
      if (s.label == lbl) return s;
    return data().samples[0];
  };

  // The trained MLP is so confident on clean samples that random single-bit
  // weight faults essentially never flip an argmax decision (a prior
  // version of this test observed 1 SDC in 9600 trials). Probe instead at
  // synthesized decision boundaries: for each adjacent class pair, binary
  // search the blend of two samples until the channel's top-2 logits tie.
  // There, any fault on the active path flips the decision, so a campaign
  // whose injections really land in the deployed int8 weights must record
  // SDCs for every seed — while the float-twin bug still reports zero.
  dl::Dataset probes;
  probes.num_classes = data().num_classes;
  probes.input_shape = data().input_shape;
  for (std::size_t c = 0; c < data().num_classes; ++c) {
    const auto& a = first_of(c);
    const auto& b = first_of((c + 1) % data().num_classes);
    const std::size_t da = decide(a.input);
    if (da == decide(b.input)) continue;
    float lo = 0.0f, hi = 1.0f;
    for (int it = 0; it < 40; ++it) {
      const float mid = 0.5f * (lo + hi);
      (decide(blend(a.input, b.input, mid)) == da ? lo : hi) = mid;
    }
    probes.samples.push_back(
        dl::Sample{blend(a.input, b.input, lo), da, std::nullopt});
  }
  ASSERT_GE(probes.samples.size(), 2u);

  const auto o = run_campaign(
      ch, probes,
      CampaignConfig{.n_faults = 60, .probes_per_fault = 4,
                     .fault_type = FaultType::kBitFlip, .seed = 21});
  EXPECT_TRUE(o.measured());
  EXPECT_EQ(o.total(), 240u);
  // This is exactly the assertion the float-twin bug made impossible
  // (everything landed in `correct`). A 40-seed sweep of this config
  // records 6-18 SDCs per campaign, so any positive count is stable.
  EXPECT_GT(o.sdc, 0u);
  EXPECT_LT(o.correct, o.total());
}

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, KickBeforeDeadlineOk) {
  Watchdog wd;
  wd.arm(100, 50);
  EXPECT_EQ(wd.kick(140), Status::kOk);
  EXPECT_EQ(wd.kicks(), 1u);
}

TEST(Watchdog, LateKickIsMiss) {
  Watchdog wd;
  wd.arm(100, 50);
  EXPECT_EQ(wd.kick(151), Status::kDeadlineMiss);
  EXPECT_EQ(wd.misses(), 1u);
}

TEST(Watchdog, KickWithoutArmIsNotReady) {
  Watchdog wd;
  EXPECT_EQ(wd.kick(0), Status::kNotReady);
}

TEST(Watchdog, HugeBudgetSaturatesInsteadOfWrapping) {
  // Regression: arm() used to compute now + budget with wrapping uint64
  // arithmetic, so a budget reaching past the end of logical time wrapped
  // to a *past* deadline and every kick became a spurious miss.
  Watchdog wd;
  const std::uint64_t now = std::numeric_limits<std::uint64_t>::max() - 5;
  wd.arm(now, 1000);
  EXPECT_EQ(wd.deadline(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(wd.expired(now));
  EXPECT_EQ(wd.kick(now + 3), Status::kOk);
  EXPECT_EQ(wd.misses(), 0u);
  EXPECT_EQ(wd.kicks(), 1u);
  // A saturated deadline can still be missed only by the end of time.
  wd.arm(now, 1000);
  EXPECT_FALSE(wd.expired(std::numeric_limits<std::uint64_t>::max()));
}

TEST(Watchdog, ExpiryPolling) {
  Watchdog wd;
  wd.arm(0, 10);
  EXPECT_FALSE(wd.expired(10));
  EXPECT_TRUE(wd.expired(11));
  wd.disarm();
  EXPECT_FALSE(wd.expired(100));
}

// Property sweep: every fault type is reversible at every targeted bit.
class FaultReversibility : public ::testing::TestWithParam<int> {};

TEST_P(FaultReversibility, InjectRestoreRoundTrip) {
  dl::Model m = model();
  const auto h = m.provenance_hash();
  FaultInjector inj{static_cast<std::uint64_t>(GetParam())};
  for (const FaultType t :
       {FaultType::kBitFlip, FaultType::kStuckZero, FaultType::kStuckLarge}) {
    const auto rec = inj.inject(m, t);
    FaultInjector::restore(m, rec);
    EXPECT_EQ(m.provenance_hash(), h) << to_string(t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultReversibility,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sx::safety
