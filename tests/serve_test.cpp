// Serving front-end acceptance gates: trace byte-determinism, offline
// mixed-criticality admission, LO-only shedding under overload (zero HI
// misses, every shed audited), decision-stream identity against the
// offline batch path at every worker count, and telemetry-snapshot
// identity between a sliced (fleet-merged) replay and the single-process
// run. Every suite name starts with "Serve" so the serving-asan /
// serving-tsan test presets can slice the binary by name regex (sanitizer
// build dirs replace CTest labels with "static-analysis").
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "obs/snapshot.hpp"
#include "serve/ring.hpp"
#include "serve/server.hpp"
#include "serve/traffic.hpp"
#include "test_helpers.hpp"

namespace {

using sx::Status;
using namespace sx;  // NOLINT

core::PipelineConfig pipe_cfg(std::size_t workers) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  cfg.batch_workers = workers;
  // Pipeline wall-clock telemetry is not under test here (the serving
  // registry is logical-time only); disabling it keeps deploys cheap.
  cfg.enable_telemetry = false;
  return cfg;
}

std::vector<tensor::Tensor> input_pool(std::size_t n) {
  std::vector<tensor::Tensor> pool;
  pool.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pool.push_back(sx::testing::road_data().samples[i].input);
  return pool;
}

/// Two admitted streams: a HI hazard channel and a sheddable LO channel.
serve::ServerConfig base_cfg() {
  serve::ServerConfig cfg;
  cfg.streams = {
      serve::StreamSpec{.name = "hazard",
                        .criticality = trace::Criticality::kSil3,
                        .period = 40,
                        .deadline = 40,
                        .service_lo = 4,
                        .service_hi = 8},
      serve::StreamSpec{.name = "infotainment",
                        .criticality = trace::Criticality::kSil1,
                        .period = 8,
                        .deadline = 8,
                        .service_lo = 2},
  };
  cfg.batch_max = 4;
  cfg.batch_window = 4;
  cfg.dispatch_overhead = 1;
  cfg.queue_capacity = 64;
  return cfg;
}

serve::Request req(std::uint64_t seq, std::uint32_t stream,
                   std::uint32_t payload, std::uint64_t arrival) {
  return serve::Request{
      .seq = seq, .stream = stream, .payload = payload, .arrival = arrival};
}

serve::ArrivalTrace mixed_poisson_trace() {
  return serve::make_poisson_trace(
      {serve::PoissonStreamTraffic{.mean_gap = 50.0},
       serve::PoissonStreamTraffic{.mean_gap = 12.0}},
      serve::TrafficConfig{.horizon = 600, .payloads = 16, .seed = 7});
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

TEST(ServeTraffic, PoissonTraceIsByteDeterministic) {
  const auto a = mixed_poisson_trace();
  const auto b = mixed_poisson_trace();
  const std::string sa = serve::serialize_trace(a);
  EXPECT_EQ(sa, serve::serialize_trace(b));
  EXPECT_EQ(sa.rfind("schema sx-serving-trace/1\n", 0), 0u);
  ASSERT_FALSE(a.requests.empty());

  auto other = serve::make_poisson_trace(
      {serve::PoissonStreamTraffic{.mean_gap = 50.0},
       serve::PoissonStreamTraffic{.mean_gap = 12.0}},
      serve::TrafficConfig{.horizon = 600, .payloads = 16, .seed = 8});
  EXPECT_NE(sa, serve::serialize_trace(other));
}

TEST(ServeTraffic, TracesAreSortedAndSequenced) {
  for (const auto& trace :
       {mixed_poisson_trace(),
        serve::make_bursty_trace(
            {serve::BurstyStreamTraffic{.burst_len = 1, .gap_between = 40},
             serve::BurstyStreamTraffic{.burst_len = 6,
                                        .gap_in_burst = 2,
                                        .gap_between = 64,
                                        .jitter = 3}},
            serve::TrafficConfig{.horizon = 512, .payloads = 8, .seed = 3})}) {
    ASSERT_FALSE(trace.requests.empty());
    for (std::size_t i = 0; i < trace.requests.size(); ++i) {
      EXPECT_EQ(trace.requests[i].seq, i);
      EXPECT_LT(trace.requests[i].arrival, trace.horizon);
      if (i > 0) {
        EXPECT_GE(trace.requests[i].arrival, trace.requests[i - 1].arrival);
      }
    }
  }
}

TEST(ServeTraffic, BurstyTraceIsByteDeterministic) {
  const auto mk = [] {
    return serve::make_bursty_trace(
        {serve::BurstyStreamTraffic{.burst_len = 4,
                                    .gap_in_burst = 1,
                                    .gap_between = 96,
                                    .jitter = 5}},
        serve::TrafficConfig{.horizon = 1024, .payloads = 16, .seed = 11});
  };
  EXPECT_EQ(serve::serialize_trace(mk()), serve::serialize_trace(mk()));
}

TEST(ServeTraffic, SplitAtGapsPreservesRequestsAndCutsAtIdle) {
  const auto trace = serve::make_bursty_trace(
      {serve::BurstyStreamTraffic{.burst_len = 1, .gap_between = 256},
       serve::BurstyStreamTraffic{.burst_len = 6,
                                  .gap_in_burst = 2,
                                  .gap_between = 256}},
      serve::TrafficConfig{.horizon = 2048, .payloads = 16, .seed = 5});
  const auto slices = serve::split_at_gaps(trace, 128);
  ASSERT_GT(slices.size(), 1u);

  std::vector<serve::Request> glued;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    ASSERT_FALSE(slices[s].requests.empty());
    EXPECT_EQ(slices[s].horizon, trace.horizon);
    if (s > 0) {
      // Boundary gap: every cut sits on an inter-arrival gap >= min_gap.
      EXPECT_GE(slices[s].requests.front().arrival,
                slices[s - 1].requests.back().arrival + 128);
    }
    glued.insert(glued.end(), slices[s].requests.begin(),
                 slices[s].requests.end());
  }
  ASSERT_EQ(glued.size(), trace.requests.size());
  for (std::size_t i = 0; i < glued.size(); ++i) {
    EXPECT_EQ(glued[i].seq, trace.requests[i].seq);
    EXPECT_EQ(glued[i].arrival, trace.requests[i].arrival);
    EXPECT_EQ(glued[i].stream, trace.requests[i].stream);
    EXPECT_EQ(glued[i].payload, trace.requests[i].payload);
  }
}

// ---------------------------------------------------------------------------
// Ingress ring
// ---------------------------------------------------------------------------

TEST(ServeRing, FifoOrderAndCapacityBounds) {
  serve::BoundedRing<std::uint64_t> ring(5);  // rounds up to 8
  EXPECT_EQ(ring.capacity(), 8u);
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v));
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full: refuses, never overwrites
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(ServeRing, ConcurrentProducersDeliverExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 1024;
  serve::BoundedRing<std::uint64_t> ring(256);

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value = p * 1'000'000 + i;
        while (!ring.try_push(value)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint64_t> last_seen(kProducers, 0);
  std::vector<std::uint64_t> counts(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const std::size_t p = v / 1'000'000;
    const std::uint64_t i = v % 1'000'000;
    ASSERT_LT(p, kProducers);
    if (counts[p] > 0) {
      EXPECT_GT(i, last_seen[p]);  // per-producer FIFO
    }
    last_seen[p] = i;
    ++counts[p];
    ++received;
  }
  for (std::thread& t : producers) t.join();
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(counts[p], kPerProducer);
  std::uint64_t v = 0;
  EXPECT_FALSE(ring.try_pop(v));
}

// ---------------------------------------------------------------------------
// Offline admission
// ---------------------------------------------------------------------------

TEST(ServeAdmission, CertifiesFeasibleStreamsWithBounds) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::Server server{pipe, base_cfg()};
  const serve::AdmissionReport& adm = server.admission();
  EXPECT_TRUE(adm.hi_schedulable);
  ASSERT_EQ(adm.best_effort.size(), 2u);
  EXPECT_FALSE(adm.best_effort[0]);
  EXPECT_FALSE(adm.best_effort[1]);
  ASSERT_TRUE(adm.mc.lo[0].has_value());
  ASSERT_TRUE(adm.mc.hi[0].has_value());
  ASSERT_TRUE(adm.mc.transition[0].has_value());
  EXPECT_LE(*adm.mc.transition[0], 40u);
  EXPECT_GT(adm.utilization_lo, 0.0);
  // HI-mode utilization counts only HI streams (at their certified hi
  // budgets) — LO work is dropped after a criticality switch.
  EXPECT_GT(adm.utilization_hi, 0.0);

  // The audit chain starts with the deploy record plus one admission
  // verdict per stream.
  ASSERT_GE(server.audit().size(), 3u);
  EXPECT_EQ(server.audit().entry(0).action, "deploy");
  EXPECT_EQ(server.audit().entry(1).action, "admit");
  EXPECT_NE(server.audit().entry(1).payload.find("class=HI"),
            std::string::npos);
  EXPECT_NE(server.audit().entry(2).payload.find("class=LO"),
            std::string::npos);
}

TEST(ServeAdmission, HiStreamFailingAmcRtbRefusesToDeploy) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(1)};
  serve::ServerConfig cfg;
  cfg.streams = {serve::StreamSpec{.name = "hazard",
                                   .criticality = trace::Criticality::kSil3,
                                   .period = 40,
                                   .deadline = 40,
                                   .service_lo = 50,
                                   .service_hi = 50}};
  EXPECT_THROW(serve::Server(pipe, cfg), std::invalid_argument);
}

TEST(ServeAdmission, LoStreamFailingAdmissionDeploysBestEffort) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(1)};
  serve::ServerConfig cfg = base_cfg();
  // Lowest priority (largest deadline) and infeasible under HI
  // interference: R = 190 + 4*ceil(R/40) converges at 214 > 200.
  cfg.streams[1] = serve::StreamSpec{.name = "bulk",
                                     .criticality = trace::Criticality::kQM,
                                     .period = 400,
                                     .deadline = 200,
                                     .service_lo = 190};
  serve::Server server{pipe, cfg};
  EXPECT_TRUE(server.admission().hi_schedulable);
  EXPECT_FALSE(server.admission().best_effort[0]);
  EXPECT_TRUE(server.admission().best_effort[1]);
  EXPECT_NE(serve::render_serving_block(server).find("best_effort=1"),
            std::string::npos);
}

TEST(ServeAdmission, MalformedConfigurationsRefuse) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(1)};
  serve::ServerConfig cfg = base_cfg();
  cfg.streams.clear();
  EXPECT_THROW(serve::Server(pipe, cfg), std::invalid_argument);

  cfg = base_cfg();
  cfg.streams[0].period = 0;
  EXPECT_THROW(serve::Server(pipe, cfg), std::invalid_argument);

  cfg = base_cfg();
  cfg.batch_max = 0;
  EXPECT_THROW(serve::Server(pipe, cfg), std::invalid_argument);

  // A pipeline deployed without the batch executor cannot serve.
  core::CertifiablePipeline serial{sx::testing::trained_mlp(),
                                   sx::testing::road_data(), pipe_cfg(0)};
  EXPECT_THROW(serve::Server(serial, base_cfg()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Window formation and bounded state
// ---------------------------------------------------------------------------

TEST(ServeWindow, ClosesOnFillAndOnTimeout) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::ServerConfig cfg = base_cfg();
  cfg.streams[1].service_lo = 1;  // all five fit their deadlines
  serve::Server server{pipe, cfg};
  const auto pool = input_pool(16);

  // Four back-to-back LO arrivals fill a batch_max=4 window; one straggler
  // far later closes its window on timeout.
  serve::ArrivalTrace trace;
  trace.horizon = 1024;
  trace.requests = {req(0, 1, 0, 0), req(1, 1, 1, 0), req(2, 1, 2, 1),
                    req(3, 1, 3, 1), req(4, 1, 4, 500)};
  server.run_trace(trace, pool);

  EXPECT_EQ(server.served_count(), 5u);
  EXPECT_EQ(server.shed_count(), 0u);
  const auto snap = obs::RegistrySnapshot::capture(server.telemetry());
  EXPECT_EQ(snap.counter_value("sx_serve_windows_total"), 2u);
  EXPECT_EQ(snap.counter_value("sx_serve_window_full_total"), 1u);
  EXPECT_EQ(snap.counter_value("sx_serve_window_timeout_total"), 1u);
  EXPECT_EQ(snap.counter_value("sx_serve_requests_total"), 5u);
}

TEST(ServeWindow, IngressOverrunCountsQueueRejections) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::ServerConfig cfg = base_cfg();
  cfg.queue_capacity = 8;
  // Keep the survivors servable: a slow declared rate with a deadline to
  // match (the constrained-deadline model requires deadline <= period).
  cfg.streams[1].period = 4096;
  cfg.streams[1].deadline = 4096;
  serve::Server server{pipe, cfg};
  const auto pool = input_pool(16);

  serve::ArrivalTrace trace;
  trace.horizon = 16;
  for (std::uint64_t i = 0; i < 64; ++i)
    trace.requests.push_back(req(i, 1, static_cast<std::uint32_t>(i % 16), 0));
  server.run_trace(trace, pool);

  // 64 simultaneous arrivals against an 8-slot ring: 8 survive, the rest
  // are refused at ingress — never silently dropped, always counted.
  EXPECT_EQ(server.requests(), 64u);
  EXPECT_EQ(server.queue_rejections(), 56u);
  EXPECT_EQ(server.served_count() + server.shed_count(), 8u);
}

TEST(ServeWindow, SaturatesNearUint64MaxInsteadOfWrapping) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(1)};
  serve::ServerConfig cfg;
  cfg.streams = {serve::StreamSpec{
      .name = "late",
      .criticality = trace::Criticality::kSil3,
      .period = std::numeric_limits<std::uint64_t>::max() - 5,
      .deadline = std::numeric_limits<std::uint64_t>::max() - 5,
      .service_lo = 10,
      .service_hi = 10}};
  serve::Server server{pipe, cfg};
  const auto pool = input_pool(1);

  serve::ArrivalTrace trace;
  trace.horizon = std::numeric_limits<std::uint64_t>::max();
  trace.requests = {
      req(0, 0, 0, std::numeric_limits<std::uint64_t>::max() - 100)};
  server.run_trace(trace, pool);

  // Arrival + deadline and window close + service all saturate instead of
  // wrapping to small values; a wrap would report a spurious HI miss.
  EXPECT_EQ(server.served_count(), 1u);
  EXPECT_EQ(server.hi_deadline_misses(), 0u);
  EXPECT_EQ(server.shed_count(), 0u);
}

// ---------------------------------------------------------------------------
// Overload: Simplex fallback sheds LO only, every shed is audited
// ---------------------------------------------------------------------------

serve::ServerConfig overload_cfg() {
  serve::ServerConfig cfg = base_cfg();
  cfg.streams[0].period = 100;
  cfg.streams[0].deadline = 100;
  return cfg;
}

serve::ArrivalTrace overload_trace() {
  // A conforming HI stream (one request per declared period) against a LO
  // stream bursting far past its declared rate: 30 back-to-back requests
  // of service 2 against a relative deadline of 8.
  return serve::make_bursty_trace(
      {serve::BurstyStreamTraffic{.burst_len = 1, .gap_between = 100},
       serve::BurstyStreamTraffic{.burst_len = 30,
                                  .gap_in_burst = 1,
                                  .gap_between = 500}},
      serve::TrafficConfig{.horizon = 1000, .payloads = 16, .seed = 9});
}

TEST(ServeOverload, ShedsOnlyLoTrafficAndAuditsEveryShed) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::Server server{pipe, overload_cfg()};
  server.run_trace(overload_trace(), input_pool(16));

  // Overload bites: LO requests are shed, HI never is, and with the HI
  // stream conforming to its declared period the admission analysis keeps
  // every HI deadline.
  EXPECT_GT(server.shed_count(), 0u);
  EXPECT_EQ(server.hi_deadline_misses(), 0u);
  EXPECT_GE(server.mode_switches(), 1u);

  const auto snap = obs::RegistrySnapshot::capture(server.telemetry());
  EXPECT_EQ(snap.counter_value("sx_serve_stream_hazard_shed"), 0u);
  EXPECT_EQ(snap.counter_value("sx_serve_stream_infotainment_shed"),
            server.shed_count());
  EXPECT_EQ(snap.counter_value("sx_serve_hi_deadline_miss_total"), 0u);

  // Every shed is an audit entry; the shed counter and the audit log agree
  // exactly (no silent drops), and the mode switch is on the record.
  std::uint64_t shed_entries = 0;
  bool saw_overload_switch = false;
  for (const trace::AuditEntry& e : server.audit().entries()) {
    if (e.action == "shed") ++shed_entries;
    if (e.action == "mode-switch" &&
        e.payload.find("to=overload") != std::string::npos)
      saw_overload_switch = true;
  }
  EXPECT_EQ(shed_entries, server.shed_count());
  EXPECT_TRUE(saw_overload_switch);

  // Accounting closes: everything submitted is served, shed, or refused.
  EXPECT_EQ(server.served_count() + server.shed_count() +
                server.queue_rejections(),
            server.requests());
  EXPECT_NE(serve::render_serving_block(server).find("status OK"),
            std::string::npos);
}

TEST(ServeOverload, OverloadEpisodeEndsAtIdleInstant) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::Server server{pipe, overload_cfg()};
  // The trace spans two LO bursts with a long idle gap between them; the
  // Simplex fallback must hand back to normal mode at the quiescent point,
  // then re-enter overload on the second burst.
  server.run_trace(overload_trace(), input_pool(16));
  EXPECT_GE(server.mode_switches(), 2u);
  bool saw_normal_switch = false;
  for (const trace::AuditEntry& e : server.audit().entries())
    if (e.action == "mode-switch" &&
        e.payload.find("to=normal") != std::string::npos)
      saw_normal_switch = true;
  EXPECT_TRUE(saw_normal_switch);
}

TEST(ServeOverload, NonConformingHiTrafficIsServedAndCountedNeverShed) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(1)};
  serve::ServerConfig cfg;
  cfg.streams = {serve::StreamSpec{.name = "hazard",
                                   .criticality = trace::Criticality::kSil3,
                                   .period = 100,
                                   .deadline = 50,
                                   .service_lo = 20,
                                   .service_hi = 20}};
  cfg.batch_max = 8;
  cfg.batch_window = 4;
  serve::Server server{pipe, cfg};

  // Five back-to-back arrivals violate the declared period=100. The server
  // must not shed them (HI), must serve them all, and must surface the
  // deadline misses through the per-stream watchdog — silent dropping of
  // high-SIL work is not a failure mode this server can exhibit.
  serve::ArrivalTrace trace;
  trace.horizon = 16;
  for (std::uint64_t i = 0; i < 5; ++i)
    trace.requests.push_back(req(i, 0, static_cast<std::uint32_t>(i), i));
  server.run_trace(trace, input_pool(8));

  EXPECT_EQ(server.served_count(), 5u);
  EXPECT_EQ(server.shed_count(), 0u);
  EXPECT_GT(server.hi_deadline_misses(), 0u);
  const auto snap = obs::RegistrySnapshot::capture(server.telemetry());
  EXPECT_GT(snap.counter_value("sx_serve_hi_projected_miss_total"), 0u);
  EXPECT_NE(serve::render_serving_block(server).find("status HI-MISS"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Decision-stream identity: serving == offline batch, at any worker count
// ---------------------------------------------------------------------------

TEST(ServeIdentity, DecisionStreamMatchesOfflineBatchAtEveryWorkerCount) {
  const auto trace = mixed_poisson_trace();
  const auto pool = input_pool(16);

  std::vector<std::string> digests;
  std::vector<std::string> snapshots;
  std::vector<std::vector<serve::ServedRecord>> runs;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                   sx::testing::road_data(),
                                   pipe_cfg(workers)};
    serve::Server server{pipe, base_cfg()};
    server.run_trace(trace, pool);
    EXPECT_GT(server.served_count(), 0u);
    digests.push_back(server.decision_digest());
    snapshots.push_back(
        obs::RegistrySnapshot::capture(server.telemetry()).serialize());
    runs.push_back(server.served());
  }
  // Worker count is invisible: digest, telemetry bytes, full record stream.
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  ASSERT_EQ(runs[0].size(), runs[1].size());
  ASSERT_EQ(runs[0].size(), runs[2].size());

  // Offline replay: one infer_batch over the served inputs in served order
  // on a *fresh* identical pipeline reproduces every Decision field
  // bitwise — including the audit sequence numbers, because the batch path
  // writes exactly one chained entry per item regardless of windowing.
  core::CertifiablePipeline offline{sx::testing::trained_mlp(),
                                    sx::testing::road_data(), pipe_cfg(2)};
  std::vector<tensor::Tensor> inputs;
  inputs.reserve(runs[0].size());
  for (const serve::ServedRecord& rec : runs[0])
    inputs.push_back(pool[rec.request.payload]);
  const std::vector<core::Decision> offline_decisions =
      offline.infer_batch(inputs, /*logical_time=*/0);
  ASSERT_EQ(offline_decisions.size(), runs[0].size());
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    for (const auto& run : runs) {
      const core::Decision& d = run[i].decision;
      const core::Decision& o = offline_decisions[i];
      EXPECT_EQ(d.status, o.status);
      EXPECT_EQ(d.predicted_class, o.predicted_class);
      EXPECT_EQ(std::bit_cast<std::uint32_t>(d.confidence),
                std::bit_cast<std::uint32_t>(o.confidence));
      EXPECT_EQ(d.degraded, o.degraded);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(d.supervisor_score),
                std::bit_cast<std::uint64_t>(o.supervisor_score));
      EXPECT_EQ(d.audit_sequence, o.audit_sequence);
    }
  }
}

TEST(ServeIdentity, RepeatedRunsAreByteIdentical) {
  const auto trace = overload_trace();
  const auto pool = input_pool(16);
  const auto once = [&] {
    core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                   sx::testing::road_data(), pipe_cfg(2)};
    serve::Server server{pipe, overload_cfg()};
    server.run_trace(trace, pool);
    return serve::render_serving_block(server);
  };
  EXPECT_EQ(once(), once());
}

// ---------------------------------------------------------------------------
// Fleet merge plane: sliced replay telemetry == single-process bytes
// ---------------------------------------------------------------------------

TEST(ServeFleet, SliceMergedSnapshotBytesEqualSingleProcessRun) {
  serve::ServerConfig cfg;
  cfg.streams = {serve::StreamSpec{.name = "hazard",
                                   .criticality = trace::Criticality::kSil3,
                                   .period = 40,
                                   .deadline = 40,
                                   .service_lo = 2,
                                   .service_hi = 2},
                 serve::StreamSpec{.name = "infotainment",
                                   .criticality = trace::Criticality::kSil1,
                                   .period = 16,
                                   .deadline = 16,
                                   .service_lo = 1}};
  cfg.batch_max = 4;
  cfg.batch_window = 8;
  const auto trace = serve::make_bursty_trace(
      {serve::BurstyStreamTraffic{.burst_len = 1, .gap_between = 256},
       serve::BurstyStreamTraffic{.burst_len = 6,
                                  .gap_in_burst = 2,
                                  .gap_between = 256}},
      serve::TrafficConfig{.horizon = 2048, .payloads = 16, .seed = 5});
  const auto pool = input_pool(16);

  core::CertifiablePipeline full_pipe{sx::testing::trained_mlp(),
                                      sx::testing::road_data(), pipe_cfg(2)};
  serve::Server full{full_pipe, cfg};
  full.run_trace(trace, pool);
  EXPECT_EQ(full.shed_count(), 0u);
  const auto full_snap = obs::RegistrySnapshot::capture(full.telemetry());

  // Replay each idle-delimited slice in a fresh server + pipeline (the
  // fleet deployment pattern: one process per slice) and merge the
  // telemetry snapshots in slice order.
  const auto slices = serve::split_at_gaps(trace, 128);
  ASSERT_GT(slices.size(), 1u);
  std::vector<obs::RegistrySnapshot> parts;
  for (const serve::ArrivalTrace& slice : slices) {
    core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                   sx::testing::road_data(), pipe_cfg(2)};
    serve::Server server{pipe, cfg};
    server.run_trace(slice, pool);
    parts.push_back(obs::RegistrySnapshot::capture(server.telemetry()));
  }
  obs::RegistrySnapshot merged;
  ASSERT_EQ(obs::RegistrySnapshot::merge(parts, merged), Status::kOk);
  EXPECT_EQ(merged.serialize(), full_snap.serialize());

  // And the merged bytes round-trip through the persistence format the
  // fleet plane ships between processes.
  obs::RegistrySnapshot reparsed;
  ASSERT_TRUE(obs::RegistrySnapshot::parse(merged.serialize(), reparsed));
  EXPECT_EQ(reparsed.serialize(), full_snap.serialize());
}

// ---------------------------------------------------------------------------
// Evidence plumbing
// ---------------------------------------------------------------------------

TEST(ServeEvidence, RenderedBlockCarriesVerdictAndDigest) {
  core::CertifiablePipeline pipe{sx::testing::trained_mlp(),
                                 sx::testing::road_data(), pipe_cfg(2)};
  serve::Server server{pipe, base_cfg()};
  server.run_trace(mixed_poisson_trace(), input_pool(16));

  const std::string block = serve::render_serving_block(server);
  EXPECT_EQ(block.rfind("schema sx-serving-evidence/1\n", 0), 0u);
  EXPECT_NE(block.find("admission hi_schedulable=1"), std::string::npos);
  EXPECT_NE(block.find("stream name=hazard"), std::string::npos);
  EXPECT_NE(block.find("decision_digest " + server.decision_digest()),
            std::string::npos);
  EXPECT_NE(block.find("audit_head "), std::string::npos);

  const std::string prose = serve::summary(server);
  EXPECT_NE(prose.find("Serving front-end"), std::string::npos);

  const core::EvidenceItem item = core::make_serving_evidence(prose, block);
  EXPECT_NE(item.body.find("# BEGIN SX_SERVING_EVIDENCE"), std::string::npos);
  EXPECT_NE(item.body.find("# END SX_SERVING_EVIDENCE"), std::string::npos);
  EXPECT_NE(item.body.find("schema sx-serving-evidence/1"),
            std::string::npos);
}

}  // namespace
