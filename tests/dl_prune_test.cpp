#include <gtest/gtest.h>

#include "dl/prune.hpp"
#include "dl/quant.hpp"
#include "dl/train.hpp"
#include "test_helpers.hpp"
#include "trace/safety_case.hpp"

namespace sx::dl {
namespace {

TEST(Prune, SparsityMatchesRequestedFraction) {
  Model m = sx::testing::trained_mlp();
  const PruneReport rep = prune_by_magnitude(m, 0.5);
  EXPECT_GT(rep.total_weights, 0u);
  EXPECT_NEAR(rep.sparsity(), 0.5, 0.02);
  EXPECT_NEAR(measured_sparsity(m), 0.5, 0.02);
}

TEST(Prune, ZeroFractionIsNoOp) {
  Model m = sx::testing::trained_mlp();
  const auto h = m.provenance_hash();
  const PruneReport rep = prune_by_magnitude(m, 0.0);
  EXPECT_EQ(rep.pruned_weights, 0u);
  EXPECT_EQ(m.provenance_hash(), h);
}

TEST(Prune, FullFractionZeroesEverything) {
  Model m = sx::testing::trained_mlp();
  prune_by_magnitude(m, 1.0);
  EXPECT_NEAR(measured_sparsity(m), 1.0, 1e-9);
}

TEST(Prune, ModerateSparsityPreservesAccuracy) {
  Model m = sx::testing::trained_mlp();
  const double before = Trainer::evaluate_accuracy(m, sx::testing::road_data());
  prune_by_magnitude(m, 0.3);
  const double after = Trainer::evaluate_accuracy(m, sx::testing::road_data());
  EXPECT_GT(after, before - 0.1)
      << "30% magnitude pruning should cost little accuracy";
}

TEST(Prune, AggressiveSparsityDegrades) {
  Model m = sx::testing::trained_mlp();
  prune_by_magnitude(m, 0.98);
  const double after = Trainer::evaluate_accuracy(m, sx::testing::road_data());
  EXPECT_LT(after, 0.9) << "98% pruning should visibly hurt";
}

TEST(Prune, RejectsBadFraction) {
  Model m = sx::testing::trained_mlp();
  EXPECT_THROW(prune_by_magnitude(m, -0.1), std::invalid_argument);
  EXPECT_THROW(prune_by_magnitude(m, 1.1), std::invalid_argument);
}

TEST(Prune, WorksOnConvModels) {
  Model m = sx::testing::trained_cnn();
  const PruneReport rep = prune_by_magnitude(m, 0.4);
  EXPECT_NEAR(rep.sparsity(), 0.4, 0.02);
}

TEST(Prune, ComposesWithQuantization) {
  Model m = sx::testing::trained_mlp();
  prune_by_magnitude(m, 0.3);
  QuantizedModel qm = QuantizedModel::quantize(m, sx::testing::road_data());
  const double qacc = qm.evaluate_accuracy(sx::testing::road_data());
  EXPECT_GT(qacc, 0.7) << "pruned+quantized model should remain usable";
}

// -------------------------------------------------- safety case DOT export

TEST(SafetyCaseDot, RendersValidDigraph) {
  trace::SafetyCase sc;
  const auto root = sc.set_root_goal("G0", "safe");
  const auto s = sc.add_strategy(root, "S1", "by \"pillar\"");
  sc.add_solution(s, "Sn1", "evidence");
  const std::string dot = sc.to_dot();
  EXPECT_NE(dot.find("digraph safety_case"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=parallelogram"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  // Quotes in labels are escaped.
  EXPECT_NE(dot.find("\\\"pillar\\\""), std::string::npos);
}

}  // namespace
}  // namespace sx::dl
