// Cross-module property suites: randomized sweeps over the load-bearing
// invariants that individual unit tests check only pointwise.
#include <gtest/gtest.h>

#include <bit>
#include <iomanip>
#include <sstream>

#include "dl/batch.hpp"
#include "dl/dataset.hpp"
#include "dl/engine.hpp"
#include "dl/model.hpp"
#include "dl/qplan.hpp"
#include "dl/quant.hpp"
#include "verify/range.hpp"
#include "platform/cache.hpp"
#include "supervise/conformal.hpp"
#include "test_helpers.hpp"
#include "timing/evt.hpp"
#include "trace/audit.hpp"
#include "util/rng.hpp"

namespace sx {
namespace {

using tensor::Shape;
using tensor::Tensor;

// ----------------------------------------------------- model round trips

/// Random small architectures serialize/deserialize bit-exactly and agree
/// with the original on random inputs.
class ModelRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelRoundTrip, SaveLoadIsIdentity) {
  util::Xoshiro256 rng{GetParam()};
  dl::ModelBuilder b{Shape::chw(1, 8, 8)};
  // Randomized architecture from a safe menu.
  b.conv2d(1 + rng.below(3), 3, 1, 1);
  if (rng.uniform() < 0.5) b.relu();
  if (rng.uniform() < 0.5) b.maxpool(2);
  b.flatten();
  b.dense(4 + rng.below(12));
  if (rng.uniform() < 0.5) b.sigmoid();
  b.dense(3);
  dl::Model m = b.build(GetParam() * 7 + 1);

  std::stringstream ss;
  m.save(ss);
  dl::Model loaded = dl::Model::load(ss);
  ASSERT_EQ(loaded.provenance_hash(), m.provenance_hash());

  Tensor in{Shape::chw(1, 8, 8)};
  in.init_uniform(rng, 0.0f, 1.0f);
  const Tensor a = m.forward(in);
  const Tensor c = loaded.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), c.at(i));
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModelRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 11));

// -------------------------------------------------- engine/model equality

/// StaticEngine output equals offline forward for random models & inputs.
class EngineAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineAgreement, StaticMatchesOfflineOnRandomModels) {
  util::Xoshiro256 rng{GetParam() * 13 + 5};
  dl::ModelBuilder b{Shape::vec(6 + rng.below(10))};
  b.dense(4 + rng.below(8)).relu().dense(2 + rng.below(4));
  dl::Model m = b.build(GetParam());
  dl::StaticEngine engine{m};
  std::vector<float> out(m.output_shape().size());
  for (int t = 0; t < 5; ++t) {
    Tensor in{m.input_shape()};
    in.init_uniform(rng, -2.0f, 2.0f);
    ASSERT_EQ(engine.run(in.view(), out), Status::kOk);
    const Tensor ref = m.forward(in);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], ref.at(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineAgreement,
                         ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------------------- audit fuzz

/// Any single-field tampering of any entry is detected.
class AuditFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuditFuzz, AnyTamperingDetected) {
  util::Xoshiro256 rng{GetParam()};
  trace::AuditLog log;
  const std::size_t n = 5 + rng.below(20);
  for (std::size_t i = 0; i < n; ++i)
    log.append(i, "actor" + std::to_string(rng.below(3)), "act",
               "payload" + std::to_string(rng()));
  ASSERT_EQ(log.verify(), Status::kOk);
  log.tamper_payload_for_test(rng.below(n),
                              "tampered" + std::to_string(rng()));
  EXPECT_EQ(log.verify(), Status::kIntegrityFault);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// -------------------------------------------------------- conformal sweep

/// Coverage >= nominal - tolerance across alphas and split seeds.
class ConformalSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ConformalSweep, CoverageHolds) {
  const double alpha = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const dl::Dataset ds = dl::make_road_scene(300, seed);
  dl::Dataset calib, test;
  dl::split(ds, 0.5, calib, test);
  const supervise::ConformalClassifier cc{sx::testing::trained_mlp(), calib,
                                          alpha};
  const auto rep = cc.evaluate(sx::testing::trained_mlp(), test);
  EXPECT_GE(rep.empirical_coverage, 1.0 - alpha - 0.08)
      << "alpha=" << alpha << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConformalSweep,
                         ::testing::Combine(::testing::Values(0.1, 0.05),
                                            ::testing::Values<std::uint64_t>(
                                                21, 22, 23)));

// -------------------------------------------------------- quantization

/// Quantized argmax agreement with float stays high across granularities
/// and calibration seeds.
class QuantAgreement
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>> {};

TEST_P(QuantAgreement, ArgmaxMostlyAgrees) {
  const bool per_channel = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const dl::Dataset calib = dl::make_road_scene(64, seed);
  dl::QuantizedModel qm = dl::QuantizedModel::quantize(
      sx::testing::trained_mlp(), calib,
      dl::QuantConfig{per_channel ? dl::WeightGranularity::kPerChannel
                                  : dl::WeightGranularity::kPerTensor});
  const auto& test = sx::testing::road_data();
  std::vector<float> q(qm.output_shape().size());
  std::size_t agree = 0;
  const std::size_t n = 60;
  for (std::size_t i = 0; i < n; ++i) {
    const Tensor f = sx::testing::trained_mlp().forward(test.samples[i].input);
    ASSERT_EQ(qm.run(test.samples[i].input.view(), q), Status::kOk);
    std::size_t fa = 0, qa = 0;
    for (std::size_t k = 1; k < q.size(); ++k) {
      if (f.at(k) > f.at(fa)) fa = k;
      if (q[k] > q[qa]) qa = k;
    }
    agree += fa == qa;
  }
  EXPECT_GE(agree, n * 85 / 100);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantAgreement,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values<std::uint64_t>(31, 32, 33)));

// ------------------------------------------------------------ cache LRU

/// For any access sequence, an LRU cache with more ways never misses more
/// than one with fewer ways (inclusion property of LRU).
class LruInclusion : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruInclusion, MoreWaysNeverWorse) {
  util::Xoshiro256 rng{GetParam()};
  std::vector<std::uint64_t> addrs;
  for (int i = 0; i < 2000; ++i)
    addrs.push_back(rng.below(256) * 64);  // 256 lines
  auto misses = [&](std::size_t ways) {
    platform::CacheConfig cfg{.line_bytes = 64,
                              .sets = 16,
                              .ways = ways,
                              .placement = platform::Placement::kModulo,
                              .replacement = platform::Replacement::kLru};
    platform::Cache c{cfg, 1};
    for (auto a : addrs) c.access(a);
    return c.misses();
  };
  EXPECT_GE(misses(1), misses(2));
  EXPECT_GE(misses(2), misses(4));
  EXPECT_GE(misses(4), misses(8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruInclusion,
                         ::testing::Range<std::uint64_t>(1, 9));

// --------------------------------------------------------------- Gumbel

/// pWCET bounds scale coherently: larger block sizes and smaller
/// exceedance probabilities never shrink the bound on the same data.
class GumbelCoherence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GumbelCoherence, BoundsOrdered) {
  util::Xoshiro256 rng{GetParam()};
  std::vector<double> xs(3000);
  for (auto& x : xs) x = 1000.0 + std::fabs(rng.gaussian(0.0, 40.0));
  const auto fit = timing::fit_gumbel(xs, 20);
  double prev = 0.0;
  for (double p : {1e-3, 1e-5, 1e-7, 1e-9, 1e-11}) {
    const double b = timing::pwcet(fit, p);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GumbelCoherence,
                         ::testing::Range<std::uint64_t>(1, 9));

// ----------------------------------- kernel-mode x worker-count identity

/// Hexfloat rendering of the first bitwise divergence between two logit
/// streams — the diff an assessor needs to audit an identity failure.
std::string first_diff_hexfloat(std::span<const float> a,
                                std::span<const float> b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) ==
        std::bit_cast<std::uint32_t>(b[i]))
      continue;
    std::ostringstream os;
    os << "first divergence at element " << i << ": " << std::hexfloat
       << a[i] << " vs " << b[i];
    return os.str();
  }
  return "streams identical";
}

/// Random small CNN over the digit input geometry, from a safe menu.
dl::Model random_digit_cnn(std::uint64_t seed) {
  util::Xoshiro256 rng{seed * 31 + 7};
  dl::ModelBuilder b{Shape::chw(1, dl::kDigitSide, dl::kDigitSide)};
  b.conv2d(2 + rng.below(5), 3, 1, 1).relu();
  if (rng.uniform() < 0.5) b.maxpool(2);
  b.flatten();
  b.dense(8 + rng.below(17)).relu();
  b.dense(dl::kDigitClasses);
  return b.build(seed);
}

/// The full float decision stream — every kernel mode crossed with every
/// worker count — is bitwise identical to the reference single-worker
/// path, over randomized architectures. This is the per-cell identity
/// claim of the scenario sweep, asserted at the engine layer.
class CrossModeIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossModeIdentity, FloatBatchBitsMatchReferenceAcrossModesAndWorkers) {
  const std::uint64_t seed = GetParam();
  const dl::Model m = random_digit_cnn(seed);
  const dl::Dataset ds = dl::make_digits(23, seed * 5 + 3);
  const std::size_t n = ds.samples.size();
  const std::size_t in_size = ds.input_shape.size();
  const std::size_t out_size = m.output_shape().size();
  std::vector<float> flat(n * in_size);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = ds.samples[i].input.data();
    std::copy(src.begin(), src.end(), flat.begin() + i * in_size);
  }

  dl::BatchRunner anchor{
      m, {.workers = 1, .kernels = dl::KernelMode::kReference}};
  std::vector<float> ref(n * out_size);
  std::vector<Status> st(n);
  ASSERT_EQ(anchor.run(flat, ref, st), Status::kOk);

  for (const dl::KernelMode mode :
       {dl::KernelMode::kReference, dl::KernelMode::kBlocked,
        dl::KernelMode::kPacked}) {
    for (const std::size_t workers : {1u, 4u}) {
      dl::BatchRunner runner{m, {.workers = workers, .kernels = mode}};
      std::vector<float> out(n * out_size, -1.0f);
      ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
      const bool identical =
          std::equal(out.begin(), out.end(), ref.begin(),
                     [](float x, float y) {
                       return std::bit_cast<std::uint32_t>(x) ==
                              std::bit_cast<std::uint32_t>(y);
                     });
      EXPECT_TRUE(identical)
          << "seed " << seed << " mode " << static_cast<int>(mode) << " x "
          << workers << " workers: " << first_diff_hexfloat(out, ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModeIdentity,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Same cross for the int8 backend: the quantized batch path must be
/// bitwise identical across kernel modes AND worker counts (dequantized
/// logits compared as bits).
class QuantCrossModeIdentity
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantCrossModeIdentity, Int8BatchBitsMatchReferenceAcrossModes) {
  const std::uint64_t seed = GetParam();
  const dl::Model m = random_digit_cnn(seed + 100);
  const dl::Dataset calib = dl::make_digits(32, seed * 9 + 1);
  const dl::QuantizedModel qm = dl::QuantizedModel::quantize(m, calib);
  const dl::Dataset ds = dl::make_digits(19, seed * 7 + 5);
  const std::size_t n = ds.samples.size();
  const std::size_t in_size = ds.input_shape.size();
  const std::size_t out_size = qm.output_shape().size();
  std::vector<float> flat(n * in_size);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = ds.samples[i].input.data();
    std::copy(src.begin(), src.end(), flat.begin() + i * in_size);
  }

  dl::BatchRunner anchor{
      qm, {.workers = 1, .kernels = dl::KernelMode::kReference}};
  std::vector<float> ref(n * out_size);
  std::vector<Status> st(n);
  ASSERT_EQ(anchor.run(flat, ref, st), Status::kOk);

  for (const dl::KernelMode mode :
       {dl::KernelMode::kReference, dl::KernelMode::kBlocked,
        dl::KernelMode::kPacked}) {
    for (const std::size_t workers : {1u, 4u}) {
      dl::BatchRunner runner{qm, {.workers = workers, .kernels = mode}};
      std::vector<float> out(n * out_size, -1.0f);
      ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
      const bool identical =
          std::equal(out.begin(), out.end(), ref.begin(),
                     [](float x, float y) {
                       return std::bit_cast<std::uint32_t>(x) ==
                              std::bit_cast<std::uint32_t>(y);
                     });
      EXPECT_TRUE(identical)
          << "seed " << seed << " int8 mode " << static_cast<int>(mode)
          << " x " << workers << " workers: "
          << first_diff_hexfloat(out, ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantCrossModeIdentity,
                         ::testing::Range<std::uint64_t>(1, 7));

/// The IR pass pipeline (dce, fusion legality, liveness arena coloring)
/// must survive the verify gate's independent re-derivation on *every*
/// architecture, not just the golden ones: for random CNNs, both the
/// float and the int8 kernel plan are re-verified sound on all four axes
/// and the arena never exceeds the ping-pong worst case.
class IrSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrSoundness, RandomArchitecturePlansRederiveSound) {
  const std::uint64_t seed = GetParam();
  const dl::Model m = random_digit_cnn(seed + 300);

  const dl::KernelPlan plan{m, dl::KernelMode::kPacked};
  const verify::IrCheck c = verify::check_ir(m, plan);
  EXPECT_TRUE(c.checked);
  EXPECT_TRUE(c.passed()) << "seed " << seed;
  EXPECT_EQ(c.rederived_elems, c.planned_elems) << "seed " << seed;
  EXPECT_LE(plan.layout().total_elems, plan.layout().naive_elems);

  const dl::Dataset calib = dl::make_digits(16, seed * 11 + 3);
  const dl::QuantizedModel qm = dl::QuantizedModel::quantize(m, calib);
  const dl::QuantKernelPlan qplan{qm, dl::KernelMode::kPacked};
  const verify::IrCheck qc = verify::check_ir(qm, qplan);
  EXPECT_TRUE(qc.checked);
  EXPECT_TRUE(qc.passed()) << "seed " << seed;
  EXPECT_EQ(qc.rederived_elems, qc.planned_elems) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrSoundness,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace sx
