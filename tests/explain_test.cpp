#include <gtest/gtest.h>

#include "explain/explainer.hpp"
#include "explain/metrics.hpp"
#include "test_helpers.hpp"

namespace sx::explain {
namespace {

using tensor::Shape;
using tensor::Tensor;

dl::Model& cnn() {
  static dl::Model m = sx::testing::trained_cnn();
  return m;
}

/// First sample of each foreground class with a recorded signal region.
std::vector<const dl::Sample*> signal_samples(std::size_t n) {
  std::vector<const dl::Sample*> out;
  for (const auto& s : sx::testing::road_data().samples) {
    if (!s.signal) continue;
    // Only explain samples the model classifies correctly.
    const Tensor logits = cnn().forward(s.input);
    if (tensor::argmax(logits.view()) != s.label) continue;
    out.push_back(&s);
    if (out.size() >= n) break;
  }
  return out;
}

TEST(GradientSaliency, ShapeMatchesInput) {
  GradientSaliency g;
  const auto samples = signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const Tensor att = g.attribute(cnn(), samples[0]->input, samples[0]->label);
  EXPECT_EQ(att.shape(), samples[0]->input.shape());
}

TEST(GradientSaliency, NonNegativeByConstruction) {
  GradientSaliency g;
  const auto samples = signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const Tensor att = g.attribute(cnn(), samples[0]->input, samples[0]->label);
  for (std::size_t i = 0; i < att.size(); ++i) EXPECT_GE(att.at(i), 0.0f);
}

TEST(GradientSaliency, LeavesParamGradsClean) {
  GradientSaliency g;
  const auto samples = signal_samples(1);
  ASSERT_FALSE(samples.empty());
  (void)g.attribute(cnn(), samples[0]->input, samples[0]->label);
  for (std::size_t li = 0; li < cnn().layer_count(); ++li)
    for (float v : cnn().layer(li).param_grads()) EXPECT_EQ(v, 0.0f);
}

TEST(IntegratedGradients, CompletenessHolds) {
  IntegratedGradients ig{64};
  const auto samples = signal_samples(3);
  for (const auto* s : samples) {
    const Tensor att = ig.attribute(cnn(), s->input, s->label);
    const double residual =
        completeness_residual(cnn(), s->input, s->label, att);
    // Residual should be small relative to the logit magnitude.
    const double fx =
        std::fabs(static_cast<double>(cnn().forward(s->input).at(s->label))) +
        1.0;
    EXPECT_LT(residual, 0.1 * fx) << "completeness violated";
  }
}

TEST(IntegratedGradients, RejectsZeroSteps) {
  EXPECT_THROW(IntegratedGradients(0), std::invalid_argument);
}

TEST(OcclusionSensitivity, LocalizesPlantedSignal) {
  OcclusionSensitivity occ{4, 2};
  const auto samples = signal_samples(6);
  ASSERT_GE(samples.size(), 3u);
  double total_gain = 0.0;
  for (const auto* s : samples) {
    const Tensor att = occ.attribute(cnn(), s->input, s->label);
    total_gain += localization_gain(att, *s->signal);
  }
  // Attribution concentrates on the signal much more than uniform (gain 1).
  EXPECT_GT(total_gain / static_cast<double>(samples.size()), 1.5);
}

TEST(OcclusionSensitivity, RequiresImageInput) {
  OcclusionSensitivity occ;
  dl::ModelBuilder b{Shape::vec(8)};
  b.dense(4).relu().dense(2);
  dl::Model m = b.build(1);
  Tensor in{Shape::vec(8)};
  EXPECT_THROW(occ.attribute(m, in, 0), std::invalid_argument);
}

TEST(LimeSurrogate, LocalizesPlantedSignal) {
  LimeSurrogate lime{150, 4, 1e-2, 7};
  const auto samples = signal_samples(4);
  ASSERT_GE(samples.size(), 2u);
  double total_gain = 0.0;
  for (const auto* s : samples) {
    const Tensor att = lime.attribute(cnn(), s->input, s->label);
    total_gain += localization_gain(att, *s->signal);
  }
  EXPECT_GT(total_gain / static_cast<double>(samples.size()), 1.2);
}

TEST(LimeSurrogate, DeterministicGivenSeed) {
  LimeSurrogate lime{60, 4, 1e-2, 11};
  const auto samples = signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const Tensor a = lime.attribute(cnn(), samples[0]->input, samples[0]->label);
  const Tensor b = lime.attribute(cnn(), samples[0]->input, samples[0]->label);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(Metrics, LocalizationGainUniformIsOne) {
  Tensor att{Shape::chw(1, 8, 8)};
  att.fill(1.0f);
  const dl::Region r{2, 2, 6, 6};
  EXPECT_NEAR(localization_gain(att, r), 1.0, 1e-9);
}

TEST(Metrics, LocalizationGainConcentrated) {
  Tensor att{Shape::chw(1, 8, 8)};
  const dl::Region r{0, 0, 2, 2};
  for (std::size_t y = 0; y < 2; ++y)
    for (std::size_t x = 0; x < 2; ++x) att.at(0, y, x) = 1.0f;
  // All mass inside region of area fraction 4/64 -> gain 16.
  EXPECT_NEAR(localization_gain(att, r), 16.0, 1e-9);
}

TEST(Metrics, PointingGame) {
  Tensor att{Shape::chw(1, 4, 4)};
  att.at(0, 3, 3) = 5.0f;
  EXPECT_TRUE(pointing_hit(att, dl::Region{3, 3, 4, 4}));
  EXPECT_FALSE(pointing_hit(att, dl::Region{0, 0, 2, 2}));
}

TEST(Metrics, DeletionAucLowerForFaithfulAttribution) {
  const auto samples = signal_samples(3);
  ASSERT_GE(samples.size(), 2u);
  GradientSaliency g;
  double faithful = 0.0, random_auc = 0.0;
  util::Xoshiro256 rng{17};
  for (const auto* s : samples) {
    const Tensor att = g.attribute(cnn(), s->input, s->label);
    faithful += deletion_auc(cnn(), s->input, s->label, att);
    Tensor rnd{att.shape()};
    rnd.init_uniform(rng, 0.0f, 1.0f);
    random_auc += deletion_auc(cnn(), s->input, s->label, rnd);
  }
  // Faithful attributions delete the important pixels first, so the target
  // probability collapses earlier (lower AUC).
  EXPECT_LT(faithful, random_auc + 0.05);
}

TEST(Metrics, EvaluateExplainerProducesScores) {
  GradientSaliency g;
  const auto score = evaluate_explainer(g, cnn(), sx::testing::road_data(), 12);
  EXPECT_EQ(score.name, "gradient-saliency");
  EXPECT_GT(score.mean_localization_gain, 0.0);
  EXPECT_GE(score.pointing_accuracy, 0.0);
  EXPECT_LE(score.pointing_accuracy, 1.0);
  EXPECT_GT(score.runtime_ms_per_sample, 0.0);
}

TEST(Metrics, StabilityInUnitRange) {
  GradientSaliency g;
  const auto samples = signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const double st =
      stability(g, cnn(), samples[0]->input, samples[0]->label, 0.01, 3, 5);
  EXPECT_GE(st, -1.0);
  EXPECT_LE(st, 1.0);
  EXPECT_GT(st, 0.3) << "saliency should be fairly stable to tiny noise";
}

// Property sweep: all four explainers beat the uniform baseline on
// localization when averaged over a handful of samples.
class ExplainerLadder : public ::testing::TestWithParam<int> {};

TEST_P(ExplainerLadder, BeatsUniformBaseline) {
  std::unique_ptr<Explainer> ex;
  switch (GetParam()) {
    case 0: ex = std::make_unique<GradientSaliency>(); break;
    case 1: ex = std::make_unique<IntegratedGradients>(16); break;
    case 2: ex = std::make_unique<OcclusionSensitivity>(4, 2); break;
    default: ex = std::make_unique<LimeSurrogate>(120, 4, 1e-2, 3); break;
  }
  const auto samples = signal_samples(5);
  ASSERT_GE(samples.size(), 3u);
  double gain = 0.0;
  for (const auto* s : samples)
    gain += localization_gain(ex->attribute(cnn(), s->input, s->label),
                              *s->signal);
  EXPECT_GT(gain / static_cast<double>(samples.size()), 1.1)
      << ex->name() << " no better than uniform attribution";
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ExplainerLadder,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace sx::explain
