// Fleet evidence plane (src/fleet): partition-invariant sharded campaigns,
// mergeable evidence with layered refusal, quantified safety bounds, and
// the shard-file interchange format.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fleet/evidence.hpp"
#include "fleet/fleet.hpp"
#include "safety/campaign.hpp"
#include "safety/channel.hpp"
#include "test_helpers.hpp"
#include "trace/safety_case.hpp"
#include "util/stats.hpp"

namespace sx::fleet {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

std::unique_ptr<safety::InferenceChannel> make_channel() {
  return std::make_unique<safety::SingleChannel>(
      model(), dl::StaticEngineConfig{.check_numeric_faults = true});
}

FleetConfig small_config(std::size_t shards) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.campaign.n_faults = 12;
  cfg.campaign.probes_per_fault = 3;
  cfg.campaign.seed = 77;
  cfg.confidence = 0.99;
  return cfg;
}

bool outcomes_equal(const safety::CampaignOutcome& a,
                    const safety::CampaignOutcome& b) {
  return a.correct == b.correct && a.detected == b.detected &&
         a.fallback == b.fallback && a.sdc == b.sdc;
}

// ------------------------------------------- CampaignOutcome::merge basics

TEST(FleetOutcomeMerge, UnmeasuredMergeIsNoOp) {
  safety::CampaignOutcome a;
  a.correct = 3;
  a.sdc = 1;
  const safety::CampaignOutcome before = a;
  a.merge(safety::CampaignOutcome{});  // unmeasured: total() == 0
  EXPECT_TRUE(outcomes_equal(a, before));
  EXPECT_DOUBLE_EQ(a.sdc_rate(), before.sdc_rate());
}

TEST(FleetOutcomeMerge, MergedRatesArePooledNotAveraged) {
  safety::CampaignOutcome a;  // 1/10 sdc
  a.correct = 9;
  a.sdc = 1;
  safety::CampaignOutcome b;  // 0/30 sdc
  b.correct = 30;
  a.merge(b);
  // Pooled: 1 sdc over 40 demands — not the 0.05 average of the two rates.
  EXPECT_DOUBLE_EQ(a.sdc_rate(), 1.0 / 40.0);
  EXPECT_EQ(a.total(), 40u);
}

TEST(FleetOutcomeMerge, MergingIntoUnmeasuredAdoptsOther) {
  safety::CampaignOutcome a;
  EXPECT_FALSE(a.measured());
  safety::CampaignOutcome b;
  b.detected = 4;
  a.merge(b);
  EXPECT_TRUE(a.measured());
  EXPECT_EQ(a.detected, 4u);
}

// ------------------------------------------------ trial-indexed campaigns

TEST(FleetCampaignRange, FullRangeMatchesAnyPartition) {
  const auto cfg = small_config(1).campaign;
  auto full_ch = make_channel();
  const safety::CampaignOutcome full =
      safety::run_campaign_range(*full_ch, data(), cfg, 0, cfg.n_faults);
  EXPECT_TRUE(full.measured());

  for (const std::size_t parts : {2u, 3u, 4u}) {
    safety::CampaignOutcome merged;
    for (std::size_t p = 0; p < parts; ++p) {
      const std::size_t first = cfg.n_faults * p / parts;
      const std::size_t count = cfg.n_faults * (p + 1) / parts - first;
      auto ch = make_channel();  // fresh channel per range: independence
      merged.merge(safety::run_campaign_range(*ch, data(), cfg, first, count));
    }
    EXPECT_TRUE(outcomes_equal(merged, full)) << parts << " partitions";
  }
}

TEST(FleetCampaignRange, TrialSeedIsPureFunctionOfSeedAndTrial) {
  EXPECT_EQ(safety::trial_seed(7, 3), safety::trial_seed(7, 3));
  EXPECT_NE(safety::trial_seed(7, 3), safety::trial_seed(7, 4));
  EXPECT_NE(safety::trial_seed(7, 3), safety::trial_seed(8, 3));
}

TEST(FleetCampaignRange, RangeBeyondConfigThrows) {
  auto ch = make_channel();
  const auto cfg = small_config(1).campaign;
  EXPECT_THROW(
      safety::run_campaign_range(*ch, data(), cfg, cfg.n_faults - 1, 2),
      std::invalid_argument);
}

TEST(FleetCampaignRange, SinkSeesEveryTrialInOrder) {
  auto ch = make_channel();
  const auto cfg = small_config(1).campaign;
  std::vector<std::uint64_t> trials;
  safety::CampaignOutcome summed;
  const safety::CampaignOutcome total = safety::run_campaign_range(
      *ch, data(), cfg, 2, 5,
      [&](std::uint64_t t, const safety::CampaignOutcome& counts) {
        trials.push_back(t);
        summed.merge(counts);
      });
  ASSERT_EQ(trials.size(), 5u);
  for (std::size_t i = 0; i < trials.size(); ++i)
    EXPECT_EQ(trials[i], 2 + i);
  EXPECT_TRUE(outcomes_equal(summed, total));
}

// -------------------------------------------------- sharded fleet campaign

TEST(FleetShardedCampaign, MergedEvidenceIdenticalForAllShardCounts) {
  const FleetEvidence base =
      run_sharded_campaign(make_channel, data(), small_config(1));
  ASSERT_EQ(base.status, Status::kOk) << base.refusal;
  ASSERT_TRUE(base.merged.measured());
  const std::string base_bytes = base.merged_snapshot.serialize();

  for (const std::size_t shards : {2u, 4u, 8u}) {
    const FleetEvidence ev =
        run_sharded_campaign(make_channel, data(), small_config(shards));
    ASSERT_EQ(ev.status, Status::kOk) << ev.refusal;
    EXPECT_TRUE(outcomes_equal(ev.merged, base.merged)) << shards;
    EXPECT_EQ(ev.merged_snapshot.serialize(), base_bytes) << shards;
    EXPECT_EQ(ev.fleet_root, base.fleet_root) << shards;
    // The physical anchor commits to the sharding, so it must differ.
    EXPECT_NE(ev.anchor, base.anchor) << shards;
  }
}

TEST(FleetShardedCampaign, SnapshotCountersMatchOutcome) {
  const FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(4));
  ASSERT_EQ(ev.status, Status::kOk);
  EXPECT_EQ(ev.merged_snapshot.counter_value("sx_fleet_trials_total"), 12u);
  EXPECT_EQ(ev.merged_snapshot.counter_value("sx_fleet_probes_total"),
            ev.merged.total());
  EXPECT_EQ(ev.merged_snapshot.counter_value("sx_fleet_sdc_total"),
            ev.merged.sdc);
  EXPECT_EQ(ev.merged_snapshot.counter_value("sx_fleet_correct_total"),
            ev.merged.correct);
}

TEST(FleetShardedCampaign, TamperedShardEntryRefusedAtMerge) {
  FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(4));
  ASSERT_EQ(ev.status, Status::kOk);
  // Mutate one stored trial entry of shard 2 (test hook; production has no
  // mutation path into the chain).
  ev.shard_evidence[2].segment.log.tamper_payload_for_test(
      1, "t=999 correct=0 detected=0 fallback=0 sdc=0");
  const FleetEvidence merged = merge_shards(ev.shard_evidence, 0.99);
  EXPECT_EQ(merged.status, Status::kIntegrityFault);
  EXPECT_EQ(merged.offending_shard, 2u);
  EXPECT_FALSE(merged.refusal.empty());
  // The refused merge publishes only conservative evidence.
  EXPECT_FALSE(merged.merged.measured());
  EXPECT_DOUBLE_EQ(merged.bounds.cp_upper_sdc_rate, 1.0);
}

TEST(FleetShardedCampaign, ClaimedOutcomeContradictingTrailRefused) {
  FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  // Chain intact, claim falsified: the outcome/audit cross-check must fire.
  ev.shard_evidence[1].outcome.correct += 1;
  const FleetEvidence merged = merge_shards(ev.shard_evidence, 0.99);
  EXPECT_EQ(merged.status, Status::kIntegrityFault);
  EXPECT_EQ(merged.offending_shard, 1u);
}

TEST(FleetShardedCampaign, NonContiguousRangesRefused) {
  FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  std::vector<ShardEvidence> gap{ev.shard_evidence[0]};
  const FleetEvidence merged = merge_shards(gap, 0.99);
  // Shard 1 missing: the surviving range claims [0, 6) of a 12-trial
  // campaign — but nothing asserts 12 here, so dropping the *first* shard
  // must refuse (range no longer starts at 0).
  std::vector<ShardEvidence> tail{ev.shard_evidence[1]};
  EXPECT_EQ(merge_shards(tail, 0.99).status, Status::kInvalidArgument);
  EXPECT_EQ(merged.status, Status::kOk);  // prefix alone is a valid fleet
}

TEST(FleetShardedCampaign, MixedSeedsRefused) {
  FleetEvidence a =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(a.status, Status::kOk);
  FleetConfig other = small_config(2);
  other.campaign.seed = 78;
  FleetEvidence b = run_sharded_campaign(make_channel, data(), other);
  ASSERT_EQ(b.status, Status::kOk);
  std::vector<ShardEvidence> mixed{a.shard_evidence[0], b.shard_evidence[1]};
  EXPECT_EQ(merge_shards(mixed, 0.99).status, Status::kInvalidArgument);
}

TEST(FleetShardedCampaign, EmptyMergeRefused) {
  EXPECT_EQ(merge_shards({}, 0.99).status, Status::kInvalidArgument);
}

// ------------------------------------------------------- quantified bounds

TEST(FleetBounds, ClopperPearsonMatchesClosedFormAtZeroFailures) {
  // k = 0: the exact bound is 1 - alpha^(1/n).
  EXPECT_NEAR(util::clopper_pearson_upper(0, 100, 0.99), 0.045007, 5e-4);
  EXPECT_NEAR(util::clopper_pearson_upper(0, 1000, 0.99), 0.0045952, 5e-5);
}

TEST(FleetBounds, BoundsAreConservativeOnNoData) {
  EXPECT_DOUBLE_EQ(util::clopper_pearson_upper(0, 0, 0.99), 1.0);
  EXPECT_DOUBLE_EQ(util::bayes_binomial_upper(0, 0, 0.99), 1.0);
  const SafetyBounds b = compute_bounds(safety::CampaignOutcome{}, 0.99,
                                        1.0, 1.0);
  EXPECT_FALSE(b.measured);
  EXPECT_DOUBLE_EQ(b.cp_upper_sdc_rate, 1.0);
  EXPECT_DOUBLE_EQ(b.bayes_upper_sdc_rate, 1.0);
}

TEST(FleetBounds, MoreTrialsTightenTheBound) {
  const double b100 = util::clopper_pearson_upper(1, 100, 0.99);
  const double b1000 = util::clopper_pearson_upper(10, 1000, 0.99);
  EXPECT_LT(b1000, b100);  // same observed rate, more evidence
  EXPECT_GT(b100, 0.01);   // always above the observed rate
}

TEST(FleetBounds, BoundsBracketObservedRateFromAbove) {
  safety::CampaignOutcome o;
  o.correct = 90;
  o.sdc = 2;
  const SafetyBounds b = compute_bounds(o, 0.99, 1.0, 1.0);
  EXPECT_TRUE(b.measured);
  EXPECT_GT(b.cp_upper_sdc_rate, o.sdc_rate());
  EXPECT_LT(b.cp_upper_sdc_rate, 1.0);
  EXPECT_GT(b.bayes_upper_sdc_rate, o.sdc_rate());
  EXPECT_LT(b.bayes_upper_sdc_rate, 1.0);
}

TEST(FleetBounds, BetaQuantileInvertsIncompleteBeta) {
  for (const double q : {0.5, 0.9, 0.99}) {
    const double x = util::beta_quantile(3.0, 7.0, q);
    EXPECT_NEAR(util::incomplete_beta(3.0, 7.0, x), q, 1e-9);
  }
}

// ----------------------------------------------------- safety-case wiring

TEST(FleetSafetyCase, QuantifiedSolutionsDischargeTheGoal) {
  const FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  trace::SafetyCase sc;
  const std::size_t root =
      sc.set_root_goal("G1", "Residual SDC rate is acceptably bounded");
  ASSERT_TRUE(attach_to_safety_case(ev, sc, root));
  EXPECT_TRUE(sc.complete());
  const std::string text = sc.to_text();
  EXPECT_NE(text.find("Clopper-Pearson"), std::string::npos);
  EXPECT_NE(text.find("[= "), std::string::npos);
  EXPECT_NE(text.find("sdc/demand @ 0.99 one-sided"), std::string::npos);
  EXPECT_NE(text.find("fleet audit root sha256:"), std::string::npos);
}

TEST(FleetSafetyCase, RefusedMergeAttachesNothing) {
  FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  ev.shard_evidence[0].segment.log.tamper_payload_for_test(1, "x");
  const FleetEvidence refused = merge_shards(ev.shard_evidence, 0.99);
  trace::SafetyCase sc;
  const std::size_t root = sc.set_root_goal("G1", "bounded SDC");
  EXPECT_FALSE(attach_to_safety_case(refused, sc, root));
  EXPECT_FALSE(sc.complete());  // the goal stays undischarged
}

// ------------------------------------------------------ shard file format

TEST(FleetShardFile, RoundTripPreservesEverything) {
  const FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(4));
  ASSERT_EQ(ev.status, Status::kOk);
  std::vector<ShardEvidence> reloaded;
  for (const ShardEvidence& s : ev.shard_evidence) {
    const std::string text = serialize_shard(s);
    // Deterministic bytes: equal evidence serializes identically.
    EXPECT_EQ(text, serialize_shard(s));
    ShardEvidence r;
    ASSERT_TRUE(parse_shard(text, r));
    EXPECT_EQ(r.shard_id, s.shard_id);
    EXPECT_EQ(r.first_trial, s.first_trial);
    EXPECT_EQ(r.trial_count, s.trial_count);
    EXPECT_EQ(r.base_seed, s.base_seed);
    EXPECT_TRUE(outcomes_equal(r.outcome, s.outcome));
    EXPECT_EQ(r.segment.log.size(), s.segment.log.size());
    EXPECT_EQ(r.segment.log.head(), s.segment.log.head());
    EXPECT_EQ(r.segment.log.verify(), Status::kOk);
    EXPECT_EQ(r.snapshot.serialize(), s.snapshot.serialize());
    reloaded.push_back(std::move(r));
  }
  const FleetEvidence merged = merge_shards(reloaded, 0.99);
  ASSERT_EQ(merged.status, Status::kOk) << merged.refusal;
  EXPECT_TRUE(outcomes_equal(merged.merged, ev.merged));
  EXPECT_EQ(merged.fleet_root, ev.fleet_root);
  EXPECT_EQ(merged.anchor, ev.anchor);
  EXPECT_EQ(merged.merged_snapshot.serialize(),
            ev.merged_snapshot.serialize());
}

TEST(FleetShardFile, FileTamperingIsRefusedAfterReload) {
  const FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  std::string text = serialize_shard(ev.shard_evidence[0]);
  // Flip one hex digit in the payload token of the first trial entry line
  // (token 5 of "entry seq time actor action payload hash").
  const std::size_t at = text.find("\nentry ");
  ASSERT_NE(at, std::string::npos);
  std::size_t tok = at + 1;
  for (int i = 0; i < 5; ++i) tok = text.find(' ', tok) + 1;
  text[tok] = text[tok] == '0' ? '1' : '0';
  ShardEvidence bad;
  ASSERT_TRUE(parse_shard(text, bad));  // syntactically fine
  std::vector<ShardEvidence> shards{bad, ev.shard_evidence[1]};
  const FleetEvidence merged = merge_shards(shards, 0.99);
  EXPECT_EQ(merged.status, Status::kIntegrityFault);
  EXPECT_EQ(merged.offending_shard, 0u);
}

TEST(FleetShardFile, MalformedTextIsRejected) {
  ShardEvidence out;
  EXPECT_FALSE(parse_shard("", out));
  EXPECT_FALSE(parse_shard("not-a-shard-file\n", out));
  EXPECT_FALSE(parse_shard("sx-fleet-shard/1\nshard zero\n", out));
}

// ----------------------------------------------------------- report block

TEST(FleetReportBlock, RenderIsDeterministicAndNamesBothBounds) {
  const FleetEvidence ev =
      run_sharded_campaign(make_channel, data(), small_config(2));
  ASSERT_EQ(ev.status, Status::kOk);
  const std::string block = render_fleet_block(ev);
  EXPECT_EQ(block, render_fleet_block(ev));
  EXPECT_NE(block.find("schema sx-fleet-evidence/1"), std::string::npos);
  EXPECT_NE(block.find("bound method=clopper-pearson"), std::string::npos);
  EXPECT_NE(block.find("bound method=bayes-beta"), std::string::npos);
  EXPECT_NE(block.find("fleet_root "), std::string::npos);
  EXPECT_NE(block.find("shard id=0"), std::string::npos);
  EXPECT_NE(block.find("shard id=1"), std::string::npos);
  EXPECT_NE(summary(ev).find("Clopper-Pearson"), std::string::npos);
}

}  // namespace
}  // namespace sx::fleet
