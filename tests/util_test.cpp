#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/hash.hpp"
#include "util/linalg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace sx::util {
namespace {

// ------------------------------------------------------------------ Status

TEST(Status, EveryCodeHasName) {
  for (int i = 0; i <= static_cast<int>(Status::kIntegrityFault); ++i) {
    EXPECT_NE(to_string(static_cast<Status>(i)), "UNKNOWN");
  }
}

TEST(Status, OkPredicate) {
  EXPECT_TRUE(ok(Status::kOk));
  EXPECT_FALSE(ok(Status::kNumericFault));
}

// --------------------------------------------------------------------- RNG

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Xoshiro256 rng{11};
  RunningStats st;
  for (int i = 0; i < 50000; ++i) st.add(rng.gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.03);
  EXPECT_NEAR(st.stddev(), 1.0, 0.03);
}

TEST(Rng, BelowStaysBelow) {
  Xoshiro256 rng{13};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, SplitGivesIndependentStream) {
  Xoshiro256 a{99};
  Xoshiro256 child = a.split();
  // The child stream must not replicate the parent.
  Xoshiro256 parent_copy{99};
  (void)parent_copy();  // advance as split() did
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child() == parent_copy()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

// ------------------------------------------------------------------- stats

TEST(Stats, RunningMatchesBatch) {
  const std::vector<double> xs{1.0, 2.0, 3.5, -1.0, 0.5, 9.25};
  RunningStats st;
  for (double x : xs) st.add(x);
  EXPECT_DOUBLE_EQ(st.mean(), mean(xs));
  EXPECT_NEAR(st.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(st.max(), max_of(xs));
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Stats, QuantileRejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, CorrelationOfLinearIsOne) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 2.0);
  }
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, CorrelationOfConstantIsZero) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> ys{4, 4, 4};
  EXPECT_DOUBLE_EQ(correlation(xs, ys), 0.0);
}

TEST(Stats, HistogramCountsAll) {
  const std::vector<double> xs{0.1, 0.4, 0.6, 0.9, 1.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  EXPECT_EQ(h[0] + h[1], xs.size());
  EXPECT_EQ(h[0], 2u);
}

TEST(Stats, CoeffOfVariationZeroForConstant) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(coeff_of_variation(xs), 0.0);
}

// -------------------------------------------------------------------- hash

TEST(Sha256, KnownVectors) {
  // FIPS 180-4 test vectors.
  EXPECT_EQ(to_hex(Sha256::of("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(to_hex(Sha256::of("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      to_hex(Sha256::of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::of("hello world")));
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  std::string s(1000, 'x');
  Sha256 h;
  for (std::size_t i = 0; i < s.size(); i += 7)
    h.update(std::string_view(s).substr(i, 7));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::of(s)));
}

TEST(Fnv1a, DistinguishesContent) {
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
}

TEST(Fnv1a, FloatSpanBitExact) {
  const std::vector<float> a{1.0f, 2.0f};
  std::vector<float> b{1.0f, 2.0f};
  EXPECT_EQ(fnv1a(std::span<const float>(a)), fnv1a(std::span<const float>(b)));
  b[1] = std::nextafter(2.0f, 3.0f);
  EXPECT_NE(fnv1a(std::span<const float>(a)), fnv1a(std::span<const float>(b)));
}

// ------------------------------------------------------------------- table

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("longer-name"), std::string::npos);
  EXPECT_NE(ascii.find("| name"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

TEST(TableFmt, Formats) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.5, 1), "50.0%");
  EXPECT_NE(fmt_sci(12345.0).find("e"), std::string::npos);
}

// ------------------------------------------------------------------ linalg

TEST(Linalg, CholeskySolvesIdentity) {
  SquareMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) m.at(i, i) = 1.0;
  ASSERT_TRUE(cholesky(m));
  const auto x = cholesky_solve(m, {1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Linalg, CholeskySolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  SquareMatrix m(2);
  m.at(0, 0) = 4;
  m.at(0, 1) = 2;
  m.at(1, 0) = 2;
  m.at(1, 1) = 3;
  ASSERT_TRUE(cholesky(m));
  const auto x = cholesky_solve(m, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  SquareMatrix m(2);
  m.at(0, 0) = 1;
  m.at(1, 1) = -1;
  EXPECT_FALSE(cholesky(m));
}

TEST(Linalg, MahalanobisOfMeanIsZero) {
  SquareMatrix m(2);
  m.at(0, 0) = 2;
  m.at(1, 1) = 5;
  ASSERT_TRUE(cholesky(m));
  EXPECT_NEAR(mahalanobis_sq(m, {0.0, 0.0}), 0.0, 1e-12);
}

TEST(Linalg, MahalanobisMatchesDiagonal) {
  SquareMatrix m(2);
  m.at(0, 0) = 4;  // variance 4 -> d^2 = x^2/4
  m.at(1, 1) = 1;
  ASSERT_TRUE(cholesky(m));
  EXPECT_NEAR(mahalanobis_sq(m, {2.0, 0.0}), 1.0, 1e-12);
  EXPECT_NEAR(mahalanobis_sq(m, {0.0, 3.0}), 9.0, 1e-12);
}

// Property sweep: quantile is monotone in q for arbitrary samples.
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneInQ) {
  Xoshiro256 rng{GetParam()};
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.gaussian(0, 10));
  double prev = quantile(xs, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sx::util
