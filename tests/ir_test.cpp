// Differential and negative tests for the deploy-time program IR
// (src/ir), its static-analysis passes, and the verify-gate re-derivation
// that polices them.
//
// Positive direction: pass results on hand-built programs and on the
// digit-workload CNN are exactly the ones the dataflow facts admit, the
// liveness-colored arena cuts demand >= 25% below the ping-pong worst
// case, and optimized plans stay bitwise identical to the reference
// engines. Negative direction: every SX_IR_PASS_FAULT corruption mode is
// caught by verify::check_ir on the matching soundness axis, and a SIL3
// deployment over a corrupted pass pipeline is refused pre-flight.
#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dl/engine.hpp"
#include "dl/lower.hpp"
#include "dl/qplan.hpp"
#include "ir/passes.hpp"
#include "ir/program.hpp"
#include "test_helpers.hpp"
#include "verify/range.hpp"

namespace sx {
namespace {

using tensor::Shape;
using tensor::Tensor;

bool bits_equal(float a, float b) {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

/// The digit-workload CNN geometry (scenario/workload.cpp); weights are
/// seeded but untrained — every layout/pass decision depends on geometry
/// alone, and bitwise parity holds for any weights.
dl::Model digit_cnn() {
  dl::ModelBuilder b{Shape::chw(1, dl::kDigitSide, dl::kDigitSide)};
  b.conv2d(6, 3, /*stride=*/1, /*padding=*/1)
      .relu()
      .maxpool(2)
      .flatten()
      .dense(32)
      .relu()
      .dense(dl::kDigitClasses);
  return b.build(9);
}

dl::QuantizedModel digit_cnn_int8(const dl::Model& m) {
  return dl::QuantizedModel::quantize(dl::fold_batchnorm(m),
                                      dl::make_digits(32, 5));
}

/// input -> dense -> relu -> flatten -> dense; the flatten is a bit
/// identity and the relu a fusable epilogue.
ir::Program small_program() {
  ir::Program p;
  p.layer_count = 4;
  const std::size_t in = p.set_input(16);
  const std::size_t d0 = p.add_op(ir::OpKind::kDense, 0, in, 8);
  const std::size_t r1 =
      p.add_op(ir::OpKind::kRelu, 1, p.ops[d0].output, 8);
  const std::size_t f2 =
      p.add_op(ir::OpKind::kFlatten, 2, p.ops[r1].output, 8);
  const std::size_t d3 = p.add_op(ir::OpKind::kDense, 3, p.ops[f2].output, 4);
  p.output_value = p.ops[d3].output;
  return p;
}

// ---------------------------------------------------------------- program

TEST(IrProgram, BuilderProducesWellFormedGraph) {
  const ir::Program p = small_program();
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.ops.size(), 4u);
  EXPECT_EQ(p.values.size(), 5u);  // input + one per op
  EXPECT_EQ(p.live_op_count(), 4u);
  // Def/use chains: each intermediate value has exactly one consumer.
  for (std::size_t v = 0; v + 1 < p.values.size(); ++v)
    EXPECT_EQ(p.values[v].uses.size(), 1u) << "value " << v;
  EXPECT_TRUE(p.values[p.output_value].uses.empty());
  EXPECT_FALSE(p.to_text().empty());
}

TEST(IrProgram, LoweringMirrorsFloatModelGeometry) {
  const dl::Model m = digit_cnn();
  const ir::Program p = dl::lower(m);
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.elem_bytes, 4u);
  EXPECT_FALSE(p.input_in_arena);
  EXPECT_EQ(p.ops.size(), m.layer_count());
  EXPECT_EQ(p.values[p.input_value].elems, m.input_shape().size());
  EXPECT_EQ(p.values[p.output_value].elems, m.output_shape().size());
  // Conv ops carry their im2col column as scratch; others none.
  for (const auto& op : p.ops) {
    if (op.kind == ir::OpKind::kConv2d)
      EXPECT_GT(op.scratch_elems, 0u);
    else
      EXPECT_EQ(op.scratch_elems, 0u);
  }
}

TEST(IrProgram, LoweringMirrorsQuantModelGeometry) {
  const dl::Model m = digit_cnn();
  const dl::QuantizedModel qm = digit_cnn_int8(m);
  const ir::Program p = dl::lower(qm);
  EXPECT_TRUE(p.well_formed());
  EXPECT_EQ(p.elem_bytes, 1u);
  EXPECT_TRUE(p.input_in_arena);  // quant engines stage the input in-arena
  EXPECT_EQ(p.ops.size(), qm.layer_count());
}

// ----------------------------------------------------------------- passes

TEST(IrPasses, DceEliminatesBitIdentitiesAndEmitsEvidence) {
  ir::Program p = small_program();
  const ir::PassEvidence ev = ir::run_dce(p);
  EXPECT_EQ(ev.pass, "dce");
  EXPECT_EQ(ev.layers_removed, 1u);  // the flatten
  EXPECT_EQ(p.live_op_count(), 3u);
  EXPECT_FALSE(p.ops[2].live);
  EXPECT_TRUE(p.well_formed());
  // The surviving consumer reads the relu output directly.
  EXPECT_EQ(p.ops[3].input, p.ops[1].output);
  EXPECT_NE(ev.summary().find("pass=dce"), std::string::npos);
  EXPECT_NE(ev.summary().find("layers_removed=1"), std::string::npos);
}

TEST(IrPasses, DceCollapsesIdempotentReluChains) {
  ir::Program p;
  p.layer_count = 3;
  const std::size_t in = p.set_input(8);
  const std::size_t d0 = p.add_op(ir::OpKind::kDense, 0, in, 8);
  const std::size_t r1 =
      p.add_op(ir::OpKind::kRelu, 1, p.ops[d0].output, 8);
  const std::size_t r2 =
      p.add_op(ir::OpKind::kRelu, 2, p.ops[r1].output, 8);
  p.output_value = p.ops[r2].output;
  const ir::PassEvidence ev = ir::run_dce(p);
  EXPECT_EQ(ev.layers_removed, 1u);  // relu-after-relu is idempotent
  EXPECT_EQ(p.live_op_count(), 2u);
  EXPECT_TRUE(p.well_formed());
}

TEST(IrPasses, FusionAbsorbsSingleUseActivations) {
  ir::Program p = small_program();
  (void)ir::run_dce(p);
  const ir::PassEvidence ev = ir::run_fusion(p, {});
  EXPECT_EQ(ev.pass, "fusion");
  EXPECT_EQ(ev.layers_fused, 1u);  // dense0 absorbs relu1
  EXPECT_EQ(p.ops[0].fused_layer, 1u);
  EXPECT_EQ(p.ops[0].fused_kind, ir::OpKind::kRelu);
  EXPECT_FALSE(p.ops[1].live);
  EXPECT_TRUE(p.well_formed());
  // The producer now defines what used to be the relu's output value.
  EXPECT_EQ(p.values[p.ops[0].output].def_op, p.ops[0].id);
}

TEST(IrPasses, PinBlocksFusionAcrossTappedLayer) {
  const dl::Model m = digit_cnn();
  // Layers: conv0 relu1 pool2 flat3 dense4 relu5 dense6. Unpinned, both
  // epilogues fold; pinning the relu5 activation keeps dense4 unfused so
  // a supervisor can tap the pre-activation feature vector.
  ir::Program free_p = dl::lower(m);
  const ir::OptimizeResult free_r = ir::optimize(free_p);
  ir::Program pinned_p = dl::lower(m);
  ir::PassOptions opts;
  opts.pin_layer = 5;
  const ir::OptimizeResult pinned_r = ir::optimize(pinned_p, opts);
  std::size_t free_fused = 0, pinned_fused = 0;
  for (const auto& pe : free_r.passes) free_fused += pe.layers_fused;
  for (const auto& pe : pinned_r.passes) pinned_fused += pe.layers_fused;
  EXPECT_EQ(free_fused, 2u);
  EXPECT_EQ(pinned_fused, 1u);
}

TEST(IrPasses, LivenessColorsNonInterferingLifetimes) {
  const dl::Model m = digit_cnn();
  ir::Program p = dl::lower(m);
  const ir::OptimizeResult r = ir::optimize(p);
  const ir::ArenaLayout& lay = r.layout;
  EXPECT_GT(lay.total_elems, 0u);
  EXPECT_LT(lay.total_elems, lay.naive_elems);
  // Every live op's slots sit inside the claimed total.
  for (const auto& op : p.ops) {
    if (!op.live) continue;
    const ir::ArenaAssignment& a = lay.per_op[op.id];
    ASSERT_NE(a.out_offset, ir::kNone);
    EXPECT_LE(a.out_offset + p.values[op.output].elems, lay.total_elems);
    if (op.scratch_elems > 0) {
      ASSERT_NE(a.scratch_offset, ir::kNone);
      EXPECT_LE(a.scratch_offset + op.scratch_elems, lay.total_elems);
    }
  }
  // Three passes ran in the fixed order, each with evidence.
  ASSERT_EQ(r.passes.size(), 3u);
  EXPECT_EQ(r.passes[0].pass, "dce");
  EXPECT_EQ(r.passes[1].pass, "fusion");
  EXPECT_EQ(r.passes[2].pass, "liveness");
  EXPECT_GT(r.passes[2].bytes_saved, 0u);
}

// --------------------------------------------------- arena-reuse headline

TEST(IrArena, DigitCnnFloatDemandDropsAtLeastQuarter) {
  const dl::Model m = digit_cnn();
  const dl::KernelPlan plan{m, dl::KernelMode::kBlocked};
  const ir::ArenaLayout& lay = plan.layout();
  ASSERT_GT(lay.naive_elems, 0u);
  const double reduction =
      1.0 - static_cast<double>(lay.total_elems) /
                static_cast<double>(lay.naive_elems);
  EXPECT_GE(reduction, 0.25)
      << "arena " << lay.total_elems << "/" << lay.naive_elems << " floats";
  EXPECT_EQ(plan.arena_elems(), lay.total_elems);
}

TEST(IrArena, DigitCnnInt8DemandDropsAtLeastQuarter) {
  const dl::Model m = digit_cnn();
  const dl::QuantizedModel qm = digit_cnn_int8(m);
  const dl::QuantKernelPlan plan{qm, dl::KernelMode::kPacked};
  const ir::ArenaLayout& lay = plan.layout();
  ASSERT_GT(lay.naive_elems, 0u);
  const double reduction =
      1.0 - static_cast<double>(lay.total_elems) /
                static_cast<double>(lay.naive_elems);
  EXPECT_GE(reduction, 0.25)
      << "arena " << lay.total_elems << "/" << lay.naive_elems << " bytes";
}

// --------------------------------------------------- bitwise differential

TEST(IrDifferential, OptimizedFloatPlanMatchesReferenceBitwise) {
  const dl::Model m = digit_cnn();
  dl::StaticEngine planned{m};
  dl::StaticEngine reference{
      m, dl::StaticEngineConfig{.kernels = dl::KernelMode::kReference}};
  ASSERT_NE(planned.kernel_plan(), nullptr);
  ASSERT_EQ(reference.kernel_plan(), nullptr);
  const dl::Dataset ds = dl::make_digits(24, 11);
  std::vector<float> a(m.output_shape().size()), b(a.size());
  for (const auto& s : ds.samples) {
    ASSERT_EQ(planned.run(s.input.view(), a), Status::kOk);
    ASSERT_EQ(reference.run(s.input.view(), b), Status::kOk);
    for (std::size_t k = 0; k < a.size(); ++k)
      ASSERT_TRUE(bits_equal(a[k], b[k])) << "logit " << k;
  }
}

TEST(IrDifferential, OptimizedGoldenCnnMatchesOfflineForwardBitwise) {
  const dl::Model& m = sx::testing::trained_cnn();
  dl::StaticEngine planned{m};
  ASSERT_NE(planned.kernel_plan(), nullptr);
  std::vector<float> out(m.output_shape().size());
  for (std::size_t i = 0; i < 16; ++i) {
    const Tensor& in = sx::testing::road_data().samples[i].input;
    ASSERT_EQ(planned.run(in.view(), out), Status::kOk);
    const Tensor ref = m.forward(in);
    for (std::size_t k = 0; k < out.size(); ++k)
      ASSERT_TRUE(bits_equal(out[k], ref.at(k)))
          << "sample " << i << " logit " << k;
  }
}

TEST(IrDifferential, OptimizedInt8PlanMatchesReferenceBitwise) {
  const dl::Model m = digit_cnn();
  const dl::QuantizedModel qm = digit_cnn_int8(m);
  dl::QuantEngine planned{
      qm, dl::QuantEngineConfig{.kernels = dl::KernelMode::kPacked}};
  dl::QuantEngine reference{
      qm, dl::QuantEngineConfig{.kernels = dl::KernelMode::kReference}};
  const dl::Dataset ds = dl::make_digits(24, 13);
  std::vector<float> a(qm.output_shape().size()), b(a.size());
  for (const auto& s : ds.samples) {
    ASSERT_EQ(planned.run(s.input.view(), a), Status::kOk);
    ASSERT_EQ(reference.run(s.input.view(), b), Status::kOk);
    for (std::size_t k = 0; k < a.size(); ++k)
      ASSERT_TRUE(bits_equal(a[k], b[k])) << "logit " << k;
  }
  // Requantization-clip counters must agree too, fused relus included.
  const auto pc = planned.saturation_counts();
  const auto rc = reference.saturation_counts();
  ASSERT_EQ(pc.size(), rc.size());
  for (std::size_t i = 0; i < pc.size(); ++i) EXPECT_EQ(pc[i], rc[i]);
}

// ------------------------------------------------- verify-gate re-derivation

TEST(IrVerify, HealthyFloatPlanIsSoundOnEveryAxis) {
  const dl::Model m = digit_cnn();
  const dl::KernelPlan plan{m, dl::KernelMode::kBlocked};
  const verify::IrCheck c = verify::check_ir(m, plan);
  EXPECT_TRUE(c.checked);
  EXPECT_TRUE(c.structure_sound);
  EXPECT_TRUE(c.elimination_sound);
  EXPECT_TRUE(c.fusion_sound);
  EXPECT_TRUE(c.layout_sound);
  EXPECT_TRUE(c.passed());
  EXPECT_EQ(c.rederived_elems, c.planned_elems);
  EXPECT_EQ(c.layers_removed, 1u);  // flatten
  EXPECT_EQ(c.layers_fused, 2u);    // conv+relu, dense+relu
}

TEST(IrVerify, HealthyQuantPlanIsSoundOnEveryAxis) {
  const dl::Model m = digit_cnn();
  const dl::QuantizedModel qm = digit_cnn_int8(m);
  const dl::QuantKernelPlan plan{qm, dl::KernelMode::kBlocked};
  const verify::IrCheck c = verify::check_ir(qm, plan);
  EXPECT_TRUE(c.checked);
  EXPECT_TRUE(c.passed());
  EXPECT_EQ(c.rederived_elems, c.planned_elems);
}

TEST(IrVerify, PinnedPlanRederivesWithSamePin) {
  const dl::Model m = digit_cnn();
  const dl::KernelPlan plan{m, dl::KernelMode::kBlocked,
                            /*pin_tap_layer=*/5};
  const verify::IrCheck c = verify::check_ir(m, plan);
  EXPECT_TRUE(c.passed());
  EXPECT_EQ(c.layers_fused, 1u);  // dense4+relu5 stays materialized
}

TEST(IrVerify, VerifyModelAttachesIrEvidence) {
  const dl::Model m = digit_cnn();
  const verify::VerificationEvidence ev =
      verify::verify_model(m, trace::OddSpec{});
  EXPECT_TRUE(ev.ir.checked);
  EXPECT_TRUE(ev.verdict.ir_sound);
  EXPECT_TRUE(ev.verdict.passed());
  EXPECT_NE(ev.verdict_line().find("ir=1"), std::string::npos);
  EXPECT_NE(ev.to_text().find("ir passes:"), std::string::npos);
}

struct FaultCase {
  const char* fault;
  bool elimination;  ///< axis expected to stay sound
  bool fusion;
  bool layout;
};

class IrFaultRefusal : public ::testing::TestWithParam<FaultCase> {
 protected:
  void TearDown() override { unsetenv("SX_IR_PASS_FAULT"); }
};

TEST_P(IrFaultRefusal, CorruptedFloatPassIsCaughtOnTheRightAxis) {
  const FaultCase fc = GetParam();
  const dl::Model m = digit_cnn();
  ASSERT_EQ(setenv("SX_IR_PASS_FAULT", fc.fault, 1), 0);
  const dl::KernelPlan plan{m, dl::KernelMode::kBlocked};
  unsetenv("SX_IR_PASS_FAULT");
  // The corrupted plan advertises its injected fault in the evidence...
  bool saw_fault_evidence = false;
  for (const auto& pe : plan.pass_evidence())
    if (pe.pass.rfind("fault:", 0) == 0) saw_fault_evidence = true;
  EXPECT_TRUE(saw_fault_evidence);
  // ...but the checker does not need it: the re-derivation disagrees.
  const verify::IrCheck c = verify::check_ir(m, plan);
  EXPECT_TRUE(c.checked);
  EXPECT_FALSE(c.passed()) << fc.fault;
  EXPECT_EQ(c.elimination_sound, fc.elimination) << fc.fault;
  EXPECT_EQ(c.fusion_sound, fc.fusion) << fc.fault;
  EXPECT_EQ(c.layout_sound, fc.layout) << fc.fault;
}

TEST_P(IrFaultRefusal, CorruptedQuantPassFailsTheCheck) {
  const FaultCase fc = GetParam();
  const dl::Model m = digit_cnn();
  const dl::QuantizedModel qm = digit_cnn_int8(m);
  ASSERT_EQ(setenv("SX_IR_PASS_FAULT", fc.fault, 1), 0);
  const dl::QuantKernelPlan plan{qm, dl::KernelMode::kBlocked};
  unsetenv("SX_IR_PASS_FAULT");
  const verify::IrCheck c = verify::check_ir(qm, plan);
  EXPECT_TRUE(c.checked);
  EXPECT_FALSE(c.passed()) << fc.fault;
}

TEST_P(IrFaultRefusal, VerifyModelFailsOverCorruptedPasses) {
  const FaultCase fc = GetParam();
  const dl::Model m = digit_cnn();
  ASSERT_EQ(setenv("SX_IR_PASS_FAULT", fc.fault, 1), 0);
  const verify::VerificationEvidence ev =
      verify::verify_model(m, trace::OddSpec{});
  unsetenv("SX_IR_PASS_FAULT");
  EXPECT_TRUE(ev.ir.checked);
  EXPECT_FALSE(ev.verdict.ir_sound) << fc.fault;
  EXPECT_FALSE(ev.verdict.passed()) << fc.fault;
  EXPECT_NE(ev.verdict_line().find("ir=0"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, IrFaultRefusal,
    // Program faults sink the elimination axis and, with it, layout: the
    // checker refuses to validate arena offsets against a live-op set it
    // already disagrees with. Fusion is judged per layer, so drop-op (which
    // forges no fused marker) keeps that axis sound while bogus-fuse loses
    // it. Layout-only faults leave both program axes untouched.
    ::testing::Values(FaultCase{"drop-op", false, true, false},
                      FaultCase{"bogus-fuse", false, false, false},
                      FaultCase{"shrink-arena", true, true, false},
                      FaultCase{"overlap", true, true, false}),
    [](const ::testing::TestParamInfo<FaultCase>& pinfo) {
      std::string n = pinfo.param.fault;
      for (char& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

// ------------------------------------------------------ SIL3 pre-flight gate

TEST(IrSilGate, Sil3PipelineRefusesCorruptedPassResults) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.timing_budget = 1000;
  ASSERT_EQ(setenv("SX_IR_PASS_FAULT", "overlap", 1), 0);
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  unsetenv("SX_IR_PASS_FAULT");
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_FALSE(p.static_verification()->verdict.passed());
  EXPECT_FALSE(p.static_verification()->verdict.ir_sound);
  // Refuse-only mode: the corrupted plan never serves a decision.
  const auto d = p.infer(sx::testing::road_data().samples[0].input, 0);
  EXPECT_EQ(d.status, Status::kVerificationFailed);
  EXPECT_TRUE(d.degraded);
  // The refusal verdict is on the tamper-evident audit chain.
  bool saw_refusal = false;
  for (const auto& e : p.audit().entries())
    if (e.actor == "static-verify" && e.action == "refuse-model" &&
        e.payload.find("ir=0") != std::string::npos)
      saw_refusal = true;
  EXPECT_TRUE(saw_refusal);
  EXPECT_EQ(p.audit().verify(), Status::kOk);
}

TEST(IrSilGate, Sil3PipelineDeploysWithSoundPassesAndAuditsThem) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.timing_budget = 1000;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_TRUE(p.static_verification()->verdict.passed());
  EXPECT_TRUE(p.static_verification()->ir.checked);
  const auto d = p.infer(sx::testing::road_data().samples[0].input, 0);
  EXPECT_EQ(d.status, Status::kOk);
}

TEST(IrSilGate, Int8StaticVerificationRederivesQuantPlan) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  cfg.backend = core::BackendKind::kInt8;
  core::PipelineSpec spec = core::recommended_spec(trace::Criticality::kSil2);
  spec.has_static_verification = true;
  cfg.spec = spec;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_TRUE(p.static_verification()->quant_ir.checked);
  EXPECT_TRUE(p.static_verification()->quant_ir.passed());
  EXPECT_TRUE(p.static_verification()->verdict.passed());
  EXPECT_NE(p.static_verification()->to_text().find("int8 ir passes:"),
            std::string::npos);
}

TEST(IrSilGate, Int8GateRefusesCorruptedQuantPasses) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  cfg.backend = core::BackendKind::kInt8;
  core::PipelineSpec spec = core::recommended_spec(trace::Criticality::kSil2);
  spec.has_static_verification = true;
  cfg.spec = spec;
  ASSERT_EQ(setenv("SX_IR_PASS_FAULT", "shrink-arena", 1), 0);
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  unsetenv("SX_IR_PASS_FAULT");
  ASSERT_NE(p.static_verification(), nullptr);
  EXPECT_FALSE(p.static_verification()->verdict.passed());
  const auto d = p.infer(sx::testing::road_data().samples[0].input, 0);
  EXPECT_EQ(d.status, Status::kVerificationFailed);
}

// -------------------------------------------------------- report evidence

TEST(IrReport, PipelineAuditsPlanAndPerPassEvidence) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  std::size_t ir_pass_entries = 0;
  bool saw_plan = false;
  for (const auto& e : p.audit().entries()) {
    if (e.actor == "kernel-plan" && e.action == "deploy") saw_plan = true;
    if (e.actor == "ir-pass") ++ir_pass_entries;
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_EQ(ir_pass_entries, 3u);  // dce, fusion, liveness
}

TEST(IrReport, MakeIrEvidenceEmitsMachineReadableMarkers) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  const core::EvidenceItem item = core::make_ir_evidence(p);
  EXPECT_NE(item.body.find("# BEGIN SX_IR_PASSES"), std::string::npos);
  EXPECT_NE(item.body.find("# END SX_IR_PASSES"), std::string::npos);
  EXPECT_NE(item.body.find("plan=float pass=dce"), std::string::npos);
  EXPECT_NE(item.body.find("plan=float pass=liveness"), std::string::npos);
  EXPECT_NE(item.body.find("arena_total="), std::string::npos);
}

TEST(IrReport, MakeIrEvidenceCoversInt8Plan) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kSil2;
  cfg.backend = core::BackendKind::kInt8;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  const core::EvidenceItem item = core::make_ir_evidence(p);
  EXPECT_NE(item.body.find("plan=int8 pass=dce"), std::string::npos);
}

}  // namespace
}  // namespace sx
