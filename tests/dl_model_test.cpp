#include <gtest/gtest.h>

#include <sstream>

#include "dl/engine.hpp"
#include "dl/model.hpp"
#include "dl/quant.hpp"
#include "dl/train.hpp"
#include "test_helpers.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

Model small_mlp(std::uint64_t seed = 1) {
  ModelBuilder b{Shape::vec(4)};
  b.dense(8).relu().dense(3);
  return b.build(seed);
}

// ----------------------------------------------------------------- builder

TEST(ModelBuilder, TracksShapesThroughLayers) {
  ModelBuilder b{Shape::chw(1, 8, 8)};
  b.conv2d(4, 3, 1, 1).relu().maxpool(2).flatten().dense(10);
  Model m = b.build(1);
  EXPECT_EQ(m.output_shape(), Shape::vec(10));
  EXPECT_EQ(m.activation_shape(0), Shape::chw(4, 8, 8));
  EXPECT_EQ(m.activation_shape(2), Shape::chw(4, 4, 4));
}

TEST(ModelBuilder, RejectsIncompatibleLayers) {
  ModelBuilder b{Shape::vec(16)};
  EXPECT_THROW(b.conv2d(2, 3), std::invalid_argument);  // vector input
  ModelBuilder b2{Shape::chw(1, 5, 5)};
  EXPECT_THROW(b2.maxpool(2), std::invalid_argument);  // 5 not divisible
}

TEST(ModelBuilder, SameSeedSameParameters) {
  Model a = small_mlp(77);
  Model b = small_mlp(77);
  EXPECT_EQ(a.provenance_hash(), b.provenance_hash());
  Model c = small_mlp(78);
  EXPECT_NE(a.provenance_hash(), c.provenance_hash());
}

TEST(Model, RequiresAtLeastOneLayer) {
  std::vector<std::unique_ptr<Layer>> none;
  EXPECT_THROW(Model(Shape::vec(2), std::move(none)), std::invalid_argument);
}

TEST(Model, ParamCountSums) {
  Model m = small_mlp();
  EXPECT_EQ(m.param_count(), 4u * 8 + 8 + 8 * 3 + 3);
}

TEST(Model, MaxActivationSize) {
  Model m = small_mlp();
  EXPECT_EQ(m.max_activation_size(), 8u);
}

// ----------------------------------------------------------------- forward

TEST(Model, ForwardRejectsWrongShape) {
  Model m = small_mlp();
  Tensor bad{Shape::vec(5)};
  EXPECT_THROW(m.forward(bad), std::invalid_argument);
}

TEST(Model, ForwardTraceKeepsAllActivations) {
  Model m = small_mlp();
  Tensor in{Shape::vec(4), {1, 2, 3, 4}};
  const auto acts = m.forward_trace(in);
  ASSERT_EQ(acts.size(), m.layer_count() + 1);
  EXPECT_EQ(acts.front().shape(), Shape::vec(4));
  EXPECT_EQ(acts.back().shape(), Shape::vec(3));
  // Final trace activation equals plain forward.
  const Tensor out = m.forward(in);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_FLOAT_EQ(acts.back().at(i), out.at(i));
}

TEST(Model, CopyIsDeep) {
  Model a = small_mlp();
  Model b = a;
  b.layer(0).params()[0] += 1.0f;
  EXPECT_NE(a.provenance_hash(), b.provenance_hash());
}

TEST(Model, SummaryMentionsLayers) {
  Model m = small_mlp();
  const std::string s = m.summary();
  EXPECT_NE(s.find("dense"), std::string::npos);
  EXPECT_NE(s.find("relu"), std::string::npos);
}

// ----------------------------------------------------------- save / load

TEST(ModelIo, RoundTripPreservesEverything) {
  ModelBuilder b{Shape::chw(1, 8, 8)};
  b.conv2d(2, 3, 1, 1).relu().maxpool(2).flatten().batchnorm().dense(5)
      .relu().dense(3);
  Model m = b.build(123);

  std::stringstream ss;
  m.save(ss);
  Model loaded = Model::load(ss);
  EXPECT_EQ(loaded.provenance_hash(), m.provenance_hash());

  // Behaviour identical, bit for bit.
  Tensor in{Shape::chw(1, 8, 8)};
  util::Xoshiro256 rng{5};
  in.init_uniform(rng, 0.0f, 1.0f);
  const Tensor a = m.forward(in);
  const Tensor c = loaded.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.at(i), c.at(i));
}

TEST(ModelIo, RejectsGarbage) {
  std::stringstream ss{"not a model"};
  EXPECT_THROW(Model::load(ss), std::runtime_error);
}

TEST(ModelIo, RoundTripWithSoftmaxAndAvgPool) {
  ModelBuilder b{Shape::chw(1, 4, 4)};
  b.avgpool(2).flatten().dense(3).softmax();
  Model m = b.build(9);
  std::stringstream ss;
  m.save(ss);
  Model loaded = Model::load(ss);
  EXPECT_EQ(loaded.provenance_hash(), m.provenance_hash());
}

// ---------------------------------------------------------------- training

TEST(Loss, CrossEntropyMatchesHandComputation) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f};
  std::vector<float> grad(3);
  const double loss = cross_entropy_with_grad(logits, 2, grad);
  // softmax = e^{l - max} / sum; p2 = e^0 / (e^-2 + e^-1 + 1)
  const double p2 = 1.0 / (std::exp(-2.0) + std::exp(-1.0) + 1.0);
  EXPECT_NEAR(loss, -std::log(p2), 1e-6);
  // Gradient sums to zero (softmax - onehot).
  EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0, 1e-6);
  EXPECT_LT(grad[2], 0.0);
}

TEST(Loss, RejectsBadLabel) {
  const std::vector<float> logits{1.0f, 2.0f};
  std::vector<float> grad(2);
  EXPECT_THROW(cross_entropy_with_grad(logits, 5, grad),
               std::invalid_argument);
}

TEST(Trainer, LearnsLinearlySeparableToy) {
  // Class 0: x0 > x1; class 1: otherwise.
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(2);
  util::Xoshiro256 rng{1};
  for (int i = 0; i < 200; ++i) {
    Sample s;
    s.input = Tensor{Shape::vec(2)};
    s.input.init_uniform(rng, -1.0f, 1.0f);
    s.label = s.input.at(std::size_t{0}) > s.input.at(std::size_t{1}) ? 0 : 1;
    ds.samples.push_back(std::move(s));
  }
  ModelBuilder b{Shape::vec(2)};
  b.dense(8).relu().dense(2);
  Model m = b.build(2);
  Trainer trainer{TrainConfig{.learning_rate = 0.1, .epochs = 20,
                              .batch_size = 8, .shuffle_seed = 4}};
  const auto history = trainer.fit(m, ds);
  EXPECT_GT(history.back().accuracy, 0.95);
  EXPECT_LT(history.back().loss, history.front().loss);
}

TEST(Trainer, RoadSceneMlpReachesUsableAccuracy) {
  const double acc =
      Trainer::evaluate_accuracy(sx::testing::trained_mlp(),
                                 sx::testing::road_data());
  EXPECT_GT(acc, 0.8);
}

TEST(Trainer, DeterministicGivenSeeds) {
  auto make = [] {
    ModelBuilder b{Shape::vec(4)};
    b.dense(6).relu().dense(2);
    Model m = b.build(3);
    Dataset ds;
    ds.num_classes = 2;
    ds.input_shape = Shape::vec(4);
    util::Xoshiro256 rng{8};
    for (int i = 0; i < 64; ++i) {
      Sample s;
      s.input = Tensor{Shape::vec(4)};
      s.input.init_uniform(rng, 0.0f, 1.0f);
      s.label = static_cast<std::size_t>(i % 2);
      ds.samples.push_back(std::move(s));
    }
    Trainer t{TrainConfig{.epochs = 3, .shuffle_seed = 5}};
    t.fit(m, ds);
    return m.provenance_hash();
  };
  EXPECT_EQ(make(), make());
}

TEST(Trainer, RejectsEmptyDataset) {
  Model m = small_mlp();
  Dataset empty;
  Trainer t;
  EXPECT_THROW(t.fit(m, empty), std::invalid_argument);
}

// ------------------------------------------------------ batchnorm folding

TEST(FoldBatchNorm, FoldedModelMatchesOriginal) {
  ModelBuilder b{Shape::chw(1, 8, 8)};
  b.conv2d(3, 3, 1, 1).batchnorm().relu().flatten().dense(4);
  Model m = b.build(21);
  // Give the BatchNorm non-trivial statistics.
  auto& bn = dynamic_cast<BatchNorm&>(m.layer(1));
  const std::vector<float> mean{0.2f, -0.1f, 0.4f};
  const std::vector<float> var{1.3f, 0.7f, 2.1f};
  bn.set_statistics(mean, var);
  auto gamma_beta = bn.params();
  gamma_beta[0] = 1.2f;
  gamma_beta[3] = 0.1f;  // beta of channel 0

  const Model folded = fold_batchnorm(m);
  EXPECT_EQ(folded.layer_count(), m.layer_count() - 1);

  Tensor in{Shape::chw(1, 8, 8)};
  util::Xoshiro256 rng{31};
  in.init_uniform(rng, 0.0f, 1.0f);
  const Tensor a = m.forward(in);
  const Tensor c = folded.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a.at(i), c.at(i), 1e-4f);
}

TEST(FoldBatchNorm, RejectsLeadingBatchNorm) {
  ModelBuilder b{Shape::chw(1, 4, 4)};
  b.batchnorm().flatten().dense(2);
  Model m = b.build(1);
  EXPECT_THROW(fold_batchnorm(m), std::invalid_argument);
}

TEST(CalibrateBatchNorm, SetsDataStatistics) {
  ModelBuilder b{Shape::vec(4)};
  b.dense(6).batchnorm().relu().dense(2);
  Model m = b.build(12);
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(4);
  util::Xoshiro256 rng{13};
  for (int i = 0; i < 50; ++i) {
    Sample s;
    s.input = Tensor{Shape::vec(4)};
    s.input.init_uniform(rng, 0.0f, 1.0f);
    s.label = 0;
    ds.samples.push_back(std::move(s));
  }
  calibrate_batchnorm(m, ds);
  const auto& bn = dynamic_cast<const BatchNorm&>(m.layer(1));
  // After calibration the running variance reflects the data, not 1.0.
  EXPECT_NE(bn.running_var()[0], 1.0f);
  // And forward still works.
  EXPECT_NO_THROW(m.forward(ds.samples[0].input));
}

}  // namespace
}  // namespace sx::dl
