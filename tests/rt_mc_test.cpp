#include <gtest/gtest.h>

#include "rt/mixed_criticality.hpp"

namespace sx::rt {
namespace {

/// Textbook-style AMC set: one HI task with a 2x certified budget, two LO
/// tasks. Schedulable in LO mode; HI task survives the mode switch.
McTaskSet demo_set() {
  McTaskSet ts;
  ts.add(McTask{.name = "dl-hi", .period = 100, .deadline = 0,
                .priority = 0, .high_criticality = true, .wcet_lo = 20,
                .wcet_hi = 40});
  ts.add(McTask{.name = "video-lo", .period = 200, .deadline = 0,
                .priority = 0, .high_criticality = false, .wcet_lo = 40,
                .wcet_hi = 0});
  ts.add(McTask{.name = "log-lo", .period = 400, .deadline = 0,
                .priority = 0, .high_criticality = false, .wcet_lo = 40,
                .wcet_hi = 0});
  ts.assign_deadline_monotonic();
  return ts;
}

// ----------------------------------------------------------------- task set

TEST(McTaskSet, ValidatesBudgets) {
  McTaskSet ts;
  EXPECT_THROW(ts.add(McTask{.name = "x", .period = 10,
                             .high_criticality = true, .wcet_lo = 5,
                             .wcet_hi = 3}),
               std::invalid_argument);
  EXPECT_THROW(ts.add(McTask{.name = "x", .period = 0, .wcet_lo = 1}),
               std::invalid_argument);
}

TEST(McTaskSet, LoTasksGetSingleBudget) {
  McTaskSet ts;
  ts.add(McTask{.name = "lo", .period = 10, .high_criticality = false,
                .wcet_lo = 3, .wcet_hi = 99});
  EXPECT_EQ(ts.tasks[0].wcet_hi, 3u);
}

TEST(McTaskSet, UtilizationPerMode) {
  const McTaskSet ts = demo_set();
  EXPECT_NEAR(ts.utilization(Mode::kLo), 0.2 + 0.2 + 0.1, 1e-12);
  EXPECT_NEAR(ts.utilization(Mode::kHi), 0.4, 1e-12);
}

// --------------------------------------------------------------------- RTA

TEST(AmcRtb, DemoSetSchedulable) {
  const McTaskSet ts = demo_set();
  const McRtaResult r = amc_rtb(ts);
  EXPECT_TRUE(r.schedulable);
  // Hand check: HI task has top priority (shortest deadline) -> R_LO = 20,
  // steady HI = 40, transition = 40 (no higher-priority tasks at all).
  EXPECT_EQ(r.lo[0].value(), 20u);
  EXPECT_EQ(r.hi[0].value(), 40u);
  EXPECT_EQ(r.transition[0].value(), 40u);
  // LO tasks have LO-mode response times only.
  EXPECT_TRUE(r.lo[1].has_value());
  EXPECT_FALSE(r.hi[1].has_value());
}

TEST(AmcRtb, TransitionBoundDominatesWhenLoInterferes) {
  // HI task at *lower* priority than a LO task: the transition bound must
  // include the LO task's pre-switch interference.
  McTaskSet ts;
  ts.add(McTask{.name = "lo-fast", .period = 50, .deadline = 50,
                .priority = 2, .high_criticality = false, .wcet_lo = 10});
  ts.add(McTask{.name = "hi-slow", .period = 200, .deadline = 200,
                .priority = 1, .high_criticality = true, .wcet_lo = 30,
                .wcet_hi = 60});
  const McRtaResult r = amc_rtb(ts);
  ASSERT_TRUE(r.transition[1].has_value());
  // Steady HI sees no interference (only HI tasks), transition does.
  EXPECT_GT(*r.transition[1], *r.hi[1]);
  EXPECT_TRUE(r.schedulable);
}

TEST(AmcRtb, EqualPriorityInterferenceRefusesOverload) {
  // Regression: two HI tasks with identical user-set priorities. Each fits
  // alone at C(HI), but a runtime tie-break can run either first, so each
  // must charge the other's C(HI): 6 + 6 = 12 > 10 in HI mode. The old
  // analysis skipped equal-priority interference and certified both.
  McTaskSet ts;
  ts.add(McTask{.name = "a", .period = 10, .deadline = 10, .priority = 1,
                .high_criticality = true, .wcet_lo = 4, .wcet_hi = 6});
  ts.add(McTask{.name = "b", .period = 10, .deadline = 10, .priority = 1,
                .high_criticality = true, .wcet_lo = 4, .wcet_hi = 6});
  const McRtaResult r = amc_rtb(ts);
  EXPECT_FALSE(r.schedulable);
  // LO mode still fits (4 + 4 = 8 <= 10), steady HI does not.
  EXPECT_TRUE(r.lo[0].has_value());
  EXPECT_FALSE(r.hi[0].has_value());
  EXPECT_FALSE(r.hi[1].has_value());
}

TEST(AmcRtb, NearMaxBudgetsRefusedNotWrapped) {
  // Regression: fixed_point accumulated ((r + T - 1) / T) * C with
  // wrapping uint64 arithmetic; the interferer below makes the victim's
  // first LO-mode iterate 2^32 + 2^32 * 2^32 == 2^32 (mod 2^64) — a
  // fabricated fixed point far below the deadline. The saturating
  // analysis refuses the victim in every mode.
  McTaskSet ts;
  const std::uint64_t big = std::uint64_t{1} << 32;
  ts.add(McTask{.name = "hp", .period = 1, .deadline = 1, .priority = 2,
                .high_criticality = true, .wcet_lo = big, .wcet_hi = big});
  ts.add(McTask{.name = "victim", .period = big << 8, .deadline = big << 8,
                .priority = 1, .high_criticality = true, .wcet_lo = big,
                .wcet_hi = big});
  const McRtaResult r = amc_rtb(ts);
  EXPECT_FALSE(r.schedulable);
  EXPECT_FALSE(r.lo[1].has_value())
      << "wrapped LO-mode interference must not certify the victim";
  EXPECT_FALSE(r.hi[1].has_value());
}

TEST(AmcRtb, OverloadedHiModeUnschedulable) {
  McTaskSet ts;
  ts.add(McTask{.name = "hi1", .period = 10, .deadline = 10, .priority = 2,
                .high_criticality = true, .wcet_lo = 3, .wcet_hi = 7});
  ts.add(McTask{.name = "hi2", .period = 10, .deadline = 10, .priority = 1,
                .high_criticality = true, .wcet_lo = 3, .wcet_hi = 7});
  const McRtaResult r = amc_rtb(ts);
  EXPECT_FALSE(r.schedulable);
}

// --------------------------------------------------------------- simulation

TEST(McSim, NoSwitchWhenWithinLoBudgets) {
  const McTaskSet ts = demo_set();
  const McSimResult r = simulate_mc(ts, McSimConfig{.duration = 100'000});
  EXPECT_EQ(r.mode_switches, 0u);
  EXPECT_EQ(r.hi_misses, 0u);
  EXPECT_EQ(r.lo_misses, 0u);
  EXPECT_EQ(r.lo_dropped, 0u);
  EXPECT_GT(r.hi_jobs, 0u);
}

TEST(McSim, OverrunTriggersSwitchAndProtectsHi) {
  const McTaskSet ts = demo_set();
  // Every 5th HI job overruns to its HI budget.
  std::size_t count = 0;
  const McExecFn exec = [&count](const McTask& t, Mode,
                                 util::Xoshiro256&) -> std::uint64_t {
    if (!t.high_criticality) return t.wcet_lo;
    return (++count % 5 == 0) ? t.wcet_hi : t.wcet_lo;
  };
  const McSimResult r =
      simulate_mc(ts, McSimConfig{.duration = 200'000}, exec);
  EXPECT_GT(r.mode_switches, 0u);
  EXPECT_EQ(r.hi_misses, 0u) << "HI deadlines must hold across switches";
  EXPECT_GT(r.lo_dropped, 0u) << "LO jobs must be shed in HI mode";
}

TEST(McSim, ReturnsToLoModeOnIdle) {
  const McTaskSet ts = demo_set();
  std::size_t count = 0;
  const McExecFn exec = [&count](const McTask& t, Mode,
                                 util::Xoshiro256&) -> std::uint64_t {
    if (!t.high_criticality) return t.wcet_lo;
    return (++count == 1) ? t.wcet_hi : t.wcet_lo;  // single early overrun
  };
  const McSimResult r =
      simulate_mc(ts, McSimConfig{.duration = 200'000}, exec);
  EXPECT_EQ(r.mode_switches, 1u);
  // After returning to LO mode, LO jobs run again: far more LO jobs
  // completed than were dropped.
  EXPECT_GT(r.lo_jobs, 10 * r.lo_dropped);
}

TEST(McSim, NoReturnPolicyKeepsDroppingLo) {
  const McTaskSet ts = demo_set();
  std::size_t count = 0;
  const McExecFn exec = [&count](const McTask& t, Mode,
                                 util::Xoshiro256&) -> std::uint64_t {
    if (!t.high_criticality) return t.wcet_lo;
    return (++count == 1) ? t.wcet_hi : t.wcet_lo;
  };
  const McSimResult stay = simulate_mc(
      ts, McSimConfig{.duration = 200'000, .return_to_lo_on_idle = false},
      exec);
  const McSimResult back = simulate_mc(
      ts, McSimConfig{.duration = 200'000, .return_to_lo_on_idle = true},
      exec);
  EXPECT_GT(stay.lo_dropped, back.lo_dropped);
}

TEST(McSim, UnfinishedJobsPastDeadlineCountAsMisses) {
  // Regression: jobs still in the ready queue when the horizon ends were
  // dropped without a finish_job() call, so a deadline that had already
  // passed *inside* the horizon was never counted — miss-rate evidence
  // was optimistic. A job with 60 units of demand, a deadline at t=10 and
  // a 50-unit horizon has missed by any account.
  {
    McTaskSet ts;
    ts.add(McTask{.name = "lo", .period = 100, .deadline = 10,
                  .high_criticality = false, .wcet_lo = 60});
    const McSimResult r = simulate_mc(ts, McSimConfig{.duration = 50});
    EXPECT_EQ(r.lo_misses, 1u);
  }
  {
    McTaskSet ts;
    ts.add(McTask{.name = "hi", .period = 100, .deadline = 10,
                  .high_criticality = true, .wcet_lo = 60, .wcet_hi = 60});
    const McSimResult r = simulate_mc(ts, McSimConfig{.duration = 50});
    EXPECT_EQ(r.hi_misses, 1u);
  }
}

TEST(McSim, JobsWithDeadlineBeyondHorizonAreCensoredNotMisses) {
  // The flush must not over-count: a pending job whose absolute deadline
  // lies at or past the horizon has an unknown outcome, not a miss.
  McTaskSet ts;
  ts.add(McTask{.name = "lo", .period = 100, .deadline = 90,
                .high_criticality = false, .wcet_lo = 60});
  const McSimResult r = simulate_mc(ts, McSimConfig{.duration = 50});
  EXPECT_EQ(r.lo_misses, 0u);
}

TEST(McSim, RejectsEmptySet) {
  McTaskSet empty;
  EXPECT_THROW(simulate_mc(empty, McSimConfig{}), std::invalid_argument);
}

// Property sweep: for AMC-schedulable random sets where HI tasks overrun
// randomly, HI deadlines never break in simulation.
class McSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McSweep, HiAlwaysSafeWhenAmcSchedulable) {
  util::Xoshiro256 rng{GetParam()};
  McTaskSet ts;
  ts.add(McTask{.name = "hi", .period = 80 + rng.below(40), .deadline = 0,
                .priority = 0, .high_criticality = true,
                .wcet_lo = 10 + rng.below(5),
                .wcet_hi = 25 + rng.below(10)});
  ts.add(McTask{.name = "lo1", .period = 150 + rng.below(100), .deadline = 0,
                .priority = 0, .high_criticality = false,
                .wcet_lo = 15 + rng.below(10)});
  ts.add(McTask{.name = "lo2", .period = 300 + rng.below(200), .deadline = 0,
                .priority = 0, .high_criticality = false,
                .wcet_lo = 20 + rng.below(20)});
  ts.assign_deadline_monotonic();
  if (!amc_rtb(ts).schedulable) GTEST_SKIP() << "set not AMC-schedulable";

  const McExecFn exec = [](const McTask& t, Mode,
                           util::Xoshiro256& r) -> std::uint64_t {
    if (!t.high_criticality) return t.wcet_lo;
    return r.uniform() < 0.2 ? t.wcet_hi : t.wcet_lo;
  };
  const McSimResult r = simulate_mc(
      ts, McSimConfig{.duration = 300'000, .seed = GetParam()}, exec);
  EXPECT_EQ(r.hi_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace sx::rt
