#include <gtest/gtest.h>

#include <cmath>

#include "tensor/arena.hpp"
#include "tensor/ops.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sx::tensor {
namespace {

// ------------------------------------------------------------------- Shape

TEST(Shape, ScalarHasOneElement) {
  const Shape s = Shape::scalar();
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Shape, SizesMultiply) {
  const Shape s = Shape::chw(3, 4, 5);
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.size(), 60u);
  EXPECT_EQ(s[0], 3u);
  EXPECT_EQ(s[1], 4u);
  EXPECT_EQ(s[2], 5u);
}

TEST(Shape, OutOfRangeDimIsOne) {
  const Shape s = Shape::vec(7);
  EXPECT_EQ(s.dim(3), 1u);
}

TEST(Shape, EqualityIsStructural) {
  EXPECT_EQ(Shape::mat(2, 3), Shape::mat(2, 3));
  EXPECT_NE(Shape::mat(2, 3), Shape::mat(3, 2));
  EXPECT_NE(Shape::vec(6), Shape::mat(2, 3));  // same size, different rank
}

TEST(Shape, RejectsZeroDim) {
  EXPECT_THROW(Shape({0, 3}), std::invalid_argument);
}

TEST(Shape, RowMajorIndexing) {
  const Shape m = Shape::mat(3, 4);
  EXPECT_EQ(m.index(0, 0), 0u);
  EXPECT_EQ(m.index(1, 0), 4u);
  EXPECT_EQ(m.index(2, 3), 11u);
  const Shape c = Shape::chw(2, 3, 4);
  EXPECT_EQ(c.index(1, 0, 0), 12u);
  EXPECT_EQ(c.index(1, 2, 3), 23u);
}

TEST(Shape, ToStringReadable) {
  EXPECT_EQ(Shape::chw(1, 16, 16).to_string(), "[1x16x16]");
}

// ------------------------------------------------------------------- Arena

TEST(Arena, AllocatesUpToCapacity) {
  Arena a{100};
  const auto s1 = a.alloc(60);
  EXPECT_EQ(s1.size(), 60u);
  const auto s2 = a.alloc(40);
  EXPECT_EQ(s2.size(), 40u);
  EXPECT_EQ(a.available(), 0u);
}

TEST(Arena, ReturnsEmptyWhenExhausted) {
  Arena a{10};
  (void)a.alloc(8);
  const auto s = a.alloc(3);
  EXPECT_TRUE(s.empty());
}

TEST(Arena, ResetReleasesEverything) {
  Arena a{10};
  (void)a.alloc(10);
  a.reset();
  EXPECT_EQ(a.alloc(10).size(), 10u);
}

TEST(Arena, HighWaterMarkPersistsAcrossReset) {
  Arena a{100};
  (void)a.alloc(70);
  a.reset();
  (void)a.alloc(10);
  EXPECT_EQ(a.high_water_mark(), 70u);
}

TEST(Arena, DisjointAllocations) {
  Arena a{20};
  auto s1 = a.alloc(10);
  auto s2 = a.alloc(10);
  s1[9] = 1.0f;
  s2[0] = 2.0f;
  EXPECT_EQ(s1[9], 1.0f);  // no overlap
}

TEST(ByteArena, BackingStoreIsCacheLineAligned) {
  // The panel/arena layout math rounds offsets to 64-byte multiples; the
  // base must actually sit on a cache line for that to mean anything.
  ByteArena a{256};
  const auto s = a.alloc(64);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % kStorageAlignBytes,
            0u);
}

// ------------------------------------------------------------------ Tensor

TEST(Tensor, ConstructZeroed) {
  Tensor t{Shape::mat(2, 2)};
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(Tensor, RejectsSizeMismatch) {
  EXPECT_THROW(Tensor(Shape::vec(3), {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, ViewSharesStorage) {
  Tensor t{Shape::vec(4)};
  TensorView v = t.view();
  v.at(2) = 7.0f;
  EXPECT_EQ(t.at(2), 7.0f);
}

TEST(Tensor, ChwAccessorsMatchLinear) {
  Tensor t{Shape::chw(2, 2, 2)};
  t.at(1, 1, 1) = 5.0f;
  EXPECT_EQ(t.at(std::size_t{7}), 5.0f);
}

// --------------------------------------------------------------------- ops

TEST(Ops, AddSubMulScale) {
  Tensor a{Shape::vec(3), {1, 2, 3}};
  Tensor b{Shape::vec(3), {4, 5, 6}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(add(a.view(), b.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), 5.0f);
  ASSERT_EQ(sub(b.view(), a.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{2}), 3.0f);
  ASSERT_EQ(mul(a.view(), b.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{1}), 10.0f);
  ASSERT_EQ(scale(a.view(), 2.0f, out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{2}), 6.0f);
}

TEST(Ops, ShapeMismatchReported) {
  Tensor a{Shape::vec(3)};
  Tensor b{Shape::vec(4)};
  Tensor out{Shape::vec(3)};
  EXPECT_EQ(add(a.view(), b.view(), out.view()), Status::kShapeMismatch);
}

TEST(Ops, MatvecKnownValues) {
  // [[1,2],[3,4]] * [5,6] + [1,1] = [18, 40]
  Tensor w{Shape::mat(2, 2), {1, 2, 3, 4}};
  Tensor x{Shape::vec(2), {5, 6}};
  Tensor b{Shape::vec(2), {1, 1}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(matvec(w.view(), x.view(), b.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), 18.0f);
  EXPECT_EQ(out.at(std::size_t{1}), 40.0f);
}

TEST(Ops, DotProduct) {
  Tensor a{Shape::vec(3), {1, 2, 3}};
  Tensor b{Shape::vec(3), {4, 5, 6}};
  float d = 0.0f;
  ASSERT_EQ(dot(a.view(), b.view(), d), Status::kOk);
  EXPECT_EQ(d, 32.0f);
}

TEST(Ops, Norms) {
  Tensor a{Shape::vec(2), {3, 4}};
  EXPECT_FLOAT_EQ(l2_norm(a.view()), 5.0f);
  EXPECT_FLOAT_EQ(sum(a.view()), 7.0f);
  EXPECT_FLOAT_EQ(max_value(a.view()), 4.0f);
  EXPECT_EQ(argmax(a.view()), 1u);
}

TEST(Ops, SoftmaxSumsToOneAndOrders) {
  Tensor logits{Shape::vec(4), {1.0f, 2.0f, 3.0f, 0.5f}};
  Tensor out{Shape::vec(4)};
  ASSERT_EQ(softmax(logits.view(), out.view()), Status::kOk);
  float s = 0.0f;
  for (std::size_t i = 0; i < 4; ++i) s += out.at(i);
  EXPECT_NEAR(s, 1.0f, 1e-6f);
  EXPECT_EQ(argmax(out.view()), 2u);
}

TEST(Ops, SoftmaxStableForHugeLogits) {
  Tensor logits{Shape::vec(2), {10000.0f, 9999.0f}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(softmax(logits.view(), out.view()), Status::kOk);
  EXPECT_FALSE(has_non_finite(out.view()));
  EXPECT_GT(out.at(std::size_t{0}), out.at(std::size_t{1}));
}

TEST(Ops, ReluClampsNegatives) {
  Tensor a{Shape::vec(3), {-1.0f, 0.0f, 2.0f}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(relu(a.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), 0.0f);
  EXPECT_EQ(out.at(std::size_t{2}), 2.0f);
}

TEST(Ops, NonFiniteDetection) {
  Tensor a{Shape::vec(2), {1.0f, 2.0f}};
  EXPECT_FALSE(has_non_finite(a.view()));
  a.at(std::size_t{1}) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(has_non_finite(a.view()));
  a.at(std::size_t{1}) = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(has_non_finite(a.view()));
}

TEST(Ops, CopyChecksShape) {
  Tensor a{Shape::vec(2), {1, 2}};
  Tensor b{Shape::vec(2)};
  ASSERT_EQ(copy(a.view(), b.view()), Status::kOk);
  EXPECT_EQ(b.at(std::size_t{1}), 2.0f);
  Tensor c{Shape::vec(3)};
  EXPECT_EQ(copy(a.view(), c.view()), Status::kShapeMismatch);
}

// Property sweep: softmax output is a probability vector for random logits.
class SoftmaxProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoftmaxProperty, ProducesDistribution) {
  util::Xoshiro256 rng{GetParam()};
  Tensor logits{Shape::vec(8)};
  logits.init_uniform(rng, -20.0f, 20.0f);
  Tensor out{Shape::vec(8)};
  ASSERT_EQ(softmax(logits.view(), out.view()), Status::kOk);
  float s = 0.0f;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GE(out.at(i), 0.0f);
    EXPECT_LE(out.at(i), 1.0f);
    s += out.at(i);
  }
  EXPECT_NEAR(s, 1.0f, 1e-5f);
  // argmax is preserved
  EXPECT_EQ(argmax(out.view()), argmax(logits.view()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace sx::tensor
