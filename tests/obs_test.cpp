// Unit tests for the obs subsystem: static metrics registry (capacity,
// sharding, histograms, sample ring, exposition) and the flight-recorder
// evidence ring.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/snapshot.hpp"

namespace sx::obs {
namespace {

/// Deterministic clock: +7 per call, one counter per thread so paired
/// calls on any thread always measure the same elapsed time.
std::uint64_t& tick_ref() noexcept {
  thread_local std::uint64_t t = 0;
  return t;
}
std::uint64_t tick_now() noexcept { return tick_ref() += 7; }

RegistryConfig small_config() {
  RegistryConfig cfg;
  cfg.max_counters = 4;
  cfg.max_gauges = 2;
  cfg.max_histograms = 2;
  cfg.shards = 4;
  cfg.histogram_bins = 6;
  cfg.histogram_first_bound = 8;
  cfg.sample_capacity = 8;
  cfg.clock = &tick_now;
  return cfg;
}

// ----------------------------------------------------------- registration

TEST(Registry, RegistersAndFindsByName) {
  Registry r{small_config()};
  const CounterId a = r.counter("a_total");
  const GaugeId g = r.gauge("g");
  const HistogramId h = r.histogram("h_cycles");
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(g.valid());
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(r.find_counter("a_total").index, a.index);
  EXPECT_EQ(r.find_gauge("g").index, g.index);
  EXPECT_EQ(r.find_histogram("h_cycles").index, h.index);
  EXPECT_FALSE(r.find_counter("missing").valid());
}

TEST(Registry, RegistrationIsIdempotentByName) {
  Registry r{small_config()};
  const CounterId a = r.counter("a_total");
  const CounterId b = r.counter("a_total");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(r.counters(), 1u);
}

TEST(Registry, CapacityOverflowYieldsInvalidIdNotThrow) {
  Registry r{small_config()};  // max_counters = 4
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(r.counter("c" + std::to_string(i)).valid());
  const CounterId over = r.counter("c4");
  EXPECT_FALSE(over.valid());
  EXPECT_EQ(r.dropped_registrations(), 1u);
  // An invalid id is a safe no-op on the hot path.
  r.add(over, 100);
  EXPECT_EQ(r.value(over), 0u);
}

TEST(Registry, MalformedConfigThrowsAtDeployTime) {
  RegistryConfig cfg = small_config();
  cfg.shards = 0;
  EXPECT_THROW(Registry{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.histogram_bins = 0;
  EXPECT_THROW(Registry{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.clock = nullptr;
  EXPECT_THROW(Registry{cfg}, std::invalid_argument);
}

// ---------------------------------------------------------------- counters

TEST(Registry, MergedValueSumsShardsInStaticOrder) {
  Registry r{small_config()};
  const CounterId c = r.counter("items_total");
  r.add(c, 1, 0);
  r.add(c, 2, 1);
  r.add(c, 3, 2);
  r.add(c, 4, 3);
  EXPECT_EQ(r.value(c), 10u);
  EXPECT_EQ(r.shard_value(c, 1), 2u);
}

TEST(Registry, OutOfRangeShardFoldsWithoutLosingCounts) {
  Registry r{small_config()};  // 4 shards
  const CounterId c = r.counter("c_total");
  r.add(c, 5, 7);  // folds onto shard 7 % 4 == 3
  EXPECT_EQ(r.value(c), 5u);
  EXPECT_EQ(r.shard_value(c, 3), 5u);
}

TEST(Registry, ConcurrentShardedIncrementsMergeExactly) {
  Registry r{small_config()};
  const CounterId c = r.counter("c_total");
  constexpr std::uint64_t kPerWorker = 10000;
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < 4; ++w)
    workers.emplace_back([&r, c, w] {
      for (std::uint64_t i = 0; i < kPerWorker; ++i) r.add(c, 1, w);
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(r.value(c), 4 * kPerWorker);
}

// -------------------------------------------------------------- histograms

TEST(Registry, BinUpperBoundsArePowersOfTwoThenInf) {
  Registry r{small_config()};  // first_bound 8, 6 bins
  EXPECT_EQ(r.bin_upper_bound(0), 8u);
  EXPECT_EQ(r.bin_upper_bound(1), 16u);
  EXPECT_EQ(r.bin_upper_bound(4), 128u);
  EXPECT_EQ(r.bin_upper_bound(5), UINT64_MAX);  // +Inf bin
}

TEST(Registry, ObservationsLandInCorrectBins) {
  Registry r{small_config()};
  const HistogramId h = r.histogram("lat");
  r.observe(h, 8);    // boundary: bin 0 (inclusive upper bound)
  r.observe(h, 9);    // bin 1
  r.observe(h, 128);  // bin 4
  r.observe(h, 129);  // overflow: +Inf bin
  const HistogramSnapshot s = r.histogram_snapshot(h);
  EXPECT_EQ(s.bins[0], 1u);
  EXPECT_EQ(s.bins[1], 1u);
  EXPECT_EQ(s.bins[4], 1u);
  EXPECT_EQ(s.bins[5], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 8u + 9u + 128u + 129u);
  EXPECT_EQ(s.min, 8u);
  EXPECT_EQ(s.max, 129u);
}

TEST(Registry, DrainSamplesReturnsOldestFirstAndConsumes) {
  Registry r{small_config()};
  const HistogramId h = r.histogram("lat");
  for (std::uint64_t v = 1; v <= 5; ++v) r.observe(h, v);
  EXPECT_EQ(r.sample_count(h), 5u);
  std::vector<double> out(3);
  EXPECT_EQ(r.drain_samples(h, out), 3u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[2], 3.0);
  EXPECT_EQ(r.sample_count(h), 2u);
  out.assign(8, 0.0);
  EXPECT_EQ(r.drain_samples(h, out), 2u);
  EXPECT_EQ(out[0], 4.0);
  EXPECT_EQ(out[1], 5.0);
  EXPECT_EQ(r.sample_count(h), 0u);
}

TEST(Registry, SampleRingOverwritesOldestAndCountsDrops) {
  Registry r{small_config()};  // sample_capacity = 8
  const HistogramId h = r.histogram("lat");
  for (std::uint64_t v = 1; v <= 11; ++v) r.observe(h, v);
  EXPECT_EQ(r.sample_count(h), 8u);
  const HistogramSnapshot s = r.histogram_snapshot(h);
  EXPECT_EQ(s.dropped_samples, 3u);
  EXPECT_EQ(s.count, 11u);  // bins still count everything
  std::vector<double> out(8);
  EXPECT_EQ(r.drain_samples(h, out), 8u);
  EXPECT_EQ(out[0], 4.0);   // 1..3 were overwritten
  EXPECT_EQ(out[7], 11.0);
}

// -------------------------------------------------------------- exposition

TEST(Registry, ExposeTextIsPrometheusShapedAndDeterministic) {
  Registry r{small_config()};
  const CounterId c = r.counter("sx_items_total");
  const GaugeId g = r.gauge("sx_budget");
  const HistogramId h = r.histogram("sx_lat_cycles");
  r.add(c, 3, 0);
  r.add(c, 2, 2);
  r.set(g, 1.5);
  r.observe(h, 10);
  const std::string text = expose_text(r);
  EXPECT_NE(text.find("# TYPE sx_items_total counter"), std::string::npos);
  EXPECT_NE(text.find("sx_items_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sx_budget gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sx_lat_cycles histogram"), std::string::npos);
  EXPECT_NE(text.find("sx_lat_cycles_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sx_lat_cycles_count 1"), std::string::npos);
  // Per-shard values must never leak into the exposition (they depend on
  // the worker layout; the merged value does not).
  EXPECT_EQ(text.find("shard"), std::string::npos);
  EXPECT_EQ(text, expose_text(r));  // byte-stable
}

// -------------------------------------------------------------- StageTimer

TEST(StageTimer, RecordsElapsedOnceWithInjectedClock) {
  Registry r{small_config()};
  const HistogramId h = r.histogram("stage");
  {
    StageTimer t{r, h};
    EXPECT_EQ(t.stop(), 7u);  // consecutive ticks are 7 apart
    t.stop();                 // idempotent
  }
  EXPECT_EQ(r.histogram_snapshot(h).count, 1u);
}

// --------------------------------------------------------- FlightRecorder

TEST(FlightRecorder, RejectsZeroCapacity) {
  EXPECT_THROW(FlightRecorder{0}, std::invalid_argument);
}

TEST(FlightRecorder, RetainsSpansInOrder) {
  FlightRecorder fr{4};
  for (std::uint64_t d = 1; d <= 3; ++d)
    fr.record(StageSpan{d, Stage::kInference, Status::kOk, false, d * 10,
                        d * 10 + 5});
  EXPECT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.total_recorded(), 3u);
  std::vector<StageSpan> out(4);
  EXPECT_EQ(fr.snapshot(out), 3u);
  EXPECT_EQ(out[0].decision, 1u);
  EXPECT_EQ(out[2].decision, 3u);
}

TEST(FlightRecorder, WrapsAroundKeepingNewestAndLifetimeCount) {
  FlightRecorder fr{4};
  for (std::uint64_t d = 1; d <= 10; ++d)
    fr.record(StageSpan{d, Stage::kDecision, Status::kOk, false, d, d + 1});
  EXPECT_EQ(fr.size(), 4u);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.total_recorded(), 10u);  // truncation is evident
  std::vector<StageSpan> out(4);
  EXPECT_EQ(fr.snapshot(out), 4u);
  EXPECT_EQ(out[0].decision, 7u);  // oldest retained
  EXPECT_EQ(out[3].decision, 10u);
}

TEST(FlightRecorder, SnapshotDoesNotConsume) {
  FlightRecorder fr{4};
  fr.record(StageSpan{1, Stage::kOddGuard, Status::kOddViolation, true, 0, 7});
  std::vector<StageSpan> out(4);
  EXPECT_EQ(fr.snapshot(out), 1u);
  EXPECT_EQ(fr.snapshot(out), 1u);
  EXPECT_EQ(fr.size(), 1u);
}

TEST(FlightRecorder, ToTextNamesEveryStage) {
  FlightRecorder fr{8};
  for (const Stage s :
       {Stage::kStaticVerify, Stage::kOddGuard, Stage::kWatchdog,
        Stage::kInference, Stage::kSupervisor, Stage::kFallback,
        Stage::kDecision})
    fr.record(StageSpan{1, s, Status::kOk, false, 0, 1});
  const std::string text = fr.to_text();
  for (const Stage s :
       {Stage::kStaticVerify, Stage::kOddGuard, Stage::kWatchdog,
        Stage::kInference, Stage::kSupervisor, Stage::kFallback,
        Stage::kDecision})
    EXPECT_NE(text.find(to_string(s)), std::string::npos) << to_string(s);
}

// ------------------------------------------------------ registry snapshots

TEST(RegistrySnapshot, CaptureFreezesRegistryValues) {
  Registry r{small_config()};
  const CounterId c = r.counter("sx_items_total");
  const GaugeId g = r.gauge("sx_budget");
  const HistogramId h = r.histogram("sx_lat_cycles");
  r.add(c, 5);
  r.set(g, 1.5);
  r.observe(h, 10);
  r.observe(h, 200);
  const RegistrySnapshot snap = RegistrySnapshot::capture(r);
  EXPECT_EQ(snap.counter_value("sx_items_total"), 5u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_EQ(snap.histograms[0].sum, 210u);
  EXPECT_EQ(snap.histograms[0].min, 10u);
  EXPECT_EQ(snap.histograms[0].max, 200u);
  // Snapshot outlives the registry: values above are owned copies.
  r.add(c, 1);
  EXPECT_EQ(snap.counter_value("sx_items_total"), 5u);
}

RegistrySnapshot worker_snapshot(std::uint64_t items,
                                 std::uint64_t observations, double budget) {
  Registry r{small_config()};  // sample_capacity = 8
  const CounterId c = r.counter("sx_items_total");
  const GaugeId g = r.gauge("sx_budget");
  const HistogramId h = r.histogram("sx_lat_cycles");
  r.add(c, items);
  r.set(g, budget);
  for (std::uint64_t v = 1; v <= observations; ++v) r.observe(h, v);
  return RegistrySnapshot::capture(r);
}

TEST(RegistrySnapshot, MergeSumsCountersAndCarriesDroppedSamples) {
  // 11 and 10 observations into capacity-8 rings: 3 + 2 raw samples were
  // overwritten before a drain — the merged evidence must say so.
  const RegistrySnapshot a = worker_snapshot(5, 11, 1.5);
  const RegistrySnapshot b = worker_snapshot(7, 10, 9.0);
  EXPECT_EQ(a.total_dropped_samples(), 3u);
  EXPECT_EQ(b.total_dropped_samples(), 2u);
  RegistrySnapshot merged = a;
  ASSERT_EQ(merged.merge_from(b), Status::kOk);
  EXPECT_EQ(merged.counter_value("sx_items_total"), 12u);
  EXPECT_EQ(merged.total_dropped_samples(), 5u);  // no silent sample loss
  EXPECT_EQ(merged.histograms[0].count, 21u);
  EXPECT_EQ(merged.histograms[0].sum, 66u + 55u);
  EXPECT_EQ(merged.histograms[0].min, 1u);
  EXPECT_EQ(merged.histograms[0].max, 11u);
  // Gauges are point-in-time settings: the lowest-ordered shard wins.
  EXPECT_EQ(merged.gauges[0].value, 1.5);
  // The serialized coverage line carries the merged total.
  EXPECT_NE(merged.serialize().find("sx_samples_dropped_total 5\n"),
            std::string::npos);
}

TEST(RegistrySnapshot, NWayMergeFoldsInGivenOrder) {
  const std::vector<RegistrySnapshot> shards{worker_snapshot(1, 0, 4.0),
                                             worker_snapshot(2, 0, 5.0),
                                             worker_snapshot(3, 0, 6.0)};
  RegistrySnapshot out;
  ASSERT_EQ(RegistrySnapshot::merge(shards, out), Status::kOk);
  EXPECT_EQ(out.counter_value("sx_items_total"), 6u);
  EXPECT_EQ(out.gauges[0].value, 4.0);  // shard 0's gauge
  RegistrySnapshot empty;
  ASSERT_EQ(RegistrySnapshot::merge({}, empty), Status::kOk);
  EXPECT_TRUE(empty.counters.empty());
}

TEST(RegistrySnapshot, SchemaMismatchIsRefusedAndTargetUnchanged) {
  RegistrySnapshot a = worker_snapshot(5, 0, 1.0);
  Registry other{small_config()};
  other.counter("sx_other_total");  // different metric name
  const RegistrySnapshot b = RegistrySnapshot::capture(other);
  const std::string before = a.serialize();
  EXPECT_EQ(a.merge_from(b), Status::kInvalidArgument);
  EXPECT_EQ(a.serialize(), before);  // refusal leaves the target intact
  EXPECT_FALSE(a.same_schema(b));
  EXPECT_TRUE(a.same_schema(worker_snapshot(9, 4, 2.0)));  // values differ ok
}

TEST(RegistrySnapshot, SerializationRoundTripsByteIdentically) {
  const RegistrySnapshot snap = worker_snapshot(5, 11, 1.5);
  const std::string text = snap.serialize();
  EXPECT_EQ(text, snap.serialize());  // deterministic
  RegistrySnapshot reparsed;
  ASSERT_TRUE(RegistrySnapshot::parse(text, reparsed));
  EXPECT_EQ(reparsed.serialize(), text);  // parse inverts serialize
  EXPECT_TRUE(reparsed.same_schema(snap));
  EXPECT_EQ(reparsed.total_dropped_samples(), 3u);
}

TEST(RegistrySnapshot, ParseRefusesEditedCoverageClaim) {
  std::string text = worker_snapshot(5, 11, 1.5).serialize();
  // Hand-edit the derived coverage line: claim fewer drops than the
  // histogram rows record. The file must be refused, not trusted.
  const std::string honest = "sx_samples_dropped_total 3";
  const std::size_t at = text.find(honest);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, honest.size(), "sx_samples_dropped_total 0");
  RegistrySnapshot out;
  EXPECT_FALSE(RegistrySnapshot::parse(text, out));
}

TEST(RegistrySnapshot, ParseRefusesMalformedText) {
  RegistrySnapshot out;
  EXPECT_FALSE(RegistrySnapshot::parse("", out));
  EXPECT_FALSE(RegistrySnapshot::parse("wrong-schema/9\n", out));
  // Truncated: counters promised but missing.
  EXPECT_FALSE(RegistrySnapshot::parse(
      "sx-registry-snapshot/1\nhistogram_first_bound 8\n"
      "dropped_registrations 0\nsx_samples_dropped_total 0\ncounters 2\n",
      out));
}

}  // namespace
}  // namespace sx::obs
