// Golden-vector kernel tests: matvec, softmax, l2_norm and argmax pinned
// against hand-computed vectors and a naive double-precision reference.
// Kernel refactors (vectorization, blocking, fused paths) must reproduce
// these exact results or fail loudly — numeric drift in a certified DL
// library is a silent-safety defect, not an optimization detail.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace sx::tensor {
namespace {

// ---------------------------------------------------------------- matvec

TEST(MatvecGolden, HandComputedVectors) {
  // w = [[1 2 3], [4 5 6]], x = [1 1 1], b = [0.5 -0.5]
  Tensor w{Shape::mat(2, 3), {1, 2, 3, 4, 5, 6}};
  Tensor x{Shape::vec(3), {1, 1, 1}};
  Tensor b{Shape::vec(2), {0.5f, -0.5f}};
  Tensor out{Shape::vec(2)};
  ASSERT_EQ(matvec(w.view(), x.view(), b.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), 6.5f);
  EXPECT_EQ(out.at(std::size_t{1}), 14.5f);

  // Identity weights reproduce the input; zero bias.
  Tensor id{Shape::mat(3, 3), {1, 0, 0, 0, 1, 0, 0, 0, 1}};
  Tensor v{Shape::vec(3), {-1.25f, 0.0f, 7.5f}};
  Tensor zb{Shape::vec(3), {0, 0, 0}};
  Tensor idout{Shape::vec(3)};
  ASSERT_EQ(matvec(id.view(), v.view(), zb.view(), idout.view()),
            Status::kOk);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(idout.at(i), v.at(i));

  // Signs and cancellation: w = [[1 -1]], x = [3 3], b = [2] -> [2].
  Tensor wc{Shape::mat(1, 2), {1, -1}};
  Tensor xc{Shape::vec(2), {3, 3}};
  Tensor bc{Shape::vec(1), {2}};
  Tensor oc{Shape::vec(1)};
  ASSERT_EQ(matvec(wc.view(), xc.view(), bc.view(), oc.view()), Status::kOk);
  EXPECT_EQ(oc.at(std::size_t{0}), 2.0f);
}

TEST(MatvecGolden, MatchesDoubleReference) {
  util::Xoshiro256 rng{404};
  const std::size_t rows = 8, cols = 16;
  Tensor w{Shape::mat(rows, cols)};
  Tensor x{Shape::vec(cols)};
  Tensor b{Shape::vec(rows)};
  w.init_uniform(rng, -1.0f, 1.0f);
  x.init_uniform(rng, -1.0f, 1.0f);
  b.init_uniform(rng, -1.0f, 1.0f);
  Tensor out{Shape::vec(rows)};
  ASSERT_EQ(matvec(w.view(), x.view(), b.view(), out.view()), Status::kOk);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = static_cast<double>(b.at(r));
    for (std::size_t c = 0; c < cols; ++c)
      acc += static_cast<double>(w.at(r, c)) * static_cast<double>(x.at(c));
    // float32 accumulation over 16 terms stays within a tight envelope of
    // the float64 reference.
    EXPECT_NEAR(out.at(r), acc, 1e-4) << "row " << r;
  }
}

TEST(MatvecGolden, RejectsShapeMismatch) {
  Tensor w{Shape::mat(2, 3)};
  Tensor x{Shape::vec(4)};  // wrong
  Tensor b{Shape::vec(2)};
  Tensor out{Shape::vec(2)};
  EXPECT_EQ(matvec(w.view(), x.view(), b.view(), out.view()),
            Status::kShapeMismatch);
}

// ---------------------------------------------------------------- softmax

std::vector<double> softmax_f64(const std::vector<float>& logits) {
  double m = -std::numeric_limits<double>::infinity();
  for (float v : logits) m = std::max(m, static_cast<double>(v));
  std::vector<double> out(logits.size());
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(static_cast<double>(logits[i]) - m);
    z += out[i];
  }
  for (auto& v : out) v /= z;
  return out;
}

void expect_softmax_matches_reference(const std::vector<float>& logits) {
  Tensor in{Shape::vec(logits.size()), logits};
  Tensor out{Shape::vec(logits.size())};
  ASSERT_EQ(softmax(in.view(), out.view()), Status::kOk);
  const auto ref = softmax_f64(logits);
  float s = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_NEAR(out.at(i), ref[i], 1e-6) << "logit " << i;
    EXPECT_TRUE(std::isfinite(out.at(i)));
    s += out.at(i);
  }
  EXPECT_NEAR(s, 1.0f, 1e-5f);
}

TEST(SoftmaxGolden, HandComputedVectors) {
  // exp({0, ln2, ln4}) = {1, 2, 4} -> {1/7, 2/7, 4/7}.
  Tensor in{Shape::vec(3),
            {0.0f, std::log(2.0f), std::log(4.0f)}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(softmax(in.view(), out.view()), Status::kOk);
  EXPECT_NEAR(out.at(std::size_t{0}), 1.0 / 7.0, 1e-6);
  EXPECT_NEAR(out.at(std::size_t{1}), 2.0 / 7.0, 1e-6);
  EXPECT_NEAR(out.at(std::size_t{2}), 4.0 / 7.0, 1e-6);

  // All-equal logits: exactly uniform (exp(0) = 1 is exact in float).
  Tensor eq{Shape::vec(4), {5.0f, 5.0f, 5.0f, 5.0f}};
  Tensor eqo{Shape::vec(4)};
  ASSERT_EQ(softmax(eq.view(), eqo.view()), Status::kOk);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(eqo.at(i), 0.25f);
}

TEST(SoftmaxGolden, LargeLogitsDoNotOverflow) {
  // Naive exp() would overflow float at ~88; the max-subtraction trick
  // must keep these finite and exact relative to the f64 reference.
  expect_softmax_matches_reference({1000.0f, 999.0f, 998.0f});
  expect_softmax_matches_reference({3.0e38f, 0.0f});
  expect_softmax_matches_reference({88.0f, 89.0f, 90.0f});
}

TEST(SoftmaxGolden, VeryNegativeLogitsDoNotUnderflowToNaN) {
  expect_softmax_matches_reference({-1000.0f, -1001.0f, -1002.0f});
  expect_softmax_matches_reference({-3.0e38f, 0.0f});
  // One dominant logit: probability mass collapses onto it.
  Tensor in{Shape::vec(3), {0.0f, -200.0f, -200.0f}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(softmax(in.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), 1.0f);
  EXPECT_EQ(out.at(std::size_t{1}), 0.0f);
}

TEST(SoftmaxGolden, DuplicateMaxSplitsMassEqually) {
  Tensor in{Shape::vec(3), {3.0f, 1.0f, 3.0f}};
  Tensor out{Shape::vec(3)};
  ASSERT_EQ(softmax(in.view(), out.view()), Status::kOk);
  EXPECT_EQ(out.at(std::size_t{0}), out.at(std::size_t{2}));
  EXPECT_GT(out.at(std::size_t{0}), out.at(std::size_t{1}));
  expect_softmax_matches_reference({3.0f, 1.0f, 3.0f});
}

// ---------------------------------------------------------------- l2_norm

TEST(L2NormGolden, HandComputedVectors) {
  Tensor t34{Shape::vec(2), {3.0f, 4.0f}};
  EXPECT_EQ(l2_norm(t34.view()), 5.0f);

  Tensor zeros{Shape::vec(4)};
  EXPECT_EQ(l2_norm(zeros.view()), 0.0f);

  Tensor ones{Shape::vec(9), std::vector<float>(9, 1.0f)};
  EXPECT_EQ(l2_norm(ones.view()), 3.0f);

  // Sign-invariant.
  Tensor neg{Shape::vec(2), {-3.0f, -4.0f}};
  EXPECT_EQ(l2_norm(neg.view()), 5.0f);
}

TEST(L2NormGolden, MatchesDoubleReference) {
  util::Xoshiro256 rng{77};
  Tensor t{Shape::vec(64)};
  t.init_uniform(rng, -2.0f, 2.0f);
  double acc = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i)
    acc += static_cast<double>(t.at(i)) * static_cast<double>(t.at(i));
  EXPECT_NEAR(l2_norm(t.view()), std::sqrt(acc), 1e-3);
}

// ----------------------------------------------------------------- argmax

TEST(ArgmaxGolden, HandComputedVectors) {
  Tensor t{Shape::vec(4), {0.5f, 2.0f, -1.0f, 1.0f}};
  EXPECT_EQ(argmax(t.view()), 1u);

  Tensor single{Shape::vec(1), {-42.0f}};
  EXPECT_EQ(argmax(single.view()), 0u);

  Tensor allneg{Shape::vec(3), {-5.0f, -2.0f, -9.0f}};
  EXPECT_EQ(argmax(allneg.view()), 1u);

  // Ties resolve to the first maximum — the deterministic contract
  // decision paths (fallback class selection) rely on.
  Tensor tie{Shape::vec(4), {7.0f, 3.0f, 7.0f, 7.0f}};
  EXPECT_EQ(argmax(tie.view()), 0u);
}

TEST(ArgmaxGolden, MatchesDoubleReference) {
  util::Xoshiro256 rng{123};
  for (int rep = 0; rep < 20; ++rep) {
    Tensor t{Shape::vec(32)};
    t.init_uniform(rng, -10.0f, 10.0f);
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
      if (static_cast<double>(t.at(i)) > static_cast<double>(t.at(best)))
        best = i;
    EXPECT_EQ(argmax(t.view()), best) << "rep " << rep;
  }
}

}  // namespace
}  // namespace sx::tensor
