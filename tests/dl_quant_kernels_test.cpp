// Differential and golden tests for the planned int8 execution stack
// (dl/qplan): the planned QuantEngine must be *bitwise identical* to the
// reference QuantizedModel::run — dequantized logits AND per-layer
// saturation counters — at every kernel rung (reference, blocked, packed),
// for every weight granularity, across awkward shapes (tail dims off the
// 8-lane blocks, strides, padding), and through the quantized BatchRunner
// for every worker count. A golden-vector file pins one quantized CNN's
// logits against drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dl/batch.hpp"
#include "dl/qplan.hpp"
#include "dl/quant.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

Dataset toy_dataset(const Shape& input_shape, std::size_t n,
                    std::uint64_t seed, std::size_t classes = 3) {
  Dataset ds;
  ds.num_classes = classes;
  ds.input_shape = input_shape;
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{input_shape};
    // Wide range on purpose: requantization must clip on some samples so
    // the saturation-counter parity check is non-vacuous.
    s.input.init_uniform(rng, -2.0f, 2.0f);
    s.label = i % classes;
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

struct Arch {
  const char* name;
  Shape input;
  Model model;
};

// Shapes chosen to exercise every planner branch: dims that are not a
// multiple of the 8-lane blocks (tail handling), stride > 1, zero and
// non-zero padding, fused and unfused ReLU, pooling reference steps, and
// an exact-multiple control.
std::vector<Arch> sweep_archs() {
  std::vector<Arch> as;
  {
    ModelBuilder b{Shape::vec(13)};
    b.dense(17).relu().dense(9).relu().dense(5);
    as.push_back({"mlp-tails", Shape::vec(13), b.build(101)});
  }
  {
    ModelBuilder b{Shape::vec(16)};
    b.dense(8).relu().dense(8);
    as.push_back({"mlp-exact8", Shape::vec(16), b.build(102)});
  }
  {
    ModelBuilder b{Shape::chw(3, 9, 9)};
    b.conv2d(5, 3, /*stride=*/1, /*padding=*/1)
        .relu()
        .maxpool(3)
        .flatten()
        .dense(7);
    as.push_back({"cnn-pad1-pool", Shape::chw(3, 9, 9), b.build(103)});
  }
  {
    ModelBuilder b{Shape::chw(2, 11, 11)};
    b.conv2d(9, 3, /*stride=*/2, /*padding=*/0)
        .relu()
        .conv2d(4, 3, /*stride=*/1, /*padding=*/1)
        .flatten()
        .dense(6);
    as.push_back({"cnn-stride2-nopad", Shape::chw(2, 11, 11), b.build(104)});
  }
  {
    ModelBuilder b{Shape::chw(1, 8, 8)};
    b.conv2d(2, 3, /*stride=*/1, /*padding=*/1)
        .relu()
        .avgpool(2)
        .flatten()
        .dense(3);
    as.push_back({"cnn-avgpool", Shape::chw(1, 8, 8), b.build(105)});
  }
  return as;
}

bool bits_equal(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof ua);
  std::memcpy(&ub, &b, sizeof ub);
  return ua == ub;
}

// Reference vs planned engine on the same inputs: logits and per-layer
// counters must match bit for bit.
void expect_engine_matches_reference(const Arch& a, WeightGranularity gran,
                                     KernelMode mode) {
  SCOPED_TRACE(std::string(a.name) + " gran=" +
               std::string(to_string(gran)) +
               " mode=" + std::string(kernel_mode_name(mode)));
  const Dataset cal = toy_dataset(a.input, 12, 900 + a.input.size());
  const QuantizedModel qm =
      QuantizedModel::quantize(a.model, cal, QuantConfig{gran});
  QuantizedModel ref = qm;  // counters accumulate in the copy
  QuantEngine eng{qm, QuantEngineConfig{.kernels = mode}};

  const std::size_t n_out = qm.output_shape().size();
  std::vector<float> r(n_out), p(n_out);
  util::Xoshiro256 rng{77};
  for (int it = 0; it < 8; ++it) {
    Tensor in{a.input};
    in.init_uniform(rng, -2.5f, 2.5f);
    ASSERT_EQ(ref.run(in.view(), r), Status::kOk);
    ASSERT_EQ(eng.run(in.view(), p), Status::kOk);
    for (std::size_t i = 0; i < n_out; ++i)
      ASSERT_TRUE(bits_equal(r[i], p[i]))
          << "logit " << i << ": ref=" << r[i] << " planned=" << p[i];
  }
  const auto rc = ref.saturation_counts();
  const auto pc = eng.saturation_counts();
  ASSERT_EQ(rc.size(), pc.size());
  for (std::size_t i = 0; i < rc.size(); ++i)
    EXPECT_EQ(rc[i], pc[i]) << "saturation counter of layer " << i;
  EXPECT_GT(ref.saturation_total() + eng.run_count(), 0u);
  EXPECT_LE(eng.arena_high_water_mark(), eng.arena_capacity());
}

TEST(QuantKernelPlan, DifferentialSweepBitwiseIdentity) {
  for (const Arch& a : sweep_archs())
    for (WeightGranularity g :
         {WeightGranularity::kPerChannel, WeightGranularity::kPerTensor})
      for (KernelMode m : {KernelMode::kReference, KernelMode::kBlocked,
                           KernelMode::kPacked, KernelMode::kWide})
        expect_engine_matches_reference(a, g, m);
}

TEST(QuantKernelPlan, SweepClipsSomewhere) {
  // The sweep above is only meaningful if requantization actually clips on
  // these inputs; prove at least one architecture saturates.
  std::uint64_t clips = 0;
  for (const Arch& a : sweep_archs()) {
    const Dataset cal = toy_dataset(a.input, 12, 900 + a.input.size());
    QuantizedModel qm = QuantizedModel::quantize(a.model, cal);
    std::vector<float> out(qm.output_shape().size());
    util::Xoshiro256 rng{77};
    for (int it = 0; it < 8; ++it) {
      Tensor in{a.input};
      in.init_uniform(rng, -2.5f, 2.5f);
      ASSERT_EQ(qm.run(in.view(), out), Status::kOk);
    }
    clips += qm.saturation_total();
  }
  EXPECT_GT(clips, 0u) << "sweep inputs never saturate; widen their range";
}

TEST(QuantKernelPlan, PlanShapeMatchesArchitecture) {
  ModelBuilder b{Shape::chw(3, 9, 9)};
  b.conv2d(5, 3, 1, 1).relu().maxpool(3).flatten().dense(7);
  const Model m = b.build(103);
  const Dataset cal = toy_dataset(Shape::chw(3, 9, 9), 8, 41);
  const QuantizedModel qm = QuantizedModel::quantize(m, cal);

  const QuantKernelPlan plan{qm, KernelMode::kPacked};
  EXPECT_EQ(plan.mode(), KernelMode::kPacked);
  EXPECT_EQ(plan.planned_conv(), 1u);
  EXPECT_EQ(plan.planned_dense(), 1u);
  EXPECT_EQ(plan.fused_relus(), 1u);   // conv+relu fuse
  EXPECT_EQ(plan.removed_layers(), 1u);  // flatten dce'd outright
  EXPECT_EQ(plan.reference_steps(), 1u);  // maxpool
  EXPECT_GT(plan.panel_bytes(), 0u);
  EXPECT_GT(plan.table_entries(), 0u);
  EXPECT_GT(plan.scratch_bytes(), 0u);
  EXPECT_NE(plan.summary().find("mode=packed"), std::string::npos);

  const QuantKernelPlan blocked{qm, KernelMode::kBlocked};
  EXPECT_EQ(blocked.panel_bytes(), 0u);
}

TEST(QuantKernelPlan, RepackKeepsOutputsIdentical) {
  ModelBuilder b{Shape::vec(13)};
  b.dense(17).relu().dense(5);
  const Model m = b.build(9);
  const Dataset cal = toy_dataset(Shape::vec(13), 8, 43);
  const QuantizedModel qm = QuantizedModel::quantize(m, cal);
  QuantEngine eng{qm, QuantEngineConfig{.kernels = KernelMode::kPacked}};
  ASSERT_NE(eng.plan(), nullptr);

  Tensor in{Shape::vec(13)};
  util::Xoshiro256 rng{5};
  in.init_uniform(rng, -1.0f, 1.0f);
  std::vector<float> before(5), after(5);
  ASSERT_EQ(eng.run(in.view(), before), Status::kOk);
  const_cast<QuantKernelPlan*>(eng.plan())->repack();
  ASSERT_EQ(eng.run(in.view(), after), Status::kOk);
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_TRUE(bits_equal(before[i], after[i]));
}

TEST(QuantKernelPlan, PackedPanelsAreCacheLineAligned) {
  // The panel planners round every block offset up to 64-byte multiples;
  // that only delivers the documented cache-line alignment when the panel
  // base itself is 64-byte aligned (plain new[] guarantees ~16).
  for (const Arch& a : sweep_archs()) {
    const Dataset cal = toy_dataset(a.input, 8, 1300 + a.input.size());
    const QuantizedModel qm = QuantizedModel::quantize(a.model, cal);
    const QuantKernelPlan plan{qm, KernelMode::kPacked};
    for (const QuantKernelStep& s : plan.steps()) {
      if (s.panel == nullptr) continue;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.panel) %
                    tensor::qkernels::kAlignBytes,
                0u)
          << a.name << " step at layer " << s.first_layer;
    }
  }
}

TEST(QKernels, QuantizeSatClampsExtremeMagnitudes) {
  // Regression: the requantize epilogue cast v/scale to int unguarded —
  // UB once a degenerate scale or extreme accumulator pushed the rounded
  // quotient past the int range. It must saturate (and count) instead.
  namespace qk = tensor::qkernels;
  std::uint64_t sat = 0;
  EXPECT_EQ(qk::quantize_sat(1e30f, 1e-30f, &sat), 127);
  EXPECT_EQ(sat, 1u);
  EXPECT_EQ(qk::quantize_sat(-1e30f, 1e-30f, &sat), -127);
  EXPECT_EQ(sat, 2u);

  // The guarded clip keeps the reference thresholds exactly: trunc(q+0.5)
  // leaves the int8 range at |q| = 127.5, not before.
  sat = 0;
  EXPECT_EQ(qk::quantize_sat(127.4f, 1.0f, &sat), 127);
  EXPECT_EQ(qk::quantize_sat(-127.4f, 1.0f, &sat), -127);
  EXPECT_EQ(sat, 0u);
  EXPECT_EQ(qk::quantize_sat(127.5f, 1.0f, &sat), 127);
  EXPECT_EQ(qk::quantize_sat(-127.5f, 1.0f, &sat), -127);
  EXPECT_EQ(sat, 2u);

  // quantize_value must stay value-identical (it shares the epilogue
  // contract but never counts).
  for (float v : {0.0f, 0.4999f, -0.5f, 13.7f, 127.4f, 127.5f, -127.4f,
                  -127.5f, 1e30f, -1e30f})
    EXPECT_EQ(quantize_value(v, 1e-3f), qk::quantize_sat(v, 1e-3f, nullptr))
        << "v=" << v;
}

TEST(QuantKernelPlan, SharedPlanAcrossEngines) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  const QuantizedModel qm = QuantizedModel::quantize(m, ds);
  const QuantKernelPlan plan{qm, KernelMode::kBlocked};
  QuantEngine e1{qm, plan};
  QuantEngine e2{qm, plan};
  std::vector<float> a(qm.output_shape().size()), b(a.size());
  ASSERT_EQ(e1.run(ds.samples[0].input.view(), a), Status::kOk);
  ASSERT_EQ(e2.run(ds.samples[0].input.view(), b), Status::kOk);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(bits_equal(a[i], b[i]));
}

TEST(QuantEngine, RejectsWrongShapes) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  const QuantizedModel qm = QuantizedModel::quantize(m, ds);
  QuantEngine eng{qm};
  std::vector<float> out(qm.output_shape().size());
  Tensor bad{Shape::vec(7)};
  EXPECT_EQ(eng.run(bad.view(), out), Status::kShapeMismatch);
  std::vector<float> short_out(1);
  EXPECT_EQ(eng.run(ds.samples[0].input.view(), short_out),
            Status::kShapeMismatch);
  EXPECT_EQ(eng.run_count(), 0u);
}

// ------------------------------------------------------- batch executor

// Quantized batch dispatch: outputs, statuses and the per-layer clip
// counters must be bitwise identical for every worker count, and identical
// to the serial reference model.
TEST(QuantBatch, ScheduleIndependentAcrossWorkerCounts) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  const QuantizedModel qm = QuantizedModel::quantize(m, ds);

  const std::size_t count = 13;  // odd on purpose: ragged partition tails
  const std::size_t in_size = qm.input_shape().size();
  const std::size_t out_size = qm.output_shape().size();
  std::vector<float> inputs(count * in_size);
  for (std::size_t i = 0; i < count; ++i)
    for (std::size_t j = 0; j < in_size; ++j)
      inputs[i * in_size + j] = ds.samples[i].input.data()[j];

  // Serial reference.
  QuantizedModel ref = qm;
  std::vector<float> ref_out(count * out_size);
  for (std::size_t i = 0; i < count; ++i) {
    tensor::ConstTensorView v{
        std::span<const float>(inputs).subspan(i * in_size, in_size),
        qm.input_shape()};
    ASSERT_EQ(ref.run(v, std::span<float>(ref_out).subspan(i * out_size,
                                                           out_size)),
              Status::kOk);
  }

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    BatchRunner runner{qm, BatchRunnerConfig{.workers = workers}};
    ASSERT_TRUE(runner.quantized());
    std::vector<float> outputs(count * out_size, -1.0f);
    std::vector<Status> statuses(count, Status::kNotReady);
    ASSERT_EQ(runner.run(inputs, outputs, statuses), Status::kOk);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_EQ(statuses[i], Status::kOk) << "item " << i;
    for (std::size_t i = 0; i < outputs.size(); ++i)
      ASSERT_TRUE(bits_equal(outputs[i], ref_out[i]))
          << "output " << i << " diverges at workers=" << workers;
    EXPECT_EQ(runner.saturation_count(), ref.saturation_total());
    std::vector<std::uint64_t> per_layer(qm.layer_count(), 0);
    runner.saturation_counts_into(per_layer);
    const auto rc = ref.saturation_counts();
    for (std::size_t i = 0; i < per_layer.size(); ++i)
      EXPECT_EQ(per_layer[i], rc[i]) << "layer " << i;
    EXPECT_EQ(runner.numeric_fault_count(), 0u);
  }
}

TEST(QuantBatch, ReferenceModeHasNoPlanButSameBits) {
  const Model& m = sx::testing::trained_mlp();
  const auto& ds = sx::testing::road_data();
  const QuantizedModel qm = QuantizedModel::quantize(m, ds);
  const std::size_t in_size = qm.input_shape().size();
  const std::size_t out_size = qm.output_shape().size();
  const std::size_t count = 6;
  std::vector<float> inputs(count * in_size);
  for (std::size_t i = 0; i < count; ++i)
    for (std::size_t j = 0; j < in_size; ++j)
      inputs[i * in_size + j] = ds.samples[i].input.data()[j];
  std::vector<Status> statuses(count);

  BatchRunner planned{qm, BatchRunnerConfig{.workers = 2}};
  BatchRunner reference{
      qm, BatchRunnerConfig{.workers = 2, .kernels = KernelMode::kReference}};
  EXPECT_NE(planned.quant_kernel_plan(), nullptr);
  EXPECT_EQ(reference.quant_kernel_plan(), nullptr);
  EXPECT_EQ(planned.kernel_plan(), nullptr);  // float plan stays absent

  std::vector<float> a(count * out_size), b(count * out_size);
  ASSERT_EQ(planned.run(inputs, a, statuses), Status::kOk);
  ASSERT_EQ(reference.run(inputs, b, statuses), Status::kOk);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(bits_equal(a[i], b[i]));
  EXPECT_EQ(planned.saturation_count(), reference.saturation_count());
}

// ------------------------------------------------------- golden vectors

// Pinned logits of one quantized CNN (seeded untrained weights, toy
// calibration, four seeded inputs), stored as exact hex floats. Any change
// to the int8 numerics — kernels, epilogue, scale bookkeeping — trips this
// even if reference and planned paths drift together.
TEST(QuantGolden, CnnLogitsMatchGoldenFile) {
  ModelBuilder b{Shape::chw(3, 9, 9)};
  b.conv2d(5, 3, 1, 1).relu().maxpool(3).flatten().dense(7);
  const Model m = b.build(103);
  const Dataset cal = toy_dataset(Shape::chw(3, 9, 9), 12, 900 + 3 * 9 * 9);
  const QuantizedModel qm = QuantizedModel::quantize(m, cal);

  std::FILE* f = std::fopen(SX_TEST_DATA_DIR "/quant_cnn_golden.txt", "r");
  ASSERT_NE(f, nullptr) << "golden file missing";
  QuantEngine eng{qm, QuantEngineConfig{.kernels = KernelMode::kPacked}};
  QuantizedModel ref = qm;
  std::vector<float> planned(7), reference(7);
  util::Xoshiro256 rng{2024};
  for (int vec = 0; vec < 4; ++vec) {
    Tensor in{Shape::chw(3, 9, 9)};
    in.init_uniform(rng, -2.0f, 2.0f);
    ASSERT_EQ(eng.run(in.view(), planned), Status::kOk);
    ASSERT_EQ(ref.run(in.view(), reference), Status::kOk);
    for (std::size_t i = 0; i < 7; ++i) {
      float expected = 0.0f;
      ASSERT_EQ(std::fscanf(f, "%a", &expected), 1)
          << "golden file truncated at vector " << vec << " logit " << i;
      EXPECT_TRUE(bits_equal(planned[i], expected))
          << "planned logit " << i << " of vector " << vec << ": got "
          << planned[i] << " expected " << expected;
      EXPECT_TRUE(bits_equal(reference[i], expected))
          << "reference logit " << i << " of vector " << vec;
    }
  }
  std::fclose(f);
}

}  // namespace
}  // namespace sx::dl
