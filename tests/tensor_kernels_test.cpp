// Differential tests for the deploy-time kernel plans (PR: blocked
// matvec/GEMM, ragged-im2col Conv2d, fused epilogues).
//
// The load-bearing property is *bitwise* identity with the reference
// loops in tensor/ops.cpp and dl/layers.cpp — not approximate closeness:
// the golden vectors, the audit-trail hashes and the cross-worker
// determinism evidence all assume every engine produces the same bits.
// Every comparison here is on the float bit patterns.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/report.hpp"
#include "dl/batch.hpp"
#include "dl/engine.hpp"
#include "dl/layers.hpp"
#include "dl/model.hpp"
#include "dl/plan.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "verify/range.hpp"

namespace sx::tensor::kernels {
namespace {

using dl::KernelMode;
using dl::KernelPlan;
using dl::Model;
using dl::StaticEngine;
using dl::StaticEngineConfig;
using sx::Status;

/// Bitwise float equality (distinguishes -0.0f from 0.0f and compares NaN
/// payloads — exactly the identity the determinism evidence claims).
::testing::AssertionResult BitEqual(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " != " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i]))
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i]
             << " (bits 0x" << std::hex << std::bit_cast<std::uint32_t>(a[i])
             << " vs 0x" << std::bit_cast<std::uint32_t>(b[i]) << ")";
  }
  return ::testing::AssertionSuccess();
}

std::vector<float> random_vec(std::size_t n, util::Xoshiro256& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  return v;
}

// ------------------------------------------------------------- Dense

/// Reference y = W x + b via tensor::matvec, then the epilogue through the
/// actual activation Layer::forward (not apply_epilogue, so the test is
/// independent of the kernel header).
std::vector<float> dense_reference(const std::vector<float>& w,
                                   const std::vector<float>& b,
                                   std::size_t rows, std::size_t cols,
                                   const std::vector<float>& x,
                                   Epilogue ep) {
  std::vector<float> pre(rows);
  EXPECT_EQ(matvec({w, Shape::mat(rows, cols)}, {x, Shape::vec(cols)},
                   {b, Shape::vec(rows)},
                   TensorView{pre, Shape::vec(rows)}),
            Status::kOk);
  if (ep == Epilogue::kNone) return pre;
  std::vector<float> post(rows);
  const TensorView out{post, Shape::vec(rows)};
  const ConstTensorView in{pre, Shape::vec(rows)};
  switch (ep) {
    case Epilogue::kRelu: EXPECT_EQ(dl::Relu{}.forward(in, out), Status::kOk); break;
    case Epilogue::kSigmoid: EXPECT_EQ(dl::Sigmoid{}.forward(in, out), Status::kOk); break;
    case Epilogue::kTanh: EXPECT_EQ(dl::Tanh{}.forward(in, out), Status::kOk); break;
    case Epilogue::kNone: break;
  }
  return post;
}

TEST(MatvecBlocked, BitwiseEqualsReferenceAcrossOddShapes) {
  util::Xoshiro256 rng{2024};
  // Deliberately awkward sizes: below / at / above the 8-row block, primes,
  // and the benchmark sizes.
  const std::size_t sizes[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100};
  for (std::size_t rows : sizes) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                             std::size_t{32}, std::size_t{53}}) {
      const auto w = random_vec(rows * cols, rng);
      const auto b = random_vec(rows, rng);
      const auto x = random_vec(cols, rng);
      const auto ref = dense_reference(w, b, rows, cols, x, Epilogue::kNone);

      std::vector<float> out(rows, -7.0f);
      EXPECT_TRUE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                                 out.data(), Epilogue::kNone, true));
      EXPECT_TRUE(BitEqual(out, ref)) << rows << "x" << cols << " blocked";

      std::vector<float> panel(dense_panel_floats(rows, cols), -1.0f);
      pack_dense_panel(w.data(), rows, cols, panel.data());
      std::vector<float> out2(rows, -7.0f);
      EXPECT_TRUE(matvec_packed(panel.data(), b.data(), rows, cols, x.data(),
                                out2.data(), Epilogue::kNone, true));
      EXPECT_TRUE(BitEqual(out2, ref)) << rows << "x" << cols << " packed";
    }
  }
}

TEST(MatvecBlocked, FusedEpiloguesMatchActivationLayers) {
  util::Xoshiro256 rng{7};
  for (std::size_t rows : {std::size_t{5}, std::size_t{8}, std::size_t{19},
                           std::size_t{40}}) {
    const std::size_t cols = 23;
    const auto w = random_vec(rows * cols, rng);
    const auto b = random_vec(rows, rng);
    const auto x = random_vec(cols, rng);
    for (Epilogue ep : {Epilogue::kRelu, Epilogue::kSigmoid, Epilogue::kTanh}) {
      const auto ref = dense_reference(w, b, rows, cols, x, ep);
      std::vector<float> out(rows);
      EXPECT_TRUE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                                 out.data(), ep, true));
      EXPECT_TRUE(BitEqual(out, ref)) << "rows=" << rows << " ep="
                                      << static_cast<int>(ep);

      std::vector<float> panel(dense_panel_floats(rows, cols));
      pack_dense_panel(w.data(), rows, cols, panel.data());
      std::vector<float> out2(rows);
      EXPECT_TRUE(matvec_packed(panel.data(), b.data(), rows, cols, x.data(),
                                out2.data(), ep, true));
      EXPECT_TRUE(BitEqual(out2, ref)) << "packed rows=" << rows;
    }
  }
}

TEST(MatvecBlocked, CheckFlagsNonFinitePreActivation) {
  // relu(NaN) == 0 and sigmoid(+Inf) == 1 would silently mask a corrupted
  // accumulation; the kernels must report the fault the reference engine's
  // per-layer scan would have caught before the activation.
  const std::size_t rows = 9, cols = 4;
  util::Xoshiro256 rng{3};
  auto w = random_vec(rows * cols, rng);
  const auto b = random_vec(rows, rng);
  const auto x = random_vec(cols, rng);
  w[5 * cols + 2] = std::numeric_limits<float>::quiet_NaN();

  std::vector<float> out(rows);
  EXPECT_FALSE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                              out.data(), Epilogue::kRelu, true));
  // Unchecked mode still computes (campaign analyses run with checks off).
  EXPECT_TRUE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                             out.data(), Epilogue::kNone, false));
  EXPECT_TRUE(std::isnan(out[5]));

  std::vector<float> panel(dense_panel_floats(rows, cols));
  pack_dense_panel(w.data(), rows, cols, panel.data());
  EXPECT_FALSE(matvec_packed(panel.data(), b.data(), rows, cols, x.data(),
                             out.data(), Epilogue::kRelu, true));
}

TEST(DensePanel, LayoutIsAlignedAndExhaustive) {
  // Panel planner invariants the packer and kernel rely on: cache-line
  // granularity, and every weight present exactly once in block order.
  EXPECT_EQ(dense_panel_floats(8, 16) % kAlignFloats, 0u);
  EXPECT_EQ(dense_panel_floats(1, 1), kAlignFloats);  // one padded line

  const std::size_t rows = 11, cols = 3;  // one full block + 3-row tail
  util::Xoshiro256 rng{41};
  const auto w = random_vec(rows * cols, rng);
  std::vector<float> panel(dense_panel_floats(rows, cols), 99.0f);
  pack_dense_panel(w.data(), rows, cols, panel.data());

  // Full block: panel[c * kRowBlock + r] == w[r * cols + c].
  for (std::size_t r = 0; r < kRowBlock; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(panel[c * kRowBlock + r], w[r * cols + c]);
  // Tail block of 3 rows, interleaved at its own row count.
  const std::size_t tail_base = align_up(kRowBlock * cols);
  for (std::size_t r = 0; r < rows - kRowBlock; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(panel[tail_base + c * (rows - kRowBlock) + r],
                w[(kRowBlock + r) * cols + c]);
}

// ------------------------------------------------------------- Conv2d

TEST(Conv2dIm2col, BitwiseEqualsReferenceAcrossGeometries) {
  util::Xoshiro256 rng{11};
  for (std::size_t in_c : {1u, 2u, 3u}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      for (std::size_t stride : {1u, 2u}) {
        for (std::size_t pad : {0u, 1u, 2u}) {
         // 4 = one full lane group; 6 = one group + 2 tail channels that
         // the packed kernel must read from the live weights.
         for (std::size_t out_c : {4u, 6u}) {
          const std::size_t in_h = 7, in_w = 5;  // odd, non-square
          if (in_h + 2 * pad < k) continue;

          dl::Conv2d layer{in_c, out_c, k, stride, pad};
          layer.init(rng);
          Tensor in{Shape::chw(in_c, in_h, in_w)};
          in.init_uniform(rng, -1.0f, 1.0f);
          const Shape out_shape =
              layer.output_shape(Shape::chw(in_c, in_h, in_w));
          std::vector<float> ref(out_shape.size());
          ASSERT_EQ(layer.forward(in.view(),
                                  TensorView{ref, out_shape}),
                    Status::kOk);

          Conv2dGeom g{.in_c = in_c, .in_h = in_h, .in_w = in_w,
                       .out_c = out_c, .k = k, .stride = stride, .pad = pad};
          ASSERT_EQ(g.opix(), out_shape.dim(1) * out_shape.dim(2));
          const std::size_t entries = im2col_entries(g);
          std::vector<std::uint32_t> pix_off(g.opix() + 1), in_idx(entries),
              w_ofs(entries);
          build_im2col_tables(g, pix_off.data(), in_idx.data(), w_ofs.data());
          EXPECT_EQ(pix_off.front(), 0u);
          EXPECT_EQ(pix_off.back(), entries);

          std::vector<float> col(entries);
          im2col_gather(in.data().data(), in_idx.data(), entries, col.data());
          const ConvTables t{.out_c = out_c, .patch = g.patch(),
                             .opix = g.opix(), .pix_off = pix_off.data(),
                             .in_idx = in_idx.data(), .w_ofs = w_ofs.data()};
          std::vector<float> out(out_shape.size(), -7.0f);
          EXPECT_TRUE(conv2d_im2col(layer.weights().data(),
                                    layer.bias().data(), t, col.data(),
                                    out.data(), Epilogue::kNone, true));
          EXPECT_TRUE(BitEqual(out, ref))
              << "in_c=" << in_c << " k=" << k << " stride=" << stride
              << " pad=" << pad << " out_c=" << out_c;

          std::vector<float> panel(conv_panel_floats(out_c, g.patch()));
          ASSERT_FALSE(panel.empty());
          pack_conv_panel(layer.weights().data(), out_c, g.patch(),
                          panel.data());
          std::vector<float> packed(out_shape.size(), -7.0f);
          EXPECT_TRUE(conv2d_im2col_packed(
              panel.data(), layer.weights().data(), layer.bias().data(), t,
              col.data(), packed.data(), Epilogue::kNone, true));
          EXPECT_TRUE(BitEqual(packed, ref))
              << "packed in_c=" << in_c << " k=" << k << " stride=" << stride
              << " pad=" << pad << " out_c=" << out_c;
         }
        }
      }
    }
  }
}

TEST(Conv2dIm2col, InteriorPixelsCarryFullIdentityPatch) {
  // The contiguous-weight fast path triggers exactly when a pixel's valid
  // taps are the whole patch in natural order; with pad=1,k=3 the interior
  // of a 5x5 image must all be fast-path, the border ragged.
  const Conv2dGeom g{.in_c = 2, .in_h = 5, .in_w = 5, .out_c = 1, .k = 3,
                     .stride = 1, .pad = 1};
  const std::size_t entries = im2col_entries(g);
  std::vector<std::uint32_t> pix_off(g.opix() + 1), in_idx(entries),
      w_ofs(entries);
  build_im2col_tables(g, pix_off.data(), in_idx.data(), w_ofs.data());

  std::size_t full = 0;
  for (std::size_t p = 0; p < g.opix(); ++p) {
    const std::size_t taps = pix_off[p + 1] - pix_off[p];
    const std::size_t oy = p / 5, ox = p % 5;
    const bool interior = oy >= 1 && oy <= 3 && ox >= 1 && ox <= 3;
    EXPECT_EQ(taps == g.patch(), interior) << "pixel " << p;
    if (taps == g.patch()) {
      ++full;
      for (std::size_t e = 0; e < taps; ++e)
        EXPECT_EQ(w_ofs[pix_off[p] + e], e);
    }
  }
  EXPECT_EQ(full, 9u);  // 3x3 interior
  // Corner pixel 0 keeps only the 2x2 in-bounds window per channel.
  EXPECT_EQ(pix_off[1] - pix_off[0], 2u * 2u * 2u);
}

// --------------------------------------------------- engine-level parity

std::vector<float> run_engine(StaticEngine& e, ConstTensorView in,
                              Status expect = Status::kOk) {
  std::vector<float> out(e.output_shape().size(),
                         std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(e.run(in, out), expect);
  return out;
}

TEST(KernelPlanEngine, AllModesBitwiseIdenticalOnTrainedModels) {
  const auto& ds = sx::testing::road_data();
  for (const Model* m : {&sx::testing::trained_mlp(),
                         &sx::testing::trained_cnn()}) {
    StaticEngine ref{*m, {.kernels = KernelMode::kReference}};
    StaticEngine blocked{*m, {.kernels = KernelMode::kBlocked}};
    StaticEngine packed{*m, {.kernels = KernelMode::kPacked}};
    StaticEngine wide{*m, {.kernels = KernelMode::kWide}};
    ASSERT_EQ(ref.kernel_plan(), nullptr);
    ASSERT_NE(blocked.kernel_plan(), nullptr);
    for (std::size_t i = 0; i < 32; ++i) {
      const auto in = ds.samples[i].input.view();
      const auto a = run_engine(ref, in);
      EXPECT_TRUE(BitEqual(run_engine(blocked, in), a)) << "sample " << i;
      EXPECT_TRUE(BitEqual(run_engine(packed, in), a)) << "sample " << i;
      EXPECT_TRUE(BitEqual(run_engine(wide, in), a)) << "sample " << i;
    }
  }
}

TEST(KernelPlanEngine, FusedSigmoidTanhPipelineBitwiseIdentical) {
  // Covers the epilogues the trained fixtures don't exercise, plus an
  // unfusable trailing softmax (reference step inside a planned engine).
  dl::ModelBuilder b{Shape::chw(2, 9, 7)};
  b.conv2d(3, 3, /*stride=*/1, /*padding=*/1)
      .tanh_()
      .flatten()
      .dense(21)
      .sigmoid()
      .dense(6)
      .softmax();
  const Model m = b.build(/*seed=*/99);

  const KernelPlan plan{m, KernelMode::kBlocked};
  EXPECT_EQ(plan.planned_conv(), 1u);
  EXPECT_EQ(plan.planned_dense(), 2u);
  EXPECT_EQ(plan.fused_activations(), 2u);  // tanh + sigmoid
  EXPECT_EQ(plan.removed_layers(), 1u);     // flatten dce'd outright
  EXPECT_EQ(plan.reference_steps(), 1u);    // softmax
  EXPECT_GT(plan.scratch_floats(), 0u);

  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  StaticEngine planned{m, plan};
  util::Xoshiro256 rng{5};
  Tensor in{m.input_shape()};
  for (int rep = 0; rep < 16; ++rep) {
    in.init_uniform(rng, -2.0f, 2.0f);
    EXPECT_TRUE(BitEqual(run_engine(planned, in.view()),
                         run_engine(ref, in.view())));
  }
}

TEST(KernelPlanEngine, NumericFaultParityWithFusedActivations) {
  // A NaN weight upstream of a fused ReLU: relu would squash the NaN to 0,
  // so the planned engine must fault on the pre-activation value exactly
  // like the reference engine faults on the dense output scan.
  Model m = sx::testing::trained_mlp();  // deep copy, safe to corrupt
  auto& dense = static_cast<dl::Dense&>(m.layer(1));  // flatten, dense, relu…
  ASSERT_EQ(dense.kind(), dl::LayerKind::kDense);
  dense.weights()[3] = std::numeric_limits<float>::quiet_NaN();

  const auto in = sx::testing::road_data().samples[0].input.view();
  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  StaticEngine blocked{m, {.kernels = KernelMode::kBlocked}};
  StaticEngine packed{m, {.kernels = KernelMode::kPacked}};
  StaticEngine wide{m, {.kernels = KernelMode::kWide}};
  run_engine(ref, in, Status::kNumericFault);
  run_engine(blocked, in, Status::kNumericFault);
  run_engine(packed, in, Status::kNumericFault);
  run_engine(wide, in, Status::kNumericFault);
  EXPECT_EQ(ref.numeric_fault_count(), 1u);
  EXPECT_EQ(blocked.numeric_fault_count(), 1u);
  EXPECT_EQ(packed.numeric_fault_count(), 1u);
  EXPECT_EQ(wide.numeric_fault_count(), 1u);

  // With checks off, all engines agree bit for bit on the corrupted output
  // (the campaign path compares raw propagation).
  StaticEngine ref_nc{m, {.check_numeric_faults = false,
                          .kernels = KernelMode::kReference}};
  StaticEngine blk_nc{m, {.check_numeric_faults = false,
                          .kernels = KernelMode::kBlocked}};
  EXPECT_TRUE(BitEqual(run_engine(blk_nc, in), run_engine(ref_nc, in)));
}

TEST(KernelPlanEngine, BlockedModeObservesLiveWeightMutation) {
  // The SEU campaigns mutate weights behind a long-lived engine; kBlocked
  // (the default) must observe the mutation exactly as reference does,
  // while kPacked holds its deploy-time snapshot until repack().
  Model m = sx::testing::trained_mlp();
  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  StaticEngine blocked{m, {.kernels = KernelMode::kBlocked}};
  KernelPlan packed_plan{m, KernelMode::kPacked};
  StaticEngine packed{m, packed_plan};

  const auto in = sx::testing::road_data().samples[2].input.view();
  const auto before = run_engine(ref, in);
  ASSERT_TRUE(BitEqual(run_engine(packed, in), before));

  auto& dense = static_cast<dl::Dense&>(m.layer(1));
  dense.weights()[0] += 0.25f;
  const auto after = run_engine(ref, in);
  ASSERT_FALSE(BitEqual(after, before));

  EXPECT_TRUE(BitEqual(run_engine(blocked, in), after));  // live view
  EXPECT_TRUE(BitEqual(run_engine(packed, in), before));  // stale snapshot
  packed_plan.repack();
  EXPECT_TRUE(BitEqual(run_engine(packed, in), after));   // resynced
}

TEST(KernelPlanEngine, ArenaDemandMatchesIndependentDerivation) {
  // verify/range re-derives the arena demand from shapes alone; the engine
  // capacity (and its by-construction high-water mark) must match in every
  // kernel mode, keeping the static verifier's ArenaCheck sound.
  for (const Model* m : {&sx::testing::trained_mlp(),
                         &sx::testing::trained_cnn()}) {
    for (KernelMode mode : {KernelMode::kReference, KernelMode::kBlocked,
                            KernelMode::kPacked, KernelMode::kWide}) {
      const StaticEngineConfig cfg{.kernels = mode};
      StaticEngine e{*m, cfg};
      EXPECT_EQ(verify::static_arena_demand(*m, cfg), e.arena_capacity())
          << dl::kernel_mode_name(mode);
      EXPECT_EQ(e.arena_high_water_mark(), e.arena_capacity())
          << "buffers are carved once at construction";
    }
  }
  // Conv scratch is real: the CNN's planned demand strictly exceeds the
  // reference ping-pong demand.
  EXPECT_GT(verify::static_arena_demand(
                sx::testing::trained_cnn(),
                StaticEngineConfig{.kernels = KernelMode::kBlocked}),
            verify::static_arena_demand(
                sx::testing::trained_cnn(),
                StaticEngineConfig{.kernels = KernelMode::kReference}));
}

TEST(KernelPlanEngine, ReferenceEscapeHatchEnvVar) {
  ASSERT_EQ(unsetenv("SX_KERNEL_REFERENCE"), 0);
  EXPECT_EQ(dl::resolve_kernel_mode(KernelMode::kAuto), KernelMode::kBlocked);
  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "1", 1), 0);
  EXPECT_EQ(dl::resolve_kernel_mode(KernelMode::kAuto),
            KernelMode::kReference);
  // Explicit modes are never overridden; "0" and empty do not force.
  EXPECT_EQ(dl::resolve_kernel_mode(KernelMode::kPacked), KernelMode::kPacked);
  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "0", 1), 0);
  EXPECT_EQ(dl::resolve_kernel_mode(KernelMode::kAuto), KernelMode::kBlocked);
  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "", 1), 0);
  EXPECT_EQ(dl::resolve_kernel_mode(KernelMode::kAuto), KernelMode::kBlocked);

  ASSERT_EQ(setenv("SX_KERNEL_REFERENCE", "1", 1), 0);
  const Model& m = sx::testing::trained_mlp();
  StaticEngine forced{m};  // kAuto resolves at construction
  EXPECT_EQ(forced.kernel_mode(), KernelMode::kReference);
  EXPECT_EQ(forced.kernel_plan(), nullptr);
  ASSERT_EQ(unsetenv("SX_KERNEL_REFERENCE"), 0);
  StaticEngine normal{m};
  EXPECT_EQ(normal.kernel_mode(), KernelMode::kBlocked);
}

TEST(KernelPlanBatch, WorkerCountsBitwiseIdenticalToReference) {
  const Model& m = sx::testing::trained_cnn();
  const auto& ds = sx::testing::road_data();
  const std::size_t n = 16;
  const std::size_t out_size = m.output_shape().size();

  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  std::vector<float> expected(n * out_size);
  std::vector<float> flat(n * m.input_shape().size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = ds.samples[i].input.data();
    std::copy(src.begin(), src.end(),
              flat.begin() + i * m.input_shape().size());
    ASSERT_EQ(ref.run(ds.samples[i].input.view(),
                      std::span<float>(expected).subspan(i * out_size,
                                                         out_size)),
              Status::kOk);
  }

  for (KernelMode mode : {KernelMode::kBlocked, KernelMode::kPacked,
                          KernelMode::kWide}) {
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      dl::BatchRunner runner{m, dl::BatchRunnerConfig{.workers = workers,
                                                      .kernels = mode}};
      ASSERT_NE(runner.kernel_plan(), nullptr);
      EXPECT_EQ(runner.kernel_plan()->mode(), mode);
      std::vector<float> out(n * out_size, -1.0f);
      std::vector<Status> st(n, Status::kInvalidArgument);
      ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(st[i], Status::kOk);
      EXPECT_TRUE(BitEqual(out, expected))
          << dl::kernel_mode_name(mode) << " x " << workers << " workers";
    }
  }
}

TEST(KernelPlanEngine, CanTapReflectsStepBoundaries) {
  // trained_cnn: conv(0) relu(1) maxpool(2) flatten(3) dense(4) relu(5)
  // dense(6). Planned mode fuses 0+1 and 4+5, so the fused activations'
  // inputs (layers 1 and 5) are never materialized.
  const Model& m = sx::testing::trained_cnn();
  StaticEngine ref{m, {.kernels = KernelMode::kReference}};
  StaticEngine blocked{m, {.kernels = KernelMode::kBlocked}};
  for (std::size_t l = 0; l < m.layer_count(); ++l)
    EXPECT_TRUE(ref.can_tap(l)) << l;
  EXPECT_FALSE(ref.can_tap(m.layer_count()));
  for (std::size_t l : {0u, 2u, 3u, 4u, 6u}) EXPECT_TRUE(blocked.can_tap(l)) << l;
  for (std::size_t l : {1u, 5u}) EXPECT_FALSE(blocked.can_tap(l)) << l;
  EXPECT_FALSE(blocked.can_tap(m.layer_count()));
}

TEST(KernelPlanEngine, TappedRunMatchesForwardTraceBitwise) {
  // run_tapped must reproduce forward_trace's activations exactly — this
  // is what lets the pipeline's supervisor read its feature layer from
  // the planned engine instead of a second allocation-heavy forward.
  const auto& ds = sx::testing::road_data();
  for (const Model* m : {&sx::testing::trained_mlp(),
                         &sx::testing::trained_cnn()}) {
    for (const KernelMode mode : {KernelMode::kReference,
                                  KernelMode::kBlocked,
                                  KernelMode::kPacked,
                                  KernelMode::kWide}) {
      StaticEngine e{*m, {.kernels = mode}};
      for (std::size_t s = 0; s < 4; ++s) {
        const Tensor& in = ds.samples[s].input;
        const auto acts = m->forward_trace(in);
        const auto expect = run_engine(e, in.view());
        for (std::size_t l = 0; l < m->layer_count(); ++l) {
          if (!e.can_tap(l)) continue;
          std::vector<float> tap(acts[l].size(), -7.0f);
          std::vector<float> out(m->output_shape().size());
          ASSERT_EQ(e.run_tapped(in.view(), out, l, tap), Status::kOk);
          EXPECT_TRUE(BitEqual(out, expect)) << "layer " << l;
          const auto ref = acts[l].data();
          EXPECT_TRUE(
              BitEqual(tap, std::vector<float>(ref.begin(), ref.end())))
              << dl::kernel_mode_name(mode) << " layer " << l;
        }
        // Wrong tap width and untappable layers are shape errors.
        std::vector<float> out(m->output_shape().size());
        std::vector<float> bad(acts[0].size() + 1);
        EXPECT_EQ(e.run_tapped(in.view(), out, 0, bad),
                  Status::kShapeMismatch);
        EXPECT_EQ(e.run_tapped(in.view(), out, m->layer_count(),
                               std::span<float>{}),
                  Status::kShapeMismatch);
      }
    }
  }
}

TEST(KernelPlanEvidence, SummaryAndReportLines) {
  const KernelPlan plan{sx::testing::trained_cnn(), KernelMode::kPacked};
  const std::string s = plan.summary();
  EXPECT_NE(s.find("mode=packed"), std::string::npos) << s;
  EXPECT_NE(s.find("dense=2"), std::string::npos) << s;
  EXPECT_NE(s.find("conv=1"), std::string::npos) << s;
  EXPECT_GT(plan.panel_floats(), 0u);
  EXPECT_GT(plan.table_entries(), 0u);

  const core::EvidenceItem item = core::make_kernel_plan_evidence(plan);
  EXPECT_EQ(item.title, "Deploy-time kernel plan");
  EXPECT_NE(item.body.find(s), std::string::npos) << item.body;
  EXPECT_NE(item.body.find("SX_KERNEL_REFERENCE"), std::string::npos);
}

}  // namespace
}  // namespace sx::tensor::kernels
