#include <gtest/gtest.h>

#include "dl/train.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "verify/attack.hpp"
#include "verify/ibp.hpp"

namespace sx::verify {
namespace {

using tensor::Shape;
using tensor::Tensor;

const dl::Model& mlp() { return sx::testing::trained_mlp(); }
const dl::Dataset& data() { return sx::testing::road_data(); }

// --------------------------------------------------------------------- IBP

TEST(Ibp, ZeroEpsBracketsExactOutput) {
  const Tensor& in = data().samples[0].input;
  const IntervalTensor b = ibp_bounds(mlp(), in, 0.0f);
  ASSERT_TRUE(b.well_formed());
  const Tensor logits = mlp().forward(in);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_LE(b.lo.at(i), logits.at(i) + 1e-4f);
    EXPECT_GE(b.hi.at(i), logits.at(i) - 1e-4f);
  }
}

TEST(Ibp, BoundsAreSoundForSampledPerturbations) {
  const float eps = 0.03f;
  const Tensor& in = data().samples[1].input;
  const IntervalTensor b = ibp_bounds(mlp(), in, eps);
  util::Xoshiro256 rng{17};
  for (int trial = 0; trial < 50; ++trial) {
    Tensor perturbed = in;
    for (std::size_t i = 0; i < perturbed.size(); ++i) {
      const float delta =
          static_cast<float>(rng.uniform(-eps, eps));
      perturbed.at(i) =
          std::min(1.0f, std::max(0.0f, perturbed.at(i) + delta));
    }
    const Tensor logits = mlp().forward(perturbed);
    for (std::size_t i = 0; i < logits.size(); ++i) {
      EXPECT_GE(logits.at(i), b.lo.at(i) - 1e-4f) << "trial " << trial;
      EXPECT_LE(logits.at(i), b.hi.at(i) + 1e-4f) << "trial " << trial;
    }
  }
}

TEST(Ibp, BoundsWidenWithEps) {
  const Tensor& in = data().samples[2].input;
  const IntervalTensor tight = ibp_bounds(mlp(), in, 0.01f);
  const IntervalTensor loose = ibp_bounds(mlp(), in, 0.05f);
  for (std::size_t i = 0; i < tight.lo.size(); ++i) {
    EXPECT_LE(loose.lo.at(i), tight.lo.at(i) + 1e-6f);
    EXPECT_GE(loose.hi.at(i), tight.hi.at(i) - 1e-6f);
  }
}

TEST(Ibp, WorksOnCnn) {
  const dl::Model& cnn = sx::testing::trained_cnn();
  const IntervalTensor b = ibp_bounds(cnn, data().samples[0].input, 0.01f);
  EXPECT_TRUE(b.well_formed());
  const Tensor logits = cnn.forward(data().samples[0].input);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    EXPECT_LE(b.lo.at(i), logits.at(i) + 1e-3f);
    EXPECT_GE(b.hi.at(i), logits.at(i) - 1e-3f);
  }
}

TEST(Ibp, HandlesSaturatingActivations) {
  dl::ModelBuilder b{Shape::vec(4)};
  b.dense(6).sigmoid().dense(6).tanh_().dense(2);
  dl::Model m = b.build(5);
  Tensor in{Shape::vec(4), {0.2f, 0.4f, 0.6f, 0.8f}};
  const IntervalTensor bounds = ibp_bounds(m, in, 0.05f, -10.0f, 10.0f);
  EXPECT_TRUE(bounds.well_formed());
}

TEST(Ibp, RejectsSoftmaxModels) {
  dl::ModelBuilder b{Shape::vec(4)};
  b.dense(3).softmax();
  dl::Model m = b.build(1);
  Tensor in{Shape::vec(4)};
  EXPECT_THROW(ibp_bounds(m, in, 0.01f), std::invalid_argument);
}

TEST(Ibp, ValidatesInputs) {
  Tensor wrong{Shape::vec(3)};
  EXPECT_THROW(ibp_bounds(mlp(), wrong, 0.01f), std::invalid_argument);
  const Tensor& in = data().samples[0].input;
  EXPECT_THROW(ibp_bounds(mlp(), in, -1.0f), std::invalid_argument);
}

// ---------------------------------------------------------- certification

TEST(Certify, RobustAtZeroEpsWhenCorrect) {
  for (std::size_t i = 0; i < 10; ++i) {
    const auto& s = data().samples[i];
    const Tensor logits = mlp().forward(s.input);
    if (tensor::argmax(logits.view()) != s.label) continue;
    EXPECT_TRUE(certified_robust(mlp(), s.input, s.label, 0.0f));
  }
}

TEST(Certify, NotRobustAtHugeEps) {
  const auto& s = data().samples[0];
  EXPECT_FALSE(certified_robust(mlp(), s.input, s.label, 0.9f));
}

TEST(Certify, RadiusIsConsistentWithDecision) {
  const auto& s = data().samples[1];
  const Tensor logits = mlp().forward(s.input);
  if (tensor::argmax(logits.view()) != s.label)
    GTEST_SKIP() << "sample misclassified";
  const float r = certified_radius(mlp(), s.input, s.label);
  EXPECT_GE(r, 0.0f);
  if (r > 1e-3f) {
    EXPECT_TRUE(certified_robust(mlp(), s.input, s.label, r * 0.9f));
    EXPECT_FALSE(certified_robust(mlp(), s.input, s.label,
                                  std::min(0.5f, r * 1.2f + 1e-3f)));
  }
}

TEST(Certify, CertifiedAccuracyDecreasesWithEps) {
  const double a0 = certified_accuracy(mlp(), data(), 0.001f, 60);
  const double a1 = certified_accuracy(mlp(), data(), 0.01f, 60);
  const double a2 = certified_accuracy(mlp(), data(), 0.05f, 60);
  EXPECT_GE(a0, a1);
  EXPECT_GE(a1, a2);
  EXPECT_GT(a0, 0.5) << "tiny-eps certification should mostly succeed";
}

// ------------------------------------------------------------------ attacks

TEST(Fgsm, StaysInsideBall) {
  dl::Model m = mlp();
  const auto& s = data().samples[3];
  const float eps = 0.05f;
  const Tensor adv = fgsm(m, s.input, s.label, eps);
  for (std::size_t i = 0; i < adv.size(); ++i) {
    EXPECT_LE(std::abs(adv.at(i) - s.input.at(i)), eps + 1e-6f);
    EXPECT_GE(adv.at(i), 0.0f);
    EXPECT_LE(adv.at(i), 1.0f);
  }
}

TEST(Fgsm, LargeEpsBreaksClassification) {
  dl::Model m = mlp();
  const double clean = dl::Trainer::evaluate_accuracy(m, data());
  const double attacked = robust_accuracy_fgsm(m, data(), 0.2f, 80);
  EXPECT_LT(attacked, clean - 0.1)
      << "a 0.2-FGSM attack should hurt an undefended model";
}

TEST(Pgd, AtLeastAsStrongAsFgsm) {
  dl::Model m = mlp();
  const float eps = 0.08f;
  const double fgsm_acc = robust_accuracy_fgsm(m, data(), eps, 60);
  const double pgd_acc = robust_accuracy_pgd(m, data(), eps, 10, 60);
  EXPECT_LE(pgd_acc, fgsm_acc + 0.05);
}

TEST(Pgd, StaysInsideBall) {
  dl::Model m = mlp();
  const auto& s = data().samples[4];
  const float eps = 0.05f;
  const Tensor adv = pgd(m, s.input, s.label, eps, 10);
  for (std::size_t i = 0; i < adv.size(); ++i)
    EXPECT_LE(std::abs(adv.at(i) - s.input.at(i)), eps + 1e-6f);
}

TEST(Attacks, ValidateArguments) {
  dl::Model m = mlp();
  const auto& s = data().samples[0];
  EXPECT_THROW(fgsm(m, s.input, s.label, -0.1f), std::invalid_argument);
  EXPECT_THROW(pgd(m, s.input, s.label, 0.1f, 0), std::invalid_argument);
}

// --------------------------------------------------- certificate soundness

TEST(Soundness, CertifiedPointsSurviveAttacks) {
  // The load-bearing property: a PGD attack within eps must never flip a
  // point that IBP certified at eps.
  dl::Model m = mlp();
  // IBP is conservative on standard-trained nets; use a small radius where
  // certificates exist.
  const float eps = 0.002f;
  std::size_t checked = 0;
  for (const auto& s : data().samples) {
    if (checked >= 20) break;
    const Tensor logits = m.forward(s.input);
    if (tensor::argmax(logits.view()) != s.label) continue;
    if (!certified_robust(m, s.input, s.label, eps)) continue;
    ++checked;
    const Tensor adv = pgd(m, s.input, s.label, eps, 10);
    const Tensor adv_logits = m.forward(adv);
    EXPECT_EQ(tensor::argmax(adv_logits.view()), s.label)
        << "attack broke a certified point — certificate unsound!";
  }
  EXPECT_GT(checked, 0u) << "no certifiable points found at eps=" << eps;
}

// Property sweep: soundness of the bounds across eps values.
class IbpSound : public ::testing::TestWithParam<float> {};

TEST_P(IbpSound, RandomPerturbationsWithinBounds) {
  const float eps = GetParam();
  const Tensor& in = data().samples[5].input;
  const IntervalTensor b = ibp_bounds(mlp(), in, eps);
  util::Xoshiro256 rng{99};
  for (int t = 0; t < 20; ++t) {
    Tensor p = in;
    for (std::size_t i = 0; i < p.size(); ++i)
      p.at(i) = std::min(
          1.0f, std::max(0.0f, p.at(i) + static_cast<float>(
                                             rng.uniform(-eps, eps))));
    const Tensor logits = mlp().forward(p);
    for (std::size_t i = 0; i < logits.size(); ++i) {
      EXPECT_GE(logits.at(i), b.lo.at(i) - 1e-4f);
      EXPECT_LE(logits.at(i), b.hi.at(i) + 1e-4f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Eps, IbpSound,
                         ::testing::Values(0.005f, 0.02f, 0.08f, 0.2f));

}  // namespace
}  // namespace sx::verify
