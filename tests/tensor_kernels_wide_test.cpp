// Differential sweeps for the wide-SIMD (kWide) float microkernels.
//
// The load-bearing property is the same as for blocked/packed: *bitwise*
// identity with the audited reference loops, for every lane family the
// CPU probe can select. The wide kernels vectorize ACROSS independent
// output rows/channels while preserving each output's serial
// ascending-column accumulation chain, so scalar twin, AVX2 and AVX-512
// variants must all reproduce matvec_blocked / conv2d_im2col bit for bit
// — across randomized shapes, ragged tails off the 16/8-lane groups,
// misaligned operand bases, and every fused epilogue. SIMD variants are
// exercised only when the probe reports the ISA (the suite stays green
// on any host); the scalar twin always runs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "dl/layers.hpp"
#include "platform/cpu_probe.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace sx::tensor::kernels {
namespace {

::testing::AssertionResult BitEqual(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " != " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint32_t>(a[i]) !=
        std::bit_cast<std::uint32_t>(b[i]))
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i]
             << " (bits 0x" << std::hex << std::bit_cast<std::uint32_t>(a[i])
             << " vs 0x" << std::bit_cast<std::uint32_t>(b[i]) << ")";
  }
  return ::testing::AssertionSuccess();
}

std::vector<float> random_vec(std::size_t n, util::Xoshiro256& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.5, 1.5));
  return v;
}

/// Every dense wide variant the host can execute, scalar twin first.
std::vector<std::pair<const char*, DenseKernelFn>> dense_variants() {
  const platform::CpuProbe p = platform::probe_cpu();
  std::vector<std::pair<const char*, DenseKernelFn>> v;
  v.emplace_back("scalar", &matvec_wide_scalar);
  if (p.avx2) v.emplace_back("avx2", &matvec_wide_avx2);
  if (p.avx512f) v.emplace_back("avx512", &matvec_wide_avx512);
  return v;
}

std::vector<std::pair<const char*, ConvKernelFn>> conv_variants() {
  const platform::CpuProbe p = platform::probe_cpu();
  std::vector<std::pair<const char*, ConvKernelFn>> v;
  v.emplace_back("scalar", &conv2d_im2col_wide_scalar);
  if (p.avx2) v.emplace_back("avx2", &conv2d_im2col_wide_avx2);
  if (p.avx512f) v.emplace_back("avx512", &conv2d_im2col_wide_avx512);
  return v;
}

TEST(WideMatvec, BitwiseEqualsBlockedAcrossShapesAndIsas) {
  util::Xoshiro256 rng{2025};
  // Below / at / above the 16-row group, primes for ragged tails, the
  // benchmark sizes, and an exact two-group control.
  const std::size_t sizes[] = {1,  2,  3,  7,  8,  15, 16, 17,
                               23, 31, 32, 33, 48, 64, 100, 128};
  for (std::size_t rows : sizes) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                             std::size_t{32}, std::size_t{53}}) {
      const auto w = random_vec(rows * cols, rng);
      const auto b = random_vec(rows, rng);
      const auto x = random_vec(cols, rng);
      std::vector<float> ref(rows, -7.0f);
      ASSERT_TRUE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                                 ref.data(), Epilogue::kNone, true));

      std::vector<float> panel(wide_dense_panel_floats(rows, cols), -1.0f);
      pack_wide_dense_panel(w.data(), rows, cols, panel.data());
      for (const auto& [name, fn] : dense_variants()) {
        std::vector<float> out(rows, -7.0f);
        EXPECT_TRUE(fn(panel.data(), b.data(), rows, cols, x.data(),
                       out.data(), Epilogue::kNone, true));
        EXPECT_TRUE(BitEqual(out, ref))
            << rows << "x" << cols << " wide/" << name;
      }
    }
  }
}

TEST(WideMatvec, FusedEpiloguesMatchBlockedAcrossIsas) {
  util::Xoshiro256 rng{7};
  for (std::size_t rows : {std::size_t{5}, std::size_t{16}, std::size_t{19},
                           std::size_t{40}}) {
    const std::size_t cols = 23;
    const auto w = random_vec(rows * cols, rng);
    const auto b = random_vec(rows, rng);
    const auto x = random_vec(cols, rng);
    std::vector<float> panel(wide_dense_panel_floats(rows, cols));
    pack_wide_dense_panel(w.data(), rows, cols, panel.data());
    for (Epilogue ep : {Epilogue::kRelu, Epilogue::kSigmoid,
                        Epilogue::kTanh}) {
      std::vector<float> ref(rows);
      ASSERT_TRUE(matvec_blocked(w.data(), b.data(), rows, cols, x.data(),
                                 ref.data(), ep, true));
      for (const auto& [name, fn] : dense_variants()) {
        std::vector<float> out(rows);
        EXPECT_TRUE(fn(panel.data(), b.data(), rows, cols, x.data(),
                       out.data(), ep, true));
        EXPECT_TRUE(BitEqual(out, ref))
            << "rows=" << rows << " ep=" << static_cast<int>(ep) << " wide/"
            << name;
      }
    }
  }
}

TEST(WideMatvec, MisalignedOperandBasesStayBitwiseIdentical) {
  // The wide loads go through memcpy, so nothing may depend on 32/64-byte
  // operand alignment. Shift x, bias and out off the allocator's natural
  // alignment by one float and re-check identity.
  util::Xoshiro256 rng{31};
  const std::size_t rows = 37, cols = 29;
  const auto w = random_vec(rows * cols, rng);
  const auto raw_b = random_vec(rows + 1, rng);
  const auto raw_x = random_vec(cols + 1, rng);
  const float* b = raw_b.data() + 1;
  const float* x = raw_x.data() + 1;
  std::vector<float> ref(rows);
  ASSERT_TRUE(matvec_blocked(w.data(), b, rows, cols, x, ref.data(),
                             Epilogue::kRelu, true));
  std::vector<float> panel(wide_dense_panel_floats(rows, cols));
  pack_wide_dense_panel(w.data(), rows, cols, panel.data());
  for (const auto& [name, fn] : dense_variants()) {
    std::vector<float> raw_out(rows + 1, -7.0f);
    EXPECT_TRUE(fn(panel.data(), b, rows, cols, x, raw_out.data() + 1,
                   Epilogue::kRelu, true));
    EXPECT_TRUE(BitEqual(
        std::vector<float>(raw_out.begin() + 1, raw_out.end()), ref))
        << "wide/" << name;
  }
}

TEST(WideMatvec, CheckFlagsNonFinitePreActivation) {
  const std::size_t rows = 21, cols = 4;  // one full group + 5-row tail
  util::Xoshiro256 rng{3};
  auto w = random_vec(rows * cols, rng);
  const auto b = random_vec(rows, rng);
  const auto x = random_vec(cols, rng);
  w[5 * cols + 2] = std::numeric_limits<float>::quiet_NaN();   // in-group
  w[18 * cols + 1] = std::numeric_limits<float>::quiet_NaN();  // in-tail
  std::vector<float> panel(wide_dense_panel_floats(rows, cols));
  pack_wide_dense_panel(w.data(), rows, cols, panel.data());
  for (const auto& [name, fn] : dense_variants()) {
    std::vector<float> out(rows);
    EXPECT_FALSE(fn(panel.data(), b.data(), rows, cols, x.data(), out.data(),
                    Epilogue::kRelu, true))
        << "wide/" << name;
    // Unchecked mode still computes (campaigns compare raw propagation).
    EXPECT_TRUE(fn(panel.data(), b.data(), rows, cols, x.data(), out.data(),
                   Epilogue::kNone, false));
    EXPECT_TRUE(std::isnan(out[5])) << "wide/" << name;
    EXPECT_TRUE(std::isnan(out[18])) << "wide/" << name;
  }
}

TEST(WidePanel, DenseLayoutIsAlignedAndExhaustive) {
  EXPECT_EQ(wide_dense_panel_floats(16, 32) % kAlignFloats, 0u);
  EXPECT_EQ(wide_dense_panel_floats(1, 1), kAlignFloats);

  const std::size_t rows = 19, cols = 3;  // one full group + 3-row tail
  util::Xoshiro256 rng{41};
  const auto w = random_vec(rows * cols, rng);
  std::vector<float> panel(wide_dense_panel_floats(rows, cols), 99.0f);
  pack_wide_dense_panel(w.data(), rows, cols, panel.data());
  // Full group: panel[c * kWideRowBlock + r] == w[r * cols + c].
  for (std::size_t r = 0; r < kWideRowBlock; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(panel[c * kWideRowBlock + r], w[r * cols + c]);
  // Tail of 3 rows, interleaved at its own row count.
  const std::size_t tail_base = align_up(kWideRowBlock * cols);
  for (std::size_t r = 0; r < rows - kWideRowBlock; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      EXPECT_EQ(panel[tail_base + c * (rows - kWideRowBlock) + r],
                w[(kWideRowBlock + r) * cols + c]);
}

TEST(WideConv2d, BitwiseEqualsReferenceAcrossGeometriesAndIsas) {
  util::Xoshiro256 rng{11};
  for (std::size_t in_c : {1u, 3u}) {
    for (std::size_t k : {1u, 3u}) {
      for (std::size_t stride : {1u, 2u}) {
        for (std::size_t pad : {0u, 1u}) {
          // 8 = one full lane group; 16 = two groups (the AVX-512 paired
          // path); 19 = two groups + 3 tail channels read from the live
          // weights; 5 = tail-only (no packed group at all).
          for (std::size_t out_c : {5u, 8u, 16u, 19u}) {
            const std::size_t in_h = 7, in_w = 5;
            if (in_h + 2 * pad < k) continue;

            dl::Conv2d layer{in_c, out_c, k, stride, pad};
            layer.init(rng);
            Tensor in{Shape::chw(in_c, in_h, in_w)};
            in.init_uniform(rng, -1.0f, 1.0f);
            const Shape out_shape =
                layer.output_shape(Shape::chw(in_c, in_h, in_w));
            std::vector<float> ref(out_shape.size());
            ASSERT_EQ(layer.forward(in.view(), TensorView{ref, out_shape}),
                      Status::kOk);

            Conv2dGeom g{.in_c = in_c, .in_h = in_h, .in_w = in_w,
                         .out_c = out_c, .k = k, .stride = stride,
                         .pad = pad};
            const std::size_t entries = im2col_entries(g);
            std::vector<std::uint32_t> pix_off(g.opix() + 1),
                in_idx(entries), w_ofs(entries);
            build_im2col_tables(g, pix_off.data(), in_idx.data(),
                                w_ofs.data());
            std::vector<float> col(entries);
            im2col_gather(in.data().data(), in_idx.data(), entries,
                          col.data());
            const ConvTables t{.out_c = out_c, .patch = g.patch(),
                               .opix = g.opix(), .pix_off = pix_off.data(),
                               .in_idx = in_idx.data(),
                               .w_ofs = w_ofs.data()};

            std::vector<float> panel(
                wide_conv_panel_floats(out_c, g.patch()), -1.0f);
            pack_wide_conv_panel(layer.weights().data(), out_c, g.patch(),
                                 panel.data());
            for (const auto& [name, fn] : conv_variants()) {
              std::vector<float> out(out_shape.size(), -7.0f);
              EXPECT_TRUE(fn(panel.empty() ? nullptr : panel.data(),
                             layer.weights().data(), layer.bias().data(), t,
                             col.data(), out.data(), Epilogue::kNone, true));
              EXPECT_TRUE(BitEqual(out, ref))
                  << "wide/" << name << " in_c=" << in_c << " k=" << k
                  << " stride=" << stride << " pad=" << pad
                  << " out_c=" << out_c;
            }
          }
        }
      }
    }
  }
}

TEST(WideConv2d, FusedEpiloguesMatchUnpackedAcrossIsas) {
  util::Xoshiro256 rng{13};
  const Conv2dGeom g{.in_c = 2, .in_h = 6, .in_w = 6, .out_c = 16, .k = 3,
                     .stride = 1, .pad = 1};
  dl::Conv2d layer{g.in_c, g.out_c, g.k, g.stride, g.pad};
  layer.init(rng);
  Tensor in{Shape::chw(g.in_c, g.in_h, g.in_w)};
  in.init_uniform(rng, -1.0f, 1.0f);
  const std::size_t entries = im2col_entries(g);
  std::vector<std::uint32_t> pix_off(g.opix() + 1), in_idx(entries),
      w_ofs(entries);
  build_im2col_tables(g, pix_off.data(), in_idx.data(), w_ofs.data());
  std::vector<float> col(entries);
  im2col_gather(in.data().data(), in_idx.data(), entries, col.data());
  const ConvTables t{.out_c = g.out_c, .patch = g.patch(), .opix = g.opix(),
                     .pix_off = pix_off.data(), .in_idx = in_idx.data(),
                     .w_ofs = w_ofs.data()};
  std::vector<float> panel(wide_conv_panel_floats(g.out_c, g.patch()));
  pack_wide_conv_panel(layer.weights().data(), g.out_c, g.patch(),
                       panel.data());
  const std::size_t n = g.out_c * g.opix();
  for (Epilogue ep : {Epilogue::kRelu, Epilogue::kSigmoid, Epilogue::kTanh}) {
    std::vector<float> ref(n);
    ASSERT_TRUE(conv2d_im2col(layer.weights().data(), layer.bias().data(), t,
                              col.data(), ref.data(), ep, true));
    for (const auto& [name, fn] : conv_variants()) {
      std::vector<float> out(n, -7.0f);
      EXPECT_TRUE(fn(panel.data(), layer.weights().data(),
                     layer.bias().data(), t, col.data(), out.data(), ep,
                     true));
      EXPECT_TRUE(BitEqual(out, ref))
          << "wide/" << name << " ep=" << static_cast<int>(ep);
    }
  }
}

TEST(WideDispatch, SelectorsReturnIsaSpecificEntryPoints) {
  EXPECT_EQ(wide_dense_kernel(WideIsa::kScalar), &matvec_wide_scalar);
  EXPECT_EQ(wide_dense_kernel(WideIsa::kAvx2), &matvec_wide_avx2);
  EXPECT_EQ(wide_dense_kernel(WideIsa::kAvx512), &matvec_wide_avx512);
  EXPECT_EQ(wide_conv_kernel(WideIsa::kScalar), &conv2d_im2col_wide_scalar);
  EXPECT_EQ(wide_conv_kernel(WideIsa::kAvx2), &conv2d_im2col_wide_avx2);
  EXPECT_EQ(wide_conv_kernel(WideIsa::kAvx512), &conv2d_im2col_wide_avx512);
  EXPECT_STREQ(wide_isa_name(WideIsa::kScalar), "scalar");
  EXPECT_STREQ(wide_isa_name(WideIsa::kAvx2), "avx2");
  EXPECT_STREQ(wide_isa_name(WideIsa::kAvx512), "avx512");
}

}  // namespace
}  // namespace sx::tensor::kernels
