#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "dl/engine.hpp"
#include "supervise/calibration.hpp"
#include "util/stats.hpp"
#include "supervise/conformal.hpp"
#include "supervise/metrics.hpp"
#include "supervise/supervisor.hpp"
#include "test_helpers.hpp"

namespace sx::supervise {
namespace {

const dl::Model& model() { return sx::testing::trained_mlp(); }

const dl::Dataset& id_data() { return sx::testing::road_data(); }

const dl::Dataset& ood_data() {
  static const dl::Dataset ds =
      dl::corrupt(id_data(), dl::Corruption::kUniformRandom, 77);
  return ds;
}

// ----------------------------------------------------------------- metrics

TEST(Auroc, PerfectSeparation) {
  const std::vector<double> neg{0.1, 0.2, 0.3};
  const std::vector<double> pos{0.9, 0.8, 0.7};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 1.0);
}

TEST(Auroc, Chance) {
  const std::vector<double> neg{0.1, 0.9};
  const std::vector<double> pos{0.1, 0.9};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.5);
}

TEST(Auroc, Inverted) {
  const std::vector<double> neg{0.9, 0.8};
  const std::vector<double> pos{0.1, 0.2};
  EXPECT_DOUBLE_EQ(auroc(neg, pos), 0.0);
}

TEST(Auroc, RejectsEmpty) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(auroc({}, xs), std::invalid_argument);
}

TEST(FprAtTpr, PerfectDetectorHasZeroFpr) {
  std::vector<double> id(100);
  std::vector<double> ood(100);
  for (int i = 0; i < 100; ++i) {
    id[static_cast<std::size_t>(i)] = i * 0.01;        // 0 .. 0.99
    ood[static_cast<std::size_t>(i)] = 10.0 + i;       // far above
  }
  EXPECT_DOUBLE_EQ(fpr_at_tpr(id, ood, 0.95), 0.0);
}

TEST(FprAtTpr, OverlappingScores) {
  std::vector<double> id{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  std::vector<double> ood{0.85, 0.95, 1.05, 2.0};
  const double fpr = fpr_at_tpr(id, ood, 0.95);
  EXPECT_GT(fpr, 0.0);
  EXPECT_LT(fpr, 1.0);
}

// -------------------------------------------------------------- supervisors

TEST(MaxSoftmax, ScoreInUnitRange) {
  MaxSoftmaxSupervisor sup;
  for (std::size_t i = 0; i < 10; ++i) {
    const double s = sup.score(model(), id_data().samples[i].input);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Supervisors, AllSeparateFarOod) {
  // Logit-based baselines are known to be overconfident on garbage inputs;
  // they must still be better than chance. Feature-/input-based methods
  // must separate far-OOD nearly perfectly (the E4 ladder).
  for (auto& sup : make_all_supervisors()) {
    sup->fit(model(), id_data());
    const auto r =
        evaluate_detection(*sup, model(), id_data(), ood_data(), "uniform");
    const bool is_baseline =
        sup->name() == "max-softmax" || sup->name() == "energy";
    EXPECT_GT(r.auroc, is_baseline ? 0.6 : 0.9)
        << sup->name() << " AUROC too low";
  }
}

TEST(Supervisors, FeatureBasedBeatBaselineOnFog) {
  const dl::Dataset fog = dl::corrupt(id_data(), dl::Corruption::kFog, 5);
  MaxSoftmaxSupervisor baseline;
  MahalanobisSupervisor maha;
  maha.fit(model(), id_data());
  const double auroc_base =
      evaluate_detection(baseline, model(), id_data(), fog, "fog").auroc;
  const double auroc_maha =
      evaluate_detection(maha, model(), id_data(), fog, "fog").auroc;
  EXPECT_GT(auroc_maha, auroc_base - 0.05)
      << "Mahalanobis should not be materially worse than max-softmax";
}

TEST(Mahalanobis, ScoresIdLowerThanOod) {
  MahalanobisSupervisor sup;
  sup.fit(model(), id_data());
  const auto id_scores = collect_scores(sup, model(), id_data());
  const auto ood_scores = collect_scores(sup, model(), ood_data());
  EXPECT_LT(util::mean(id_scores), util::mean(ood_scores));
}

TEST(Mahalanobis, ScoreFromTappedFeaturesIsBitwiseIdentical) {
  // The pipeline feeds the supervisor features tapped from a planned
  // StaticEngine run instead of re-running Model::forward_trace; the two
  // scores must agree to the last bit (float -> double widening is exact
  // and the Mahalanobis arithmetic is shared).
  MahalanobisSupervisor sup;
  sup.fit(model(), id_data());
  dl::StaticEngine engine{model(), {.check_numeric_faults = false}};
  ASSERT_TRUE(engine.can_tap(sup.feature_layer()));
  std::vector<float> feat(sup.feature_dim());
  std::vector<float> logits(model().output_shape().size());
  for (std::size_t i = 0; i < 8; ++i) {
    const tensor::Tensor& in = id_data().samples[i].input;
    ASSERT_EQ(engine.run_tapped(in.view(), logits, sup.feature_layer(), feat),
              Status::kOk);
    const double tapped = sup.score_from_features(feat);
    const double traced = sup.score(model(), in);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(tapped),
              std::bit_cast<std::uint64_t>(traced));
  }
  std::vector<float> wrong(sup.feature_dim() + 1);
  EXPECT_THROW(sup.score_from_features(wrong), std::invalid_argument);
}

TEST(Mahalanobis, RequiresFitBeforeScore) {
  MahalanobisSupervisor sup;
  EXPECT_THROW(sup.score(model(), id_data().samples[0].input),
               std::logic_error);
}

TEST(Energy, TemperatureMustBePositive) {
  EXPECT_THROW(EnergySupervisor(0.0), std::invalid_argument);
}

TEST(Autoencoder, ReconstructsIdBetterThanOod) {
  AutoencoderSupervisor sup{16, 10, 0.05, 3};
  sup.fit(model(), id_data());
  const auto id_scores = collect_scores(sup, model(), id_data());
  const auto ood_scores = collect_scores(sup, model(), ood_data());
  EXPECT_LT(util::mean(id_scores), util::mean(ood_scores));
}

TEST(Threshold, CalibrationAcceptsTargetFraction) {
  MaxSoftmaxSupervisor sup;
  auto scores = collect_scores(sup, model(), id_data());
  sup.calibrate_threshold(scores, 0.9);
  ASSERT_TRUE(sup.has_threshold());
  std::size_t accepted = 0;
  for (const auto& s : id_data().samples)
    accepted += sup.accept(model(), s.input) ? 1 : 0;
  const double rate =
      static_cast<double>(accepted) / static_cast<double>(id_data().size());
  EXPECT_NEAR(rate, 0.9, 0.05);
}

TEST(Threshold, RejectsEmptyScores) {
  MaxSoftmaxSupervisor sup;
  EXPECT_THROW(sup.calibrate_threshold({}, 0.95), std::invalid_argument);
}

// -------------------------------------------------------------- calibration

TEST(TemperatureScaling, TemperedSoftmaxIsDistribution) {
  const std::vector<float> logits{1.0f, -2.0f, 0.5f};
  for (double t : {0.5, 1.0, 4.0}) {
    const auto p = tempered_softmax(logits, t);
    float s = 0.0f;
    for (float v : p) s += v;
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(TemperatureScaling, HighTemperatureFlattens) {
  const std::vector<float> logits{3.0f, 0.0f};
  const auto sharp = tempered_softmax(logits, 0.5);
  const auto flat = tempered_softmax(logits, 10.0);
  EXPECT_GT(sharp[0], flat[0]);
  EXPECT_LT(flat[0], 0.7f);
}

TEST(TemperatureScaling, FittedTemperatureImprovesNll) {
  const double t = fit_temperature(model(), id_data());
  EXPECT_GT(t, 0.05);
  EXPECT_LT(t, 20.0);
  const double nll_fitted = nll_at_temperature(model(), id_data(), t);
  const double nll_unit = nll_at_temperature(model(), id_data(), 1.0);
  EXPECT_LE(nll_fitted, nll_unit + 1e-9);
}

TEST(Ece, InUnitRangeAndSensibleAtFittedTemperature) {
  const double ece1 = expected_calibration_error(model(), id_data(), 1.0);
  EXPECT_GE(ece1, 0.0);
  EXPECT_LE(ece1, 1.0);
}

// ---------------------------------------------------------------- conformal

TEST(Conformal, CoverageMeetsNominal) {
  dl::Dataset calib, test;
  dl::split(id_data(), 0.5, calib, test);
  for (double alpha : {0.1, 0.05}) {
    const ConformalClassifier cc{model(), calib, alpha};
    const auto rep = cc.evaluate(model(), test);
    EXPECT_GE(rep.empirical_coverage, 1.0 - alpha - 0.06)
        << "coverage below nominal at alpha=" << alpha;
    EXPECT_GE(rep.mean_set_size, 1.0);
    EXPECT_LE(rep.mean_set_size,
              static_cast<double>(dl::kRoadSceneClasses));
  }
}

TEST(Conformal, SmallerAlphaGivesBiggerSets) {
  dl::Dataset calib, test;
  dl::split(id_data(), 0.5, calib, test);
  const ConformalClassifier loose{model(), calib, 0.2};
  const ConformalClassifier tight{model(), calib, 0.02};
  EXPECT_LE(loose.evaluate(model(), test).mean_set_size,
            tight.evaluate(model(), test).mean_set_size + 1e-9);
}

TEST(Conformal, PredictionSetNeverEmpty) {
  dl::Dataset calib, test;
  dl::split(id_data(), 0.5, calib, test);
  const ConformalClassifier cc{model(), calib, 0.1};
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_FALSE(cc.prediction_set(model(), test.samples[i].input).empty());
}

TEST(Conformal, RejectsBadAlpha) {
  EXPECT_THROW(ConformalClassifier(model(), id_data(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(ConformalClassifier(model(), id_data(), 1.0),
               std::invalid_argument);
}

// Property sweep: AUROC is invariant under monotone transforms of scores.
class AurocInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AurocInvariance, MonotoneTransformInvariant) {
  util::Xoshiro256 rng{GetParam()};
  std::vector<double> neg, pos;
  for (int i = 0; i < 60; ++i) {
    neg.push_back(rng.gaussian(0.0, 1.0));
    pos.push_back(rng.gaussian(1.0, 1.0));
  }
  const double base = auroc(neg, pos);
  auto transform = [](std::vector<double> v) {
    for (auto& x : v) x = std::exp(0.5 * x) + 3.0;
    return v;
  };
  EXPECT_NEAR(auroc(transform(neg), transform(pos)), base, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AurocInvariance,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace sx::supervise
