// Recovery-block and weight-integrity patterns exercised under the
// scenario machinery: the trained digit workload, scenario perturbations
// as the probe stream, live fault injection between inferences, and the
// packed-kernel execution config that PR 6 wired through the safety
// channels (StaticEngine::repack after weight mutation).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "dl/engine.hpp"
#include "safety/fault.hpp"
#include "safety/integrity.hpp"
#include "safety/recovery.hpp"
#include "scenario/scenario.hpp"
#include "scenario/workload.hpp"

namespace sx::scenario {
namespace {

const DigitWorkload& workload() {
  static const DigitWorkload w = make_digit_workload();
  return w;
}

/// An alternate (diverse) digit model: same data, different init seed and
/// shorter schedule — the recovery block's second opinion.
const dl::Model& alternate_model() {
  static const dl::Model alt = [] {
    DigitWorkloadConfig cfg;
    cfg.model_seed = 4242;
    cfg.train.epochs = 6;
    cfg.train.shuffle_seed = 29;
    // The alternate only needs to be serviceable, not golden.
    cfg.min_train_accuracy = 0.7;
    cfg.min_test_accuracy = 0.6;
    cfg.min_int8_accuracy = 0.5;
    return make_digit_workload(cfg).model;
  }();
  return alt;
}

dl::Layer& first_param_layer(dl::Model& m) {
  for (std::size_t i = 0; i < m.layer_count(); ++i)
    if (!m.layer(i).params().empty()) return m.layer(i);
  throw std::logic_error("no parameterized layer");
}

/// Perturbed probe stream straight from the scenario axis.
const dl::Dataset& noisy_probes() {
  static const dl::Dataset ds = apply_perturbation(
      workload().test, {PerturbationKind::kNoise, 0.15f}, /*seed=*/31);
  return ds;
}

// ---------------------------------------------------------- recovery block

TEST(ScenarioRecovery, DegradedEntryAndExitUnderLiveFault) {
  safety::MonitorConfig acceptance;  // finite outputs within +-1e4
  safety::RecoveryBlockChannel ch{workload().model, alternate_model(),
                                  acceptance};
  const std::size_t n = 24;
  std::vector<float> out(ch.output_size());

  // Clean phase: the primary passes its acceptance test; the alternate
  // never engages.
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(ch.infer(noisy_probes().samples[i].input.view(), out),
              Status::kOk);
  EXPECT_EQ(ch.recoveries(), 0u);
  EXPECT_EQ(ch.double_failures(), 0u);

  // Degraded entry: poison the primary replica with a weight large enough
  // to blow the output envelope on every probe. The channel must stay
  // operational (kOk) by engaging the alternate each time.
  float& weight = first_param_layer(ch.replica(0)).params()[0];
  const float golden_weight = weight;
  weight = 1e9f;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(ch.infer(noisy_probes().samples[i].input.view(), out),
              Status::kOk)
        << "recovery block must stay operational under a primary fault";
  EXPECT_EQ(ch.recoveries(), static_cast<std::uint64_t>(n));

  // Degraded exit: restoring the primary weight must return the channel
  // to the primary path — the recovery counter freezes.
  weight = golden_weight;
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(ch.infer(noisy_probes().samples[i].input.view(), out),
              Status::kOk);
  EXPECT_EQ(ch.recoveries(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(ch.double_failures(), 0u);
}

TEST(ScenarioRecovery, InjectorDrivenFaultsNeverFailStopSilently) {
  safety::MonitorConfig acceptance;
  safety::RecoveryBlockChannel ch{workload().model, alternate_model(),
                                  acceptance};
  safety::FaultInjector injector{/*seed=*/12021};
  std::vector<float> out(ch.output_size());
  // Scenario-style campaign loop: inject into either replica, probe, undo.
  for (std::size_t f = 0; f < 12; ++f) {
    const std::size_t target = f % ch.replica_count();
    const safety::FaultRecord rec =
        ch.inject_fault(injector, target, safety::FaultType::kStuckLarge);
    for (std::size_t i = 0; i < 4; ++i) {
      const Status st = ch.infer(noisy_probes().samples[i].input.view(), out);
      // A single-replica fault is either absorbed (primary still accepted),
      // recovered (alternate engaged) or an explicit fail-stop — and a
      // fail-stop is only legitimate when BOTH blocks failed acceptance.
      if (st != Status::kOk) {
        EXPECT_GT(ch.double_failures(), 0u)
            << "non-OK status without a recorded double failure";
      }
    }
    ch.undo_fault(target, rec);
  }
  // Faults were undone each round: the channel is clean again.
  const std::uint64_t recoveries_before = ch.recoveries();
  for (std::size_t i = 0; i < 8; ++i)
    ASSERT_EQ(ch.infer(noisy_probes().samples[i].input.view(), out),
              Status::kOk);
  EXPECT_EQ(ch.recoveries(), recoveries_before);
}

// ------------------------------------------------------- weight integrity

TEST(ScenarioIntegrity, GuardRepairsLiveFaultsUnderPackedKernels) {
  const dl::Model& golden = workload().model;
  safety::WeightIntegrityGuard guard{golden};
  dl::Model deployed = golden;  // the copy faults land in

  // Packed engine over the deployed copy: weights are snapshotted into
  // panels, the exact configuration where stale packs hide corruption.
  dl::StaticEngine engine{
      deployed, {.check_numeric_faults = false, .kernels = dl::KernelMode::kPacked}};
  const std::size_t n = 12;
  const std::size_t out_size = golden.output_shape().size();
  std::vector<float> baseline(n * out_size), probe(out_size);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(engine.run(noisy_probes().samples[i].input.view(),
                         std::span<float>(baseline).subspan(i * out_size,
                                                            out_size)),
              Status::kOk);
  }
  ASSERT_EQ(guard.verify(deployed), Status::kOk);

  // Faults go live while inference continues (no undo): the guard is the
  // only repair mechanism in this cell.
  safety::FaultInjector injector{/*seed=*/77007};
  for (int f = 0; f < 3; ++f)
    (void)injector.inject(deployed, safety::FaultType::kStuckLarge);
  engine.repack();  // deployed bits changed; panels must follow
  EXPECT_EQ(guard.verify(deployed), Status::kIntegrityFault);

  // Scrub detects and repairs every corrupted layer...
  EXPECT_EQ(guard.scrub(deployed), Status::kIntegrityFault);
  EXPECT_GE(guard.detections(), 1u);
  EXPECT_GE(guard.repaired_layers(), 1u);
  EXPECT_EQ(guard.verify(deployed), Status::kOk);
  EXPECT_EQ(guard.scrub(deployed), Status::kOk) << "second scrub not clean";

  // ...and after a repack the packed engine is bitwise back on the golden
  // decision stream: repair + repack == never faulted.
  engine.repack();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(engine.run(noisy_probes().samples[i].input.view(), probe),
              Status::kOk);
    for (std::size_t j = 0; j < out_size; ++j)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(probe[j]),
                std::bit_cast<std::uint32_t>(baseline[i * out_size + j]))
          << "probe " << i << " logit " << j
          << " not bitwise restored after scrub+repack";
  }
}

TEST(ScenarioIntegrity, AuditChainStaysVerifiableWhileFaultsAreLive) {
  // The audit chain must remain tamper-evident *and* verifiable while a
  // campaign fault is live inside the deployed channel — decisions taken
  // in the degraded window are evidence, not a gap in the record.
  const DigitWorkload& w = workload();
  ScenarioConfig cfg;
  core::PipelineConfig pc;
  pc.criticality = cfg.criticality;
  pc.spec = ScenarioSweeper{w.model, w.train, w.test, cfg}.config().spec;
  pc.kernel_mode = dl::KernelMode::kPacked;  // the staleness-hazard config
  core::CertifiablePipeline pipe{w.model, w.train, pc};
  ASSERT_FALSE(pipe.verification_refused());

  const std::size_t n = 8;
  for (std::size_t i = 0; i < n; ++i)
    (void)pipe.infer(noisy_probes().samples[i].input, /*logical_time=*/i);
  ASSERT_EQ(pipe.audit().verify(), Status::kOk);
  const std::size_t clean_entries = pipe.audit().size();
  ASSERT_GT(clean_entries, 0u);

  // Fault goes live through the channel (which repacks the panels); the
  // pipeline keeps deciding and the chain keeps extending verifiably.
  safety::FaultInjector injector{/*seed=*/4711};
  const safety::FaultRecord rec = pipe.channel()->inject_fault(
      injector, 0, safety::FaultType::kStuckLarge);
  for (std::size_t i = 0; i < n; ++i)
    (void)pipe.infer(noisy_probes().samples[i].input,
                     /*logical_time=*/n + i);
  EXPECT_EQ(pipe.audit().verify(), Status::kOk)
      << "audit chain must verify while the fault is live";
  EXPECT_GT(pipe.audit().size(), clean_entries)
      << "degraded-window decisions must still be recorded";

  pipe.channel()->undo_fault(0, rec);
  (void)pipe.infer(noisy_probes().samples[0].input, /*logical_time=*/2 * n);
  EXPECT_EQ(pipe.audit().verify(), Status::kOk);

  // And the verification is not vacuous: altering a recorded entry from the
  // faulted window must break the chain. (Test-only mutation hook.)
  auto& log = const_cast<trace::AuditLog&>(pipe.audit());
  log.tamper_payload_for_test(clean_entries, "rewritten history");
  EXPECT_EQ(log.verify(), Status::kIntegrityFault);
}

TEST(ScenarioIntegrity, StaleParkedPanelsAreDetectableWithoutRepack) {
  // The inverse property: WITHOUT repack, a packed engine keeps computing
  // on the pre-fault snapshot. This is exactly the staleness the safety
  // channels now guard against by repacking inside inject_fault/undo_fault
  // — here it is asserted directly as documentation of the hazard.
  const dl::Model& golden = workload().model;
  dl::Model deployed = golden;
  dl::StaticEngine engine{
      deployed, {.check_numeric_faults = false, .kernels = dl::KernelMode::kPacked}};
  std::vector<float> before(golden.output_shape().size());
  std::vector<float> after(golden.output_shape().size());
  const auto& input = noisy_probes().samples[0].input;
  ASSERT_EQ(engine.run(input.view(), before), Status::kOk);

  // Corrupt a dense weight in the live model only.
  first_param_layer(deployed).params()[0] = 1e9f;
  ASSERT_EQ(engine.run(input.view(), after), Status::kOk);
  bool identical = true;
  for (std::size_t j = 0; j < before.size(); ++j)
    identical = identical && std::bit_cast<std::uint32_t>(before[j]) ==
                                 std::bit_cast<std::uint32_t>(after[j]);
  EXPECT_TRUE(identical)
      << "packed panels unexpectedly observed a live-weight mutation";

  // repack() publishes the corruption to the panels.
  engine.repack();
  ASSERT_EQ(engine.run(input.view(), after), Status::kOk);
  bool changed = false;
  for (std::size_t j = 0; j < before.size(); ++j)
    changed = changed || std::bit_cast<std::uint32_t>(before[j]) !=
                             std::bit_cast<std::uint32_t>(after[j]);
  EXPECT_TRUE(changed) << "repack did not publish the mutated weight";
}

}  // namespace
}  // namespace sx::scenario
