// Seeded FUSA-violation fixture for sxlint's hot-path-alloc rule on the
// quantized runtime. NEVER compiled or linked — only scanned by the
// `sxlint_quant_fixture` CTest entry. The `dl/` directory component plus
// the `quant` stem make this file count as a kernel hot path (the same
// contract src/dl/quant.cpp and src/dl/qplan.cpp are held to), where
// dynamic allocation and container growth are forbidden outside the
// deploy-time plan.
#include <memory>
#include <vector>

namespace fixture {

// hot-path-alloc: growing the saturation-counter vector per inference
// instead of sizing it at quantize() time.
void count_clip(std::vector<unsigned long long>& sats, unsigned layer) {
  while (sats.size() <= layer) sats.push_back(0);
  ++sats[layer];
}

// hot-path-alloc: resizing the ping-pong activation buffers inside run().
void reshape_scratch(std::vector<signed char>& ping,
                     std::vector<signed char>& pong, unsigned n) {
  ping.resize(n);
  pong.resize(n);
}

// hot-path-alloc: allocating an im2col column per conv invocation instead
// of carving it from the planned byte arena.
std::unique_ptr<signed char[]> gather_column(unsigned taps) {
  return std::make_unique<signed char[]>(taps);
}

// hot-path-alloc (and heap-expr): raw new for a weight panel at run time.
signed char* pack_panel_late(unsigned bytes) { return new signed char[bytes]; }

// A waived finding: the marker must suppress this one (it contributes to
// the "waived" counter, not the findings list).
std::unique_ptr<int> deploy_time_slot() {
  return std::make_unique<int>(0);  // sxlint: allow(hot-path-alloc)
}

// Not findings: identifiers containing a banned name and string literals
// mentioning growth calls must stay silent.
void resize_noop() {}
const char* kDoc = "never call resize() or push_back() in the int8 path";

}  // namespace fixture
