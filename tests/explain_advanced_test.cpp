#include <gtest/gtest.h>

#include "dl/engine.hpp"
#include "explain/advanced.hpp"
#include "explain/metrics.hpp"
#include "test_helpers.hpp"

namespace sx::explain {
namespace {

using tensor::Shape;
using tensor::Tensor;

dl::Model& cnn() {
  static dl::Model m = sx::testing::trained_cnn();
  return m;
}

std::vector<const dl::Sample*> correct_signal_samples(std::size_t n) {
  std::vector<const dl::Sample*> out;
  for (const auto& s : sx::testing::road_data().samples) {
    if (!s.signal) continue;
    const Tensor logits = cnn().forward(s.input);
    if (tensor::argmax(logits.view()) != s.label) continue;
    out.push_back(&s);
    if (out.size() >= n) break;
  }
  return out;
}

// -------------------------------------------------------------- SmoothGrad

TEST(SmoothGrad, MatchesInputShapeAndNonNegative) {
  SmoothGrad sg{8, 0.05f, 3};
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const Tensor att = sg.attribute(cnn(), samples[0]->input, samples[0]->label);
  EXPECT_EQ(att.shape(), samples[0]->input.shape());
  for (std::size_t i = 0; i < att.size(); ++i) EXPECT_GE(att.at(i), 0.0f);
}

TEST(SmoothGrad, LocalizesSignal) {
  SmoothGrad sg{12, 0.05f, 3};
  const auto samples = correct_signal_samples(4);
  ASSERT_GE(samples.size(), 2u);
  double gain = 0.0;
  for (const auto* s : samples)
    gain += localization_gain(sg.attribute(cnn(), s->input, s->label),
                              *s->signal);
  EXPECT_GT(gain / static_cast<double>(samples.size()), 1.3);
}

TEST(SmoothGrad, MoreStableThanPlainSaliencyUnderNoise) {
  GradientSaliency plain;
  SmoothGrad smooth{16, 0.05f, 3};
  const auto samples = correct_signal_samples(2);
  ASSERT_GE(samples.size(), 1u);
  const double s_plain = stability(plain, cnn(), samples[0]->input,
                                   samples[0]->label, 0.05, 4, 17);
  const double s_smooth = stability(smooth, cnn(), samples[0]->input,
                                    samples[0]->label, 0.05, 4, 17);
  EXPECT_GE(s_smooth, s_plain - 0.1)
      << "noise averaging should not reduce stability";
}

TEST(SmoothGrad, RejectsZeroSamples) {
  EXPECT_THROW(SmoothGrad(0), std::invalid_argument);
}

// ----------------------------------------------------------------- GradCam

TEST(GradCam, MatchesInputShapeAndNonNegative) {
  GradCam gc;
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const Tensor att = gc.attribute(cnn(), samples[0]->input, samples[0]->label);
  EXPECT_EQ(att.shape(), samples[0]->input.shape());
  for (std::size_t i = 0; i < att.size(); ++i) EXPECT_GE(att.at(i), 0.0f);
}

TEST(GradCam, LocalizesSignal) {
  GradCam gc;
  const auto samples = correct_signal_samples(6);
  ASSERT_GE(samples.size(), 3u);
  double gain = 0.0;
  for (const auto* s : samples)
    gain += localization_gain(gc.attribute(cnn(), s->input, s->label),
                              *s->signal);
  EXPECT_GT(gain / static_cast<double>(samples.size()), 1.2);
}

TEST(GradCam, RequiresConvLayer) {
  GradCam gc;
  dl::Model mlp = sx::testing::trained_mlp();
  const auto& in = sx::testing::road_data().samples[0].input;
  EXPECT_THROW(gc.attribute(mlp, in, 0), std::invalid_argument);
}

TEST(GradCam, LeavesParamGradsClean) {
  GradCam gc;
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  (void)gc.attribute(cnn(), samples[0]->input, samples[0]->label);
  for (std::size_t li = 0; li < cnn().layer_count(); ++li)
    for (float v : cnn().layer(li).param_grads()) EXPECT_EQ(v, 0.0f);
}

// -------------------------------------------------------------- backward_to

TEST(BackwardTo, StopAtZeroEqualsFullBackward) {
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const auto acts = cnn().forward_trace(samples[0]->input);
  Tensor g{cnn().output_shape()};
  g.at(samples[0]->label) = 1.0f;
  const Tensor full = cnn().backward(acts, g);
  cnn().zero_grads();
  const Tensor to0 = cnn().backward_to(acts, g, 0);
  cnn().zero_grads();
  ASSERT_EQ(full.shape(), to0.shape());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_EQ(full.at(i), to0.at(i));
}

TEST(BackwardTo, RejectsOutOfRangeStop) {
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const auto acts = cnn().forward_trace(samples[0]->input);
  Tensor g{cnn().output_shape()};
  EXPECT_THROW(cnn().backward_to(acts, g, cnn().layer_count()),
               std::invalid_argument);
}

// ----------------------------------------------------------- counterfactual

TEST(Counterfactual, FlipsTheDecision) {
  const auto samples = correct_signal_samples(3);
  ASSERT_GE(samples.size(), 1u);
  const auto* s = samples[0];
  const std::size_t other = (s->label + 1) % dl::kRoadSceneClasses;
  const Counterfactual cf = find_counterfactual(cnn(), s->input, other);
  ASSERT_TRUE(cf.found);
  const Tensor logits = cnn().forward(cf.input);
  EXPECT_EQ(tensor::argmax(logits.view()), other);
  EXPECT_GT(cf.l2_distance, 0.0);
}

TEST(Counterfactual, StaysInDataDomain) {
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  const std::size_t other = (samples[0]->label + 2) % dl::kRoadSceneClasses;
  const Counterfactual cf = find_counterfactual(cnn(), samples[0]->input,
                                                other);
  if (!cf.found) GTEST_SKIP() << "did not converge for this class pair";
  for (std::size_t i = 0; i < cf.input.size(); ++i) {
    EXPECT_GE(cf.input.at(i), 0.0f);
    EXPECT_LE(cf.input.at(i), 1.0f);
  }
}

TEST(Counterfactual, TrivialWhenAlreadyTargetClass) {
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  CounterfactualConfig cfg;
  cfg.target_confidence = 0.3f;  // likely already satisfied
  const Counterfactual cf = find_counterfactual(
      cnn(), samples[0]->input, samples[0]->label, cfg);
  if (cf.found) {
    EXPECT_EQ(cf.iterations, 0u);
  }
}

TEST(Counterfactual, ReportsFailureOnImpossibleBudget) {
  const auto samples = correct_signal_samples(1);
  ASSERT_FALSE(samples.empty());
  CounterfactualConfig cfg;
  cfg.max_iterations = 1;  // no room to move
  cfg.target_confidence = 0.99f;
  const std::size_t other = (samples[0]->label + 1) % dl::kRoadSceneClasses;
  const Counterfactual cf =
      find_counterfactual(cnn(), samples[0]->input, other, cfg);
  EXPECT_FALSE(cf.found);
}

}  // namespace
}  // namespace sx::explain
