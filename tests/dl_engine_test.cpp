#include <gtest/gtest.h>

#include "dl/engine.hpp"
#include "test_helpers.hpp"
#include "util/hash.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(StaticEngine, MatchesOfflineForwardBitExactly) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m};
  const auto& ds = sx::testing::road_data();
  std::vector<float> out(m.output_shape().size());
  for (std::size_t i = 0; i < 20; ++i) {
    const Tensor ref = m.forward(ds.samples[i].input);
    ASSERT_EQ(engine.run(ds.samples[i].input.view(), out), Status::kOk);
    for (std::size_t k = 0; k < out.size(); ++k)
      EXPECT_EQ(out[k], ref.at(k)) << "sample " << i << " logit " << k;
  }
}

TEST(StaticEngine, DeterministicAcrossRepeatedRuns) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m};
  const Tensor& in = sx::testing::road_data().samples[0].input;
  std::vector<float> out(m.output_shape().size());
  ASSERT_EQ(engine.run(in.view(), out), Status::kOk);
  const std::uint64_t h0 = util::fnv1a(std::span<const float>(out));
  for (int r = 0; r < 50; ++r) {
    ASSERT_EQ(engine.run(in.view(), out), Status::kOk);
    EXPECT_EQ(util::fnv1a(std::span<const float>(out)), h0);
  }
}

TEST(StaticEngine, RejectsWrongShapes) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m};
  Tensor bad{Shape::vec(10)};
  std::vector<float> out(m.output_shape().size());
  EXPECT_EQ(engine.run(bad.view(), out), Status::kShapeMismatch);
  std::vector<float> small(1);
  EXPECT_EQ(engine.run(sx::testing::road_data().samples[0].input.view(),
                       small),
            Status::kShapeMismatch);
}

TEST(StaticEngine, DetectsNaNInput) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m, StaticEngineConfig{.check_numeric_faults = true}};
  Tensor in = sx::testing::road_data().samples[0].input;
  in.at(std::size_t{5}) = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> out(m.output_shape().size());
  EXPECT_EQ(engine.run(in.view(), out), Status::kNumericFault);
  EXPECT_EQ(engine.numeric_fault_count(), 1u);
}

TEST(StaticEngine, DetectsNaNFromCorruptedWeights) {
  Model m = sx::testing::trained_mlp();  // copy
  // Poison one weight with infinity: activations blow up to inf.
  m.layer(1).params()[0] = std::numeric_limits<float>::infinity();
  StaticEngine engine{m, StaticEngineConfig{.check_numeric_faults = true}};
  std::vector<float> out(m.output_shape().size());
  const Status st =
      engine.run(sx::testing::road_data().samples[1].input.view(), out);
  EXPECT_EQ(st, Status::kNumericFault);
}

TEST(StaticEngine, ArenaHighWaterMarkIsBounded) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m};
  std::vector<float> out(m.output_shape().size());
  ASSERT_EQ(engine.run(sx::testing::road_data().samples[0].input.view(), out),
            Status::kOk);
  EXPECT_LE(engine.arena_high_water_mark(), engine.arena_capacity());
  // The liveness pass shares non-interfering lifetimes, so the planned
  // demand is strictly below the classic ping-pong worst case.
  ASSERT_NE(engine.kernel_plan(), nullptr);
  EXPECT_EQ(engine.arena_high_water_mark(),
            engine.kernel_plan()->arena_elems());
  EXPECT_LT(engine.arena_high_water_mark(), 2 * m.max_activation_size());
}

TEST(StaticEngine, CountsRuns) {
  const Model& m = sx::testing::trained_mlp();
  StaticEngine engine{m};
  std::vector<float> out(m.output_shape().size());
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(
        engine.run(sx::testing::road_data().samples[0].input.view(), out),
        Status::kOk);
  EXPECT_EQ(engine.run_count(), 5u);
}

TEST(DynamicEngine, AgreesWithStaticEngine) {
  const Model& m = sx::testing::trained_cnn();
  StaticEngine st{m};
  DynamicEngine dyn{m};
  const auto& ds = sx::testing::road_data();
  std::vector<float> s_out(m.output_shape().size());
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(st.run(ds.samples[i].input.view(), s_out), Status::kOk);
    const auto d_out = dyn.run(ds.samples[i].input);
    for (std::size_t k = 0; k < s_out.size(); ++k)
      EXPECT_EQ(s_out[k], d_out[k]);
  }
}

TEST(SoftmaxCopy, NormalizesLogits) {
  const std::vector<float> logits{0.0f, 1.0f, 2.0f};
  const auto p = softmax_copy(logits);
  float s = 0.0f;
  for (float v : p) s += v;
  EXPECT_NEAR(s, 1.0f, 1e-6f);
  EXPECT_GT(p[2], p[0]);
}

// Property sweep: static engine output matches offline forward for both
// model architectures over many samples.
class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<bool, std::size_t>> {};

TEST_P(EngineEquivalence, StaticMatchesOffline) {
  const bool use_cnn = std::get<0>(GetParam());
  const std::size_t sample = std::get<1>(GetParam());
  const Model& m =
      use_cnn ? sx::testing::trained_cnn() : sx::testing::trained_mlp();
  StaticEngine engine{m};
  const Tensor& in = sx::testing::road_data().samples[sample].input;
  std::vector<float> out(m.output_shape().size());
  ASSERT_EQ(engine.run(in.view(), out), Status::kOk);
  const Tensor ref = m.forward(in);
  for (std::size_t k = 0; k < out.size(); ++k) EXPECT_EQ(out[k], ref.at(k));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineEquivalence,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values<std::size_t>(0, 7, 33, 101, 250)));

}  // namespace
}  // namespace sx::dl
