#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "test_helpers.hpp"

namespace sx::core {
namespace {

TEST(PipelineDrift, QuietOnNominalStream) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  CertifiablePipeline p{sx::testing::trained_mlp(), sx::testing::road_data(),
                        cfg};
  for (std::size_t i = 0; i < 200; ++i)
    (void)p.infer(sx::testing::road_data().samples[i % 400].input, i);
  EXPECT_FALSE(p.drift_alarmed());
}

TEST(PipelineDrift, AlarmsOnSustainedShiftAndLogsIt) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kSil2;
  cfg.supervisor_tpr = 0.99;  // keep per-input rejects rare
  CertifiablePipeline p{sx::testing::trained_mlp(), sx::testing::road_data(),
                        cfg};
  // Inputs inside the ODD but persistently unusual: moderate noise, which
  // the per-input supervisor mostly accepts while scores creep up.
  const dl::Dataset shifted = dl::corrupt(
      sx::testing::road_data(), dl::Corruption::kGaussianNoise, 3, 0.5f);
  std::size_t i = 0;
  while (!p.drift_alarmed() && i < 400) {
    (void)p.infer(shifted.samples[i % shifted.samples.size()].input, i);
    ++i;
  }
  EXPECT_TRUE(p.drift_alarmed()) << "after " << i << " shifted frames";
  // The alarm left a tamper-evident audit record.
  bool logged = false;
  for (std::size_t k = 0; k < p.audit().size(); ++k)
    logged |= p.audit().entry(k).actor == "drift-detector";
  EXPECT_TRUE(logged);
  EXPECT_EQ(p.audit().verify(), Status::kOk);
}

TEST(PipelineDrift, NoDetectorWithoutSupervisor) {
  PipelineConfig cfg;
  cfg.criticality = Criticality::kQM;
  CertifiablePipeline p{sx::testing::trained_mlp(), sx::testing::road_data(),
                        cfg};
  for (std::size_t i = 0; i < 50; ++i)
    (void)p.infer(sx::testing::road_data().samples[i].input, i);
  EXPECT_FALSE(p.drift_alarmed());
}

}  // namespace
}  // namespace sx::core
