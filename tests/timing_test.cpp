#include <gtest/gtest.h>

#include <cmath>

#include "timing/evt.hpp"
#include "timing/iid.hpp"
#include "timing/mbpta.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace sx::timing {
namespace {

std::vector<double> iid_gaussian(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian(1000.0, 25.0);
  return xs;
}

std::vector<double> correlated_walk(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> xs(n);
  double v = 1000.0;
  for (auto& x : xs) {
    v += rng.gaussian(0.0, 5.0);
    x = v;
  }
  return xs;
}

/// Samples an exact Gumbel(mu, beta) via inverse transform.
std::vector<double> gumbel_sample(std::size_t n, double mu, double beta,
                                  std::uint64_t seed) {
  util::Xoshiro256 rng{seed};
  std::vector<double> xs(n);
  for (auto& x : xs) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    x = mu - beta * std::log(-std::log(u));
  }
  return xs;
}

// --------------------------------------------------------------------- iid

TEST(Iid, RunsTestPassesOnIidData) {
  const auto xs = iid_gaussian(1000, 1);
  EXPECT_LT(std::fabs(runs_test_z(xs)), 1.96);
}

TEST(Iid, RunsTestFlagsRandomWalk) {
  const auto xs = correlated_walk(1000, 2);
  EXPECT_GT(std::fabs(runs_test_z(xs)), 1.96);
}

TEST(Iid, RunsTestNeedsEnoughData) {
  const std::vector<double> tiny{1, 2, 3};
  EXPECT_THROW(runs_test_z(tiny), std::invalid_argument);
}

TEST(Iid, AutocorrelationNearZeroForIid) {
  const auto xs = iid_gaussian(2000, 3);
  EXPECT_LT(std::fabs(autocorrelation(xs, 1)), 0.06);
}

TEST(Iid, AutocorrelationHighForWalk) {
  const auto xs = correlated_walk(2000, 4);
  EXPECT_GT(autocorrelation(xs, 1), 0.9);
}

TEST(Iid, KsZeroForIdenticalSamples) {
  const auto xs = iid_gaussian(100, 5);
  EXPECT_DOUBLE_EQ(ks_two_sample(xs, xs), 0.0);
}

TEST(Iid, KsLargeForShiftedSamples) {
  const auto a = iid_gaussian(500, 6);
  auto b = iid_gaussian(500, 7);
  for (auto& x : b) x += 100.0;
  EXPECT_GT(ks_two_sample(a, b), 0.9);
}

TEST(Iid, FullBatteryPassesIid) {
  const auto verdict = check_iid(iid_gaussian(1000, 8));
  EXPECT_TRUE(verdict.all_pass());
}

TEST(Iid, FullBatteryFailsWalk) {
  const auto verdict = check_iid(correlated_walk(1000, 9));
  EXPECT_FALSE(verdict.all_pass());
}

// --------------------------------------------------------------------- EVT

TEST(Evt, BlockMaximaBasics) {
  const std::vector<double> xs{1, 5, 2, 8, 3, 4, 9, 0};
  const auto m = block_maxima(xs, 4);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 8.0);
  EXPECT_DOUBLE_EQ(m[1], 9.0);
}

TEST(Evt, BlockMaximaDropsPartialBlock) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_EQ(block_maxima(xs, 2).size(), 2u);
}

TEST(Evt, GumbelFitRecoversParameters) {
  // Fit with block size 1 on exact Gumbel data: estimates should land near
  // the true (mu, beta).
  const double mu = 500.0, beta = 20.0;
  const auto xs = gumbel_sample(20000, mu, beta, 10);
  const GumbelFit fit = fit_gumbel(xs, 1);
  EXPECT_NEAR(fit.location, mu, 2.0);
  EXPECT_NEAR(fit.scale, beta, 2.0);
}

TEST(Evt, CdfQuantileInverse) {
  GumbelFit fit;
  fit.location = 100.0;
  fit.scale = 10.0;
  for (double q : {0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(fit.cdf(fit.quantile(q)), q, 1e-9);
  }
}

TEST(Evt, PwcetMonotoneInExceedance) {
  const auto xs = gumbel_sample(5000, 1000.0, 30.0, 11);
  const GumbelFit fit = fit_gumbel(xs, 20);
  double prev = 0.0;
  for (double p : {1e-3, 1e-6, 1e-9, 1e-12}) {
    const double bound = pwcet(fit, p);
    EXPECT_GT(bound, prev);
    prev = bound;
  }
}

TEST(Evt, PwcetUpperBoundsFreshSampleHwm) {
  const auto train = gumbel_sample(5000, 1000.0, 30.0, 12);
  const GumbelFit fit = fit_gumbel(train, 20);
  const auto fresh = gumbel_sample(1000, 1000.0, 30.0, 13);
  const double hwm = util::max_of(fresh);
  // At 1e-6 per-run exceedance, the bound should clear a 1k-run HWM.
  EXPECT_GT(pwcet(fit, 1e-6), hwm * 0.98);
}

TEST(Evt, PwcetRejectsBadProbability) {
  GumbelFit fit;
  EXPECT_THROW(pwcet(fit, 0.0), std::invalid_argument);
  EXPECT_THROW(pwcet(fit, 1.0), std::invalid_argument);
}

TEST(Evt, FitNeedsEnoughBlocks) {
  const auto xs = gumbel_sample(50, 0, 1, 14);
  EXPECT_THROW(fit_gumbel(xs, 20), std::invalid_argument);
}

// ------------------------------------------------------------------- MBPTA

TEST(Mbpta, AdmissibleOnIidData) {
  const auto rep = analyze(iid_gaussian(2000, 15));
  EXPECT_TRUE(rep.admissible);
  ASSERT_EQ(rep.curve.size(), 5u);
  // The pWCET at the loosest exceedance already clears the sample HWM's
  // neighbourhood; tighter exceedances are larger still.
  EXPECT_GT(rep.curve.back().bound, rep.curve.front().bound);
}

TEST(Mbpta, RefusesCorrelatedData) {
  const auto rep = analyze(correlated_walk(2000, 16));
  EXPECT_FALSE(rep.admissible);
  EXPECT_TRUE(rep.curve.empty());
}

TEST(Mbpta, ForceModeFitsAnyway) {
  const auto rep =
      analyze(correlated_walk(2000, 17), MbptaConfig{.require_iid = false});
  EXPECT_TRUE(rep.admissible);
  EXPECT_FALSE(rep.curve.empty());
}

TEST(Mbpta, NeedsMinimumObservations) {
  EXPECT_THROW(analyze(iid_gaussian(100, 18)), std::invalid_argument);
}

TEST(Mbpta, ReportTextMentionsVerdicts) {
  const auto rep = analyze(iid_gaussian(2000, 19));
  const std::string t = rep.to_text();
  EXPECT_NE(t.find("pWCET"), std::string::npos);
  EXPECT_NE(t.find("admissible: yes"), std::string::npos);
}

// Property sweep: the fitted pWCET at 1e-9 upper-bounds the training HWM
// for a range of Gumbel shapes.
class PwcetUpperBound
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PwcetUpperBound, BoundsTrainingHwm) {
  const double mu = std::get<0>(GetParam());
  const double beta = std::get<1>(GetParam());
  const auto xs = gumbel_sample(4000, mu, beta, 21);
  const GumbelFit fit = fit_gumbel(xs, 20);
  EXPECT_GE(pwcet(fit, 1e-9), util::max_of(xs));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PwcetUpperBound,
    ::testing::Combine(::testing::Values(100.0, 10000.0),
                       ::testing::Values(5.0, 50.0, 500.0)));

}  // namespace
}  // namespace sx::timing
