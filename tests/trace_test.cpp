#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "test_helpers.hpp"
#include "trace/audit.hpp"
#include "trace/odd.hpp"
#include "trace/provenance.hpp"
#include "trace/requirements.hpp"
#include "trace/safety_case.hpp"
#include "trace/segment.hpp"

namespace sx::trace {
namespace {

// -------------------------------------------------------------- requirements

TEST(Requirements, AddAndFind) {
  RequirementRegistry reg;
  reg.add(Requirement{"REQ-1", "detect obstacles", Criticality::kSil3});
  ASSERT_NE(reg.find("REQ-1"), nullptr);
  EXPECT_EQ(reg.find("REQ-1")->criticality, Criticality::kSil3);
  EXPECT_EQ(reg.find("REQ-2"), nullptr);
}

TEST(Requirements, RejectsDuplicatesAndEmptyIds) {
  RequirementRegistry reg;
  reg.add(Requirement{"REQ-1", "x", Criticality::kQM});
  EXPECT_THROW(reg.add(Requirement{"REQ-1", "y", Criticality::kQM}),
               std::invalid_argument);
  EXPECT_THROW(reg.add(Requirement{"", "y", Criticality::kQM}),
               std::invalid_argument);
}

TEST(Requirements, LinksRequireExistingRequirement) {
  RequirementRegistry reg;
  EXPECT_THROW(reg.link("REQ-404", ArtifactKind::kTest, "t1", "verifies"),
               std::invalid_argument);
}

TEST(Requirements, CoverageAndGaps) {
  RequirementRegistry reg;
  reg.add(Requirement{"REQ-1", "a", Criticality::kSil2});
  reg.add(Requirement{"REQ-2", "b", Criticality::kSil2});
  reg.link("REQ-1", ArtifactKind::kTest, "test-a", "verifies");
  EXPECT_DOUBLE_EQ(reg.coverage("verifies"), 0.5);
  const auto gaps = reg.uncovered("verifies");
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], "REQ-2");
}

TEST(Requirements, MatrixListsEverything) {
  RequirementRegistry reg;
  reg.add(Requirement{"REQ-1", "a", Criticality::kSil4});
  reg.link("REQ-1", ArtifactKind::kModel, "deadbeef", "implements");
  const std::string m = reg.matrix();
  EXPECT_NE(m.find("REQ-1"), std::string::npos);
  EXPECT_NE(m.find("SIL4"), std::string::npos);
  EXPECT_NE(m.find("deadbeef"), std::string::npos);
}

TEST(Requirements, CriticalityNames) {
  EXPECT_EQ(to_string(Criticality::kQM), "QM");
  EXPECT_EQ(to_string(Criticality::kSil4), "SIL4");
  EXPECT_EQ(to_string(ArtifactKind::kAnalysis), "analysis");
}

// -------------------------------------------------------------------- audit

TEST(Audit, ChainVerifies) {
  AuditLog log;
  log.append(1, "engine", "inference", "class=2");
  log.append(2, "supervisor", "reject", "score=9.3");
  log.append(3, "watchdog", "kick", "ok");
  EXPECT_EQ(log.verify(), Status::kOk);
  EXPECT_EQ(log.size(), 3u);
}

TEST(Audit, TamperingIsDetected) {
  AuditLog log;
  log.append(1, "engine", "inference", "class=2");
  log.append(2, "engine", "inference", "class=1");
  log.tamper_payload_for_test(0, "class=3");
  EXPECT_EQ(log.verify(), Status::kIntegrityFault);
}

TEST(Audit, HeadChangesWithEveryEntry) {
  AuditLog log;
  const auto h0 = log.head();
  log.append(1, "a", "b", "c");
  const auto h1 = log.head();
  log.append(2, "a", "b", "c");
  const auto h2 = log.head();
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, h2);
}

TEST(Audit, SequenceNumbersAreDense) {
  AuditLog log;
  for (int i = 0; i < 5; ++i) log.append(0, "x", "y", "z");
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(log.entry(i).sequence, i);
}

TEST(Audit, IdenticalPayloadsGetDistinctHashes) {
  AuditLog log;
  // Copy: the second append may reallocate the entry vector, so a reference
  // returned by the first would dangle.
  const auto h1 = log.append(1, "a", "act", "same").chain_hash;
  const auto h2 = log.append(1, "a", "act", "same").chain_hash;
  EXPECT_NE(h1, h2);  // chained, not content-only
}

TEST(Audit, VerifyFromMatchesFullVerifyOnCleanChain) {
  AuditLog log;
  for (int i = 0; i < 6; ++i) log.append(i, "x", "y", "z");
  // Pin an anchor mid-chain, append more, then check incrementally from it.
  const std::size_t anchor = 2;
  const auto digest = log.entry(anchor).chain_hash;
  for (int i = 6; i < 10; ++i) log.append(i, "x", "y", "z");
  EXPECT_EQ(log.verify(), Status::kOk);
  EXPECT_EQ(log.verify_from(anchor, digest), Status::kOk);
  EXPECT_EQ(log.verify_from(log.size() - 1, log.head()), Status::kOk);
}

TEST(Audit, VerifyFromCatchesSuffixTampering) {
  AuditLog log;
  for (int i = 0; i < 6; ++i) log.append(i, "x", "y", "z");
  const auto digest = log.entry(2).chain_hash;
  log.tamper_payload_for_test(4, "altered");
  // Equivalence with full verify on the tampered suffix.
  EXPECT_EQ(log.verify(), Status::kIntegrityFault);
  EXPECT_EQ(log.verify_from(2, digest), Status::kIntegrityFault);
}

TEST(Audit, VerifyFromCatchesRewrittenAnchor) {
  AuditLog log;
  for (int i = 0; i < 4; ++i) log.append(i, "x", "y", "z");
  util::Sha256Digest wrong = log.entry(1).chain_hash;
  wrong[0] ^= 0xff;
  // Claimed anchor digest disagrees with the stored head of the prefix:
  // a rewritten prefix is caught without replaying it.
  EXPECT_EQ(log.verify_from(1, wrong), Status::kIntegrityFault);
}

TEST(Audit, VerifyFromRejectsOutOfRangeAnchor) {
  AuditLog log;
  log.append(0, "x", "y", "z");
  EXPECT_EQ(log.verify_from(1, log.head()), Status::kInvalidArgument);
  EXPECT_EQ(AuditLog{}.verify_from(0, util::Sha256Digest{}),
            Status::kInvalidArgument);
}

TEST(Audit, FromEntriesAdoptsStoredHashes) {
  AuditLog log;
  log.append(1, "engine", "inference", "class=2");
  log.append(2, "engine", "inference", "class=1");
  // Clean entries reload into a verifying chain with the same head...
  AuditLog reloaded = AuditLog::from_entries(log.entries());
  EXPECT_EQ(reloaded.verify(), Status::kOk);
  EXPECT_EQ(reloaded.head(), log.head());
  // ...while a payload edited in the persisted form still fails verify:
  // from_entries must not re-chain (that would launder the tampering).
  std::vector<AuditEntry> edited = log.entries();
  edited[0].payload = "class=3";
  EXPECT_EQ(AuditLog::from_entries(std::move(edited)).verify(),
            Status::kIntegrityFault);
}

// ----------------------------------------------------------- audit segments

AuditLog trial_log(std::uint64_t first, std::uint64_t count) {
  AuditLog log;
  for (std::uint64_t t = first; t < first + count; ++t)
    log.append(t, "fleet", "trial", "t=" + std::to_string(t));
  return log;
}

TEST(AuditSegment, AnchorRequiresVerifiedOrderedSegments) {
  std::vector<AuditSegment> segs(2);
  segs[0] = AuditSegment{0, trial_log(0, 3)};
  segs[1] = AuditSegment{1, trial_log(3, 3)};
  const FleetAnchor good = anchor_segments(segs);
  EXPECT_EQ(good.status, Status::kOk);

  std::swap(segs[0], segs[1]);  // ids must be strictly increasing
  EXPECT_NE(anchor_segments(segs).status, Status::kOk);
  std::swap(segs[0], segs[1]);

  segs[1].log.tamper_payload_for_test(0, "t=999");
  const FleetAnchor bad = anchor_segments(segs);
  EXPECT_EQ(bad.status, Status::kIntegrityFault);
  EXPECT_EQ(bad.offending_shard, 1u);
}

TEST(AuditSegment, CanonicalRootIsPartitionIndependent) {
  // One segment holding all six trials...
  std::vector<AuditSegment> one{AuditSegment{0, trial_log(0, 6)}};
  // ...a contiguous 2-way split...
  std::vector<AuditSegment> split(2);
  split[0] = AuditSegment{0, trial_log(0, 3)};
  split[1] = AuditSegment{1, trial_log(3, 3)};
  // ...and an odd/even interleaving (logical_time still identifies the
  // global trial, so the canonical order is recoverable).
  std::vector<AuditSegment> lace(2);
  for (std::uint64_t t = 0; t < 6; ++t)
    lace[t % 2].log.append(t, "fleet", "trial", "t=" + std::to_string(t));
  lace[0].shard_id = 0;
  lace[1].shard_id = 1;

  const FleetAnchor a = canonical_root(one);
  const FleetAnchor b = canonical_root(split);
  const FleetAnchor c = canonical_root(lace);
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  ASSERT_EQ(c.status, Status::kOk);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.digest, c.digest);

  // The physical anchor, by contrast, commits to the sharding.
  EXPECT_NE(anchor_segments(one).digest, anchor_segments(split).digest);
}

TEST(AuditSegment, CanonicalRootIgnoresFramingEntries) {
  std::vector<AuditSegment> bare{AuditSegment{0, trial_log(0, 4)}};
  AuditLog framed_log;
  framed_log.append(0, "fleet", "shard-start", "shard=0");
  for (std::uint64_t t = 0; t < 4; ++t)
    framed_log.append(t, "fleet", "trial", "t=" + std::to_string(t));
  framed_log.append(4, "fleet", "shard-end", "done");
  std::vector<AuditSegment> framed{AuditSegment{0, std::move(framed_log)}};
  EXPECT_EQ(canonical_root(bare).digest, canonical_root(framed).digest);
}

TEST(AuditSegment, CanonicalRootRefusesDuplicateTrials) {
  std::vector<AuditSegment> segs(2);
  segs[0] = AuditSegment{0, trial_log(0, 3)};
  segs[1] = AuditSegment{1, trial_log(2, 3)};  // trial 2 appears twice
  EXPECT_NE(canonical_root(segs).status, Status::kOk);
}

TEST(AuditSegment, CanonicalRootRefusesBrokenChains) {
  std::vector<AuditSegment> segs{AuditSegment{0, trial_log(0, 3)}};
  segs[0].log.tamper_payload_for_test(1, "t=999");
  const FleetAnchor root = canonical_root(segs);
  EXPECT_EQ(root.status, Status::kIntegrityFault);
  EXPECT_EQ(root.offending_shard, 0u);
}

// --------------------------------------------------------------- provenance

TEST(Provenance, FingerprintSensitiveToData) {
  const auto ds1 = dl::make_road_scene(10, 1);
  auto ds2 = dl::make_road_scene(10, 1);
  EXPECT_EQ(dataset_fingerprint(ds1), dataset_fingerprint(ds2));
  ds2.samples[0].input.at(std::size_t{0}) += 0.001f;
  EXPECT_NE(dataset_fingerprint(ds1), dataset_fingerprint(ds2));
}

TEST(Provenance, ModelCardRoundTrip) {
  const auto& m = sx::testing::trained_mlp();
  const auto card = make_model_card("perception", "1.2", m,
                                    sx::testing::road_data(), "sgd", 0.9,
                                    "roads");
  EXPECT_EQ(verify_model_integrity(card, m), Status::kOk);
  dl::Model tampered = m;
  tampered.layer(1).params()[0] += 1.0f;
  EXPECT_EQ(verify_model_integrity(card, tampered), Status::kIntegrityFault);
}

TEST(Provenance, CardTextContainsFields) {
  const auto& m = sx::testing::trained_mlp();
  const auto card = make_model_card("perception", "1.2", m,
                                    sx::testing::road_data(), "sgd", 0.9,
                                    "roads");
  const std::string t = card.to_text();
  EXPECT_NE(t.find("perception"), std::string::npos);
  EXPECT_NE(t.find(card.model_hash), std::string::npos);
}

// -------------------------------------------------------------- safety case

TEST(SafetyCase, CompleteWhenAllGoalsHaveEvidence) {
  SafetyCase sc;
  const auto root = sc.set_root_goal("G0", "system is safe");
  const auto s = sc.add_strategy(root, "S1", "argue by pillar");
  const auto g1 = sc.add_goal(s, "G1", "pillar one holds");
  sc.add_solution(g1, "Sn1", "evidence");
  EXPECT_TRUE(sc.complete());
}

TEST(SafetyCase, DetectsUndischargedGoal) {
  SafetyCase sc;
  const auto root = sc.set_root_goal("G0", "system is safe");
  const auto s = sc.add_strategy(root, "S1", "argue by pillar");
  sc.add_goal(s, "G1", "pillar one holds");  // no evidence
  const auto gaps = sc.undischarged_goals();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], "G1");
  EXPECT_FALSE(sc.complete());
}

TEST(SafetyCase, SolutionsAreLeaves) {
  SafetyCase sc;
  const auto root = sc.set_root_goal("G0", "x");
  const auto sol = sc.add_solution(root, "Sn1", "evidence");
  EXPECT_THROW(sc.add_goal(sol, "G1", "child of solution"),
               std::invalid_argument);
}

TEST(SafetyCase, SingleRoot) {
  SafetyCase sc;
  sc.set_root_goal("G0", "x");
  EXPECT_THROW(sc.set_root_goal("G1", "y"), std::logic_error);
}

TEST(SafetyCase, RendersIndentedTree) {
  SafetyCase sc;
  const auto root = sc.set_root_goal("G0", "top");
  sc.add_solution(root, "Sn1", "proof");
  const std::string t = sc.to_text();
  EXPECT_NE(t.find("[G] G0"), std::string::npos);
  EXPECT_NE(t.find("  [Sn] Sn1"), std::string::npos);
}

// ---------------------------------------------------------------------- ODD

TEST(Odd, AcceptsInDistributionInputs) {
  OddGuard guard = OddGuard::fit(sx::testing::road_data());
  std::size_t violations = 0;
  for (std::size_t i = 0; i < 50; ++i)
    if (!ok(guard.check(sx::testing::road_data().samples[i].input.view())))
      ++violations;
  EXPECT_EQ(violations, 0u);
}

TEST(Odd, RejectsFarOutOfDomain) {
  OddGuard guard = OddGuard::fit(sx::testing::road_data());
  tensor::Tensor extreme{sx::testing::road_data().input_shape};
  extreme.fill(25.0f);  // values way above the [0,1] training range
  EXPECT_EQ(guard.check(extreme.view()), Status::kOddViolation);
  EXPECT_EQ(guard.violations(), 1u);
}

TEST(Odd, RejectsNaN) {
  OddGuard guard = OddGuard::fit(sx::testing::road_data());
  tensor::Tensor bad = sx::testing::road_data().samples[0].input;
  bad.at(std::size_t{0}) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(guard.check(bad.view()), Status::kOddViolation);
}

TEST(Odd, RejectsInvertedContrast) {
  OddGuard guard = OddGuard::fit(sx::testing::road_data(), 0.05f);
  // Uniform-random images have much higher per-image stddev than road
  // scenes; the dispersion envelope should catch most.
  const auto ood = dl::corrupt(sx::testing::road_data(),
                               dl::Corruption::kUniformRandom, 3);
  std::size_t violations = 0;
  for (std::size_t i = 0; i < 50; ++i)
    if (!ok(guard.check(ood.samples[i].input.view()))) ++violations;
  EXPECT_GT(violations, 25u);
}

TEST(Odd, FitRejectsEmptyData) {
  dl::Dataset empty;
  EXPECT_THROW(OddGuard::fit(empty), std::invalid_argument);
}

}  // namespace
}  // namespace sx::trace
