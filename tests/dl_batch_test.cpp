// BatchRunner unit tests: bitwise agreement with StaticEngine, deterministic
// per-worker counters, pre-planned arenas (the "no allocation / no thread
// spawn inside run()" evidence), argument validation and pipeline wiring.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dl/batch.hpp"
#include "test_helpers.hpp"
#include "util/hash.hpp"
#include "verify/range.hpp"

namespace sx::dl {
namespace {

using tensor::Tensor;

/// Flattens samples [first, first+count) into one contiguous input buffer.
std::vector<float> stage_inputs(std::size_t first, std::size_t count) {
  const auto& ds = sx::testing::road_data();
  const std::size_t in_size = ds.input_shape.size();
  std::vector<float> flat(count * in_size);
  for (std::size_t i = 0; i < count; ++i) {
    const auto src = ds.samples[first + i].input.data();
    std::copy(src.begin(), src.end(), flat.begin() + i * in_size);
  }
  return flat;
}

TEST(BatchRunner, MatchesStaticEngineBitExactly) {
  const Model& m = sx::testing::trained_mlp();
  const std::size_t n = 24;
  const std::size_t out_size = m.output_shape().size();
  const auto flat = stage_inputs(0, n);

  StaticEngine serial{m};
  std::vector<float> ref(n * out_size);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(serial.run(sx::testing::road_data().samples[i].input.view(),
                         std::span<float>(ref).subspan(i * out_size,
                                                       out_size)),
              Status::kOk);

  for (const std::size_t workers : {1u, 2u, 4u, 7u}) {
    BatchRunner runner{m, BatchRunnerConfig{.workers = workers}};
    std::vector<float> out(n * out_size, -1.0f);
    std::vector<Status> st(n, Status::kInvalidArgument);
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(st[i], Status::kOk) << "item " << i;
    EXPECT_EQ(out, ref) << workers << " workers";
  }
}

TEST(BatchRunner, CountersAreScheduleIndependent) {
  const Model& m = sx::testing::trained_mlp();
  const std::size_t n = 21;  // not a multiple of the worker count
  const auto flat = stage_inputs(0, n);
  std::vector<float> out(n * m.output_shape().size());
  std::vector<Status> st(n);

  // Per-worker item counts follow only from the static partition.
  BatchRunner runner{m, BatchRunnerConfig{.workers = 4}};
  for (int rep = 0; rep < 3; ++rep)
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
  EXPECT_EQ(runner.batch_count(), 3u);
  EXPECT_EQ(runner.item_count(), 3u * n);
  EXPECT_EQ(runner.run_count(), 3u * n);
  EXPECT_EQ(runner.numeric_fault_count(), 0u);
  const std::uint64_t expected_items[] = {18, 15, 15, 15};  // ceil splits
  for (std::size_t w = 0; w < 4; ++w) {
    const BatchWorkerStats s = runner.worker_stats(w);
    EXPECT_EQ(s.items, expected_items[w]) << "worker " << w;
    EXPECT_EQ(s.runs, expected_items[w]) << "worker " << w;
    EXPECT_EQ(s.batches, 3u);
    EXPECT_EQ(s.faults, 0u);
  }
}

TEST(BatchRunner, ArenasArePlannedUpFront) {
  // The certification argument for "no allocation inside run()": every
  // worker's arena is sized at configuration time and the high-water mark
  // never exceeds that plan, batch after batch.
  const Model& m = sx::testing::trained_cnn();
  BatchRunner runner{m, BatchRunnerConfig{.workers = 3}};
  // Shape-derived demand: ping-pong activations plus, under a planned
  // kernel mode, the largest ragged im2col column (verify/range re-derives
  // both without consulting the engine or the plan).
  const std::size_t planned = verify::static_arena_demand(m);
  for (std::size_t w = 0; w < runner.workers(); ++w)
    EXPECT_EQ(runner.worker_stats(w).arena_capacity, planned);

  const std::size_t n = 9;
  const auto flat = stage_inputs(0, n);
  std::vector<float> out(n * m.output_shape().size());
  std::vector<Status> st(n);
  for (int rep = 0; rep < 5; ++rep) {
    ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
    for (std::size_t w = 0; w < runner.workers(); ++w) {
      const BatchWorkerStats s = runner.worker_stats(w);
      EXPECT_EQ(s.arena_high_water_mark, planned);
      EXPECT_EQ(s.arena_capacity, planned);  // capacity never regrows
    }
  }
}

TEST(BatchRunner, ValidatesArguments) {
  const Model& m = sx::testing::trained_mlp();
  EXPECT_THROW(BatchRunner(m, BatchRunnerConfig{.workers = 0}),
               std::invalid_argument);
  EXPECT_THROW((BatchRunner(m, BatchRunnerConfig{.workers = 1,
                                                 .max_batch = 0})),
               std::invalid_argument);

  BatchRunner runner{m, BatchRunnerConfig{.workers = 2, .max_batch = 8}};
  std::vector<float> in(3 * runner.input_size());
  std::vector<float> out(3 * runner.output_size());
  std::vector<Status> st(3);
  EXPECT_EQ(runner.run(std::span<const float>(in).first(5), out, st),
            Status::kShapeMismatch);
  EXPECT_EQ(runner.run(in, std::span<float>(out).first(2), st),
            Status::kShapeMismatch);
  std::vector<Status> too_many(9);
  std::vector<float> in9(9 * runner.input_size());
  std::vector<float> out9(9 * runner.output_size());
  EXPECT_EQ(runner.run(in9, out9, too_many), Status::kInvalidArgument);

  // Empty batch is a no-op.
  EXPECT_EQ(runner.run({}, {}, {}), Status::kOk);
  EXPECT_EQ(runner.batch_count(), 0u);
}

TEST(BatchRunner, MoreWorkersThanItems) {
  const Model& m = sx::testing::trained_mlp();
  BatchRunner runner{m, BatchRunnerConfig{.workers = 8}};
  const std::size_t n = 3;
  const auto flat = stage_inputs(0, n);
  std::vector<float> out(n * m.output_shape().size());
  std::vector<Status> st(n);
  ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
  EXPECT_EQ(runner.run_count(), n);
  for (std::size_t w = n; w < 8; ++w) {
    EXPECT_EQ(runner.worker_stats(w).items, 0u);
    // Idle workers still participated in the dispatch barrier.
    EXPECT_EQ(runner.worker_stats(w).batches, 1u);
  }
}

TEST(BatchRunner, EvidenceReportsCounters) {
  const Model& m = sx::testing::trained_mlp();
  BatchRunner runner{m, BatchRunnerConfig{.workers = 2}};
  const std::size_t n = 6;
  const auto flat = stage_inputs(0, n);
  std::vector<float> out(n * m.output_shape().size());
  std::vector<Status> st(n);
  ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
  const core::EvidenceItem item = core::make_batch_runner_evidence(runner);
  EXPECT_EQ(item.title, "Deterministic batch execution");
  EXPECT_NE(item.body.find("items: 6 (6 ok, 0 numeric faults)"),
            std::string::npos)
      << item.body;
  EXPECT_NE(item.body.find("worker 1:"), std::string::npos);
}

TEST(CertifiablePipeline, BatchPathIsDisabledByDefault) {
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kQM;
  core::CertifiablePipeline p{sx::testing::trained_mlp(),
                              sx::testing::road_data(), cfg};
  EXPECT_EQ(p.batch_runner(), nullptr);
  EXPECT_THROW(p.infer_batch({sx::testing::road_data().samples[0].input}),
               std::logic_error);
}

TEST(CertifiablePipeline, BatchDecisionsIdenticalAcrossWorkerCounts) {
  const auto& ds = sx::testing::road_data();
  std::vector<Tensor> burst;
  for (std::size_t i = 0; i < 16; ++i) burst.push_back(ds.samples[i].input);

  std::vector<std::size_t> ref_classes;
  std::string ref_audit_head;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    core::PipelineConfig cfg;
    cfg.criticality = trace::Criticality::kSil2;
    cfg.batch_workers = workers;
    core::CertifiablePipeline p{sx::testing::trained_mlp(), ds, cfg};
    const auto decisions = p.infer_batch(burst, /*logical_time=*/1);
    ASSERT_EQ(decisions.size(), burst.size());
    std::vector<std::size_t> classes;
    for (const auto& d : decisions) {
      EXPECT_EQ(d.status, Status::kOk);
      classes.push_back(d.predicted_class);
    }
    ASSERT_EQ(p.batch_runner()->item_count(), burst.size());
    const std::string head = util::to_hex(p.audit().head());
    if (ref_classes.empty()) {
      ref_classes = classes;
      ref_audit_head = head;
    } else {
      EXPECT_EQ(classes, ref_classes) << workers << " workers";
      // The whole evidence trail — not just the outputs — is identical.
      EXPECT_EQ(head, ref_audit_head) << workers << " workers";
    }
  }
}

TEST(CertifiablePipeline, BatchAgreesWithSerialInference) {
  const auto& ds = sx::testing::road_data();
  core::PipelineConfig cfg;
  cfg.criticality = trace::Criticality::kQM;
  cfg.batch_workers = 2;
  core::CertifiablePipeline p{sx::testing::trained_mlp(), ds, cfg};

  std::vector<Tensor> burst;
  for (std::size_t i = 0; i < 10; ++i) burst.push_back(ds.samples[i].input);
  const auto decisions = p.infer_batch(burst);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    const Tensor ref = sx::testing::trained_mlp().forward(burst[i]);
    std::size_t cls = 0;
    for (std::size_t k = 1; k < ref.size(); ++k)
      if (ref.at(k) > ref.at(cls)) cls = k;
    EXPECT_EQ(decisions[i].predicted_class, cls) << "item " << i;
  }
}

}  // namespace
}  // namespace sx::dl
