// Shared fixtures: small trained models and datasets, built once per test
// binary (training is deterministic, so every binary sees identical models).
#pragma once

#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "dl/train.hpp"

namespace sx::testing {

/// RoadScene dataset, 400 samples (generation is cheap and deterministic).
inline const dl::Dataset& road_data() {
  static const dl::Dataset ds = dl::make_road_scene(400, /*seed=*/11);
  return ds;
}

/// Small MLP trained on RoadScene to usable accuracy (> ~80%).
inline const dl::Model& trained_mlp() {
  static const dl::Model model = [] {
    dl::ModelBuilder b{road_data().input_shape};
    b.flatten().dense(32).relu().dense(16).relu().dense(
        dl::kRoadSceneClasses);
    dl::Model m = b.build(/*seed=*/5);
    dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.02,
                                        .momentum = 0.9,
                                        .epochs = 30,
                                        .batch_size = 16,
                                        .shuffle_seed = 3}};
    trainer.fit(m, road_data());
    return m;
  }();
  return model;
}

/// Small CNN trained on RoadScene (used where spatial structure matters,
/// e.g. explainability tests).
inline const dl::Model& trained_cnn() {
  static const dl::Model model = [] {
    dl::ModelBuilder b{road_data().input_shape};
    b.conv2d(4, 3, /*stride=*/1, /*padding=*/1)
        .relu()
        .maxpool(2)
        .flatten()
        .dense(24)
        .relu()
        .dense(dl::kRoadSceneClasses);
    dl::Model m = b.build(/*seed=*/17);
    dl::Trainer trainer{dl::TrainConfig{.learning_rate = 0.02,
                                        .momentum = 0.9,
                                        .epochs = 12,
                                        .batch_size = 16,
                                        .shuffle_seed = 23}};
    trainer.fit(m, road_data());
    return m;
  }();
  return model;
}

}  // namespace sx::testing
