// Differential test harness: StaticEngine, DynamicEngine and BatchRunner
// (at 1, 2 and 4 workers) must produce bitwise-identical outputs over a
// population of randomly generated models and inputs (fixed seeds).
//
// This is the certification evidence pillar 3 needs: the compliant engine
// is not an approximation of the baseline — it computes the *same bits*,
// and parallel batch execution does not change a single one of them.
#include <gtest/gtest.h>

#include <algorithm>

#include <span>
#include <vector>

#include "dl/batch.hpp"
#include "dl/engine.hpp"
#include "dl/model.hpp"
#include "util/rng.hpp"

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kModels = 24;
constexpr std::size_t kInputsPerModel = 6;

/// Randomly assembled architecture: dense stacks with mixed activations,
/// optionally convolutional front-ends and a softmax head.
Model random_model(util::Xoshiro256& rng) {
  const bool image_input = rng.below(2) == 0;
  Shape input = image_input
                    ? Shape::chw(1, 4 + rng.below(5), 4 + rng.below(5))
                    : Shape::vec(4 + rng.below(21));
  ModelBuilder b{input};
  if (image_input) {
    if (rng.below(2) == 0) {
      b.conv2d(1 + rng.below(3), 3, /*stride=*/1, /*padding=*/1);
      b.relu();
    }
    b.flatten();
  }
  const std::size_t blocks = 1 + rng.below(3);
  for (std::size_t l = 0; l < blocks; ++l) {
    b.dense(3 + rng.below(18));
    switch (rng.below(4)) {
      case 0: b.relu(); break;
      case 1: b.sigmoid(); break;
      case 2: b.tanh_(); break;
      default: break;  // linear
    }
  }
  b.dense(2 + rng.below(5));
  if (rng.below(2) == 0) b.softmax();
  return b.build(/*seed=*/rng());
}

Tensor random_input(util::Xoshiro256& rng, const Shape& shape) {
  Tensor t{shape};
  for (std::size_t i = 0; i < t.size(); ++i)
    t.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
  return t;
}

TEST(EngineDifferential, AllEnginesBitwiseIdentical) {
  util::Xoshiro256 rng{0xD1FFu};
  for (std::size_t mi = 0; mi < kModels; ++mi) {
    SCOPED_TRACE("model " + std::to_string(mi));
    const Model model = random_model(rng);
    const std::size_t in_size = model.input_shape().size();
    const std::size_t out_size = model.output_shape().size();

    std::vector<Tensor> inputs;
    std::vector<float> flat(kInputsPerModel * in_size);
    for (std::size_t i = 0; i < kInputsPerModel; ++i) {
      inputs.push_back(random_input(rng, model.input_shape()));
      const auto src = inputs.back().data();
      std::copy(src.begin(), src.end(), flat.begin() + i * in_size);
    }

    // Reference: the offline forward (what DynamicEngine executes).
    StaticEngine engine{model};
    DynamicEngine dynamic{model};
    std::vector<float> static_out(out_size);
    std::vector<float> reference(kInputsPerModel * out_size);
    for (std::size_t i = 0; i < kInputsPerModel; ++i) {
      const std::vector<float> dyn = dynamic.run(inputs[i]);
      ASSERT_EQ(engine.run(inputs[i].view(), static_out), Status::kOk);
      ASSERT_EQ(dyn.size(), out_size);
      for (std::size_t k = 0; k < out_size; ++k) {
        // Bitwise: EXPECT_EQ on floats, not EXPECT_NEAR.
        ASSERT_EQ(static_out[k], dyn[k])
            << "static vs dynamic, input " << i << " logit " << k;
        reference[i * out_size + k] = dyn[k];
      }
    }

    for (const std::size_t workers : {1u, 2u, 4u}) {
      BatchRunner runner{model, BatchRunnerConfig{.workers = workers}};
      std::vector<float> batch_out(kInputsPerModel * out_size, -7.0f);
      std::vector<Status> statuses(kInputsPerModel, Status::kOk);
      ASSERT_EQ(runner.run(flat, batch_out, statuses), Status::kOk);
      for (std::size_t i = 0; i < kInputsPerModel; ++i)
        ASSERT_EQ(statuses[i], Status::kOk) << "input " << i;
      ASSERT_EQ(batch_out, reference) << workers << " workers";
      EXPECT_EQ(runner.numeric_fault_count(), 0u);
    }
  }
}

TEST(EngineDifferential, RepeatedBatchesAreReproducible) {
  // The batch executor is as repeatable as the serial engine: same batch,
  // same bits, run after run and across distinct runner instances.
  util::Xoshiro256 rng{0xBEEFu};
  const Model model = random_model(rng);
  const std::size_t in_size = model.input_shape().size();
  const std::size_t out_size = model.output_shape().size();
  std::vector<float> flat(10 * in_size);
  for (auto& v : flat) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> first;
  for (int instance = 0; instance < 2; ++instance) {
    BatchRunner runner{model, BatchRunnerConfig{.workers = 3}};
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<float> out(10 * out_size);
      std::vector<Status> st(10);
      ASSERT_EQ(runner.run(flat, out, st), Status::kOk);
      if (first.empty())
        first = out;
      else
        ASSERT_EQ(out, first);
    }
  }
}

}  // namespace
}  // namespace sx::dl
