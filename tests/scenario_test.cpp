// Scenario-sweep evidence harness tests: the trained digit workload with
// its golden accuracy gates, deterministic cell grids (byte-identical JSON
// across runs), twin wiring and bitwise identity across execution configs,
// injected-vs-clean campaign contrast, the negative paths (verify-gate
// refusal at SIL3, empty probe sets) that must yield explicit conservative
// verdicts rather than silent skips, and the obs-snapshot cross-check
// against the Prometheus exposition.
//
// The ScenarioSmoke suite is the fast slice wired into the scenario-smoke
// CTest preset; keep it lean.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/criticality.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "dl/model.hpp"
#include "obs/registry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/workload.hpp"

namespace sx::scenario {
namespace {

/// One shared trained workload for the whole binary (training dominates
/// the suite's cost). Built with the default config, so its golden
/// accuracy gates are enforced by construction — this doubles as the
/// trained-workload gate test.
const DigitWorkload& workload() {
  static const DigitWorkload w = make_digit_workload();
  return w;
}

/// Small cross-axes grid: 2 perturbations x 2 campaigns x OOD off/on x
/// (reference anchor + packed/4-worker extreme, both backends) = 32 cells.
ScenarioConfig smoke_config() {
  ScenarioConfig cfg;
  cfg.perturbations = {{PerturbationKind::kNone, 0.0f},
                       {PerturbationKind::kNoise, 0.15f}};
  cfg.campaigns = {{},
                   {"stuck-large", true, safety::FaultType::kStuckLarge,
                    /*n_faults=*/12, /*probes_per_fault=*/4}};
  cfg.execs = {
      {core::BackendKind::kFloat32, dl::KernelMode::kReference, 1},
      {core::BackendKind::kFloat32, dl::KernelMode::kPacked, 4},
      {core::BackendKind::kInt8, dl::KernelMode::kReference, 1},
      {core::BackendKind::kInt8, dl::KernelMode::kPacked, 4},
  };
  cfg.max_probes = 32;
  cfg.ood_probes = 8;
  return cfg;
}

dl::Layer& first_param_layer(dl::Model& m) {
  for (std::size_t i = 0; i < m.layer_count(); ++i)
    if (!m.layer(i).params().empty()) return m.layer(i);
  throw std::logic_error("no parameterized layer");
}

// ------------------------------------------------------------ smoke slice

TEST(ScenarioSmoke, WorkloadMeetsGoldenAccuracyGates) {
  const DigitWorkload& w = workload();
  const DigitWorkloadConfig defaults;
  EXPECT_GE(w.train_accuracy, defaults.min_train_accuracy);
  EXPECT_GE(w.test_accuracy, defaults.min_test_accuracy);
  EXPECT_GE(w.int8_accuracy, defaults.min_int8_accuracy);
}

TEST(ScenarioSmoke, SweepIsDeterministicAndAllCellsPass) {
  const DigitWorkload& w = workload();
  const ScenarioConfig cfg = smoke_config();
  ScenarioSweeper sweeper{w.model, w.train, w.test, cfg};
  const ScenarioReport report = sweeper.run();

  ASSERT_EQ(report.cell_count(), 32u);
  EXPECT_EQ(report.passed, 32u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.refused, 0u);
  EXPECT_EQ(report.unmeasured, 0u);
  EXPECT_TRUE(report.all_identity_ok());
  // Half the exec grid is non-reference, so half the cells carry an
  // identity check against their reference twin.
  EXPECT_EQ(report.identity_checked, 16u);
  EXPECT_EQ(report.identity_ok, 16u);

  // The acceptance contract: two sweeps over equal inputs export equal
  // bytes.
  const ScenarioReport again =
      ScenarioSweeper{w.model, w.train, w.test, cfg}.run();
  EXPECT_EQ(report.to_json(), again.to_json());
}

TEST(ScenarioSmoke, TwinWiringAnchorsEveryNonReferenceCell) {
  const DigitWorkload& w = workload();
  ScenarioSweeper sweeper{w.model, w.train, w.test, smoke_config()};
  const ScenarioReport report = sweeper.run();
  for (const auto& cell : report.cells) {
    const bool is_anchor =
        cell.kernel_mode == "reference" && cell.batch_workers == 1;
    if (is_anchor) {
      EXPECT_TRUE(cell.twin_id.empty()) << cell.id;
      EXPECT_FALSE(cell.identity_checked) << cell.id;
      continue;
    }
    ASSERT_FALSE(cell.twin_id.empty()) << cell.id;
    EXPECT_TRUE(cell.identity_checked) << cell.id;
    EXPECT_TRUE(cell.identity_ok) << cell.id;
    const ScenarioCellEvidence* twin = report.find(cell.twin_id);
    ASSERT_NE(twin, nullptr) << cell.twin_id;
    // The twin shares every non-execution coordinate and anchors the
    // backend's reference mode.
    EXPECT_EQ(twin->perturbation, cell.perturbation);
    EXPECT_EQ(twin->campaign, cell.campaign);
    EXPECT_EQ(twin->ood, cell.ood);
    EXPECT_EQ(twin->backend, cell.backend);
    EXPECT_EQ(twin->kernel_mode, "reference");
    // Bitwise identity is the hash of the full decision stream.
    EXPECT_EQ(twin->decision_hash, cell.decision_hash) << cell.id;
  }
}

TEST(ScenarioSmoke, InjectedCellsAreDistinguishedFromCleanTwins) {
  const DigitWorkload& w = workload();
  ScenarioSweeper sweeper{w.model, w.train, w.test, smoke_config()};
  const ScenarioReport report = sweeper.run();
  std::size_t injected_cells = 0;
  std::uint64_t disturbed = 0;
  for (const auto& cell : report.cells) {
    if (cell.campaign == "none") {
      EXPECT_FALSE(cell.campaign_injected) << cell.id;
      EXPECT_EQ(cell.outcome.total(), 0u) << cell.id;
      continue;
    }
    ++injected_cells;
    EXPECT_TRUE(cell.campaign_injected) << cell.id;
    // 12 faults x 4 probes per fault, all measured.
    EXPECT_EQ(cell.outcome.total(), 48u) << cell.id;
    disturbed += cell.outcome.sdc + cell.outcome.detected +
                 cell.outcome.fallback;
  }
  EXPECT_EQ(injected_cells, 16u);
  // The stuck-large campaign must visibly disturb at least one cell —
  // otherwise the matrix could not distinguish injected cells from their
  // clean twins. Deterministic: fixed seeds, static cell order.
  EXPECT_GT(disturbed, 0u);
  EXPECT_EQ(report.pooled.total(), injected_cells * 48u);
}

TEST(ScenarioSmoke, ObsSnapshotCrossChecksAgainstRegistryExport) {
  const DigitWorkload& w = workload();
  ScenarioConfig cfg = smoke_config();
  cfg.campaigns = {{}};
  cfg.perturbations = {{PerturbationKind::kNone, 0.0f}};
  cfg.cross_ood = false;
  cfg.execs = {{core::BackendKind::kFloat32, dl::KernelMode::kReference, 1}};
  const ScenarioReport report =
      ScenarioSweeper{w.model, w.train, w.test, cfg}.run();
  ASSERT_EQ(report.cell_count(), 1u);
  const auto& cell = report.cells[0];
  ASSERT_FALSE(cell.counters.empty());

  // Every snapshotted counter must exist in a live registry deployed the
  // same way, under the same exposition name — the property that lets
  // `sxmetrics --json` diff a Prometheus scrape against the cell snapshot.
  core::PipelineConfig pc;
  pc.criticality = cfg.criticality;
  pc.spec = ScenarioSweeper{w.model, w.train, w.test, cfg}.config().spec;
  pc.batch_workers = cfg.execs[0].batch_workers;  // cells deploy a batch pool
  core::CertifiablePipeline pipe{w.model, w.train, pc};
  const obs::Registry* reg = pipe.telemetry();
  ASSERT_NE(reg, nullptr);
  std::uint64_t decisions = 0;
  for (const auto& [name, value] : cell.counters) {
    EXPECT_EQ(name.rfind("sx_", 0), 0u) << name;
    EXPECT_TRUE(reg->find_counter(name).valid())
        << name << " not registered by an equivalent deployment";
    if (name == "sx_decisions_total") decisions = value;
  }
  // The snapshot must account for at least the single-path probe stream.
  EXPECT_GE(decisions, cell.probes);
}

// -------------------------------------------------------- negative paths

TEST(ScenarioNegative, PoisonedSil3ModelYieldsRefusedCellsNotSkips) {
  dl::Model poisoned = workload().model;  // copy, then break it
  first_param_layer(poisoned).params()[0] =
      std::numeric_limits<float>::quiet_NaN();

  ScenarioConfig cfg;
  cfg.criticality = trace::Criticality::kSil3;
  cfg.spec = core::recommended_spec(trace::Criticality::kSil3);
  cfg.perturbations = {{PerturbationKind::kNone, 0.0f}};
  cfg.campaigns = {{}, {"bitflip", true, safety::FaultType::kBitFlip, 4, 2}};
  cfg.cross_ood = false;
  cfg.execs = {
      {core::BackendKind::kFloat32, dl::KernelMode::kReference, 1},
      {core::BackendKind::kFloat32, dl::KernelMode::kBlocked, 1},
  };
  cfg.max_probes = 16;
  ScenarioSweeper sweeper{poisoned, workload().train, workload().test, cfg};
  const ScenarioReport report = sweeper.run();

  // Every cell must appear in the grid with an explicit refusal — a
  // refused deployment is evidence, not a hole in the matrix.
  ASSERT_EQ(report.cell_count(), 4u);
  EXPECT_EQ(report.refused, 4u);
  EXPECT_EQ(report.passed, 0u);
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.verdict, CellVerdict::kRefused) << cell.id;
    EXPECT_FALSE(cell.note.empty()) << cell.id;
    EXPECT_TRUE(cell.decision_hash.empty()) << cell.id;
    EXPECT_EQ(cell.outcome.total(), 0u) << cell.id;
  }
  // Refusals are verdicts, so the export stays deterministic too.
  const ScenarioReport again =
      ScenarioSweeper{poisoned, workload().train, workload().test, cfg}.run();
  EXPECT_EQ(report.to_json(), again.to_json());
}

TEST(ScenarioNegative, EmptyProbeSetYieldsConservativeUnmeasuredCells) {
  const DigitWorkload& w = workload();
  dl::Dataset empty;
  empty.input_shape = w.train.input_shape;
  empty.num_classes = w.train.num_classes;

  ScenarioConfig cfg;
  cfg.perturbations = {{PerturbationKind::kNone, 0.0f}};
  cfg.campaigns = {{}, {"bitflip", true, safety::FaultType::kBitFlip, 4, 2}};
  cfg.cross_ood = false;
  cfg.execs = {{core::BackendKind::kFloat32, dl::KernelMode::kReference, 1}};
  ScenarioSweeper sweeper{w.model, w.train, empty, cfg};
  const ScenarioReport report = sweeper.run();

  // PR 5 locked CampaignOutcome::measured(): measuring *nothing* must
  // surface as a conservative outcome, never a vacuous pass. The sweep
  // extends that to whole cells: no probes -> unmeasured verdict.
  ASSERT_EQ(report.cell_count(), 2u);
  EXPECT_EQ(report.unmeasured, 2u);
  EXPECT_EQ(report.passed, 0u);
  for (const auto& cell : report.cells) {
    EXPECT_EQ(cell.verdict, CellVerdict::kUnmeasured) << cell.id;
    EXPECT_NE(cell.note.find("empty probe set"), std::string::npos)
        << cell.note;
    EXPECT_EQ(cell.probes, 0u);
    EXPECT_EQ(cell.accuracy, 0.0);
  }
}

TEST(ScenarioNegative, WorkloadGateViolationThrows) {
  DigitWorkloadConfig cfg;
  cfg.samples = 240;
  cfg.train.epochs = 2;
  cfg.min_test_accuracy = 1.01;  // unattainable floor
  EXPECT_THROW(make_digit_workload(cfg), std::runtime_error);
}

// ------------------------------------------------------------ json export

TEST(ScenarioTest, JsonExportIsStructurallySound) {
  const DigitWorkload& w = workload();
  ScenarioConfig cfg = smoke_config();
  cfg.cross_ood = false;
  const ScenarioReport report =
      ScenarioSweeper{w.model, w.train, w.test, cfg}.run();
  const std::string json = report.to_json();

  EXPECT_NE(json.find("\"schema\":\"sx-scenario-report/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"criticality\":\"SIL2\""), std::string::npos);
  std::size_t ids = 0, braces = 0, brackets = 0;
  for (std::size_t at = json.find("\"id\":"); at != std::string::npos;
       at = json.find("\"id\":", at + 1))
    ++ids;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '[') ++brackets;
  }
  EXPECT_EQ(ids, report.cell_count());
  std::size_t closing_braces = 0, closing_brackets = 0;
  for (const char c : json) {
    if (c == '}') ++closing_braces;
    if (c == ']') ++closing_brackets;
  }
  EXPECT_EQ(braces, closing_braces);
  EXPECT_EQ(brackets, closing_brackets);
  for (const char* key :
       {"\"verdict\"", "\"decision_hash\"", "\"counters\"", "\"campaign\"",
        "\"sup_mean_id\"", "\"ood_catch_rate\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;

  // And it embeds/extracts through the certification-report markers.
  const auto item = core::make_scenario_evidence(report.summary(), json);
  EXPECT_NE(item.body.find("# BEGIN SX_SCENARIO_JSON"), std::string::npos);
  EXPECT_NE(item.body.find(json), std::string::npos);
  EXPECT_NE(item.body.find("# END SX_SCENARIO_JSON"), std::string::npos);
}

// -------------------------------------------------------- perturbations

TEST(ScenarioTest, PerturbationsAreSeededAndLabelPreserving) {
  const dl::Dataset base = dl::make_digits(40, /*seed=*/5);
  for (const Perturbation p :
       {Perturbation{PerturbationKind::kBrightness, 0.3f},
        Perturbation{PerturbationKind::kNoise, 0.15f},
        Perturbation{PerturbationKind::kShift, 0.25f}}) {
    const dl::Dataset a = apply_perturbation(base, p, /*seed=*/99);
    const dl::Dataset b = apply_perturbation(base, p, /*seed=*/99);
    ASSERT_EQ(a.samples.size(), base.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
      EXPECT_EQ(a.samples[i].label, base.samples[i].label);
      for (std::size_t j = 0; j < a.samples[i].input.size(); ++j)
        EXPECT_EQ(a.samples[i].input.at(j), b.samples[i].input.at(j))
            << "perturbation " << to_string(p.kind)
            << " not deterministic at sample " << i;
    }
  }
  // Brightness never darkens and respects the [0,1] ODD envelope.
  const dl::Dataset bright = apply_perturbation(
      base, {PerturbationKind::kBrightness, 0.3f}, /*seed=*/99);
  for (std::size_t i = 0; i < bright.samples.size(); ++i)
    for (std::size_t j = 0; j < bright.samples[i].input.size(); ++j) {
      EXPECT_GE(bright.samples[i].input.at(j), base.samples[i].input.at(j));
      EXPECT_LE(bright.samples[i].input.at(j), 1.0f);
    }
}

}  // namespace
}  // namespace sx::scenario
