// Seeded FUSA-violation fixture for sxlint coverage of src/serve/.
// NEVER compiled or linked — only scanned by the `sxlint_serve_fixture`
// CTest entry (WILL_FAIL). The `serve/` directory component makes this
// file count as runtime code, the same contract src/serve/*.cpp are held
// to: no console I/O, no banned headers, no raw heap expressions, no
// unbounded recursion, no throw from noexcept serving paths.
#include <cstdio>
#include <iostream>
#include <memory>

namespace fixture {

struct Request {
  unsigned long long seq;
  unsigned long long arrival;
};

// console-io: per-request chatter from inside the dispatch loop.
void report_shed(const Request& r) {
  std::cout << "shed request " << r.seq << "\n";
  printf("shed %llu\n", r.seq);
}

// heap-expr: growing the pending backlog with raw new/delete instead of a
// queue sized at deploy time.
Request* grow_backlog(unsigned n) { return new Request[n]; }
void drop_backlog(Request* backlog) { delete[] backlog; }

// banned-call: ad-hoc jitter in the batch window close (all serving time
// is logical; traffic randomness goes through the seeded generators).
unsigned long long jitter_close(unsigned long long close) {
  return close + rand() % 3;
}

// recursion: unbounded drain walk without an explicit bound waiver.
unsigned drain_depth(const Request* chain, unsigned at) {
  if (chain[at].seq == at) return 0;
  return 1 + drain_depth(chain, at + 1);
}

// throw-in-noexcept: an ingress hook that can actually throw — the ring
// submit path must stay allocation- and exception-free.
unsigned long long submit_at(const std::unique_ptr<Request[]>& slots,
                             unsigned i) noexcept {
  if (slots == nullptr) throw i;
  return slots[i].arrival;
}

// A waived finding: the marker must suppress this one.
std::unique_ptr<Request> deploy_time_slot() {
  return std::make_unique<Request>();  // sxlint: allow(hot-path-alloc)
}

// Not findings: identifiers and string literals mentioning banned calls.
void printf_like_name() {}
const char* kDoc = "never printf from a dispatch window";

}  // namespace fixture
