#include <gtest/gtest.h>

#include "dl/dataset.hpp"
#include "trace/provenance.hpp"

namespace sx::dl {
namespace {

TEST(RoadScene, ShapeAndLabels) {
  const Dataset ds = make_road_scene(40, 1);
  EXPECT_EQ(ds.samples.size(), 40u);
  EXPECT_EQ(ds.num_classes, kRoadSceneClasses);
  EXPECT_EQ(ds.input_shape, tensor::Shape::chw(1, 16, 16));
  for (const auto& s : ds.samples) {
    EXPECT_LT(s.label, kRoadSceneClasses);
    EXPECT_EQ(s.input.shape(), ds.input_shape);
  }
}

TEST(RoadScene, BalancedClasses) {
  const Dataset ds = make_road_scene(40, 1);
  std::vector<std::size_t> counts(kRoadSceneClasses, 0);
  for (const auto& s : ds.samples) ++counts[s.label];
  for (auto c : counts) EXPECT_EQ(c, 10u);
}

TEST(RoadScene, ValuesInUnitRange) {
  const Dataset ds = make_road_scene(20, 2);
  for (const auto& s : ds.samples)
    for (float v : s.input.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
}

TEST(RoadScene, SignalRegionOnlyForForegroundClasses) {
  const Dataset ds = make_road_scene(40, 3);
  for (const auto& s : ds.samples) {
    if (s.label == static_cast<std::size_t>(RoadSceneClass::kClearRoad)) {
      EXPECT_FALSE(s.signal.has_value());
    } else {
      ASSERT_TRUE(s.signal.has_value());
      EXPECT_GT(s.signal->area(), 0u);
      EXPECT_LE(s.signal->y1, kRoadSceneSide);
      EXPECT_LE(s.signal->x1, kRoadSceneSide);
    }
  }
}

TEST(RoadScene, SignalRegionIsBrighterThanBackground) {
  const Dataset ds = make_road_scene(40, 4);
  for (const auto& s : ds.samples) {
    if (!s.signal) continue;
    double inside = 0.0, outside = 0.0;
    std::size_t n_in = 0, n_out = 0;
    for (std::size_t y = 0; y < kRoadSceneSide; ++y)
      for (std::size_t x = 0; x < kRoadSceneSide; ++x) {
        if (s.signal->contains(y, x)) {
          inside += static_cast<double>(s.input.at(0, y, x));
          ++n_in;
        } else {
          outside += static_cast<double>(s.input.at(0, y, x));
          ++n_out;
        }
      }
    EXPECT_GT(inside / static_cast<double>(n_in),
              outside / static_cast<double>(n_out) + 0.2);
  }
}

TEST(RoadScene, DeterministicGeneration) {
  const Dataset a = make_road_scene(10, 42);
  const Dataset b = make_road_scene(10, 42);
  EXPECT_EQ(trace::dataset_fingerprint(a), trace::dataset_fingerprint(b));
  const Dataset c = make_road_scene(10, 43);
  EXPECT_NE(trace::dataset_fingerprint(a), trace::dataset_fingerprint(c));
}

TEST(RailwayObstacle, BinaryBalanced) {
  const Dataset ds = make_railway_obstacle(30, 1);
  EXPECT_EQ(ds.num_classes, 2u);
  std::size_t pos = 0;
  for (const auto& s : ds.samples) {
    EXPECT_LT(s.label, 2u);
    pos += s.label;
    if (s.label == 1) {
      EXPECT_TRUE(s.signal.has_value());
    }
  }
  EXPECT_EQ(pos, 15u);
}

TEST(SatelliteTelemetry, NominalHasNoAnomalies) {
  const Dataset ds = make_satellite_telemetry(50, 1, 0.0);
  for (const auto& s : ds.samples) EXPECT_EQ(s.label, 0u);
  EXPECT_EQ(ds.input_shape, tensor::Shape::vec(kTelemetryDim));
}

TEST(SatelliteTelemetry, AnomalyFractionRoughlyRespected) {
  const Dataset ds = make_satellite_telemetry(400, 2, 0.5);
  std::size_t anomalies = 0;
  for (const auto& s : ds.samples) anomalies += s.label;
  EXPECT_GT(anomalies, 140u);
  EXPECT_LT(anomalies, 260u);
}

TEST(Corruption, PreservesLabelsAndShape) {
  const Dataset ds = make_road_scene(12, 5);
  for (const Corruption c :
       {Corruption::kGaussianNoise, Corruption::kInvert, Corruption::kFog,
        Corruption::kUniformRandom}) {
    const Dataset cor = corrupt(ds, c, 9);
    ASSERT_EQ(cor.samples.size(), ds.samples.size());
    for (std::size_t i = 0; i < ds.samples.size(); ++i) {
      EXPECT_EQ(cor.samples[i].label, ds.samples[i].label);
      EXPECT_EQ(cor.samples[i].input.shape(), ds.samples[i].input.shape());
    }
  }
}

TEST(Corruption, InvertIsExactComplement) {
  const Dataset ds = make_road_scene(4, 5);
  const Dataset inv = corrupt(ds, Corruption::kInvert, 0);
  for (std::size_t i = 0; i < ds.samples.size(); ++i)
    for (std::size_t k = 0; k < ds.samples[i].input.size(); ++k)
      EXPECT_FLOAT_EQ(inv.samples[i].input.at(k),
                      1.0f - ds.samples[i].input.at(k));
}

TEST(Corruption, ActuallyChangesData) {
  const Dataset ds = make_road_scene(4, 5);
  for (const Corruption c :
       {Corruption::kGaussianNoise, Corruption::kFog,
        Corruption::kUniformRandom}) {
    const Dataset cor = corrupt(ds, c, 7);
    EXPECT_NE(trace::dataset_fingerprint(cor), trace::dataset_fingerprint(ds))
        << to_string(c);
  }
}

TEST(Split, PartitionsWithoutLoss) {
  const Dataset ds = make_road_scene(100, 6);
  Dataset train, test;
  split(ds, 0.8, train, test);
  EXPECT_EQ(train.samples.size(), 80u);
  EXPECT_EQ(test.samples.size(), 20u);
  EXPECT_EQ(train.num_classes, ds.num_classes);
}

TEST(Split, RejectsDegenerateFraction) {
  const Dataset ds = make_road_scene(10, 6);
  Dataset a, b;
  EXPECT_THROW(split(ds, 0.0, a, b), std::invalid_argument);
  EXPECT_THROW(split(ds, 1.0, a, b), std::invalid_argument);
}

}  // namespace
}  // namespace sx::dl
