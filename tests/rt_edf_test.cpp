#include <gtest/gtest.h>

#include "rt/edf.hpp"
#include "rt/rta.hpp"

namespace sx::rt {
namespace {

TaskSet implicit_set(std::uint64_t c1, std::uint64_t c2, std::uint64_t c3) {
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 50, .wcet = c1});
  ts.add(Task{.name = "b", .period = 100, .wcet = c2});
  ts.add(Task{.name = "c", .period = 200, .wcet = c3});
  return ts;
}

TEST(EdfAnalysis, UtilizationBound) {
  EXPECT_TRUE(edf_schedulable(implicit_set(25, 25, 50)));   // U = 1.0
  EXPECT_FALSE(edf_schedulable(implicit_set(30, 25, 50)));  // U = 1.1
}

TEST(EdfAnalysis, ConstrainedDeadlineDemandTest) {
  TaskSet ts;
  ts.add(Task{.name = "a", .period = 100, .wcet = 30, .deadline = 50});
  ts.add(Task{.name = "b", .period = 200, .wcet = 40, .deadline = 100});
  EXPECT_TRUE(edf_schedulable_constrained(ts, 10000));
  TaskSet bad;
  bad.add(Task{.name = "a", .period = 100, .wcet = 60, .deadline = 60});
  bad.add(Task{.name = "b", .period = 100, .wcet = 50, .deadline = 100});
  EXPECT_FALSE(edf_schedulable_constrained(bad, 10000));
}

TEST(EdfSim, BeatsFixedPriorityOnNonHarmonicSet) {
  // Classic separation: T=(5,7), C=(2,4), U = 0.971. EDF schedules it
  // (U <= 1); rate-monotonic fixed priorities do not (R2 = 8 > 7).
  TaskSet ts;
  ts.add(Task{.name = "fast", .period = 5, .wcet = 2});
  ts.add(Task{.name = "slow", .period = 7, .wcet = 4});
  const SimResult edf = simulate_edf(ts, SimConfig{.duration = 35 * 100});
  EXPECT_EQ(edf.total_misses, 0u);

  ts.assign_deadline_monotonic();
  ASSERT_FALSE(response_time_analysis(ts).schedulable);
  const SimResult fp = simulate(ts, SimConfig{.duration = 35 * 100});
  EXPECT_GT(fp.total_misses, 0u)
      << "fixed-priority should miss where EDF does not";
}

TEST(EdfSim, FullUtilizationNoMisses) {
  const TaskSet ts = implicit_set(25, 25, 50);  // U = 1.0
  const SimResult edf = simulate_edf(ts, SimConfig{.duration = 200 * 50});
  EXPECT_EQ(edf.total_misses, 0u);
}

TEST(EdfSim, OverloadMisses) {
  const TaskSet ts = implicit_set(30, 30, 60);  // U = 1.2
  const SimResult r = simulate_edf(ts, SimConfig{.duration = 100000});
  EXPECT_GT(r.total_misses, 0u);
}

TEST(EdfSim, EarlierDeadlineRunsFirst) {
  TaskSet ts;
  ts.add(Task{.name = "tight", .period = 1000, .wcet = 10, .deadline = 20});
  ts.add(Task{.name = "loose", .period = 1000, .wcet = 500,
              .deadline = 1000});
  const SimResult r = simulate_edf(ts, SimConfig{.duration = 1000});
  EXPECT_EQ(r.per_task[0].max_response, 10u)
      << "tight-deadline job must preempt/run first";
}

TEST(EdfSim, AbortPolicyCapsResponse) {
  const TaskSet ts = implicit_set(30, 30, 60);
  const SimResult r = simulate_edf(
      ts, SimConfig{.duration = 100000, .miss_policy = MissPolicy::kAbort});
  EXPECT_GT(r.total_misses, 0u);
  for (const auto& st : r.per_task) EXPECT_GT(st.jobs, 0u);
}

TEST(EdfSim, MatchesExecTimeSampling) {
  const TaskSet ts = implicit_set(25, 25, 50);
  const ExecTimeFn sampler = [](const Task& t, util::Xoshiro256& rng) {
    return 1 + rng.below(t.wcet);
  };
  const SimResult r =
      simulate_edf(ts, SimConfig{.duration = 100000, .seed = 4}, sampler);
  EXPECT_EQ(r.total_misses, 0u);
}

TEST(EdfSim, RejectsEmptySet) {
  TaskSet empty;
  EXPECT_THROW(simulate_edf(empty, SimConfig{}), std::invalid_argument);
}

// Property sweep: any implicit-deadline set with U <= 1 has no EDF misses.
class EdfSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EdfSweep, UnderUnitUtilizationNoMisses) {
  util::Xoshiro256 rng{GetParam()};
  TaskSet ts;
  double budget = 0.98;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t period = 30 + rng.below(300);
    const double share = budget * rng.uniform(0.2, 0.4);
    const auto wcet = static_cast<std::uint64_t>(
        std::max(1.0, share * static_cast<double>(period)));
    budget -= static_cast<double>(wcet) / static_cast<double>(period);
    ts.add(Task{.name = "t" + std::to_string(i), .period = period,
                .wcet = wcet});
  }
  ASSERT_LE(ts.utilization(), 1.0);
  const SimResult r = simulate_edf(ts, SimConfig{.duration = 300000});
  EXPECT_EQ(r.total_misses, 0u) << "U=" << ts.utilization();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdfSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sx::rt
