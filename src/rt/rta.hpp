// Response-time analysis for fixed-priority preemptive scheduling
// (Joseph & Pandya / Audsley). The static counterpart of the scheduler
// simulation: experiment E9 checks that the two agree.
#pragma once

#include <optional>

#include "rt/task.hpp"

namespace sx::rt {

struct RtaResult {
  /// Worst-case response time per task (same order as the task set);
  /// empty optional when the fixed-point iteration diverged past the
  /// deadline (unschedulable task).
  std::vector<std::optional<std::uint64_t>> response_times;
  bool schedulable = false;
};

/// Exact RTA: R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j.
RtaResult response_time_analysis(const TaskSet& ts);

/// Liu & Layland utilization bound for rate-monotonic scheduling of n tasks.
double rm_utilization_bound(std::size_t n) noexcept;

}  // namespace sx::rt
