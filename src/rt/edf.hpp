// Earliest-deadline-first scheduling (dynamic priorities).
//
// The fixed-priority scheduler models classic automotive/avionics RTOSes;
// EDF is the optimal uniprocessor alternative: any implicit-deadline task
// set with U <= 1 is schedulable. Experiment-wise it provides the
// reference point "how much utilization does fixed-priority leave on the
// table" for hosting DL tasks.
#pragma once

#include "rt/scheduler.hpp"
#include "rt/task.hpp"

namespace sx::rt {

/// EDF schedulability for implicit-deadline periodic tasks: U <= 1.
bool edf_schedulable(const TaskSet& ts) noexcept;

/// Processor-demand test for constrained deadlines (D <= T): checks
/// sum_i max(0, floor((t - D_i)/T_i) + 1) * C_i <= t at every absolute
/// deadline t up to the hyperperiod-bounded testing interval.
bool edf_schedulable_constrained(const TaskSet& ts,
                                 std::uint64_t horizon = 1'000'000);

/// Event-driven EDF simulation (preemptive, dynamic priorities).
SimResult simulate_edf(const TaskSet& ts, const SimConfig& cfg,
                       const ExecTimeFn& exec_time = nullptr);

}  // namespace sx::rt
