// Event-driven fixed-priority preemptive scheduler simulation.
//
// Complements the static response-time analysis: jobs draw *actual*
// execution times (e.g. sampled under a pWCET budget) and the simulation
// records response times and deadline misses. A watchdog-style miss policy
// can abort late jobs, modelling the fallback channel taking over.
#pragma once

#include <functional>

#include "rt/task.hpp"
#include "util/rng.hpp"

namespace sx::rt {

enum class MissPolicy : std::uint8_t {
  kContinue,  ///< late jobs run to completion (misses recorded)
  kAbort,     ///< watchdog aborts the job at its deadline (fail-stop)
};

/// Samples the actual execution time of one job of `task`.
using ExecTimeFn =
    std::function<std::uint64_t(const Task& task, util::Xoshiro256& rng)>;

struct TaskStats {
  std::uint64_t jobs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t aborted = 0;
  std::uint64_t max_response = 0;
  double mean_response = 0.0;

  double miss_rate() const noexcept {
    return jobs ? static_cast<double>(deadline_misses + aborted) /
                      static_cast<double>(jobs)
                : 0.0;
  }
};

struct SimResult {
  std::vector<TaskStats> per_task;
  std::uint64_t total_jobs = 0;
  std::uint64_t total_misses = 0;  ///< includes aborted jobs

  double miss_rate() const noexcept {
    return total_jobs ? static_cast<double>(total_misses) /
                            static_cast<double>(total_jobs)
                      : 0.0;
  }
};

struct SimConfig {
  std::uint64_t duration = 1'000'000;
  MissPolicy miss_policy = MissPolicy::kContinue;
  std::uint64_t seed = 42;
};

/// Simulates `ts` for cfg.duration time units. `exec_time` may be null, in
/// which case every job takes exactly its WCET.
SimResult simulate(const TaskSet& ts, const SimConfig& cfg,
                   const ExecTimeFn& exec_time = nullptr);

}  // namespace sx::rt
