#include "rt/rta.hpp"

#include <algorithm>
#include <cmath>

#include "util/saturate.hpp"

namespace sx::rt {

void TaskSet::assign_deadline_monotonic() noexcept {
  // Rank by deadline: shortest deadline gets the largest priority value.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return tasks[a].deadline < tasks[b].deadline;
  });
  int prio = static_cast<int>(tasks.size());
  for (std::size_t idx : order) tasks[idx].priority = prio--;
}

RtaResult response_time_analysis(const TaskSet& ts) {
  RtaResult result;
  result.response_times.resize(ts.tasks.size());
  result.schedulable = true;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const Task& ti = ts.tasks[i];
    std::uint64_t r = ti.wcet;
    bool converged = false;
    bool saturated = false;
    // Fixed-point iteration; bail out once R exceeds the deadline.
    for (int iter = 0; iter < 1000 && !saturated; ++iter) {
      std::uint64_t next = ti.wcet;
      for (std::size_t j = 0; j < ts.tasks.size(); ++j) {
        if (j == i) continue;
        const Task& tj = ts.tasks[j];
        // Equal-priority tasks interfere too: under FP scheduling a tie
        // may be broken either way, so each such task can delay ti by a
        // full job per release. Only strictly lower priorities are exempt.
        if (tj.priority < ti.priority) continue;
        next = util::sat_add(
            next, util::sat_mul(util::ceil_div(r, tj.period), tj.wcet));
        if (next == util::kSatMax) {
          // Saturated interference: the true value exceeds uint64 range,
          // hence any representable deadline. Refuse as non-schedulable
          // instead of letting a wrapped sum fabricate convergence.
          saturated = true;
          break;
        }
      }
      if (saturated) break;
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > ti.deadline) break;
    }
    if (converged && r <= ti.deadline) {
      result.response_times[i] = r;
    } else {
      result.response_times[i] = std::nullopt;
      result.schedulable = false;
    }
  }
  return result;
}

double rm_utilization_bound(std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

}  // namespace sx::rt
