#include "rt/rta.hpp"

#include <algorithm>
#include <cmath>

namespace sx::rt {

void TaskSet::assign_deadline_monotonic() noexcept {
  // Rank by deadline: shortest deadline gets the largest priority value.
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return tasks[a].deadline < tasks[b].deadline;
  });
  int prio = static_cast<int>(tasks.size());
  for (std::size_t idx : order) tasks[idx].priority = prio--;
}

RtaResult response_time_analysis(const TaskSet& ts) {
  RtaResult result;
  result.response_times.resize(ts.tasks.size());
  result.schedulable = true;
  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    const Task& ti = ts.tasks[i];
    std::uint64_t r = ti.wcet;
    bool converged = false;
    // Fixed-point iteration; bail out once R exceeds the deadline.
    for (int iter = 0; iter < 1000; ++iter) {
      std::uint64_t next = ti.wcet;
      for (std::size_t j = 0; j < ts.tasks.size(); ++j) {
        if (j == i) continue;
        const Task& tj = ts.tasks[j];
        if (tj.priority <= ti.priority) continue;
        next += ((r + tj.period - 1) / tj.period) * tj.wcet;
      }
      if (next == r) {
        converged = true;
        break;
      }
      r = next;
      if (r > ti.deadline) break;
    }
    if (converged && r <= ti.deadline) {
      result.response_times[i] = r;
    } else {
      result.response_times[i] = std::nullopt;
      result.schedulable = false;
    }
  }
  return result;
}

double rm_utilization_bound(std::size_t n) noexcept {
  if (n == 0) return 0.0;
  const double nn = static_cast<double>(n);
  return nn * (std::pow(2.0, 1.0 / nn) - 1.0);
}

}  // namespace sx::rt
