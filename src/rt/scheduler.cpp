#include "rt/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sx::rt {
namespace {

struct Job {
  std::size_t task = 0;
  std::uint64_t release = 0;
  std::uint64_t abs_deadline = 0;
  std::uint64_t remaining = 0;
  bool missed_marked = false;
};

}  // namespace

SimResult simulate(const TaskSet& ts, const SimConfig& cfg,
                   const ExecTimeFn& exec_time) {
  if (ts.tasks.empty()) throw std::invalid_argument("simulate: empty task set");
  util::Xoshiro256 rng{cfg.seed};

  SimResult result;
  result.per_task.resize(ts.tasks.size());
  std::vector<double> response_sums(ts.tasks.size(), 0.0);

  std::vector<std::uint64_t> next_release(ts.tasks.size(), 0);
  std::vector<Job> ready;
  std::uint64_t now = 0;

  auto release_due = [&](std::uint64_t t) {
    for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
      while (next_release[i] <= t) {
        const std::uint64_t c =
            exec_time ? exec_time(ts.tasks[i], rng) : ts.tasks[i].wcet;
        ready.push_back(Job{i, next_release[i],
                            next_release[i] + ts.tasks[i].deadline,
                            std::max<std::uint64_t>(1, c), false});
        ++result.per_task[i].jobs;
        ++result.total_jobs;
        next_release[i] += ts.tasks[i].period;
      }
    }
  };

  auto finish_job = [&](const Job& job, std::uint64_t completion,
                        bool aborted) {
    TaskStats& st = result.per_task[job.task];
    const std::uint64_t response = completion - job.release;
    st.max_response = std::max(st.max_response, response);
    response_sums[job.task] += static_cast<double>(response);
    if (aborted) {
      ++st.aborted;
      ++result.total_misses;
    } else if (completion > job.abs_deadline) {
      ++st.deadline_misses;
      ++result.total_misses;
    }
  };

  release_due(0);
  while (now < cfg.duration) {
    // Next release instant.
    std::uint64_t next_rel = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t r : next_release) next_rel = std::min(next_rel, r);

    if (ready.empty()) {
      if (next_rel >= cfg.duration) break;
      now = next_rel;
      release_due(now);
      continue;
    }

    // Highest-priority ready job (ties: earliest release).
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      const Job& a = ready[i];
      const Job& b = ready[best];
      if (ts.tasks[a.task].priority > ts.tasks[b.task].priority ||
          (ts.tasks[a.task].priority == ts.tasks[b.task].priority &&
           a.release < b.release))
        best = i;
    }
    Job& job = ready[best];

    std::uint64_t run_until = std::min(cfg.duration, now + job.remaining);
    run_until = std::min(run_until, next_rel);
    if (cfg.miss_policy == MissPolicy::kAbort)
      run_until = std::min(run_until, std::max(job.abs_deadline, now));

    const std::uint64_t ran = run_until - now;
    job.remaining -= std::min(job.remaining, ran);
    now = run_until;

    if (cfg.miss_policy == MissPolicy::kAbort && now >= job.abs_deadline &&
        job.remaining > 0) {
      finish_job(job, now, /*aborted=*/true);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    } else if (job.remaining == 0) {
      finish_job(job, now, /*aborted=*/false);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    }
    release_due(now);
  }

  // Jobs still pending past their deadline at simulation end are misses —
  // otherwise a starved task would look spuriously healthy.
  for (const Job& job : ready) {
    if (job.abs_deadline < now) {
      ++result.per_task[job.task].deadline_misses;
      ++result.total_misses;
    }
  }

  for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
    TaskStats& st = result.per_task[i];
    const std::uint64_t done = st.jobs;
    st.mean_response = done ? response_sums[i] / static_cast<double>(done) : 0;
  }
  return result;
}

}  // namespace sx::rt
