#include "rt/mixed_criticality.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/saturate.hpp"

namespace sx::rt {

void McTaskSet::add(McTask t) {
  if (t.period == 0 || t.wcet_lo == 0)
    throw std::invalid_argument("McTaskSet: zero period/wcet_lo");
  if (t.deadline == 0) t.deadline = t.period;
  if (t.high_criticality) {
    if (t.wcet_hi < t.wcet_lo)
      throw std::invalid_argument("McTaskSet: wcet_hi < wcet_lo");
  } else {
    t.wcet_hi = t.wcet_lo;  // LO tasks have a single budget
  }
  tasks.push_back(std::move(t));
}

void McTaskSet::assign_deadline_monotonic() noexcept {
  std::vector<std::size_t> order(tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return tasks[a].deadline < tasks[b].deadline;
                   });
  int prio = static_cast<int>(tasks.size());
  for (std::size_t idx : order) tasks[idx].priority = prio--;
}

double McTaskSet::utilization(Mode m) const noexcept {
  double u = 0.0;
  for (const auto& t : tasks) {
    if (m == Mode::kHi && !t.high_criticality) continue;
    const auto c = m == Mode::kHi ? t.wcet_hi : t.wcet_lo;
    u += static_cast<double>(c) / static_cast<double>(t.period);
  }
  return u;
}

namespace {

/// Generic fixed-point RTA over a filtered interference set. All
/// arithmetic saturates: a saturated sum means the true value exceeds
/// uint64 range (hence any deadline), so the task is refused instead of
/// letting a wrapped intermediate fabricate convergence below the
/// deadline.
std::optional<std::uint64_t> fixed_point(
    std::uint64_t own_c, std::uint64_t deadline,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& hp) {
  std::uint64_t r = own_c;
  for (int iter = 0; iter < 1000; ++iter) {
    std::uint64_t next = own_c;
    for (const auto& [period, c] : hp) {
      next = util::sat_add(next, util::sat_mul(util::ceil_div(r, period), c));
      if (next == util::kSatMax) return std::nullopt;
    }
    if (next == r) return r <= deadline ? std::optional(r) : std::nullopt;
    r = next;
    if (r > deadline) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

McRtaResult amc_rtb(const McTaskSet& ts) {
  McRtaResult res;
  const std::size_t n = ts.tasks.size();
  res.lo.resize(n);
  res.hi.resize(n);
  res.transition.resize(n);
  res.schedulable = true;

  // LO mode: everyone, C(LO). Equal-priority tasks (other than self)
  // interfere: a tie may be broken either way at runtime, so a sound
  // verdict charges a full job per release of every peer.
  for (std::size_t i = 0; i < n; ++i) {
    const McTask& ti = ts.tasks[i];
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hp;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i && ts.tasks[j].priority >= ti.priority)
        hp.emplace_back(ts.tasks[j].period, ts.tasks[j].wcet_lo);
    res.lo[i] = fixed_point(ti.wcet_lo, ti.deadline, hp);
    if (!res.lo[i]) res.schedulable = false;
  }

  // Steady HI mode and AMC-rtb transition: HI tasks only.
  for (std::size_t i = 0; i < n; ++i) {
    const McTask& ti = ts.tasks[i];
    if (!ti.high_criticality) continue;
    // Steady HI: interference from HI tasks at C(HI).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hp_hi;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i && ts.tasks[j].priority >= ti.priority &&
          ts.tasks[j].high_criticality)
        hp_hi.emplace_back(ts.tasks[j].period, ts.tasks[j].wcet_hi);
    res.hi[i] = fixed_point(ti.wcet_hi, ti.deadline, hp_hi);
    if (!res.hi[i]) res.schedulable = false;

    // Transition (AMC-rtb): HI interference grows to C(HI); LO
    // interference is frozen at what fits before the switch, bounded by
    // the LO-mode response time R_i^LO.
    if (!res.lo[i]) continue;
    const std::uint64_t r_lo = *res.lo[i];
    std::uint64_t r = ti.wcet_hi;
    std::optional<std::uint64_t> out;
    bool saturated = false;
    for (int iter = 0; iter < 1000 && !saturated; ++iter) {
      std::uint64_t next = ti.wcet_hi;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i || ts.tasks[j].priority < ti.priority) continue;
        const McTask& tj = ts.tasks[j];
        if (tj.high_criticality) {
          next = util::sat_add(
              next,
              util::sat_mul(util::ceil_div(r, tj.period), tj.wcet_hi));
        } else {
          next = util::sat_add(
              next,
              util::sat_mul(util::ceil_div(r_lo, tj.period), tj.wcet_lo));
        }
        if (next == util::kSatMax) {
          saturated = true;  // beyond any deadline: refuse, never wrap
          break;
        }
      }
      if (saturated) break;
      if (next == r) {
        if (r <= ti.deadline) out = r;
        break;
      }
      r = next;
      if (r > ti.deadline) break;
    }
    res.transition[i] = out;
    if (!out) res.schedulable = false;
  }
  return res;
}

namespace {

struct McJob {
  std::size_t task = 0;
  std::uint64_t release = 0;
  std::uint64_t abs_deadline = 0;
  std::uint64_t actual = 0;    ///< total execution demand of this job
  std::uint64_t executed = 0;  ///< progress so far
};

}  // namespace

McSimResult simulate_mc(const McTaskSet& ts, const McSimConfig& cfg,
                        const McExecFn& exec_time) {
  if (ts.tasks.empty())
    throw std::invalid_argument("simulate_mc: empty task set");
  util::Xoshiro256 rng{cfg.seed};

  McSimResult result;
  Mode mode = Mode::kLo;
  std::vector<std::uint64_t> next_release(ts.tasks.size(), 0);
  std::vector<McJob> ready;
  std::uint64_t now = 0;

  auto release_due = [&](std::uint64_t t) {
    for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
      const McTask& task = ts.tasks[i];
      while (next_release[i] <= t) {
        const bool admitted = mode == Mode::kLo || task.high_criticality;
        if (admitted) {
          const std::uint64_t actual =
              exec_time ? exec_time(task, mode, rng) : task.wcet_lo;
          ready.push_back(McJob{i, next_release[i],
                                next_release[i] + task.deadline,
                                std::max<std::uint64_t>(1, actual), 0});
        } else {
          ++result.lo_dropped;
        }
        if (task.high_criticality) ++result.hi_jobs;
        else ++result.lo_jobs;
        next_release[i] += task.period;
      }
    }
  };

  auto finish_job = [&](const McJob& job, std::uint64_t completion) {
    const McTask& task = ts.tasks[job.task];
    if (completion > job.abs_deadline) {
      if (task.high_criticality) ++result.hi_misses;
      else ++result.lo_misses;
    }
  };

  release_due(0);
  while (now < cfg.duration) {
    std::uint64_t next_rel = std::numeric_limits<std::uint64_t>::max();
    for (std::uint64_t r : next_release) next_rel = std::min(next_rel, r);

    if (ready.empty()) {
      if (mode == Mode::kHi && cfg.return_to_lo_on_idle) {
        mode = Mode::kLo;  // idle instant: safe to resume LO service
      }
      if (next_rel >= cfg.duration) break;
      now = next_rel;
      release_due(now);
      continue;
    }

    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i)
      if (ts.tasks[ready[i].task].priority >
          ts.tasks[ready[best].task].priority)
        best = i;
    McJob& job = ready[best];
    const McTask& task = ts.tasks[job.task];

    std::uint64_t run_until = std::min(cfg.duration, next_rel);
    run_until = std::min(run_until, now + (job.actual - job.executed));
    // In LO mode, a HI job hitting its C(LO) budget triggers the switch.
    if (mode == Mode::kLo && task.high_criticality &&
        job.executed < task.wcet_lo)
      run_until = std::min(run_until, now + (task.wcet_lo - job.executed));

    const std::uint64_t ran = run_until - now;
    job.executed += ran;
    now = run_until;

    if (job.executed >= job.actual) {
      finish_job(job, now);
      ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));
    } else if (mode == Mode::kLo && task.high_criticality &&
               job.executed >= task.wcet_lo) {
      // Budget overrun detected: switch to HI mode, shed LO jobs.
      mode = Mode::kHi;
      ++result.mode_switches;
      std::vector<McJob> survivors;
      for (auto& j : ready) {
        if (ts.tasks[j.task].high_criticality) survivors.push_back(j);
        else ++result.lo_dropped;
      }
      ready = std::move(survivors);
    }
    release_due(now);
  }
  // End-of-horizon flush: jobs still pending whose absolute deadline lies
  // *inside* the horizon have already missed — dropping them silently
  // would make the miss-rate evidence optimistic. Jobs whose deadline is
  // at or past the horizon are censored (unknown outcome), not misses.
  for (const McJob& job : ready) {
    if (job.abs_deadline >= cfg.duration) continue;
    if (ts.tasks[job.task].high_criticality) ++result.hi_misses;
    else ++result.lo_misses;
  }
  return result;
}

}  // namespace sx::rt
