// Mixed-criticality scheduling (Vestal model, AMC-rtb analysis).
//
// SAFEXPLAIN pipelines host functions of *varying criticality* on one
// platform. The Vestal model gives each task two budgets: C(LO) — the
// measured/pWCET budget used in normal operation — and C(HI) — the
// conservative bound certification demands for high-criticality tasks.
// The system runs in LO mode until some HI task overruns its C(LO); it
// then switches to HI mode, dropping LO tasks so every HI task still
// meets its deadline under C(HI).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace sx::rt {

enum class Mode : std::uint8_t { kLo, kHi };

struct McTask {
  std::string name;
  std::uint64_t period = 0;
  std::uint64_t deadline = 0;  ///< defaults to period
  int priority = 0;
  bool high_criticality = false;
  std::uint64_t wcet_lo = 0;  ///< budget enforced in LO mode
  std::uint64_t wcet_hi = 0;  ///< certified bound (HI tasks only; >= wcet_lo)
};

struct McTaskSet {
  std::vector<McTask> tasks;

  void add(McTask t);
  /// Deadline-monotonic priorities across all tasks.
  void assign_deadline_monotonic() noexcept;
  double utilization(Mode m) const noexcept;
};

struct McRtaResult {
  /// Response times per task in LO mode (all tasks, C(LO) budgets).
  std::vector<std::optional<std::uint64_t>> lo;
  /// Steady HI mode (HI tasks only, C(HI) budgets); nullopt for LO tasks.
  std::vector<std::optional<std::uint64_t>> hi;
  /// AMC-rtb mode-switch bound (HI tasks only).
  std::vector<std::optional<std::uint64_t>> transition;
  bool schedulable = false;
};

/// Adaptive Mixed Criticality, response-time bound flavour (Baruah/Burns/
/// Davis): LO-mode RTA for everyone, plus a transition bound for HI tasks
/// where LO interference is capped at the LO-mode response time.
McRtaResult amc_rtb(const McTaskSet& ts);

/// Samples the actual execution time of one job (called once per job).
using McExecFn = std::function<std::uint64_t(const McTask&, Mode current_mode,
                                             util::Xoshiro256& rng)>;

struct McSimResult {
  std::uint64_t hi_jobs = 0;
  std::uint64_t hi_misses = 0;   ///< HI-task deadline misses (must be 0)
  std::uint64_t lo_jobs = 0;
  std::uint64_t lo_misses = 0;
  std::uint64_t lo_dropped = 0;  ///< LO jobs discarded by mode switches
  std::uint64_t mode_switches = 0;
};

struct McSimConfig {
  std::uint64_t duration = 1'000'000;
  std::uint64_t seed = 7;
  /// Return to LO mode at the first instant the system idles in HI mode.
  bool return_to_lo_on_idle = true;
};

/// Simulates AMC: a HI job executing past its C(LO) without completing
/// triggers the switch; LO jobs are dropped in HI mode. `exec_time` may be
/// null (every job takes exactly its LO budget — no switches occur).
McSimResult simulate_mc(const McTaskSet& ts, const McSimConfig& cfg,
                        const McExecFn& exec_time = nullptr);

}  // namespace sx::rt
