// Periodic task model for the real-time substrate (pillar 4).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace sx::rt {

/// Implicit- or constrained-deadline periodic task. Time unit is abstract
/// (cycles / microseconds) — consistent with the platform simulator.
struct Task {
  std::string name;
  std::uint64_t period = 0;
  std::uint64_t wcet = 0;      ///< budgeted execution time (e.g. pWCET)
  std::uint64_t deadline = 0;  ///< relative; defaults to the period
  int priority = 0;            ///< larger = higher priority

  double utilization() const noexcept {
    return period ? static_cast<double>(wcet) / static_cast<double>(period)
                  : 0.0;
  }
};

struct TaskSet {
  std::vector<Task> tasks;

  void add(Task t) {
    if (t.period == 0 || t.wcet == 0)
      throw std::invalid_argument("TaskSet: zero period/wcet");
    if (t.deadline == 0) t.deadline = t.period;
    if (t.deadline > t.period)
      throw std::invalid_argument("TaskSet: deadline > period unsupported");
    tasks.push_back(std::move(t));
  }

  double utilization() const noexcept {
    double u = 0.0;
    for (const auto& t : tasks) u += t.utilization();
    return u;
  }

  /// Assigns deadline-monotonic priorities (shorter deadline = higher).
  void assign_deadline_monotonic() noexcept;
};

}  // namespace sx::rt
