// Criticality-driven admissibility (pillar 2 meets certification).
//
// SAFEXPLAIN's central idea: *which* combination of DL safety measures is
// required depends on the criticality of the function. This module encodes
// an ASIL/SIL-style admissibility matrix: given a pipeline configuration,
// it decides whether the configuration is acceptable at a criticality level
// and explains which obligations are missing.
#pragma once

#include <string>
#include <vector>

#include "trace/requirements.hpp"

namespace sx::core {

using trace::Criticality;

enum class PatternKind : std::uint8_t {
  kSingle,
  kMonitored,
  kDmr,
  kTmr,
  kDiverseTmr,
};

const char* to_string(PatternKind p) noexcept;

/// Declarative description of a deployed pipeline's safety measures.
struct PipelineSpec {
  PatternKind pattern = PatternKind::kSingle;
  bool has_supervisor = false;     ///< runtime trust scoring (pillar 1)
  bool has_odd_guard = false;      ///< input-domain guard (pillar 1)
  bool has_safety_bag = false;     ///< fail-operational fallback (pillar 2)
  bool has_timing_budget = false;  ///< pWCET-backed deadline (pillar 4)
  bool has_explanations = false;   ///< per-decision attribution evidence
  /// Pre-flight abstract-interpretation gate (pillar 3): the model must be
  /// statically proven bounded / NaN-free / arena-consistent before any
  /// inference is allowed to run.
  bool has_static_verification = false;
};

/// Obligations a criticality level imposes.
struct Obligations {
  PatternKind min_pattern = PatternKind::kSingle;
  bool supervisor = false;
  bool odd_guard = false;
  bool safety_bag = false;
  bool timing_budget = false;
  bool explanations = false;
  bool static_verification = false;
};

/// The framework's admissibility matrix.
Obligations obligations_for(Criticality c) noexcept;

/// Pattern ordering for "at least as strong as" comparisons.
int pattern_strength(PatternKind p) noexcept;

struct AdmissibilityVerdict {
  bool admissible = false;
  std::vector<std::string> missing;  ///< human-readable gaps
};

AdmissibilityVerdict check_admissible(const PipelineSpec& spec,
                                      Criticality c);

/// The cheapest spec satisfying a criticality level's obligations.
PipelineSpec recommended_spec(Criticality c) noexcept;

}  // namespace sx::core
