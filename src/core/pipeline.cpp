#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <sstream>
#include <stdexcept>

#include "dl/engine.hpp"
#include "platform/cpu_probe.hpp"
#include "supervise/metrics.hpp"

namespace sx::core {

const char* to_string(BackendKind b) noexcept {
  switch (b) {
    case BackendKind::kFloat32: return "float32";
    case BackendKind::kInt8: return "int8";
  }
  return "unknown";
}

namespace {

std::unique_ptr<safety::InferenceChannel> make_channel(
    PatternKind p, const dl::Model& model, const dl::Dataset& calibration,
    dl::KernelMode kernels) {
  switch (p) {
    case PatternKind::kSingle:
      return std::make_unique<safety::SingleChannel>(
          model, dl::StaticEngineConfig{.check_numeric_faults = false,
                                        .kernels = kernels});
    case PatternKind::kMonitored:
      return std::make_unique<safety::MonitoredChannel>(
          model, safety::MonitorConfig{},
          dl::StaticEngineConfig{.check_numeric_faults = true,
                                 .kernels = kernels});
    case PatternKind::kDmr:
      return std::make_unique<safety::DmrChannel>(model);
    case PatternKind::kTmr:
      return std::make_unique<safety::TmrChannel>(model);
    case PatternKind::kDiverseTmr:
      return std::make_unique<safety::DiverseTmrChannel>(model, calibration);
  }
  throw std::invalid_argument("make_channel: unknown pattern");
}

}  // namespace

CertifiablePipeline::CertifiablePipeline(const dl::Model& model,
                                         const dl::Dataset& calibration,
                                         PipelineConfig cfg)
    : cfg_(std::move(cfg)),
      spec_(cfg_.spec.value_or(recommended_spec(cfg_.criticality))) {
  const AdmissibilityVerdict verdict =
      check_admissible(spec_, cfg_.criticality);
  if (!verdict.admissible) {
    std::string what = "CertifiablePipeline: spec not admissible at " +
                       std::string(trace::to_string(cfg_.criticality)) + ":";
    for (const auto& m : verdict.missing) what += " [" + m + "]";
    throw std::invalid_argument(what);
  }
  if (calibration.samples.empty())
    throw std::invalid_argument("CertifiablePipeline: empty calibration set");
  if (cfg_.backend == BackendKind::kInt8 &&
      spec_.pattern != PatternKind::kSingle &&
      spec_.pattern != PatternKind::kMonitored)
    throw std::invalid_argument(
        "CertifiablePipeline: the int8 backend reaches the 'monitored' "
        "pattern rung; DMR and above need float replicas");

  // One kernel-mode knob across backends: under kInt8, cfg.kernel_mode
  // drives the quantized channel / batch pool / IR re-check too, unless
  // quant_engine.kernels was set explicitly (non-kAuto). Without this a
  // kWide request would silently deploy the int8 default and the
  // kernel-backend record would attribute evidence to the wrong mode.
  if (cfg_.backend == BackendKind::kInt8 &&
      cfg_.quant_engine.kernels == dl::KernelMode::kAuto &&
      cfg_.kernel_mode != dl::KernelMode::kAuto)
    cfg_.quant_engine.kernels = cfg_.kernel_mode;

  model_ = std::make_unique<dl::Model>(model);
  const std::size_t n_out = model_->output_shape().size();

  // kInt8 backend: fold BatchNorm and quantize against the calibration
  // set, here at deploy time (quantization is calibration, not service —
  // a model the static gate later refuses still never serves traffic).
  // Both the folded twin and the quantized model outlive the batch pool
  // and the channel, which hold references into them.
  if (cfg_.backend == BackendKind::kInt8) {
    folded_ = std::make_unique<dl::Model>(dl::fold_batchnorm(*model_));
    quant_ = std::make_unique<dl::QuantizedModel>(dl::QuantizedModel::quantize(
        *folded_, calibration, dl::QuantConfig{cfg_.quant_granularity}));
  }

  // Telemetry: registry, flight recorder and every metric name are fixed
  // here, at deploy time, before any component that binds counters exists
  // — so the exposition layout is identical for every batch_workers
  // setting and no registration ever happens on an inference path.
  if (cfg_.enable_telemetry) {
    obs_ = std::make_unique<obs::Registry>(cfg_.telemetry_config);
    fdr_ =
        std::make_unique<obs::FlightRecorder>(cfg_.flight_recorder_capacity);
    c_decisions_ = obs_->counter("sx_decisions_total");
    c_odd_rej_ = obs_->counter("sx_odd_rejections_total");
    c_sup_rej_ = obs_->counter("sx_supervisor_rejections_total");
    c_fallback_ = obs_->counter("sx_fallback_activations_total");
    c_wd_overruns_ = obs_->counter("sx_watchdog_overruns_total");
    c_fault_det_ = obs_->counter("sx_fault_detections_total");
    c_verify_refusals_ = obs_->counter("sx_verification_refusals_total");
    c_drift_alarms_ = obs_->counter("sx_drift_alarms_total");
    g_budget_ = obs_->gauge("sx_timing_budget");
    g_sup_threshold_ = obs_->gauge("sx_supervisor_threshold");
    g_drift_cusum_ = obs_->gauge("sx_drift_cusum");
    h_odd_ = obs_->histogram("sx_stage_odd_guard_cycles");
    h_infer_ = obs_->histogram("sx_stage_inference_cycles");
    h_sup_ = obs_->histogram("sx_stage_supervisor_cycles");
    h_decision_ = obs_->histogram("sx_decision_cycles");
    watchdog_.bind_telemetry(obs_.get(), c_wd_overruns_);
    obs_->set(g_budget_, static_cast<double>(cfg_.timing_budget));
    if (quant_) {
      c_quant_sats_ = obs_->counter("sx_quant_saturations_total");
      g_quant_bytes_ = obs_->gauge("sx_quant_weight_bytes");
      h_qinfer_ = obs_->histogram("sx_stage_quant_inference_cycles");
      obs_->set(g_quant_bytes_,
                static_cast<double>(quant_->weight_bytes()));
    }
  }

  // Deterministic batch executor: pool and per-worker arenas are planned
  // here, at deploy time — infer_batch() spawns nothing and allocates
  // nothing on the inference path itself. Under the int8 backend the pool
  // runs quantized per-worker engines sharing one QuantKernelPlan.
  if (cfg_.batch_workers > 0) {
    dl::BatchRunnerConfig bcfg;
    bcfg.workers = cfg_.batch_workers;
    bcfg.registry = obs_.get();
    if (quant_) {
      bcfg.arena_slack = cfg_.quant_engine.arena_slack;
      bcfg.kernels = cfg_.quant_engine.kernels;
      batch_ = std::make_unique<dl::BatchRunner>(*quant_, bcfg);
    } else {
      bcfg.kernels = cfg_.kernel_mode;
      batch_ = std::make_unique<dl::BatchRunner>(*model_, bcfg);
    }
  }

  // Fallback logits: explicit, or one-hot on the conservative class.
  fallback_ = cfg_.fallback_logits;
  if (fallback_.empty()) {
    if (cfg_.fallback_class >= n_out)
      throw std::invalid_argument("CertifiablePipeline: fallback class range");
    fallback_.assign(n_out, 0.0f);
    fallback_[cfg_.fallback_class] = 10.0f;
  } else if (fallback_.size() != n_out) {
    throw std::invalid_argument("CertifiablePipeline: fallback logit size");
  }

  if (spec_.has_timing_budget && cfg_.timing_budget == 0)
    throw std::invalid_argument(
        "CertifiablePipeline: spec demands a timing budget but none given");

  if (spec_.has_odd_guard)
    odd_ = std::make_unique<trace::OddGuard>(trace::OddGuard::fit(calibration));

  // Pre-flight static verification gate (pillar 3): prove from the
  // parameters and the qualified input domain alone that the model is
  // bounded, NaN-free and that the engine's arena plan matches the
  // shape-derived demand. A failing model is never fitted or executed —
  // the pipeline deploys in refuse-only mode and the verdict lands in the
  // audit chain below.
  if (spec_.has_static_verification) {
    const trace::OddSpec odd_spec =
        odd_ ? odd_->spec() : trace::OddSpec{};
    dl::StaticEngineConfig vcfg;
    vcfg.kernels = cfg_.kernel_mode;
    verify_ = std::make_unique<verify::VerificationEvidence>(
        verify::verify_model(*model_, odd_spec, vcfg));
    // Int8 deployment evidence: static saturation margins per layer (the
    // runtime clip counters are cross-checked against these — see
    // quant_saturation_cross_check) and an independent re-derivation of
    // the quantized engine's byte-arena demand. An inconsistent byte
    // arena refuses the deployment exactly like a float arena mismatch.
    if (quant_) {
      verify_->quant =
          verify::check_quant_saturation(*folded_, *quant_, odd_spec);
      verify_->quant_arena =
          verify::check_quant_arena(*quant_, cfg_.quant_engine);
      verify_->quant_checked = true;
      if (!verify_->quant_arena.consistent)
        verify_->verdict.arena_consistent = false;
      // Re-verify the int8 plan's static-analysis passes against a probe
      // plan built exactly like the deployed one: the checker re-derives
      // elimination/fusion/liveness from the quantized layers alone and
      // any mismatch (an unsound or corrupted transformation) refuses the
      // deployment before a channel exists.
      const dl::KernelMode qmode =
          dl::resolve_kernel_mode(cfg_.quant_engine.kernels);
      if (qmode != dl::KernelMode::kReference) {
        const dl::QuantKernelPlan qprobe{*quant_, qmode};
        verify_->quant_ir = verify::check_ir(*quant_, qprobe);
        if (!verify_->quant_ir.passed())
          verify_->verdict.ir_sound = false;
      }
    }
    verify_refused_ = !verify_->verdict.passed();
  }

  // Supervisor (fit + threshold on calibration data) plus a stream-level
  // CUSUM drift detector on the log-transformed score stream. Skipped in
  // refuse-only mode: fitting would execute the very model the static
  // gate just rejected.
  if (spec_.has_supervisor && !verify_refused_) {
    auto mahal = std::make_unique<supervise::MahalanobisSupervisor>();
    mahal_ = mahal.get();
    supervisor_ = std::move(mahal);
    supervisor_->fit(*model_, calibration);
    // Per-decision feature extraction goes through a tap-capable static
    // engine (planned kernels, buffers preallocated here) instead of
    // Model::forward_trace's per-layer heap tensors. Bitwise identical:
    // the planned engine reproduces the reference activations exactly.
    // Fault policing stays off to match forward_trace, which does not
    // screen activations either.
    dl::StaticEngineConfig sup_cfg;
    sup_cfg.check_numeric_faults = false;
    sup_cfg.kernels = cfg_.kernel_mode;
    // Pin the tapped feature layer: the fusion pass must not fold an
    // epilogue across it, or the pre-activation values the supervisor
    // reads would no longer exist in the arena.
    sup_cfg.pin_tap_layer = mahal_->feature_layer();
    auto sup_eng = std::make_unique<dl::StaticEngine>(*model_, sup_cfg);
    if (sup_eng->can_tap(mahal_->feature_layer())) {
      sup_engine_ = std::move(sup_eng);
      sup_feat_.assign(mahal_->feature_dim(), 0.0f);
      sup_logits_.assign(n_out, 0.0f);
    }
    const auto scores =
        supervise::collect_scores(*supervisor_, *model_, calibration);
    supervisor_->calibrate_threshold(scores, cfg_.supervisor_tpr);
    std::vector<double> log_scores(scores.size());
    for (std::size_t i = 0; i < scores.size(); ++i)
      log_scores[i] = std::log1p(std::max(0.0, scores[i]));
    drift_ = std::make_unique<supervise::CusumDetector>(
        supervise::CusumDetector::fit(log_scores, 0.5, 10.0));
    if (obs_) {
      supervisor_->bind_telemetry(obs_.get(), c_sup_rej_);
      obs_->set(g_sup_threshold_, supervisor_->threshold());
    }
  }

  // Inference channel, optionally wrapped in a safety bag.
  if (!verify_refused_) {
    std::unique_ptr<safety::InferenceChannel> inner;
    if (quant_) {
      // Int8 rung of the pattern ladder: bare engine at kSingle, envelope
      // monitor at kMonitored. Campaign faults land in the deployed int8
      // weight store (QuantChannel::inject_fault), not the float twin.
      const safety::MonitorConfig mon{};
      auto qc = std::make_unique<safety::QuantChannel>(
          *folded_, *quant_, cfg_.quant_engine,
          spec_.pattern == PatternKind::kMonitored ? &mon : nullptr);
      qchannel_ = qc.get();
      inner = std::move(qc);
    } else {
      inner =
          make_channel(spec_.pattern, *model_, calibration, cfg_.kernel_mode);
    }
    if (spec_.has_safety_bag) {
      channel_ = std::make_unique<safety::SafetyBagChannel>(
          std::move(inner), supervisor_ ? model_.get() : nullptr,
          supervisor_.get(), fallback_);
    } else {
      channel_ = std::move(inner);
    }
    if (obs_) channel_->bind_telemetry(*obs_);
  }

  if (spec_.has_explanations)
    explainer_ = std::make_unique<explain::GradientSaliency>();

  card_ = trace::make_model_card(
      "safexplain-pipeline", "1.0", *model_, calibration,
      "criticality=" + std::string(trace::to_string(cfg_.criticality)) +
          " pattern=" + to_string(spec_.pattern) +
          " backend=" + to_string(cfg_.backend),
      /*validation_accuracy=*/0.0,
      "inputs within fitted ODD; see safety case");

  out_buf_.assign(n_out, 0.0f);
  audit_.append(0, "pipeline", "deploy",
                "model=" + card_.model_hash +
                    " criticality=" +
                    std::string(trace::to_string(cfg_.criticality)) +
                    " pattern=" + to_string(spec_.pattern) +
                    " backend=" + to_string(cfg_.backend));
  if (verify_)
    audit_.append(0, "static-verify",
                  verify_refused_ ? "refuse-model" : "pass",
                  verify_->verdict_line());
  // Deploy-time plan evidence: the plan summary plus one audit entry per
  // static-analysis pass (dce, fusion, liveness), so the tamper-evident
  // chain records exactly which transformations shaped the deployed
  // program and what each one claims to have saved.
  if (channel_ != nullptr) {
    if (const dl::KernelPlan* fp = channel_->float_kernel_plan();
        fp != nullptr) {
      audit_.append(0, "kernel-plan", "deploy", fp->summary());
      for (const auto& pe : fp->pass_evidence())
        audit_.append(0, "ir-pass", pe.pass, pe.summary());
    }
  }
  if (qchannel_ != nullptr && qchannel_->kernel_plan() != nullptr) {
    audit_.append(0, "quant-plan", "deploy",
                  qchannel_->kernel_plan()->summary());
    for (const auto& pe : qchannel_->kernel_plan()->pass_evidence())
      audit_.append(0, "ir-pass", pe.pass, pe.summary());
  }

  // Resolved-backend record: the mode the deployed plan *actually* runs
  // (post SX_KERNEL_REFERENCE, post CPU probe), not just the requested one
  // — under the escape hatch the two differ, and evidence attributed to
  // the requested mode would misstate what executed. For kWide the probe /
  // SX_KERNEL_ISA decision rides along verbatim.
  {
    dl::KernelMode resolved = dl::resolve_kernel_mode(cfg_.kernel_mode);
    std::string wide_audit;
    const dl::KernelPlan* fp =
        channel_ != nullptr ? channel_->float_kernel_plan() : nullptr;
    const dl::QuantKernelPlan* qp =
        qchannel_ != nullptr ? qchannel_->kernel_plan() : nullptr;
    if (fp != nullptr) {
      resolved = fp->mode();
      if (resolved == dl::KernelMode::kWide)
        wide_audit = platform::wide_isa_audit(fp->cpu_probe(),
                                              fp->isa_selection());
    } else if (qp != nullptr) {
      resolved = qp->mode();
      if (resolved == dl::KernelMode::kWide)
        wide_audit = platform::wide_isa_audit(qp->cpu_probe(),
                                              qp->isa_selection());
    }
    kernel_backend_ =
        "requested=" + std::string(dl::kernel_mode_name(cfg_.kernel_mode)) +
        " resolved=" + std::string(dl::kernel_mode_name(resolved));
    if (!wide_audit.empty()) kernel_backend_ += "; " + wide_audit;
    audit_.append(0, "kernel-backend", "deploy", kernel_backend_);
  }
}

std::uint64_t CertifiablePipeline::quant_saturation_total() const noexcept {
  std::uint64_t n = 0;
  if (qchannel_ != nullptr) n += qchannel_->saturation_total();
  if (batch_ && batch_->quantized()) n += batch_->saturation_count();
  return n;
}

verify::SaturationCrossCheck
CertifiablePipeline::quant_saturation_cross_check() const {
  if (!quant_ || !verify_ || verify_->quant.empty())
    throw std::logic_error(
        "quant_saturation_cross_check: deploy with backend=kInt8 and a "
        "spec demanding static verification");
  std::vector<std::uint64_t> measured(quant_->layer_count(), 0);
  if (qchannel_ != nullptr) {
    const auto cs = qchannel_->engine().saturation_counts();
    for (std::size_t i = 0; i < cs.size(); ++i) measured[i] += cs[i];
  }
  if (batch_ && batch_->quantized()) batch_->saturation_counts_into(measured);
  return verify::cross_check_saturation(verify_->quant, measured);
}

double CertifiablePipeline::supervisor_score(const tensor::Tensor& input) {
  if (sup_engine_ != nullptr) {
    const Status st = sup_engine_->run_tapped(
        input.view(), sup_logits_, mahal_->feature_layer(), sup_feat_);
    if (ok(st)) return mahal_->score_from_features(sup_feat_);
  }
  return supervisor_->score(*model_, input);
}

void CertifiablePipeline::obs_finish_decision(const Decision& d,
                                              std::uint64_t t0) noexcept {
  if (!obs_) return;
  const std::uint64_t t1 = obs_->now();
  obs_->observe(h_decision_, t1 >= t0 ? t1 - t0 : 0);
  obs_span(obs::Stage::kDecision, d.status, d.degraded, t0, t1);
}

Decision CertifiablePipeline::infer(const tensor::Tensor& input,
                                    std::uint64_t logical_time,
                                    std::uint64_t elapsed) {
  Decision d;
  ++decisions_;
  const std::uint64_t t_dec = obs_ ? obs_->now() : 0;
  obs_count(c_decisions_);

  // 0. Pre-flight gate verdict: a statically refused model never runs.
  if (verify_refused_) {
    ++rejections_;
    obs_count(c_verify_refusals_);
    d.status = Status::kVerificationFailed;
    d.degraded = true;
    d.predicted_class = cfg_.fallback_class;
    d.audit_sequence =
        audit_.append(logical_time, "static-verify", "refuse",
                      "status=" + std::string(to_string(d.status)))
            .sequence;
    obs_span(obs::Stage::kStaticVerify, d.status, true, t_dec, t_dec);
    obs_finish_decision(d, t_dec);
    return d;
  }

  // 1. ODD guard.
  if (odd_) {
    const std::uint64_t t0 = obs_ ? obs_->now() : 0;
    const Status st = odd_->check(input.view());
    if (obs_) {
      const std::uint64_t t1 = obs_->now();
      obs_->observe(h_odd_, t1 >= t0 ? t1 - t0 : 0);
      obs_span(obs::Stage::kOddGuard, st, !ok(st), t0, t1);
    }
    if (!ok(st)) {
      ++rejections_;
      obs_count(c_odd_rej_);
      d.status = st;
      d.degraded = true;
      d.predicted_class = cfg_.fallback_class;
      d.audit_sequence =
          audit_.append(logical_time, "odd-guard", "reject",
                        "status=" + std::string(to_string(st)))
              .sequence;
      obs_finish_decision(d, t_dec);
      return d;
    }
  }

  // 2. Timing budget (watchdog over the measured execution time). The
  // overrun counter increments inside kick() via the watchdog's binding.
  if (spec_.has_timing_budget) {
    watchdog_.arm(logical_time, cfg_.timing_budget);
    const Status wd = watchdog_.kick(logical_time + elapsed);
    if (obs_) {
      const std::uint64_t t1 = obs_->now();
      obs_span(obs::Stage::kWatchdog, wd, !ok(wd), t1, t1);
    }
    if (!ok(wd)) {
      ++rejections_;
      d.status = Status::kDeadlineMiss;
      d.degraded = true;
      d.predicted_class = cfg_.fallback_class;
      d.audit_sequence =
          audit_.append(logical_time, "watchdog", "deadline-miss",
                        "elapsed=" + std::to_string(elapsed) + " budget=" +
                            std::to_string(cfg_.timing_budget))
              .sequence;
      obs_finish_decision(d, t_dec);
      return d;
    }
  }

  // 3. Channel inference (includes pattern redundancy and the safety bag).
  const std::uint64_t t_inf = obs_ ? obs_->now() : 0;
  const Status st = channel_->infer(input.view(), out_buf_);
  if (obs_) {
    const std::uint64_t t1 = obs_->now();
    obs_->observe(h_infer_, t1 >= t_inf ? t1 - t_inf : 0);
    if (qchannel_ != nullptr)
      obs_->observe(h_qinfer_, t1 >= t_inf ? t1 - t_inf : 0);
    obs_span(obs::Stage::kInference, st, channel_->last_degraded(), t_inf,
             t1);
  }
  d.status = st;
  if (!ok(st)) {
    ++rejections_;
    obs_count(c_fault_det_);
    d.degraded = true;
    d.predicted_class = cfg_.fallback_class;
    d.audit_sequence =
        audit_.append(logical_time, "channel", "fail-stop",
                      "status=" + std::string(to_string(st)))
            .sequence;
    obs_finish_decision(d, t_dec);
    return d;
  }
  d.degraded = channel_->last_degraded();
  if (d.degraded) {
    ++fallbacks_;
    obs_count(c_fallback_);
    if (obs_) {
      const std::uint64_t t1 = obs_->now();
      obs_span(obs::Stage::kFallback, Status::kOk, true, t1, t1);
    }
  }

  // 4. Decision + confidence.
  const auto probs = dl::softmax_copy(out_buf_);
  d.predicted_class = 0;
  for (std::size_t i = 1; i < probs.size(); ++i)
    if (probs[i] > probs[d.predicted_class]) d.predicted_class = i;
  d.confidence = probs[d.predicted_class];
  if (supervisor_) {
    const std::uint64_t t_sup = obs_ ? obs_->now() : 0;
    d.supervisor_score = supervisor_score(input);
    if (drift_) {
      const bool was_alarmed = drift_->alarmed();
      drift_->update(std::log1p(std::max(0.0, d.supervisor_score)));
      if (obs_) obs_->set(g_drift_cusum_, drift_->statistic());
      if (!was_alarmed && drift_->alarmed()) {
        obs_count(c_drift_alarms_);
        audit_.append(logical_time, "drift-detector", "alarm",
                      "cusum=" + std::to_string(drift_->statistic()));
      }
    }
    if (obs_) {
      const std::uint64_t t1 = obs_->now();
      obs_->observe(h_sup_, t1 >= t_sup ? t1 - t_sup : 0);
      obs_span(obs::Stage::kSupervisor, Status::kOk, false, t_sup, t1);
    }
  }

  std::ostringstream payload;
  payload << "class=" << d.predicted_class << " conf=" << d.confidence
          << " degraded=" << (d.degraded ? 1 : 0)
          << " sup=" << d.supervisor_score;
  d.audit_sequence =
      audit_.append(logical_time, "channel", "decision", payload.str())
          .sequence;
  obs_finish_decision(d, t_dec);
  return d;
}

std::vector<Decision> CertifiablePipeline::infer_batch(
    const std::vector<tensor::Tensor>& inputs, std::uint64_t logical_time) {
  if (!batch_)
    throw std::logic_error(
        "CertifiablePipeline::infer_batch: deploy with cfg.batch_workers > "
        "0 to enable the batch path");
  std::vector<Decision> decisions(inputs.size());
  if (inputs.empty()) return decisions;

  if (verify_refused_) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      Decision& d = decisions[i];
      ++decisions_;
      ++rejections_;
      obs_count(c_decisions_);
      obs_count(c_verify_refusals_);
      d.status = Status::kVerificationFailed;
      d.degraded = true;
      d.predicted_class = cfg_.fallback_class;
      d.audit_sequence =
          audit_.append(logical_time, "static-verify", "refuse",
                        "batch_index=" + std::to_string(i) + " status=" +
                            std::string(to_string(d.status)))
              .sequence;
      if (obs_) {
        const std::uint64_t t = obs_->now();
        obs_span(obs::Stage::kStaticVerify, d.status, true, t, t);
        obs_finish_decision(d, t);
      }
    }
    return decisions;
  }

  const std::size_t in_size = model_->input_shape().size();
  const std::size_t n_out = model_->output_shape().size();

  // Stage the batch contiguously and take ODD verdicts up front, so the
  // evidence trail preserves the single-item ordering (guard first). Guard
  // checks run serially in batch-index order, so their histogram
  // observations are schedule-free; span timestamps are staged per item
  // and recorded in the decision loop under the decision's ordinal.
  std::vector<float> staged(inputs.size() * in_size);
  std::vector<float> logits(inputs.size() * n_out);
  std::vector<Status> engine_status(inputs.size(), Status::kOk);
  std::vector<Status> guard_status(inputs.size(), Status::kOk);
  std::vector<std::uint64_t> guard_t0(inputs.size(), 0);
  std::vector<std::uint64_t> guard_t1(inputs.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].shape() != model_->input_shape())
      throw std::invalid_argument(
          "CertifiablePipeline::infer_batch: input shape mismatch");
    if (odd_) {
      guard_t0[i] = obs_ ? obs_->now() : 0;
      guard_status[i] = odd_->check(inputs[i].view());
      if (obs_) {
        guard_t1[i] = obs_->now();
        obs_->observe(h_odd_,
                      guard_t1[i] >= guard_t0[i] ? guard_t1[i] - guard_t0[i]
                                                 : 0);
      }
    }
    const auto src = inputs[i].data();
    std::copy(src.begin(), src.end(), staged.begin() + i * in_size);
  }

  // Parallel dispatch over the static pool, chunked to the pre-planned
  // batch capacity. Every item (even a guard-rejected one) goes through
  // the engine so per-worker counters depend only on the batch size.
  // Per-item inference time is measured inside the workers into the
  // batch-indexed `item_elapsed` array whenever the watchdog or telemetry
  // consumes it — both consume it serially, in batch-index order.
  const bool want_elapsed = obs_ != nullptr || spec_.has_timing_budget;
  std::vector<std::uint64_t> item_elapsed(
      want_elapsed ? inputs.size() : std::size_t{0}, 0);
  for (std::size_t base = 0; base < inputs.size();
       base += batch_->max_batch()) {
    const std::size_t n =
        std::min(batch_->max_batch(), inputs.size() - base);
    const Status st = batch_->run(
        std::span<const float>(staged).subspan(base * in_size, n * in_size),
        std::span<float>(logits).subspan(base * n_out, n * n_out),
        std::span<Status>(engine_status).subspan(base, n),
        want_elapsed ? std::span<std::uint64_t>(item_elapsed).subspan(base, n)
                     : std::span<std::uint64_t>{});
    if (!ok(st))
      throw std::logic_error("CertifiablePipeline::infer_batch: dispatch " +
                             std::string(to_string(st)));
  }

  // Quantized pool: push the clips this dispatch added, so the telemetry
  // counter mirrors the pool's deterministic total.
  if (obs_ && batch_->quantized()) {
    const std::uint64_t total = batch_->saturation_count();
    if (total > reported_batch_sats_) {
      obs_->add(c_quant_sats_, total - reported_batch_sats_);
      reported_batch_sats_ = total;
    }
  }

  // Per-item decision, supervision, drift tracking and audit, serially in
  // batch-index order — the audit chain is identical for every worker
  // count because nothing here depends on the parallel schedule.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    Decision& d = decisions[i];
    ++decisions_;
    const std::uint64_t t_dec = obs_ ? obs_->now() : 0;
    obs_count(c_decisions_);
    if (odd_) {
      obs_span(obs::Stage::kOddGuard, guard_status[i], !ok(guard_status[i]),
               guard_t0[i], guard_t1[i]);
    }

    if (odd_ && !ok(guard_status[i])) {
      ++rejections_;
      obs_count(c_odd_rej_);
      d.status = guard_status[i];
      d.degraded = true;
      d.predicted_class = cfg_.fallback_class;
      d.audit_sequence =
          audit_.append(logical_time, "odd-guard", "reject",
                        "batch_index=" + std::to_string(i) + " status=" +
                            std::string(to_string(d.status)))
              .sequence;
      obs_finish_decision(d, t_dec);
      continue;
    }

    // Timing budget: watchdog parity with the single-item path. The batch
    // path feeds the watchdog the *measured* per-item inference time (in
    // telemetry clock units), checked serially in batch-index order so the
    // overrun counter and audit trail stay schedule-free. The overrun
    // counter increments inside kick() via the watchdog's binding.
    if (spec_.has_timing_budget) {
      watchdog_.arm(logical_time, cfg_.timing_budget);
      const Status wd = watchdog_.kick(logical_time + item_elapsed[i]);
      if (obs_) {
        const std::uint64_t t1 = obs_->now();
        obs_span(obs::Stage::kWatchdog, wd, !ok(wd), t1, t1);
      }
      if (!ok(wd)) {
        ++rejections_;
        d.status = Status::kDeadlineMiss;
        d.degraded = true;
        d.predicted_class = cfg_.fallback_class;
        d.audit_sequence =
            audit_.append(logical_time, "watchdog", "deadline-miss",
                          "batch_index=" + std::to_string(i) + " elapsed=" +
                              std::to_string(item_elapsed[i]) + " budget=" +
                              std::to_string(cfg_.timing_budget))
                .sequence;
        obs_finish_decision(d, t_dec);
        continue;
      }
    }

    if (obs_) {
      const std::uint64_t t1 = obs_->now();
      obs_->observe(h_infer_, item_elapsed[i]);
      if (batch_->quantized()) obs_->observe(h_qinfer_, item_elapsed[i]);
      obs_span(obs::Stage::kInference, engine_status[i],
               !ok(engine_status[i]), t1, t1 + item_elapsed[i]);
    }

    if (!ok(engine_status[i])) {
      ++rejections_;
      obs_count(c_fault_det_);
      d.status = engine_status[i];
      d.degraded = true;
      d.predicted_class = cfg_.fallback_class;
      d.audit_sequence =
          audit_.append(logical_time, "batch-engine", "fail-stop",
                        "batch_index=" + std::to_string(i) + " status=" +
                            std::string(to_string(d.status)))
              .sequence;
      obs_finish_decision(d, t_dec);
      continue;
    }

    const std::span<const float> item_logits(logits.data() + i * n_out,
                                             n_out);
    const auto probs = dl::softmax_copy(item_logits);
    d.status = Status::kOk;
    d.predicted_class = 0;
    for (std::size_t k = 1; k < probs.size(); ++k)
      if (probs[k] > probs[d.predicted_class]) d.predicted_class = k;
    d.confidence = probs[d.predicted_class];
    if (supervisor_) {
      const std::uint64_t t_sup = obs_ ? obs_->now() : 0;
      d.supervisor_score = supervisor_score(inputs[i]);
      if (drift_) {
        const bool was_alarmed = drift_->alarmed();
        drift_->update(std::log1p(std::max(0.0, d.supervisor_score)));
        if (obs_) obs_->set(g_drift_cusum_, drift_->statistic());
        if (!was_alarmed && drift_->alarmed()) {
          obs_count(c_drift_alarms_);
          audit_.append(logical_time, "drift-detector", "alarm",
                        "cusum=" + std::to_string(drift_->statistic()));
        }
      }
      if (obs_) {
        const std::uint64_t t1 = obs_->now();
        obs_->observe(h_sup_, t1 >= t_sup ? t1 - t_sup : 0);
        obs_span(obs::Stage::kSupervisor, Status::kOk, false, t_sup, t1);
      }
    }

    std::ostringstream payload;
    payload << "batch_index=" << i << " class=" << d.predicted_class
            << " conf=" << d.confidence << " sup=" << d.supervisor_score;
    d.audit_sequence =
        audit_.append(logical_time, "batch-engine", "decision",
                      payload.str())
            .sequence;
    obs_finish_decision(d, t_dec);
  }
  return decisions;
}

tensor::Tensor CertifiablePipeline::explain(const tensor::Tensor& input,
                                            std::size_t target_class) {
  if (!explainer_)
    throw std::logic_error(
        "CertifiablePipeline::explain: spec has no explanation support");
  if (verify_refused_)
    throw std::logic_error(
        "CertifiablePipeline::explain: model refused by static verification");
  return explainer_->attribute(*model_, input, target_class);
}

Status CertifiablePipeline::verify_integrity() const {
  return trace::verify_model_integrity(card_, *model_);
}

trace::SafetyCase CertifiablePipeline::build_safety_case() const {
  trace::SafetyCase sc;
  const auto root = sc.set_root_goal(
      "G0", "The DL-based function is acceptably safe at criticality " +
                std::string(trace::to_string(cfg_.criticality)));
  const auto strat = sc.add_strategy(
      root, "S0", "Argue over the four SAFEXPLAIN pillars");

  // Pillar 1: explainability & traceability.
  const auto g1 = sc.add_goal(strat, "G1",
                              "Predictions are trustworthy and traceable");
  sc.add_solution(g1, "Sn1.1", "model provenance hash " + card_.model_hash);
  sc.add_solution(g1, "Sn1.2",
                  "hash-chained audit log, head=" + util::to_hex(audit_.head()));
  if (supervisor_)
    sc.add_solution(g1, "Sn1.3",
                    "runtime trust supervisor '" +
                        std::string(supervisor_->name()) + "', threshold=" +
                        std::to_string(supervisor_->threshold()));
  if (odd_) sc.add_solution(g1, "Sn1.4", "fitted ODD guard active");
  if (explainer_)
    sc.add_solution(g1, "Sn1.5",
                    "per-decision attribution via " +
                        std::string(explainer_->name()));

  // Pillar 2: safety patterns.
  const auto g2 = sc.add_goal(
      strat, "G2", "Residual random-fault risk is controlled");
  sc.add_solution(g2, "Sn2.1",
                  std::string("safety pattern '") + to_string(spec_.pattern) +
                      "' deployed");
  if (spec_.has_safety_bag)
    sc.add_solution(g2, "Sn2.2", "fail-operational fallback configured");

  // Pillar 3: FUSA-compliant library.
  const auto g3 = sc.add_goal(
      strat, "G3", "Inference library satisfies FUSA coding constraints");
  sc.add_solution(g3, "Sn3.1",
                  "static-arena engine: no allocation, no exceptions on the "
                  "operational path");
  if (verify_)
    sc.add_solution(g3, "Sn3.2",
                    "pre-flight abstract interpretation: " +
                        verify_->verdict_line());

  // Pillar 4: real time.
  const auto g4 =
      sc.add_goal(strat, "G4", "Real-time constraints are satisfied");
  if (spec_.has_timing_budget) {
    sc.add_solution(g4, "Sn4.1",
                    "watchdog enforces budget of " +
                        std::to_string(cfg_.timing_budget) + " time units");
  } else {
    sc.add_solution(g4, "Sn4.1",
                    "criticality level imposes no timing obligation");
  }
  return sc;
}

}  // namespace sx::core
