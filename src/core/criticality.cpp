#include "core/criticality.hpp"

namespace sx::core {

const char* to_string(PatternKind p) noexcept {
  switch (p) {
    case PatternKind::kSingle: return "single";
    case PatternKind::kMonitored: return "monitored";
    case PatternKind::kDmr: return "dmr";
    case PatternKind::kTmr: return "tmr";
    case PatternKind::kDiverseTmr: return "diverse-tmr";
  }
  return "?";
}

int pattern_strength(PatternKind p) noexcept {
  switch (p) {
    case PatternKind::kSingle: return 0;
    case PatternKind::kMonitored: return 1;
    case PatternKind::kDmr: return 2;
    case PatternKind::kTmr: return 3;
    case PatternKind::kDiverseTmr: return 4;
  }
  return 0;
}

Obligations obligations_for(Criticality c) noexcept {
  Obligations o;
  switch (c) {
    case Criticality::kQM:
      break;  // no safety claim, anything goes
    case Criticality::kSil1:
      o.min_pattern = PatternKind::kMonitored;
      o.explanations = true;
      break;
    case Criticality::kSil2:
      o.min_pattern = PatternKind::kMonitored;
      o.supervisor = true;
      o.odd_guard = true;
      o.explanations = true;
      break;
    case Criticality::kSil3:
      o.min_pattern = PatternKind::kDmr;
      o.supervisor = true;
      o.odd_guard = true;
      o.safety_bag = true;
      o.timing_budget = true;
      o.explanations = true;
      o.static_verification = true;
      break;
    case Criticality::kSil4:
      o.min_pattern = PatternKind::kDiverseTmr;
      o.supervisor = true;
      o.odd_guard = true;
      o.safety_bag = true;
      o.timing_budget = true;
      o.explanations = true;
      o.static_verification = true;
      break;
  }
  return o;
}

AdmissibilityVerdict check_admissible(const PipelineSpec& spec,
                                      Criticality c) {
  const Obligations o = obligations_for(c);
  AdmissibilityVerdict v;
  if (pattern_strength(spec.pattern) < pattern_strength(o.min_pattern))
    v.missing.push_back(std::string("pattern must be at least ") +
                        to_string(o.min_pattern));
  if (o.supervisor && !spec.has_supervisor)
    v.missing.push_back("runtime trust supervisor required");
  if (o.odd_guard && !spec.has_odd_guard)
    v.missing.push_back("ODD input guard required");
  if (o.safety_bag && !spec.has_safety_bag)
    v.missing.push_back("fail-operational fallback (safety bag) required");
  if (o.timing_budget && !spec.has_timing_budget)
    v.missing.push_back("pWCET-backed timing budget required");
  if (o.explanations && !spec.has_explanations)
    v.missing.push_back("per-decision explanation evidence required");
  if (o.static_verification && !spec.has_static_verification)
    v.missing.push_back("static pre-flight verification required");
  v.admissible = v.missing.empty();
  return v;
}

PipelineSpec recommended_spec(Criticality c) noexcept {
  const Obligations o = obligations_for(c);
  PipelineSpec s;
  s.pattern = o.min_pattern;
  s.has_supervisor = o.supervisor;
  s.has_odd_guard = o.odd_guard;
  s.has_safety_bag = o.safety_bag;
  s.has_timing_budget = o.timing_budget;
  s.has_explanations = o.explanations;
  s.has_static_verification = o.static_verification;
  return s;
}

}  // namespace sx::core
