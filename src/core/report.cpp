#include "core/report.hpp"

#include <iomanip>
#include <span>
#include <sstream>

#include "dl/batch.hpp"
#include "util/hash.hpp"

namespace sx::core {

CertificationReport make_certification_report(
    const CertifiablePipeline& pipeline,
    const trace::RequirementRegistry* requirements,
    const std::vector<EvidenceItem>& evidence) {
  std::ostringstream os;
  os << "================================================================\n"
     << "SAFEXPLAIN CERTIFICATION REPORT\n"
     << "================================================================\n\n";

  os << "1. DEPLOYED COMPONENT\n"
     << pipeline.model_card().to_text() << "\n";

  os << "2. CLAIMED CRITICALITY AND CONFIGURATION\n"
     << "  criticality: " << trace::to_string(pipeline.criticality()) << "\n"
     << "  pattern: " << to_string(pipeline.spec().pattern) << "\n"
     << "  supervisor: " << (pipeline.spec().has_supervisor ? "yes" : "no")
     << "\n"
     << "  ODD guard: " << (pipeline.spec().has_odd_guard ? "yes" : "no")
     << "\n"
     << "  safety bag: " << (pipeline.spec().has_safety_bag ? "yes" : "no")
     << "\n"
     << "  timing budget: "
     << (pipeline.spec().has_timing_budget ? "yes" : "no") << "\n"
     << "  explanations: "
     << (pipeline.spec().has_explanations ? "yes" : "no") << "\n";
  const AdmissibilityVerdict verdict =
      check_admissible(pipeline.spec(), pipeline.criticality());
  os << "  admissibility: " << (verdict.admissible ? "ADMISSIBLE" : "NOT "
                                                                     "ADMISSIBLE")
     << "\n\n";

  os << "3. OPERATIONAL EVIDENCE\n"
     << "  decisions: " << pipeline.decisions() << "\n"
     << "  rejections (fail-stop/guard): " << pipeline.rejections() << "\n"
     << "  fallback activations: " << pipeline.fallbacks() << "\n"
     << "  audit chain: "
     << (ok(pipeline.audit().verify()) ? "VERIFIES" : "BROKEN") << " ("
     << pipeline.audit().size() << " entries, head "
     << util::to_hex(pipeline.audit().head()).substr(0, 16) << "...)\n"
     << "  model integrity: "
     << (ok(pipeline.verify_integrity()) ? "PASS" : "FAIL") << "\n";
  if (const auto* sv = pipeline.static_verification()) {
    os << "  static verification: "
       << (sv->verdict.passed() ? "PASS" : "FAIL (model refused pre-flight)")
       << "\n";
  }
  os << "\n";

  const trace::SafetyCase sc = pipeline.build_safety_case();
  os << "4. SAFETY CASE (GSN)\n" << sc.to_text();
  const auto gaps = sc.undischarged_goals();
  if (gaps.empty()) {
    os << "  status: COMPLETE (every leaf goal has evidence)\n\n";
  } else {
    os << "  status: INCOMPLETE, undischarged goals:";
    for (const auto& g : gaps) os << " " << g;
    os << "\n\n";
  }

  bool requirements_ok = true;
  if (requirements != nullptr) {
    os << "5. REQUIREMENT TRACEABILITY\n" << requirements->matrix();
    const double cov = requirements->coverage("verifies");
    requirements_ok = cov == 1.0;
    os << "  verification coverage: " << cov * 100.0 << "%\n\n";
  }

  if (!evidence.empty()) {
    os << "6. ATTACHED ANALYSES\n";
    for (const auto& e : evidence) {
      os << "--- " << e.title << " ---\n" << e.body;
      if (e.body.empty() || e.body.back() != '\n') os << '\n';
    }
    os << "\n";
  }

  if (pipeline.telemetry() != nullptr) {
    os << "7. OBSERVABILITY\n"
       << make_observability_evidence(pipeline).body << "\n";
  }

  CertificationReport report;
  report.complete =
      verdict.admissible && gaps.empty() && requirements_ok &&
      ok(pipeline.audit().verify()) && ok(pipeline.verify_integrity());
  os << "OVERALL: " << (report.complete ? "EVIDENCE COMPLETE"
                                        : "EVIDENCE GAPS REMAIN")
     << "\n";
  report.text = os.str();
  return report;
}

EvidenceItem make_batch_runner_evidence(const dl::BatchRunner& runner) {
  std::ostringstream os;
  os << "workers: " << runner.workers()
     << " (static pool, spawned at configuration time)\n"
     << "partition: static round-robin (item i -> worker i % "
     << runner.workers() << ") => outputs, counters and fault order are\n"
     << "  schedule-independent; per-item memory comes from per-worker "
        "arenas planned up front\n"
     << "batches dispatched: " << runner.batch_count() << "\n"
     << "items: " << runner.item_count() << " (" << runner.run_count()
     << " ok, " << runner.numeric_fault_count() << " numeric faults)\n"
     << "wall time: " << std::fixed << std::setprecision(1)
     << runner.total_wall_micros() << " us, worker busy time: "
     << runner.total_busy_micros() << " us\n";
  for (std::size_t w = 0; w < runner.workers(); ++w) {
    const dl::BatchWorkerStats s = runner.worker_stats(w);
    os << "  worker " << w << ": batches=" << s.batches
       << " items=" << s.items << " ok=" << s.runs << " faults=" << s.faults
       << " arena=" << s.arena_high_water_mark << "/" << s.arena_capacity
       << " floats, busy=" << std::setprecision(1) << s.busy_micros
       << " us\n";
  }
  if (const dl::KernelPlan* plan = runner.kernel_plan(); plan != nullptr) {
    os << "kernel plan (shared read-only across workers): "
       << plan->summary() << "\n";
  } else if (const dl::QuantKernelPlan* qp = runner.quant_kernel_plan();
             qp != nullptr) {
    os << "int8 kernel plan (shared read-only across workers): "
       << qp->summary() << "\n"
       << "requantization clips: " << runner.saturation_count()
       << " (sum over static shard order => schedule-independent)\n";
  } else if (runner.quantized()) {
    os << "int8 kernel plan: reference loops (SX_KERNEL_REFERENCE or "
          "explicit kReference); requantization clips: "
       << runner.saturation_count() << "\n";
  } else {
    os << "kernel plan: reference loops (SX_KERNEL_REFERENCE or explicit "
          "kReference)\n";
  }
  return EvidenceItem{"Deterministic batch execution", os.str()};
}

EvidenceItem make_quant_backend_evidence(const CertifiablePipeline& pipeline) {
  if (pipeline.backend() != BackendKind::kInt8)
    throw std::logic_error(
        "make_quant_backend_evidence: pipeline deployed with float backend");
  const dl::QuantizedModel* qm = pipeline.quantized_model();
  const safety::QuantChannel* qc = pipeline.quant_channel();
  std::ostringstream os;
  os << "backend: int8 (BatchNorm folded, quantized against the "
        "calibration set at deploy time)\n"
     << "granularity: "
     << (qm->granularity() == dl::WeightGranularity::kPerChannel
             ? "per-channel weight scales"
             : "per-tensor weight scales")
     << ", weight footprint: " << qm->weight_bytes() << " bytes\n";
  if (qc != nullptr) {
    if (const dl::QuantKernelPlan* plan = qc->kernel_plan();
        plan != nullptr) {
      os << "kernel plan: " << plan->summary() << "\n"
         << "  panels, im2col tables and scratch are planned at deploy "
            "time; the int8 hot\n"
         << "  path is noexcept, allocation-free, and accumulates each "
            "output in the\n"
         << "  reference order => planned and reference runs are bitwise "
            "identical\n";
    } else {
      os << "kernel plan: reference loops (SX_KERNEL_REFERENCE or explicit "
            "kReference)\n";
    }
    os << "channel arena: " << qc->engine().arena_high_water_mark() << "/"
       << qc->engine().arena_capacity() << " bytes, pattern: "
       << qc->pattern_name() << "\n";
  }
  os << "requantization clips observed: " << pipeline.quant_saturation_total()
     << " (channel + batch pool, deterministic in the served inputs)\n";
  if (const auto* sv = pipeline.static_verification();
      sv != nullptr && sv->quant_checked) {
    os << "byte-arena re-check: required=" << sv->quant_arena.required_bytes
       << " planned=" << sv->quant_arena.planned_bytes << " => "
       << (sv->quant_arena.consistent ? "CONSISTENT" : "MISMATCH") << "\n";
    if (!sv->quant.empty()) {
      const verify::SaturationCrossCheck xc =
          pipeline.quant_saturation_cross_check();
      os << "saturation cross-check: " << xc.layers_checked << " layers ("
         << xc.statically_safe << " statically safe, " << xc.flagged
         << " flagged), measured clips: " << xc.measured_total
         << ", violations: " << xc.violations << " => "
         << (xc.consistent ? "CONSISTENT" : "VIOLATED") << "\n"
         << "  (a statically-safe layer must never clip at runtime; a "
            "flagged layer that\n"
         << "  never clipped is expected conservatism)\n";
    }
  }
  return EvidenceItem{"Int8 backend (quantized kernel plans)", os.str()};
}

EvidenceItem make_kernel_plan_evidence(const dl::KernelPlan& plan) {
  std::ostringstream os;
  os << plan.summary() << "\n"
     << "layout decisions (weight panels, im2col index tables, scratch "
        "sizing) are made\n"
     << "  once at deploy time; the inference path performs zero heap "
        "allocations and\n"
     << "  executes each output's accumulation in the reference kernel "
        "order, so planned\n"
     << "  and reference engines are bitwise identical "
        "(tensor_kernels_test, E14)\n"
     << "escape hatch: SX_KERNEL_REFERENCE forces the reference loops for "
        "differential audit\n";
  return EvidenceItem{"Deploy-time kernel plan", os.str()};
}

EvidenceItem make_static_verification_evidence(
    const verify::VerificationEvidence& evidence) {
  return EvidenceItem{"Static verification (abstract interpretation)",
                      evidence.to_text()};
}

namespace {

void ir_plan_lines(std::ostringstream& os, const char* plan_name,
                   const sx::ir::ArenaLayout& layout,
                   std::span<const sx::ir::PassEvidence> passes,
                   const char* unit) {
  const double pct =
      layout.naive_elems > 0
          ? 100.0 * static_cast<double>(layout.naive_elems -
                                        layout.total_elems) /
                static_cast<double>(layout.naive_elems)
          : 0.0;
  os << plan_name << " plan arena: " << layout.total_elems << " " << unit
     << " planned vs " << layout.naive_elems
     << " naive ping-pong => " << std::fixed << std::setprecision(1) << pct
     << "% reuse from liveness coloring\n";
  for (const auto& pe : passes)
    os << "  " << plan_name << " " << pe.summary() << "\n";
}

void ir_marker_lines(std::ostringstream& os, const char* plan_name,
                     const sx::ir::ArenaLayout& layout,
                     std::span<const sx::ir::PassEvidence> passes) {
  for (const auto& pe : passes)
    os << "plan=" << plan_name << " " << pe.summary() << "\n";
  os << "plan=" << plan_name << " arena_total=" << layout.total_elems
     << " arena_naive=" << layout.naive_elems << "\n";
}

}  // namespace

EvidenceItem make_ir_evidence(const CertifiablePipeline& pipeline) {
  std::ostringstream os;
  const dl::KernelPlan* fp =
      pipeline.channel() != nullptr
          ? pipeline.channel()->float_kernel_plan()
          : nullptr;
  const dl::QuantKernelPlan* qp =
      pipeline.quant_channel() != nullptr
          ? pipeline.quant_channel()->kernel_plan()
          : nullptr;
  if (fp == nullptr && qp == nullptr) {
    os << "no IR-backed kernel plan deployed (reference loops via "
          "SX_KERNEL_REFERENCE / explicit kReference, refuse-only mode, "
          "or a redundant pattern that owns its engines internally)\n";
    return EvidenceItem{"IR pass pipeline (static-analysis evidence)",
                        os.str()};
  }
  os << "every transformation below ran at deploy time on the lowered "
        "program IR; each\n"
     << "  pass records machine-checkable facts and the verify gate "
        "re-derives all of\n"
     << "  them independently from the model layers before the plan may "
        "serve traffic\n";
  if (fp != nullptr)
    ir_plan_lines(os, "float", fp->layout(), fp->pass_evidence(), "floats");
  if (qp != nullptr)
    ir_plan_lines(os, "int8", qp->layout(), qp->pass_evidence(), "bytes");
  if (const auto* sv = pipeline.static_verification(); sv != nullptr) {
    if (sv->ir.checked)
      os << "float re-verification: "
         << (sv->ir.passed() ? "SOUND" : "UNSOUND")
         << " (rederived=" << sv->ir.rederived_elems
         << " planned=" << sv->ir.planned_elems << " elems)\n";
    if (sv->quant_ir.checked)
      os << "int8 re-verification: "
         << (sv->quant_ir.passed() ? "SOUND" : "UNSOUND")
         << " (rederived=" << sv->quant_ir.rederived_elems
         << " planned=" << sv->quant_ir.planned_elems << " bytes)\n";
  }
  // The marker pair lets tools/sxmetrics --ir recover the per-pass facts
  // from a serialized report without parsing the surrounding prose.
  os << "# BEGIN SX_IR_PASSES\n";
  if (fp != nullptr)
    ir_marker_lines(os, "float", fp->layout(), fp->pass_evidence());
  if (qp != nullptr)
    ir_marker_lines(os, "int8", qp->layout(), qp->pass_evidence());
  os << "# END SX_IR_PASSES\n";
  return EvidenceItem{"IR pass pipeline (static-analysis evidence)",
                      os.str()};
}

EvidenceItem make_kernel_backend_evidence(const CertifiablePipeline& pipeline) {
  std::ostringstream os;
  os << "kernel backend selection is fixed once at deploy time (requested "
        "mode ->\n"
     << "  resolve_kernel_mode -> CPU probe + SX_KERNEL_ISA override); the "
        "serving\n"
     << "  hot path dispatches through pointers bound at plan construction "
        "and is\n"
     << "  branch-free. The resolved record below is what actually ran — "
        "under the\n"
     << "  SX_KERNEL_REFERENCE escape hatch it differs from the requested "
        "mode.\n";
  const dl::KernelPlan* fp = pipeline.channel() != nullptr
                                 ? pipeline.channel()->float_kernel_plan()
                                 : nullptr;
  const dl::QuantKernelPlan* qp =
      pipeline.quant_channel() != nullptr
          ? pipeline.quant_channel()->kernel_plan()
          : nullptr;
  // The marker pair lets tools/sxmetrics --kernel recover the resolved
  // backend from a serialized report without parsing the prose.
  os << "# BEGIN SX_KERNEL_BACKEND\n";
  os << pipeline.kernel_backend() << '\n';
  if (fp != nullptr) {
    os << "plan=float mode=" << dl::kernel_mode_name(fp->mode());
    if (fp->mode() == dl::KernelMode::kWide)
      os << " isa="
         << tensor::kernels::wide_isa_name(fp->isa_selection().isa);
    os << '\n';
  }
  if (qp != nullptr) {
    os << "plan=int8 mode=" << dl::kernel_mode_name(qp->mode());
    if (qp->mode() == dl::KernelMode::kWide)
      os << " isa="
         << tensor::kernels::wide_isa_name(qp->isa_selection().isa);
    os << '\n';
  }
  os << "# END SX_KERNEL_BACKEND\n";
  return EvidenceItem{"Resolved kernel backend (CPU-probe selection)",
                      os.str()};
}

EvidenceItem make_scenario_evidence(std::string_view summary,
                                    std::string_view scenario_json) {
  std::ostringstream os;
  os << summary;
  if (!summary.empty() && summary.back() != '\n') os << '\n';
  // The marker pair lets tools/sxmetrics --scenario recover the cell
  // matrix from a serialized report without parsing the surrounding prose.
  os << "# BEGIN SX_SCENARIO_JSON\n" << scenario_json;
  if (!scenario_json.empty() && scenario_json.back() != '\n') os << '\n';
  os << "# END SX_SCENARIO_JSON\n";
  return EvidenceItem{"Scenario sweep (cell evidence matrix)", os.str()};
}

EvidenceItem make_fleet_evidence(std::string_view summary,
                                 std::string_view fleet_block) {
  std::ostringstream os;
  os << summary;
  if (!summary.empty() && summary.back() != '\n') os << '\n';
  // The marker pair lets tools/sxmetrics --fleet recover the quantified
  // bounds from a serialized report without parsing the surrounding prose.
  os << "# BEGIN SX_FLEET_EVIDENCE\n" << fleet_block;
  if (!fleet_block.empty() && fleet_block.back() != '\n') os << '\n';
  os << "# END SX_FLEET_EVIDENCE\n";
  return EvidenceItem{"Fleet evidence (sharded campaign, quantified bounds)",
                      os.str()};
}

EvidenceItem make_serving_evidence(std::string_view summary,
                                   std::string_view serving_block) {
  std::ostringstream os;
  os << summary;
  if (!summary.empty() && summary.back() != '\n') os << '\n';
  // The marker pair lets tools/sxmetrics --serving recover the admission /
  // traffic / deadline verdict from a serialized report without parsing
  // the surrounding prose.
  os << "# BEGIN SX_SERVING_EVIDENCE\n" << serving_block;
  if (!serving_block.empty() && serving_block.back() != '\n') os << '\n';
  os << "# END SX_SERVING_EVIDENCE\n";
  return EvidenceItem{"Serving front-end (mixed-criticality admission)",
                      os.str()};
}

EvidenceItem make_observability_evidence(const CertifiablePipeline& pipeline) {
  std::ostringstream os;
  const obs::Registry* reg = pipeline.telemetry();
  const obs::FlightRecorder* fdr = pipeline.flight_recorder();
  if (reg == nullptr) {
    os << "telemetry disabled at deployment\n";
    return EvidenceItem{"Observability (telemetry snapshot)", os.str()};
  }
  os << "static metrics registry: " << reg->counters() << " counters, "
     << reg->gauges() << " gauges, " << reg->histograms()
     << " histograms; all slots allocated at deploy time ("
     << reg->dropped_registrations() << " registrations dropped)\n"
     << "merged counter values are sums over static shard order => bitwise\n"
     << "  identical for every batch_workers setting\n";
  // The marker pair lets tools/sxmetrics recover the exposition from a
  // serialized report without parsing the surrounding prose.
  os << "# BEGIN SX_METRICS\n" << expose_text(*reg) << "# END SX_METRICS\n";
  if (fdr != nullptr) {
    os << "# BEGIN SX_FLIGHT_TRAIL\n"
       << fdr->to_text() << "# END SX_FLIGHT_TRAIL\n";
  }
  return EvidenceItem{"Observability (telemetry snapshot)", os.str()};
}

}  // namespace sx::core
