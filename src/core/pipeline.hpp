// CertifiablePipeline: the SAFEXPLAIN runtime stack.
//
// Composes, according to a criticality-derived specification:
//   ODD guard -> safety-pattern inference channel -> trust supervisor ->
//   fallback -> watchdog (timing budget) -> audit log,
// with per-decision evidence (confidence, supervisor score, explanation on
// demand) and deployment-time provenance verification.
#pragma once

#include <memory>
#include <optional>

#include "core/criticality.hpp"
#include "dl/batch.hpp"
#include "dl/dataset.hpp"
#include "explain/explainer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "safety/channel.hpp"
#include "safety/watchdog.hpp"
#include "supervise/drift.hpp"
#include "supervise/supervisor.hpp"
#include "trace/audit.hpp"
#include "trace/odd.hpp"
#include "trace/provenance.hpp"
#include "trace/safety_case.hpp"
#include "verify/range.hpp"

namespace sx::core {

/// Deployment backend for the inference channel (pillar 3).
///
/// kFloat32 serves the planned float StaticEngine stack. kInt8 folds
/// BatchNorm, quantizes the model against the calibration set and serves
/// traffic through the planned int8 engine (safety::QuantChannel, wrapped
/// in the safety bag when the spec demands one); infer_batch() dispatches
/// to quantized per-worker engines sharing one QuantKernelPlan. The int8
/// ladder currently reaches the "monitored" rung, so kInt8 is admissible
/// up to SIL2; stronger patterns (DMR and above) need float replicas and
/// reject the backend at deploy time.
enum class BackendKind : std::uint8_t { kFloat32, kInt8 };

const char* to_string(BackendKind b) noexcept;

struct PipelineConfig {
  Criticality criticality = Criticality::kQM;
  /// Inference backend (see BackendKind).
  BackendKind backend = BackendKind::kFloat32;
  /// Weight-scale granularity of the kInt8 backend.
  dl::WeightGranularity quant_granularity = dl::WeightGranularity::kPerChannel;
  /// Engine knobs of the kInt8 backend (kernel mode, arena slack) —
  /// forwarded to the channel engine and the quantized batch pool.
  dl::QuantEngineConfig quant_engine;
  /// Hot-path kernel selection: forwarded to the single/monitored channel
  /// engines, the float batch pool, the supervisor's tap engine and the
  /// static-verification arena check. Under the kInt8 backend it also
  /// drives the quantized channel and batch pool unless
  /// quant_engine.kernels was set explicitly (non-kAuto). Every mode is
  /// bitwise identical by construction — the scenario sweeper crosses
  /// this axis to *prove* it per deployment. Redundant patterns (DMR and
  /// above) keep kAuto for their replicas.
  dl::KernelMode kernel_mode = dl::KernelMode::kAuto;
  /// When unset, the spec recommended for `criticality` is used.
  std::optional<PipelineSpec> spec;
  /// Conservative logits substituted by the safety bag. Empty = one-hot on
  /// `fallback_class`.
  std::vector<float> fallback_logits;
  std::size_t fallback_class = 0;
  /// Timing budget in logical time units (used when the spec demands one).
  std::uint64_t timing_budget = 0;
  /// Supervisor acceptance rate on in-distribution data.
  double supervisor_tpr = 0.95;
  std::uint64_t seed = 2024;
  /// Workers for the deterministic batch path (0 disables infer_batch()).
  /// The pool and its per-worker arenas are planned here, at deploy time.
  std::size_t batch_workers = 0;
  /// Telemetry: when enabled, an obs::Registry (counters + per-stage
  /// latency histograms) and an obs::FlightRecorder (stage-trail ring) are
  /// allocated at deploy time and populated on every decision. All metric
  /// values are deterministic across batch_workers settings; histogram
  /// contents additionally require a deterministic telemetry_config.clock.
  bool enable_telemetry = true;
  obs::RegistryConfig telemetry_config;
  std::size_t flight_recorder_capacity = 256;
};

/// Per-inference outcome with its evidence trail.
struct Decision {
  Status status = Status::kOk;
  std::size_t predicted_class = 0;
  float confidence = 0.0f;     ///< max softmax probability
  bool degraded = false;       ///< fallback output used
  double supervisor_score = 0.0;
  std::uint64_t audit_sequence = 0;  ///< audit-log entry for this decision
};

class CertifiablePipeline {
 public:
  /// Builds and *fits* the full stack from a trained model and calibration
  /// data. Throws if the resulting spec is not admissible at the requested
  /// criticality.
  CertifiablePipeline(const dl::Model& model, const dl::Dataset& calibration,
                      PipelineConfig cfg);

  /// Runs one decision. `logical_time` drives the watchdog/audit clock;
  /// `elapsed` is the measured execution time of this inference in the same
  /// units (0 when no timing budget is configured).
  Decision infer(const tensor::Tensor& input, std::uint64_t logical_time = 0,
                 std::uint64_t elapsed = 0);

  /// Runs one decision per input through the deterministic batch executor
  /// (requires cfg.batch_workers > 0; throws std::logic_error otherwise).
  /// Raw inference is fanned out over the static worker pool with a static
  /// partition, so decisions, counters and the audit trail are identical
  /// for every worker count; ODD guarding, supervision, drift tracking and
  /// audit logging run serially in batch-index order. The batch path uses
  /// the monitored static engine directly — pattern redundancy and timing
  /// budgets currently apply only to the single-item infer() path.
  std::vector<Decision> infer_batch(
      const std::vector<tensor::Tensor>& inputs,
      std::uint64_t logical_time = 0);

  /// On-demand explanation for the latest decision's input.
  tensor::Tensor explain(const tensor::Tensor& input,
                         std::size_t target_class);

  const PipelineSpec& spec() const noexcept { return spec_; }
  Criticality criticality() const noexcept { return cfg_.criticality; }
  const trace::AuditLog& audit() const noexcept { return audit_; }
  const trace::ModelCard& model_card() const noexcept { return card_; }

  /// One-line resolved-backend record, fixed at deploy time: the requested
  /// kernel mode, the mode actually deployed (post resolve_kernel_mode,
  /// i.e. after the SX_KERNEL_REFERENCE escape hatch), and — when the
  /// deployed plan is kWide — the CPU-probe / SX_KERNEL_ISA selection
  /// audit. Also appended to the audit log as the "kernel-backend" entry
  /// and published in the certification report's SX_KERNEL_BACKEND block,
  /// so evidence is never misattributed to a mode that did not run.
  const std::string& kernel_backend() const noexcept {
    return kernel_backend_;
  }

  /// Deployment-time integrity gate: does the deployed model still match
  /// the card's provenance hash?
  Status verify_integrity() const;

  /// Builds the GSN safety case for this deployment; complete() holds iff
  /// every goal is backed by evidence produced by this pipeline.
  trace::SafetyCase build_safety_case() const;

  std::uint64_t decisions() const noexcept { return decisions_; }
  std::uint64_t rejections() const noexcept { return rejections_; }
  std::uint64_t fallbacks() const noexcept { return fallbacks_; }

  /// Stream-level drift alarm (only meaningful when the spec includes a
  /// supervisor — the detector runs on its score stream).
  bool drift_alarmed() const noexcept {
    return drift_ && drift_->alarmed();
  }

  /// Batch executor (null unless cfg.batch_workers > 0) — exposes the
  /// per-worker observability counters for certification evidence.
  const dl::BatchRunner* batch_runner() const noexcept {
    return batch_.get();
  }

  /// Telemetry registry (null when cfg.enable_telemetry is false). The
  /// non-const overload exists so callers can drain_samples() the stage
  /// histograms into timing::analyze().
  const obs::Registry* telemetry() const noexcept { return obs_.get(); }
  obs::Registry* telemetry() noexcept { return obs_.get(); }

  /// Flight recorder (null when cfg.enable_telemetry is false).
  const obs::FlightRecorder* flight_recorder() const noexcept {
    return fdr_.get();
  }

  /// Evidence of the pre-flight static verification pass (null when the
  /// spec does not demand one, i.e. below SIL3).
  const verify::VerificationEvidence* static_verification() const noexcept {
    return verify_.get();
  }

  /// True when the pre-flight gate refused the model: the pipeline is
  /// deployed in refuse-only mode and every infer() degrades to fallback
  /// without running the DL component.
  bool verification_refused() const noexcept { return verify_refused_; }

  BackendKind backend() const noexcept { return cfg_.backend; }

  /// The deployed quantized model (null unless backend() == kInt8).
  const dl::QuantizedModel* quantized_model() const noexcept {
    return quant_.get();
  }
  /// The int8 inference channel (null unless backend() == kInt8 and the
  /// pipeline deployed; points inside channel_ / the safety bag).
  const safety::QuantChannel* quant_channel() const noexcept {
    return qchannel_;
  }
  /// The deployed inference channel — safety bag included when the spec
  /// demands one; null in refuse-only mode. Exposed so fault-injection
  /// campaigns (safety::run_campaign, the scenario sweeper) exercise the
  /// *deployed* channel instead of rebuilding a structural twin.
  safety::InferenceChannel* channel() noexcept { return channel_.get(); }
  const safety::InferenceChannel* channel() const noexcept {
    return channel_.get();
  }
  /// Requantization clips observed so far across the int8 channel and the
  /// quantized batch pool (0 for the float backend). Deterministic:
  /// depends only on the served inputs.
  std::uint64_t quant_saturation_total() const noexcept;

  /// Cross-checks the static saturation-margin verdicts (computed at
  /// deploy time into static_verification()->quant) against the measured
  /// runtime clip counters of the int8 channel. Throws std::logic_error
  /// unless the pipeline deployed with kInt8 and static verification.
  verify::SaturationCrossCheck quant_saturation_cross_check() const;

 private:
  /// Counts `id` (no-op when telemetry is off).
  void obs_count(obs::CounterId id) noexcept {
    if (obs_) obs_->add(id);
  }
  /// Records a stage span for the current decision ordinal.
  void obs_span(obs::Stage stage, Status st, bool degraded, std::uint64_t t0,
                std::uint64_t t1) noexcept {
    if (fdr_)
      fdr_->record(obs::StageSpan{decisions_, stage, st, degraded, t0, t1});
  }
  /// Closes a decision: whole-decision histogram + summary span.
  void obs_finish_decision(const Decision& d, std::uint64_t t0) noexcept;

  /// Per-decision supervisor score: features tapped from the planned
  /// engine run when possible, Model::forward_trace otherwise. Bitwise
  /// identical either way.
  double supervisor_score(const tensor::Tensor& input);

  PipelineConfig cfg_;
  PipelineSpec spec_;
  std::unique_ptr<dl::Model> model_;  // deployed copy
  // kInt8 backend: the BatchNorm-folded float twin (layer indices align
  // with the quantized model — verification and fault injection need it)
  // and the quantized deployment itself. Declared before batch_/channel_,
  // which hold references into them.
  std::unique_ptr<dl::Model> folded_;
  std::unique_ptr<dl::QuantizedModel> quant_;
  // Telemetry must outlive (and be registered before) every component that
  // binds counters into it — the batch pool in particular.
  std::unique_ptr<obs::Registry> obs_;
  std::unique_ptr<obs::FlightRecorder> fdr_;
  std::unique_ptr<dl::BatchRunner> batch_;
  std::unique_ptr<safety::InferenceChannel> channel_;
  safety::QuantChannel* qchannel_ = nullptr;  // view into channel_ (kInt8)
  std::unique_ptr<supervise::Supervisor> supervisor_;
  supervise::MahalanobisSupervisor* mahal_ = nullptr;  // concrete view
  // Tap-capable engine + preallocated buffers feeding the supervisor its
  // per-decision features without a second allocation-heavy forward pass
  // (null when the feature layer is not tappable under the resolved plan).
  std::unique_ptr<dl::StaticEngine> sup_engine_;
  std::vector<float> sup_feat_;
  std::vector<float> sup_logits_;
  std::unique_ptr<supervise::CusumDetector> drift_;
  std::unique_ptr<trace::OddGuard> odd_;
  std::unique_ptr<explain::Explainer> explainer_;
  std::unique_ptr<verify::VerificationEvidence> verify_;
  bool verify_refused_ = false;
  safety::Watchdog watchdog_;
  trace::AuditLog audit_;
  std::string kernel_backend_;
  trace::ModelCard card_;
  std::vector<float> out_buf_;
  std::vector<float> fallback_;
  std::uint64_t decisions_ = 0;
  std::uint64_t rejections_ = 0;
  std::uint64_t fallbacks_ = 0;

  obs::CounterId c_decisions_{};
  obs::CounterId c_odd_rej_{};
  obs::CounterId c_sup_rej_{};
  obs::CounterId c_fallback_{};
  obs::CounterId c_wd_overruns_{};
  obs::CounterId c_fault_det_{};
  obs::CounterId c_verify_refusals_{};
  obs::CounterId c_drift_alarms_{};
  obs::GaugeId g_budget_{};
  obs::GaugeId g_sup_threshold_{};
  obs::GaugeId g_drift_cusum_{};
  obs::HistogramId h_odd_{};
  obs::HistogramId h_infer_{};
  obs::HistogramId h_sup_{};
  obs::HistogramId h_decision_{};
  // kInt8 backend telemetry.
  obs::CounterId c_quant_sats_{};
  obs::GaugeId g_quant_bytes_{};
  obs::HistogramId h_qinfer_{};
  std::uint64_t reported_batch_sats_ = 0;  // batch clips already pushed
};

}  // namespace sx::core
