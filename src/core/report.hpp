// Certification report generator: bundles every evidence artifact the
// framework produces into one assessor-facing text document.
//
// The report is the deliverable of "qualify and certify DL-based software
// products under bounded effort/cost": model provenance, admissibility at
// the claimed criticality, the GSN safety case, requirement traceability,
// runtime statistics, and any analysis evidence (fault campaigns, MBPTA,
// robustness certificates) attached by the caller.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hpp"
#include "trace/requirements.hpp"
#include "verify/range.hpp"

namespace sx::dl {
class BatchRunner;
class KernelPlan;
}

namespace sx::core {

/// One externally produced piece of evidence (a campaign result, an MBPTA
/// report, a robustness certificate...).
struct EvidenceItem {
  std::string title;
  std::string body;  ///< preformatted text
};

struct CertificationReport {
  std::string text;
  bool complete = false;  ///< safety case complete AND requirements covered
};

/// Renders the full report for a deployed pipeline.
/// `requirements` may be null (section omitted).
CertificationReport make_certification_report(
    const CertifiablePipeline& pipeline,
    const trace::RequirementRegistry* requirements,
    const std::vector<EvidenceItem>& evidence);

/// Evidence for the deterministic batch executor: aggregate and per-worker
/// counters (batches, items, faults, arena plan, busy time) plus the static
/// partition argument. Attach to make_certification_report's evidence list.
EvidenceItem make_batch_runner_evidence(const dl::BatchRunner& runner);

/// Evidence for a deploy-time kernel plan: resolved mode, per-layer step
/// list (blocked/packed Dense, im2col Conv2d, fused epilogues, reference
/// fallbacks), deploy-time table/panel footprints and the arena-resident
/// scratch demand — the "all layout decisions made before operation"
/// argument. Attach to make_certification_report's evidence list.
EvidenceItem make_kernel_plan_evidence(const dl::KernelPlan& plan);

/// Evidence for the int8 deployment (pillar 3): quantization granularity
/// and footprint, the deploy-time quantized kernel plan, the independent
/// byte-arena re-check, runtime requantization-clip counters, and — when
/// the spec demanded static verification — the cross-check of the static
/// saturation-margin verdicts against the measured counters. Throws
/// std::logic_error unless pipeline.backend() == BackendKind::kInt8.
EvidenceItem make_quant_backend_evidence(const CertifiablePipeline& pipeline);

/// Evidence for the static verification pass: verdict, arena re-check and
/// per-layer output intervals (plus int8 saturation margins when present).
/// Attach to make_certification_report's evidence list.
EvidenceItem make_static_verification_evidence(
    const verify::VerificationEvidence& evidence);

/// Evidence for the deploy-time IR pass pipeline: per-pass structured
/// audit facts (dce, fusion legality, liveness arena planning) of the
/// deployed float and/or int8 kernel plans, the arena reuse achieved
/// against the naive ping-pong demand, and — when static verification
/// ran — the independent re-verification verdict of every pass. The
/// machine-readable per-pass lines sit between `# BEGIN SX_IR_PASSES` /
/// `# END SX_IR_PASSES` markers so tools/sxmetrics --ir can recover them
/// from a serialized report. Attach to make_certification_report's
/// evidence list.
EvidenceItem make_ir_evidence(const CertifiablePipeline& pipeline);

/// Evidence for the resolved kernel backend: the requested vs. deployed
/// kernel mode (post resolve_kernel_mode, so SX_KERNEL_REFERENCE cannot
/// misattribute evidence) plus — for kWide — the deploy-time CPU-probe /
/// SX_KERNEL_ISA selection audit and per-plan ISA lines. The machine-
/// readable record sits between `# BEGIN SX_KERNEL_BACKEND` /
/// `# END SX_KERNEL_BACKEND` markers so tools/sxmetrics --kernel can
/// recover it from a serialized report. Attach to
/// make_certification_report's evidence list.
EvidenceItem make_kernel_backend_evidence(const CertifiablePipeline& pipeline);

/// Evidence wrapping a scenario-sweep report (see scenario/scenario.hpp):
/// a human-readable summary followed by the machine-checkable JSON between
/// `# BEGIN SX_SCENARIO_JSON` / `# END SX_SCENARIO_JSON` markers, so
/// tools/sxmetrics --scenario can recover the cell matrix from a serialized
/// certification report. Takes the pre-rendered strings (not the report
/// struct) to keep sx_core free of a dependency on sx_scenario.
EvidenceItem make_scenario_evidence(std::string_view summary,
                                    std::string_view scenario_json);

/// Evidence wrapping a merged fleet campaign (see fleet/fleet.hpp): a
/// human-readable summary followed by the machine-readable bound/root
/// lines between `# BEGIN SX_FLEET_EVIDENCE` / `# END SX_FLEET_EVIDENCE`
/// markers, so tools/sxmetrics --fleet can recover the quantified safety
/// bounds from a serialized certification report. Takes the pre-rendered
/// strings (fleet::summary / fleet::render_fleet_block) to keep sx_core
/// free of a dependency on sx_fleet.
EvidenceItem make_fleet_evidence(std::string_view summary,
                                 std::string_view fleet_block);

/// Evidence wrapping a serving deployment (see serve/server.hpp): a
/// human-readable summary followed by the machine-readable admission /
/// traffic / deadline lines between `# BEGIN SX_SERVING_EVIDENCE` /
/// `# END SX_SERVING_EVIDENCE` markers, so tools/sxmetrics --serving can
/// recover the serving verdict from a serialized certification report.
/// Takes the pre-rendered strings (serve::summary /
/// serve::render_serving_block) to keep sx_core free of a dependency on
/// sx_serve.
EvidenceItem make_serving_evidence(std::string_view summary,
                                   std::string_view serving_block);

/// Telemetry snapshot of a deployed pipeline: the Prometheus-style metric
/// exposition (between `# BEGIN SX_METRICS` / `# END SX_METRICS` markers,
/// recoverable offline by tools/sxmetrics) and the flight-recorder stage
/// trail (between `# BEGIN SX_FLIGHT_TRAIL` / `# END SX_FLIGHT_TRAIL`).
/// Included automatically as report section 7 when telemetry is enabled.
EvidenceItem make_observability_evidence(const CertifiablePipeline& pipeline);

}  // namespace sx::core
