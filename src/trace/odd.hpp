// Operational Design Domain (ODD) specification and runtime guard.
//
// The ODD captures, in checkable statistics, the input domain the DL
// component was qualified for. At runtime, inputs outside the ODD are
// rejected *before* inference — an input-side complement to the output-side
// supervisors.
#pragma once

#include "dl/dataset.hpp"
#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace sx::trace {

struct OddSpec {
  float value_min = 0.0f;   ///< element-wise value envelope
  float value_max = 1.0f;
  float mean_min = 0.0f;    ///< per-input mean envelope
  float mean_max = 1.0f;
  float stddev_min = 0.0f;  ///< per-input dispersion envelope
  float stddev_max = 1.0f;
};

class OddGuard {
 public:
  explicit OddGuard(OddSpec spec) : spec_(spec) {}

  /// Learns an ODD from in-distribution data, widening each envelope by
  /// `margin` (relative widening of the observed range).
  static OddGuard fit(const dl::Dataset& id_data, float margin = 0.25f);

  /// kOk if `input` lies within the ODD; kOddViolation otherwise.
  Status check(tensor::ConstTensorView input) noexcept;

  const OddSpec& spec() const noexcept { return spec_; }
  std::uint64_t checks() const noexcept { return checks_; }
  std::uint64_t violations() const noexcept { return violations_; }

 private:
  OddSpec spec_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace sx::trace
