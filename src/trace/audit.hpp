// Hash-chained audit log: tamper-evident record of every safety-relevant
// event (inference decisions, supervisor rejections, fault detections,
// deployment actions). Verification replays the SHA-256 chain.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/hash.hpp"
#include "util/status.hpp"

namespace sx::trace {

struct AuditEntry {
  std::uint64_t sequence = 0;
  std::uint64_t logical_time = 0;
  std::string actor;    ///< component emitting the event
  std::string action;   ///< e.g. "inference", "reject", "deploy"
  std::string payload;  ///< free-form details (decision, scores, hashes)
  util::Sha256Digest chain_hash{};  ///< hash over entry + previous hash
};

class AuditLog {
 public:
  /// Appends an event; the chain hash is computed automatically.
  const AuditEntry& append(std::uint64_t logical_time, std::string actor,
                           std::string action, std::string payload);

  std::size_t size() const noexcept { return entries_.size(); }
  const AuditEntry& entry(std::size_t i) const { return entries_.at(i); }
  const std::vector<AuditEntry>& entries() const noexcept { return entries_; }

  /// Recomputes the whole chain; kIntegrityFault on any mismatch
  /// (i.e. an entry was altered after being written).
  Status verify() const noexcept;

  /// Incremental verification from a previously verified anchor: checks
  /// that entry `anchor_index` still carries `anchor_digest` as its chain
  /// hash (a rewritten prefix head is caught immediately), then replays
  /// only the suffix (anchor_index, size()). Equivalent to verify() when
  /// the anchor was itself obtained from a verified chain — long-running
  /// fleet gates re-check an N-entry log in O(new entries) instead of
  /// O(n) per call (O(n^2) over a run). kInvalidArgument when
  /// anchor_index >= size().
  Status verify_from(std::size_t anchor_index,
                     const util::Sha256Digest& anchor_digest) const noexcept;

  /// Hash of the newest entry (anchor to publish externally).
  util::Sha256Digest head() const noexcept;

  /// Reconstitutes a persisted log from raw entries *as stored*: chain
  /// hashes are adopted, never recomputed, so verify() on the result
  /// detects post-persistence tampering exactly as on the original object.
  /// (Re-appending through append() would re-chain the tampered bytes and
  /// launder them.) Used by the fleet evidence plane to reload shard
  /// segment files for merge-time verification.
  static AuditLog from_entries(std::vector<AuditEntry> entries) noexcept;

#if defined(SX_ENABLE_TEST_HOOKS)
  /// DANGEROUS: test hook that mutates a stored entry to demonstrate that
  /// verification catches tampering. Compiled only into test binaries
  /// (SX_ENABLE_TEST_HOOKS); production deployments have no mutation path
  /// into the chain.
  void tamper_payload_for_test(std::size_t i, std::string new_payload) {
    entries_.at(i).payload = std::move(new_payload);
  }
#endif

 private:
  static util::Sha256Digest hash_entry(const AuditEntry& e,
                                       const util::Sha256Digest& prev) noexcept;

  std::vector<AuditEntry> entries_;
};

}  // namespace sx::trace
