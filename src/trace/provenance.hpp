// Model and dataset provenance (pillar 1).
//
// A deployed DL component is identified by the SHA-256 of its architecture
// and parameters; datasets by a content fingerprint. The ModelCard bundles
// everything certification needs to reconstruct *what* was deployed and
// *where it came from*.
#pragma once

#include <string>
#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"
#include "util/hash.hpp"

namespace sx::trace {

/// Content fingerprint of a dataset (order-sensitive, bit-exact).
std::string dataset_fingerprint(const dl::Dataset& ds);

struct ModelCard {
  std::string name;
  std::string version;
  std::string model_hash;        ///< hex SHA-256 of architecture + weights
  std::string training_dataset;  ///< dataset fingerprint
  std::string training_config;   ///< free-form description of hyper-params
  double validation_accuracy = 0.0;
  std::string intended_use;      ///< ODD / scope statement

  /// Renders the card as a key: value block.
  std::string to_text() const;
};

/// Builds a card for a trained model.
ModelCard make_model_card(std::string name, std::string version,
                          const dl::Model& model,
                          const dl::Dataset& training_data,
                          std::string training_config,
                          double validation_accuracy,
                          std::string intended_use);

/// Verifies that `model` still matches the hash recorded in `card`
/// (kIntegrityFault on mismatch) — the deployment-time integrity gate.
Status verify_model_integrity(const ModelCard& card, const dl::Model& model);

}  // namespace sx::trace
