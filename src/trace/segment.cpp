#include "trace/segment.hpp"

#include <algorithm>
#include <vector>

namespace sx::trace {

Status verify_segment(const AuditSegment& segment) noexcept {
  return segment.log.verify();
}

FleetAnchor anchor_segments(std::span<const AuditSegment> segments) noexcept {
  FleetAnchor out;
  util::Sha256 h;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const AuditSegment& seg = segments[i];
    if (i > 0 && segments[i - 1].shard_id >= seg.shard_id) {
      out.status = Status::kInvalidArgument;
      out.offending_shard = seg.shard_id;
      return out;
    }
    if (!ok(seg.log.verify())) {
      out.status = Status::kIntegrityFault;
      out.offending_shard = seg.shard_id;
      return out;
    }
    h.update("shard|");
    h.update(std::to_string(seg.shard_id));
    h.update("|");
    h.update(util::to_hex(seg.log.head()));
    h.update("\n");
  }
  out.digest = h.finish();
  return out;
}

FleetAnchor canonical_root(std::span<const AuditSegment> segments,
                           std::string_view action) {
  FleetAnchor out;
  // Chains first: a canonical root over tampered entries would launder the
  // tampering into a fresh, self-consistent chain.
  for (const AuditSegment& seg : segments) {
    if (!ok(seg.log.verify())) {
      out.status = Status::kIntegrityFault;
      out.offending_shard = seg.shard_id;
      return out;
    }
  }
  struct Ref {
    std::uint64_t logical_time;
    std::uint32_t shard_id;
    const AuditEntry* entry;
  };
  std::vector<Ref> refs;
  for (const AuditSegment& seg : segments)
    for (const AuditEntry& e : seg.log.entries())
      if (e.action == action) refs.push_back(Ref{e.logical_time, seg.shard_id, &e});
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.logical_time < b.logical_time;
  });
  for (std::size_t i = 1; i < refs.size(); ++i) {
    if (refs[i].logical_time == refs[i - 1].logical_time) {
      out.status = Status::kInvalidArgument;
      out.offending_shard = refs[i].shard_id;
      return out;
    }
  }
  // Re-chain in global trial order: sequence numbers are assigned by the
  // canonical log itself, so the head depends only on the (logical_time,
  // actor, action, payload) stream — not on how it was sharded.
  AuditLog canonical;
  for (const Ref& r : refs)
    canonical.append(r.entry->logical_time, r.entry->actor, r.entry->action,
                     r.entry->payload);
  out.digest = canonical.head();
  return out;
}

}  // namespace sx::trace
