#include "trace/audit.hpp"

namespace sx::trace {

util::Sha256Digest AuditLog::hash_entry(
    const AuditEntry& e, const util::Sha256Digest& prev) noexcept {
  util::Sha256 h;
  h.update(std::span<const std::uint8_t>(prev.data(), prev.size()));
  h.update(std::to_string(e.sequence));
  h.update("|");
  h.update(std::to_string(e.logical_time));
  h.update("|");
  h.update(e.actor);
  h.update("|");
  h.update(e.action);
  h.update("|");
  h.update(e.payload);
  return h.finish();
}

const AuditEntry& AuditLog::append(std::uint64_t logical_time,
                                   std::string actor, std::string action,
                                   std::string payload) {
  AuditEntry e;
  e.sequence = entries_.size();
  e.logical_time = logical_time;
  e.actor = std::move(actor);
  e.action = std::move(action);
  e.payload = std::move(payload);
  const util::Sha256Digest prev =
      entries_.empty() ? util::Sha256Digest{} : entries_.back().chain_hash;
  e.chain_hash = hash_entry(e, prev);
  entries_.push_back(std::move(e));
  return entries_.back();
}

Status AuditLog::verify() const noexcept {
  util::Sha256Digest prev{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& e = entries_[i];
    if (e.sequence != i) return Status::kIntegrityFault;
    if (hash_entry(e, prev) != e.chain_hash) return Status::kIntegrityFault;
    prev = e.chain_hash;
  }
  return Status::kOk;
}

Status AuditLog::verify_from(
    std::size_t anchor_index,
    const util::Sha256Digest& anchor_digest) const noexcept {
  if (anchor_index >= entries_.size()) return Status::kInvalidArgument;
  // The anchor entry must still be the one that was verified: its sequence
  // and stored chain hash pin the whole prefix.
  if (entries_[anchor_index].sequence != anchor_index)
    return Status::kIntegrityFault;
  if (entries_[anchor_index].chain_hash != anchor_digest)
    return Status::kIntegrityFault;
  util::Sha256Digest prev = anchor_digest;
  for (std::size_t i = anchor_index + 1; i < entries_.size(); ++i) {
    const AuditEntry& e = entries_[i];
    if (e.sequence != i) return Status::kIntegrityFault;
    if (hash_entry(e, prev) != e.chain_hash) return Status::kIntegrityFault;
    prev = e.chain_hash;
  }
  return Status::kOk;
}

AuditLog AuditLog::from_entries(std::vector<AuditEntry> entries) noexcept {
  AuditLog log;
  log.entries_ = std::move(entries);
  return log;
}

util::Sha256Digest AuditLog::head() const noexcept {
  return entries_.empty() ? util::Sha256Digest{} : entries_.back().chain_hash;
}

}  // namespace sx::trace
