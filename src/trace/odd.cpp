#include "trace/odd.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sx::trace {
namespace {

struct MeanStd {
  float mean = 0.0f;
  float stddev = 0.0f;
};

MeanStd mean_std(std::span<const float> xs) noexcept {
  if (xs.empty()) return {};
  double s = 0.0;
  for (float v : xs) s += static_cast<double>(v);
  const double m = s / static_cast<double>(xs.size());
  double ss = 0.0;
  for (float v : xs) {
    const double d = static_cast<double>(v) - m;
    ss += d * d;
  }
  return {static_cast<float>(m),
          static_cast<float>(std::sqrt(ss / static_cast<double>(xs.size())))};
}

}  // namespace

OddGuard OddGuard::fit(const dl::Dataset& id_data, float margin) {
  if (id_data.samples.empty())
    throw std::invalid_argument("OddGuard::fit: empty dataset");
  OddSpec s;
  s.value_min = s.mean_min = s.stddev_min = std::numeric_limits<float>::max();
  s.value_max = s.mean_max = s.stddev_max =
      std::numeric_limits<float>::lowest();
  for (const auto& sample : id_data.samples) {
    const auto d = sample.input.data();
    for (float v : d) {
      s.value_min = std::min(s.value_min, v);
      s.value_max = std::max(s.value_max, v);
    }
    const MeanStd ms = mean_std(d);
    s.mean_min = std::min(s.mean_min, ms.mean);
    s.mean_max = std::max(s.mean_max, ms.mean);
    s.stddev_min = std::min(s.stddev_min, ms.stddev);
    s.stddev_max = std::max(s.stddev_max, ms.stddev);
  }
  auto widen = [margin](float& lo, float& hi) {
    const float w = (hi - lo) * margin;
    lo -= w;
    hi += w;
  };
  widen(s.value_min, s.value_max);
  widen(s.mean_min, s.mean_max);
  widen(s.stddev_min, s.stddev_max);
  return OddGuard{s};
}

Status OddGuard::check(tensor::ConstTensorView input) noexcept {
  ++checks_;
  float vmin = std::numeric_limits<float>::max();
  float vmax = std::numeric_limits<float>::lowest();
  for (float v : input.data) {
    if (!std::isfinite(v)) {
      ++violations_;
      return Status::kOddViolation;
    }
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  const MeanStd ms = mean_std(input.data);
  const bool inside = vmin >= spec_.value_min && vmax <= spec_.value_max &&
                      ms.mean >= spec_.mean_min && ms.mean <= spec_.mean_max &&
                      ms.stddev >= spec_.stddev_min &&
                      ms.stddev <= spec_.stddev_max;
  if (!inside) {
    ++violations_;
    return Status::kOddViolation;
  }
  return Status::kOk;
}

}  // namespace sx::trace
