#include "trace/safety_case.hpp"

#include <charconv>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sx::trace {
namespace {

const char* prefix(NodeKind k) {
  switch (k) {
    case NodeKind::kGoal: return "G";
    case NodeKind::kStrategy: return "S";
    case NodeKind::kSolution: return "Sn";
  }
  return "?";
}

/// Shortest round-trip decimal form (std::to_chars): quantified claims
/// render byte-identically for equal values.
std::string format_value(double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

/// ` [= value unit]` suffix of a quantified node ("" otherwise).
std::string quantified_suffix(const CaseNode& n) {
  if (!n.quantified) return {};
  std::string out = " [= " + format_value(n.value);
  if (!n.unit.empty()) {
    out += ' ';
    out += n.unit;
  }
  out += ']';
  return out;
}

}  // namespace

std::size_t SafetyCase::set_root_goal(std::string id, std::string text) {
  if (has_root_) throw std::logic_error("SafetyCase: root already set");
  nodes_.push_back(
      CaseNode{NodeKind::kGoal, std::move(id), std::move(text), {}});
  has_root_ = true;
  return 0;
}

std::size_t SafetyCase::add_node(std::size_t parent, NodeKind kind,
                                 std::string id, std::string text) {
  if (parent >= nodes_.size())
    throw std::invalid_argument("SafetyCase: bad parent index");
  if (nodes_[parent].kind == NodeKind::kSolution)
    throw std::invalid_argument("SafetyCase: solutions are leaves");
  nodes_.push_back(CaseNode{kind, std::move(id), std::move(text), {}});
  nodes_[parent].children.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

std::size_t SafetyCase::add_goal(std::size_t parent, std::string id,
                                 std::string text) {
  return add_node(parent, NodeKind::kGoal, std::move(id), std::move(text));
}

std::size_t SafetyCase::add_strategy(std::size_t parent, std::string id,
                                     std::string text) {
  return add_node(parent, NodeKind::kStrategy, std::move(id), std::move(text));
}

std::size_t SafetyCase::add_solution(std::size_t parent, std::string id,
                                     std::string text) {
  return add_node(parent, NodeKind::kSolution, std::move(id), std::move(text));
}

std::size_t SafetyCase::add_quantified_solution(std::size_t parent,
                                                std::string id,
                                                std::string text, double value,
                                                std::string unit) {
  const std::size_t idx =
      add_node(parent, NodeKind::kSolution, std::move(id), std::move(text));
  nodes_[idx].quantified = true;
  nodes_[idx].value = value;
  nodes_[idx].unit = std::move(unit);
  return idx;
}

// The subtree walks below use an explicit work list instead of call
// recursion: stack demand is one vector bounded by the node count, and the
// traversal terminates because children always carry larger indices than
// their parent (nodes are append-only).
bool SafetyCase::has_solution_beneath(std::size_t idx) const {
  std::vector<std::size_t> work{idx};
  while (!work.empty()) {
    const CaseNode& n = nodes_[work.back()];
    work.pop_back();
    if (n.kind == NodeKind::kSolution) return true;
    work.insert(work.end(), n.children.begin(), n.children.end());
  }
  return false;
}

bool SafetyCase::has_goal_beneath(std::size_t idx) const {
  std::vector<std::size_t> work(nodes_[idx].children.begin(),
                                nodes_[idx].children.end());
  while (!work.empty()) {
    const CaseNode& n = nodes_[work.back()];
    work.pop_back();
    if (n.kind == NodeKind::kGoal) return true;
    work.insert(work.end(), n.children.begin(), n.children.end());
  }
  return false;
}

std::vector<std::string> SafetyCase::undischarged_goals() const {
  // A goal discharges either through evidence beneath it or by delegating
  // to sub-goals; only leaf goals (no goal descendants) must carry evidence
  // themselves.
  std::vector<std::string> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CaseNode& n = nodes_[i];
    if (n.kind != NodeKind::kGoal) continue;
    if (has_goal_beneath(i)) continue;
    if (!has_solution_beneath(i)) out.push_back(n.id);
  }
  return out;
}

void SafetyCase::render(std::size_t idx, std::size_t depth,
                        std::string& out) const {
  // Pre-order walk via explicit (node, depth) stack; children pushed in
  // reverse so the leftmost child is rendered first.
  std::vector<std::pair<std::size_t, std::size_t>> work{{idx, depth}};
  while (!work.empty()) {
    const auto [cur, d] = work.back();
    work.pop_back();
    const CaseNode& n = nodes_[cur];
    out.append(2 * d, ' ');
    out += "[";
    out += prefix(n.kind);
    out += "] ";
    out += n.id;
    out += ": ";
    out += n.text;
    out += quantified_suffix(n);
    out += '\n';
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
      work.emplace_back(*it, d + 1);
  }
}

std::string SafetyCase::to_text() const {
  std::string out;
  if (has_root_) render(0, 0, out);
  return out;
}

std::string SafetyCase::to_dot() const {
  std::string out = "digraph safety_case {\n  rankdir=TB;\n";
  auto escape = [](const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CaseNode& n = nodes_[i];
    const char* shape = n.kind == NodeKind::kGoal
                            ? "box"
                            : (n.kind == NodeKind::kStrategy ? "parallelogram"
                                                             : "circle");
    out += "  n" + std::to_string(i) + " [shape=" + shape + ", label=\"" +
           escape(n.id) + "\\n" + escape(n.text + quantified_suffix(n)) +
           "\"];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t c : nodes_[i].children)
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(c) + ";\n";
  out += "}\n";
  return out;
}

}  // namespace sx::trace
