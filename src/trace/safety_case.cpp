#include "trace/safety_case.hpp"

#include <stdexcept>

namespace sx::trace {
namespace {

const char* prefix(NodeKind k) {
  switch (k) {
    case NodeKind::kGoal: return "G";
    case NodeKind::kStrategy: return "S";
    case NodeKind::kSolution: return "Sn";
  }
  return "?";
}

}  // namespace

std::size_t SafetyCase::set_root_goal(std::string id, std::string text) {
  if (has_root_) throw std::logic_error("SafetyCase: root already set");
  nodes_.push_back(
      CaseNode{NodeKind::kGoal, std::move(id), std::move(text), {}});
  has_root_ = true;
  return 0;
}

std::size_t SafetyCase::add_node(std::size_t parent, NodeKind kind,
                                 std::string id, std::string text) {
  if (parent >= nodes_.size())
    throw std::invalid_argument("SafetyCase: bad parent index");
  if (nodes_[parent].kind == NodeKind::kSolution)
    throw std::invalid_argument("SafetyCase: solutions are leaves");
  nodes_.push_back(CaseNode{kind, std::move(id), std::move(text), {}});
  nodes_[parent].children.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

std::size_t SafetyCase::add_goal(std::size_t parent, std::string id,
                                 std::string text) {
  return add_node(parent, NodeKind::kGoal, std::move(id), std::move(text));
}

std::size_t SafetyCase::add_strategy(std::size_t parent, std::string id,
                                     std::string text) {
  return add_node(parent, NodeKind::kStrategy, std::move(id), std::move(text));
}

std::size_t SafetyCase::add_solution(std::size_t parent, std::string id,
                                     std::string text) {
  return add_node(parent, NodeKind::kSolution, std::move(id), std::move(text));
}

bool SafetyCase::has_solution_beneath(std::size_t idx) const {
  const CaseNode& n = nodes_[idx];
  if (n.kind == NodeKind::kSolution) return true;
  for (std::size_t c : n.children)
    if (has_solution_beneath(c)) return true;
  return false;
}

bool SafetyCase::has_goal_beneath(std::size_t idx) const {
  for (std::size_t c : nodes_[idx].children) {
    if (nodes_[c].kind == NodeKind::kGoal) return true;
    if (has_goal_beneath(c)) return true;
  }
  return false;
}

std::vector<std::string> SafetyCase::undischarged_goals() const {
  // A goal discharges either through evidence beneath it or by delegating
  // to sub-goals; only leaf goals (no goal descendants) must carry evidence
  // themselves.
  std::vector<std::string> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CaseNode& n = nodes_[i];
    if (n.kind != NodeKind::kGoal) continue;
    if (has_goal_beneath(i)) continue;
    if (!has_solution_beneath(i)) out.push_back(n.id);
  }
  return out;
}

void SafetyCase::render(std::size_t idx, std::size_t depth,
                        std::string& out) const {
  const CaseNode& n = nodes_[idx];
  out.append(2 * depth, ' ');
  out += "[";
  out += prefix(n.kind);
  out += "] ";
  out += n.id;
  out += ": ";
  out += n.text;
  out += '\n';
  for (std::size_t c : n.children) render(c, depth + 1, out);
}

std::string SafetyCase::to_text() const {
  std::string out;
  if (has_root_) render(0, 0, out);
  return out;
}

std::string SafetyCase::to_dot() const {
  std::string out = "digraph safety_case {\n  rankdir=TB;\n";
  auto escape = [](const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const CaseNode& n = nodes_[i];
    const char* shape = n.kind == NodeKind::kGoal
                            ? "box"
                            : (n.kind == NodeKind::kStrategy ? "parallelogram"
                                                             : "circle");
    out += "  n" + std::to_string(i) + " [shape=" + shape + ", label=\"" +
           escape(n.id) + "\\n" + escape(n.text) + "\"];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    for (std::size_t c : nodes_[i].children)
      out += "  n" + std::to_string(i) + " -> n" + std::to_string(c) + ";\n";
  out += "}\n";
  return out;
}

}  // namespace sx::trace
