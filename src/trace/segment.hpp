// Sharded audit evidence: per-shard hash-chained AuditLog segments anchored
// under deterministic fleet-level roots (fleet evidence plane).
//
// A fleet run produces one AuditSegment per shard (worker thread or
// independent process). Merge-time verification is layered:
//
//   1. verify_segment() replays each shard's own SHA-256 chain — tampering
//      with any stored entry of any shard is detected independently;
//   2. anchor_segments() binds the per-shard chain heads into one *anchor
//      digest*: an ordered hash over (shard-id, head) pairs in ascending
//      shard order. The anchor commits to the exact physical segments, so
//      it depends on how the run was sharded;
//   3. canonical_root() additionally re-chains the shards' `trial` entries
//      in global trial order (logical_time == global trial index) into one
//      canonical merged log and returns its head. Because trial entries
//      carry no shard-local state, the canonical root is *partition
//      independent*: N shards over the same trial range produce the same
//      root as the single-process run — the byte-identity acceptance gate
//      of the fleet evidence plane.
//
// All three refuse (Status in the result, offending shard identified)
// instead of producing a root over unverifiable input.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "trace/audit.hpp"
#include "util/hash.hpp"
#include "util/status.hpp"

namespace sx::trace {

/// One shard's slice of the fleet audit trail.
struct AuditSegment {
  std::uint32_t shard_id = 0;
  AuditLog log;
};

/// Replays the segment's own hash chain (AuditLog::verify).
Status verify_segment(const AuditSegment& segment) noexcept;

/// Result of a fleet-level anchoring/merging step.
struct FleetAnchor {
  Status status = Status::kOk;
  /// Shard id the failure was detected in (valid when status != kOk).
  std::uint32_t offending_shard = 0;
  util::Sha256Digest digest{};
};

/// Ordered hash over (shard_id, chain head) in ascending shard order.
/// Every shard chain is verified first; duplicate or unordered shard ids
/// are refused (kInvalidArgument), a broken chain yields kIntegrityFault
/// with the offending shard. `segments` must already be sorted by
/// shard_id (static shard order).
FleetAnchor anchor_segments(std::span<const AuditSegment> segments) noexcept;

/// Partition-independent fleet root: verifies every segment chain, then
/// re-chains all entries with action == `action` (default "trial") from
/// all segments, ordered by logical_time (the global trial index), into a
/// fresh canonical log and returns its head. Duplicate logical times
/// across segments are refused (kInvalidArgument) — two shards claiming
/// the same trial is a partition fault, not mergeable evidence.
FleetAnchor canonical_root(std::span<const AuditSegment> segments,
                           std::string_view action = "trial");

}  // namespace sx::trace
