#include "trace/requirements.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sx::trace {

std::string_view to_string(Criticality c) noexcept {
  switch (c) {
    case Criticality::kQM: return "QM";
    case Criticality::kSil1: return "SIL1";
    case Criticality::kSil2: return "SIL2";
    case Criticality::kSil3: return "SIL3";
    case Criticality::kSil4: return "SIL4";
  }
  return "?";
}

std::string_view to_string(ArtifactKind k) noexcept {
  switch (k) {
    case ArtifactKind::kModel: return "model";
    case ArtifactKind::kDataset: return "dataset";
    case ArtifactKind::kTest: return "test";
    case ArtifactKind::kAnalysis: return "analysis";
    case ArtifactKind::kComponent: return "component";
  }
  return "?";
}

void RequirementRegistry::add(Requirement req) {
  if (req.id.empty())
    throw std::invalid_argument("RequirementRegistry: empty id");
  if (find(req.id) != nullptr)
    throw std::invalid_argument("RequirementRegistry: duplicate id " + req.id);
  requirements_.push_back(std::move(req));
}

void RequirementRegistry::link(std::string requirement_id, ArtifactKind kind,
                               std::string artifact_id, std::string role) {
  if (find(requirement_id) == nullptr)
    throw std::invalid_argument("RequirementRegistry: unknown requirement " +
                                requirement_id);
  links_.push_back(TraceLink{std::move(requirement_id), kind,
                             std::move(artifact_id), std::move(role)});
}

const Requirement* RequirementRegistry::find(std::string_view id) const noexcept {
  const auto it = std::find_if(
      requirements_.begin(), requirements_.end(),
      [&](const Requirement& r) { return r.id == id; });
  return it == requirements_.end() ? nullptr : &*it;
}

std::vector<TraceLink> RequirementRegistry::links_for(
    std::string_view requirement_id) const {
  std::vector<TraceLink> out;
  for (const auto& l : links_)
    if (l.requirement_id == requirement_id) out.push_back(l);
  return out;
}

std::vector<std::string> RequirementRegistry::uncovered(
    std::string_view role) const {
  std::vector<std::string> out;
  for (const auto& r : requirements_) {
    const bool covered = std::any_of(
        links_.begin(), links_.end(), [&](const TraceLink& l) {
          return l.requirement_id == r.id && l.role == role;
        });
    if (!covered) out.push_back(r.id);
  }
  return out;
}

double RequirementRegistry::coverage(std::string_view role) const {
  if (requirements_.empty()) return 1.0;
  const auto gaps = uncovered(role);
  return 1.0 - static_cast<double>(gaps.size()) /
                   static_cast<double>(requirements_.size());
}

std::string RequirementRegistry::matrix() const {
  std::ostringstream os;
  os << "requirement\tcriticality\tlinks\n";
  for (const auto& r : requirements_) {
    os << r.id << '\t' << to_string(r.criticality) << '\t';
    bool first = true;
    for (const auto& l : links_) {
      if (l.requirement_id != r.id) continue;
      if (!first) os << "; ";
      os << l.role << ":" << to_string(l.artifact_kind) << "/"
         << l.artifact_id;
      first = false;
    }
    if (first) os << "(none)";
    os << '\n';
  }
  return os.str();
}

}  // namespace sx::trace
