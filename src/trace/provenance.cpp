#include "trace/provenance.hpp"

#include <sstream>

namespace sx::trace {

std::string dataset_fingerprint(const dl::Dataset& ds) {
  util::Sha256 h;
  h.update(std::to_string(ds.samples.size()));
  h.update("|");
  h.update(std::to_string(ds.num_classes));
  for (const auto& s : ds.samples) {
    h.update(std::to_string(s.label));
    const auto d = s.input.data();
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(d.data()),
        d.size() * sizeof(float)));
  }
  return util::to_hex(h.finish());
}

std::string ModelCard::to_text() const {
  std::ostringstream os;
  os << "model-card:\n"
     << "  name: " << name << "\n"
     << "  version: " << version << "\n"
     << "  model-hash: " << model_hash << "\n"
     << "  training-dataset: " << training_dataset << "\n"
     << "  training-config: " << training_config << "\n"
     << "  validation-accuracy: " << validation_accuracy << "\n"
     << "  intended-use: " << intended_use << "\n";
  return os.str();
}

ModelCard make_model_card(std::string name, std::string version,
                          const dl::Model& model,
                          const dl::Dataset& training_data,
                          std::string training_config,
                          double validation_accuracy,
                          std::string intended_use) {
  ModelCard card;
  card.name = std::move(name);
  card.version = std::move(version);
  card.model_hash = util::to_hex(model.provenance_hash());
  card.training_dataset = dataset_fingerprint(training_data);
  card.training_config = std::move(training_config);
  card.validation_accuracy = validation_accuracy;
  card.intended_use = std::move(intended_use);
  return card;
}

Status verify_model_integrity(const ModelCard& card, const dl::Model& model) {
  return util::to_hex(model.provenance_hash()) == card.model_hash
             ? Status::kOk
             : Status::kIntegrityFault;
}

}  // namespace sx::trace
