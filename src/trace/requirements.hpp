// Requirement registry and trace links (pillar 1: end-to-end traceability).
//
// FUSA standards demand that every safety requirement be traceable to the
// artifacts implementing and verifying it. This registry is the machine-
// checkable core of that argument: requirements link to evidence artifacts
// (models by provenance hash, datasets by fingerprint, tests and analyses by
// id), and coverage queries expose untraced requirements.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sx::trace {

/// Criticality levels, an ASIL/SIL-style ladder (QM = no safety claim).
enum class Criticality : std::uint8_t { kQM = 0, kSil1, kSil2, kSil3, kSil4 };

std::string_view to_string(Criticality c) noexcept;

enum class ArtifactKind : std::uint8_t {
  kModel,      ///< a trained model (identified by provenance hash)
  kDataset,    ///< a dataset (identified by fingerprint)
  kTest,       ///< a verification test
  kAnalysis,   ///< a timing / robustness / coverage analysis
  kComponent,  ///< a software component (pattern, supervisor, engine)
};

std::string_view to_string(ArtifactKind k) noexcept;

struct Requirement {
  std::string id;    ///< e.g. "REQ-PER-003"
  std::string text;  ///< the normative statement
  Criticality criticality = Criticality::kQM;
};

struct TraceLink {
  std::string requirement_id;
  ArtifactKind artifact_kind{};
  std::string artifact_id;  ///< hash, fingerprint or symbolic name
  std::string role;         ///< "implements", "verifies", "analyzes"
};

class RequirementRegistry {
 public:
  /// Adds a requirement; ids must be unique (throws on duplicate).
  void add(Requirement req);

  /// Links a requirement to an artifact; the requirement must exist.
  void link(std::string requirement_id, ArtifactKind kind,
            std::string artifact_id, std::string role);

  const Requirement* find(std::string_view id) const noexcept;
  std::size_t size() const noexcept { return requirements_.size(); }
  const std::vector<Requirement>& requirements() const noexcept {
    return requirements_;
  }
  const std::vector<TraceLink>& links() const noexcept { return links_; }

  /// Links attached to one requirement.
  std::vector<TraceLink> links_for(std::string_view requirement_id) const;

  /// Requirements lacking a link with the given role ("verifies" gives the
  /// classic verification-coverage gap list).
  std::vector<std::string> uncovered(std::string_view role) const;

  /// Fraction of requirements having at least one link with `role`.
  double coverage(std::string_view role) const;

  /// Tab-separated traceability matrix (requirement per row).
  std::string matrix() const;

 private:
  std::vector<Requirement> requirements_;
  std::vector<TraceLink> links_;
};

}  // namespace sx::trace
