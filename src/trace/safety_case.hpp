// GSN-style safety case (Goal Structuring Notation, simplified).
//
// Goals decompose via strategies into sub-goals; leaf goals are discharged
// by solutions (evidence artifacts). The completeness check — every leaf
// goal has at least one solution — is the machine-checkable core of "prove
// correct operation in accordance to certification standards".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sx::trace {

enum class NodeKind : std::uint8_t { kGoal, kStrategy, kSolution };

struct CaseNode {
  NodeKind kind = NodeKind::kGoal;
  std::string id;
  std::string text;
  std::vector<std::size_t> children;  // indices into the node pool
  /// Quantified solutions (fleet evidence plane) carry a measured value —
  /// e.g. a Clopper–Pearson upper bound on the SDC rate per demand — so
  /// the safety case states *how much* evidence supports a claim, not
  /// just that some evidence exists.
  bool quantified = false;
  double value = 0.0;
  std::string unit;  ///< e.g. "sdc/demand @ 0.99 one-sided"
};

class SafetyCase {
 public:
  /// Creates the root goal; returns its node index.
  std::size_t set_root_goal(std::string id, std::string text);

  std::size_t add_goal(std::size_t parent, std::string id, std::string text);
  std::size_t add_strategy(std::size_t parent, std::string id,
                           std::string text);
  std::size_t add_solution(std::size_t parent, std::string id,
                           std::string text);
  /// Solution carrying a measured numeric claim (see CaseNode::quantified).
  /// Rendered as `text [= value unit]` by to_text()/to_dot().
  std::size_t add_quantified_solution(std::size_t parent, std::string id,
                                      std::string text, double value,
                                      std::string unit);

  std::size_t size() const noexcept { return nodes_.size(); }
  const CaseNode& node(std::size_t i) const { return nodes_.at(i); }

  /// Leaf goals (goals with no goal descendants) that carry no evidence —
  /// the gaps an assessor would flag.
  std::vector<std::string> undischarged_goals() const;

  bool complete() const { return undischarged_goals().empty(); }

  /// Indented text rendering of the argument tree.
  std::string to_text() const;

  /// Graphviz DOT rendering (GSN shapes: goals as boxes, strategies as
  /// parallelograms, solutions as circles).
  std::string to_dot() const;

 private:
  std::size_t add_node(std::size_t parent, NodeKind kind, std::string id,
                       std::string text);
  bool has_solution_beneath(std::size_t idx) const;
  bool has_goal_beneath(std::size_t idx) const;
  void render(std::size_t idx, std::size_t depth, std::string& out) const;

  std::vector<CaseNode> nodes_;
  bool has_root_ = false;
};

}  // namespace sx::trace
