// Owning tensor (offline/training use) and non-owning view (runtime use).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace sx::tensor {

/// Non-owning tensor view: a float span with a shape. Used on the runtime
/// path where the storage comes from an Arena.
struct TensorView {
  std::span<float> data;
  Shape shape;

  constexpr bool valid() const noexcept {
    return data.size() == shape.size();
  }

  float& at(std::size_t i) noexcept { return data[i]; }
  float at(std::size_t i) const noexcept { return data[i]; }
  float& at(std::size_t r, std::size_t c) noexcept {
    return data[shape.index(r, c)];
  }
  float at(std::size_t r, std::size_t c) const noexcept {
    return data[shape.index(r, c)];
  }
  float& at(std::size_t ch, std::size_t h, std::size_t w) noexcept {
    return data[shape.index(ch, h, w)];
  }
  float at(std::size_t ch, std::size_t h, std::size_t w) const noexcept {
    return data[shape.index(ch, h, w)];
  }
};

/// Read-only counterpart of TensorView.
struct ConstTensorView {
  std::span<const float> data;
  Shape shape;

  ConstTensorView() = default;
  ConstTensorView(std::span<const float> d, Shape s) : data(d), shape(s) {}
  /// Implicit widening from a mutable view.
  ConstTensorView(const TensorView& v) : data(v.data), shape(v.shape) {}

  constexpr bool valid() const noexcept {
    return data.size() == shape.size();
  }

  float at(std::size_t i) const noexcept { return data[i]; }
  float at(std::size_t r, std::size_t c) const noexcept {
    return data[shape.index(r, c)];
  }
  float at(std::size_t ch, std::size_t h, std::size_t w) const noexcept {
    return data[shape.index(ch, h, w)];
  }
};

/// Owning tensor backed by a std::vector. Used offline: datasets, training,
/// model parameters at build time.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape) : shape_(shape), data_(shape.size(), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {
    if (data_.size() != shape_.size())
      throw std::invalid_argument("Tensor: data size != shape size");
  }

  const Shape& shape() const noexcept { return shape_; }
  std::size_t size() const noexcept { return data_.size(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& at(std::size_t i) { return data_.at(i); }
  float at(std::size_t i) const { return data_.at(i); }
  float& at(std::size_t r, std::size_t c) {
    return data_[shape_.index(r, c)];
  }
  float at(std::size_t r, std::size_t c) const {
    return data_[shape_.index(r, c)];
  }
  float& at(std::size_t ch, std::size_t h, std::size_t w) {
    return data_[shape_.index(ch, h, w)];
  }
  float at(std::size_t ch, std::size_t h, std::size_t w) const {
    return data_[shape_.index(ch, h, w)];
  }

  TensorView view() noexcept { return {data_, shape_}; }
  ConstTensorView view() const noexcept { return {data_, shape_}; }

  void fill(float v) noexcept {
    for (auto& x : data_) x = v;
  }

  /// He/Kaiming-style normal initialization (deterministic given the RNG).
  void init_he(util::Xoshiro256& rng, std::size_t fan_in) {
    const double std = std::sqrt(2.0 / static_cast<double>(fan_in ? fan_in : 1));
    for (auto& x : data_) x = static_cast<float>(rng.gaussian(0.0, std));
  }

  void init_uniform(util::Xoshiro256& rng, float lo, float hi) {
    for (auto& x : data_) x = static_cast<float>(rng.uniform(lo, hi));
  }

  bool operator==(const Tensor& o) const noexcept {
    return shape_ == o.shape_ && data_ == o.data_;
  }

 private:
  Shape shape_{};
  std::vector<float> data_{};
};

}  // namespace sx::tensor
