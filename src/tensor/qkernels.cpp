#include "tensor/qkernels.hpp"

#include "tensor/qkernels_detail.hpp"

namespace sx::tensor::qkernels {

void qmatvec_blocked(const std::int8_t* w, std::size_t rows,
                     std::size_t cols, const std::int8_t* x,
                     const Requant& rq, std::int8_t* out,
                     std::uint64_t* sat) noexcept {
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    // Eight independent int32 chains; chain r+i runs the exact reference
    // order acc = 0; acc += w[(r+i)*cols + c] * x[c] for ascending c. The
    // chains are independent in the reference too, so interleaving them is
    // order-preserving per output.
    const std::int8_t* w0 = w + (r + 0) * cols;
    const std::int8_t* w1 = w + (r + 1) * cols;
    const std::int8_t* w2 = w + (r + 2) * cols;
    const std::int8_t* w3 = w + (r + 3) * cols;
    const std::int8_t* w4 = w + (r + 4) * cols;
    const std::int8_t* w5 = w + (r + 5) * cols;
    const std::int8_t* w6 = w + (r + 6) * cols;
    const std::int8_t* w7 = w + (r + 7) * cols;
    std::int32_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    std::int32_t a4 = 0, a5 = 0, a6 = 0, a7 = 0;
    // 4x column unroll: each accumulator still sees its columns in strict
    // ascending order; the unroll only amortizes loop control.
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      for (std::size_t u = 0; u < 4; ++u) {
        const std::int32_t xv = x[c + u];
        a0 += static_cast<std::int32_t>(w0[c + u]) * xv;
        a1 += static_cast<std::int32_t>(w1[c + u]) * xv;
        a2 += static_cast<std::int32_t>(w2[c + u]) * xv;
        a3 += static_cast<std::int32_t>(w3[c + u]) * xv;
        a4 += static_cast<std::int32_t>(w4[c + u]) * xv;
        a5 += static_cast<std::int32_t>(w5[c + u]) * xv;
        a6 += static_cast<std::int32_t>(w6[c + u]) * xv;
        a7 += static_cast<std::int32_t>(w7[c + u]) * xv;
      }
    }
    for (; c < cols; ++c) {
      const std::int32_t xv = x[c];
      a0 += static_cast<std::int32_t>(w0[c]) * xv;
      a1 += static_cast<std::int32_t>(w1[c]) * xv;
      a2 += static_cast<std::int32_t>(w2[c]) * xv;
      a3 += static_cast<std::int32_t>(w3[c]) * xv;
      a4 += static_cast<std::int32_t>(w4[c]) * xv;
      a5 += static_cast<std::int32_t>(w5[c]) * xv;
      a6 += static_cast<std::int32_t>(w6[c]) * xv;
      a7 += static_cast<std::int32_t>(w7[c]) * xv;
    }
    out[r + 0] = requantize(a0, r + 0, rq, sat);
    out[r + 1] = requantize(a1, r + 1, rq, sat);
    out[r + 2] = requantize(a2, r + 2, rq, sat);
    out[r + 3] = requantize(a3, r + 3, rq, sat);
    out[r + 4] = requantize(a4, r + 4, rq, sat);
    out[r + 5] = requantize(a5, r + 5, rq, sat);
    out[r + 6] = requantize(a6, r + 6, rq, sat);
    out[r + 7] = requantize(a7, r + 7, rq, sat);
  }
  for (; r < rows; ++r) {  // tail rows: plain reference loop
    const std::int8_t* wr = w + r * cols;
    std::int32_t acc = 0;
    for (std::size_t c = 0; c < cols; ++c)
      acc += static_cast<std::int32_t>(wr[c]) *
             static_cast<std::int32_t>(x[c]);
    out[r] = requantize(acc, r, rq, sat);
  }
}

std::size_t qdense_panel_bytes(std::size_t rows, std::size_t cols) noexcept {
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  std::size_t bytes = full * align_up_bytes(kRowBlock * cols);
  if (tail != 0) bytes += align_up_bytes(tail * cols);
  return bytes;
}

void pack_qdense_panel(const std::int8_t* w, std::size_t rows,
                       std::size_t cols, std::int8_t* panel) noexcept {
  const std::size_t total = qdense_panel_bytes(rows, cols);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0;  // padding
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  const std::size_t full_stride = align_up_bytes(kRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    std::int8_t* blk = panel + b * full_stride;
    const std::int8_t* wb = w + b * kRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < kRowBlock; ++i)
        blk[c * kRowBlock + i] = wb[i * cols + c];
  }
  if (tail != 0) {
    std::int8_t* blk = panel + full * full_stride;
    const std::int8_t* wb = w + full * kRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < tail; ++i)
        blk[c * tail + i] = wb[i * cols + c];
  }
}

void qmatvec_packed(const std::int8_t* panel, std::size_t rows,
                    std::size_t cols, const std::int8_t* x,
                    const Requant& rq, std::int8_t* out,
                    std::uint64_t* sat) noexcept {
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  const std::size_t full_stride = align_up_bytes(kRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const std::int8_t* blk = panel + b * full_stride;
    const std::size_t r = b * kRowBlock;
    // One contiguous 8-byte lane per column replaces eight strided row
    // streams. Each chain still sums its columns in ascending order; int32
    // accumulation is exact, so the layout change cannot alter any value.
    std::int32_t acc[kRowBlock] = {0, 0, 0, 0, 0, 0, 0, 0};
    const std::int8_t* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kRowBlock) {
      const std::int32_t xv = x[c];
      for (std::size_t i = 0; i < kRowBlock; ++i)
        acc[i] += static_cast<std::int32_t>(lane[i]) * xv;
    }
    for (std::size_t i = 0; i < kRowBlock; ++i)
      out[r + i] = requantize(acc[i], r + i, rq, sat);
  }
  if (tail != 0) {
    const std::int8_t* blk = panel + full * full_stride;
    const std::size_t r0 = full * kRowBlock;
    std::int32_t acc[kRowBlock - 1] = {};
    for (std::size_t c = 0; c < cols; ++c) {
      const std::int32_t xv = x[c];
      const std::int8_t* lane = blk + c * tail;
      for (std::size_t i = 0; i < tail; ++i)
        acc[i] += static_cast<std::int32_t>(lane[i]) * xv;
    }
    for (std::size_t i = 0; i < tail; ++i)
      out[r0 + i] = requantize(acc[i], r0 + i, rq, sat);
  }
}

void im2col_gather_i8(const std::int8_t* in, const std::uint32_t* in_idx,
                      std::size_t entries, std::int8_t* col) noexcept {
  for (std::size_t e = 0; e < entries; ++e) col[e] = in[in_idx[e]];
}

void qconv2d_im2col(const std::int8_t* wt, const kernels::ConvTables& t,
                    const std::int8_t* col, const Requant& rq,
                    std::int8_t* out, std::uint64_t* sat) noexcept {
  detail::qconv_tail_sweep(wt, t, col, rq, out, 0, sat);
}

void qconv2d_im2col_live(const std::int8_t* /*panel*/, const std::int8_t* wt,
                         const kernels::ConvTables& t, const std::int8_t* col,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept {
  qconv2d_im2col(wt, t, col, rq, out, sat);
}

std::size_t qconv_panel_bytes(std::size_t out_c,
                              std::size_t patch) noexcept {
  return (out_c / kQConvLanes) * align_up_bytes(patch * kQConvLanes);
}

void pack_qconv_panel(const std::int8_t* wt, std::size_t out_c,
                      std::size_t patch, std::int8_t* panel) noexcept {
  const std::size_t total = qconv_panel_bytes(out_c, patch);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0;  // padding
  const std::size_t gstride = align_up_bytes(patch * kQConvLanes);
  for (std::size_t g = 0; g < out_c / kQConvLanes; ++g) {
    std::int8_t* gp = panel + g * gstride;
    for (std::size_t j = 0; j < patch; ++j)
      for (std::size_t i = 0; i < kQConvLanes; ++i)
        gp[j * kQConvLanes + i] = wt[(g * kQConvLanes + i) * patch + j];
  }
}

void qconv2d_im2col_packed(const std::int8_t* panel, const std::int8_t* wt,
                           const kernels::ConvTables& t,
                           const std::int8_t* col, const Requant& rq,
                           std::int8_t* out, std::uint64_t* sat) noexcept {
  const std::size_t gstride = align_up_bytes(t.patch * kQConvLanes);
  const std::size_t groups = t.out_c / kQConvLanes;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::int8_t* gp = panel + g * gstride;
    const std::size_t oc0 = g * kQConvLanes;
    std::int8_t* o[kQConvLanes];
    for (std::size_t i = 0; i < kQConvLanes; ++i)
      o[i] = out + (oc0 + i) * t.opix;
    for (std::size_t p = 0; p < t.opix; ++p) {
      const std::size_t base = t.pix_off[p];
      const std::size_t taps = t.pix_off[p + 1] - base;
      // Eight channels of the group share each broadcast column value;
      // every tap folds into its own int32 lane only, so per-channel tap
      // order is exactly the reference order.
      std::int32_t acc[kQConvLanes] = {};
      const std::int8_t* c = col + base;
      if (taps == t.patch) {
        const std::int8_t* lane = gp;
        for (std::size_t j = 0; j < taps; ++j, lane += kQConvLanes) {
          const std::int32_t v = c[j];
          for (std::size_t i = 0; i < kQConvLanes; ++i)
            acc[i] += static_cast<std::int32_t>(lane[i]) * v;
        }
      } else {
        const std::uint32_t* wo = t.w_ofs + base;
        for (std::size_t j = 0; j < taps; ++j) {
          const std::int32_t v = c[j];
          const std::int8_t* lane = gp + wo[j] * kQConvLanes;
          for (std::size_t i = 0; i < kQConvLanes; ++i)
            acc[i] += static_cast<std::int32_t>(lane[i]) * v;
        }
      }
      for (std::size_t i = 0; i < kQConvLanes; ++i)
        o[i][p] = requantize(acc[i], oc0 + i, rq, sat);
    }
  }
  // Tail channels (out_c % kQConvLanes) read the live weights through the
  // scalar sweeps, exactly like the unpacked path.
  detail::qconv_tail_sweep(wt, t, col, rq, out, groups * kQConvLanes, sat);
}

}  // namespace sx::tensor::qkernels
