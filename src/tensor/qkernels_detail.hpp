// Internal helpers shared by the int8 kernel translation units
// (qkernels.cpp and qkernels_wide.cpp). Everything here preserves the
// reference per-output accumulation order — see the header comment of
// tensor/qkernels.hpp for the contract. Not part of the public API.
#pragma once

#include "tensor/qkernels.hpp"

namespace sx::tensor::qkernels::detail {

/// One kOc-channel sweep over every output pixel, sharing the gathered
/// int8 column. Interior pixels (full patch, w_ofs is the identity) take
/// the contiguous-weight fast path; clipped border pixels indirect through
/// w_ofs. Both walk the taps in table order == reference order (the table
/// construction in tensor/kernels.cpp mirrors the dl/quant.cpp skip).
template <std::size_t kOc>
inline void qconv_oc_sweep(const std::int8_t* wt,
                           const kernels::ConvTables& t,
                           const std::int8_t* col, const Requant& rq,
                           std::int8_t* out, std::size_t oc0,
                           std::uint64_t* sat) noexcept {
  const std::int8_t* w[kOc];
  for (std::size_t i = 0; i < kOc; ++i) w[i] = wt + (oc0 + i) * t.patch;
  std::int8_t* o[kOc];
  for (std::size_t i = 0; i < kOc; ++i) o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    std::int32_t acc[kOc] = {};
    const std::int8_t* c = col + base;
    if (taps == t.patch) {
      // 4x tap unroll on the contiguous fast path (interior pixels are the
      // overwhelming majority); tap order per channel stays ascending.
      std::size_t j = 0;
      for (; j + 4 <= taps; j += 4) {
        for (std::size_t u = 0; u < 4; ++u) {
          const std::int32_t v = c[j + u];
          for (std::size_t i = 0; i < kOc; ++i)
            acc[i] += static_cast<std::int32_t>(w[i][j + u]) * v;
        }
      }
      for (; j < taps; ++j) {
        const std::int32_t v = c[j];
        for (std::size_t i = 0; i < kOc; ++i)
          acc[i] += static_cast<std::int32_t>(w[i][j]) * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const std::int32_t v = c[j];
        const std::size_t k = wo[j];
        for (std::size_t i = 0; i < kOc; ++i)
          acc[i] += static_cast<std::int32_t>(w[i][k]) * v;
      }
    }
    for (std::size_t i = 0; i < kOc; ++i)
      o[i][p] = requantize(acc[i], oc0 + i, rq, sat);
  }
}

/// Sweeps output channels oc0..out_c over the live weights: full
/// kOcBlock-channel sweeps first, then the 1..7-channel remainder. Used as
/// the whole unpacked conv kernel (oc0 == 0) and as the tail of every
/// packed lane-panel variant (8-lane and 16-lane wide alike — a wide tail
/// can be up to 15 channels, which this covers as 8 + remainder).
inline void qconv_tail_sweep(const std::int8_t* wt,
                             const kernels::ConvTables& t,
                             const std::int8_t* col, const Requant& rq,
                             std::int8_t* out, std::size_t oc0,
                             std::uint64_t* sat) noexcept {
  std::size_t oc = oc0;
  for (; oc + kOcBlock <= t.out_c; oc += kOcBlock)
    qconv_oc_sweep<kOcBlock>(wt, t, col, rq, out, oc, sat);
  switch (t.out_c - oc) {
    case 1: qconv_oc_sweep<1>(wt, t, col, rq, out, oc, sat); break;
    case 2: qconv_oc_sweep<2>(wt, t, col, rq, out, oc, sat); break;
    case 3: qconv_oc_sweep<3>(wt, t, col, rq, out, oc, sat); break;
    case 4: qconv_oc_sweep<4>(wt, t, col, rq, out, oc, sat); break;
    case 5: qconv_oc_sweep<5>(wt, t, col, rq, out, oc, sat); break;
    case 6: qconv_oc_sweep<6>(wt, t, col, rq, out, oc, sat); break;
    case 7: qconv_oc_sweep<7>(wt, t, col, rq, out, oc, sat); break;
    default: break;
  }
}

}  // namespace sx::tensor::qkernels::detail
