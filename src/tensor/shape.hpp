// Tensor shapes with static rank capacity (no heap allocation).
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>

namespace sx::tensor {

/// Shape of a tensor; rank 0 (scalar) up to 4 (N,C,H,W).
///
/// Stored inline so shapes can live on the FUSA runtime path without
/// allocation. Dimensions are sizes (>= 1); rank-0 means scalar with one
/// element.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  constexpr Shape() noexcept = default;

  Shape(std::initializer_list<std::size_t> dims) {
    if (dims.size() > kMaxRank)
      throw std::invalid_argument("Shape: rank > kMaxRank");
    rank_ = dims.size();
    std::size_t i = 0;
    for (std::size_t d : dims) {
      if (d == 0) throw std::invalid_argument("Shape: zero dimension");
      dims_[i++] = d;
    }
  }

  static Shape scalar() noexcept { return Shape{}; }
  static Shape vec(std::size_t n) { return Shape{n}; }
  static Shape mat(std::size_t r, std::size_t c) { return Shape{r, c}; }
  /// Channel-major image: C x H x W.
  static Shape chw(std::size_t c, std::size_t h, std::size_t w) {
    return Shape{c, h, w};
  }

  constexpr std::size_t rank() const noexcept { return rank_; }

  constexpr std::size_t dim(std::size_t i) const noexcept {
    return i < rank_ ? dims_[i] : 1;
  }

  constexpr std::size_t operator[](std::size_t i) const noexcept {
    return dim(i);
  }

  /// Total number of elements.
  constexpr std::size_t size() const noexcept {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  constexpr bool operator==(const Shape& o) const noexcept {
    if (rank_ != o.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i)
      if (dims_[i] != o.dims_[i]) return false;
    return true;
  }
  constexpr bool operator!=(const Shape& o) const noexcept {
    return !(*this == o);
  }

  /// Row-major linear index for a rank-2 shape.
  constexpr std::size_t index(std::size_t r, std::size_t c) const noexcept {
    return r * dim(1) + c;
  }

  /// Row-major linear index for a rank-3 (C,H,W) shape.
  constexpr std::size_t index(std::size_t c, std::size_t h,
                              std::size_t w) const noexcept {
    return (c * dim(1) + h) * dim(2) + w;
  }

  std::string to_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += "x";
      s += std::to_string(dims_[i]);
    }
    s += "]";
    return s;
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{1, 1, 1, 1};
  std::size_t rank_ = 0;
};

}  // namespace sx::tensor
