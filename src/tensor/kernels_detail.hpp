// Internal helpers shared by the float kernel translation units
// (kernels.cpp and kernels_wide.cpp). Everything here preserves the
// reference per-output accumulation order — see the header comment of
// tensor/kernels.hpp for the contract. Not part of the public API.
#pragma once

#include <cmath>

#include "tensor/kernels.hpp"

namespace sx::tensor::kernels::detail {

/// Screens a finished pre-activation accumulator (same predicate as
/// tensor::has_non_finite), applies the epilogue, stores. Returns the
/// updated ok flag rather than early-exiting: on a detected fault the
/// engine discards the whole buffer, and finishing the sweep keeps the
/// kernel's timing data-independent.
inline bool finish(float acc, float* out, Epilogue ep, bool check,
                   bool ok) noexcept {
  if (check && !std::isfinite(acc)) ok = false;
  *out = apply_epilogue(acc, ep);
  return ok;
}

/// One kOc sweep over every output pixel, sharing the gathered column.
/// Interior pixels (full patch, w_ofs is the identity) take the
/// contiguous-weight fast path; clipped border pixels indirect through
/// w_ofs. Both walk the taps in table order == reference order. Used for
/// the live-weight conv kernel and for the tail channels of every packed
/// lane-panel variant (4-lane and wide alike).
template <std::size_t kOc>
inline bool conv_oc_sweep(const float* wt, const float* bias,
                          const ConvTables& t, const float* col, float* out,
                          std::size_t oc0, Epilogue ep, bool check,
                          bool ok) noexcept {
  const float* w[kOc];
  for (std::size_t i = 0; i < kOc; ++i) w[i] = wt + (oc0 + i) * t.patch;
  float* o[kOc];
  for (std::size_t i = 0; i < kOc; ++i) o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    float acc[kOc];
    for (std::size_t i = 0; i < kOc; ++i) acc[i] = bias[oc0 + i];
    const float* c = col + base;
    if (taps == t.patch) {
      // 4x tap unroll on the contiguous fast path (interior pixels are the
      // overwhelming majority); each output channel's taps stay in strict
      // ascending order, so accumulation order is untouched.
      std::size_t j = 0;
      for (; j + 4 <= taps; j += 4) {
        for (std::size_t u = 0; u < 4; ++u) {
          const float v = c[j + u];
          for (std::size_t i = 0; i < kOc; ++i) acc[i] += w[i][j + u] * v;
        }
      }
      for (; j < taps; ++j) {
        const float v = c[j];
        for (std::size_t i = 0; i < kOc; ++i) acc[i] += w[i][j] * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const float v = c[j];
        const std::size_t k = wo[j];
        for (std::size_t i = 0; i < kOc; ++i) acc[i] += w[i][k] * v;
      }
    }
    for (std::size_t i = 0; i < kOc; ++i)
      ok = finish(acc[i], o[i] + p, ep, check, ok);
  }
  return ok;
}

/// Dispatches the 1..7-channel conv tail through the templated sweep
/// (reads live weights, exactly like the unpacked path).
inline bool conv_tail_sweep(const float* wt, const float* bias,
                            const ConvTables& t, const float* col,
                            float* out, std::size_t oc0, Epilogue ep,
                            bool check, bool ok) noexcept {
  switch (t.out_c - oc0) {
    case 1: return conv_oc_sweep<1>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 2: return conv_oc_sweep<2>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 3: return conv_oc_sweep<3>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 4: return conv_oc_sweep<4>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 5: return conv_oc_sweep<5>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 6: return conv_oc_sweep<6>(wt, bias, t, col, out, oc0, ep, check, ok);
    case 7: return conv_oc_sweep<7>(wt, bias, t, col, out, oc0, ep, check, ok);
    default: return ok;
  }
}

}  // namespace sx::tensor::kernels::detail
