// Allocation-free numeric kernels over tensor views.
//
// These are the verifiable primitives the FUSA DL library is built from:
// each is a pure function over caller-provided buffers, with explicit shape
// checking and typed status results — no hidden state, no allocation.
#pragma once

#include <span>

#include "tensor/tensor.hpp"
#include "util/status.hpp"

namespace sx::tensor {

/// out = a + b (element-wise). Shapes must match.
Status add(ConstTensorView a, ConstTensorView b, TensorView out) noexcept;

/// out = a - b (element-wise).
Status sub(ConstTensorView a, ConstTensorView b, TensorView out) noexcept;

/// out = a * b (element-wise, Hadamard).
Status mul(ConstTensorView a, ConstTensorView b, TensorView out) noexcept;

/// out = a * scalar.
Status scale(ConstTensorView a, float s, TensorView out) noexcept;

/// Dense: out[r] = sum_c w[r,c] * x[c] + b[r].  w: MxN, x: N, b: M, out: M.
Status matvec(ConstTensorView w, ConstTensorView x, ConstTensorView b,
              TensorView out) noexcept;

/// Dot product; returns 0 and sets status on mismatch.
Status dot(ConstTensorView a, ConstTensorView b, float& out) noexcept;

/// L2 norm of the whole tensor.
float l2_norm(ConstTensorView a) noexcept;

/// Sum / max / argmax over all elements.
float sum(ConstTensorView a) noexcept;
float max_value(ConstTensorView a) noexcept;
std::size_t argmax(ConstTensorView a) noexcept;

/// Numerically stable in-place softmax over a rank-1 view.
Status softmax(ConstTensorView logits, TensorView out) noexcept;

/// ReLU / leaky-ReLU.
Status relu(ConstTensorView a, TensorView out) noexcept;

/// True iff any element is NaN or Inf — the numeric-fault check the safety
/// monitor applies after every layer.
bool has_non_finite(ConstTensorView a) noexcept;

/// Copy with shape check.
Status copy(ConstTensorView src, TensorView dst) noexcept;

}  // namespace sx::tensor
