#include "tensor/ops.hpp"

#include <cmath>
#include <limits>

namespace sx::tensor {
namespace {

bool shapes_match(ConstTensorView a, ConstTensorView b,
                  const TensorView& out) noexcept {
  return a.shape == b.shape && a.shape == out.shape && a.valid() &&
         b.valid() && out.valid();
}

}  // namespace

// Element-wise loops hoist the trip count and raw base pointers into
// locals: distinct local pointers are the closest standard-C++ equivalent
// of `restrict` (the compiler can see no alias is re-derived inside the
// loop body), and none of it changes evaluation order, so outputs stay
// bitwise identical.
Status add(ConstTensorView a, ConstTensorView b, TensorView out) noexcept {
  if (!shapes_match(a, b, out)) return Status::kShapeMismatch;
  const std::size_t n = a.data.size();
  const float* pa = a.data.data();
  const float* pb = b.data.data();
  float* po = out.data.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
  return Status::kOk;
}

Status sub(ConstTensorView a, ConstTensorView b, TensorView out) noexcept {
  if (!shapes_match(a, b, out)) return Status::kShapeMismatch;
  const std::size_t n = a.data.size();
  const float* pa = a.data.data();
  const float* pb = b.data.data();
  float* po = out.data.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
  return Status::kOk;
}

Status mul(ConstTensorView a, ConstTensorView b, TensorView out) noexcept {
  if (!shapes_match(a, b, out)) return Status::kShapeMismatch;
  const std::size_t n = a.data.size();
  const float* pa = a.data.data();
  const float* pb = b.data.data();
  float* po = out.data.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return Status::kOk;
}

Status scale(ConstTensorView a, float s, TensorView out) noexcept {
  if (a.shape != out.shape || !a.valid() || !out.valid())
    return Status::kShapeMismatch;
  const std::size_t n = a.data.size();
  const float* pa = a.data.data();
  float* po = out.data.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] * s;
  return Status::kOk;
}

Status matvec(ConstTensorView w, ConstTensorView x, ConstTensorView b,
              TensorView out) noexcept {
  if (w.shape.rank() != 2 || !w.valid() || !x.valid() || !b.valid() ||
      !out.valid())
    return Status::kShapeMismatch;
  const std::size_t rows = w.shape[0];
  const std::size_t cols = w.shape[1];
  if (x.shape.size() != cols || b.shape.size() != rows ||
      out.shape.size() != rows)
    return Status::kShapeMismatch;
  // Base pointers hoisted once (local-pointer aliasing contract as above);
  // the row pointer advances instead of being recomputed from r * cols.
  // Accumulation order per output row is unchanged => bitwise identical.
  const float* wr = w.data.data();
  const float* px = x.data.data();
  const float* pb = b.data.data();
  float* po = out.data.data();
  for (std::size_t r = 0; r < rows; ++r, wr += cols) {
    float acc = pb[r];
    for (std::size_t c = 0; c < cols; ++c) acc += wr[c] * px[c];
    po[r] = acc;
  }
  return Status::kOk;
}

Status dot(ConstTensorView a, ConstTensorView b, float& out) noexcept {
  out = 0.0f;
  if (a.shape.size() != b.shape.size() || !a.valid() || !b.valid())
    return Status::kShapeMismatch;
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.data.size(); ++i) acc += a.data[i] * b.data[i];
  out = acc;
  return Status::kOk;
}

float l2_norm(ConstTensorView a) noexcept {
  float acc = 0.0f;
  for (float v : a.data) acc += v * v;
  return std::sqrt(acc);
}

float sum(ConstTensorView a) noexcept {
  float acc = 0.0f;
  for (float v : a.data) acc += v;
  return acc;
}

float max_value(ConstTensorView a) noexcept {
  float m = -std::numeric_limits<float>::infinity();
  for (float v : a.data) m = v > m ? v : m;
  return m;
}

std::size_t argmax(ConstTensorView a) noexcept {
  std::size_t best = 0;
  float m = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    if (a.data[i] > m) {
      m = a.data[i];
      best = i;
    }
  }
  return best;
}

Status softmax(ConstTensorView logits, TensorView out) noexcept {
  if (logits.shape != out.shape || !logits.valid() || !out.valid())
    return Status::kShapeMismatch;
  if (logits.data.empty()) return Status::kInvalidArgument;
  const float m = max_value(logits);
  float z = 0.0f;
  for (std::size_t i = 0; i < logits.data.size(); ++i) {
    out.data[i] = std::exp(logits.data[i] - m);
    z += out.data[i];
  }
  if (z <= 0.0f || !std::isfinite(z)) return Status::kNumericFault;
  for (auto& v : out.data) v /= z;
  return Status::kOk;
}

Status relu(ConstTensorView a, TensorView out) noexcept {
  if (a.shape != out.shape || !a.valid() || !out.valid())
    return Status::kShapeMismatch;
  const std::size_t n = a.data.size();
  const float* pa = a.data.data();
  float* po = out.data.data();
  for (std::size_t i = 0; i < n; ++i) po[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  return Status::kOk;
}

bool has_non_finite(ConstTensorView a) noexcept {
  for (float v : a.data)
    if (!std::isfinite(v)) return true;
  return false;
}

Status copy(ConstTensorView src, TensorView dst) noexcept {
  if (src.shape != dst.shape || !src.valid() || !dst.valid())
    return Status::kShapeMismatch;
  const std::size_t n = src.data.size();
  const float* ps = src.data.data();
  float* pd = dst.data.data();
  for (std::size_t i = 0; i < n; ++i) pd[i] = ps[i];
  return Status::kOk;
}

}  // namespace sx::tensor
