#include "tensor/kernels.hpp"

#include "tensor/kernels_detail.hpp"

namespace sx::tensor::kernels {

namespace {

using detail::finish;

/// Four-wide GCC/Clang vector lanes for the packed panels. Lane i only
/// ever folds into accumulator lane i — vertical mul/add, no horizontal
/// reduction, and SSE has no FMA contraction to fuse the pair — so each
/// output row still sums its columns in exact reference order: the SIMD
/// here is an instruction-level-parallelism transform, not a numerical
/// one (tensor_kernels_test proves bitwise identity).
typedef float v4sf __attribute__((vector_size(16)));

inline v4sf v4_load(const float* p) noexcept {
  v4sf v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

bool matvec_blocked(const float* w, const float* bias, std::size_t rows,
                    std::size_t cols, const float* x, float* out,
                    Epilogue ep, bool check) noexcept {
  bool ok = true;
  std::size_t r = 0;
  for (; r + kRowBlock <= rows; r += kRowBlock) {
    // Eight independent accumulation chains; each chain r+i runs the exact
    // reference order acc = b[r+i]; acc += w[(r+i)*cols + c] * x[c] for
    // ascending c. The chains are independent in the reference too, so
    // interleaving them is order-preserving per output.
    const float* w0 = w + (r + 0) * cols;
    const float* w1 = w + (r + 1) * cols;
    const float* w2 = w + (r + 2) * cols;
    const float* w3 = w + (r + 3) * cols;
    const float* w4 = w + (r + 4) * cols;
    const float* w5 = w + (r + 5) * cols;
    const float* w6 = w + (r + 6) * cols;
    const float* w7 = w + (r + 7) * cols;
    float a0 = bias[r + 0], a1 = bias[r + 1], a2 = bias[r + 2];
    float a3 = bias[r + 3], a4 = bias[r + 4], a5 = bias[r + 5];
    float a6 = bias[r + 6], a7 = bias[r + 7];
    // 4x column unroll: each accumulator still sees its columns in strict
    // ascending order (c, c+1, c+2, c+3), so per-output accumulation order
    // is untouched; the unroll only amortizes loop control.
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      for (std::size_t u = 0; u < 4; ++u) {
        const float xv = x[c + u];
        a0 += w0[c + u] * xv;
        a1 += w1[c + u] * xv;
        a2 += w2[c + u] * xv;
        a3 += w3[c + u] * xv;
        a4 += w4[c + u] * xv;
        a5 += w5[c + u] * xv;
        a6 += w6[c + u] * xv;
        a7 += w7[c + u] * xv;
      }
    }
    for (; c < cols; ++c) {
      const float xv = x[c];
      a0 += w0[c] * xv;
      a1 += w1[c] * xv;
      a2 += w2[c] * xv;
      a3 += w3[c] * xv;
      a4 += w4[c] * xv;
      a5 += w5[c] * xv;
      a6 += w6[c] * xv;
      a7 += w7[c] * xv;
    }
    ok = finish(a0, out + r + 0, ep, check, ok);
    ok = finish(a1, out + r + 1, ep, check, ok);
    ok = finish(a2, out + r + 2, ep, check, ok);
    ok = finish(a3, out + r + 3, ep, check, ok);
    ok = finish(a4, out + r + 4, ep, check, ok);
    ok = finish(a5, out + r + 5, ep, check, ok);
    ok = finish(a6, out + r + 6, ep, check, ok);
    ok = finish(a7, out + r + 7, ep, check, ok);
  }
  for (; r < rows; ++r) {  // tail rows: plain reference loop
    const float* wr = w + r * cols;
    float acc = bias[r];
    for (std::size_t c = 0; c < cols; ++c) acc += wr[c] * x[c];
    ok = finish(acc, out + r, ep, check, ok);
  }
  return ok;
}

std::size_t dense_panel_floats(std::size_t rows, std::size_t cols) noexcept {
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  std::size_t floats = full * align_up(kRowBlock * cols);
  if (tail != 0) floats += align_up(tail * cols);
  return floats;
}

void pack_dense_panel(const float* w, std::size_t rows, std::size_t cols,
                      float* panel) noexcept {
  const std::size_t total = dense_panel_floats(rows, cols);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0.0f;  // padding
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  const std::size_t full_stride = align_up(kRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    float* blk = panel + b * full_stride;
    const float* wb = w + b * kRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < kRowBlock; ++i)
        blk[c * kRowBlock + i] = wb[i * cols + c];
  }
  if (tail != 0) {
    float* blk = panel + full * full_stride;
    const float* wb = w + full * kRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < tail; ++i)
        blk[c * tail + i] = wb[i * cols + c];
  }
}

bool matvec_packed(const float* panel, const float* bias, std::size_t rows,
                   std::size_t cols, const float* x, float* out,
                   Epilogue ep, bool check) noexcept {
  bool ok = true;
  const std::size_t full = rows / kRowBlock;
  const std::size_t tail = rows % kRowBlock;
  const std::size_t full_stride = align_up(kRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const float* blk = panel + b * full_stride;
    const std::size_t r = b * kRowBlock;
    // One contiguous 8-float lane per column: a single unit-stride panel
    // stream replaces the eight strided row streams of the live-weight
    // kernel, and the two v4sf accumulators keep all eight chains in
    // vector registers (see the v4sf note above for why this stays
    // bit-identical to the reference order).
    v4sf lo = v4_load(bias + r);
    v4sf hi = v4_load(bias + r + 4);
    const float* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kRowBlock) {
      const float xv = x[c];
      const v4sf xv4 = {xv, xv, xv, xv};
      lo += v4_load(lane) * xv4;
      hi += v4_load(lane + 4) * xv4;
    }
    float acc[kRowBlock];
    __builtin_memcpy(acc, &lo, sizeof lo);
    __builtin_memcpy(acc + 4, &hi, sizeof hi);
    for (std::size_t i = 0; i < kRowBlock; ++i)
      ok = finish(acc[i], out + r + i, ep, check, ok);
  }
  if (tail != 0) {
    const float* blk = panel + full * full_stride;
    const std::size_t r0 = full * kRowBlock;
    float acc[kRowBlock - 1];
    for (std::size_t i = 0; i < tail; ++i) acc[i] = bias[r0 + i];
    for (std::size_t c = 0; c < cols; ++c) {
      const float xv = x[c];
      const float* lane = blk + c * tail;
      for (std::size_t i = 0; i < tail; ++i) acc[i] += lane[i] * xv;
    }
    for (std::size_t i = 0; i < tail; ++i)
      ok = finish(acc[i], out + r0 + i, ep, check, ok);
  }
  return ok;
}

std::size_t im2col_entries(const Conv2dGeom& g) noexcept {
  std::size_t entries = 0;
  const std::size_t oh = g.out_h(), ow = g.out_w();
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      std::size_t taps = 0;
      for (std::size_t ky = 0; ky < g.k; ++ky) {
        const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy * g.stride) +
                                  static_cast<std::ptrdiff_t>(ky) -
                                  static_cast<std::ptrdiff_t>(g.pad);
        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
        for (std::size_t kx = 0; kx < g.k; ++kx) {
          const std::ptrdiff_t ix =
              static_cast<std::ptrdiff_t>(ox * g.stride) +
              static_cast<std::ptrdiff_t>(kx) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
          ++taps;
        }
      }
      entries += g.in_c * taps;
    }
  }
  return entries;
}

void build_im2col_tables(const Conv2dGeom& g, std::uint32_t* pix_off,
                         std::uint32_t* in_idx,
                         std::uint32_t* w_ofs) noexcept {
  const std::size_t oh = g.out_h(), ow = g.out_w();
  std::size_t e = 0, p = 0;
  for (std::size_t oy = 0; oy < oh; ++oy) {
    for (std::size_t ox = 0; ox < ow; ++ox) {
      pix_off[p++] = static_cast<std::uint32_t>(e);
      // Entry order per pixel mirrors Conv2d::forward exactly:
      // ic ascending, then valid ky ascending, then valid kx ascending.
      for (std::size_t ic = 0; ic < g.in_c; ++ic) {
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride) +
              static_cast<std::ptrdiff_t>(ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.in_h)) continue;
          for (std::size_t kx = 0; kx < g.k; ++kx) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride) +
                static_cast<std::ptrdiff_t>(kx) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.in_w)) continue;
            in_idx[e] = static_cast<std::uint32_t>(
                (ic * g.in_h + static_cast<std::size_t>(iy)) * g.in_w +
                static_cast<std::size_t>(ix));
            w_ofs[e] =
                static_cast<std::uint32_t>((ic * g.k + ky) * g.k + kx);
            ++e;
          }
        }
      }
    }
  }
  pix_off[p] = static_cast<std::uint32_t>(e);
}

void im2col_gather(const float* in, const std::uint32_t* in_idx,
                   std::size_t entries, float* col) noexcept {
  for (std::size_t e = 0; e < entries; ++e) col[e] = in[in_idx[e]];
}

bool conv2d_im2col(const float* wt, const float* bias, const ConvTables& t,
                   const float* col, float* out, Epilogue ep,
                   bool check) noexcept {
  bool ok = true;
  std::size_t oc = 0;
  for (; oc + kOcBlock <= t.out_c; oc += kOcBlock)
    ok = detail::conv_oc_sweep<kOcBlock>(wt, bias, t, col, out, oc, ep,
                                         check, ok);
  return detail::conv_tail_sweep(wt, bias, t, col, out, oc, ep, check, ok);
}

bool conv2d_im2col_live(const float* /*panel*/, const float* wt,
                        const float* bias, const ConvTables& t,
                        const float* col, float* out, Epilogue ep,
                        bool check) noexcept {
  return conv2d_im2col(wt, bias, t, col, out, ep, check);
}

std::size_t conv_panel_floats(std::size_t out_c,
                              std::size_t patch) noexcept {
  return (out_c / kConvLanes) * align_up(patch * kConvLanes);
}

void pack_conv_panel(const float* wt, std::size_t out_c, std::size_t patch,
                     float* panel) noexcept {
  const std::size_t total = conv_panel_floats(out_c, patch);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0.0f;  // padding
  const std::size_t gstride = align_up(patch * kConvLanes);
  for (std::size_t g = 0; g < out_c / kConvLanes; ++g) {
    float* gp = panel + g * gstride;
    for (std::size_t j = 0; j < patch; ++j)
      for (std::size_t i = 0; i < kConvLanes; ++i)
        gp[j * kConvLanes + i] = wt[(g * kConvLanes + i) * patch + j];
  }
}

bool conv2d_im2col_packed(const float* panel, const float* wt,
                          const float* bias, const ConvTables& t,
                          const float* col, float* out, Epilogue ep,
                          bool check) noexcept {
  bool ok = true;
  const std::size_t gstride = align_up(t.patch * kConvLanes);
  const std::size_t groups = t.out_c / kConvLanes;
  for (std::size_t g = 0; g < groups; ++g) {
    const float* gp = panel + g * gstride;
    const std::size_t oc0 = g * kConvLanes;
    float* o[kConvLanes];
    for (std::size_t i = 0; i < kConvLanes; ++i)
      o[i] = out + (oc0 + i) * t.opix;
    for (std::size_t p = 0; p < t.opix; ++p) {
      const std::size_t base = t.pix_off[p];
      const std::size_t taps = t.pix_off[p + 1] - base;
      // One v4sf accumulator carries the four channels of the group;
      // every tap broadcasts the shared column value and folds into its
      // own lane only, so each channel's tap order is exactly the
      // reference order (see the v4sf note at the top of the file).
      v4sf acc = v4_load(bias + oc0);
      const float* c = col + base;
      if (taps == t.patch) {
        const float* lane = gp;
        for (std::size_t j = 0; j < taps; ++j, lane += kConvLanes) {
          const float v = c[j];
          acc += v4_load(lane) * v4sf{v, v, v, v};
        }
      } else {
        const std::uint32_t* wo = t.w_ofs + base;
        for (std::size_t j = 0; j < taps; ++j) {
          const float v = c[j];
          acc += v4_load(gp + wo[j] * kConvLanes) * v4sf{v, v, v, v};
        }
      }
      float a[kConvLanes];
      __builtin_memcpy(a, &acc, sizeof acc);
      for (std::size_t i = 0; i < kConvLanes; ++i)
        ok = finish(a[i], o[i] + p, ep, check, ok);
    }
  }
  // Tail channels (out_c % kConvLanes) read the live weights through the
  // scalar sweeps, exactly like the unpacked path.
  const std::size_t oc = groups * kConvLanes;
  return detail::conv_tail_sweep(wt, bias, t, col, out, oc, ep, check, ok);
}

}  // namespace sx::tensor::kernels
