// Deploy-time-planned int8 kernels: register-blocked int8 x int8 -> int32
// matvec/GEMM and the ragged-im2col Conv2d lowering with fused
// requantize(+ReLU) epilogues (pillar 3: the quantized deployment path).
//
// Every kernel preserves the *per-output accumulation order* of the
// reference loops in dl/quant.cpp: each output element accumulates the same
// int8 products in the same sequence into one int32 chain, and is finished
// by a requantization expression character-identical to the reference
// epilogue — so planned and reference QuantizedModel runs are bitwise
// identical (dl_quant_kernels_test proves this differentially). Because
// int32 accumulation of in-range products is exact, order preservation here
// is about keeping the overflow envelope identical to the audited reference
// loop, not about rounding.
//
//   - row blocking: kRowBlock independent int32 accumulation chains per
//     sweep break the serial dependency chain of the reference loop (ILP)
//     and stream the quantized input vector once per block;
//   - deploy-time im2col: the dtype-agnostic geometry and index tables of
//     tensor/kernels.hpp (Conv2dGeom, build_im2col_tables, ConvTables) are
//     reused verbatim — only the gather and the GEMM change element type;
//   - fused requantize epilogue: float(acc) * w_scale * in_scale + bias,
//     quantized at the layer's activation scale; an immediately following
//     int8 ReLU (out = q > 0 ? q : 0) folds into the same store. Both
//     expressions match dl/quant.cpp bit for bit;
//   - saturation counters: every requantization that clips to +/-127 is
//     counted through the caller's counter, giving the runtime measurement
//     that verify/range's static saturation-margin verdicts are
//     cross-checked against.
//
// All functions are allocation-free and operate on caller-provided buffers;
// panel sizes come from the *_bytes() planners so dl::QuantKernelPlan can
// place everything in deploy-time storage and the engine's byte arena.
// (This file is covered by sxlint's hot-path-alloc rule.)
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/kernels.hpp"

namespace sx::tensor::qkernels {

/// Output rows (Dense) and output channels (Conv2d GEMM) per
/// register-blocked sweep — eight independent int32 chains, mirroring the
/// float kernels' geometry so the same models block the same way.
inline constexpr std::size_t kRowBlock = 8;
inline constexpr std::size_t kOcBlock = 8;

/// Panel alignment: 64 bytes == one cache line.
inline constexpr std::size_t kAlignBytes = 64;

constexpr std::size_t align_up_bytes(std::size_t n) noexcept {
  return (n + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
}

/// Quantizes one float at `scale`, counting the clip into `*sat` when the
/// rounded magnitude exceeds 127. Value-identical to dl::quantize_value —
/// the expression is the reference round-half-away + clamp verbatim, with
/// the clip made observable for the saturation cross-check.
inline std::int8_t quantize_sat(float v, float scale,
                                std::uint64_t* sat) noexcept {
  const float q = v / scale;
  const float r = q >= 0.0f ? q + 0.5f : q - 0.5f;  // round half away
  // Clip in float, *before* the integer conversion: casting a float past
  // the int range is UB, and a degenerate scale or extreme accumulator
  // reaches it. The thresholds keep the reference semantics exactly —
  // trunc(r) exceeds +/-127 iff r >= 128 or r <= -128 — so every value the
  // unguarded cast handled keeps its bit pattern and saturation count
  // (NaN, previously UB, deterministically clips positive).
  if (!(r < 128.0f)) {
    if (sat != nullptr) ++*sat;
    return std::int8_t{127};
  }
  if (r <= -128.0f) {
    if (sat != nullptr) ++*sat;
    return std::int8_t{-127};
  }
  return static_cast<std::int8_t>(static_cast<int>(r));
}

/// Fused requantization parameters of one planned int8 layer. Pointer
/// members alias the QuantizedModel's live parameter storage.
struct Requant {
  const float* w_scales = nullptr;  ///< per output channel, or one entry
  bool per_channel = false;         ///< w_scales has one entry per channel
  const float* bias = nullptr;      ///< float bias (the reference epilogue
                                    ///< keeps bias in float — see quant.cpp)
  float in_scale = 1.0f;            ///< activation scale entering the layer
  float out_scale = 1.0f;           ///< activation scale after the layer
  bool relu = false;                ///< fused following int8 ReLU layer
};

/// Finishes one int32 accumulator for output channel `ch`: the reference
/// requantize expression, the optional fused ReLU, and the saturation
/// count. Bitwise identical to dl/quant.cpp's epilogue composed with its
/// ReLU layer (ReLU on int8 never re-quantizes, so fusing it after the
/// clamp is exact).
inline std::int8_t requantize(std::int32_t acc, std::size_t ch,
                              const Requant& rq, std::uint64_t* sat) noexcept {
  const float ws = rq.per_channel ? rq.w_scales[ch] : rq.w_scales[0];
  const float v =
      static_cast<float>(acc) * ws * rq.in_scale + rq.bias[ch];
  const std::int8_t q = quantize_sat(v, rq.out_scale, sat);
  return rq.relu ? (q > 0 ? q : std::int8_t{0}) : q;
}

// --------------------------------------------------------------- Dense

/// out = requant(W x) with kRowBlock-way register blocking over the live
/// row-major int8 weight matrix (rows x cols). Each output row accumulates
/// its columns in strict ascending order into one int32 chain, exactly as
/// the reference Dense loop does.
void qmatvec_blocked(const std::int8_t* w, std::size_t rows,
                     std::size_t cols, const std::int8_t* x,
                     const Requant& rq, std::int8_t* out,
                     std::uint64_t* sat) noexcept;

/// Bytes needed for the cache-line-aligned row-blocked panel of a
/// rows x cols int8 weight matrix (every block starts 64-byte aligned).
std::size_t qdense_panel_bytes(std::size_t rows, std::size_t cols) noexcept;

/// Repacks the row-major int8 weights into the panel layout: full blocks
/// of kRowBlock rows interleaved column-major-within-block
/// (panel[c * 8 + r]), the tail block interleaved at its own row count.
/// `panel` must hold qdense_panel_bytes() bytes; padding is zero-filled.
void pack_qdense_panel(const std::int8_t* w, std::size_t rows,
                       std::size_t cols, std::int8_t* panel) noexcept;

/// qmatvec_blocked over a packed panel (weights snapshot; see
/// dl::QuantKernelPlan for the staleness contract).
void qmatvec_packed(const std::int8_t* panel, std::size_t rows,
                    std::size_t cols, const std::int8_t* x,
                    const Requant& rq, std::int8_t* out,
                    std::uint64_t* sat) noexcept;

// --------------------------------------------------------------- Conv2d

/// The int8 hot-path gather: col[e] = in[in_idx[e]] over the ragged
/// deploy-time table built by kernels::build_im2col_tables (the index
/// tables are element-type-agnostic; only the gather changes dtype).
void im2col_gather_i8(const std::int8_t* in, const std::uint32_t* in_idx,
                      std::size_t entries, std::int8_t* col) noexcept;

/// out[oc * opix + p] = requant over the pixel's taps, kOcBlock output
/// channels per sweep sharing one gathered int8 column. `wt` is the live
/// int8 Conv2d weight tensor (out_c x patch, natural layout); the tables
/// are shared with the float path.
void qconv2d_im2col(const std::int8_t* wt,
                    const kernels::ConvTables& t, const std::int8_t* col,
                    const Requant& rq, std::int8_t* out,
                    std::uint64_t* sat) noexcept;

/// Output channels per lane group of a packed int8 Conv2d panel. Eight
/// int8 lanes fill the same 8 bytes a single float pair would — tap-major
/// groups keep the panel stream unit-stride.
inline constexpr std::size_t kQConvLanes = 8;

/// Bytes needed for the tap-major lane panel of an out_c x patch int8
/// Conv2d weight tensor: full kQConvLanes-channel groups only (each group
/// starts 64-byte aligned); the out_c % kQConvLanes tail channels keep
/// reading the live weights.
std::size_t qconv_panel_bytes(std::size_t out_c, std::size_t patch) noexcept;

/// Repacks the natural out_c x patch int8 layout into lane groups:
/// group g, tap j holds weights of channels g*kQConvLanes .. +7 at
/// panel[g * align_up_bytes(patch * kQConvLanes) + j * kQConvLanes + i].
void pack_qconv_panel(const std::int8_t* wt, std::size_t out_c,
                      std::size_t patch, std::int8_t* panel) noexcept;

/// qconv2d_im2col over a packed lane panel (weights snapshot; see
/// dl::QuantKernelPlan for the staleness contract). `wt` must still point
/// at the live weights — the out_c % kQConvLanes tail channels use it.
void qconv2d_im2col_packed(const std::int8_t* panel, const std::int8_t* wt,
                           const kernels::ConvTables& t,
                           const std::int8_t* col, const Requant& rq,
                           std::int8_t* out, std::uint64_t* sat) noexcept;

// ------------------------------------------------- Wide (kWide) backends
//
// Widened int8 x int8 -> int32 dot-product microkernels: 32-row Dense
// blocks and 16-channel Conv2d lane groups, each in three variants that
// compute the *identical* fixed accumulation tree — a portable scalar
// twin, a 16-byte-load AVX2-class sweep, and a 32-byte-load AVX-512-class
// sweep. One output element is always one serial int32 chain in strict
// reference order; the SIMD runs independent chains side by side
// (broadcast multiplicand, sign-extended lane loads, no partial-sum
// restructuring), so the overflow envelope matches the audited reference
// loop exactly and all variants are bitwise identical. Variant selection
// happens once at deploy time (platform::CpuProbe); on non-x86 builds the
// SIMD entry points are the scalar twin.

/// Output rows per wide Dense sweep (32 int8 lanes = one 256-bit load or
/// two 128-bit loads per column) and output channels per wide Conv2d lane
/// group (16 int8 lanes = one 128-bit load per tap).
inline constexpr std::size_t kQWideRowBlock = 32;
inline constexpr std::size_t kQWideConvLanes = 16;

/// Bytes needed for the wide row-blocked panel (blocks of kQWideRowBlock
/// rows, each 64-byte aligned; the tail block interleaved at its own row
/// count).
std::size_t qwide_dense_panel_bytes(std::size_t rows,
                                    std::size_t cols) noexcept;

/// Repacks row-major int8 weights into the wide panel layout
/// (panel[c * 32 + r] within a block); padding is zero-filled.
void pack_qwide_dense_panel(const std::int8_t* w, std::size_t rows,
                            std::size_t cols, std::int8_t* panel) noexcept;

/// qmatvec over a wide panel — portable scalar twin: 32 independent int32
/// chains per block, columns in strict ascending order. The canonical
/// tree the SIMD variants below reproduce lane for lane.
void qmatvec_wide_scalar(const std::int8_t* panel, std::size_t rows,
                         std::size_t cols, const std::int8_t* x,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept;

/// AVX2-class variant: four 8-lane int32 accumulators per block, 8-byte
/// sign-extended lane loads. Bitwise identical to the scalar twin.
void qmatvec_wide_avx2(const std::int8_t* panel, std::size_t rows,
                       std::size_t cols, const std::int8_t* x,
                       const Requant& rq, std::int8_t* out,
                       std::uint64_t* sat) noexcept;

/// AVX-512-class variant: two 16-lane int32 accumulators per block,
/// 16-byte sign-extended lane loads. Bitwise identical to the scalar twin.
void qmatvec_wide_avx512(const std::int8_t* panel, std::size_t rows,
                         std::size_t cols, const std::int8_t* x,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept;

/// Bytes needed for the wide tap-major conv lane panel: full
/// kQWideConvLanes-channel groups only; the out_c % kQWideConvLanes tail
/// channels keep reading the live weights.
std::size_t qwide_conv_panel_bytes(std::size_t out_c,
                                   std::size_t patch) noexcept;

/// Repacks the natural out_c x patch int8 layout into 16-channel
/// tap-major groups: panel[g * align_up_bytes(patch * 16) + j * 16 + i].
void pack_qwide_conv_panel(const std::int8_t* wt, std::size_t out_c,
                           std::size_t patch, std::int8_t* panel) noexcept;

/// Wide conv over the 16-channel lane panel — portable scalar twin. Tail
/// channels read the live weights via the shared scalar sweeps.
void qconv2d_im2col_wide_scalar(const std::int8_t* panel,
                                const std::int8_t* wt,
                                const kernels::ConvTables& t,
                                const std::int8_t* col, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept;

/// AVX2-class variant: two 8-lane int32 accumulators per group.
void qconv2d_im2col_wide_avx2(const std::int8_t* panel,
                              const std::int8_t* wt,
                              const kernels::ConvTables& t,
                              const std::int8_t* col, const Requant& rq,
                              std::int8_t* out, std::uint64_t* sat) noexcept;

/// AVX-512-class variant: one 16-lane int32 accumulator per group.
void qconv2d_im2col_wide_avx512(const std::int8_t* panel,
                                const std::int8_t* wt,
                                const kernels::ConvTables& t,
                                const std::int8_t* col, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept;

/// Per-step int8 kernel entry points resolved once at plan-construction
/// time so the engine hot path stays branch-free. qmatvec_blocked (live
/// weights) and qmatvec_packed / the wide variants (panel) share the
/// Dense shape; conv kernels take both the panel and the live weights
/// (panel-less steps pass panel == nullptr and use qconv2d_im2col_live).
using QDenseKernelFn = void (*)(const std::int8_t* w_or_panel,
                                std::size_t rows, std::size_t cols,
                                const std::int8_t* x, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept;
using QConvKernelFn = void (*)(const std::int8_t* panel,
                               const std::int8_t* wt,
                               const kernels::ConvTables& t,
                               const std::int8_t* col, const Requant& rq,
                               std::int8_t* out,
                               std::uint64_t* sat) noexcept;

/// qconv2d_im2col behind the QConvKernelFn shape (ignores `panel`).
void qconv2d_im2col_live(const std::int8_t* panel, const std::int8_t* wt,
                         const kernels::ConvTables& t, const std::int8_t* col,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept;

/// The wide kernel family for a probed/selected ISA (deploy-time only).
QDenseKernelFn wide_qdense_kernel(kernels::WideIsa isa) noexcept;
QConvKernelFn wide_qconv_kernel(kernels::WideIsa isa) noexcept;

}  // namespace sx::tensor::qkernels
