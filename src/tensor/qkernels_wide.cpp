// kWide int8 microkernels: widened int8 x int8 -> int32 dot products with
// fused requantize. 32-row Dense blocks and 16-channel Conv2d lane groups
// in three variants — portable scalar twin, AVX2-class (8-byte
// sign-extended lane loads into 256-bit int32 accumulators), AVX-512-class
// (16-byte lane loads into 512-bit accumulators).
//
// Determinism contract: one output element is always one serial int32
// chain in strict reference order (ascending columns / table-order taps).
// The SIMD variants sign-extend each int8 lane load to int32
// (__builtin_convertvector) and fold the broadcast multiplicand into each
// lane's own accumulator only — no horizontal reductions, no partial-sum
// restructuring — so the per-chain sequence of int32 additions, and hence
// the overflow envelope, is *identical* to the scalar twin and to the
// audited reference loop in dl/quant.cpp. Int32 accumulation of in-range
// products is exact, so bitwise identity across variants follows by
// construction; dl_quant_kernels_wide_test proves it differentially.
//
// This TU is compiled with -ffp-contract=off alongside kernels_wide.cpp;
// the requantize epilogue is float math and must keep the reference's
// two-rounding a*b+c shape.
#include "tensor/qkernels.hpp"
#include "tensor/qkernels_detail.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define SX_QWIDE_X86 1
#include <immintrin.h>
#else
#define SX_QWIDE_X86 0
#endif

namespace sx::tensor::qkernels {

namespace {

typedef std::int32_t v8si __attribute__((vector_size(32)));
typedef std::int32_t v16si __attribute__((vector_size(64)));

/// Scalar tail block of the wide Dense kernel (rows % kQWideRowBlock,
/// interleaved at its own row count) — shared by every variant.
inline void qwide_dense_tail(const std::int8_t* blk, std::size_t r0,
                             std::size_t tail, std::size_t cols,
                             const std::int8_t* x, const Requant& rq,
                             std::int8_t* out, std::uint64_t* sat) noexcept {
  std::int32_t acc[kQWideRowBlock - 1] = {};
  for (std::size_t c = 0; c < cols; ++c) {
    const std::int32_t xv = x[c];
    const std::int8_t* lane = blk + c * tail;
    for (std::size_t i = 0; i < tail; ++i)
      acc[i] += static_cast<std::int32_t>(lane[i]) * xv;
  }
  for (std::size_t i = 0; i < tail; ++i)
    out[r0 + i] = requantize(acc[i], r0 + i, rq, sat);
}

}  // namespace

std::size_t qwide_dense_panel_bytes(std::size_t rows,
                                    std::size_t cols) noexcept {
  const std::size_t full = rows / kQWideRowBlock;
  const std::size_t tail = rows % kQWideRowBlock;
  std::size_t bytes = full * align_up_bytes(kQWideRowBlock * cols);
  if (tail != 0) bytes += align_up_bytes(tail * cols);
  return bytes;
}

void pack_qwide_dense_panel(const std::int8_t* w, std::size_t rows,
                            std::size_t cols, std::int8_t* panel) noexcept {
  const std::size_t total = qwide_dense_panel_bytes(rows, cols);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0;  // padding
  const std::size_t full = rows / kQWideRowBlock;
  const std::size_t tail = rows % kQWideRowBlock;
  const std::size_t full_stride = align_up_bytes(kQWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    std::int8_t* blk = panel + b * full_stride;
    const std::int8_t* wb = w + b * kQWideRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < kQWideRowBlock; ++i)
        blk[c * kQWideRowBlock + i] = wb[i * cols + c];
  }
  if (tail != 0) {
    std::int8_t* blk = panel + full * full_stride;
    const std::int8_t* wb = w + full * kQWideRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < tail; ++i)
        blk[c * tail + i] = wb[i * cols + c];
  }
}

void qmatvec_wide_scalar(const std::int8_t* panel, std::size_t rows,
                         std::size_t cols, const std::int8_t* x,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept {
  const std::size_t full = rows / kQWideRowBlock;
  const std::size_t tail = rows % kQWideRowBlock;
  const std::size_t full_stride = align_up_bytes(kQWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const std::int8_t* blk = panel + b * full_stride;
    const std::size_t r = b * kQWideRowBlock;
    // Thirty-two independent int32 chains; chain r+i sums its columns in
    // strict ascending order — the exact tree the SIMD variants compute.
    std::int32_t acc[kQWideRowBlock] = {};
    const std::int8_t* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kQWideRowBlock) {
      const std::int32_t xv = x[c];
      for (std::size_t i = 0; i < kQWideRowBlock; ++i)
        acc[i] += static_cast<std::int32_t>(lane[i]) * xv;
    }
    for (std::size_t i = 0; i < kQWideRowBlock; ++i)
      out[r + i] = requantize(acc[i], r + i, rq, sat);
  }
  if (tail != 0)
    qwide_dense_tail(panel + full * full_stride, full * kQWideRowBlock,
                     tail, cols, x, rq, out, sat);
}

#if SX_QWIDE_X86

namespace {

// The sign-extending lane loads use the vpmovsxbd intrinsics directly:
// GCC scalarizes a generic __builtin_convertvector from int8 to int32
// (one movsbl + insert per lane), which is slower than the scalar twin.
// The value is identical either way — sign extension is exact — only the
// instruction selection changes.
__attribute__((target("avx2"))) inline v8si v8si_sx(
    const std::int8_t* p) noexcept {
  const __m256i w = _mm256_cvtepi8_epi32(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  v8si v;
  __builtin_memcpy(&v, &w, sizeof v);
  return v;
}

// maskz with an all-ones mask (not _mm512_cvtepi8_epi32): the unmasked
// intrinsic's _mm512_undefined_epi32 passthrough trips GCC's
// -Wmaybe-uninitialized; a full maskz select is the same vpmovsxbd.
__attribute__((target("avx512f"))) inline v16si v16si_sx(
    const std::int8_t* p) noexcept {
  const __m512i w = _mm512_maskz_cvtepi8_epi32(
      static_cast<__mmask16>(-1),
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  v16si v;
  __builtin_memcpy(&v, &w, sizeof v);
  return v;
}

}  // namespace

__attribute__((target("avx2")))
void qmatvec_wide_avx2(const std::int8_t* panel, std::size_t rows,
                       std::size_t cols, const std::int8_t* x,
                       const Requant& rq, std::int8_t* out,
                       std::uint64_t* sat) noexcept {
  const std::size_t full = rows / kQWideRowBlock;
  const std::size_t tail = rows % kQWideRowBlock;
  const std::size_t full_stride = align_up_bytes(kQWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const std::int8_t* blk = panel + b * full_stride;
    const std::size_t r = b * kQWideRowBlock;
    // Four 8-lane int32 accumulators carry the 32 chains. Each column
    // sign-extends its 8-byte lane quarters and folds the broadcast
    // multiplicand vertically — per-chain addition order is untouched.
    v8si a0 = {}, a1 = {}, a2 = {}, a3 = {};
    const std::int8_t* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kQWideRowBlock) {
      const v8si xv = v8si{} + static_cast<std::int32_t>(x[c]);
      a0 += v8si_sx(lane) * xv;
      a1 += v8si_sx(lane + 8) * xv;
      a2 += v8si_sx(lane + 16) * xv;
      a3 += v8si_sx(lane + 24) * xv;
    }
    std::int32_t acc[kQWideRowBlock];
    __builtin_memcpy(acc, &a0, sizeof a0);
    __builtin_memcpy(acc + 8, &a1, sizeof a1);
    __builtin_memcpy(acc + 16, &a2, sizeof a2);
    __builtin_memcpy(acc + 24, &a3, sizeof a3);
    for (std::size_t i = 0; i < kQWideRowBlock; ++i)
      out[r + i] = requantize(acc[i], r + i, rq, sat);
  }
  if (tail != 0)
    qwide_dense_tail(panel + full * full_stride, full * kQWideRowBlock,
                     tail, cols, x, rq, out, sat);
}

__attribute__((target("avx512f")))
void qmatvec_wide_avx512(const std::int8_t* panel, std::size_t rows,
                         std::size_t cols, const std::int8_t* x,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept {
  const std::size_t full = rows / kQWideRowBlock;
  const std::size_t tail = rows % kQWideRowBlock;
  const std::size_t full_stride = align_up_bytes(kQWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const std::int8_t* blk = panel + b * full_stride;
    const std::size_t r = b * kQWideRowBlock;
    // Two 16-lane int32 accumulators; 16-byte sign-extended lane loads.
    v16si lo = {}, hi = {};
    const std::int8_t* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kQWideRowBlock) {
      const v16si xv = v16si{} + static_cast<std::int32_t>(x[c]);
      lo += v16si_sx(lane) * xv;
      hi += v16si_sx(lane + 16) * xv;
    }
    std::int32_t acc[kQWideRowBlock];
    __builtin_memcpy(acc, &lo, sizeof lo);
    __builtin_memcpy(acc + 16, &hi, sizeof hi);
    for (std::size_t i = 0; i < kQWideRowBlock; ++i)
      out[r + i] = requantize(acc[i], r + i, rq, sat);
  }
  if (tail != 0)
    qwide_dense_tail(panel + full * full_stride, full * kQWideRowBlock,
                     tail, cols, x, rq, out, sat);
}

#else  // !SX_QWIDE_X86: the SIMD entry points are the twin itself.

void qmatvec_wide_avx2(const std::int8_t* panel, std::size_t rows,
                       std::size_t cols, const std::int8_t* x,
                       const Requant& rq, std::int8_t* out,
                       std::uint64_t* sat) noexcept {
  qmatvec_wide_scalar(panel, rows, cols, x, rq, out, sat);
}

void qmatvec_wide_avx512(const std::int8_t* panel, std::size_t rows,
                         std::size_t cols, const std::int8_t* x,
                         const Requant& rq, std::int8_t* out,
                         std::uint64_t* sat) noexcept {
  qmatvec_wide_scalar(panel, rows, cols, x, rq, out, sat);
}

#endif  // SX_QWIDE_X86

std::size_t qwide_conv_panel_bytes(std::size_t out_c,
                                   std::size_t patch) noexcept {
  return (out_c / kQWideConvLanes) * align_up_bytes(patch * kQWideConvLanes);
}

void pack_qwide_conv_panel(const std::int8_t* wt, std::size_t out_c,
                           std::size_t patch, std::int8_t* panel) noexcept {
  const std::size_t total = qwide_conv_panel_bytes(out_c, patch);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0;  // padding
  const std::size_t gstride = align_up_bytes(patch * kQWideConvLanes);
  for (std::size_t g = 0; g < out_c / kQWideConvLanes; ++g) {
    std::int8_t* gp = panel + g * gstride;
    for (std::size_t j = 0; j < patch; ++j)
      for (std::size_t i = 0; i < kQWideConvLanes; ++i)
        gp[j * kQWideConvLanes + i] =
            wt[(g * kQWideConvLanes + i) * patch + j];
  }
}

namespace {

/// Scalar core of one wide conv lane group — the canonical tree the SIMD
/// group sweeps reproduce.
inline void qwide_conv_group_scalar(const std::int8_t* gp,
                                    const kernels::ConvTables& t,
                                    const std::int8_t* col,
                                    const Requant& rq, std::int8_t* out,
                                    std::size_t oc0,
                                    std::uint64_t* sat) noexcept {
  std::int8_t* o[kQWideConvLanes];
  for (std::size_t i = 0; i < kQWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    std::int32_t acc[kQWideConvLanes] = {};
    const std::int8_t* c = col + base;
    if (taps == t.patch) {
      const std::int8_t* lane = gp;
      for (std::size_t j = 0; j < taps; ++j, lane += kQWideConvLanes) {
        const std::int32_t v = c[j];
        for (std::size_t i = 0; i < kQWideConvLanes; ++i)
          acc[i] += static_cast<std::int32_t>(lane[i]) * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const std::int32_t v = c[j];
        const std::int8_t* lane = gp + wo[j] * kQWideConvLanes;
        for (std::size_t i = 0; i < kQWideConvLanes; ++i)
          acc[i] += static_cast<std::int32_t>(lane[i]) * v;
      }
    }
    for (std::size_t i = 0; i < kQWideConvLanes; ++i)
      o[i][p] = requantize(acc[i], oc0 + i, rq, sat);
  }
}

}  // namespace

void qconv2d_im2col_wide_scalar(const std::int8_t* panel,
                                const std::int8_t* wt,
                                const kernels::ConvTables& t,
                                const std::int8_t* col, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept {
  const std::size_t gstride = align_up_bytes(t.patch * kQWideConvLanes);
  const std::size_t groups = t.out_c / kQWideConvLanes;
  for (std::size_t g = 0; g < groups; ++g)
    qwide_conv_group_scalar(panel + g * gstride, t, col, rq, out,
                            g * kQWideConvLanes, sat);
  detail::qconv_tail_sweep(wt, t, col, rq, out, groups * kQWideConvLanes,
                           sat);
}

#if SX_QWIDE_X86

namespace {

/// One 16-channel conv group on two 256-bit int32 accumulators: every tap
/// broadcasts the shared column value and folds into its own lane only.
__attribute__((target("avx2")))
inline void qwide_conv_group_avx2(const std::int8_t* gp,
                                  const kernels::ConvTables& t,
                                  const std::int8_t* col, const Requant& rq,
                                  std::int8_t* out, std::size_t oc0,
                                  std::uint64_t* sat) noexcept {
  std::int8_t* o[kQWideConvLanes];
  for (std::size_t i = 0; i < kQWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    v8si lo = {}, hi = {};
    const std::int8_t* c = col + base;
    if (taps == t.patch) {
      const std::int8_t* lane = gp;
      for (std::size_t j = 0; j < taps; ++j, lane += kQWideConvLanes) {
        const v8si v = v8si{} + static_cast<std::int32_t>(c[j]);
        lo += v8si_sx(lane) * v;
        hi += v8si_sx(lane + 8) * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const v8si v = v8si{} + static_cast<std::int32_t>(c[j]);
        const std::int8_t* lane = gp + wo[j] * kQWideConvLanes;
        lo += v8si_sx(lane) * v;
        hi += v8si_sx(lane + 8) * v;
      }
    }
    std::int32_t acc[kQWideConvLanes];
    __builtin_memcpy(acc, &lo, sizeof lo);
    __builtin_memcpy(acc + 8, &hi, sizeof hi);
    for (std::size_t i = 0; i < kQWideConvLanes; ++i)
      o[i][p] = requantize(acc[i], oc0 + i, rq, sat);
  }
}

/// One 16-channel conv group on a single 512-bit int32 accumulator.
__attribute__((target("avx512f")))
inline void qwide_conv_group_avx512(const std::int8_t* gp,
                                    const kernels::ConvTables& t,
                                    const std::int8_t* col,
                                    const Requant& rq, std::int8_t* out,
                                    std::size_t oc0,
                                    std::uint64_t* sat) noexcept {
  std::int8_t* o[kQWideConvLanes];
  for (std::size_t i = 0; i < kQWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    v16si acc = {};
    const std::int8_t* c = col + base;
    if (taps == t.patch) {
      const std::int8_t* lane = gp;
      for (std::size_t j = 0; j < taps; ++j, lane += kQWideConvLanes)
        acc += v16si_sx(lane) * (v16si{} + static_cast<std::int32_t>(c[j]));
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j)
        acc += v16si_sx(gp + wo[j] * kQWideConvLanes) *
               (v16si{} + static_cast<std::int32_t>(c[j]));
    }
    std::int32_t a[kQWideConvLanes];
    __builtin_memcpy(a, &acc, sizeof acc);
    for (std::size_t i = 0; i < kQWideConvLanes; ++i)
      o[i][p] = requantize(a[i], oc0 + i, rq, sat);
  }
}

}  // namespace

void qconv2d_im2col_wide_avx2(const std::int8_t* panel,
                              const std::int8_t* wt,
                              const kernels::ConvTables& t,
                              const std::int8_t* col, const Requant& rq,
                              std::int8_t* out,
                              std::uint64_t* sat) noexcept {
  const std::size_t gstride = align_up_bytes(t.patch * kQWideConvLanes);
  const std::size_t groups = t.out_c / kQWideConvLanes;
  for (std::size_t g = 0; g < groups; ++g)
    qwide_conv_group_avx2(panel + g * gstride, t, col, rq, out,
                          g * kQWideConvLanes, sat);
  detail::qconv_tail_sweep(wt, t, col, rq, out, groups * kQWideConvLanes,
                           sat);
}

void qconv2d_im2col_wide_avx512(const std::int8_t* panel,
                                const std::int8_t* wt,
                                const kernels::ConvTables& t,
                                const std::int8_t* col, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept {
  const std::size_t gstride = align_up_bytes(t.patch * kQWideConvLanes);
  const std::size_t groups = t.out_c / kQWideConvLanes;
  for (std::size_t g = 0; g < groups; ++g)
    qwide_conv_group_avx512(panel + g * gstride, t, col, rq, out,
                            g * kQWideConvLanes, sat);
  detail::qconv_tail_sweep(wt, t, col, rq, out, groups * kQWideConvLanes,
                           sat);
}

#else  // !SX_QWIDE_X86

void qconv2d_im2col_wide_avx2(const std::int8_t* panel,
                              const std::int8_t* wt,
                              const kernels::ConvTables& t,
                              const std::int8_t* col, const Requant& rq,
                              std::int8_t* out,
                              std::uint64_t* sat) noexcept {
  qconv2d_im2col_wide_scalar(panel, wt, t, col, rq, out, sat);
}

void qconv2d_im2col_wide_avx512(const std::int8_t* panel,
                                const std::int8_t* wt,
                                const kernels::ConvTables& t,
                                const std::int8_t* col, const Requant& rq,
                                std::int8_t* out,
                                std::uint64_t* sat) noexcept {
  qconv2d_im2col_wide_scalar(panel, wt, t, col, rq, out, sat);
}

#endif  // SX_QWIDE_X86

QDenseKernelFn wide_qdense_kernel(kernels::WideIsa isa) noexcept {
  switch (isa) {
    case kernels::WideIsa::kAvx2: return &qmatvec_wide_avx2;
    case kernels::WideIsa::kAvx512: return &qmatvec_wide_avx512;
    case kernels::WideIsa::kScalar: break;
  }
  return &qmatvec_wide_scalar;
}

QConvKernelFn wide_qconv_kernel(kernels::WideIsa isa) noexcept {
  switch (isa) {
    case kernels::WideIsa::kAvx2: return &qconv2d_im2col_wide_avx2;
    case kernels::WideIsa::kAvx512: return &qconv2d_im2col_wide_avx512;
    case kernels::WideIsa::kScalar: break;
  }
  return &qconv2d_im2col_wide_scalar;
}

}  // namespace sx::tensor::qkernels
