// Static memory arena for the FUSA runtime path.
//
// Functional-safety standards (e.g. ISO 26262-6, DO-178C) effectively forbid
// dynamic memory allocation during operation. The StaticEngine pre-plans all
// activation buffers out of an Arena sized at configuration time; after
// setup, inference performs zero heap allocations (asserted in tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

#include "util/status.hpp"

namespace sx::tensor {

/// Alignment of panel and arena backing storage: 64 bytes == one cache
/// line. The kernel panel planners round block offsets up to cache-line
/// multiples; that only yields truly aligned blocks when the base pointer
/// itself is cache-line aligned — plain new[]/make_unique guarantees only
/// fundamental alignment (typically 16 bytes).
inline constexpr std::size_t kStorageAlignBytes = 64;

namespace detail {
struct AlignedArrayDelete {
  template <typename T>
  void operator()(T* p) const noexcept {
    ::operator delete[](static_cast<void*>(p),
                        std::align_val_t{kStorageAlignBytes});
  }
};
}  // namespace detail

/// Owning cache-line-aligned array storage (value-initialized).
template <typename T>
using AlignedStorage = std::unique_ptr<T[], detail::AlignedArrayDelete>;

/// Allocates `n` value-initialized elements at kStorageAlignBytes
/// alignment. Configuration-time only, like every other allocation here.
template <typename T>
AlignedStorage<T> make_aligned_storage(std::size_t n) {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedArrayDelete deallocates without destroying");
  return AlignedStorage<T>(
      new (std::align_val_t{kStorageAlignBytes}) T[n]());  // sxlint: allow(hot-path-alloc) the one configuration-time allocation behind every aligned panel/arena
}

/// Bump allocator over a single contiguous float buffer.
///
/// Allocation is monotonic; reset() releases everything at once (between
/// inferences). The high-water mark is tracked for certification evidence
/// ("worst-case memory demand").
class Arena {
 public:
  /// Creates an arena holding `capacity` floats. Allocates once, here,
  /// at configuration time — never afterwards.
  explicit Arena(std::size_t capacity)
      : storage_(std::make_unique<float[]>(capacity)),  // sxlint: allow(hot-path-alloc) the one configuration-time allocation the arena exists to own
        capacity_(capacity) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` floats; returns an empty span when exhausted.
  std::span<float> alloc(std::size_t n) noexcept {
    if (used_ + n > capacity_) return {};
    std::span<float> out{storage_.get() + used_, n};
    used_ += n;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return out;
  }

  /// Releases all allocations (buffers become invalid).
  void reset() noexcept { used_ = 0; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t available() const noexcept { return capacity_ - used_; }
  /// Worst-case demand observed since construction.
  std::size_t high_water_mark() const noexcept { return high_water_; }

 private:
  std::unique_ptr<float[]> storage_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

/// Bump allocator over a single contiguous int8 buffer — the quantized
/// engine's analog of Arena (activation ping-pong and im2col scratch of the
/// int8 path are bytes, not floats). Same discipline: one allocation at
/// configuration time, monotonic alloc, high-water mark as evidence.
class ByteArena {
 public:
  /// The backing storage is cache-line aligned, so the arena's first
  /// carve-out (and any later one whose cumulative offset is a multiple of
  /// kStorageAlignBytes) starts on a cache line.
  explicit ByteArena(std::size_t capacity)
      : storage_(make_aligned_storage<std::int8_t>(capacity)),
        capacity_(capacity) {}

  ByteArena(const ByteArena&) = delete;
  ByteArena& operator=(const ByteArena&) = delete;

  /// Allocates `n` bytes; returns an empty span when exhausted.
  std::span<std::int8_t> alloc(std::size_t n) noexcept {
    if (used_ + n > capacity_) return {};
    std::span<std::int8_t> out{storage_.get() + used_, n};
    used_ += n;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return out;
  }

  void reset() noexcept { used_ = 0; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t used() const noexcept { return used_; }
  std::size_t available() const noexcept { return capacity_ - used_; }
  std::size_t high_water_mark() const noexcept { return high_water_; }

 private:
  AlignedStorage<std::int8_t> storage_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace sx::tensor
