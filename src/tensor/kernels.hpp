// Deploy-time-planned numeric kernels: register-blocked matvec/GEMM and a
// ragged-im2col Conv2d lowering with fused bias+activation epilogues.
//
// Every kernel here preserves the *per-output accumulation order* of the
// reference loops in tensor/ops.cpp and dl/layers.cpp: each output element
// is produced by the same sequence of multiply-adds on the same operands,
// so optimized and reference paths are bitwise identical and the golden
// vectors pinned in tensor_golden_test stay valid. The speedups come from
// order-preserving transformations only:
//
//   - row blocking: kRowBlock independent accumulation chains per sweep
//     break the single serial FMA/add dependency chain of the reference
//     loop (ILP), and the input vector is streamed once per block instead
//     of once per row;
//   - deploy-time im2col index tables: all Conv2d bounds checks and index
//     arithmetic move to configuration time; the hot path is one flat
//     gather plus a dense blocked GEMM.  The tables are *ragged*
//     (padding taps are omitted, exactly as the reference loop skips
//     them) rather than zero-filled, so even non-finite weights multiply
//     precisely the operands the reference path multiplies;
//   - fused epilogues: bias (already fused in the reference Dense/Conv2d)
//     plus an optional ReLU/Sigmoid/Tanh applied in the GEMM tail, saving
//     one full tensor traversal per fused layer.  The epilogue expression
//     is character-identical to the corresponding Layer::forward body.
//
// All functions are allocation-free and operate on caller-provided
// buffers; table *construction* fills caller-owned storage whose size is
// returned by the corresponding *_floats()/*_entries() planner so that
// dl::KernelPlan can place everything in deploy-time storage and the
// engine arena. (This file is covered by sxlint's hot-path-alloc rule.)
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace sx::tensor::kernels {

/// Output rows (Dense) per register-blocked sweep. 8 independent
/// accumulator chains are enough to cover scalar FP add latency on
/// current cores without spilling.
inline constexpr std::size_t kRowBlock = 8;

/// Output channels (Conv2d GEMM) per register-blocked sweep. Eight chains
/// read the gathered im2col column once per sweep (the deployed perception
/// CNNs are 8-channel), at the same register budget as the Dense kernel.
inline constexpr std::size_t kOcBlock = 8;

/// Panel alignment in floats: 16 floats == one 64-byte cache line.
inline constexpr std::size_t kAlignFloats = 16;

constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

/// Fused activation applied in the kernel tail. Expressions match the
/// corresponding Layer::forward bodies bit for bit (including NaN
/// behaviour: relu(NaN) == 0.0f exactly as `v > 0 ? v : 0` yields).
enum class Epilogue : std::uint8_t { kNone, kRelu, kSigmoid, kTanh };

inline float apply_epilogue(float v, Epilogue ep) noexcept {
  switch (ep) {
    case Epilogue::kNone: return v;
    case Epilogue::kRelu: return v > 0.0f ? v : 0.0f;
    case Epilogue::kSigmoid: return 1.0f / (1.0f + std::exp(-v));
    case Epilogue::kTanh: return std::tanh(v);
  }
  return v;
}

// --------------------------------------------------------------- Dense

/// y = W x + b with kRowBlock-way register blocking over the live
/// row-major weight matrix (rows x cols). When `check` is set, the
/// pre-activation value of every output is screened with the same
/// predicate the engine's per-layer scan uses; returns false iff a
/// non-finite pre-activation was seen (the caller maps that to
/// Status::kNumericFault exactly where the reference path would).
bool matvec_blocked(const float* w, const float* bias, std::size_t rows,
                    std::size_t cols, const float* x, float* out,
                    Epilogue ep, bool check) noexcept;

/// Floats needed for the cache-line-aligned row-blocked panel of a
/// rows x cols Dense weight matrix (every block starts 64-byte aligned).
std::size_t dense_panel_floats(std::size_t rows, std::size_t cols) noexcept;

/// Repacks the row-major weight matrix into the panel layout: full blocks
/// of kRowBlock rows interleaved column-major-within-block
/// (panel[c * 8 + r]), the tail block interleaved at its own row count.
/// `panel` must hold dense_panel_floats() floats; alignment padding is
/// zero-filled.
void pack_dense_panel(const float* w, std::size_t rows, std::size_t cols,
                      float* panel) noexcept;

/// matvec_blocked over a packed panel (weights snapshot; see
/// dl::KernelPlan for the staleness contract).
bool matvec_packed(const float* panel, const float* bias, std::size_t rows,
                   std::size_t cols, const float* x, float* out,
                   Epilogue ep, bool check) noexcept;

// --------------------------------------------------------------- Conv2d

/// Static Conv2d geometry (CHW layout, square kernel, symmetric padding).
struct Conv2dGeom {
  std::size_t in_c = 0, in_h = 0, in_w = 0;
  std::size_t out_c = 0, k = 0, stride = 1, pad = 0;

  std::size_t out_h() const noexcept {
    return (in_h + 2 * pad - k) / stride + 1;
  }
  std::size_t out_w() const noexcept {
    return (in_w + 2 * pad - k) / stride + 1;
  }
  std::size_t opix() const noexcept { return out_h() * out_w(); }
  /// Full patch length (taps per output pixel when nothing is clipped).
  std::size_t patch() const noexcept { return in_c * k * k; }
};

/// Total ragged im2col entries: sum over output pixels of the *valid* tap
/// count (padding-clipped taps are omitted, matching the reference skip).
/// This is both the index-table length and the per-inference scratch
/// demand in floats.
std::size_t im2col_entries(const Conv2dGeom& g) noexcept;

/// Fills the deploy-time gather tables. For output pixel p the entries
/// [pix_off[p], pix_off[p+1]) list, in the reference accumulation order
/// (ic ascending, then valid ky, then valid kx):
///   in_idx[e]  linear index into the CHW input,
///   w_ofs[e]   weight offset inside one output-channel slab
///              (ic * k * k + ky * k + kx).
/// `pix_off` must hold opix()+1 entries; `in_idx`/`w_ofs` must hold
/// im2col_entries() each. Interior pixels carry the full patch with
/// w_ofs == 0..patch-1, which conv2d_im2col detects and runs without
/// indirection.
void build_im2col_tables(const Conv2dGeom& g, std::uint32_t* pix_off,
                         std::uint32_t* in_idx,
                         std::uint32_t* w_ofs) noexcept;

/// The hot-path gather: col[e] = in[in_idx[e]] for e in [0, entries).
/// One flat, branch-free loop (ragged layout keeps padding out entirely).
void im2col_gather(const float* in, const std::uint32_t* in_idx,
                   std::size_t entries, float* col) noexcept;

/// Pointer view of one planned Conv2d lowering (tables owned elsewhere).
struct ConvTables {
  std::size_t out_c = 0;
  std::size_t patch = 0;  ///< full tap count per pixel
  std::size_t opix = 0;
  const std::uint32_t* pix_off = nullptr;  ///< opix + 1 entries
  const std::uint32_t* in_idx = nullptr;   ///< gather indices
  const std::uint32_t* w_ofs = nullptr;    ///< weight offsets per entry
};

/// out[oc * opix + p] = bias[oc] + sum over the pixel's taps, kOcBlock
/// output channels per sweep sharing one gathered column. `wt` is the
/// live Conv2d weight tensor (out_c x patch, the natural layout), `col`
/// the gathered ragged im2col buffer. Same check/epilogue contract as
/// matvec_blocked.
bool conv2d_im2col(const float* wt, const float* bias, const ConvTables& t,
                   const float* col, float* out, Epilogue ep,
                   bool check) noexcept;

/// Output channels per SIMD lane group of a packed Conv2d panel.
inline constexpr std::size_t kConvLanes = 4;

/// Floats needed for the tap-major lane panel of an out_c x patch Conv2d
/// weight tensor: full kConvLanes-channel groups only (each group starts
/// 64-byte aligned); the out_c % kConvLanes tail channels keep reading
/// the live weights.
std::size_t conv_panel_floats(std::size_t out_c,
                              std::size_t patch) noexcept;

/// Repacks the natural out_c x patch weight layout into lane groups:
/// group g, tap j holds weights of channels g*kConvLanes .. +3 at
/// panel[g * align_up(patch * kConvLanes) + j * kConvLanes + i].
void pack_conv_panel(const float* wt, std::size_t out_c, std::size_t patch,
                     float* panel) noexcept;

/// conv2d_im2col over a packed lane panel (weights snapshot; see
/// dl::KernelPlan for the staleness contract). `wt` must still point at
/// the live weights — the out_c % kConvLanes tail channels use it.
bool conv2d_im2col_packed(const float* panel, const float* wt,
                          const float* bias, const ConvTables& t,
                          const float* col, float* out, Epilogue ep,
                          bool check) noexcept;

// ------------------------------------------------- wide (kWide) backends

/// Microkernel lane family of the kWide backend, selected once at deploy
/// time by platform::select_wide_isa (CPU probe + SX_KERNEL_ISA override)
/// and recorded as audit evidence. Every family computes the *identical*
/// fixed accumulation tree — one serial ascending-column chain per output,
/// vectorized only across independent outputs — so outputs are bitwise
/// identical across families (and to every other KernelMode). kScalar is
/// the portable twin that runs on any machine.
enum class WideIsa : std::uint8_t {
  kScalar,  ///< portable scalar twin of the wide accumulation tree
  kAvx2,    ///< 8-lane 256-bit float / 32-byte int8 microkernels
  kAvx512,  ///< 16-lane 512-bit float / 64-byte int8 microkernels
};

const char* wide_isa_name(WideIsa isa) noexcept;

/// Output rows (Dense) per wide sweep: one 16-lane (512-bit-class) group,
/// executed as 2 x 8 lanes on AVX2 and 16 scalar chains by the twin.
inline constexpr std::size_t kWideRowBlock = 16;

/// Output channels (Conv2d GEMM) per wide lane group. Eight matches the
/// deployed perception CNNs' channel counts, so their convs hit the
/// full-group path; the AVX-512-class variant keeps 16 channels in flight
/// by pairing adjacent groups.
inline constexpr std::size_t kWideConvLanes = 8;

/// Floats needed for the wide row-blocked panel of a rows x cols Dense
/// weight matrix (full kWideRowBlock blocks plus an interleaved tail,
/// every block 64-byte aligned).
std::size_t wide_dense_panel_floats(std::size_t rows,
                                    std::size_t cols) noexcept;

/// Repacks the row-major weight matrix into the wide panel layout: full
/// blocks of kWideRowBlock rows interleaved column-major-within-block
/// (panel[c * 16 + r]), the tail block interleaved at its own row count.
void pack_wide_dense_panel(const float* w, std::size_t rows,
                           std::size_t cols, float* panel) noexcept;

/// matvec over a wide panel — the portable scalar twin and the two SIMD
/// families. Same signature and check/epilogue contract as matvec_packed;
/// all three produce bitwise-identical outputs (the SIMD variants fall
/// back to the twin on non-x86 builds).
bool matvec_wide_scalar(const float* panel, const float* bias,
                        std::size_t rows, std::size_t cols, const float* x,
                        float* out, Epilogue ep, bool check) noexcept;
bool matvec_wide_avx2(const float* panel, const float* bias,
                      std::size_t rows, std::size_t cols, const float* x,
                      float* out, Epilogue ep, bool check) noexcept;
bool matvec_wide_avx512(const float* panel, const float* bias,
                        std::size_t rows, std::size_t cols, const float* x,
                        float* out, Epilogue ep, bool check) noexcept;

/// Floats needed for the wide tap-major lane panel of an out_c x patch
/// Conv2d weight tensor: full kWideConvLanes-channel groups only; the
/// tail channels keep reading the live weights.
std::size_t wide_conv_panel_floats(std::size_t out_c,
                                   std::size_t patch) noexcept;

/// Repacks the natural out_c x patch weight layout into wide lane groups:
/// group g, tap j holds weights of channels g*kWideConvLanes .. +7 at
/// panel[g * align_up(patch * kWideConvLanes) + j * kWideConvLanes + i].
void pack_wide_conv_panel(const float* wt, std::size_t out_c,
                          std::size_t patch, float* panel) noexcept;

/// conv2d_im2col over a wide lane panel (same tail-channel live-weight
/// contract as conv2d_im2col_packed). The avx512 variant pairs adjacent
/// groups to keep 16 output channels in flight per tap.
bool conv2d_im2col_wide_scalar(const float* panel, const float* wt,
                               const float* bias, const ConvTables& t,
                               const float* col, float* out, Epilogue ep,
                               bool check) noexcept;
bool conv2d_im2col_wide_avx2(const float* panel, const float* wt,
                             const float* bias, const ConvTables& t,
                             const float* col, float* out, Epilogue ep,
                             bool check) noexcept;
bool conv2d_im2col_wide_avx512(const float* panel, const float* wt,
                               const float* bias, const ConvTables& t,
                               const float* col, float* out, Epilogue ep,
                               bool check) noexcept;

// ------------------------------------------- hot-path dispatch pointers

/// Uniform Dense kernel shape: matvec_blocked (live weights),
/// matvec_packed and the matvec_wide_* family all match it, so a plan can
/// resolve one pointer per step at deploy time and the hot path stays
/// branch-free.
using DenseKernelFn = bool (*)(const float* w_or_panel, const float* bias,
                               std::size_t rows, std::size_t cols,
                               const float* x, float* out, Epilogue ep,
                               bool check) noexcept;

/// Uniform Conv2d kernel shape (panel variants use `panel`, the live
/// adapter ignores it).
using ConvKernelFn = bool (*)(const float* panel, const float* wt,
                              const float* bias, const ConvTables& t,
                              const float* col, float* out, Epilogue ep,
                              bool check) noexcept;

/// conv2d_im2col behind the uniform ConvKernelFn shape (ignores `panel`;
/// reads the live weights).
bool conv2d_im2col_live(const float* panel, const float* wt,
                        const float* bias, const ConvTables& t,
                        const float* col, float* out, Epilogue ep,
                        bool check) noexcept;

/// The wide Dense / Conv2d microkernel for one lane family — resolved
/// once at plan construction, never on the hot path.
DenseKernelFn wide_dense_kernel(WideIsa isa) noexcept;
ConvKernelFn wide_conv_kernel(WideIsa isa) noexcept;

}  // namespace sx::tensor::kernels
