// kWide float microkernels: 8-lane (AVX2-class, GCC vector extensions
// vector_size(32)) and 16-lane (AVX-512-class, vector_size(64)) panel
// kernels plus their portable scalar twin.
//
// Determinism contract (the whole point of this file): each lane family
// computes the *identical* fixed accumulation tree. One output element is
// always one serial chain — bias, then every column/tap in strict
// ascending reference order — and the SIMD only runs independent chains
// side by side (broadcast multiplicand, one lane per output, no
// horizontal reductions). The scalar twin walks the same panel with the
// same chains, so scalar/avx2/avx512 outputs are bitwise identical across
// machines, and all of them are bitwise identical to the kReference/
// kBlocked/kPacked paths (tensor_kernels_wide_test proves both claims
// differentially).
//
// This translation unit is compiled with -ffp-contract=off (see
// src/tensor/CMakeLists.txt): the target("avx512f")/target("avx2")
// function attributes make FMA available, and a contracted a*b+c rounds
// once instead of twice — which would silently fork the avx2/avx512
// results from the scalar twin. Keeping contraction off pins all three
// to the twin's two-rounding chain.
#include "tensor/kernels.hpp"
#include "tensor/kernels_detail.hpp"

namespace sx::tensor::kernels {

namespace {

using detail::finish;

typedef float v8sf __attribute__((vector_size(32)));
typedef float v16sf __attribute__((vector_size(64)));

#if defined(__x86_64__) || defined(__i386__)
#define SX_WIDE_X86 1
#else
#define SX_WIDE_X86 0
#endif

/// Scalar core of the wide Dense kernel — the canonical accumulation tree
/// every SIMD variant must reproduce. Also used by every variant for the
/// rows % kWideRowBlock tail block.
inline bool wide_dense_tail(const float* blk, const float* bias,
                            std::size_t r0, std::size_t tail,
                            std::size_t cols, const float* x, float* out,
                            Epilogue ep, bool check, bool ok) noexcept {
  float acc[kWideRowBlock - 1];
  for (std::size_t i = 0; i < tail; ++i) acc[i] = bias[r0 + i];
  for (std::size_t c = 0; c < cols; ++c) {
    const float xv = x[c];
    const float* lane = blk + c * tail;
    for (std::size_t i = 0; i < tail; ++i) acc[i] += lane[i] * xv;
  }
  for (std::size_t i = 0; i < tail; ++i)
    ok = finish(acc[i], out + r0 + i, ep, check, ok);
  return ok;
}

}  // namespace

const char* wide_isa_name(WideIsa isa) noexcept {
  switch (isa) {
    case WideIsa::kScalar: return "scalar";
    case WideIsa::kAvx2: return "avx2";
    case WideIsa::kAvx512: return "avx512";
  }
  return "unknown";
}

std::size_t wide_dense_panel_floats(std::size_t rows,
                                    std::size_t cols) noexcept {
  const std::size_t full = rows / kWideRowBlock;
  const std::size_t tail = rows % kWideRowBlock;
  std::size_t floats = full * align_up(kWideRowBlock * cols);
  if (tail != 0) floats += align_up(tail * cols);
  return floats;
}

void pack_wide_dense_panel(const float* w, std::size_t rows,
                           std::size_t cols, float* panel) noexcept {
  const std::size_t total = wide_dense_panel_floats(rows, cols);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0.0f;  // padding
  const std::size_t full = rows / kWideRowBlock;
  const std::size_t tail = rows % kWideRowBlock;
  const std::size_t full_stride = align_up(kWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    float* blk = panel + b * full_stride;
    const float* wb = w + b * kWideRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < kWideRowBlock; ++i)
        blk[c * kWideRowBlock + i] = wb[i * cols + c];
  }
  if (tail != 0) {
    float* blk = panel + full * full_stride;
    const float* wb = w + full * kWideRowBlock * cols;
    for (std::size_t c = 0; c < cols; ++c)
      for (std::size_t i = 0; i < tail; ++i)
        blk[c * tail + i] = wb[i * cols + c];
  }
}

bool matvec_wide_scalar(const float* panel, const float* bias,
                        std::size_t rows, std::size_t cols, const float* x,
                        float* out, Epilogue ep, bool check) noexcept {
  bool ok = true;
  const std::size_t full = rows / kWideRowBlock;
  const std::size_t tail = rows % kWideRowBlock;
  const std::size_t full_stride = align_up(kWideRowBlock * cols);
  for (std::size_t b = 0; b < full; ++b) {
    const float* blk = panel + b * full_stride;
    const std::size_t r = b * kWideRowBlock;
    // Sixteen independent chains, one per output row; chain r+i sums its
    // columns in strict ascending order — exactly the tree the SIMD
    // variants below compute lane-for-lane.
    float acc[kWideRowBlock];
    for (std::size_t i = 0; i < kWideRowBlock; ++i) acc[i] = bias[r + i];
    const float* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kWideRowBlock) {
      const float xv = x[c];
      for (std::size_t i = 0; i < kWideRowBlock; ++i)
        acc[i] += lane[i] * xv;
    }
    for (std::size_t i = 0; i < kWideRowBlock; ++i)
      ok = finish(acc[i], out + r + i, ep, check, ok);
  }
  if (tail != 0)
    ok = wide_dense_tail(panel + full * full_stride, bias,
                         full * kWideRowBlock, tail, cols, x, out, ep,
                         check, ok);
  return ok;
}

#if SX_WIDE_X86

namespace {

__attribute__((target("avx2"))) inline v8sf v8_load(const float* p) noexcept {
  v8sf v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

__attribute__((target("avx512f"))) inline v16sf v16_load(
    const float* p) noexcept {
  v16sf v;
  __builtin_memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

__attribute__((target("avx2")))
bool matvec_wide_avx2(const float* panel, const float* bias,
                      std::size_t rows, std::size_t cols, const float* x,
                      float* out, Epilogue ep, bool check) noexcept {
  bool ok = true;
  const std::size_t full = rows / kWideRowBlock;
  const std::size_t tail = rows % kWideRowBlock;
  const std::size_t full_stride = align_up(kWideRowBlock * cols);
  std::size_t b = 0;
  // Paired row blocks keep four independent 8-lane accumulators in
  // flight — enough chains to cover the vector-add latency that a single
  // serial chain per block would expose. Each lane still folds only its
  // own row's products in ascending-column order (broadcast multiplicand,
  // vertical add), so pairing changes instruction scheduling only, never
  // a per-output tree: bitwise identity to the scalar twin is preserved.
  for (; b + 2 <= full; b += 2) {
    const float* blk0 = panel + b * full_stride;
    const float* blk1 = blk0 + full_stride;
    const std::size_t r = b * kWideRowBlock;
    v8sf a0 = v8_load(bias + r);
    v8sf a1 = v8_load(bias + r + 8);
    v8sf a2 = v8_load(bias + r + 16);
    v8sf a3 = v8_load(bias + r + 24);
    for (std::size_t c = 0; c < cols; ++c) {
      const v8sf xv = v8sf{} + x[c];
      const float* l0 = blk0 + c * kWideRowBlock;
      const float* l1 = blk1 + c * kWideRowBlock;
      a0 += v8_load(l0) * xv;
      a1 += v8_load(l0 + 8) * xv;
      a2 += v8_load(l1) * xv;
      a3 += v8_load(l1 + 8) * xv;
    }
    float acc[2 * kWideRowBlock];
    __builtin_memcpy(acc, &a0, sizeof a0);
    __builtin_memcpy(acc + 8, &a1, sizeof a1);
    __builtin_memcpy(acc + 16, &a2, sizeof a2);
    __builtin_memcpy(acc + 24, &a3, sizeof a3);
    for (std::size_t i = 0; i < 2 * kWideRowBlock; ++i)
      ok = finish(acc[i], out + r + i, ep, check, ok);
  }
  for (; b < full; ++b) {
    const float* blk = panel + b * full_stride;
    const std::size_t r = b * kWideRowBlock;
    // Leftover block: two 8-lane accumulators, the original single-block
    // sweep.
    v8sf lo = v8_load(bias + r);
    v8sf hi = v8_load(bias + r + 8);
    const float* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kWideRowBlock) {
      const v8sf xv = v8sf{} + x[c];
      lo += v8_load(lane) * xv;
      hi += v8_load(lane + 8) * xv;
    }
    float acc[kWideRowBlock];
    __builtin_memcpy(acc, &lo, sizeof lo);
    __builtin_memcpy(acc + 8, &hi, sizeof hi);
    for (std::size_t i = 0; i < kWideRowBlock; ++i)
      ok = finish(acc[i], out + r + i, ep, check, ok);
  }
  if (tail != 0)
    ok = wide_dense_tail(panel + full * full_stride, bias,
                         full * kWideRowBlock, tail, cols, x, out, ep,
                         check, ok);
  return ok;
}

__attribute__((target("avx512f")))
bool matvec_wide_avx512(const float* panel, const float* bias,
                        std::size_t rows, std::size_t cols, const float* x,
                        float* out, Epilogue ep, bool check) noexcept {
  bool ok = true;
  const std::size_t full = rows / kWideRowBlock;
  const std::size_t tail = rows % kWideRowBlock;
  const std::size_t full_stride = align_up(kWideRowBlock * cols);
  std::size_t b = 0;
  // Four row blocks in flight: a single 16-lane accumulator per block is
  // one serial vector chain, so four of them are needed to cover the add
  // latency. Scheduling only — every per-output tree is still the scalar
  // twin's (and the contraction-off build keeps mul+add as two roundings;
  // see the file comment).
  for (; b + 4 <= full; b += 4) {
    const float* blk0 = panel + b * full_stride;
    const float* blk1 = blk0 + full_stride;
    const float* blk2 = blk1 + full_stride;
    const float* blk3 = blk2 + full_stride;
    const std::size_t r = b * kWideRowBlock;
    v16sf a0 = v16_load(bias + r);
    v16sf a1 = v16_load(bias + r + 16);
    v16sf a2 = v16_load(bias + r + 32);
    v16sf a3 = v16_load(bias + r + 48);
    for (std::size_t c = 0; c < cols; ++c) {
      const v16sf xv = v16sf{} + x[c];
      const std::size_t o = c * kWideRowBlock;
      a0 += v16_load(blk0 + o) * xv;
      a1 += v16_load(blk1 + o) * xv;
      a2 += v16_load(blk2 + o) * xv;
      a3 += v16_load(blk3 + o) * xv;
    }
    float acc[4 * kWideRowBlock];
    __builtin_memcpy(acc, &a0, sizeof a0);
    __builtin_memcpy(acc + 16, &a1, sizeof a1);
    __builtin_memcpy(acc + 32, &a2, sizeof a2);
    __builtin_memcpy(acc + 48, &a3, sizeof a3);
    for (std::size_t i = 0; i < 4 * kWideRowBlock; ++i)
      ok = finish(acc[i], out + r + i, ep, check, ok);
  }
  for (; b < full; ++b) {
    const float* blk = panel + b * full_stride;
    const std::size_t r = b * kWideRowBlock;
    // Leftover block: one 16-lane accumulator, the original sweep.
    v16sf acc = v16_load(bias + r);
    const float* lane = blk;
    for (std::size_t c = 0; c < cols; ++c, lane += kWideRowBlock) {
      const v16sf xv = v16sf{} + x[c];
      acc += v16_load(lane) * xv;
    }
    float a[kWideRowBlock];
    __builtin_memcpy(a, &acc, sizeof acc);
    for (std::size_t i = 0; i < kWideRowBlock; ++i)
      ok = finish(a[i], out + r + i, ep, check, ok);
  }
  if (tail != 0)
    ok = wide_dense_tail(panel + full * full_stride, bias,
                         full * kWideRowBlock, tail, cols, x, out, ep,
                         check, ok);
  return ok;
}

#else  // !SX_WIDE_X86: the SIMD entry points are the twin itself.

bool matvec_wide_avx2(const float* panel, const float* bias,
                      std::size_t rows, std::size_t cols, const float* x,
                      float* out, Epilogue ep, bool check) noexcept {
  return matvec_wide_scalar(panel, bias, rows, cols, x, out, ep, check);
}

bool matvec_wide_avx512(const float* panel, const float* bias,
                        std::size_t rows, std::size_t cols, const float* x,
                        float* out, Epilogue ep, bool check) noexcept {
  return matvec_wide_scalar(panel, bias, rows, cols, x, out, ep, check);
}

#endif  // SX_WIDE_X86

std::size_t wide_conv_panel_floats(std::size_t out_c,
                                   std::size_t patch) noexcept {
  return (out_c / kWideConvLanes) * align_up(patch * kWideConvLanes);
}

void pack_wide_conv_panel(const float* wt, std::size_t out_c,
                          std::size_t patch, float* panel) noexcept {
  const std::size_t total = wide_conv_panel_floats(out_c, patch);
  for (std::size_t i = 0; i < total; ++i) panel[i] = 0.0f;  // padding
  const std::size_t gstride = align_up(patch * kWideConvLanes);
  for (std::size_t g = 0; g < out_c / kWideConvLanes; ++g) {
    float* gp = panel + g * gstride;
    for (std::size_t j = 0; j < patch; ++j)
      for (std::size_t i = 0; i < kWideConvLanes; ++i)
        gp[j * kWideConvLanes + i] = wt[(g * kWideConvLanes + i) * patch + j];
  }
}

namespace {

/// Scalar core of one wide conv lane group — the canonical tree the SIMD
/// group sweeps reproduce.
inline bool wide_conv_group_scalar(const float* gp, const float* bias,
                                   const ConvTables& t, const float* col,
                                   float* out, std::size_t oc0, Epilogue ep,
                                   bool check, bool ok) noexcept {
  float* o[kWideConvLanes];
  for (std::size_t i = 0; i < kWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    float acc[kWideConvLanes];
    for (std::size_t i = 0; i < kWideConvLanes; ++i)
      acc[i] = bias[oc0 + i];
    const float* c = col + base;
    if (taps == t.patch) {
      const float* lane = gp;
      for (std::size_t j = 0; j < taps; ++j, lane += kWideConvLanes) {
        const float v = c[j];
        for (std::size_t i = 0; i < kWideConvLanes; ++i)
          acc[i] += lane[i] * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const float v = c[j];
        const float* lane = gp + wo[j] * kWideConvLanes;
        for (std::size_t i = 0; i < kWideConvLanes; ++i)
          acc[i] += lane[i] * v;
      }
    }
    for (std::size_t i = 0; i < kWideConvLanes; ++i)
      ok = finish(acc[i], o[i] + p, ep, check, ok);
  }
  return ok;
}

}  // namespace

bool conv2d_im2col_wide_scalar(const float* panel, const float* wt,
                               const float* bias, const ConvTables& t,
                               const float* col, float* out, Epilogue ep,
                               bool check) noexcept {
  bool ok = true;
  const std::size_t gstride = align_up(t.patch * kWideConvLanes);
  const std::size_t groups = t.out_c / kWideConvLanes;
  for (std::size_t g = 0; g < groups; ++g)
    ok = wide_conv_group_scalar(panel + g * gstride, bias, t, col, out,
                                g * kWideConvLanes, ep, check, ok);
  return detail::conv_tail_sweep(wt, bias, t, col, out,
                                 groups * kWideConvLanes, ep, check, ok);
}

#if SX_WIDE_X86

namespace {

/// One 8-lane conv group on 256-bit vectors: every tap broadcasts the
/// shared column value and folds into its own channel lane only.
__attribute__((target("avx2")))
inline bool wide_conv_group_avx2(const float* gp, const float* bias,
                                 const ConvTables& t, const float* col,
                                 float* out, std::size_t oc0, Epilogue ep,
                                 bool check, bool ok) noexcept {
  float* o[kWideConvLanes];
  for (std::size_t i = 0; i < kWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    v8sf acc = v8_load(bias + oc0);
    const float* c = col + base;
    if (taps == t.patch) {
      const float* lane = gp;
      for (std::size_t j = 0; j < taps; ++j, lane += kWideConvLanes)
        acc += v8_load(lane) * (v8sf{} + c[j]);
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j)
        acc += v8_load(gp + wo[j] * kWideConvLanes) * (v8sf{} + c[j]);
    }
    float a[kWideConvLanes];
    __builtin_memcpy(a, &acc, sizeof acc);
    for (std::size_t i = 0; i < kWideConvLanes; ++i)
      ok = finish(a[i], o[i] + p, ep, check, ok);
  }
  return ok;
}

/// Two adjacent 8-lane groups per pixel sweep — 16 output channels in
/// flight per tap (the AVX-512-class working set). The chains stay
/// per-channel serial; pairing only adds ILP.
__attribute__((target("avx512f")))
inline bool wide_conv_group_pair_avx512(const float* gp0, const float* gp1,
                                        const float* bias,
                                        const ConvTables& t,
                                        const float* col, float* out,
                                        std::size_t oc0, Epilogue ep,
                                        bool check, bool ok) noexcept {
  float* o[2 * kWideConvLanes];
  for (std::size_t i = 0; i < 2 * kWideConvLanes; ++i)
    o[i] = out + (oc0 + i) * t.opix;
  for (std::size_t p = 0; p < t.opix; ++p) {
    const std::size_t base = t.pix_off[p];
    const std::size_t taps = t.pix_off[p + 1] - base;
    v8sf acc0 = v8_load(bias + oc0);
    v8sf acc1 = v8_load(bias + oc0 + kWideConvLanes);
    const float* c = col + base;
    if (taps == t.patch) {
      const float* lane0 = gp0;
      const float* lane1 = gp1;
      for (std::size_t j = 0; j < taps;
           ++j, lane0 += kWideConvLanes, lane1 += kWideConvLanes) {
        const v8sf v = v8sf{} + c[j];
        acc0 += v8_load(lane0) * v;
        acc1 += v8_load(lane1) * v;
      }
    } else {
      const std::uint32_t* wo = t.w_ofs + base;
      for (std::size_t j = 0; j < taps; ++j) {
        const v8sf v = v8sf{} + c[j];
        acc0 += v8_load(gp0 + wo[j] * kWideConvLanes) * v;
        acc1 += v8_load(gp1 + wo[j] * kWideConvLanes) * v;
      }
    }
    float a[2 * kWideConvLanes];
    __builtin_memcpy(a, &acc0, sizeof acc0);
    __builtin_memcpy(a + kWideConvLanes, &acc1, sizeof acc1);
    for (std::size_t i = 0; i < 2 * kWideConvLanes; ++i)
      ok = finish(a[i], o[i] + p, ep, check, ok);
  }
  return ok;
}

}  // namespace

bool conv2d_im2col_wide_avx2(const float* panel, const float* wt,
                             const float* bias, const ConvTables& t,
                             const float* col, float* out, Epilogue ep,
                             bool check) noexcept {
  bool ok = true;
  const std::size_t gstride = align_up(t.patch * kWideConvLanes);
  const std::size_t groups = t.out_c / kWideConvLanes;
  for (std::size_t g = 0; g < groups; ++g)
    ok = wide_conv_group_avx2(panel + g * gstride, bias, t, col, out,
                              g * kWideConvLanes, ep, check, ok);
  return detail::conv_tail_sweep(wt, bias, t, col, out,
                                 groups * kWideConvLanes, ep, check, ok);
}

bool conv2d_im2col_wide_avx512(const float* panel, const float* wt,
                               const float* bias, const ConvTables& t,
                               const float* col, float* out, Epilogue ep,
                               bool check) noexcept {
  bool ok = true;
  const std::size_t gstride = align_up(t.patch * kWideConvLanes);
  const std::size_t groups = t.out_c / kWideConvLanes;
  std::size_t g = 0;
  for (; g + 2 <= groups; g += 2)
    ok = wide_conv_group_pair_avx512(panel + g * gstride,
                                     panel + (g + 1) * gstride, bias, t,
                                     col, out, g * kWideConvLanes, ep,
                                     check, ok);
  for (; g < groups; ++g)
    ok = wide_conv_group_avx2(panel + g * gstride, bias, t, col, out,
                              g * kWideConvLanes, ep, check, ok);
  return detail::conv_tail_sweep(wt, bias, t, col, out,
                                 groups * kWideConvLanes, ep, check, ok);
}

#else  // !SX_WIDE_X86

bool conv2d_im2col_wide_avx2(const float* panel, const float* wt,
                             const float* bias, const ConvTables& t,
                             const float* col, float* out, Epilogue ep,
                             bool check) noexcept {
  return conv2d_im2col_wide_scalar(panel, wt, bias, t, col, out, ep, check);
}

bool conv2d_im2col_wide_avx512(const float* panel, const float* wt,
                               const float* bias, const ConvTables& t,
                               const float* col, float* out, Epilogue ep,
                               bool check) noexcept {
  return conv2d_im2col_wide_scalar(panel, wt, bias, t, col, out, ep, check);
}

#endif  // SX_WIDE_X86

DenseKernelFn wide_dense_kernel(WideIsa isa) noexcept {
  switch (isa) {
    case WideIsa::kAvx2: return &matvec_wide_avx2;
    case WideIsa::kAvx512: return &matvec_wide_avx512;
    case WideIsa::kScalar: break;
  }
  return &matvec_wide_scalar;
}

ConvKernelFn wide_conv_kernel(WideIsa isa) noexcept {
  switch (isa) {
    case WideIsa::kAvx2: return &conv2d_im2col_wide_avx2;
    case WideIsa::kAvx512: return &conv2d_im2col_wide_avx512;
    case WideIsa::kScalar: break;
  }
  return &conv2d_im2col_wide_scalar;
}

}  // namespace sx::tensor::kernels
