#include "dl/prune.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace sx::dl {
namespace {

/// The weight portion (excluding bias) of a parametric layer, or empty.
std::span<float> weight_span(Layer& layer) {
  if (auto* d = dynamic_cast<Dense*>(&layer)) return d->weights();
  if (layer.kind() == LayerKind::kConv2d) {
    auto& c = static_cast<Conv2d&>(layer);
    const std::size_t n_w =
        c.out_channels() * c.in_channels() * c.kernel() * c.kernel();
    return layer.params().first(n_w);
  }
  return {};
}

}  // namespace

PruneReport prune_by_magnitude(Model& model, double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("prune_by_magnitude: fraction out of [0,1]");
  PruneReport report;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    auto w = weight_span(model.layer(i));
    if (w.empty()) continue;
    report.total_weights += w.size();
    const auto k = static_cast<std::size_t>(
        fraction * static_cast<double>(w.size()));
    if (k == 0) continue;
    std::vector<float> mags(w.size());
    for (std::size_t j = 0; j < w.size(); ++j) mags[j] = std::fabs(w[j]);
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     sorted.end());
    const float cut = sorted[k - 1];
    std::size_t pruned = 0;
    for (std::size_t j = 0; j < w.size() && pruned < k; ++j) {
      if (mags[j] <= cut && w[j] != 0.0f) {
        w[j] = 0.0f;
        ++pruned;
      }
    }
    report.pruned_weights += pruned;
  }
  return report;
}

double measured_sparsity(const Model& model) {
  std::size_t total = 0, zeros = 0;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    // const_cast is confined to reading: weight_span needs a Layer&.
    auto w = weight_span(const_cast<Model&>(model).layer(i));
    total += w.size();
    for (float v : w) zeros += (v == 0.0f) ? 1 : 0;
  }
  return total ? static_cast<double>(zeros) / static_cast<double>(total) : 0.0;
}

}  // namespace sx::dl
