#include "dl/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sx::dl {
namespace {

using tensor::Shape;
using tensor::Tensor;

constexpr std::size_t kSide = kRoadSceneSide;

float clamp01(float v) noexcept { return std::min(1.0f, std::max(0.0f, v)); }

/// Fills a 1xHxW image with a smooth vertical background gradient + noise.
void paint_background(Tensor& img, util::Xoshiro256& rng, float base,
                      float noise_sigma) {
  const std::size_t h = img.shape()[1], w = img.shape()[2];
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x) {
      const float grad = 0.08f * static_cast<float>(y) / static_cast<float>(h);
      img.at(0, y, x) = clamp01(
          base + grad + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
    }
}

Region paint_rect(Tensor& img, util::Xoshiro256& rng, std::size_t rect_h,
                  std::size_t rect_w, float brightness, float noise_sigma) {
  const std::size_t h = img.shape()[1], w = img.shape()[2];
  const std::size_t y0 = rng.below(h - rect_h);
  const std::size_t x0 = rng.below(w - rect_w);
  for (std::size_t y = y0; y < y0 + rect_h; ++y)
    for (std::size_t x = x0; x < x0 + rect_w; ++x)
      img.at(0, y, x) = clamp01(
          brightness + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
  return Region{y0, x0, y0 + rect_h, x0 + rect_w};
}

Region paint_disc(Tensor& img, util::Xoshiro256& rng, std::size_t radius,
                  float brightness, float noise_sigma) {
  const std::size_t h = img.shape()[1], w = img.shape()[2];
  const std::size_t cy = radius + rng.below(h - 2 * radius);
  const std::size_t cx = radius + rng.below(w - 2 * radius);
  for (std::size_t y = cy - radius; y <= cy + radius; ++y)
    for (std::size_t x = cx - radius; x <= cx + radius; ++x) {
      const auto dy = static_cast<double>(y) - static_cast<double>(cy);
      const auto dx = static_cast<double>(x) - static_cast<double>(cx);
      if (dy * dy + dx * dx <= static_cast<double>(radius * radius))
        img.at(0, y, x) = clamp01(
            brightness + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
    }
  return Region{cy - radius, cx - radius, cy + radius + 1, cx + radius + 1};
}

}  // namespace

Dataset make_road_scene(std::size_t n, std::uint64_t seed,
                        float noise_sigma) {
  Dataset ds;
  ds.num_classes = kRoadSceneClasses;
  ds.input_shape = Shape::chw(1, kSide, kSide);
  ds.samples.reserve(n);
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{ds.input_shape};
    const auto cls = static_cast<RoadSceneClass>(i % kRoadSceneClasses);
    s.label = static_cast<std::size_t>(cls);
    const float base = 0.15f + static_cast<float>(rng.uniform()) * 0.10f;
    paint_background(s.input, rng, base, noise_sigma);
    switch (cls) {
      case RoadSceneClass::kClearRoad:
        break;
      case RoadSceneClass::kVehicle: {
        const std::size_t rh = 3 + rng.below(3);   // 3..5
        const std::size_t rw = 5 + rng.below(4);   // 5..8
        s.signal = paint_rect(s.input, rng, rh, rw, 0.85f, noise_sigma);
        break;
      }
      case RoadSceneClass::kPedestrian: {
        const std::size_t rh = 7 + rng.below(4);   // 7..10
        const std::size_t rw = 1 + rng.below(2);   // 1..2
        s.signal = paint_rect(s.input, rng, rh, rw, 0.80f, noise_sigma);
        break;
      }
      case RoadSceneClass::kObstacle: {
        const std::size_t r = 2 + rng.below(2);    // 2..3
        s.signal = paint_disc(s.input, rng, r, 0.90f, noise_sigma);
        break;
      }
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Dataset make_railway_obstacle(std::size_t n, std::uint64_t seed,
                              float noise_sigma) {
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::chw(1, kSide, kSide);
  ds.samples.reserve(n);
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{ds.input_shape};
    s.label = i % 2;
    paint_background(s.input, rng, 0.12f, noise_sigma);
    // Rails: two bright vertical lines at columns 5 and 10 (+ jitter).
    const std::size_t rail_l = 4 + rng.below(2);
    const std::size_t rail_r = rail_l + 5 + rng.below(2);
    for (std::size_t y = 0; y < kSide; ++y) {
      s.input.at(0, y, rail_l) = clamp01(
          0.7f + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
      s.input.at(0, y, rail_r) = clamp01(
          0.7f + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
    }
    if (s.label == 1) {
      // Obstacle between the rails.
      const std::size_t r = 1 + rng.below(2);
      const std::size_t cy = 3 + rng.below(kSide - 6);
      const std::size_t cx = rail_l + 2 + rng.below(rail_r - rail_l - 3);
      Region reg{cy - std::min(cy, r), cx - std::min(cx, r),
                 std::min(kSide, cy + r + 1), std::min(kSide, cx + r + 1)};
      for (std::size_t y = reg.y0; y < reg.y1; ++y)
        for (std::size_t x = reg.x0; x < reg.x1; ++x)
          s.input.at(0, y, x) = clamp01(
              0.95f + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
      s.signal = reg;
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Dataset make_digits(std::size_t n, std::uint64_t seed, float noise_sigma) {
  // Seven-segment encodings, one bit per segment:
  //   bit0 top, bit1 top-left, bit2 top-right, bit3 middle,
  //   bit4 bottom-left, bit5 bottom-right, bit6 bottom.
  static constexpr unsigned kSegments[kDigitClasses] = {
      0b1110111,  // 0
      0b0100100,  // 1
      0b1011101,  // 2
      0b1101101,  // 3
      0b0101110,  // 4
      0b1101011,  // 5
      0b1111011,  // 6
      0b0100101,  // 7
      0b1111111,  // 8
      0b1101111,  // 9
  };
  constexpr std::size_t kGlyphH = 5, kGlyphW = 3;
  Dataset ds;
  ds.num_classes = kDigitClasses;
  ds.input_shape = Shape::chw(1, kDigitSide, kDigitSide);
  ds.samples.reserve(n);
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{ds.input_shape};
    s.label = i % kDigitClasses;
    const float base = 0.08f + static_cast<float>(rng.uniform()) * 0.06f;
    paint_background(s.input, rng, base, noise_sigma);
    const std::size_t y0 = rng.below(kDigitSide - kGlyphH + 1);
    const std::size_t x0 = rng.below(kDigitSide - kGlyphW + 1);
    const float stroke = 0.70f + static_cast<float>(rng.uniform()) * 0.25f;
    const unsigned seg = kSegments[s.label];
    auto stroke_at = [&](std::size_t dy, std::size_t dx) {
      s.input.at(0, y0 + dy, x0 + dx) = clamp01(
          stroke + static_cast<float>(rng.gaussian(0.0, noise_sigma)));
    };
    for (std::size_t dx = 0; dx < kGlyphW; ++dx) {
      if (seg & 0b0000001u) stroke_at(0, dx);
      if (seg & 0b0001000u) stroke_at(2, dx);
      if (seg & 0b1000000u) stroke_at(4, dx);
    }
    for (std::size_t dy = 0; dy < 3; ++dy) {
      if (seg & 0b0000010u) stroke_at(dy, 0);
      if (seg & 0b0000100u) stroke_at(dy, kGlyphW - 1);
      if (seg & 0b0010000u) stroke_at(dy + 2, 0);
      if (seg & 0b0100000u) stroke_at(dy + 2, kGlyphW - 1);
    }
    s.signal = Region{y0, x0, y0 + kGlyphH, x0 + kGlyphW};
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Dataset make_satellite_telemetry(std::size_t n, std::uint64_t seed,
                                 double anomaly_fraction) {
  Dataset ds;
  ds.num_classes = 2;
  ds.input_shape = Shape::vec(kTelemetryDim);
  ds.samples.reserve(n);
  util::Xoshiro256 rng{seed};
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    s.input = Tensor{ds.input_shape};
    const double phase = rng.uniform(0.0, 6.283185307);
    const double amp = 0.5 + rng.uniform() * 0.3;
    for (std::size_t k = 0; k < kTelemetryDim; ++k) {
      // Correlated channels: harmonics of one orbit phase + sensor noise.
      const double base =
          amp * std::sin(phase + 0.35 * static_cast<double>(k)) +
          0.2 * std::sin(2.0 * phase + 0.11 * static_cast<double>(k));
      s.input.at(k) = static_cast<float>(base + rng.gaussian(0.0, 0.03));
    }
    if (rng.uniform() < anomaly_fraction) {
      s.label = 1;
      const std::size_t mode = rng.below(3);
      if (mode == 0) {  // spike
        s.input.at(rng.below(kTelemetryDim)) += 3.0f;
      } else if (mode == 1) {  // stuck sensor bank
        const std::size_t start = rng.below(kTelemetryDim - 8);
        const float v = s.input.at(start);
        for (std::size_t k = start; k < start + 8; ++k) s.input.at(k) = v;
      } else {  // drift
        for (std::size_t k = 0; k < kTelemetryDim; ++k)
          s.input.at(k) += 0.05f * static_cast<float>(k);
      }
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

const char* to_string(Corruption c) noexcept {
  switch (c) {
    case Corruption::kGaussianNoise: return "gaussian-noise";
    case Corruption::kInvert: return "invert";
    case Corruption::kFog: return "fog";
    case Corruption::kUniformRandom: return "uniform-random";
  }
  return "unknown";
}

Dataset corrupt(const Dataset& ds, Corruption c, std::uint64_t seed,
                float severity) {
  Dataset out;
  out.num_classes = ds.num_classes;
  out.input_shape = ds.input_shape;
  out.samples.reserve(ds.samples.size());
  util::Xoshiro256 rng{seed};
  for (const auto& s : ds.samples) {
    Sample t;
    t.label = s.label;
    t.signal = s.signal;
    t.input = s.input;
    auto data = t.input.data();
    switch (c) {
      case Corruption::kGaussianNoise:
        for (auto& v : data)
          v = clamp01(v + static_cast<float>(
                              rng.gaussian(0.0, 0.35 * static_cast<double>(severity))));
        break;
      case Corruption::kInvert:
        for (auto& v : data) v = 1.0f - v;
        break;
      case Corruption::kFog:
        for (auto& v : data)
          v = clamp01(v * (1.0f - 0.7f * severity) + 0.7f * severity);
        break;
      case Corruption::kUniformRandom:
        for (auto& v : data) v = static_cast<float>(rng.uniform());
        break;
    }
    out.samples.push_back(std::move(t));
  }
  return out;
}

void split(const Dataset& ds, double train_fraction, Dataset& train,
           Dataset& test) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::invalid_argument("split: fraction must be in (0,1)");
  train.samples.clear();
  test.samples.clear();
  train.num_classes = test.num_classes = ds.num_classes;
  train.input_shape = test.input_shape = ds.input_shape;
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(ds.samples.size()));
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    (i < cut ? train : test).samples.push_back(ds.samples[i]);
  }
}

}  // namespace sx::dl
