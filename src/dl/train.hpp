// Offline reference training (SGD with momentum, cross-entropy loss).
//
// Training is an offline, non-FUSA activity: it may allocate and throw. Its
// outputs — the trained parameters — are what gets frozen, hashed and
// deployed into the StaticEngine.
#pragma once

#include <vector>

#include "dl/dataset.hpp"
#include "dl/model.hpp"

namespace sx::dl {

enum class Optimizer : std::uint8_t { kSgdMomentum, kAdam };

struct TrainConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  std::size_t epochs = 10;
  std::size_t batch_size = 16;
  std::uint64_t shuffle_seed = 1;
  /// Gradient-norm clip (0 disables).
  double grad_clip = 5.0;
  Optimizer optimizer = Optimizer::kSgdMomentum;
  /// Adam moments (used when optimizer == kAdam).
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_eps = 1e-8;
  /// FGSM adversarial training: with probability 1/2 each sample is
  /// replaced by its eps-FGSM adversarial counterpart (0 disables).
  float adversarial_eps = 0.0f;
  /// On-the-fly augmentation for CHW image inputs: horizontal flips and
  /// +-1 pixel shifts.
  bool augment = false;
};

struct EpochStats {
  double loss = 0.0;
  double accuracy = 0.0;
};

/// Cross-entropy of softmax(logits) against a one-hot label; also writes the
/// gradient dL/dlogits (softmax-CE fused gradient: p - onehot).
double cross_entropy_with_grad(std::span<const float> logits,
                               std::size_t label, std::span<float> grad);

class Trainer {
 public:
  explicit Trainer(TrainConfig cfg = {}) : cfg_(cfg) {}

  /// Runs SGD on `model` over `ds`; returns per-epoch stats.
  std::vector<EpochStats> fit(Model& model, const Dataset& ds);

  /// Classification accuracy of `model` (argmax of logits) on `ds`.
  static double evaluate_accuracy(const Model& model, const Dataset& ds);

  /// Mean cross-entropy on `ds`.
  static double evaluate_loss(const Model& model, const Dataset& ds);

 private:
  struct OptimizerState {
    std::vector<std::vector<float>> velocity;  // SGD momentum / Adam m
    std::vector<std::vector<float>> second;    // Adam v
    std::uint64_t step = 0;
  };

  /// Applies one optimizer step from the accumulated gradients.
  void apply_step(Model& model, OptimizerState& state,
                  std::size_t batch_size) const;

  TrainConfig cfg_;
};

/// Horizontal flip + integer shift augmentation for CHW images
/// (deterministic given the RNG).
tensor::Tensor augment_image(const tensor::Tensor& img,
                             util::Xoshiro256& rng);

/// In-place FGSM adversarial example used for adversarial training.
tensor::Tensor fgsm_training_example(Model& model, const tensor::Tensor& input,
                                     std::size_t label, float eps);

/// Estimates per-channel activation statistics at a BatchNorm layer by
/// running the model prefix over the dataset, then freezes them into the
/// layer. Call once after training for each BatchNorm in the model.
void calibrate_batchnorm(Model& model, const Dataset& ds);

}  // namespace sx::dl
