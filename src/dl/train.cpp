#include "dl/train.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sx::dl {

double cross_entropy_with_grad(std::span<const float> logits,
                               std::size_t label, std::span<float> grad) {
  if (label >= logits.size() || grad.size() != logits.size())
    throw std::invalid_argument("cross_entropy_with_grad: bad sizes");
  // Stable log-softmax.
  float m = -std::numeric_limits<float>::infinity();
  for (float v : logits) m = v > m ? v : m;
  double z = 0.0;
  for (float v : logits) z += std::exp(static_cast<double>(v - m));
  const double log_z = std::log(z);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double p = std::exp(static_cast<double>(logits[i] - m)) / z;
    grad[i] = static_cast<float>(p - (i == label ? 1.0 : 0.0));
  }
  return -(static_cast<double>(logits[label] - m) - log_z);
}

tensor::Tensor augment_image(const tensor::Tensor& img,
                             util::Xoshiro256& rng) {
  if (img.shape().rank() != 3) return img;
  const std::size_t c = img.shape()[0];
  const std::size_t h = img.shape()[1];
  const std::size_t w = img.shape()[2];
  const bool flip = rng.uniform() < 0.5;
  const int dy = static_cast<int>(rng.below(3)) - 1;
  const int dx = static_cast<int>(rng.below(3)) - 1;
  tensor::Tensor out{img.shape()};
  for (std::size_t ch = 0; ch < c; ++ch)
    for (std::size_t y = 0; y < h; ++y)
      for (std::size_t x = 0; x < w; ++x) {
        const int sy = static_cast<int>(y) - dy;
        int sx = static_cast<int>(flip ? (w - 1 - x) : x) - dx;
        if (sy < 0 || sy >= static_cast<int>(h) || sx < 0 ||
            sx >= static_cast<int>(w)) {
          out.at(ch, y, x) = 0.0f;
        } else {
          out.at(ch, y, x) = img.at(ch, static_cast<std::size_t>(sy),
                                    static_cast<std::size_t>(sx));
        }
      }
  return out;
}

tensor::Tensor fgsm_training_example(Model& model, const tensor::Tensor& input,
                                     std::size_t label, float eps) {
  const auto acts = model.forward_trace(input);
  tensor::Tensor grad_logits{acts.back().shape()};
  (void)cross_entropy_with_grad(acts.back().data(), label,
                                grad_logits.data());
  tensor::Tensor grad_in = model.backward(acts, grad_logits);
  model.zero_grads();
  tensor::Tensor adv = input;
  for (std::size_t i = 0; i < adv.size(); ++i) {
    const float g = grad_in.at(i);
    const float step = eps * (g > 0.0f ? 1.0f : (g < 0.0f ? -1.0f : 0.0f));
    adv.at(i) = std::min(1.0f, std::max(0.0f, adv.at(i) + step));
  }
  return adv;
}

std::vector<EpochStats> Trainer::fit(Model& model, const Dataset& ds) {
  if (ds.samples.empty()) throw std::invalid_argument("Trainer::fit: empty dataset");
  if (model.output_shape().rank() != 1)
    throw std::invalid_argument("Trainer::fit: model must output logits");
  const std::size_t n_classes = model.output_shape().size();

  OptimizerState state;
  state.velocity.reserve(model.layer_count());
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    state.velocity.emplace_back(model.layer(i).param_count(), 0.0f);
    state.second.emplace_back(
        cfg_.optimizer == Optimizer::kAdam ? model.layer(i).param_count() : 0,
        0.0f);
  }

  std::vector<std::size_t> order(ds.samples.size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng{cfg_.shuffle_seed};

  std::vector<EpochStats> history;
  history.reserve(cfg_.epochs);
  for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.below(i)]);

    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t batch_fill = 0;
    model.zero_grads();
    for (std::size_t k = 0; k < order.size(); ++k) {
      const Sample& s = ds.samples[order[k]];
      if (s.label >= n_classes)
        throw std::invalid_argument("Trainer::fit: label out of range");

      tensor::Tensor input = s.input;
      if (cfg_.augment) input = augment_image(input, rng);
      if (cfg_.adversarial_eps > 0.0f && rng.uniform() < 0.5)
        input = fgsm_training_example(model, input, s.label,
                                      cfg_.adversarial_eps);

      const auto acts = model.forward_trace(input);
      const tensor::Tensor& logits = acts.back();
      tensor::Tensor grad{logits.shape()};
      loss_sum += cross_entropy_with_grad(logits.data(), s.label, grad.data());
      if (tensor::argmax(logits.view()) == s.label) ++correct;
      (void)model.backward(acts, grad);
      ++batch_fill;

      const bool last = (k + 1 == order.size());
      if (batch_fill == cfg_.batch_size || last) {
        apply_step(model, state, batch_fill);
        model.zero_grads();
        batch_fill = 0;
      }
    }
    history.push_back(EpochStats{
        loss_sum / static_cast<double>(order.size()),
        static_cast<double>(correct) / static_cast<double>(order.size())});
  }
  return history;
}

void Trainer::apply_step(Model& model, OptimizerState& state,
                         std::size_t batch_size) const {
  const auto scale = 1.0 / static_cast<double>(batch_size);
  // Optional global gradient clipping.
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < model.layer_count(); ++i)
    for (float g : model.layer(i).param_grads())
      norm_sq += static_cast<double>(g) * static_cast<double>(g) * scale *
                 scale;
  double clip_scale = 1.0;
  if (cfg_.grad_clip > 0.0) {
    const double norm = std::sqrt(norm_sq);
    if (norm > cfg_.grad_clip) clip_scale = cfg_.grad_clip / norm;
  }

  ++state.step;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    auto params = model.layer(i).params();
    auto grads = model.layer(i).param_grads();
    auto& vel = state.velocity[i];
    for (std::size_t j = 0; j < params.size(); ++j) {
      const double g = static_cast<double>(grads[j]) * scale * clip_scale;
      if (cfg_.optimizer == Optimizer::kSgdMomentum) {
        vel[j] =
            static_cast<float>(cfg_.momentum * static_cast<double>(vel[j]) -
                               cfg_.learning_rate * g);
        params[j] += vel[j];
      } else {
        auto& sec = state.second[i];
        vel[j] = static_cast<float>(
            cfg_.adam_beta1 * static_cast<double>(vel[j]) +
            (1.0 - cfg_.adam_beta1) * g);
        sec[j] = static_cast<float>(
            cfg_.adam_beta2 * static_cast<double>(sec[j]) +
            (1.0 - cfg_.adam_beta2) * g * g);
        const double m_hat =
            static_cast<double>(vel[j]) /
            (1.0 - std::pow(cfg_.adam_beta1, static_cast<double>(state.step)));
        const double v_hat =
            static_cast<double>(sec[j]) /
            (1.0 - std::pow(cfg_.adam_beta2, static_cast<double>(state.step)));
        params[j] -= static_cast<float>(
            cfg_.learning_rate * m_hat / (std::sqrt(v_hat) + cfg_.adam_eps));
      }
    }
  }
}

double Trainer::evaluate_accuracy(const Model& model, const Dataset& ds) {
  if (ds.samples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& s : ds.samples) {
    const tensor::Tensor logits = model.forward(s.input);
    if (tensor::argmax(logits.view()) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.samples.size());
}

double Trainer::evaluate_loss(const Model& model, const Dataset& ds) {
  if (ds.samples.empty()) return 0.0;
  double loss = 0.0;
  std::vector<float> grad;
  for (const auto& s : ds.samples) {
    const tensor::Tensor logits = model.forward(s.input);
    grad.assign(logits.size(), 0.0f);
    loss += cross_entropy_with_grad(logits.data(), s.label, grad);
  }
  return loss / static_cast<double>(ds.samples.size());
}

void calibrate_batchnorm(Model& model, const Dataset& ds) {
  for (std::size_t li = 0; li < model.layer_count(); ++li) {
    auto* bn = dynamic_cast<BatchNorm*>(&model.layer(li));
    if (bn == nullptr) continue;
    const std::size_t c = bn->channels();
    std::vector<double> sum(c, 0.0), sum_sq(c, 0.0);
    std::size_t count_per_channel = 0;
    for (const auto& s : ds.samples) {
      // Run the prefix up to (not including) this BatchNorm.
      tensor::Tensor cur = s.input;
      for (std::size_t i = 0; i < li; ++i) {
        tensor::Tensor next{model.activation_shape(i)};
        if (!ok(model.layer(i).forward(cur.view(), next.view())))
          throw std::runtime_error("calibrate_batchnorm: prefix failed");
        cur = std::move(next);
      }
      const std::size_t per = cur.size() / c;
      count_per_channel += per;
      for (std::size_t ch = 0; ch < c; ++ch)
        for (std::size_t i = 0; i < per; ++i) {
          const double v = cur.data()[ch * per + i];
          sum[ch] += v;
          sum_sq[ch] += v * v;
        }
    }
    if (count_per_channel == 0) continue;
    std::vector<float> mean(c), var(c);
    for (std::size_t ch = 0; ch < c; ++ch) {
      const double m = sum[ch] / static_cast<double>(count_per_channel);
      const double v =
          sum_sq[ch] / static_cast<double>(count_per_channel) - m * m;
      mean[ch] = static_cast<float>(m);
      var[ch] = static_cast<float>(std::max(v, 1e-8));
    }
    bn->set_statistics(mean, var);
  }
}

}  // namespace sx::dl
