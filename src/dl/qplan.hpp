// Deploy-time kernel plans for the int8 quantized path (pillar 3).
//
// QuantKernelPlan is the quantized sibling of dl::KernelPlan and shares
// its IR-backed construction: the QuantizedModel is lowered to the program
// IR (src/ir, elem_bytes = 1, input staged in-arena) and run through the
// same deterministic pass pipeline — dead-layer elimination, fusion
// legality (relu only: quantize() admits no other activation and int8
// ReLU after the requantize clamp is exact), and buffer-lifetime analysis
// coloring the int8 activation lifetimes into shared byte-arena slots.
// The executable steps are then built from the surviving ops:
//
//   - Dense layers run the register-blocked int8 matvec kernels from
//     tensor/qkernels.hpp; in kPacked mode their weights are additionally
//     snapshotted into cache-line-aligned row-blocked panels owned by the
//     plan;
//   - Conv2d layers are lowered to int8 gather + blocked GEMM through the
//     same ragged im2col index tables the float plan uses (the tables are
//     element-type-agnostic); the gathered int8 column is a byte-arena
//     slot assigned by the liveness pass;
//   - a Dense/Conv2d whose output's single live consumer is the int8 ReLU
//     absorbs it: the requantize epilogue applies `q > 0 ? q : 0` on the
//     just-quantized value, exactly what the separate reference layer
//     computes;
//   - Flatten (a verbatim byte copy in the reference) is eliminated by
//     dce; pooling layers become kReference steps executed through
//     QuantizedModel::apply_layer.
//
// All planned kernels preserve the reference per-output int32 accumulation
// order and finish with the reference requantization expression, so a
// planned QuantEngine is bitwise identical to QuantizedModel::run —
// including the per-layer saturation counters (dl_quant_kernels_test
// proves both differentially).
//
// Staleness contract: kBlocked (the kAuto default) reads the quantized
// weights live on every run. kPacked snapshots Dense rows and full
// kQConvLanes-channel conv groups into panels; kWide does the same at the
// widened geometry (kQWideRowBlock rows, kQWideConvLanes channels) and
// additionally resolves, once, which SIMD variant of the wide int8
// kernels runs (platform::CpuProbe + SX_KERNEL_ISA — see dl/plan.hpp;
// the selection affects timing only, never output or the overflow
// envelope). Callers that mutate the quantized weights afterwards must
// call repack(). KernelMode and the SX_KERNEL_REFERENCE escape hatch are
// shared with the float plan (dl/plan.hpp).
//
// One plan is immutable after construction (repack() aside) and safe to
// share read-only across BatchRunner workers; each worker's arena slots
// and saturation counters live in its own engine.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dl/plan.hpp"
#include "dl/quant.hpp"
#include "tensor/arena.hpp"
#include "tensor/qkernels.hpp"

namespace sx::dl {

/// One executable step of a quantized plan: one surviving IR op — a
/// layer, or a Dense/Conv2d fused with its following int8 ReLU. Pointer
/// members alias the QuantizedModel's live parameter storage (or the
/// plan's own tables/panels) and stay valid for the model's lifetime.
/// Offsets are byte indices into the engine's arena base block.
struct QuantKernelStep {
  enum class Kind : std::uint8_t { kReference, kDense, kConv2d };

  Kind kind = Kind::kReference;
  std::size_t first_layer = 0;  ///< model layer index this step starts at
  std::size_t last_layer = 0;   ///< fused ReLU layer, or first_layer

  // Byte-arena addressing (liveness-pass assignment).
  std::size_t in_offset = ir::kNone;
  std::size_t out_offset = ir::kNone;
  std::size_t scratch_offset = ir::kNone;
  std::size_t in_elems = 0;
  std::size_t out_elems = 0;

  // kDense / kConv2d
  std::size_t rows = 0, cols = 0;       ///< Dense dims
  const std::int8_t* weights = nullptr; ///< live natural-layout weights
  const std::int8_t* panel = nullptr;   ///< packed panel (kPacked/kWide)
  tensor::qkernels::Requant rq{};       ///< fused requantize(+ReLU) params

  /// Kernel entry points resolved once at plan construction (mode + probed
  /// ISA) — the engine hot path is a branch-free indirect call. dense_arg
  /// is the live weights (kBlocked) or the panel (kPacked/kWide); conv
  /// kernels always receive both (tail channels read live).
  tensor::qkernels::QDenseKernelFn dense_fn = nullptr;
  const std::int8_t* dense_arg = nullptr;
  tensor::qkernels::QConvKernelFn conv_fn = nullptr;

  // kConv2d
  tensor::kernels::ConvTables conv{};  ///< tables owned by the plan
  std::size_t scratch = 0;  ///< im2col column bytes this step gathers
};

/// Deploy-time execution plan for one quantized model. Immutable after
/// construction except repack(); shareable read-only across workers.
class QuantKernelPlan {
 public:
  /// `mode` must be kBlocked, kPacked, or kWide (resolve kAuto first); the
  /// model must outlive the plan. kWide consults the CPU probe and the
  /// SX_KERNEL_ISA override here, exactly once.
  QuantKernelPlan(const QuantizedModel& model, KernelMode mode);

  QuantKernelPlan(const QuantKernelPlan&) = delete;
  QuantKernelPlan& operator=(const QuantKernelPlan&) = delete;

  KernelMode mode() const noexcept { return mode_; }
  std::span<const QuantKernelStep> steps() const noexcept {
    return {steps_.get(), step_count_};
  }

  /// The optimized program IR and its liveness-colored arena layout —
  /// the structures verify/range re-checks against the model.
  const ir::Program& program() const noexcept { return program_; }
  const ir::ArenaLayout& layout() const noexcept { return layout_; }
  /// Structured audit evidence emitted by each static-analysis pass.
  std::span<const ir::PassEvidence> pass_evidence() const noexcept {
    return {passes_.data(), passes_.size()};
  }

  /// Engine byte-arena demand (liveness-pass total, excluding slack).
  std::size_t arena_bytes() const noexcept { return layout_.total_elems; }
  /// Byte offset of the in-arena quantized input slot.
  std::size_t input_offset() const noexcept { return layout_.input_offset; }
  /// Byte offset of the program output.
  std::size_t output_offset() const noexcept { return output_offset_; }

  /// Per-inference scratch demand in bytes (max ragged im2col column over
  /// all conv steps).
  std::size_t scratch_bytes() const noexcept { return scratch_bytes_; }

  /// Deploy-time footprint of the packed panels (bytes; 0 in kBlocked).
  std::size_t panel_bytes() const noexcept { return panel_bytes_; }
  /// Total precomputed im2col gather entries across all conv steps.
  std::size_t table_entries() const noexcept { return table_entries_; }

  std::size_t planned_dense() const noexcept { return planned_dense_; }
  std::size_t planned_conv() const noexcept { return planned_conv_; }
  std::size_t fused_relus() const noexcept { return fused_; }
  std::size_t reference_steps() const noexcept { return reference_; }
  /// Layers eliminated by the dce pass (bit identities).
  std::size_t removed_layers() const noexcept { return removed_; }

  /// Re-snapshots the quantized weights into the packed panels
  /// (kPacked/kWide only; no-op in kBlocked mode).
  void repack() noexcept;

  /// The deploy-time CPU probe and ISA decision (kWide only; defaults in
  /// every other mode). Mirrors dl::KernelPlan.
  const platform::CpuProbe& cpu_probe() const noexcept { return probe_; }
  const platform::WideIsaSelection& isa_selection() const noexcept {
    return isa_sel_;
  }

  /// One-line evidence summary for core/report.
  std::string summary() const;

 private:
  const QuantizedModel* model_;
  KernelMode mode_;
  platform::CpuProbe probe_{};
  platform::WideIsaSelection isa_sel_{};
  ir::Program program_;
  ir::ArenaLayout layout_;
  std::vector<ir::PassEvidence> passes_;
  std::unique_ptr<QuantKernelStep[]> steps_;
  std::size_t step_count_ = 0;
  std::unique_ptr<std::uint32_t[]> tables_;  ///< pix_off + in_idx + w_ofs
  tensor::AlignedStorage<std::int8_t> panels_;  ///< cache-line-aligned base
  std::size_t output_offset_ = ir::kNone;
  std::size_t scratch_bytes_ = 0;
  std::size_t panel_bytes_ = 0;
  std::size_t table_entries_ = 0;
  std::size_t planned_dense_ = 0;
  std::size_t planned_conv_ = 0;
  std::size_t fused_ = 0;
  std::size_t reference_ = 0;
  std::size_t removed_ = 0;
};

struct QuantEngineConfig {
  /// Extra byte-arena capacity beyond the planned demand.
  std::size_t arena_slack = 0;
  /// Hot-path kernel selection (kAuto honors SX_KERNEL_REFERENCE).
  KernelMode kernels = KernelMode::kAuto;
};

/// Planned int8 inference engine: the quantized sibling of StaticEngine.
/// In planned modes the byte arena is the single liveness-colored base
/// block (the quantized input occupies its own slot inside it); reference
/// mode keeps the classic ping-pong pair as the unoptimized twin. run()
/// is noexcept and performs zero heap allocations. Outputs are bitwise
/// identical to QuantizedModel::run for every kernel mode.
class QuantEngine {
 public:
  /// Builds an engine-private plan (or none when the resolved mode is
  /// kReference). The model must outlive the engine.
  explicit QuantEngine(const QuantizedModel& model,
                       QuantEngineConfig cfg = {});
  /// Shares an externally owned plan (one plan, many workers). `plan` and
  /// the model must outlive the engine.
  QuantEngine(const QuantizedModel& model, const QuantKernelPlan& plan,
              QuantEngineConfig cfg = {});

  QuantEngine(const QuantEngine&) = delete;
  QuantEngine& operator=(const QuantEngine&) = delete;

  /// Int8 inference; output is dequantized float logits.
  Status run(tensor::ConstTensorView input,
             std::span<float> output) noexcept;

  std::uint64_t run_count() const noexcept { return runs_; }

  /// Cumulative requantization clips per layer across every run() —
  /// bitwise identical to the reference model's counters on the same
  /// inputs (fused-ReLU clips are attributed to the producing layer, where
  /// the reference also counts them; the ReLU layer itself never clips).
  std::span<const std::uint64_t> saturation_counts() const noexcept {
    return {sat_counts_.get(), layer_count_};
  }
  std::uint64_t saturation_total() const noexcept {
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < layer_count_; ++i) n += sat_counts_[i];
    return n;
  }

  /// The plan driving this engine (nullptr in reference mode).
  const QuantKernelPlan* plan() const noexcept { return plan_; }

  /// Re-snapshots the engine-private plan's packed weight panels after a
  /// deliberate mutation of the quantized weights (fault injection). No-op
  /// for blocked/reference plans, which read the live weights anyway. A
  /// *shared* plan is left untouched — its owner must coordinate repack()
  /// across every engine it serves.
  void repack() noexcept {
    if (owned_plan_ != nullptr) owned_plan_->repack();
  }

  std::size_t arena_capacity() const noexcept { return arena_.capacity(); }
  std::size_t arena_high_water_mark() const noexcept {
    return arena_.high_water_mark();
  }

 private:
  void init();
  Status run_planned(std::span<float> output) noexcept;
  Status run_reference(std::span<float> output) noexcept;

  const QuantizedModel* model_;
  QuantEngineConfig cfg_;
  std::unique_ptr<QuantKernelPlan> owned_plan_;
  const QuantKernelPlan* plan_;
  tensor::ByteArena arena_;
  std::span<std::int8_t> base_;  ///< planned mode: layout base block
  std::span<std::int8_t> ping_;  ///< reference mode only
  std::span<std::int8_t> pong_;  ///< reference mode only
  // Static sizes cached at construction so the noexcept hot path never
  // touches a throwing accessor.
  std::size_t layer_count_ = 0;
  std::size_t in_size_ = 0;
  std::size_t out_size_ = 0;
  std::size_t input_offset_ = 0;   ///< planned: in-arena input slot
  std::size_t output_offset_ = 0;  ///< planned: program output slot
  float in_scale_ = 1.0f;
  float final_scale_ = 1.0f;
  std::unique_ptr<std::size_t[]> act_sizes_;  ///< size after each layer
  std::unique_ptr<std::uint64_t[]> sat_counts_;
  std::uint64_t runs_ = 0;
};

}  // namespace sx::dl
