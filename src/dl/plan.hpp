// Deploy-time kernel plans (pillar 3: FUSA-compliant DL libraries).
//
// A KernelPlan is built exactly once per deployed model, at configuration
// time. It decides, from the static shapes alone, how every layer will
// execute on the hot path:
//
//   - Dense layers run the register-blocked matvec kernels from
//     tensor/kernels.hpp; in kPacked mode their weights are additionally
//     repacked into cache-line-aligned row-blocked panels owned by the
//     plan (a deploy-time snapshot — see the staleness contract below);
//   - Conv2d layers are lowered to gather + blocked GEMM through ragged
//     im2col index tables precomputed here; the only runtime scratch they
//     need (the gathered column) is sized by scratch_floats() and drawn
//     from each engine's pre-planned arena, so the hot path still performs
//     zero allocations;
//   - a Dense/Conv2d immediately followed by ReLU/Sigmoid/Tanh is fused
//     into one step with the activation applied in the kernel epilogue;
//   - every other layer becomes a kReference step and executes its
//     unmodified Layer::forward.
//
// All planned kernels preserve the reference per-output accumulation
// order, so a planned engine is bitwise identical to a reference engine
// (tensor_kernels_test proves this differentially; tensor_golden_test's
// pinned vectors stay valid).
//
// Staleness contract: kBlocked (the kAuto default) reads layer parameters
// live on every run, so in-place weight mutation — e.g. the SEU campaigns
// in safety/campaign.cpp injecting into a model behind a long-lived
// engine — is observed exactly as the reference path observes it. kPacked
// snapshots Dense weights into row-blocked panels and full
// kConvLanes-channel groups of Conv2d weights into tap-major lane panels
// for unit-stride access; callers that mutate weights afterwards must
// call repack(). The out_c % kConvLanes tail channels of a packed conv,
// and all conv weights in kBlocked mode, are always read live.
//
// One plan is immutable after construction (repack() aside) and safe to
// share read-only across BatchRunner workers; the per-inference im2col
// scratch lives in each worker's own arena.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "dl/model.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"

namespace sx::dl {

/// Hot-path kernel selection, resolved once at engine construction.
enum class KernelMode : std::uint8_t {
  kAuto,       ///< kBlocked unless the SX_KERNEL_REFERENCE env var forces
               ///< the reference loops (differential-testing escape hatch)
  kReference,  ///< original per-layer reference loops, no plan
  kBlocked,    ///< planned kernels over live layer parameters
  kPacked,     ///< kBlocked + Dense weights snapshotted into aligned panels
};

/// Applies the SX_KERNEL_REFERENCE escape hatch to kAuto (reads the
/// environment; call at configuration time only, never on the hot path).
KernelMode resolve_kernel_mode(KernelMode requested) noexcept;

const char* kernel_mode_name(KernelMode mode) noexcept;

/// One executable step of a plan: one layer, or a layer fused with its
/// following activation. Pointer members alias the model's live parameter
/// storage (or the plan's own tables/panels) and stay valid for the
/// model's lifetime.
struct KernelStep {
  /// kIdentity marks a layer whose forward is a verbatim bit copy
  /// (Flatten): the planned engine re-views the current buffer under the
  /// new shape instead of copying — bitwise identical by definition.
  enum class Kind : std::uint8_t { kReference, kDense, kConv2d, kIdentity };

  Kind kind = Kind::kReference;
  std::size_t first_layer = 0;  ///< model layer index this step starts at
  std::size_t layer_span = 1;   ///< 2 when a following activation is fused
  tensor::kernels::Epilogue epilogue = tensor::kernels::Epilogue::kNone;

  // kDense / kConv2d
  std::size_t rows = 0, cols = 0;  ///< Dense dims
  const float* weights = nullptr;  ///< live natural-layout weights
  const float* panel = nullptr;    ///< packed panel (kPacked), else null
  const float* bias = nullptr;

  // kConv2d
  tensor::kernels::ConvTables conv{};  ///< tables owned by the plan
  std::size_t scratch = 0;  ///< im2col column floats this step gathers
};

/// Deploy-time execution plan for one model. Immutable after construction
/// except repack(); shareable read-only across workers.
class KernelPlan {
 public:
  /// `mode` must be kBlocked or kPacked (resolve kAuto first); the model
  /// must outlive the plan.
  KernelPlan(const Model& model, KernelMode mode);

  KernelPlan(const KernelPlan&) = delete;
  KernelPlan& operator=(const KernelPlan&) = delete;

  KernelMode mode() const noexcept { return mode_; }
  std::span<const KernelStep> steps() const noexcept {
    return {steps_.get(), step_count_};
  }

  /// Per-inference scratch demand in floats (max ragged im2col column
  /// over all conv steps) — added to every engine's arena plan.
  std::size_t scratch_floats() const noexcept { return scratch_floats_; }

  /// Deploy-time storage footprint of the packed Dense and Conv2d panels
  /// (floats; zero in kBlocked mode).
  std::size_t panel_floats() const noexcept { return panel_floats_; }
  /// Total precomputed im2col gather entries across all conv steps.
  std::size_t table_entries() const noexcept { return table_entries_; }

  std::size_t planned_dense() const noexcept { return planned_dense_; }
  std::size_t planned_conv() const noexcept { return planned_conv_; }
  std::size_t fused_activations() const noexcept { return fused_; }
  std::size_t reference_steps() const noexcept { return reference_; }
  std::size_t identity_steps() const noexcept { return identity_; }

  /// Re-snapshots Dense and Conv2d weights into the packed panels
  /// (kPacked only; no-op in kBlocked mode). For callers that mutate
  /// weights in place after deployment.
  void repack() noexcept;

  /// One-line evidence summary for core/report.
  std::string summary() const;

 private:
  const Model* model_;
  KernelMode mode_;
  std::unique_ptr<KernelStep[]> steps_;
  std::size_t step_count_ = 0;
  std::unique_ptr<std::uint32_t[]> tables_;  ///< pix_off + in_idx + w_ofs
  tensor::AlignedStorage<float> panels_;  ///< cache-line-aligned base
  std::size_t scratch_floats_ = 0;
  std::size_t panel_floats_ = 0;
  std::size_t table_entries_ = 0;
  std::size_t planned_dense_ = 0;
  std::size_t planned_conv_ = 0;
  std::size_t fused_ = 0;
  std::size_t reference_ = 0;
  std::size_t identity_ = 0;
};

}  // namespace sx::dl
