// Deploy-time kernel plans (pillar 3: FUSA-compliant DL libraries).
//
// A KernelPlan is built exactly once per deployed model, at configuration
// time. Since PR 7 it is IR-backed: the model is lowered to a whole-model
// program IR (src/ir) and run through the deterministic pass pipeline —
// dead-layer elimination, fusion legality from single-use dataflow facts,
// and buffer-lifetime (liveness) analysis that colors non-interfering
// tensor lifetimes into shared arena slots — before the executable steps
// are built from the surviving ops:
//
//   - Dense layers run the register-blocked matvec kernels from
//     tensor/kernels.hpp; in kPacked mode their weights are additionally
//     repacked into cache-line-aligned row-blocked panels owned by the
//     plan (a deploy-time snapshot — see the staleness contract below);
//   - Conv2d layers are lowered to gather + blocked GEMM through ragged
//     im2col index tables precomputed here; the gathered column is an
//     arena slot assigned by the liveness pass;
//   - a Dense/Conv2d whose output has exactly one live consumer, an
//     activation, absorbs it as a fused kernel epilogue (the fusion pass
//     decides this from dataflow facts, honoring a pinned tap layer);
//   - Flatten layers and idempotent relu-after-relu chains are bit
//     identities and are eliminated outright by the dce pass;
//   - every other layer becomes a kReference step and executes its
//     unmodified Layer::forward.
//
// Every step carries its arena addresses (element offsets into one shared
// base block sized by ArenaLayout::total_elems), so engine demand shrinks
// from the ping-pong worst case toward the max live set. The per-pass
// audit evidence (ir::PassEvidence) is retained for the AuditLog, and
// verify/range re-derives the whole optimized structure independently from
// the model — the SIL3/4 gate refuses a plan whose IR does not match.
//
// All planned kernels preserve the reference per-output accumulation
// order, so a planned engine is bitwise identical to a reference engine
// (tensor_kernels_test proves this differentially; tensor_golden_test's
// pinned vectors stay valid).
//
// Staleness contract: kBlocked (the kAuto default) reads layer parameters
// live on every run, so in-place weight mutation — e.g. the SEU campaigns
// in safety/campaign.cpp injecting into a model behind a long-lived
// engine — is observed exactly as the reference path observes it. kPacked
// snapshots Dense weights into row-blocked panels and full
// kConvLanes-channel groups of Conv2d weights into tap-major lane panels
// for unit-stride access; kWide does the same at its wider geometry
// (kWideRowBlock rows, kWideConvLanes channels). Callers that mutate
// weights afterwards must call repack(). The packed-conv tail channels,
// and all conv weights in kBlocked mode, are always read live.
//
// kWide additionally selects, once, at construction, which SIMD variant
// of the wide kernels runs (platform::CpuProbe + SX_KERNEL_ISA override);
// the decision is exposed via isa_selection() for the audit trail, and
// every step's kernel entry point is resolved to a function pointer here
// so the engine hot path stays branch-free. All wide variants compute one
// canonical accumulation tree, so the selection affects timing only —
// outputs stay bitwise identical across machines, with or without the ISA.
//
// One plan is immutable after construction (repack() aside) and safe to
// share read-only across BatchRunner workers; the im2col scratch slots
// live in each worker's own arena.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dl/model.hpp"
#include "ir/passes.hpp"
#include "ir/program.hpp"
#include "platform/cpu_probe.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"

namespace sx::dl {

/// Hot-path kernel selection, resolved once at engine construction.
enum class KernelMode : std::uint8_t {
  kAuto,       ///< kBlocked unless the SX_KERNEL_REFERENCE env var forces
               ///< the reference loops (differential-testing escape hatch)
  kReference,  ///< original per-layer reference loops, no plan
  kBlocked,    ///< planned kernels over live layer parameters
  kPacked,     ///< kBlocked + Dense weights snapshotted into aligned panels
  kWide,       ///< wide-SIMD panels (8/16-lane float, 16/32-byte int8) with
               ///< audited CPU-probe ISA selection; bitwise identical to
               ///< every other mode (fixed accumulation tree + scalar twin)
};

/// Every concrete (non-kAuto) kernel mode, kReference first. The single
/// source of truth for exhaustive mode enumeration — the scenario identity
/// matrix and differential tests derive their execution axes from this so
/// a new mode can never silently miss them.
std::span<const KernelMode> all_kernel_modes() noexcept;

/// "No pinned tap": the fusion pass may fuse every legal activation.
inline constexpr std::size_t kNoPinnedTap = ~std::size_t{0};

/// Applies the SX_KERNEL_REFERENCE escape hatch to kAuto (reads the
/// environment; call at configuration time only, never on the hot path).
KernelMode resolve_kernel_mode(KernelMode requested) noexcept;

const char* kernel_mode_name(KernelMode mode) noexcept;

/// One executable step of a plan: one surviving IR op — a layer, or a
/// layer fused with its following activation. Pointer members alias the
/// model's live parameter storage (or the plan's own tables/panels) and
/// stay valid for the model's lifetime. Offsets are element indices into
/// the engine's single arena base block (ir::kNone = no slot; an in_offset
/// of ir::kNone means the caller's input buffer).
struct KernelStep {
  enum class Kind : std::uint8_t { kReference, kDense, kConv2d };

  Kind kind = Kind::kReference;
  std::size_t first_layer = 0;  ///< model layer index this step starts at
  std::size_t last_layer = 0;   ///< fused activation layer, or first_layer
  /// Taps at layers [tap_first, first_layer] all read this step's input
  /// buffer bitwise (the layers strictly between were eliminated as bit
  /// identities by the dce pass).
  std::size_t tap_first = 0;
  tensor::kernels::Epilogue epilogue = tensor::kernels::Epilogue::kNone;

  // Arena addressing (liveness-pass assignment).
  std::size_t in_offset = ir::kNone;
  std::size_t out_offset = ir::kNone;
  std::size_t scratch_offset = ir::kNone;
  std::size_t in_elems = 0;
  std::size_t out_elems = 0;
  Shape in_shape{};   ///< static views for reference steps (noexcept path)
  Shape out_shape{};

  // kReference
  const Layer* ref_layer = nullptr;  ///< the layer to forward verbatim

  // kDense / kConv2d
  std::size_t rows = 0, cols = 0;  ///< Dense dims
  const float* weights = nullptr;  ///< live natural-layout weights
  const float* panel = nullptr;    ///< packed panel (kPacked/kWide), else null
  const float* bias = nullptr;

  /// Kernel entry points resolved once at plan construction (mode + probed
  /// ISA), so the engine hot path is a branch-free indirect call.
  /// dense_arg is whatever the dense kernel walks: the live weights
  /// (kBlocked) or the panel (kPacked/kWide). Conv kernels always receive
  /// both the panel and the live weights (tail channels read live).
  tensor::kernels::DenseKernelFn dense_fn = nullptr;
  const float* dense_arg = nullptr;
  tensor::kernels::ConvKernelFn conv_fn = nullptr;

  // kConv2d
  tensor::kernels::ConvTables conv{};  ///< tables owned by the plan
  std::size_t scratch = 0;  ///< im2col column floats this step gathers
};

/// Deploy-time execution plan for one model. Immutable after construction
/// except repack(); shareable read-only across workers.
class KernelPlan {
 public:
  /// `mode` must be kBlocked, kPacked, or kWide (resolve kAuto first); the
  /// model must outlive the plan. `pin_tap_layer` keeps the activation
  /// feeding that layer materialized (fusion across it is blocked) so a
  /// supervisor can tap it. In kWide mode the CPU probe and the
  /// SX_KERNEL_ISA override are consulted here, exactly once.
  KernelPlan(const Model& model, KernelMode mode,
             std::size_t pin_tap_layer = kNoPinnedTap);

  KernelPlan(const KernelPlan&) = delete;
  KernelPlan& operator=(const KernelPlan&) = delete;

  KernelMode mode() const noexcept { return mode_; }
  std::span<const KernelStep> steps() const noexcept {
    return {steps_.get(), step_count_};
  }

  /// The optimized program IR and its liveness-colored arena layout —
  /// the structures verify/range re-checks against the model.
  const ir::Program& program() const noexcept { return program_; }
  const ir::ArenaLayout& layout() const noexcept { return layout_; }
  /// Structured audit evidence emitted by each static-analysis pass.
  std::span<const ir::PassEvidence> pass_evidence() const noexcept {
    return {passes_.data(), passes_.size()};
  }

  /// Engine arena demand in floats (liveness-pass total, excluding slack).
  std::size_t arena_elems() const noexcept { return layout_.total_elems; }
  /// Arena offset of the program output (ir::kNone when the program has
  /// no live ops and the output aliases the caller's input).
  std::size_t output_offset() const noexcept { return output_offset_; }
  /// Taps at layers [final_tap_first(), layer_count) read the final
  /// output buffer (every trailing layer was a bit identity).
  std::size_t final_tap_first() const noexcept { return final_tap_first_; }
  /// The tap layer pinned against fusion at construction (kNoPinnedTap
  /// when none).
  std::size_t pin_tap_layer() const noexcept { return pin_tap_layer_; }

  /// Per-inference scratch demand in floats (max ragged im2col column
  /// over all conv steps).
  std::size_t scratch_floats() const noexcept { return scratch_floats_; }

  /// Deploy-time storage footprint of the packed Dense and Conv2d panels
  /// (floats; zero in kBlocked mode).
  std::size_t panel_floats() const noexcept { return panel_floats_; }
  /// Total precomputed im2col gather entries across all conv steps.
  std::size_t table_entries() const noexcept { return table_entries_; }

  std::size_t planned_dense() const noexcept { return planned_dense_; }
  std::size_t planned_conv() const noexcept { return planned_conv_; }
  std::size_t fused_activations() const noexcept { return fused_; }
  std::size_t reference_steps() const noexcept { return reference_; }
  /// Layers eliminated by the dce pass (bit identities).
  std::size_t removed_layers() const noexcept { return removed_; }

  /// Re-snapshots Dense and Conv2d weights into the packed panels
  /// (kPacked/kWide only; no-op in kBlocked mode). For callers that
  /// mutate weights in place after deployment.
  void repack() noexcept;

  /// The deploy-time CPU probe and ISA decision (kWide only; defaults —
  /// scalar, no probe facts — in every other mode). Recorded by the
  /// pipeline audit log and the SX_KERNEL_BACKEND report block.
  const platform::CpuProbe& cpu_probe() const noexcept { return probe_; }
  const platform::WideIsaSelection& isa_selection() const noexcept {
    return isa_sel_;
  }

  /// One-line evidence summary for core/report.
  std::string summary() const;

 private:
  const Model* model_;
  KernelMode mode_;
  platform::CpuProbe probe_{};
  platform::WideIsaSelection isa_sel_{};
  std::size_t pin_tap_layer_ = kNoPinnedTap;
  ir::Program program_;
  ir::ArenaLayout layout_;
  std::vector<ir::PassEvidence> passes_;
  std::unique_ptr<KernelStep[]> steps_;
  std::size_t step_count_ = 0;
  std::unique_ptr<std::uint32_t[]> tables_;  ///< pix_off + in_idx + w_ofs
  tensor::AlignedStorage<float> panels_;  ///< cache-line-aligned base
  std::size_t output_offset_ = ir::kNone;
  std::size_t final_tap_first_ = 0;
  std::size_t scratch_floats_ = 0;
  std::size_t panel_floats_ = 0;
  std::size_t table_entries_ = 0;
  std::size_t planned_dense_ = 0;
  std::size_t planned_conv_ = 0;
  std::size_t fused_ = 0;
  std::size_t reference_ = 0;
  std::size_t removed_ = 0;
};

}  // namespace sx::dl
