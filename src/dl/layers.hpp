// Concrete layers: Dense, ReLU, Conv2d, pooling, Flatten, Softmax, BatchNorm.
#pragma once

#include <vector>

#include "dl/layer.hpp"
#include "util/rng.hpp"

namespace sx::dl {

/// Fully connected layer: y = W x + b, W is out_dim x in_dim.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_dim, std::size_t out_dim);

  LayerKind kind() const noexcept override { return LayerKind::kDense; }
  std::string_view name() const noexcept override { return "dense"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::span<float> params() noexcept override { return params_; }
  std::span<const float> params() const noexcept override { return params_; }
  std::span<float> param_grads() noexcept override { return grads_; }
  std::unique_ptr<Layer> clone() const override;

  void init(util::Xoshiro256& rng);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }

  /// Weight matrix view (out_dim x in_dim) into the flattened parameters.
  std::span<float> weights() noexcept {
    return std::span<float>(params_).first(out_dim_ * in_dim_);
  }
  std::span<const float> weights() const noexcept {
    return std::span<const float>(params_).first(out_dim_ * in_dim_);
  }
  std::span<float> bias() noexcept {
    return std::span<float>(params_).subspan(out_dim_ * in_dim_);
  }
  std::span<const float> bias() const noexcept {
    return std::span<const float>(params_).subspan(out_dim_ * in_dim_);
  }

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::vector<float> params_;  // weights (out*in) then bias (out)
  std::vector<float> grads_;
};

/// Rectified linear unit.
class Relu final : public Layer {
 public:
  LayerKind kind() const noexcept override { return LayerKind::kRelu; }
  std::string_view name() const noexcept override { return "relu"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Relu>(*this);
  }
};

/// 2D convolution over CHW input. Weights: out_c x in_c x k x k.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_c, std::size_t out_c, std::size_t kernel,
         std::size_t stride = 1, std::size_t padding = 0);

  LayerKind kind() const noexcept override { return LayerKind::kConv2d; }
  std::string_view name() const noexcept override { return "conv2d"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::span<float> params() noexcept override { return params_; }
  std::span<const float> params() const noexcept override { return params_; }
  std::span<float> param_grads() noexcept override { return grads_; }
  std::unique_ptr<Layer> clone() const override;

  void init(util::Xoshiro256& rng);

  std::size_t in_channels() const noexcept { return in_c_; }
  std::size_t out_channels() const noexcept { return out_c_; }
  std::size_t kernel() const noexcept { return k_; }
  std::size_t stride() const noexcept { return stride_; }
  std::size_t padding() const noexcept { return pad_; }

  std::span<const float> weights() const noexcept {
    return std::span<const float>(params_).first(out_c_ * in_c_ * k_ * k_);
  }
  std::span<const float> bias() const noexcept {
    return std::span<const float>(params_).subspan(out_c_ * in_c_ * k_ * k_);
  }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  std::vector<float> params_;  // weights then bias
  std::vector<float> grads_;
};

/// Max pooling with square window and matching stride.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  LayerKind kind() const noexcept override { return LayerKind::kMaxPool2d; }
  std::string_view name() const noexcept override { return "maxpool2d"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

  std::size_t window() const noexcept { return w_; }

 private:
  std::size_t w_;
};

/// Average pooling with square window and matching stride.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t window);

  LayerKind kind() const noexcept override { return LayerKind::kAvgPool2d; }
  std::string_view name() const noexcept override { return "avgpool2d"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<AvgPool2d>(*this);
  }

  std::size_t window() const noexcept { return w_; }

 private:
  std::size_t w_;
};

/// Logistic sigmoid, element-wise.
class Sigmoid final : public Layer {
 public:
  LayerKind kind() const noexcept override { return LayerKind::kSigmoid; }
  std::string_view name() const noexcept override { return "sigmoid"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Sigmoid>(*this);
  }
};

/// Hyperbolic tangent, element-wise.
class Tanh final : public Layer {
 public:
  LayerKind kind() const noexcept override { return LayerKind::kTanh; }
  std::string_view name() const noexcept override { return "tanh"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>(*this);
  }
};

/// Reshape to rank-1 (no data movement semantics beyond copy).
class Flatten final : public Layer {
 public:
  LayerKind kind() const noexcept override { return LayerKind::kFlatten; }
  std::string_view name() const noexcept override { return "flatten"; }
  Shape output_shape(const Shape& in) const override {
    return Shape::vec(in.size());
  }
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }
};

/// Softmax over a rank-1 input.
class Softmax final : public Layer {
 public:
  LayerKind kind() const noexcept override { return LayerKind::kSoftmax; }
  std::string_view name() const noexcept override { return "softmax"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Softmax>(*this);
  }
};

/// Inference-mode batch normalization over channels of a CHW tensor (or the
/// single "channel" of a vector). Statistics are frozen; gamma/beta train.
class BatchNorm final : public Layer {
 public:
  explicit BatchNorm(std::size_t channels, float eps = 1e-5f);

  LayerKind kind() const noexcept override { return LayerKind::kBatchNorm; }
  std::string_view name() const noexcept override { return "batchnorm"; }
  Shape output_shape(const Shape& in) const override;
  Status forward(ConstTensorView in, TensorView out) const noexcept override;
  Status backward(ConstTensorView in, ConstTensorView grad_out,
                  TensorView grad_in) noexcept override;
  std::span<float> params() noexcept override { return params_; }
  std::span<const float> params() const noexcept override { return params_; }
  std::span<float> param_grads() noexcept override { return grads_; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t channels() const noexcept { return channels_; }
  /// Sets the frozen running statistics (e.g. estimated from training data).
  void set_statistics(std::span<const float> mean, std::span<const float> var);
  std::span<const float> running_mean() const noexcept { return mean_; }
  std::span<const float> running_var() const noexcept { return var_; }
  float epsilon() const noexcept { return eps_; }

 private:
  std::size_t channels_;
  float eps_;
  std::vector<float> params_;  // gamma (channels) then beta (channels)
  std::vector<float> grads_;
  std::vector<float> mean_;
  std::vector<float> var_;
};

}  // namespace sx::dl
