#include "dl/plan.hpp"

#include <cstdlib>
#include <sstream>

#include "dl/lower.hpp"

namespace sx::dl {

namespace k = tensor::kernels;

KernelMode resolve_kernel_mode(KernelMode requested) noexcept {
  if (requested != KernelMode::kAuto) return requested;
  // Escape hatch for differential testing and certification audits: a set,
  // non-"0" SX_KERNEL_REFERENCE forces the original per-layer loops.
  // Resolved at configuration time only; the hot path never reads the
  // environment.
  const char* env = std::getenv("SX_KERNEL_REFERENCE");
  const bool forced =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return forced ? KernelMode::kReference : KernelMode::kBlocked;
}

const char* kernel_mode_name(KernelMode mode) noexcept {
  switch (mode) {
    case KernelMode::kAuto: return "auto";
    case KernelMode::kReference: return "reference";
    case KernelMode::kBlocked: return "blocked";
    case KernelMode::kPacked: return "packed";
    case KernelMode::kWide: return "wide";
  }
  return "unknown";
}

std::span<const KernelMode> all_kernel_modes() noexcept {
  // kReference first: differential consumers (the scenario identity
  // matrix) treat the first entry as the twin anchor.
  static constexpr KernelMode kModes[] = {
      KernelMode::kReference, KernelMode::kBlocked, KernelMode::kPacked,
      KernelMode::kWide};
  return kModes;
}

namespace {

k::Epilogue fused_epilogue(ir::OpKind kind) noexcept {
  switch (kind) {
    case ir::OpKind::kRelu: return k::Epilogue::kRelu;
    case ir::OpKind::kSigmoid: return k::Epilogue::kSigmoid;
    case ir::OpKind::kTanh: return k::Epilogue::kTanh;
    default: return k::Epilogue::kNone;  // unsound fused kind: the verify
                                         // gate refuses the plan before any
                                         // engine runs it
  }
}

/// Static geometry of conv layer i (input shape = activation before it).
k::Conv2dGeom conv_geom(const Model& m, std::size_t i, const Conv2d& c) {
  const Shape& in = i == 0 ? m.input_shape() : m.activation_shape(i - 1);
  k::Conv2dGeom g;
  g.in_c = c.in_channels();
  g.in_h = in.dim(1);
  g.in_w = in.dim(2);
  g.out_c = c.out_channels();
  g.k = c.kernel();
  g.stride = c.stride();
  g.pad = c.padding();
  return g;
}

}  // namespace

KernelPlan::KernelPlan(const Model& model, KernelMode mode,
                       std::size_t pin_tap_layer)
    : model_(&model),
      mode_(mode),
      pin_tap_layer_(pin_tap_layer),
      program_(lower(model)) {
  if (mode_ == KernelMode::kWide) {
    // The one and only probe: configuration time, before any step exists.
    // The decision is kept for the audit trail (isa_selection()); the hot
    // path only ever sees the function pointers resolved below.
    probe_ = platform::probe_cpu();
    isa_sel_ =
        platform::select_wide_isa(probe_, std::getenv("SX_KERNEL_ISA"));
  }
  // Static-analysis pass pipeline over the lowered IR: dce, fusion
  // legality, liveness arena coloring. The per-pass audit evidence is
  // retained for the AuditLog and the verify gate re-derives all of it.
  ir::PassOptions opts;
  opts.fuse_sigmoid_tanh = true;
  opts.pin_layer = pin_tap_layer;
  ir::OptimizeResult opt = ir::optimize(program_, opts);
  layout_ = std::move(opt.layout);
  passes_ = std::move(opt.passes);
  output_offset_ = layout_.value_offset[program_.output_value];
  for (const ir::PassEvidence& pe : passes_) removed_ += pe.layers_removed;

  // Pass 1 over the surviving ops: size the deploy-time storage.
  std::size_t table_u32 = 0;  // pix_off arrays + in_idx + w_ofs
  for (const ir::Op& op : program_.ops) {
    if (!op.live) continue;
    if (op.kind == ir::OpKind::kConv2d) {
      const auto& c = static_cast<const Conv2d&>(model.layer(op.layer));
      const k::Conv2dGeom g = conv_geom(model, op.layer, c);
      const std::size_t entries = k::im2col_entries(g);
      table_u32 += (g.opix() + 1) + 2 * entries;
      table_entries_ += entries;
      scratch_floats_ = scratch_floats_ > entries ? scratch_floats_ : entries;
      if (mode_ == KernelMode::kPacked)
        panel_floats_ += k::conv_panel_floats(g.out_c, g.patch());
      else if (mode_ == KernelMode::kWide)
        panel_floats_ += k::wide_conv_panel_floats(g.out_c, g.patch());
    } else if (op.kind == ir::OpKind::kDense &&
               (mode_ == KernelMode::kPacked ||
                mode_ == KernelMode::kWide)) {
      const auto& d = static_cast<const Dense&>(model.layer(op.layer));
      panel_floats_ += mode_ == KernelMode::kPacked
                           ? k::dense_panel_floats(d.out_dim(), d.in_dim())
                           : k::wide_dense_panel_floats(d.out_dim(),
                                                        d.in_dim());
    }
  }

  // Configuration-time storage, allocated exactly once per deployment;
  // the hot path only ever reads it.
  const std::size_t live = program_.live_op_count();
  if (live != 0)
    steps_ = std::make_unique<KernelStep[]>(live);  // sxlint: allow(hot-path-alloc) deploy-time plan storage
  if (table_u32 != 0)
    tables_ = std::make_unique<std::uint32_t[]>(table_u32);  // sxlint: allow(hot-path-alloc) deploy-time im2col tables
  if (panel_floats_ != 0)
    panels_ = tensor::make_aligned_storage<float>(panel_floats_);

  // Pass 2: one executable step per surviving op, carrying its liveness
  // arena assignment and fused epilogue.
  std::size_t tu = 0, pf = 0;
  std::size_t prev_last = 0;
  for (const ir::Op& op : program_.ops) {
    if (!op.live) continue;
    KernelStep& s = steps_[step_count_++];
    s.first_layer = op.layer;
    s.last_layer = program_.last_layer(op);
    s.tap_first = step_count_ == 1 ? 0 : prev_last + 1;
    prev_last = s.last_layer;
    s.in_elems = program_.values[op.input].elems;
    s.out_elems = program_.values[op.output].elems;
    s.in_shape = op.layer == 0 ? model.input_shape()
                               : model.activation_shape(op.layer - 1);
    s.out_shape = model.activation_shape(s.last_layer);
    const ir::ArenaAssignment& slot = layout_.per_op[op.id];
    s.in_offset = slot.in_offset;
    s.out_offset = slot.out_offset;
    s.scratch_offset = slot.scratch_offset;
    if (op.fused_layer != ir::kNone) {
      s.epilogue = fused_epilogue(op.fused_kind);
      ++fused_;
    }

    if (op.kind == ir::OpKind::kDense) {
      const auto& d = static_cast<const Dense&>(model.layer(op.layer));
      s.kind = KernelStep::Kind::kDense;
      s.rows = d.out_dim();
      s.cols = d.in_dim();
      s.weights = d.weights().data();
      s.bias = d.bias().data();
      if (mode_ == KernelMode::kPacked) {
        float* panel = panels_.get() + pf;
        k::pack_dense_panel(s.weights, s.rows, s.cols, panel);
        s.panel = panel;
        pf += k::dense_panel_floats(s.rows, s.cols);
      } else if (mode_ == KernelMode::kWide) {
        float* panel = panels_.get() + pf;
        k::pack_wide_dense_panel(s.weights, s.rows, s.cols, panel);
        s.panel = panel;
        pf += k::wide_dense_panel_floats(s.rows, s.cols);
      }
      // Branch-free hot path: the kernel entry point is decided here,
      // once, for the plan's whole lifetime.
      s.dense_fn = mode_ == KernelMode::kBlocked ? &k::matvec_blocked
                   : mode_ == KernelMode::kPacked
                       ? &k::matvec_packed
                       : k::wide_dense_kernel(isa_sel_.isa);
      s.dense_arg = s.panel != nullptr ? s.panel : s.weights;
      ++planned_dense_;
    } else if (op.kind == ir::OpKind::kConv2d) {
      const auto& c = static_cast<const Conv2d&>(model.layer(op.layer));
      const k::Conv2dGeom g = conv_geom(model, op.layer, c);
      const std::size_t entries = k::im2col_entries(g);
      std::uint32_t* pix_off = tables_.get() + tu;
      std::uint32_t* in_idx = pix_off + (g.opix() + 1);
      std::uint32_t* w_ofs = in_idx + entries;
      k::build_im2col_tables(g, pix_off, in_idx, w_ofs);
      tu += (g.opix() + 1) + 2 * entries;
      s.kind = KernelStep::Kind::kConv2d;
      s.conv = k::ConvTables{.out_c = g.out_c,
                             .patch = g.patch(),
                             .opix = g.opix(),
                             .pix_off = pix_off,
                             .in_idx = in_idx,
                             .w_ofs = w_ofs};
      s.weights = c.weights().data();
      s.bias = c.bias().data();
      s.scratch = entries;
      if (mode_ == KernelMode::kPacked) {
        const std::size_t pfl = k::conv_panel_floats(g.out_c, g.patch());
        if (pfl != 0) {
          float* panel = panels_.get() + pf;
          k::pack_conv_panel(s.weights, g.out_c, g.patch(), panel);
          s.panel = panel;
          pf += pfl;
        }
      } else if (mode_ == KernelMode::kWide) {
        const std::size_t pfl =
            k::wide_conv_panel_floats(g.out_c, g.patch());
        if (pfl != 0) {
          float* panel = panels_.get() + pf;
          k::pack_wide_conv_panel(s.weights, g.out_c, g.patch(), panel);
          s.panel = panel;
          pf += pfl;
        }
      }
      // A conv too narrow for its lane panel (panel == nullptr) runs the
      // live-weight kernel in every planned mode.
      s.conv_fn = s.panel == nullptr ? &k::conv2d_im2col_live
                  : mode_ == KernelMode::kPacked
                      ? &k::conv2d_im2col_packed
                      : k::wide_conv_kernel(isa_sel_.isa);
      ++planned_conv_;
    } else {
      s.kind = KernelStep::Kind::kReference;
      s.ref_layer = &model.layer(op.layer);
      ++reference_;
    }
  }
  final_tap_first_ =
      step_count_ != 0 ? steps_[step_count_ - 1].last_layer + 1 : 0;
}

void KernelPlan::repack() noexcept {
  if (mode_ != KernelMode::kPacked && mode_ != KernelMode::kWide) return;
  const bool wide = mode_ == KernelMode::kWide;
  for (std::size_t i = 0; i < step_count_; ++i) {
    KernelStep& s = steps_[i];
    if (s.panel == nullptr) continue;
    if (s.kind == KernelStep::Kind::kDense) {
      if (wide)
        k::pack_wide_dense_panel(s.weights, s.rows, s.cols,
                                 const_cast<float*>(s.panel));
      else
        k::pack_dense_panel(s.weights, s.rows, s.cols,
                            const_cast<float*>(s.panel));
    } else if (s.kind == KernelStep::Kind::kConv2d) {
      if (wide)
        k::pack_wide_conv_panel(s.weights, s.conv.out_c, s.conv.patch,
                                const_cast<float*>(s.panel));
      else
        k::pack_conv_panel(s.weights, s.conv.out_c, s.conv.patch,
                           const_cast<float*>(s.panel));
    }
  }
}

std::string KernelPlan::summary() const {
  std::ostringstream os;
  os << "mode=" << kernel_mode_name(mode_) << " steps=" << step_count_ << "/"
     << model_->layer_count() << " layers (dense=" << planned_dense_
     << " conv=" << planned_conv_ << " fused-act=" << fused_
     << " removed=" << removed_ << " reference=" << reference_
     << "), arena=" << layout_.total_elems << "/" << layout_.naive_elems
     << " floats, im2col entries=" << table_entries_
     << ", scratch=" << scratch_floats_ << " floats, panels=" << panel_floats_
     << " floats";
  if (mode_ == KernelMode::kWide) {
    os << ", isa=" << k::wide_isa_name(isa_sel_.isa);
    if (isa_sel_.refused) os << " (override refused)";
  }
  return os.str();
}

}  // namespace sx::dl
