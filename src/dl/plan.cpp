#include "dl/plan.hpp"

#include <cstdlib>
#include <sstream>

namespace sx::dl {

namespace k = tensor::kernels;

KernelMode resolve_kernel_mode(KernelMode requested) noexcept {
  if (requested != KernelMode::kAuto) return requested;
  // Escape hatch for differential testing and certification audits: a set,
  // non-"0" SX_KERNEL_REFERENCE forces the original per-layer loops.
  // Resolved at configuration time only; the hot path never reads the
  // environment.
  const char* env = std::getenv("SX_KERNEL_REFERENCE");
  const bool forced =
      env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
  return forced ? KernelMode::kReference : KernelMode::kBlocked;
}

const char* kernel_mode_name(KernelMode mode) noexcept {
  switch (mode) {
    case KernelMode::kAuto: return "auto";
    case KernelMode::kReference: return "reference";
    case KernelMode::kBlocked: return "blocked";
    case KernelMode::kPacked: return "packed";
  }
  return "unknown";
}

namespace {

k::Epilogue fusable_epilogue(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kRelu: return k::Epilogue::kRelu;
    case LayerKind::kSigmoid: return k::Epilogue::kSigmoid;
    case LayerKind::kTanh: return k::Epilogue::kTanh;
    default: return k::Epilogue::kNone;
  }
}

/// Static geometry of conv layer i (input shape = activation before it).
k::Conv2dGeom conv_geom(const Model& m, std::size_t i, const Conv2d& c) {
  const Shape& in = i == 0 ? m.input_shape() : m.activation_shape(i - 1);
  k::Conv2dGeom g;
  g.in_c = c.in_channels();
  g.in_h = in.dim(1);
  g.in_w = in.dim(2);
  g.out_c = c.out_channels();
  g.k = c.kernel();
  g.stride = c.stride();
  g.pad = c.padding();
  return g;
}

}  // namespace

KernelPlan::KernelPlan(const Model& model, KernelMode mode)
    : model_(&model), mode_(mode) {
  const std::size_t n = model.layer_count();

  // Pass 1: size the deploy-time storage from the static shapes alone.
  std::size_t table_u32 = 0;  // pix_off arrays + in_idx + w_ofs
  for (std::size_t i = 0; i < n; ++i) {
    const Layer& layer = model.layer(i);
    if (layer.kind() == LayerKind::kConv2d) {
      const auto& c = static_cast<const Conv2d&>(layer);
      const k::Conv2dGeom g = conv_geom(model, i, c);
      const std::size_t entries = k::im2col_entries(g);
      table_u32 += (g.opix() + 1) + 2 * entries;
      table_entries_ += entries;
      scratch_floats_ = scratch_floats_ > entries ? scratch_floats_ : entries;
      if (mode_ == KernelMode::kPacked)
        panel_floats_ += k::conv_panel_floats(g.out_c, g.patch());
    } else if (mode_ == KernelMode::kPacked &&
               layer.kind() == LayerKind::kDense) {
      const auto& d = static_cast<const Dense&>(layer);
      panel_floats_ += k::dense_panel_floats(d.out_dim(), d.in_dim());
    }
  }

  // Configuration-time storage, allocated exactly once per deployment;
  // the hot path only ever reads it.
  steps_ = std::make_unique<KernelStep[]>(n);  // sxlint: allow(hot-path-alloc) deploy-time plan storage
  if (table_u32 != 0)
    tables_ = std::make_unique<std::uint32_t[]>(table_u32);  // sxlint: allow(hot-path-alloc) deploy-time im2col tables
  if (panel_floats_ != 0)
    panels_ = tensor::make_aligned_storage<float>(panel_floats_);

  // Pass 2: build steps, tables and panels.
  std::size_t tu = 0, pf = 0;
  for (std::size_t i = 0; i < n;) {
    KernelStep& s = steps_[step_count_++];
    s.first_layer = i;
    const Layer& layer = model.layer(i);
    const k::Epilogue next_ep =
        i + 1 < n ? fusable_epilogue(model.layer(i + 1).kind())
                  : k::Epilogue::kNone;

    if (layer.kind() == LayerKind::kDense) {
      const auto& d = static_cast<const Dense&>(layer);
      s.kind = KernelStep::Kind::kDense;
      s.rows = d.out_dim();
      s.cols = d.in_dim();
      s.weights = d.weights().data();
      s.bias = d.bias().data();
      if (mode_ == KernelMode::kPacked) {
        float* panel = panels_.get() + pf;
        k::pack_dense_panel(s.weights, s.rows, s.cols, panel);
        s.panel = panel;
        pf += k::dense_panel_floats(s.rows, s.cols);
      }
      s.epilogue = next_ep;
      ++planned_dense_;
    } else if (layer.kind() == LayerKind::kConv2d) {
      const auto& c = static_cast<const Conv2d&>(layer);
      const k::Conv2dGeom g = conv_geom(model, i, c);
      const std::size_t entries = k::im2col_entries(g);
      std::uint32_t* pix_off = tables_.get() + tu;
      std::uint32_t* in_idx = pix_off + (g.opix() + 1);
      std::uint32_t* w_ofs = in_idx + entries;
      k::build_im2col_tables(g, pix_off, in_idx, w_ofs);
      tu += (g.opix() + 1) + 2 * entries;
      s.kind = KernelStep::Kind::kConv2d;
      s.conv = k::ConvTables{.out_c = g.out_c,
                             .patch = g.patch(),
                             .opix = g.opix(),
                             .pix_off = pix_off,
                             .in_idx = in_idx,
                             .w_ofs = w_ofs};
      s.weights = c.weights().data();
      s.bias = c.bias().data();
      s.scratch = entries;
      if (mode_ == KernelMode::kPacked) {
        const std::size_t pfl = k::conv_panel_floats(g.out_c, g.patch());
        if (pfl != 0) {
          float* panel = panels_.get() + pf;
          k::pack_conv_panel(s.weights, g.out_c, g.patch(), panel);
          s.panel = panel;
          pf += pfl;
        }
      }
      s.epilogue = next_ep;
      ++planned_conv_;
    } else if (layer.kind() == LayerKind::kFlatten) {
      // Flatten::forward is a verbatim copy; the planned engine re-views
      // the live buffer under the flattened shape instead (same bits, one
      // less full-tensor copy and scan per inference).
      s.kind = KernelStep::Kind::kIdentity;
      ++identity_;
      ++i;
      continue;
    } else {
      s.kind = KernelStep::Kind::kReference;
      ++reference_;
      ++i;
      continue;
    }
    if (s.epilogue != k::Epilogue::kNone) {
      s.layer_span = 2;
      ++fused_;
      i += 2;
    } else {
      ++i;
    }
  }
}

void KernelPlan::repack() noexcept {
  if (mode_ != KernelMode::kPacked) return;
  for (std::size_t i = 0; i < step_count_; ++i) {
    KernelStep& s = steps_[i];
    if (s.panel == nullptr) continue;
    if (s.kind == KernelStep::Kind::kDense)
      k::pack_dense_panel(s.weights, s.rows, s.cols,
                          const_cast<float*>(s.panel));
    else if (s.kind == KernelStep::Kind::kConv2d)
      k::pack_conv_panel(s.weights, s.conv.out_c, s.conv.patch,
                         const_cast<float*>(s.panel));
  }
}

std::string KernelPlan::summary() const {
  std::ostringstream os;
  os << "mode=" << kernel_mode_name(mode_) << " steps=" << step_count_ << "/"
     << model_->layer_count() << " layers (dense=" << planned_dense_
     << " conv=" << planned_conv_ << " fused-act=" << fused_
     << " identity=" << identity_ << " reference=" << reference_
     << "), im2col entries=" << table_entries_
     << ", scratch=" << scratch_floats_ << " floats, panels=" << panel_floats_
     << " floats";
  return os.str();
}

}  // namespace sx::dl
